// Injection burst: paper §III-E5 — particles injected abruptly into a
// subregion mid-run ("category 2" load imbalance: local creation of work).
// The example compares how the runtime-orchestrated AMPI balancer and the
// static baseline absorb the burst, and shows that removal events are
// verified just as rigorously.
package main

import (
	"fmt"
	"log"

	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/driver"
	"github.com/parres/picprk/internal/grid"
)

func main() {
	const ranks = 4
	mesh := grid.MustMesh(32, grid.DefaultCharge)

	// A calm uniform workload ...
	cfg := driver.Config{
		Mesh:   mesh,
		N:      20000,
		Dist:   dist.Uniform{},
		Seed:   3,
		Steps:  300,
		Verify: true,
		// ... until step 100, when 60,000 particles appear in one quadrant,
		// tripling the total and concentrating work on one rank. At step
		// 200 a horizontal band is evacuated.
		Schedule: dist.Schedule{
			{Step: 100, Region: dist.Rect{X0: 0, X1: 16, Y0: 0, Y1: 16}, Inject: 60000, M: 1},
			{Step: 200, Region: dist.Rect{X0: 0, X1: 32, Y0: 8, Y1: 16}, Remove: true},
		},
	}

	fmt.Println("workload: uniform 20k particles; +60k injected into one quadrant at step 100;")
	fmt.Println("          one horizontal band removed at step 200")

	base, err := driver.RunBaseline(ranks, cfg)
	if err != nil {
		log.Fatal(err)
	}
	am, err := driver.RunAMPI(ranks, cfg, driver.AMPIParams{Overdecompose: 8, Every: 20})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-28s %-12s %-12s\n", "", "mpi-2d", "ampi (d=8, F=20)")
	fmt.Printf("%-28s %-12d %-12d\n", "final particles", base.FinalParticles, am.FinalParticles)
	fmt.Printf("%-28s %-12d %-12d\n", "max particles/rank (final)", base.MaxFinalParticles, am.MaxFinalParticles)
	fmt.Printf("%-28s %-12d %-12d\n", "max particles/rank (peak)", base.MaxParticlesHighWater(), am.MaxParticlesHighWater())
	moves := 0
	for _, s := range am.PerRank {
		moves += s.Migrations
	}
	fmt.Printf("%-28s %-12d %-12d\n", "VP migrations", 0, moves)
	fmt.Printf("%-28s %-12v %-12v\n", "verified", base.Verified, am.Verified)

	fmt.Println("\nboth implementations verify exactly — the event schedule is part of the")
	fmt.Println("closed-form prediction (which particles exist, and where) of paper §III-D")
}
