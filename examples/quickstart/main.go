// Quickstart: the smallest complete use of the PIC PRK — build a mesh,
// initialize a skewed particle population, run the sequential kernel, and
// self-verify against the closed-form solution of paper §III-D.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/parres/picprk/internal/core"
	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/grid"
)

func main() {
	// The domain: 64×64 cells with unit cell size, periodic boundaries,
	// alternating +q/-q charge columns at mesh points.
	mesh, err := grid.NewMesh(64, grid.DefaultCharge)
	if err != nil {
		log.Fatal(err)
	}

	// 50,000 particles placed with the paper's geometric (skewed)
	// distribution; charges chosen per eq. 3 so every particle hops exactly
	// one cell to the right per step, and m=2 so it climbs two cells up.
	cfg := dist.Config{
		Mesh: mesh,
		N:    50000,
		K:    0,
		M:    2,
		Dist: dist.Geometric{R: 0.9},
		Seed: 42,
	}
	sim, err := core.NewSimulation(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}

	const steps = 1000
	start := time.Now()
	sim.Run(steps)
	elapsed := time.Since(start)

	fmt.Printf("moved %d particles for %d steps in %v (%.1fM particle-steps/s)\n",
		len(sim.Particles), steps, elapsed.Round(time.Millisecond),
		float64(len(sim.Particles))*steps/elapsed.Seconds()/1e6)

	// Verification is O(1) per particle: each particle's final position has
	// a closed form, and the ID checksum catches lost particles.
	if err := sim.Verify(0); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verification PASSED: every particle is exactly where eqs. 5-6 predict")

	// Peek at one particle to see the closed form in action.
	p := sim.Particles[0]
	ex, ey := p.ExpectedAt(steps, mesh.Size())
	fmt.Printf("particle %d: started (%.1f, %.1f), ended (%.1f, %.1f), predicted (%.1f, %.1f)\n",
		p.ID, p.X0, p.Y0, p.X, p.Y, ex, ey)
}
