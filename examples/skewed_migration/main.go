// Skewed migration: the workload of the paper's experiments (§III-E1) — a
// geometric particle distribution drifting across the domain — run on 6
// goroutine ranks with and without the diffusion load balancer. The example
// prints the per-rank particle counts so the imbalance, and what the
// balancer does about it, is visible directly.
package main

import (
	"fmt"
	"log"

	"github.com/parres/picprk/internal/diffusion"
	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/driver"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/stats"
)

func main() {
	const ranks = 6
	mesh := grid.MustMesh(96, grid.DefaultCharge)
	cfg := driver.Config{
		Mesh:   mesh,
		N:      60000,
		Dist:   dist.Geometric{R: 0.96}, // skewed: particle density falls 50x across the domain
		Seed:   7,
		Steps:  200,
		Verify: true,
	}

	fmt.Println("workload: geometric r=0.96 — the particle cloud drifts right one cell per step")
	fmt.Printf("ranks: %d (2D block decomposition)\n\n", ranks)

	base, err := driver.RunBaseline(ranks, cfg)
	if err != nil {
		log.Fatal(err)
	}
	printLoads("mpi-2d (no load balancing)", base)

	// Width/Every must outpace the drift: the cloud moves one cell per
	// step, so cuts must be able to move strictly faster than one cell per
	// step to first converge and then track it — the co-tuning of the
	// three interfering knobs that the paper's §IV-B calls out. A balancer
	// that lags the drift is worse than no balancer at all (try Width: 1).
	params := diffusion.Params{Every: 1, Threshold: 0.05, Width: 2, MinWidth: 3}
	diff, err := driver.RunDiffusion(ranks, cfg, params)
	if err != nil {
		log.Fatal(err)
	}
	printLoads("mpi-2d-LB (diffusion, x-direction)", diff)

	migrations := 0
	var bytes int64
	for _, s := range diff.PerRank {
		migrations += s.Migrations
		bytes += s.BytesMigrated
	}
	fmt.Printf("the balancer shifted subdomain boundaries %d times, shipping %d bytes of mesh data\n", migrations, bytes)
	fmt.Printf("max particles per rank: %d -> %d (ideal %d)\n",
		base.MaxFinalParticles, diff.MaxFinalParticles, cfg.N/ranks)
}

func printLoads(label string, res *driver.Result) {
	fmt.Printf("%s\n", label)
	loads := make([]float64, len(res.PerRank))
	for i, s := range res.PerRank {
		loads[i] = float64(s.FinalParticles)
		fmt.Printf("  rank %d: %6d particles %s\n", s.Rank, s.FinalParticles, bar(s.FinalParticles, 60000/2))
	}
	fmt.Printf("  %v, verified=%v\n\n", stats.Summarize(loads), res.Verified)
}

func bar(n, max int) string {
	w := n * 40 / max
	if w > 40 {
		w = 40
	}
	out := ""
	for i := 0; i < w; i++ {
		out += "#"
	}
	return out
}
