// Runtime comparison: all four parallel implementations side by side on the
// paper's skewed workload — the three of paper §IV plus the work-stealing
// driver its §VI future work sketches — the small-scale, real-execution
// analogue of the paper's Figure 6. On a single host the goroutine ranks
// share cores, so wall-clock times reflect overheads rather than parallel
// speedup; the load-balance quality columns are the interesting part.
// For the paper-scale scaling curves, run cmd/picbench.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/parres/picprk/internal/diffusion"
	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/driver"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/stats"
)

func main() {
	const ranks = 8
	mesh := grid.MustMesh(128, grid.DefaultCharge)
	cfg := driver.Config{
		Mesh:   mesh,
		N:      80000,
		Dist:   dist.Geometric{R: 0.97},
		Seed:   11,
		Steps:  300,
		Verify: true,
	}

	fmt.Printf("PIC PRK, %d ranks, %d particles, %d steps, geometric r=0.97\n\n", ranks, cfg.N, cfg.Steps)
	fmt.Printf("%-12s %-10s %-10s %-12s %-10s %-9s\n",
		"impl", "wall", "max/rank", "imbalance", "migrations", "verified")

	run := func(name string, fn func() (*driver.Result, error)) {
		start := time.Now()
		res, err := fn()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		loads := make([]float64, len(res.PerRank))
		migrations := 0
		for i, s := range res.PerRank {
			loads[i] = float64(s.FinalParticles)
			migrations += s.Migrations
		}
		sum := stats.Summarize(loads)
		fmt.Printf("%-12s %-10v %-10d %-12.3f %-10d %-9v\n",
			name, time.Since(start).Round(time.Millisecond),
			res.MaxFinalParticles, sum.Imbalance, migrations, res.Verified)
	}

	run("mpi-2d", func() (*driver.Result, error) {
		return driver.RunBaseline(ranks, cfg)
	})
	run("mpi-2d-LB", func() (*driver.Result, error) {
		// Width/Every is co-tuned so the boundary tracking outpaces the
		// one-cell-per-step drift of the particle cloud (§IV-B).
		return driver.RunDiffusion(ranks, cfg, diffusion.Params{Every: 1, Threshold: 0.05, Width: 2, MinWidth: 3})
	})
	run("ampi", func() (*driver.Result, error) {
		return driver.RunAMPI(ranks, cfg, driver.AMPIParams{Overdecompose: 8, Every: 25})
	})
	run("worksteal", func() (*driver.Result, error) {
		return driver.RunWorkSteal(ranks, cfg, driver.WorkStealParams{Overdecompose: 8, Every: 25})
	})

	fmt.Println("\nall four implementations produce bitwise-identical particle states;")
	fmt.Println("they differ only in where the work lives (imbalance) and what moving it costs")
}
