package picprk

// One benchmark per table/figure in the paper's evaluation (§V), plus
// end-to-end benchmarks of the real goroutine drivers. The figure
// benchmarks run the performance model at reduced (Quick) scale so the
// suite completes in seconds and print the regenerated series; run
// cmd/picbench for the paper's full problem sizes.

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"github.com/parres/picprk/internal/ampi"
	"github.com/parres/picprk/internal/diffusion"
	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/driver"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/model"
	"github.com/parres/picprk/internal/sweep"
)

func renderOnce(b *testing.B, fig *sweep.Figure) {
	b.Helper()
	var sb strings.Builder
	fig.Render(&sb)
	b.Log("\n" + sb.String())
}

// BenchmarkFig5IntervalSweep regenerates the green line of Figure 5:
// execution time vs the interval F between AMPI load-balancer invocations
// at fixed over-decomposition d=4.
func BenchmarkFig5IntervalSweep(b *testing.B) {
	mach := model.Edison()
	var fig *sweep.Figure
	for i := 0; i < b.N; i++ {
		fig = sweep.Fig5(mach, sweep.Quick)
	}
	renderOnce(b, fig)
	reportSeries(b, fig, 0)
}

// BenchmarkFig5OverdecompSweep regenerates the red line of Figure 5:
// execution time vs over-decomposition degree d at fixed F=1000.
func BenchmarkFig5OverdecompSweep(b *testing.B) {
	mach := model.Edison()
	var fig *sweep.Figure
	for i := 0; i < b.N; i++ {
		fig = sweep.Fig5(mach, sweep.Quick)
	}
	renderOnce(b, fig)
	reportSeries(b, fig, 1)
}

// BenchmarkFig6StrongSingleNode regenerates Figure 6 (left): strong scaling
// of the three implementations on one node.
func BenchmarkFig6StrongSingleNode(b *testing.B) {
	mach := model.Edison()
	var fig *sweep.Figure
	for i := 0; i < b.N; i++ {
		fig = sweep.Fig6Left(mach, sweep.Quick)
	}
	renderOnce(b, fig)
}

// BenchmarkFig6StrongMultiNode regenerates Figure 6 (right): strong scaling
// across nodes, including the §V-B speedup-over-serial comparison.
func BenchmarkFig6StrongMultiNode(b *testing.B) {
	mach := model.Edison()
	var fig *sweep.Figure
	for i := 0; i < b.N; i++ {
		fig = sweep.Fig6Right(mach, sweep.Quick)
	}
	renderOnce(b, fig)
}

// BenchmarkFig7WeakScaling regenerates Figure 7: weak scaling with the grid
// fixed and particles proportional to cores.
func BenchmarkFig7WeakScaling(b *testing.B) {
	mach := model.Edison()
	var fig *sweep.Figure
	for i := 0; i < b.N; i++ {
		fig = sweep.Fig7(mach, sweep.Quick)
	}
	renderOnce(b, fig)
}

func reportSeries(b *testing.B, fig *sweep.Figure, idx int) {
	b.Helper()
	s := fig.Series[idx]
	lo, hi := s.Values[0], s.Values[0]
	for _, v := range s.Values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	b.ReportMetric(hi/lo, "worst/best")
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ----------

func ablationWorkload(b *testing.B) model.WorkloadFactory {
	b.Helper()
	m := grid.MustMesh(1498, 1)
	return func() *model.Workload {
		w, err := model.NewWorkload(dist.Config{Mesh: m, N: 600000, Dist: dist.Geometric{R: 0.999}, Seed: 1}, nil)
		if err != nil {
			b.Fatal(err)
		}
		return w
	}
}

// BenchmarkAblationLBStrategies compares the runtime balancers at 96 cores:
// Charm-style GreedyLB (locality-agnostic, the paper's behaviour), RefineLB
// (incremental), and the locality-hinted greedy the paper's §V-B suggests.
func BenchmarkAblationLBStrategies(b *testing.B) {
	mach := model.Edison()
	wf := ablationWorkload(b)
	strategies := []ampi.Strategy{ampi.GreedyLB{}, ampi.RefineLB{}, &ampi.HintedGreedyLB{}}
	for i := 0; i < b.N; i++ {
		for _, s := range strategies {
			o := model.SimulateAMPI(mach, wf(), 96, 1500, model.AMPIModelParams{Overdecompose: 8, Every: 160, Strategy: s})
			if i == 0 {
				b.Logf("%-16s %7.2fs (compute %.2f, comm %.2f, lb %.2f, migrations %d)",
					s.Name(), o.Seconds, o.ComputeSeconds, o.CommSeconds, o.LBSeconds, o.Migrations)
			}
		}
	}
}

// BenchmarkAblationDiffusionKnobs sweeps the three interfering diffusion
// parameters (§IV-B) around the tuned point, demonstrating that the cut
// speed Width/Every must outpace the workload drift.
func BenchmarkAblationDiffusionKnobs(b *testing.B) {
	mach := model.Edison()
	wf := ablationWorkload(b)
	configs := []diffusion.Params{
		{Every: 2, Threshold: 0.02, Width: 8, MinWidth: 9},      // tuned
		{Every: 2, Threshold: 0.02, Width: 1, MinWidth: 2},      // too narrow
		{Every: 50, Threshold: 0.02, Width: 8, MinWidth: 9},     // too rare
		{Every: 50, Threshold: 0.02, Width: 100, MinWidth: 101}, // rare but wide
		{Every: 2, Threshold: 0.5, Width: 8, MinWidth: 9},       // too timid
	}
	for i := 0; i < b.N; i++ {
		for _, p := range configs {
			o := model.SimulateDiffusion(mach, wf(), 24, 1500, p)
			if i == 0 {
				b.Logf("every=%-3d width=%-3d thresh=%.2f: %7.2fs (maxload %.0f/%.0f)",
					p.Every, p.Width, p.Threshold, o.Seconds, o.MaxFinalLoad, o.IdealLoad)
			}
		}
	}
}

// BenchmarkAblationTwoPhase compares x-only diffusion (the paper's
// experimental choice) with the full two-phase scheme on the y-uniform
// paper workload: phase 2 costs a reduction and buys nothing here.
func BenchmarkAblationTwoPhase(b *testing.B) {
	mach := model.Edison()
	wf := ablationWorkload(b)
	for i := 0; i < b.N; i++ {
		x := model.SimulateDiffusion(mach, wf(), 96, 1500, diffusion.Params{Every: 2, Threshold: 0.02, Width: 8, MinWidth: 9})
		two := model.SimulateDiffusion(mach, wf(), 96, 1500, diffusion.Params{Every: 2, Threshold: 0.02, Width: 8, MinWidth: 9, TwoPhase: true})
		if i == 0 {
			b.Logf("x-only %7.3fs   two-phase %7.3fs (overhead %+.1f%%)", x.Seconds, two.Seconds, (two.Seconds/x.Seconds-1)*100)
		}
	}
}

// BenchmarkAblationOverdecomposition isolates the d knob's two sides: finer
// balance granularity vs per-VP scheduling and fragmentation overhead.
func BenchmarkAblationOverdecomposition(b *testing.B) {
	mach := model.Edison()
	wf := ablationWorkload(b)
	for i := 0; i < b.N; i++ {
		for _, d := range []int{1, 4, 16, 64} {
			o := model.SimulateAMPI(mach, wf(), 96, 1500, model.AMPIModelParams{Overdecompose: d, Every: 640})
			if i == 0 {
				b.Logf("d=%-3d %7.2fs (compute %.2f, comm %.2f, maxload %.0f/%.0f)",
					d, o.Seconds, o.ComputeSeconds, o.CommSeconds, o.MaxFinalLoad, o.IdealLoad)
			}
		}
	}
}

// --- End-to-end benchmarks of the real goroutine drivers -------------------

// benchWorkers resolves the per-rank move worker count for the driver
// benchmarks: PICPRK_BENCH_WORKERS if set, else 0 (the driver default,
// GOMAXPROCS/ranks). Set it to compare worker counts on one machine, e.g.
// PICPRK_BENCH_WORKERS=4 go test -bench Driver -benchtime 3x.
func benchWorkers(b *testing.B) int {
	b.Helper()
	v := os.Getenv("PICPRK_BENCH_WORKERS")
	if v == "" {
		return 0
	}
	w, err := strconv.Atoi(v)
	if err != nil || w < 0 {
		b.Fatalf("bad PICPRK_BENCH_WORKERS=%q", v)
	}
	return w
}

func benchConfig(b *testing.B) driver.Config {
	b.Helper()
	mesh, err := grid.NewMesh(64, grid.DefaultCharge)
	if err != nil {
		b.Fatal(err)
	}
	return driver.Config{
		Mesh: mesh, N: 20000, Steps: 50,
		Dist: dist.Geometric{R: 0.92}, Seed: 5,
		Workers: benchWorkers(b),
	}
}

// BenchmarkDriverBaseline measures the real mpi-2d driver end to end.
func BenchmarkDriverBaseline(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		if _, err := driver.RunBaseline(4, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.N*cfg.Steps), "particle-steps/op")
}

// BenchmarkDriverDiffusion measures the real mpi-2d-LB driver end to end.
func BenchmarkDriverDiffusion(b *testing.B) {
	cfg := benchConfig(b)
	params := diffusion.Params{Every: 5, Threshold: 0.05, Width: 2, MinWidth: 3}
	for i := 0; i < b.N; i++ {
		if _, err := driver.RunDiffusion(4, cfg, params); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.N*cfg.Steps), "particle-steps/op")
}

// BenchmarkDriverAMPI measures the real ampi driver end to end, including
// PUP-serialized VP migration.
func BenchmarkDriverAMPI(b *testing.B) {
	cfg := benchConfig(b)
	params := driver.AMPIParams{Overdecompose: 4, Every: 10}
	for i := 0; i < b.N; i++ {
		if _, err := driver.RunAMPI(4, cfg, params); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.N*cfg.Steps), "particle-steps/op")
}

// BenchmarkDriverWorkSteal measures the real work-stealing driver end to
// end.
func BenchmarkDriverWorkSteal(b *testing.B) {
	cfg := benchConfig(b)
	params := driver.WorkStealParams{Overdecompose: 4, Every: 10}
	for i := 0; i < b.N; i++ {
		if _, err := driver.RunWorkSteal(4, cfg, params); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.N*cfg.Steps), "particle-steps/op")
}

// BenchmarkRealComparison runs all three real drivers side by side on one
// skewed workload and reports the balance quality each achieves — the
// in-process analogue of the paper's Figure 6 comparison (wall-clock
// parallelism is not meaningful in-process; the imbalance columns are).
func BenchmarkRealComparison(b *testing.B) {
	mesh, err := grid.NewMesh(96, grid.DefaultCharge)
	if err != nil {
		b.Fatal(err)
	}
	cfg := driver.Config{
		Mesh: mesh, N: 40000, Steps: 80,
		Dist: dist.Geometric{R: 0.95}, Seed: 5, Verify: true,
	}
	const p = 6
	for i := 0; i < b.N; i++ {
		base, err := driver.RunBaseline(p, cfg)
		if err != nil {
			b.Fatal(err)
		}
		diff, err := driver.RunDiffusion(p, cfg, diffusion.Params{Every: 1, Threshold: 0.05, Width: 2, MinWidth: 3})
		if err != nil {
			b.Fatal(err)
		}
		am, err := driver.RunAMPI(p, cfg, driver.AMPIParams{Overdecompose: 8, Every: 10})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ideal := cfg.N / p
			b.Logf("max particles/rank (ideal %d): mpi-2d %d, mpi-2d-LB %d, ampi %d (all verified: %v)",
				ideal, base.MaxFinalParticles, diff.MaxFinalParticles, am.MaxFinalParticles,
				base.Verified && diff.Verified && am.Verified)
		}
	}
}

// TestMain keeps the root package's benchmarks runnable with plain
// `go test ./...` (no benchmarks selected) without other test files.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
