// Command picbench regenerates the paper's evaluation figures (§V) using
// the performance model at the paper's scales (192–3,072 cores), applying
// the paper's methodology of tuning each implementation's parameters per
// concurrency level. Absolute seconds depend on the machine calibration in
// model.Edison(); the shapes — who wins, by what factor, where crossovers
// fall — are the reproduction target (see EXPERIMENTS.md).
//
// Usage:
//
//	picbench               # all figures, full scale
//	picbench -fig 6r       # one figure: 5 | 6l | 6r | 7 | ws
//	picbench -quick        # reduced problem sizes (minutes -> seconds)
//	picbench -drivers      # benchmark the real drivers, write BENCH_driver.json
//	picbench -benchdiff BENCH_baseline.json BENCH_driver.json
//	                       # compare two driver reports (warn-only)
//	picbench -benchdiff -strict BENCH_baseline.json BENCH_driver.json
//	                       # ...failing on >10% ns/op regressions
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/parres/picprk/internal/driver"
	"github.com/parres/picprk/internal/model"
	"github.com/parres/picprk/internal/sweep"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 5 | 6l | 6r | 7 | ws | all")
		quick     = flag.Bool("quick", false, "reduced problem sizes")
		plot      = flag.Bool("plot", false, "also draw ASCII log-scale charts")
		machine   = flag.String("machine", "edison", "machine model: edison | fatnode")
		drivers   = flag.Bool("drivers", false, "benchmark the real goroutine drivers and write a JSON report")
		diff      = flag.Bool("benchdiff", false, "compare two driver reports (args: baseline.json new.json); warn-only unless -strict")
		strict    = flag.Bool("strict", false, "benchdiff: exit non-zero when any driver's ns/op regressed more than 10%")
		out       = flag.String("o", "BENCH_driver.json", "drivers: output path for the JSON report")
		tlDir     = flag.String("timelines", "", "drivers: also write TIMELINE_<driver>.jsonl telemetry to this directory (one extra untimed run each)")
		ranks     = flag.Int("p", 4, "drivers: number of ranks")
		workers   = flag.Int("workers", 0, "drivers: move workers per rank (0 = GOMAXPROCS/p, min 1)")
		tile      = flag.Int("tile", 0, "drivers: tile edge in cells for the pipelined step (0 = auto, -1 = unpipelined Move+Exchange)")
		transport = flag.String("transport", driver.TransportInproc, "drivers: comm substrate: inproc | tcp | unix (loopback sockets, one wire node per rank)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.IntVar(ranks, "ranks", 4, "alias for -p")
	flag.Parse()

	if *ranks <= 0 {
		fatal(fmt.Errorf("-ranks must be positive, got %d", *ranks))
	}
	if *workers < 0 {
		fatal(fmt.Errorf("-workers must be positive or 0 for automatic, got %d", *workers))
	}
	switch *transport {
	case driver.TransportInproc, driver.TransportTCP, driver.TransportUnix:
	default:
		fatal(fmt.Errorf("unknown -transport %q (want %s, %s or %s)",
			*transport, driver.TransportInproc, driver.TransportTCP, driver.TransportUnix))
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: picbench -benchdiff baseline.json new.json")
			os.Exit(2)
		}
		if err := runBenchDiff(flag.Arg(0), flag.Arg(1), *strict); err != nil {
			fatal(err)
		}
		return
	}

	if *drivers {
		if err := runDriverBench(*ranks, *workers, *tile, *transport, *out, *tlDir); err != nil {
			fatal(err)
		}
		return
	}

	scale := sweep.Full
	if *quick {
		scale = sweep.Quick
	}
	var mach model.Machine
	switch *machine {
	case "edison":
		mach = model.Edison()
	case "fatnode":
		mach = model.FatNode()
	default:
		fmt.Fprintf(os.Stderr, "picbench: unknown machine %q\n", *machine)
		os.Exit(2)
	}

	var figs []*sweep.Figure
	start := time.Now()
	switch *fig {
	case "5":
		figs = append(figs, sweep.Fig5(mach, scale))
	case "6l":
		figs = append(figs, sweep.Fig6Left(mach, scale))
	case "6r":
		figs = append(figs, sweep.Fig6Right(mach, scale))
	case "7":
		figs = append(figs, sweep.Fig7(mach, scale))
	case "ws":
		figs = append(figs, sweep.FigWorkSteal(mach, scale))
	case "all":
		figs = sweep.All(mach, scale)
	default:
		fmt.Fprintf(os.Stderr, "picbench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	for _, f := range figs {
		f.Render(os.Stdout)
		if *plot {
			f.Plot(os.Stdout, 16)
		}
	}
	fmt.Printf("regenerated %d figure(s) in %v\n", len(figs), time.Since(start).Round(time.Second))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "picbench:", err)
	os.Exit(1)
}
