package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"github.com/parres/picprk/internal/diffusion"
	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/driver"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/telemetry"
	"github.com/parres/picprk/internal/trace"
)

// The -drivers mode benchmarks the four real goroutine drivers end to end
// (not the performance model) and writes the results as machine-readable
// JSON, so CI can archive one BENCH_driver.json per commit and a regression
// shows up as a diffable number instead of an anecdote.

// driverBenchResult is one driver's measurement.
type driverBenchResult struct {
	Driver string `json:"driver"`
	// NsPerOp is the wall time of one full run (Steps steps on Ranks ranks).
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp / BytesPerOp cover the whole run including setup; the
	// steady-state move phase itself is pinned to zero allocations by
	// BenchmarkMovePhaseSteadyState in internal/core.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// ParticleStepsPerSec is N·Steps divided by the per-op wall time — the
	// throughput number to compare across commits and worker counts.
	ParticleStepsPerSec float64 `json:"particle_steps_per_sec"`
	// PhaseNS is the per-phase CPU time of the last timed run, summed over
	// ranks, keyed by trace.Phase name (compute/exchange/balance/migrate) — the
	// split that tells an exchange regression from a compute one.
	PhaseNS map[string]int64 `json:"phase_ns,omitempty"`
	// ExchangedBytes is the framed columnar wire volume of the particle
	// exchange over the last timed run, summed over ranks; MigratedBytes the
	// load-balancing payload volume. Both come from the drivers' own
	// accounting, not an estimate.
	ExchangedBytes int64 `json:"exchanged_bytes,omitempty"`
	MigratedBytes  int64 `json:"migrated_bytes,omitempty"`
	// OverlapNS is the exchange time hidden behind interior compute by the
	// tile-pipelined step over the last timed run, summed over ranks. The
	// overlap ratio OverlapNS/(OverlapNS + exchange phase time) is the
	// pipeline's effectiveness: 0 means fully exposed, 1 fully hidden.
	OverlapNS int64 `json:"overlap_ns,omitempty"`
	// MsgsSent / MsgsElided count the exchange messages the last timed run
	// posted vs skipped under the sparse neighbor schedule, summed over
	// ranks. Their sum is (P-1) × exchange calls; a high elided share means
	// the topology made most of the all-to-all unnecessary.
	MsgsSent   int64 `json:"msgs_sent,omitempty"`
	MsgsElided int64 `json:"msgs_elided,omitempty"`
	// WireFramesSent / WireWrites count frames enqueued vs vectored writes
	// issued over the last timed run, summed over every peer connection;
	// frames/writes is the writer's coalescing factor. Wire transports only.
	WireFramesSent int64 `json:"wire_frames_sent,omitempty"`
	WireWrites     int64 `json:"wire_writes,omitempty"`
	// WireLatencyP50NS / WireLatencyP99NS are upper-bound estimates of the
	// one-way data-frame latency quantiles over the last timed run, merged
	// over every peer connection; WireDataFrames is how many data frames
	// those quantiles summarize. Wire transports only.
	WireLatencyP50NS int64 `json:"wire_latency_p50_ns,omitempty"`
	WireLatencyP99NS int64 `json:"wire_latency_p99_ns,omitempty"`
	WireDataFrames   int64 `json:"wire_data_frames,omitempty"`
	// WirePeers breaks the latency down per (node, peer) connection.
	WirePeers []wirePeerBench `json:"wire_peers,omitempty"`
	// StreamNsPerOp is the wall time of one full run with per-step telemetry
	// sampling, a live aggregate, and a drained /events subscriber attached —
	// the fully instrumented configuration; StreamOverheadNS is the delta vs
	// the bare NsPerOp (what live observability costs per run; negative
	// deltas are noise and read as ~0). Wire transports only.
	StreamNsPerOp    int64 `json:"stream_ns_per_op,omitempty"`
	StreamOverheadNS int64 `json:"stream_overhead_ns,omitempty"`
}

// wirePeerBench is one peer connection's one-way latency summary.
type wirePeerBench struct {
	Node   int   `json:"node"`
	Peer   int   `json:"peer"`
	P50NS  int64 `json:"p50_ns"`
	P99NS  int64 `json:"p99_ns"`
	Frames int64 `json:"frames"`
}

// overlapRatio returns the hidden fraction of the total exchange time
// (overlap / (overlap + exposed)), or 0 when nothing was measured.
func (r driverBenchResult) overlapRatio() float64 {
	exposed := r.PhaseNS[trace.Exchange.String()]
	if r.OverlapNS <= 0 || r.OverlapNS+exposed <= 0 {
		return 0
	}
	return float64(r.OverlapNS) / float64(r.OverlapNS+exposed)
}

// driverBenchReport is the BENCH_driver.json schema. GoMaxProcs and Workers
// record the *resolved* values the run used (effective GOMAXPROCS and
// Config.EffectiveWorkers), not the raw flags — a report is only comparable
// to another if both say what actually ran.
type driverBenchReport struct {
	GoVersion  string              `json:"go_version"`
	GoMaxProcs int                 `json:"gomaxprocs"`
	Ranks      int                 `json:"ranks"`
	Workers    int                 `json:"workers"`
	Tile       int                 `json:"tile,omitempty"`
	Transport  string              `json:"transport,omitempty"`
	L          int                 `json:"l"`
	N          int                 `json:"n"`
	Steps      int                 `json:"steps"`
	Results    []driverBenchResult `json:"results"`
}

// driverBenchConfig mirrors benchConfig in the root package's bench_test.go
// so the JSON numbers and `go test -bench Driver` measure the same workload.
func driverBenchConfig(workers, tile int, transport string) (driver.Config, error) {
	mesh, err := grid.NewMesh(64, grid.DefaultCharge)
	if err != nil {
		return driver.Config{}, err
	}
	return driver.Config{
		Mesh: mesh, N: 20000, Steps: 50,
		Dist: dist.Geometric{R: 0.92}, Seed: 5,
		Workers: workers, Tile: tile, Transport: transport,
	}, nil
}

// runDriverBench benchmarks every driver and writes the JSON report to
// path. When timelineDir is non-empty, each driver additionally does one
// telemetry-enabled run (outside the timed loop, so sampling cannot skew
// ns/op or allocs/op) and writes TIMELINE_<driver>.jsonl there.
func runDriverBench(ranks, workers, tile int, transport, path, timelineDir string) error {
	cfg, err := driverBenchConfig(workers, tile, transport)
	if err != nil {
		return err
	}
	runs := []struct {
		name string
		run  func(driver.Config) (*driver.Result, error)
	}{
		{"baseline", func(cfg driver.Config) (*driver.Result, error) {
			return driver.RunBaseline(ranks, cfg)
		}},
		{"diffusion", func(cfg driver.Config) (*driver.Result, error) {
			return driver.RunDiffusion(ranks, cfg, diffusion.Params{Every: 5, Threshold: 0.05, Width: 2, MinWidth: 3})
		}},
		{"ampi", func(cfg driver.Config) (*driver.Result, error) {
			return driver.RunAMPI(ranks, cfg, driver.AMPIParams{Overdecompose: 4, Every: 10})
		}},
		{"worksteal", func(cfg driver.Config) (*driver.Result, error) {
			return driver.RunWorkSteal(ranks, cfg, driver.WorkStealParams{Overdecompose: 4, Every: 10})
		}},
	}

	rep := driverBenchReport{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Ranks:      ranks,
		Workers:    cfg.EffectiveWorkers(ranks),
		Tile:       tile,
		Transport:  transport,
		L:          cfg.Mesh.L,
		N:          cfg.N,
		Steps:      cfg.Steps,
	}
	for _, d := range runs {
		var runErr error
		var last *driver.Result
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := d.run(cfg)
				if err != nil {
					runErr = err
					b.Fatal(err)
				}
				last = res
			}
		})
		if runErr != nil {
			return fmt.Errorf("picbench: %s: %w", d.name, runErr)
		}
		if timelineDir != "" {
			tcfg := cfg
			tcfg.Telemetry = true
			tres, err := d.run(tcfg)
			if err != nil {
				return fmt.Errorf("picbench: %s timeline run: %w", d.name, err)
			}
			tpath := filepath.Join(timelineDir, "TIMELINE_"+d.name+".jsonl")
			if err := writeTimeline(tpath, tres.Timeline); err != nil {
				return fmt.Errorf("picbench: %s: %w", d.name, err)
			}
			fmt.Printf("wrote %s\n", tpath)
		}
		nsPerOp := r.NsPerOp()
		res := driverBenchResult{
			Driver:      d.name,
			NsPerOp:     nsPerOp,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if nsPerOp > 0 {
			res.ParticleStepsPerSec = float64(cfg.N*cfg.Steps) / (float64(nsPerOp) / float64(time.Second))
		}
		if last != nil {
			res.PhaseNS = phaseSplit(last)
			for _, s := range last.PerRank {
				res.ExchangedBytes += s.BytesExchanged
				res.MigratedBytes += s.BytesMigrated
				res.OverlapNS += s.Overlap.Nanoseconds()
				res.MsgsSent += s.MsgsSent
				res.MsgsElided += s.MsgsElided
			}
			if last.Wire != nil {
				for i := range last.Wire.Peers {
					res.WireFramesSent += last.Wire.Peers[i].FramesSent
					res.WireWrites += last.Wire.Peers[i].Writes
				}
				if h := last.Wire.MergedLatency(); h.Count() > 0 {
					res.WireLatencyP50NS = h.Quantile(0.5)
					res.WireLatencyP99NS = h.Quantile(0.99)
					res.WireDataFrames = h.Count()
				}
				for i := range last.Wire.Peers {
					p := &last.Wire.Peers[i]
					if p.OneWay.Count() == 0 {
						continue
					}
					res.WirePeers = append(res.WirePeers, wirePeerBench{
						Node: p.Node, Peer: p.Peer,
						P50NS:  p.OneWay.Quantile(0.5),
						P99NS:  p.OneWay.Quantile(0.99),
						Frames: p.OneWay.Count(),
					})
				}
			}
		}
		if transport != driver.TransportInproc {
			streamNs, err := measureStreamOverhead(ranks, cfg, d.run)
			if err != nil {
				return fmt.Errorf("picbench: %s streamed run: %w", d.name, err)
			}
			res.StreamNsPerOp = streamNs
			res.StreamOverheadNS = streamNs - nsPerOp
		}
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-10s %12d ns/op %12d allocs/op %10.1fM particle-steps/s  xchg %s  overlap %4.0f%%  msgs %d (%d elided)",
			d.name, res.NsPerOp, res.AllocsPerOp, res.ParticleStepsPerSec/1e6,
			fmtBytes(res.ExchangedBytes), 100*res.overlapRatio(), res.MsgsSent, res.MsgsElided)
		if res.WireDataFrames > 0 {
			fmt.Printf("  wire p50 ≤ %s p99 ≤ %s",
				telemetry.FmtNS(res.WireLatencyP50NS), telemetry.FmtNS(res.WireLatencyP99NS))
		}
		if res.StreamNsPerOp > 0 {
			fmt.Printf("  stream +%s/op", telemetry.FmtNS(max(res.StreamOverheadNS, 0)))
		}
		fmt.Println()
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// measureStreamOverhead times one fully instrumented run: telemetry
// sampling on, a live aggregate observing every sample, and a subscriber
// draining the /events stream the whole time — the worst-case observability
// configuration. Returned ns/op minus the bare ns/op is the streaming cost.
func measureStreamOverhead(ranks int, cfg driver.Config, run func(driver.Config) (*driver.Result, error)) (int64, error) {
	live := telemetry.NewLive(ranks)
	ch, cancel := live.Stream().Subscribe(1024)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for range ch {
		}
	}()
	scfg := cfg
	scfg.Telemetry = true
	scfg.Live = live
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := run(scfg); err != nil {
				runErr = err
				b.Fatal(err)
			}
		}
	})
	cancel()
	<-drained
	if runErr != nil {
		return 0, runErr
	}
	return r.NsPerOp(), nil
}

// phaseSplit sums a run's per-rank phase times into a name→nanos map using
// the same phase names as the timeline schema.
func phaseSplit(res *driver.Result) map[string]int64 {
	ns := make(map[string]int64, trace.NumPhases)
	for _, s := range res.PerRank {
		ns[trace.Compute.String()] += s.Compute.Nanoseconds()
		ns[trace.Exchange.String()] += s.Exchange.Nanoseconds()
		ns[trace.Balance.String()] += s.Balance.Nanoseconds()
		ns[trace.Migrate.String()] += s.Migrate.Nanoseconds()
	}
	return ns
}

// fmtBytes renders a byte count human-readably for the console summary.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// writeTimeline writes one run's timeline as JSONL.
func writeTimeline(path string, tl *telemetry.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteJSONL(f, tl); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
