package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// The -benchdiff mode compares two BENCH_driver.json reports — the committed
// baseline versus a fresh run — and prints per-driver wall-time and per-phase
// deltas. By default it is warn-only: benchmark noise on shared CI runners
// makes a hard gate flaky, so regressions surface as loud WARN lines in the
// log (and in the diffable JSON artifacts) rather than as a red build. With
// -strict, an ns/op regression past the threshold is an error — CI uses it
// for the in-process suite, whose numbers are stable enough to gate on,
// while the noisier socket-transport suite stays warn-only.

// warnThreshold is the relative slowdown above which a delta is flagged
// (and, under -strict, fails the comparison).
const warnThreshold = 0.10

// runBenchDiff loads the two reports and prints the comparison. Unreadable
// or unparsable input is always an error; performance deltas are errors only
// in strict mode, and only for per-driver ns/op regressions past the
// threshold (phase-level WARNs never fail — phases shift against each other
// even when the total holds).
func runBenchDiff(basePath, newPath string, strict bool) error {
	base, err := readBenchReport(basePath)
	if err != nil {
		return err
	}
	cur, err := readBenchReport(newPath)
	if err != nil {
		return err
	}
	if base.Ranks != cur.Ranks || base.L != cur.L || base.N != cur.N || base.Steps != cur.Steps {
		fmt.Printf("note: configs differ (base p=%d L=%d n=%d steps=%d, new p=%d L=%d n=%d steps=%d); deltas are indicative only\n",
			base.Ranks, base.L, base.N, base.Steps, cur.Ranks, cur.L, cur.N, cur.Steps)
	}
	byDriver := make(map[string]driverBenchResult, len(base.Results))
	for _, r := range base.Results {
		byDriver[r.Driver] = r
	}
	fmt.Printf("benchdiff: %s -> %s\n", basePath, newPath)
	var regressed []string
	for _, nr := range cur.Results {
		br, ok := byDriver[nr.Driver]
		if !ok {
			fmt.Printf("%-10s %12d ns/op  (no baseline entry)\n", nr.Driver, nr.NsPerOp)
			continue
		}
		fmt.Printf("%-10s %12d -> %12d ns/op  %s\n",
			nr.Driver, br.NsPerOp, nr.NsPerOp, deltaTag(br.NsPerOp, nr.NsPerOp))
		if br.NsPerOp > 0 && float64(nr.NsPerOp-br.NsPerOp)/float64(br.NsPerOp) > warnThreshold {
			regressed = append(regressed, nr.Driver)
		}
		if len(br.PhaseNS) == 0 {
			if len(nr.PhaseNS) > 0 {
				fmt.Printf("           (baseline predates per-phase splits; no phase deltas)\n")
			}
			continue
		}
		// Stable phase order for readable logs.
		names := make([]string, 0, len(nr.PhaseNS))
		for name := range nr.PhaseNS {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("           %-9s %12d -> %12d ns  %s\n",
				name, br.PhaseNS[name], nr.PhaseNS[name], deltaTag(br.PhaseNS[name], nr.PhaseNS[name]))
		}
		if br.ExchangedBytes > 0 || nr.ExchangedBytes > 0 {
			fmt.Printf("           exchanged %s -> %s, migrated %s -> %s\n",
				fmtBytes(br.ExchangedBytes), fmtBytes(nr.ExchangedBytes),
				fmtBytes(br.MigratedBytes), fmtBytes(nr.MigratedBytes))
		}
		if br.OverlapNS > 0 || nr.OverlapNS > 0 {
			// Overlap ratio: the fraction of total exchange time hidden behind
			// interior compute by the tile pipeline. A drop means the pipeline
			// lost effectiveness even if wall time held steady.
			fmt.Printf("           overlap   %11.0f%% -> %11.0f%%\n",
				100*br.overlapRatio(), 100*nr.overlapRatio())
		}
		if br.MsgsSent > 0 || nr.MsgsSent > 0 {
			fmt.Printf("           msgs      %12d -> %12d  (elided %d -> %d)\n",
				br.MsgsSent, nr.MsgsSent, br.MsgsElided, nr.MsgsElided)
		}
	}
	if strict && len(regressed) > 0 {
		return fmt.Errorf("ns/op regressed more than %.0f%% for: %s",
			100*warnThreshold, strings.Join(regressed, ", "))
	}
	return nil
}

// deltaTag renders a relative change, flagging slowdowns past the threshold.
func deltaTag(base, cur int64) string {
	if base <= 0 {
		return "(no baseline)"
	}
	rel := float64(cur-base) / float64(base)
	tag := fmt.Sprintf("%+.1f%%", 100*rel)
	if rel > warnThreshold {
		return "WARN " + tag
	}
	return tag
}

// readBenchReport parses one BENCH_driver.json. Older reports without
// phase_ns/exchanged_bytes parse fine — those fields just stay zero.
func readBenchReport(path string) (*driverBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep driverBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
