package main

// Multi-process mode: with -transport tcp|unix, picrun runs each rank in
// its own OS process, connected by the wire transport in internal/comm/wire.
// The coordinator (the picrun the user invoked) starts a rendezvous
// listener, forks one worker process per remaining rank — re-executing
// itself with -join <addr> — and hosts world rank 0, so results are
// reported exactly as in the in-process mode. Remote workers can be
// attached by hand: start the coordinator with -spawn 0 -listen host:port
// and run `picrun <same flags> -join host:port` elsewhere.

import (
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/comm/wire"
	"github.com/parres/picprk/internal/driver"
	"github.com/parres/picprk/internal/telemetry"
)

// runOptions is the subset of flags the run-mode logic needs, separated
// from main's flag block so validation is unit-testable.
type runOptions struct {
	impl      string
	ranks     int
	steps     int
	n         int
	workers   int
	transport string
	join      string
	spawn     int
	ckptEvery int
	recover   bool
}

// validateOptions rejects malformed run shapes with actionable errors
// before any listener is opened or process forked.
func validateOptions(o runOptions) error {
	if o.ranks <= 0 {
		return fmt.Errorf("-ranks must be positive, got %d", o.ranks)
	}
	if o.steps <= 0 {
		return fmt.Errorf("-steps must be positive, got %d", o.steps)
	}
	if o.n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", o.n)
	}
	if o.workers < 0 {
		return fmt.Errorf("-workers must be positive or 0 for automatic, got %d", o.workers)
	}
	switch o.transport {
	case driver.TransportInproc, driver.TransportTCP, driver.TransportUnix:
	default:
		return fmt.Errorf("unknown -transport %q (want %s, %s or %s)",
			o.transport, driver.TransportInproc, driver.TransportTCP, driver.TransportUnix)
	}
	if o.transport == driver.TransportInproc {
		if o.join != "" {
			return fmt.Errorf("-join needs a wire transport: add -transport tcp or -transport unix")
		}
		if o.spawn > 0 {
			return fmt.Errorf("-spawn needs a wire transport: add -transport tcp or -transport unix")
		}
	}
	if o.impl == "serial" && (o.transport != driver.TransportInproc || o.join != "") {
		return fmt.Errorf("-impl serial runs in one process and has no transport")
	}
	if o.ckptEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be positive or 0 to disable, got %d", o.ckptEvery)
	}
	if o.recover {
		if o.ckptEvery == 0 {
			return fmt.Errorf("-recover needs checkpoints to roll back to: add -checkpoint-every N")
		}
		if o.transport == driver.TransportInproc {
			return fmt.Errorf("-recover needs a wire transport: add -transport tcp or -transport unix")
		}
	}
	if o.spawn >= 0 && o.spawn > o.ranks-1 {
		return fmt.Errorf("-spawn %d exceeds the %d non-coordinator ranks", o.spawn, o.ranks-1)
	}
	return nil
}

// effectiveSpawn resolves -spawn: by default the coordinator forks every
// non-coordinator rank locally; a smaller count leaves slots for workers
// joining from elsewhere.
func (o runOptions) effectiveSpawn() int {
	if o.spawn >= 0 {
		return o.spawn
	}
	return o.ranks - 1
}

// workerArgs rebuilds the command line for a forked worker: every flag the
// user set, minus the coordinator-only ones, plus -join. Passing the flags
// through (rather than a serialized config) keeps workers runnable by hand
// on other hosts with the exact same invocation.
func workerArgs(rendezvousAddr string) []string {
	// Coordinator-only flags are withheld; -timeline/-chrometrace pass
	// through because cfg.Telemetry must match on every rank (the timeline
	// gather is collective) — workers record samples, only rank 0 writes.
	skip := map[string]bool{
		"join": true, "listen": true, "spawn": true,
		"http": true, "cpuprofile": true, "memprofile": true,
		"balancelog": true, "dumpstate": true, "clock": true,
	}
	var args []string
	flag.Visit(func(f *flag.Flag) {
		if !skip[f.Name] {
			args = append(args, "-"+f.Name+"="+f.Value.String())
		}
	})
	return append(args, "-join="+rendezvousAddr)
}

// runCoordinator executes a multi-process run from the user's picrun: start
// the rendezvous, fork the local workers, host rank 0, report the result.
func runCoordinator(eng *driver.Engine, o runOptions, listen string, live *telemetry.Live, report func(*driver.Result, error)) {
	network := o.transport
	if listen == "" {
		listen = wire.DefaultAddr(network)
	}
	rv, err := wire.StartRendezvous(network, listen, o.ranks)
	if err != nil {
		fatal(err)
	}
	spawn := o.effectiveSpawn()
	if spawn < o.ranks-1 {
		fmt.Printf("rendezvous: %s %s — waiting for %d externally joined rank(s)\n",
			network, rv.Addr(), o.ranks-1-spawn)
	}
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	procs := make([]*exec.Cmd, 0, spawn)
	for i := 0; i < spawn; i++ {
		cmd := exec.Command(exe, workerArgs(rv.Addr())...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fatal(fmt.Errorf("forking worker %d: %w", i, err))
		}
		procs = append(procs, cmd)
	}

	node, err := wire.Join(network, rv.Addr(), wire.JoinOptions{Count: 1, WantBase: 0, Bind: bindFor(network, listen)})
	if err != nil {
		fatal(err)
	}
	if err := rv.Wait(); err != nil {
		fatal(err)
	}
	live.AddWireSource(node.WireReport)
	w := comm.NewTransportWorld(node, eng.Cfg.WorldOptions())
	res, runErr := eng.RunWorld(w)
	if res != nil {
		// Rank 0's own view: its peer connections and offset (identically 0);
		// the workers' offsets live on their nodes and surface per-frame in
		// the offset-corrected timeline stamps instead.
		rep := node.WireReport()
		res.Wire = &rep
	}
	for i, cmd := range procs {
		if werr := cmd.Wait(); werr != nil && runErr == nil {
			runErr = fmt.Errorf("worker %d: %w", i, werr)
		}
	}
	report(res, runErr)
}

// workerProc tracks one forked worker so the elastic coordinator can tell
// dead processes (to be replaced) from live ones (which rejoin on their
// own).
type workerProc struct {
	cmd  *exec.Cmd
	done chan struct{}
}

func (w *workerProc) dead() bool {
	select {
	case <-w.done:
		return true
	default:
		return false
	}
}

// runElasticCoordinator is runCoordinator's fault-tolerant variant: the
// engine's RunElastic supervisor owns the rendezvous/run loop, and this
// side supplies the process management — fork the initial local workers,
// and after a rank loss reap the dead ones and fork replacements into the
// re-opened rendezvous. Externally joined workers are the user's to
// re-join (the rendezvous address stays the same across generations).
func runElasticCoordinator(eng *driver.Engine, o runOptions, listen string, report func(*driver.Result, error)) {
	network := o.transport
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	spawn := o.effectiveSpawn()
	var procs []*workerProc
	fork := func(addr string, replacement bool) error {
		cmd := exec.Command(exe, workerArgs(addr)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if replacement {
			// The chaos kill targets the first world generation only: a
			// replacement inheriting the armed hook would crash again at the
			// same step after every rollback, and the run would burn through
			// its recovery budget re-killing its own replacements.
			cmd.Env = environWithout(chaosKillEnv)
		}
		if err := cmd.Start(); err != nil {
			return err
		}
		w := &workerProc{cmd: cmd, done: make(chan struct{})}
		go func() {
			_ = cmd.Wait() // a crashed (replaced) worker exits nonzero by design
			close(w.done)
		}()
		procs = append(procs, w)
		return nil
	}
	spawnWorkers := func(gen int, addr string) error {
		if gen == 0 {
			if spawn < o.ranks-1 {
				fmt.Printf("rendezvous: %s %s — waiting for %d externally joined rank(s)\n",
					network, addr, o.ranks-1-spawn)
			}
			for i := 0; i < spawn; i++ {
				if err := fork(addr, false); err != nil {
					return fmt.Errorf("forking worker %d: %w", i, err)
				}
			}
			return nil
		}
		// A rank was lost: give the OS a moment to reap the dead child (a
		// SIGKILLed process shows up within milliseconds; the wait only runs
		// long when the lost rank was an external worker), then fork one
		// replacement per dead local worker. Survivors rejoin by themselves.
		deadline := time.Now().Add(5 * time.Second)
		for {
			dead := 0
			for _, w := range procs {
				if w.dead() {
					dead++
				}
			}
			if dead > 0 || time.Now().After(deadline) {
				alive := procs[:0]
				for _, w := range procs {
					if !w.dead() {
						alive = append(alive, w)
					}
				}
				procs = alive
				if dead == 0 {
					fmt.Printf("recovery: no dead local worker; waiting for an external re-join at %s %s\n", network, addr)
				}
				for i := 0; i < dead; i++ {
					fmt.Printf("recovery: re-forking a replacement worker (generation %d)\n", gen)
					if err := fork(addr, true); err != nil {
						return fmt.Errorf("re-forking replacement: %w", err)
					}
				}
				return nil
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	res, runErr := eng.RunElastic(driver.ElasticOptions{
		Network: network, Listen: listen, Ranks: o.ranks,
		SpawnWorkers: spawnWorkers, Bind: bindFor(network, listen),
	})
	// Worker exit codes are not propagated here: the victim of a recovered
	// crash exits nonzero by design, and any failure that actually sank the
	// run already surfaced through RunElastic.
	for _, w := range procs {
		<-w.done
	}
	report(res, runErr)
}

// environWithout returns the current environment minus one variable.
func environWithout(name string) []string {
	env := os.Environ()
	out := env[:0]
	for _, kv := range env {
		if !strings.HasPrefix(kv, name+"=") {
			out = append(out, kv)
		}
	}
	return out
}

// bindFor picks the mesh-listener bind address for a node: loopback runs
// can leave it empty (wire defaults apply); a coordinator listening on a
// routable address advertises the same host for its mesh listener so remote
// workers can dial back.
func bindFor(network, listen string) string {
	if network != driver.TransportTCP {
		return ""
	}
	host, _, ok := strings.Cut(listen, ":")
	if !ok || host == "" || host == "127.0.0.1" || host == "localhost" {
		return ""
	}
	return host + ":0"
}

// chaosKillEnv, when set to "rank:step" in a worker's environment, arms a
// self-inflicted SIGKILL: the worker holding that rank kills its own
// process at the top of that step — no shutdown handshake, no flushed
// buffers, exactly what an external `kill -9` produces. The chaos e2e test
// and the CI recovery job use it to crash a rank at a deterministic point.
const chaosKillEnv = "PICRUN_CHAOS_KILL"

// chaosKillHook parses a chaosKillEnv spec into a step hook. The hook
// disarms itself on every process the first time its world passes the kill
// step: after the rollback the re-executed steps must not re-trigger the
// crash on a survivor that was re-admitted under the victim's rank.
func chaosKillHook(spec string) (func(*comm.Comm, int), error) {
	rankStr, stepStr, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("%s=%q: want rank:step", chaosKillEnv, spec)
	}
	rank, err1 := strconv.Atoi(rankStr)
	step, err2 := strconv.Atoi(stepStr)
	if err1 != nil || err2 != nil {
		return nil, fmt.Errorf("%s=%q: want rank:step", chaosKillEnv, spec)
	}
	armed := true
	return func(c *comm.Comm, st int) {
		if !armed || st < step {
			return
		}
		if st == step && c.Rank() == rank {
			p, _ := os.FindProcess(os.Getpid())
			_ = p.Kill()
			select {} // never step past a pending SIGKILL
		}
		armed = false
	}, nil
}

// runWorker executes the worker side of a multi-process run: join the
// coordinator's rendezvous, host the assigned rank, and exit. Results are
// reported by the process hosting rank 0, so a worker is silent on success.
// With -recover armed, a lost peer means "the supervisor is rolling the
// world back": the worker rejoins the same rendezvous address instead of
// exiting (Engine.RunElasticWorker owns that loop).
func runWorker(eng *driver.Engine, o runOptions) {
	if spec := os.Getenv(chaosKillEnv); spec != "" {
		hook, err := chaosKillHook(spec)
		if err != nil {
			fatal(err)
		}
		eng.StepHook = hook
	}
	if o.recover {
		if err := eng.RunElasticWorker(o.transport, o.join); err != nil {
			fatal(err)
		}
		return
	}
	node, err := wire.Join(o.transport, o.join, wire.JoinOptions{Count: 1, WantBase: -1})
	if err != nil {
		fatal(err)
	}
	w := comm.NewTransportWorld(node, eng.Cfg.WorldOptions())
	if _, err := eng.RunWorld(w); err != nil {
		fatal(err)
	}
}

// writeState dumps the verified global final state and the balance log in a
// deterministic text form — float bits in hex, one particle per line — so
// two runs can be compared for bitwise identity with a file diff. Requires
// -verify (the gather that assembles the global state).
func writeState(path string, res *driver.Result) error {
	if res.Particles == nil {
		return fmt.Errorf("-dumpstate needs -verify=true (the gathered state)")
	}
	return writeFileWith(path, func(f *os.File) error {
		for i := range res.Particles {
			p := &res.Particles[i]
			if _, err := fmt.Fprintf(f, "%d %016x %016x %016x %016x %016x %016x %016x %d %d %d %d\n",
				p.ID, math.Float64bits(p.X), math.Float64bits(p.Y),
				math.Float64bits(p.VX), math.Float64bits(p.VY), math.Float64bits(p.Q),
				math.Float64bits(p.X0), math.Float64bits(p.Y0), p.K, p.M, p.Dir, p.Born); err != nil {
				return err
			}
		}
		for _, line := range res.BalanceLog {
			if _, err := fmt.Fprintf(f, "balance %s\n", line); err != nil {
				return err
			}
		}
		return nil
	})
}
