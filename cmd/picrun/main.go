// Command picrun executes one PIC PRK simulation with any of the
// implementations — the sequential reference or the four parallel drivers
// of paper §IV running on goroutine ranks — and reports timing, per-rank
// statistics, and the self-verification verdict.
//
// Examples:
//
//	picrun -impl serial -L 64 -n 100000 -steps 500
//	picrun -impl diffusion -p 8 -L 128 -n 200000 -steps 1000 -r 0.95 -every 10
//	picrun -impl ampi -p 4 -d 8 -F 50 -L 64 -n 50000 -steps 500
//	picrun -impl worksteal -p 4 -d 8 -F 25 -steal-threshold 0.25
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"github.com/parres/picprk/internal/ampi"
	"github.com/parres/picprk/internal/core"
	"github.com/parres/picprk/internal/diffusion"
	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/driver"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/stats"
	"github.com/parres/picprk/internal/telemetry"
	"github.com/parres/picprk/internal/trace"
)

// obsOpts carries the observability flags to the run reporters.
type obsOpts struct {
	// timeline and chrome are output paths for the JSONL timeline and the
	// Chrome trace-event export ("" = off).
	timeline, chrome string
	// clock picks the Chrome-trace clock: telemetry.ClockBSP (synthetic
	// step-aligned, deterministic) or telemetry.ClockWall (recorded
	// offset-corrected wall-clock stamps).
	clock string
	// balanceLog dumps the executed balancing decisions after the run.
	balanceLog bool
	// dumpState writes the final particle state (float bits in hex) and the
	// balance log to this path, for bitwise run-to-run comparison.
	dumpState string
}

func (o obsOpts) sampling() bool { return o.timeline != "" || o.chrome != "" }

func main() {
	var (
		impl      = flag.String("impl", "serial", "implementation: serial | baseline | diffusion | ampi | worksteal")
		p         = flag.Int("p", 4, "number of ranks (parallel implementations)")
		L         = flag.Int("L", 64, "domain size in cells per dimension (must be even)")
		n         = flag.Int("n", 100000, "number of particles")
		steps     = flag.Int("steps", 500, "time steps")
		k         = flag.Int("k", 0, "horizontal speed parameter: (2k+1) cells/step")
		mVert     = flag.Int("m", 0, "vertical speed parameter: m cells/step")
		distName  = flag.String("dist", "geometric", "distribution: geometric | sinusoidal | linear | patch | uniform")
		r         = flag.Float64("r", 0.999, "geometric ratio (dist=geometric)")
		seed      = flag.Uint64("seed", 1, "placement seed")
		every     = flag.Int("every", 10, "diffusion: steps between LB actions")
		width     = flag.Int("width", 1, "diffusion: border columns moved per action")
		threshold = flag.Float64("threshold", 0.05, "diffusion: trigger threshold (fraction of mean load)")
		d         = flag.Int("d", 4, "ampi: over-decomposition degree")
		interval  = flag.Int("F", 50, "ampi: steps between load balancer invocations")
		strategy  = flag.String("strategy", "refine", "ampi: refine | greedy | hinted | steal | rotate | null")
		stealTh   = flag.Float64("steal-threshold", 0, "worksteal: hunger trigger fraction (0 = default 0.25)")
		verify    = flag.Bool("verify", true, "verify against the closed-form solution")
		workers   = flag.Int("workers", 0, "move-phase worker goroutines per rank (0 = GOMAXPROCS/p, min 1)")
		tile      = flag.Int("tile", 0, "tile edge in cells for the pipelined step (0 = auto, -1 = unpipelined Move+Exchange)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		timeline  = flag.String("timeline", "", "write the per-step telemetry timeline (JSONL) to this file")
		chrome    = flag.String("chrometrace", "", "write the timeline as Chrome trace-event JSON (chrome://tracing, Perfetto) to this file")
		clockName = flag.String("clock", telemetry.ClockBSP, "chrome trace clock: bsp (synthetic step-aligned) | wall (offset-corrected wall-clock stamps)")
		httpAddr  = flag.String("http", "", "serve /metrics, /debug/vars, and /debug/pprof on this address during the run (e.g. :6060)")
		balLog    = flag.Bool("balancelog", false, "print one line per executed load-balancing decision after the run")
		transport = flag.String("transport", driver.TransportInproc, "comm substrate: inproc (goroutine ranks) | tcp | unix (one process per rank)")
		join      = flag.String("join", "", "worker mode: join the rendezvous at this address instead of coordinating a run")
		listen    = flag.String("listen", "", "coordinator: rendezvous listen address (default: an ephemeral loopback address; set host:port to accept remote -join workers)")
		spawn     = flag.Int("spawn", -1, "coordinator: worker processes to fork locally (-1 = one per non-coordinator rank; fewer leaves slots for remote -join workers)")
		dumpState = flag.String("dumpstate", "", "write the verified final state (float bits in hex) and balance log to this file")
		ckptEvery = flag.Int("checkpoint-every", 0, "end an epoch every N steps with a distributed checkpoint (0 = off)")
		recovery  = flag.Bool("recover", false, "survive rank failures: roll back to the last checkpoint, re-admit a replacement -join worker, and resume (needs -checkpoint-every and a wire transport)")
	)
	flag.IntVar(p, "ranks", 4, "alias for -p")
	flag.Parse()

	opts := runOptions{
		impl: *impl, ranks: *p, steps: *steps, n: *n, workers: *workers,
		transport: *transport, join: *join, spawn: *spawn,
		ckptEvery: *ckptEvery, recover: *recovery,
	}
	if err := validateOptions(opts); err != nil {
		fatal(err)
	}

	mesh, err := grid.NewMesh(*L, grid.DefaultCharge)
	if err != nil {
		fatal(err)
	}
	var d0 dist.Distribution
	switch *distName {
	case "geometric":
		d0 = dist.Geometric{R: *r}
	case "sinusoidal":
		d0 = dist.Sinusoidal{}
	case "linear":
		d0 = dist.Linear{Alpha: 1, Beta: 2}
	case "patch":
		d0 = dist.Patch{X0: 0, X1: *L / 4, Y0: 0, Y1: *L / 4}
	case "uniform":
		d0 = dist.Uniform{}
	default:
		fatal(fmt.Errorf("unknown distribution %q", *distName))
	}

	implCfg := implOptions{
		every: *every, width: *width, threshold: *threshold,
		d: *d, interval: *interval, strategy: *strategy, stealTh: *stealTh,
	}

	// Worker mode: build the identical engine from the identical flags, join
	// the coordinator's rendezvous, run the assigned rank, and exit. All
	// reporting and observability stays with the coordinator (rank 0).
	if *join != "" {
		cfg := driver.Config{
			Mesh: mesh, N: *n, K: *k, M: *mVert,
			Dist: d0, Seed: *seed, Steps: *steps, Verify: *verify,
			Workers: *workers, Tile: *tile, Telemetry: *timeline != "" || *chrome != "",
			Transport:       *transport,
			CheckpointEvery: *ckptEvery, Recover: *recovery,
		}
		eng, err := makeEngine(*impl, *p, cfg, implCfg)
		if err != nil {
			fatal(err)
		}
		runWorker(eng, opts)
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	obs := obsOpts{timeline: *timeline, chrome: *chrome, clock: *clockName, balanceLog: *balLog, dumpState: *dumpState}
	if obs.clock != telemetry.ClockBSP && obs.clock != telemetry.ClockWall {
		fatal(fmt.Errorf("unknown -clock %q (want %s or %s)", obs.clock, telemetry.ClockBSP, telemetry.ClockWall))
	}
	var live *telemetry.Live
	if *httpAddr != "" {
		ranks := *p
		if *impl == "serial" {
			ranks = 1
		}
		local := ranks
		if *transport != driver.TransportInproc {
			local = 1 // this process hosts rank 0 only; workers have their own
		}
		live = telemetry.NewLive(ranks)
		live.SetRunInfo(telemetry.RunInfo{Impl: *impl, Transport: *transport, World: ranks, LocalRanks: local})
		addr, stop, err := telemetry.Serve(*httpAddr, live)
		if err != nil {
			fatal(err)
		}
		defer stop() //nolint:errcheck // best-effort teardown on exit
		fmt.Printf("observability: http://%s/metrics (also /healthz, /events, /debug/vars, /debug/pprof)\n", addr)
	}

	cfg := driver.Config{
		Mesh: mesh, N: *n, K: *k, M: *mVert,
		Dist: d0, Seed: *seed, Steps: *steps, Verify: *verify,
		Workers: *workers, Tile: *tile,
		Telemetry: obs.sampling(), Live: live,
		Transport:       *transport,
		CheckpointEvery: *ckptEvery, Recover: *recovery,
	}

	if *impl == "serial" {
		runSerial(cfg, obs, live)
		return
	}
	eng, err := makeEngine(*impl, *p, cfg, implCfg)
	if err != nil {
		fatal(err)
	}
	report := func(res *driver.Result, err error) { reportParallel(res, err, obs) }
	if *transport != driver.TransportInproc {
		// Multi-process: rendezvous + forked single-rank workers, this
		// process hosting rank 0. With -recover, the coordinator becomes
		// the elastic supervisor: it re-runs the rendezvous after a rank
		// loss and re-forks replacements for dead local workers.
		if *recovery {
			runElasticCoordinator(eng, opts, *listen, report)
		} else {
			runCoordinator(eng, opts, *listen, live, report)
		}
		return
	}
	report(eng.Run(*p))
}

// implOptions carries the implementation-specific tuning flags.
type implOptions struct {
	every     int
	width     int
	threshold float64
	d         int
	interval  int
	strategy  string
	stealTh   float64
}

// makeEngine builds the named parallel engine. The same construction serves
// the in-process run, the multi-process coordinator, and -join workers, so
// every process derives the identical engine from the identical flags.
func makeEngine(impl string, p int, cfg driver.Config, o implOptions) (*driver.Engine, error) {
	switch impl {
	case "baseline":
		return driver.NewBaselineEngine(cfg), nil
	case "diffusion":
		params := diffusion.Params{Every: o.every, Threshold: o.threshold, Width: o.width, MinWidth: o.width + 1}
		return driver.NewDiffusionEngine(cfg, params)
	case "ampi":
		var s ampi.Strategy
		switch o.strategy {
		case "refine":
			s = ampi.RefineLB{}
		case "greedy":
			s = ampi.GreedyLB{}
		case "rotate":
			s = ampi.RotateLB{}
		case "hinted":
			s = &ampi.HintedGreedyLB{}
		case "steal":
			s = ampi.WorkStealLB{}
		case "null":
			s = ampi.NullLB{}
		default:
			return nil, fmt.Errorf("unknown strategy %q", o.strategy)
		}
		return driver.NewAMPIEngine(p, cfg, driver.AMPIParams{Overdecompose: o.d, Every: o.interval, Strategy: s})
	case "worksteal":
		return driver.NewWorkStealEngine(cfg, driver.WorkStealParams{Overdecompose: o.d, Every: o.interval, Threshold: o.stealTh})
	default:
		return nil, fmt.Errorf("unknown implementation %q", impl)
	}
}

// runSerial runs the sequential reference. When observability is on, each
// step is timed individually and emitted as a rank-0 sample, so the serial
// path produces the same timeline schema as the parallel drivers (one rank,
// compute phase only).
func runSerial(cfg driver.Config, obs obsOpts, live *telemetry.Live) {
	sim, err := core.NewSimulation(dist.Config{
		Mesh: cfg.Mesh, N: cfg.N, K: cfg.K, M: cfg.M, Dist: cfg.Dist, Seed: cfg.Seed,
	}, cfg.Schedule)
	if err != nil {
		fatal(err)
	}
	var ring *telemetry.Ring
	if obs.sampling() {
		ring = telemetry.NewRing(cfg.Steps)
	}
	start := time.Now()
	if ring != nil || live != nil {
		for step := 1; step <= cfg.Steps; step++ {
			stepStart := time.Now()
			sim.Step()
			var s telemetry.Sample
			s.Step = step
			s.Phases[trace.Compute] = time.Since(stepStart)
			s.Particles = len(sim.Particles)
			ring.Append(s)
			live.Observe(s)
		}
	} else {
		sim.Run(cfg.Steps)
	}
	elapsed := time.Since(start)
	rate := float64(len(sim.Particles)) * float64(cfg.Steps) / elapsed.Seconds()
	fmt.Printf("serial: %d particles, %d steps in %v (%.1fM particle-steps/s)\n",
		len(sim.Particles), cfg.Steps, elapsed.Round(time.Millisecond), rate/1e6)
	if ring != nil {
		writeObservability(telemetry.New("serial", 1, cfg.Steps, ring.Samples()), obs)
	}
	if cfg.Verify {
		if err := sim.Verify(0); err != nil {
			fatal(fmt.Errorf("VERIFICATION FAILED: %w", err))
		}
		fmt.Println("verification: PASSED (closed-form positions + ID checksum)")
	}
}

// writeObservability writes the requested timeline exports.
func writeObservability(tl *telemetry.Timeline, obs obsOpts) {
	if tl == nil {
		return
	}
	if obs.timeline != "" {
		if err := writeFileWith(obs.timeline, func(f *os.File) error { return telemetry.WriteJSONL(f, tl) }); err != nil {
			fatal(err)
		}
		fmt.Printf("timeline: wrote %d samples to %s (analyze with picstat)\n", len(tl.Samples), obs.timeline)
	}
	if obs.chrome != "" {
		clock := obs.clock
		if clock == "" {
			clock = telemetry.ClockBSP
		}
		if err := writeFileWith(obs.chrome, func(f *os.File) error { return telemetry.WriteChromeTraceClock(f, tl, clock) }); err != nil {
			fatal(err)
		}
		fmt.Printf("chrome trace: wrote %s on the %s clock (load in Perfetto or chrome://tracing)\n", obs.chrome, clock)
	}
}

func writeFileWith(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func reportParallel(res *driver.Result, err error, obs obsOpts) {
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: P=%d, %d particles, %d steps in %v\n",
		res.Name, res.P, res.FinalParticles, res.Steps, res.Elapsed.Round(time.Millisecond))
	loads := make([]float64, len(res.PerRank))
	for i, s := range res.PerRank {
		loads[i] = float64(s.FinalParticles)
	}
	fmt.Printf("final load: %v\n", stats.Summarize(loads))
	fmt.Printf("max particles/rank: %d final, %d high-water\n", res.MaxFinalParticles, res.MaxParticlesHighWater())
	var migrations int
	var bytes int64
	for _, s := range res.PerRank {
		migrations += s.Migrations
		bytes += s.BytesMigrated
	}
	fmt.Printf("LB activity: %d migrations, %d payload bytes\n", migrations, bytes)
	if rc := res.Recovery; rc != nil {
		fmt.Printf("epochs: %d commit(s)", rc.Commits)
		if rc.Rollbacks > 0 {
			fmt.Printf(", %d rollback(s), %d readmit(s) across %d world generation(s)", rc.Rollbacks, rc.Readmits, rc.Generations)
		}
		fmt.Println()
	}
	for _, s := range res.PerRank {
		fmt.Printf("  rank %2d: compute %-10v exchange %-10v overlap %-10v balance %-10v migrate %-10v particles %d\n",
			s.Rank, s.Compute.Round(time.Microsecond), s.Exchange.Round(time.Microsecond),
			s.Overlap.Round(time.Microsecond),
			s.Balance.Round(time.Microsecond), s.Migrate.Round(time.Microsecond), s.FinalParticles)
	}
	if res.Wire != nil {
		if h := res.Wire.MergedLatency(); h.Count() > 0 {
			fmt.Printf("wire: %d data frames, one-way latency p50 ≤ %s, p99 ≤ %s\n",
				h.Count(), telemetry.FmtNS(h.Quantile(0.5)), telemetry.FmtNS(h.Quantile(0.99)))
		}
		for _, node := range sortedOffsetNodes(res.Wire.Offsets) {
			if node != 0 {
				fmt.Printf("  clock offset node %d: %s (to node 0's clock)\n",
					node, telemetry.FmtNS(res.Wire.Offsets[node]))
			}
		}
	}
	if obs.balanceLog {
		fmt.Printf("balance log: %d executed decision(s)\n", len(res.BalanceLog))
		for _, line := range res.BalanceLog {
			fmt.Printf("  %s\n", line)
		}
	}
	writeObservability(res.Timeline, obs)
	if obs.dumpState != "" {
		if err := writeState(obs.dumpState, res); err != nil {
			fatal(err)
		}
		fmt.Printf("state dump: wrote %d particles to %s\n", len(res.Particles), obs.dumpState)
	}
	if res.Verified {
		fmt.Println("verification: PASSED (closed-form positions + ID checksum)")
	}
}

// sortedOffsetNodes yields the offset map's node indices in ascending order.
func sortedOffsetNodes(m map[int]int64) []int {
	nodes := make([]int, 0, len(m))
	for n := range m {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	return nodes
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "picrun:", err)
	os.Exit(1)
}
