package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets this test binary act as picrun itself when re-executed with
// PICRUN_BE_MAIN=1 — the coordinator's forked workers (os.Executable) then
// run main() too, so the multi-process path is tested end to end without a
// separately built binary.
func TestMain(m *testing.M) {
	if os.Getenv("PICRUN_BE_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func TestValidateOptions(t *testing.T) {
	ok := runOptions{impl: "baseline", ranks: 4, steps: 10, n: 100, transport: "inproc"}
	if err := validateOptions(ok); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(o *runOptions)
		want string
	}{
		{"zero ranks", func(o *runOptions) { o.ranks = 0 }, "-ranks"},
		{"negative ranks", func(o *runOptions) { o.ranks = -2 }, "-ranks"},
		{"zero steps", func(o *runOptions) { o.steps = 0 }, "-steps"},
		{"negative steps", func(o *runOptions) { o.steps = -1 }, "-steps"},
		{"zero particles", func(o *runOptions) { o.n = 0 }, "-n"},
		{"negative workers", func(o *runOptions) { o.workers = -1 }, "-workers"},
		{"bogus transport", func(o *runOptions) { o.transport = "osmosis" }, "-transport"},
		{"join without wire", func(o *runOptions) { o.join = "127.0.0.1:9" }, "-join"},
		{"spawn without wire", func(o *runOptions) { o.spawn = 2 }, "-spawn"},
		{"spawn beyond ranks", func(o *runOptions) { o.transport = "tcp"; o.spawn = 4 }, "-spawn"},
		{"serial with transport", func(o *runOptions) { o.impl = "serial"; o.transport = "tcp" }, "serial"},
		{"negative checkpoint interval", func(o *runOptions) { o.ckptEvery = -3 }, "-checkpoint-every"},
		{"recover without checkpoints", func(o *runOptions) { o.transport = "tcp"; o.recover = true }, "-checkpoint-every"},
		{"recover without wire", func(o *runOptions) { o.recover = true; o.ckptEvery = 5 }, "-recover"},
	}
	for _, tc := range cases {
		o := ok
		tc.mut(&o)
		err := validateOptions(o)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// runPicrun re-executes this test binary as picrun and returns its output.
func runPicrun(t *testing.T, args ...string) string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "PICRUN_BE_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("picrun %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// TestMultiProcessBitwiseIdentity is the end-to-end acceptance check for
// picrun's multi-process mode: a forked-worker TCP run must dump the exact
// final state and balance log of the in-process run.
func TestMultiProcessBitwiseIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("forks a process tree")
	}
	dir := t.TempDir()
	tcpState := filepath.Join(dir, "tcp.txt")
	inState := filepath.Join(dir, "inproc.txt")
	common := []string{
		"-impl=diffusion", "-ranks=3", "-L=16", "-n=3000", "-steps=30",
		"-r=0.9", "-every=5", "-seed=7",
	}
	out := runPicrun(t, append(common, "-transport=tcp", "-dumpstate="+tcpState)...)
	if !strings.Contains(out, "verification: PASSED") {
		t.Fatalf("tcp run did not verify:\n%s", out)
	}
	runPicrun(t, append(common, "-dumpstate="+inState)...)
	a, err := os.ReadFile(tcpState)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(inState)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty state dump")
	}
	if string(a) != string(b) {
		t.Fatal("multi-process state dump differs from the in-process run")
	}
}

// TestRecoveryEndToEnd is the chaos acceptance check for -recover through
// the real process tree: a TCP run whose rank 2 SIGKILLs itself mid-run
// (via the PICRUN_CHAOS_KILL hook — the self-kill is a real SIGKILL, so
// the sockets die with no handshake) must roll back to the last committed
// checkpoint, re-admit a re-forked replacement, and still dump the exact
// final state of an uninterrupted in-process run.
func TestRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("forks a process tree and kills part of it")
	}
	dir := t.TempDir()
	recState := filepath.Join(dir, "recovered.txt")
	refState := filepath.Join(dir, "reference.txt")
	common := []string{
		"-impl=diffusion", "-ranks=3", "-L=16", "-n=3000", "-steps=40",
		"-r=0.9", "-every=5", "-seed=7",
	}
	runPicrun(t, append(common, "-dumpstate="+refState)...)

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, append(common,
		"-transport=tcp", "-checkpoint-every=10", "-recover", "-dumpstate="+recState)...)
	cmd.Env = append(os.Environ(), "PICRUN_BE_MAIN=1", "PICRUN_CHAOS_KILL=2:25")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("recovery run failed: %v\n%s", err, out)
	}
	for _, want := range []string{"verification: PASSED", "rollback"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("recovery run output lacks %q:\n%s", want, out)
		}
	}
	a, err := os.ReadFile(recState)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(refState)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty state dump")
	}
	if string(a) != string(b) {
		t.Fatal("recovered run's state dump differs from the uninterrupted run")
	}
}

// TestCLIRejectsBadFlags: the validation must act before any fork or
// listener, with a non-zero exit and a clear message.
func TestCLIRejectsBadFlags(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		args []string
		want string
	}{
		{[]string{"-impl=baseline", "-ranks=0"}, "-ranks"},
		{[]string{"-impl=baseline", "-steps=-5"}, "-steps"},
		{[]string{"-impl=baseline", "-transport=pigeon"}, "-transport"},
		{[]string{"-impl=baseline", "-workers=-1"}, "-workers"},
	} {
		cmd := exec.Command(exe, tc.args...)
		cmd.Env = append(os.Environ(), "PICRUN_BE_MAIN=1")
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("picrun %v exited 0:\n%s", tc.args, out)
		}
		if !strings.Contains(string(out), tc.want) {
			t.Fatalf("picrun %v error does not mention %q:\n%s", tc.args, tc.want, out)
		}
	}
}
