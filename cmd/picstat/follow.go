package main

// Live mode: picstat -follow host:port tails the /events Server-Sent Events
// stream a `picrun -http` process serves, printing one line per sample as
// the run produces it. A dropped connection no longer ends the session: the
// follower reconnects with capped exponential backoff for up to -retry
// (epoch recovery makes mid-run connection loss routine — the coordinator
// keeps serving across world generations, but the stream it was feeding
// dies with the old world). The session ends when the server closes the
// stream cleanly (the run finished), on ctrl-C, or when no reconnect
// succeeds within the retry window.

import (
	"bufio"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/parres/picprk/internal/telemetry"
	"github.com/parres/picprk/internal/trace"
)

// maxReconnectDelay caps the backoff between reconnect attempts.
const maxReconnectDelay = 15 * time.Second

// follower holds the display state that must survive reconnects: the header
// is printed once, the wall-clock base anchors all samples of the session,
// and the sample count spans connections.
type follower struct {
	url      string
	header   bool
	wallBase int64
	total    int
}

// followEvents tails addr's /events endpoint, reconnecting on dropped
// connections for up to retry per outage (0 = give up on the first drop,
// the pre-recovery behavior).
func followEvents(addr string, retry time.Duration) error {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	f := &follower{url: strings.TrimRight(url, "/") + "/events"}
	fmt.Printf("following %s (stream ends when the run does)\n", f.url)

	delay := time.Second
	var deadline time.Time // end of the current outage's retry window
	for {
		n, err := f.streamOnce()
		if err == nil {
			fmt.Printf("stream closed after %d sample(s)\n", f.total)
			return nil
		}
		if retry <= 0 {
			if n > 0 || f.total > 0 {
				// A severed mid-run stream without -retry keeps the old
				// behavior: the samples printed so far are still good.
				fmt.Printf("stream severed after %d sample(s) (%v)\n", f.total, err)
				return nil
			}
			return err
		}
		if n > 0 || deadline.IsZero() {
			// Fresh outage (or the first attempt): open a new retry window
			// and restart the backoff.
			deadline = time.Now().Add(retry)
			delay = time.Second
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("no stream for %v; giving up after %d sample(s) (last error: %w)", retry, f.total, err)
		}
		fmt.Printf("picstat: stream lost (%v); retrying in %v\n", err, delay)
		time.Sleep(delay)
		if delay *= 2; delay > maxReconnectDelay {
			delay = maxReconnectDelay
		}
	}
}

// streamOnce connects once and prints samples until the stream ends. It
// returns the number of samples this connection delivered, and nil only on
// a clean server-side close (the run completed).
func (f *follower) streamOnce() (int, error) {
	resp, err := http.Get(f.url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%s: %s", f.url, resp.Status)
	}
	if !f.header {
		fmt.Printf("%6s  %4s  %10s  %10s  %10s  %9s  %s\n",
			"step", "rank", trace.Compute, trace.Exchange, "wall start", "particles", "decision")
		f.header = true
	}

	// SSE framing: `data: <json>` lines separated by blank lines; comment
	// lines start with ':'. One sample per data line.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	n := 0
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		s, err := telemetry.UnmarshalSample([]byte(data))
		if err != nil {
			return n, fmt.Errorf("bad event payload: %w", err)
		}
		wall := "-"
		if s.WallStartNS != 0 {
			if f.wallBase == 0 {
				f.wallBase = s.WallStartNS
			}
			wall = telemetry.FmtNS(s.WallStartNS - f.wallBase)
		}
		fmt.Printf("%6d  %4d  %10v  %10v  %10s  %9d  %s\n",
			s.Step, s.Rank,
			s.Phases[trace.Compute].Round(time.Microsecond),
			s.Phases[trace.Exchange].Round(time.Microsecond),
			wall, s.Particles, s.Decision)
		n++
		f.total++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("stream: %w", err)
	}
	return n, nil
}
