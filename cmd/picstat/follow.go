package main

// Live mode: picstat -follow host:port tails the /events Server-Sent Events
// stream a `picrun -http` process serves, printing one line per sample as
// the run produces it. The stream ends when the run exits (the server closes
// every subscriber) or on ctrl-C.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/parres/picprk/internal/telemetry"
	"github.com/parres/picprk/internal/trace"
)

// followEvents connects to addr's /events endpoint and prints samples until
// the stream ends.
func followEvents(addr string) error {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimRight(url, "/") + "/events"
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	fmt.Printf("following %s (stream ends when the run does)\n", url)
	fmt.Printf("%6s  %4s  %10s  %10s  %10s  %9s  %s\n",
		"step", "rank", trace.Compute, trace.Exchange, "wall start", "particles", "decision")

	// SSE framing: `data: <json>` lines separated by blank lines; comment
	// lines start with ':'. One sample per data line.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var wallBase int64
	n := 0
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		s, err := telemetry.UnmarshalSample([]byte(data))
		if err != nil {
			return fmt.Errorf("bad event payload: %w", err)
		}
		wall := "-"
		if s.WallStartNS != 0 {
			if wallBase == 0 {
				wallBase = s.WallStartNS
			}
			wall = telemetry.FmtNS(s.WallStartNS - wallBase)
		}
		fmt.Printf("%6d  %4d  %10v  %10v  %10s  %9d  %s\n",
			s.Step, s.Rank,
			s.Phases[trace.Compute].Round(time.Microsecond),
			s.Phases[trace.Exchange].Round(time.Microsecond),
			wall, s.Particles, s.Decision)
		n++
	}
	if err := sc.Err(); err != nil {
		// A run killed mid-stream severs the connection without the chunked
		// terminator; the samples printed so far are still good.
		if errors.Is(err, io.ErrUnexpectedEOF) {
			fmt.Printf("stream severed after %d sample(s) (run exited abruptly)\n", n)
			return nil
		}
		return fmt.Errorf("stream: %w", err)
	}
	fmt.Printf("stream closed after %d sample(s)\n", n)
	return nil
}
