// Command picstat analyzes a per-step telemetry timeline written by
// `picrun -timeline` (or `picbench -drivers -timelines`): per-phase time
// totals, how the load imbalance evolved over the run, and the steps that
// cost the most wall time — the §V-B lens on a run, from a file instead of
// a live cluster. With -follow it tails a running picrun's /events stream
// instead, printing one line per sample as it lands.
//
// Usage:
//
//	picrun -impl diffusion -p 8 -steps 500 -timeline tl.jsonl
//	picstat tl.jsonl
//	picstat -top 10 -rows 20 tl.jsonl
//	picstat -chrome trace.json tl.jsonl          # convert for Perfetto
//	picstat -chrome trace.json -clock wall tl.jsonl
//	picstat -follow localhost:6060               # tail picrun -http :6060
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/parres/picprk/internal/telemetry"
	"github.com/parres/picprk/internal/trace"
)

func main() {
	var (
		top    = flag.Int("top", 5, "worst steps to list (by wall time)")
		rows   = flag.Int("rows", 10, "max rows in the imbalance-over-time table")
		chrome = flag.String("chrome", "", "also convert the timeline to Chrome trace-event JSON at this path")
		clock  = flag.String("clock", telemetry.ClockBSP, "chrome trace clock: bsp | wall")
		follow = flag.Bool("follow", false, "treat the argument as a picrun -http address and stream live samples from its /events endpoint")
		retry  = flag.Duration("retry", time.Minute, "with -follow, keep reconnecting to a dropped /events stream for this long per outage (0 = give up on the first drop)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: picstat [-top N] [-rows N] [-chrome out.json] [-clock bsp|wall] timeline.jsonl\n       picstat -follow [-retry 1m] host:port")
		os.Exit(2)
	}

	if *follow {
		if err := followEvents(flag.Arg(0), *retry); err != nil {
			fatal(err)
		}
		return
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	tl, err := telemetry.ReadJSONL(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	printReport(tl, *top, *rows)

	if *chrome != "" {
		out, err := os.Create(*chrome)
		if err != nil {
			fatal(err)
		}
		if err := telemetry.WriteChromeTraceClock(out, tl, *clock); err != nil {
			out.Close()
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nchrome trace: wrote %s on the %s clock (load in Perfetto or chrome://tracing)\n", *chrome, *clock)
	}
}

func printReport(tl *telemetry.Timeline, top, rows int) {
	fmt.Printf("timeline: %s  P=%d  steps=%d  samples=%d", tl.Name, tl.P, tl.Steps, len(tl.Samples))
	if tl.Dropped > 0 {
		fmt.Printf("  (dropped %d oldest samples; raise the ring cap for full coverage)", tl.Dropped)
	}
	fmt.Println()
	ss := tl.StepStats()
	if len(ss) == 0 {
		fmt.Println("no samples")
		return
	}

	totals := tl.PhaseTotals()
	var grand time.Duration
	for _, p := range trace.Phases() {
		grand += totals[p]
	}
	fmt.Println("\nphase totals (CPU time summed over ranks):")
	for _, p := range trace.Phases() {
		pct := 0.0
		if grand > 0 {
			pct = 100 * float64(totals[p]) / float64(grand)
		}
		fmt.Printf("  %-9s %12v  %5.1f%%\n", p, totals[p].Round(time.Microsecond), pct)
	}
	var overlap time.Duration
	for _, st := range ss {
		overlap += st.Overlap
	}
	if overlap > 0 {
		// Overlap is not a phase of its own — the time is already inside
		// compute — so it reports as the fraction of the total exchange the
		// tile pipeline hid behind interior work.
		hidden := 100 * float64(overlap) / float64(overlap+totals[trace.Exchange])
		fmt.Printf("  overlap   %12v  (%.0f%% of exchange hidden behind compute)\n",
			overlap.Round(time.Microsecond), hidden)
	}

	fmt.Println("\nimbalance over time (per-rank particle loads):")
	fmt.Printf("  %6s  %9s  %9s  %7s  %6s  %s\n", "step", "max", "mean", "imb", "gini", "decision")
	for _, st := range sampleRows(ss, rows) {
		fmt.Printf("  %6d  %9.0f  %9.1f  %7.3f  %6.3f  %s\n",
			st.Step, st.Load.Max, st.Load.Mean, st.Load.Imbalance, st.Load.Gini, st.Decision)
	}
	first, last := ss[0], ss[len(ss)-1]
	lo, hi, decisions := first.Load.Imbalance, first.Load.Imbalance, 0
	var xbytes, mbytes int64
	for _, st := range ss {
		lo = min(lo, st.Load.Imbalance)
		hi = max(hi, st.Load.Imbalance)
		if st.Decision != "" {
			decisions++
		}
		xbytes += st.ExchangeBytes
		mbytes += st.Bytes
	}
	fmt.Printf("  imbalance first %.3f, last %.3f, min %.3f, max %.3f; %d balancing decision(s)\n",
		first.Load.Imbalance, last.Load.Imbalance, lo, hi, decisions)
	fmt.Printf("  exchanged %d bytes on the wire (framed columnar), migrated %d bytes for balancing\n",
		xbytes, mbytes)
	var msgsSent, msgsElided int64
	for i := range tl.Samples {
		msgsSent += int64(tl.Samples[i].MsgsSent)
		msgsElided += int64(tl.Samples[i].MsgsElided)
	}
	if msgsSent > 0 || msgsElided > 0 {
		share := 0.0
		if msgsSent+msgsElided > 0 {
			share = 100 * float64(msgsElided) / float64(msgsSent+msgsElided)
		}
		fmt.Printf("  exchange messages: %d sent, %d elided by the sparse neighbor schedule (%.0f%% of the full ring)\n",
			msgsSent, msgsElided, share)
	}

	if len(tl.PeerXchg) > 0 {
		printPeerMatrix(tl.PeerXchg)
	}

	if len(tl.Events) > 0 {
		commits, rollbacks, readmits := 0, 0, 0
		for _, e := range tl.Events {
			switch e.Kind {
			case telemetry.EventCommit:
				commits++
			case telemetry.EventRollback:
				rollbacks++
			case telemetry.EventReadmit:
				readmits++
			}
		}
		fmt.Printf("\nepoch lifecycle: %d commit(s), %d rollback(s), %d readmit(s)\n", commits, rollbacks, readmits)
		wallBase := tl.Events[0].WallNS
		for _, e := range tl.Events {
			wall := "-"
			if e.WallNS != 0 {
				wall = telemetry.FmtNS(e.WallNS - wallBase)
			}
			switch e.Kind {
			case telemetry.EventReadmit:
				fmt.Printf("  %10s  gen %d  %-8s  rank %d re-admitted\n", wall, e.Gen, e.Kind, e.Rank)
			default:
				fmt.Printf("  %10s  gen %d  %-8s  step %d\n", wall, e.Gen, e.Kind, e.Step)
			}
		}
	}

	fmt.Printf("\nworst %d step(s) by wall time (slowest rank sets the pace):\n", min(top, len(ss)))
	fmt.Printf("  %6s  %10s  %10s  %10s  %10s  %10s  %10s  %7s\n",
		"step", "wall", trace.Compute, trace.Exchange, "overlap", trace.Balance, trace.Migrate, "imb")
	for _, st := range telemetry.WorstSteps(ss, top) {
		fmt.Printf("  %6d  %10v  %10v  %10v  %10v  %10v  %10v  %7.3f\n",
			st.Step, st.Wall.Round(time.Microsecond),
			st.Phases[trace.Compute].Round(time.Microsecond),
			st.Phases[trace.Exchange].Round(time.Microsecond),
			st.Overlap.Round(time.Microsecond),
			st.Phases[trace.Balance].Round(time.Microsecond),
			st.Phases[trace.Migrate].Round(time.Microsecond),
			st.Load.Imbalance)
	}
}

// printPeerMatrix renders the per-peer exchange matrix: one row per sending
// rank, one column per destination, message counts with byte totals in the
// row margin. Zero cells print as "." so the neighborhood structure — which
// pairs never talk — is visible at a glance.
func printPeerMatrix(rows []telemetry.PeerXchg) {
	p := len(rows)
	fmt.Println("\nper-peer exchange matrix (messages sent; '.' = never):")
	fmt.Printf("  %6s", "src\\dst")
	for d := 0; d < p; d++ {
		fmt.Printf("  %8d", d)
	}
	fmt.Printf("  %12s\n", "bytes sent")
	for _, row := range rows {
		fmt.Printf("  %6d", row.Rank)
		var bytes int64
		for d := 0; d < p; d++ {
			var msgs int64
			if d < len(row.Msgs) {
				msgs = row.Msgs[d]
			}
			if d < len(row.Bytes) {
				bytes += row.Bytes[d]
			}
			if msgs == 0 {
				fmt.Printf("  %8s", ".")
			} else {
				fmt.Printf("  %8d", msgs)
			}
		}
		fmt.Printf("  %12d\n", bytes)
	}
}

// sampleRows picks at most n step stats evenly spaced across the run,
// always including the first and last.
func sampleRows(ss []telemetry.StepStat, n int) []telemetry.StepStat {
	if n <= 0 || len(ss) <= n {
		return ss
	}
	out := make([]telemetry.StepStat, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ss[i*(len(ss)-1)/(n-1)])
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "picstat:", err)
	os.Exit(1)
}
