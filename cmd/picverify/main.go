// Command picverify runs the PIC PRK verification battery: every parallel
// implementation, across rank counts, distributions, particle speeds and
// event schedules, is checked for (a) the closed-form solution of paper
// §III-D and (b) bitwise agreement with the sequential reference. A single
// force miscalculation or routing bug anywhere fails the battery.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/parres/picprk/internal/core"
	"github.com/parres/picprk/internal/diffusion"
	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/driver"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/particle"
)

type scenario struct {
	name  string
	cfg   driver.Config
	sched dist.Schedule
}

func scenarios(L, n, steps int) []scenario {
	mesh := grid.MustMesh(L, grid.DefaultCharge)
	base := driver.Config{Mesh: mesh, N: n, Steps: steps, Seed: 7, Verify: true}
	mk := func(name string, mut func(*driver.Config)) scenario {
		c := base
		mut(&c)
		return scenario{name: name, cfg: c}
	}
	out := []scenario{
		mk("uniform", func(c *driver.Config) { c.Dist = dist.Uniform{} }),
		mk("geometric", func(c *driver.Config) { c.Dist = dist.Geometric{R: 0.9} }),
		mk("sinusoidal", func(c *driver.Config) { c.Dist = dist.Sinusoidal{} }),
		mk("linear", func(c *driver.Config) { c.Dist = dist.Linear{Alpha: 1, Beta: 2} }),
		mk("patch", func(c *driver.Config) { c.Dist = dist.Patch{X0: 2, X1: L / 2, Y0: 2, Y1: L / 2} }),
		mk("fast-k2", func(c *driver.Config) { c.Dist = dist.Geometric{R: 0.9}; c.K = 2 }),
		mk("vertical", func(c *driver.Config) { c.Dist = dist.Geometric{R: 0.9}; c.M = 3 }),
		mk("leftward", func(c *driver.Config) { c.Dist = dist.Geometric{R: 0.9}; c.Dir = -1 }),
	}
	ev := base
	ev.Dist = dist.Geometric{R: 0.9}
	out = append(out, scenario{
		name: "inject+remove",
		cfg:  ev,
		sched: dist.Schedule{
			{Step: steps / 3, Region: dist.Rect{X0: 1, X1: L / 2, Y0: 1, Y1: L / 2}, Inject: n / 4, M: 1},
			{Step: 2 * steps / 3, Region: dist.Rect{X0: 0, X1: L / 3, Y0: 0, Y1: L}, Remove: true},
		},
	})
	return out
}

func main() {
	var (
		L     = flag.Int("L", 24, "domain size")
		n     = flag.Int("n", 3000, "particles per scenario")
		steps = flag.Int("steps", 48, "steps per scenario")
		ranks = flag.String("p", "1,2,4,6", "comma-separated rank counts")
	)
	flag.Parse()

	var ps []int
	for _, tok := range strings.Split(*ranks, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		var v int
		if _, err := fmt.Sscanf(tok, "%d", &v); err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "picverify: bad rank count %q\n", tok)
			os.Exit(2)
		}
		ps = append(ps, v)
	}

	failures := 0
	start := time.Now()
	for _, sc := range scenarios(*L, *n, *steps) {
		sc.cfg.Schedule = sc.sched
		ref, err := reference(sc.cfg)
		if err != nil {
			fmt.Printf("FAIL %-14s sequential: %v\n", sc.name, err)
			failures++
			continue
		}
		for _, p := range ps {
			failures += check(fmt.Sprintf("%-14s baseline  P=%d", sc.name, p), ref, func() (*driver.Result, error) {
				return driver.RunBaseline(p, sc.cfg)
			})
			failures += check(fmt.Sprintf("%-14s diffusion P=%d", sc.name, p), ref, func() (*driver.Result, error) {
				return driver.RunDiffusion(p, sc.cfg, diffusion.Params{Every: 7, Threshold: 0.05, Width: 1, MinWidth: 2})
			})
			failures += check(fmt.Sprintf("%-14s ampi      P=%d", sc.name, p), ref, func() (*driver.Result, error) {
				return driver.RunAMPI(p, sc.cfg, driver.AMPIParams{Overdecompose: 4, Every: 10})
			})
			failures += check(fmt.Sprintf("%-14s worksteal P=%d", sc.name, p), ref, func() (*driver.Result, error) {
				return driver.RunWorkSteal(p, sc.cfg, driver.WorkStealParams{Overdecompose: 4, Every: 10})
			})
		}
	}
	fmt.Printf("\npicverify: %d failures in %v\n", failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}

func reference(cfg driver.Config) ([]particle.Particle, error) {
	sim, err := core.NewSimulation(dist.Config{
		Mesh: cfg.Mesh, N: cfg.N, K: cfg.K, M: cfg.M, Dir: cfg.Dir, Dist: cfg.Dist, Seed: cfg.Seed,
	}, cfg.Schedule)
	if err != nil {
		return nil, err
	}
	sim.Run(cfg.Steps)
	if err := sim.Verify(0); err != nil {
		return nil, err
	}
	ps := append([]particle.Particle(nil), sim.Particles...)
	sortByID(ps)
	return ps, nil
}

func check(label string, ref []particle.Particle, run func() (*driver.Result, error)) int {
	res, err := run()
	if err != nil {
		fmt.Printf("FAIL %s: %v\n", label, err)
		return 1
	}
	if !res.Verified {
		fmt.Printf("FAIL %s: closed-form verification did not pass\n", label)
		return 1
	}
	if len(res.Particles) != len(ref) {
		fmt.Printf("FAIL %s: %d particles, sequential has %d\n", label, len(res.Particles), len(ref))
		return 1
	}
	for i := range ref {
		if res.Particles[i] != ref[i] {
			fmt.Printf("FAIL %s: particle %d differs from sequential reference\n", label, ref[i].ID)
			return 1
		}
	}
	fmt.Printf("PASS %s\n", label)
	return 0
}

func sortByID(ps []particle.Particle) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID })
}
