module github.com/parres/picprk

go 1.22
