// Package picprk is a Go reproduction of the Particle-in-Cell (PIC)
// Parallel Research Kernel from "Design and Implementation of a Parallel
// Research Kernel for Assessing Dynamic Load-Balancing Capabilities"
// (Georganas, Van der Wijngaart, Mattson — IPDPS 2016).
//
// The repository contains the full system described by the paper:
//
//   - the PIC kernel itself (internal/core, internal/grid, internal/dist,
//     internal/particle): a self-verifying particle-move benchmark with
//     controllable load imbalance;
//   - a goroutine message-passing runtime standing in for MPI
//     (internal/comm) and an Adaptive-MPI-style virtual-processor runtime
//     with PUP migration (internal/ampi, internal/pup);
//   - the paper's three parallel reference implementations
//     (internal/driver): static 2D blocks, diffusion-based application
//     load balancing, and runtime-orchestrated VP balancing;
//   - a deterministic performance model of a cluster (internal/model) and
//     the experiment harness (internal/sweep) that regenerates every
//     figure of the paper's evaluation at its original 192–3,072 core
//     scales.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-reproduced results. The benchmarks in
// bench_test.go regenerate each figure at reduced scale; cmd/picbench
// runs them at the paper's full scale.
package picprk
