package dist

import (
	"fmt"

	"github.com/parres/picprk/internal/particle"
)

// Initialize creates the initial particle population according to cfg.
//
// Placement follows the paper's scheme exactly: each particle starts at the
// center of a cell, (cx + h/2, cy + h/2), which puts it on the horizontal
// axis of symmetry with xπ = h/2. Its signed charge is ±(2K+1)·qπ from
// eq. 3 (sign chosen from the parity of the starting column so that the
// initial acceleration points in cfg.Dir), and its velocity is (0, M·h/dt)
// from eq. 4. IDs are assigned 1..N in deterministic column-major order so
// the survivor checksum applies.
func Initialize(cfg Config) ([]particle.Particle, error) {
	c := cfg.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	L := c.Mesh.L
	counts, err := Apportion(c.Dist.Weights(L), c.N)
	if err != nil {
		return nil, err
	}
	rowLo, rowHi := c.Dist.RowRange(L)
	if rowLo < 0 || rowHi > L || rowLo >= rowHi {
		return nil, fmt.Errorf("dist: invalid row range [%d,%d) for L=%d", rowLo, rowHi, L)
	}
	base := BaseCharge(c.Mesh.Q, 0.5)
	mult := float64(2*c.K + 1)
	ps := make([]particle.Particle, 0, c.N)
	id := c.FirstID
	for col := 0; col < L; col++ {
		n := counts[col]
		if n == 0 {
			continue
		}
		rng := NewRNG(c.Seed, 0x636f6c /* "col" */, uint64(col))
		sign := float64(c.Dir * c.Mesh.ColumnSign(col))
		q := sign * mult * base
		for k := 0; k < n; k++ {
			row := rowLo + rng.Intn(rowHi-rowLo)
			x := float64(col) + 0.5
			y := float64(row) + 0.5
			ps = append(ps, particle.Particle{
				ID: id,
				X:  x, Y: y,
				VX: 0, VY: float64(c.M),
				Q:  q,
				X0: x, Y0: y,
				K: int32(c.K), M: int32(c.M),
				Dir:  int32(c.Dir),
				Born: 0,
			})
			id++
		}
	}
	return ps, nil
}

// ColumnCounts returns the exact per-column particle counts the
// initialization would produce, without materializing particles. The
// performance-model layer uses this to evolve workloads analytically.
func ColumnCounts(cfg Config) ([]int, error) {
	c := cfg.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	return Apportion(c.Dist.Weights(c.Mesh.L), c.N)
}
