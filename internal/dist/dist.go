// Package dist implements the initialization framework of the PIC PRK
// (paper §III-C and §III-E): the initial particle distributions that induce
// controlled load imbalance, the charge assignment of eq. 3 that makes
// trajectories closed-form, the velocity assignment of eq. 4, and the
// injection/removal event schedule of §III-E5.
//
// All placement is bitwise deterministic given a seed, independent of the
// number of ranks, so every rank of a parallel driver can recompute the
// global initial state and keep only its share.
package dist

import (
	"fmt"
	"math"

	"github.com/parres/picprk/internal/grid"
)

// Distribution describes how particles are spread over the columns of cells.
// Weights returns one non-negative relative weight per cell column; columns
// with zero weight receive no particles. RowRange optionally restricts the
// rows (cell y-indices) particles may occupy; implementations covering the
// full height return (0, c).
type Distribution interface {
	// Weights returns a slice of c non-negative column weights.
	Weights(c int) []float64
	// RowRange returns the half-open range of allowed cell rows.
	RowRange(c int) (lo, hi int)
	// Name returns a short identifier used in logs and experiment tables.
	Name() string
}

// Geometric is the skewed "exponential" distribution of paper §III-E1: a
// cell in column i holds A·R^i particles. With R slightly below 1 (the paper
// uses 0.999) the per-processor loads of a block decomposition form a
// geometric series (paper eq. 7–8), and the whole distribution drifts right
// at (2k+1) cells per step.
type Geometric struct{ R float64 }

// Weights implements Distribution.
func (g Geometric) Weights(c int) []float64 {
	w := make([]float64, c)
	v := 1.0
	for i := range w {
		w[i] = v
		v *= g.R
	}
	return w
}

// RowRange implements Distribution: the full domain height.
func (g Geometric) RowRange(c int) (int, int) { return 0, c }

// Name implements Distribution.
func (g Geometric) Name() string { return fmt.Sprintf("geometric(r=%g)", g.R) }

// Sinusoidal is the smooth distribution of paper §III-E2:
// p(i) ∝ 1 + cos(2πi/(c−1)).
type Sinusoidal struct{}

// Weights implements Distribution.
func (Sinusoidal) Weights(c int) []float64 {
	w := make([]float64, c)
	if c == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 1 + math.Cos(2*math.Pi*float64(i)/float64(c-1))
	}
	return w
}

// RowRange implements Distribution.
func (Sinusoidal) RowRange(c int) (int, int) { return 0, c }

// Name implements Distribution.
func (Sinusoidal) Name() string { return "sinusoidal" }

// Linear is the distribution of paper §III-E3: p(i) ∝ β − α·i/(c−1).
// Alpha and Beta control the slope; Beta must be positive and
// Beta − Alpha must be non-negative for the weights to stay non-negative.
type Linear struct{ Alpha, Beta float64 }

// Weights implements Distribution.
func (l Linear) Weights(c int) []float64 {
	w := make([]float64, c)
	if c == 1 {
		w[0] = l.Beta
		return w
	}
	for i := range w {
		v := l.Beta - l.Alpha*float64(i)/float64(c-1)
		if v < 0 {
			v = 0
		}
		w[i] = v
	}
	return w
}

// RowRange implements Distribution.
func (l Linear) RowRange(c int) (int, int) { return 0, c }

// Name implements Distribution.
func (l Linear) Name() string { return fmt.Sprintf("linear(a=%g,b=%g)", l.Alpha, l.Beta) }

// Uniform spreads particles evenly over all columns (the degenerate r=1
// case of Geometric, provided for clarity).
type Uniform struct{}

// Weights implements Distribution.
func (Uniform) Weights(c int) []float64 {
	w := make([]float64, c)
	for i := range w {
		w[i] = 1
	}
	return w
}

// RowRange implements Distribution.
func (Uniform) RowRange(c int) (int, int) { return 0, c }

// Name implements Distribution.
func (Uniform) Name() string { return "uniform" }

// Patch is the restricted-subdomain distribution of paper §III-E4: particles
// are placed uniformly inside the rectangle of cells
// [X0, X1) × [Y0, Y1). The relative size of the patch tunes the difficulty
// of the balancing task.
type Patch struct{ X0, X1, Y0, Y1 int }

// Weights implements Distribution.
func (p Patch) Weights(c int) []float64 {
	w := make([]float64, c)
	for i := p.X0; i < p.X1 && i < c; i++ {
		if i >= 0 {
			w[i] = 1
		}
	}
	return w
}

// RowRange implements Distribution.
func (p Patch) RowRange(c int) (int, int) {
	lo, hi := p.Y0, p.Y1
	if lo < 0 {
		lo = 0
	}
	if hi > c {
		hi = c
	}
	return lo, hi
}

// Name implements Distribution.
func (p Patch) Name() string {
	return fmt.Sprintf("patch([%d,%d)x[%d,%d))", p.X0, p.X1, p.Y0, p.Y1)
}

// Apportion converts relative column weights into exact integer particle
// counts summing to n, using the largest-remainder method. It is
// deterministic and independent of decomposition, which the verification
// scheme requires.
func Apportion(weights []float64, n int) ([]int, error) {
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("dist: invalid weight %v", w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("dist: all weights zero")
	}
	counts := make([]int, len(weights))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, 0, len(weights))
	assigned := 0
	for i, w := range weights {
		exact := float64(n) * w / total
		c := int(math.Floor(exact))
		counts[i] = c
		assigned += c
		rems = append(rems, rem{i, exact - float64(c)})
	}
	// Distribute the leftover to the largest fractional parts. Ties break
	// by lower index for determinism.
	left := n - assigned
	for left > 0 {
		best := -1
		for j := range rems {
			if rems[j].frac < 0 {
				continue
			}
			if best == -1 || rems[j].frac > rems[best].frac {
				best = j
			}
		}
		counts[rems[best].idx]++
		rems[best].frac = -1
		left--
	}
	return counts, nil
}

// BaseCharge evaluates paper eq. 3 for a particle at relative horizontal
// offset xrel within its cell (0 < xrel < h): the charge magnitude that
// makes the particle traverse exactly one cell per time step. h and dt are
// fixed at 1 by the PRK; q is the mesh charge magnitude.
func BaseCharge(q, xrel float64) float64 {
	const h, dt = 1.0, 1.0
	d1sq := h*h/4 + xrel*xrel
	d2sq := h*h/4 + (h-xrel)*(h-xrel)
	d1 := math.Sqrt(d1sq)
	d2 := math.Sqrt(d2sq)
	cosTheta := xrel / d1
	cosPhi := (h - xrel) / d2
	return h / (dt * dt * q * (cosTheta/d1sq + cosPhi/d2sq))
}

// Config collects all initialization parameters.
type Config struct {
	Mesh grid.Mesh
	// N is the total number of particles.
	N int
	// K is the horizontal speed parameter: every particle crosses (2K+1)
	// cells per step. Must be >= 0.
	K int
	// M is the vertical speed parameter: every particle moves M cells per
	// step in y (paper eq. 4). May be negative.
	M int
	// Dir selects the horizontal drift direction, +1 (default, rightward as
	// in the paper's experiments) or -1. Charges are signed so the initial
	// acceleration points this way.
	Dir int
	// Dist selects the initial distribution. Nil means Uniform.
	Dist Distribution
	// Seed drives all pseudo-random placement decisions.
	Seed uint64
	// FirstID is the ID assigned to the first particle; defaults to 1.
	// Injection events continue the sequence.
	FirstID uint64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Dir == 0 {
		out.Dir = 1
	}
	if out.Dist == nil {
		out.Dist = Uniform{}
	}
	if out.FirstID == 0 {
		out.FirstID = 1
	}
	return out
}

func (c *Config) validate() error {
	if c.N < 0 {
		return fmt.Errorf("dist: negative particle count %d", c.N)
	}
	if c.K < 0 {
		return fmt.Errorf("dist: K must be >= 0, got %d", c.K)
	}
	if c.Dir != 1 && c.Dir != -1 {
		return fmt.Errorf("dist: Dir must be ±1, got %d", c.Dir)
	}
	if c.Mesh.L == 0 {
		return fmt.Errorf("dist: zero-value mesh")
	}
	return nil
}
