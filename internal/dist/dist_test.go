package dist

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/parres/picprk/internal/grid"
)

func mesh(t testing.TB, L int) grid.Mesh {
	t.Helper()
	m, err := grid.NewMesh(L, grid.DefaultCharge)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestApportionExactTotal(t *testing.T) {
	cases := []struct {
		w []float64
		n int
	}{
		{[]float64{1, 1, 1, 1}, 10},
		{[]float64{1, 2, 3}, 100},
		{[]float64{0.001, 0.999}, 7},
		{[]float64{5}, 3},
		{[]float64{1, 0, 1}, 9},
	}
	for _, c := range cases {
		counts, err := Apportion(c.w, c.n)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for i, v := range counts {
			if v < 0 {
				t.Errorf("negative count %d", v)
			}
			if c.w[i] == 0 && v != 0 {
				t.Errorf("zero weight got %d particles", v)
			}
			sum += v
		}
		if sum != c.n {
			t.Errorf("weights %v n=%d: total %d", c.w, c.n, sum)
		}
	}
}

func TestApportionErrors(t *testing.T) {
	if _, err := Apportion([]float64{0, 0}, 5); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := Apportion([]float64{-1, 2}, 5); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := Apportion([]float64{math.NaN()}, 5); err == nil {
		t.Error("NaN weight accepted")
	}
}

func TestApportionProperty(t *testing.T) {
	f := func(raw []uint16, n uint16) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		var tot float64
		for i, r := range raw {
			w[i] = float64(r)
			tot += w[i]
		}
		if tot == 0 {
			return true
		}
		counts, err := Apportion(w, int(n))
		if err != nil {
			return false
		}
		sum := 0
		for i, c := range counts {
			// Largest-remainder never deviates more than 1 from the exact share.
			exact := float64(n) * w[i] / tot
			if math.Abs(float64(c)-exact) >= 1.0+1e-9 {
				return false
			}
			sum += c
		}
		return sum == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeometricWeightsRatio(t *testing.T) {
	g := Geometric{R: 0.5}
	w := g.Weights(5)
	for i := 1; i < 5; i++ {
		if math.Abs(w[i]/w[i-1]-0.5) > 1e-12 {
			t.Errorf("ratio at %d: %v", i, w[i]/w[i-1])
		}
	}
	// r=1 degenerates to uniform (paper §III-E1).
	u := Geometric{R: 1}.Weights(4)
	for _, v := range u {
		if v != 1 {
			t.Errorf("r=1 weight %v", v)
		}
	}
}

func TestGeometricBlockLoadsFormGeometricSeries(t *testing.T) {
	// Paper eq. 8: particle counts per block column form a geometric series
	// with ratio r^(c/P).
	m := mesh(t, 64)
	cfg := Config{Mesh: m, N: 100000, Dist: Geometric{R: 0.9}, Seed: 1}
	counts, err := ColumnCounts(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const P = 8
	block := make([]float64, P)
	for i, c := range counts {
		block[i/(64/P)] += float64(c)
	}
	wantRatio := math.Pow(0.9, 64.0/P)
	for i := 1; i < P; i++ {
		ratio := block[i] / block[i-1]
		if math.Abs(ratio-wantRatio) > 0.02 {
			t.Errorf("block ratio %d: %v, want ≈%v", i, ratio, wantRatio)
		}
	}
}

func TestSinusoidalWeights(t *testing.T) {
	w := Sinusoidal{}.Weights(101)
	if math.Abs(w[0]-2) > 1e-12 {
		t.Errorf("w[0]=%v, want 2", w[0])
	}
	if math.Abs(w[50]) > 1e-12 {
		t.Errorf("w[mid]=%v, want 0", w[50])
	}
	if math.Abs(w[100]-2) > 1e-9 {
		t.Errorf("w[last]=%v, want 2", w[100])
	}
	for i, v := range w {
		if v < 0 {
			t.Errorf("negative weight at %d", i)
		}
	}
	if got := (Sinusoidal{}).Weights(1); got[0] != 1 {
		t.Errorf("c=1 weight %v", got)
	}
}

func TestLinearWeights(t *testing.T) {
	l := Linear{Alpha: 1, Beta: 2}
	w := l.Weights(5)
	if w[0] != 2 || math.Abs(w[4]-1) > 1e-12 {
		t.Errorf("linear endpoints %v", w)
	}
	for i := 1; i < len(w); i++ {
		if w[i] > w[i-1] {
			t.Error("linear weights must decrease for positive alpha")
		}
	}
	// Clamped at zero, never negative.
	steep := Linear{Alpha: 4, Beta: 2}.Weights(5)
	for _, v := range steep {
		if v < 0 {
			t.Errorf("negative clamped weight %v", v)
		}
	}
}

func TestPatchWeightsAndRows(t *testing.T) {
	p := Patch{X0: 2, X1: 5, Y0: 1, Y1: 3}
	w := p.Weights(8)
	for i, v := range w {
		want := 0.0
		if i >= 2 && i < 5 {
			want = 1
		}
		if v != want {
			t.Errorf("w[%d]=%v", i, v)
		}
	}
	lo, hi := p.RowRange(8)
	if lo != 1 || hi != 3 {
		t.Errorf("rows [%d,%d)", lo, hi)
	}
}

func TestBaseChargeCenterValue(t *testing.T) {
	// At xπ = h/2 with q = 1: qπ = 1/(2√2).
	got := BaseCharge(1, 0.5)
	want := 1 / (2 * math.Sqrt2)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("BaseCharge = %v, want %v", got, want)
	}
	// Scales inversely with mesh charge magnitude.
	if math.Abs(BaseCharge(2, 0.5)-want/2) > 1e-15 {
		t.Error("BaseCharge must scale as 1/q")
	}
}

func TestInitializeBasics(t *testing.T) {
	m := mesh(t, 16)
	cfg := Config{Mesh: m, N: 500, K: 1, M: -2, Dist: Geometric{R: 0.8}, Seed: 99}
	ps, err := Initialize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 500 {
		t.Fatalf("got %d particles", len(ps))
	}
	seen := map[uint64]bool{}
	base := BaseCharge(m.Q, 0.5)
	for i := range ps {
		p := &ps[i]
		if err := p.Validate(m.Size()); err != nil {
			t.Fatal(err)
		}
		if seen[p.ID] {
			t.Fatalf("duplicate ID %d", p.ID)
		}
		seen[p.ID] = true
		// Cell-center placement.
		if math.Mod(p.X, 1) != 0.5 || math.Mod(p.Y, 1) != 0.5 {
			t.Fatalf("particle %d not at cell center: (%v,%v)", p.ID, p.X, p.Y)
		}
		// Charge magnitude is (2K+1)·qπ, sign from column parity.
		if math.Abs(math.Abs(p.Q)-3*base) > 1e-15 {
			t.Fatalf("charge magnitude %v", p.Q)
		}
		col := int(p.X)
		wantSign := 1.0
		if col%2 == 1 {
			wantSign = -1
		}
		if math.Signbit(p.Q) == (wantSign > 0) {
			t.Fatalf("charge sign wrong in column %d: %v", col, p.Q)
		}
		if p.VY != -2 || p.VX != 0 {
			t.Fatalf("velocity (%v,%v)", p.VX, p.VY)
		}
		if p.K != 1 || p.M != -2 || p.Dir != 1 || p.Born != 0 {
			t.Fatalf("trajectory params %+v", p)
		}
	}
	// IDs are 1..N.
	for id := uint64(1); id <= 500; id++ {
		if !seen[id] {
			t.Fatalf("missing ID %d", id)
		}
	}
}

func TestInitializeDeterministic(t *testing.T) {
	m := mesh(t, 32)
	cfg := Config{Mesh: m, N: 1000, Dist: Sinusoidal{}, Seed: 7}
	a, err := Initialize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Initialize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic init at %d", i)
		}
	}
	cfg.Seed = 8
	c, _ := Initialize(cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical placement")
	}
}

func TestInitializePatchRespectsRegion(t *testing.T) {
	m := mesh(t, 16)
	p := Patch{X0: 4, X1: 8, Y0: 10, Y1: 12}
	ps, err := Initialize(Config{Mesh: m, N: 300, Dist: p, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		cx, cy := m.CellOf(ps[i].X, ps[i].Y)
		if cx < 4 || cx >= 8 || cy < 10 || cy >= 12 {
			t.Fatalf("particle outside patch: (%d,%d)", cx, cy)
		}
	}
}

func TestInitializeValidation(t *testing.T) {
	m := mesh(t, 8)
	if _, err := Initialize(Config{Mesh: m, N: -1}); err == nil {
		t.Error("negative N accepted")
	}
	if _, err := Initialize(Config{Mesh: m, N: 5, K: -1}); err == nil {
		t.Error("negative K accepted")
	}
	if _, err := Initialize(Config{Mesh: m, N: 5, Dir: 2}); err == nil {
		t.Error("bad Dir accepted")
	}
	if _, err := Initialize(Config{N: 5}); err == nil {
		t.Error("zero mesh accepted")
	}
	if _, err := Initialize(Config{Mesh: m, N: 0}); err != nil {
		t.Error("N=0 should be allowed")
	}
}

func TestRNGDeterminismAndSpread(t *testing.T) {
	a := NewRNG(1, 2, 3)
	b := NewRNG(1, 2, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seeds diverged")
		}
	}
	c := NewRNG(1, 2, 4)
	if a.Uint64() == c.Uint64() {
		t.Error("different seeds collided immediately")
	}
	// Intn stays in range; Float64 in [0,1).
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnUniformish(t *testing.T) {
	r := NewRNG(5)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for d, c := range counts {
		if math.Abs(float64(c)-n/10) > n/10*0.1 {
			t.Errorf("digit %d count %d deviates >10%%", d, c)
		}
	}
}
