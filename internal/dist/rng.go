package dist

// RNG is a SplitMix64 pseudo-random generator. The PRK requires bitwise
// reproducible initialization across runs and across decompositions, so we
// use a tiny self-contained generator with a documented algorithm instead of
// math/rand (whose stream is not part of any compatibility promise).
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded deterministically from one or more
// values (e.g. a global seed plus a column index), mixed so that nearby
// seeds produce unrelated streams.
func NewRNG(seeds ...uint64) *RNG {
	r := &RNG{state: 0x9e3779b97f4a7c15}
	for _, s := range seeds {
		r.state ^= s + 0x9e3779b97f4a7c15 + (r.state << 6) + (r.state >> 2)
		r.Uint64()
	}
	return r
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with non-positive n")
	}
	// Lemire-style rejection-free reduction is unnecessary here: a modulo
	// bias of n/2^64 is far below anything observable, and determinism is
	// all the PRK cares about.
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
