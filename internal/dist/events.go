package dist

import (
	"fmt"
	"sort"

	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/particle"
)

// Rect is a rectangle of cells, [X0, X1) × [Y0, Y1), used to delimit
// injection and removal regions (paper §III-E5).
type Rect struct{ X0, X1, Y0, Y1 int }

// ContainsCell reports whether cell (cx, cy) lies inside the rectangle.
func (r Rect) ContainsCell(cx, cy int) bool {
	return cx >= r.X0 && cx < r.X1 && cy >= r.Y0 && cy < r.Y1
}

// ContainsPos reports whether a continuous position lies inside the
// rectangle; membership is defined by the containing cell, matching how the
// kernel assigns particles to cells.
func (r Rect) ContainsPos(x, y float64, m grid.Mesh) bool {
	cx, cy := m.CellOf(x, y)
	return r.ContainsCell(cx, cy)
}

// Cells returns the number of cells in the rectangle.
func (r Rect) Cells() int {
	w, h := r.X1-r.X0, r.Y1-r.Y0
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Event is a scheduled perturbation of the particle population. At Step,
// first removal (if Remove is set) deletes every particle whose position
// lies in Region, then Inject new particles are placed uniformly at the
// centers of cells in Region. Both adjust the local amount of work abruptly
// and are the paper's category-2 source of load imbalance.
type Event struct {
	// Step is the time step, counted after the step's particle move, at
	// which the event fires. Step s means "after s moves have completed".
	Step int
	// Region delimits the affected cells.
	Region Rect
	// Remove deletes all particles currently inside Region.
	Remove bool
	// Inject is the number of particles to add uniformly inside Region.
	Inject int
	// K, M are the trajectory parameters of injected particles.
	K, M int
}

// Schedule is an ordered list of events.
type Schedule []Event

// Validate checks event parameters against the mesh.
func (s Schedule) Validate(m grid.Mesh) error {
	for i, ev := range s {
		if ev.Step < 0 {
			return fmt.Errorf("dist: event %d has negative step %d", i, ev.Step)
		}
		if ev.Inject < 0 {
			return fmt.Errorf("dist: event %d has negative injection count", i)
		}
		if ev.Inject > 0 || ev.Remove {
			r := ev.Region
			if r.X0 < 0 || r.Y0 < 0 || r.X1 > m.L || r.Y1 > m.L || r.Cells() == 0 {
				return fmt.Errorf("dist: event %d region %+v invalid for L=%d", i, r, m.L)
			}
		}
		if ev.K < 0 {
			return fmt.Errorf("dist: event %d has negative K", i)
		}
	}
	return nil
}

// Sorted returns a copy of the schedule ordered by step (stable).
func (s Schedule) Sorted() Schedule {
	out := make(Schedule, len(s))
	copy(out, s)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}

// At returns the events firing at the given step.
func (s Schedule) At(step int) []Event {
	var out []Event
	for _, ev := range s {
		if ev.Step == step {
			out = append(out, ev)
		}
	}
	return out
}

// TotalInjected returns the number of particles the schedule injects in
// total; drivers use it to size ID ranges.
func (s Schedule) TotalInjected() int {
	n := 0
	for _, ev := range s {
		n += ev.Inject
	}
	return n
}

// InjectParticles materializes the particles added by one event. IDs are
// assigned firstID, firstID+1, … in deterministic order; placement is
// uniform over the region's cells, derived from seed and the event's step,
// so every rank computes the identical global list and can filter to its
// own subdomain.
func InjectParticles(m grid.Mesh, ev Event, seed uint64, firstID uint64, dir int) []particle.Particle {
	if ev.Inject <= 0 {
		return nil
	}
	if dir == 0 {
		dir = 1
	}
	rng := NewRNG(seed, 0x696e6a /* "inj" */, uint64(ev.Step))
	base := BaseCharge(m.Q, 0.5)
	mult := float64(2*ev.K + 1)
	w := ev.Region.X1 - ev.Region.X0
	h := ev.Region.Y1 - ev.Region.Y0
	ps := make([]particle.Particle, 0, ev.Inject)
	for i := 0; i < ev.Inject; i++ {
		cx := ev.Region.X0 + rng.Intn(w)
		cy := ev.Region.Y0 + rng.Intn(h)
		sign := float64(dir * m.ColumnSign(cx))
		x := float64(cx) + 0.5
		y := float64(cy) + 0.5
		ps = append(ps, particle.Particle{
			ID: firstID + uint64(i),
			X:  x, Y: y,
			VX: 0, VY: float64(ev.M),
			Q:  sign * mult * base,
			X0: x, Y0: y,
			K: int32(ev.K), M: int32(ev.M),
			Dir:  int32(dir),
			Born: int32(ev.Step),
		})
	}
	return ps
}
