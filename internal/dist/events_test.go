package dist

import (
	"testing"
)

func TestRectContains(t *testing.T) {
	r := Rect{X0: 2, X1: 5, Y0: 1, Y1: 4}
	if !r.ContainsCell(2, 1) || !r.ContainsCell(4, 3) {
		t.Error("interior cells rejected")
	}
	if r.ContainsCell(5, 1) || r.ContainsCell(2, 4) || r.ContainsCell(1, 1) {
		t.Error("exterior cells accepted")
	}
	if r.Cells() != 9 {
		t.Errorf("Cells = %d", r.Cells())
	}
	if (Rect{X0: 3, X1: 3, Y0: 0, Y1: 2}).Cells() != 0 {
		t.Error("empty rect has non-zero cells")
	}
}

func TestRectContainsPos(t *testing.T) {
	m := mesh(t, 8)
	r := Rect{X0: 2, X1: 4, Y0: 2, Y1: 4}
	if !r.ContainsPos(2.5, 3.5, m) {
		t.Error("center of interior cell rejected")
	}
	if r.ContainsPos(4.5, 3.5, m) {
		t.Error("outside position accepted")
	}
}

func TestScheduleValidate(t *testing.T) {
	m := mesh(t, 8)
	good := Schedule{{Step: 3, Region: Rect{0, 4, 0, 4}, Inject: 10}}
	if err := good.Validate(m); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	bads := []Schedule{
		{{Step: -1, Region: Rect{0, 4, 0, 4}, Inject: 1}},
		{{Step: 1, Region: Rect{0, 4, 0, 4}, Inject: -1}},
		{{Step: 1, Region: Rect{0, 9, 0, 4}, Inject: 1}},
		{{Step: 1, Region: Rect{2, 2, 0, 4}, Remove: true}},
		{{Step: 1, Region: Rect{0, 4, 0, 4}, Inject: 1, K: -1}},
	}
	for i, s := range bads {
		if err := s.Validate(m); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func TestScheduleSortedAndAt(t *testing.T) {
	s := Schedule{
		{Step: 5, Inject: 1, Region: Rect{0, 1, 0, 1}},
		{Step: 2, Remove: true, Region: Rect{0, 1, 0, 1}},
		{Step: 5, Inject: 2, Region: Rect{0, 1, 0, 1}},
	}
	sorted := s.Sorted()
	if sorted[0].Step != 2 || sorted[1].Step != 5 || sorted[2].Step != 5 {
		t.Errorf("sort order wrong: %+v", sorted)
	}
	// Stable: the Inject:1 event stays before Inject:2.
	if sorted[1].Inject != 1 {
		t.Error("sort not stable")
	}
	at5 := s.At(5)
	if len(at5) != 2 {
		t.Errorf("At(5) returned %d events", len(at5))
	}
	if s.TotalInjected() != 3 {
		t.Errorf("TotalInjected = %d", s.TotalInjected())
	}
}

func TestInjectParticles(t *testing.T) {
	m := mesh(t, 16)
	ev := Event{Step: 7, Region: Rect{4, 8, 2, 6}, Inject: 50, K: 1, M: 2}
	ps := InjectParticles(m, ev, 42, 1001, 1)
	if len(ps) != 50 {
		t.Fatalf("injected %d", len(ps))
	}
	for i, p := range ps {
		if p.ID != 1001+uint64(i) {
			t.Fatalf("ID sequence broken at %d: %d", i, p.ID)
		}
		cx, cy := m.CellOf(p.X, p.Y)
		if !ev.Region.ContainsCell(cx, cy) {
			t.Fatalf("injected outside region: (%d,%d)", cx, cy)
		}
		if p.Born != 7 || p.K != 1 || p.M != 2 || p.VY != 2 {
			t.Fatalf("bad injected params %+v", p)
		}
	}
	// Deterministic.
	ps2 := InjectParticles(m, ev, 42, 1001, 1)
	for i := range ps {
		if ps[i] != ps2[i] {
			t.Fatal("injection not deterministic")
		}
	}
	// Zero-injection events produce nothing.
	if got := InjectParticles(m, Event{Step: 1, Region: Rect{0, 1, 0, 1}}, 1, 1, 1); got != nil {
		t.Errorf("empty event injected %d particles", len(got))
	}
}
