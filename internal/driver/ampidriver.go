package driver

import (
	"fmt"

	"github.com/parres/picprk/internal/ampi"
	"github.com/parres/picprk/internal/balance"
	"github.com/parres/picprk/internal/comm"
)

// AMPIParams tunes the runtime-orchestrated implementation: the paper's two
// knobs are the over-decomposition degree d (VPs per core) and the interval
// F between load-balancer invocations (§V-A), plus the strategy itself.
type AMPIParams struct {
	// Overdecompose is d: the problem is split into d·P virtual processors.
	Overdecompose int
	// Every is F: steps between MPI_Migrate-style LoadBalance calls.
	Every int
	// Strategy selects the balancer; nil means the paper's choice, a
	// refiner that moves VPs from the most to the least loaded core.
	Strategy ampi.Strategy
}

// Validate checks parameter sanity.
func (p AMPIParams) Validate() error {
	if p.Overdecompose <= 0 {
		return fmt.Errorf("driver: over-decomposition degree must be positive, got %d", p.Overdecompose)
	}
	if p.Every <= 0 {
		return fmt.Errorf("driver: LB interval must be positive, got %d", p.Every)
	}
	return nil
}

// RunAMPI executes the PIC PRK with the paper's "ampi" implementation
// (§IV-C): the static 2D algorithm of §IV-A over-decomposed into d·P
// virtual processors whose placement the runtime rebalances every F steps,
// migrating VP state (particles and mesh block) between cores with PUP
// serialization.
func RunAMPI(p int, cfg Config, params AMPIParams) (*Result, error) {
	eng, err := NewAMPIEngine(p, cfg, params)
	if err != nil {
		return nil, err
	}
	return eng.Run(p)
}

// NewAMPIEngine builds the ampi engine without running it. The world size p
// is needed up front because topology hints are installed on the shared
// strategy value before the SPMD region starts.
func NewAMPIEngine(p int, cfg Config, params AMPIParams) (*Engine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if params.Strategy == nil {
		params.Strategy = ampi.RefineLB{}
	}
	// Topology hints are installed once, before the ranks start: the
	// strategy value is shared by all rank goroutines and must not be
	// mutated inside the SPMD region.
	if ta, ok := params.Strategy.(ampi.TopologyAware); ok {
		px, py := comm.Dims2D(p)
		dx, dy := comm.Dims2D(params.Overdecompose)
		ta.SetTopology(ampi.GridNeighbors(px*dx, py*dy), 1)
	}
	eng := &Engine{
		Name: "ampi",
		Cfg:  cfg,
		Substrate: func(c *comm.Comm, cfg Config) (Substrate, error) {
			return newVPSubstrate(c, cfg, params.Overdecompose)
		},
		Balancer: func() balance.Balancer { return balance.NewAMPIBalancer(params.Strategy, params.Every) },
	}
	return eng, nil
}
