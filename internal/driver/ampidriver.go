package driver

import (
	"fmt"
	"time"

	"github.com/parres/picprk/internal/ampi"
	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/core"
	"github.com/parres/picprk/internal/decomp"
	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/particle"
	"github.com/parres/picprk/internal/pup"
	"github.com/parres/picprk/internal/trace"
)

// AMPIParams tunes the runtime-orchestrated implementation: the paper's two
// knobs are the over-decomposition degree d (VPs per core) and the interval
// F between load-balancer invocations (§V-A), plus the strategy itself.
type AMPIParams struct {
	// Overdecompose is d: the problem is split into d·P virtual processors.
	Overdecompose int
	// Every is F: steps between MPI_Migrate-style LoadBalance calls.
	Every int
	// Strategy selects the balancer; nil means the paper's choice, a
	// refiner that moves VPs from the most to the least loaded core.
	Strategy ampi.Strategy
}

// Validate checks parameter sanity.
func (p AMPIParams) Validate() error {
	if p.Overdecompose <= 0 {
		return fmt.Errorf("driver: over-decomposition degree must be positive, got %d", p.Overdecompose)
	}
	if p.Every <= 0 {
		return fmt.Errorf("driver: LB interval must be positive, got %d", p.Every)
	}
	return nil
}

// picVP is one virtual processor of the over-decomposed PIC problem: a
// static rectangular subdomain with its materialized mesh block and the
// particles currently inside it. Migration PUPs the entire state — particles
// and grid data — mirroring the paper's PUP routines.
type picVP struct {
	id     int
	mesh   grid.Mesh
	x0, y0 int
	nx, ny int
	block  *grid.Block
	ps     []particle.Particle
}

// VPID implements ampi.VP.
func (v *picVP) VPID() int { return v.id }

// Load implements ampi.VP: work is exactly proportional to particle count.
func (v *picVP) Load() float64 { return float64(len(v.ps)) }

// PUP implements pup.PUPable.
func (v *picVP) PUP(p *pup.PUPer) {
	p.Int(&v.id)
	p.Int(&v.mesh.L)
	p.Float64(&v.mesh.Q)
	p.Int(&v.x0)
	p.Int(&v.y0)
	p.Int(&v.nx)
	p.Int(&v.ny)
	var data []float64
	if p.Mode() != pup.Unpacking {
		data = v.block.OwnedData()
	}
	p.Float64s(&data)
	pup.Slice(p, &v.ps, func(p *pup.PUPer, e *particle.Particle) { e.PUP(p) })
	if p.Mode() == pup.Unpacking && p.Err() == nil {
		block, err := grid.NewBlockFromData(v.mesh, v.x0, v.y0, v.nx, v.ny, data)
		if err != nil {
			p.Fail(err)
			return
		}
		v.block = block
	}
}

// vpParcel is a bundle of particles bound for one VP, exchanged at core
// level each step.
type vpParcel struct {
	VP int
	Ps []particle.Particle
}

// RunAMPI executes the PIC PRK with the paper's "ampi" implementation
// (§IV-C): the static 2D algorithm of §IV-A over-decomposed into d·P
// virtual processors whose placement the runtime rebalances every F steps,
// migrating VP state (particles and mesh block) between cores with PUP
// serialization.
func RunAMPI(p int, cfg Config, params AMPIParams) (*Result, error) {
	if err := cfg.validate(p); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if params.Strategy == nil {
		params.Strategy = ampi.RefineLB{}
	}
	// Topology hints are installed once, before the ranks start: the
	// strategy value is shared by all rank goroutines and must not be
	// mutated inside the SPMD region.
	if ta, ok := params.Strategy.(ampi.TopologyAware); ok {
		px, py := comm.Dims2D(p)
		dx, dy := comm.Dims2D(params.Overdecompose)
		ta.SetTopology(ampi.GridNeighbors(px*dx, py*dy), 1)
	}
	var res *Result
	w := comm.NewWorld(p, comm.Options{ChaosDelay: cfg.Chaos, ChaosSeed: int64(cfg.Seed)})
	start := time.Now()
	err := w.Run(func(c *comm.Comm) error {
		r, err := ampiRank(c, cfg, params)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res = r
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Name = "ampi"
	res.Elapsed = time.Since(start)
	return res, nil
}

func ampiRank(c *comm.Comm, cfg Config, params AMPIParams) (*Result, error) {
	p := c.Size()
	px, py := comm.Dims2D(p)
	dx, dy := comm.Dims2D(params.Overdecompose)
	vx, vy := px*dx, py*dy
	if vx > cfg.Mesh.L || vy > cfg.Mesh.L {
		return nil, fmt.Errorf("driver: VP grid %dx%d exceeds domain %d", vx, vy, cfg.Mesh.L)
	}
	vg, err := decomp.NewUniform2D(cfg.Mesh.L, vx, vy)
	if err != nil {
		return nil, err
	}
	place, err := ampi.BlockPlacement(vx, vy, px, py)
	if err != nil {
		return nil, err
	}

	// Initialization is replicated deterministically; each core materializes
	// only the VPs placed on it.
	all, err := dist.Initialize(cfg.distConfig())
	if err != nil {
		return nil, err
	}
	makeLocal := func(vp int) ampi.VP {
		x0, y0, nx, ny := vg.RankRect(vp)
		block, err := grid.NewBlock(cfg.Mesh, x0, y0, nx, ny)
		if err != nil {
			panic(err) // static decomposition of a validated mesh cannot fail
		}
		v := &picVP{id: vp, mesh: cfg.Mesh, x0: x0, y0: y0, nx: nx, ny: ny, block: block}
		for i := range all {
			cx, cy := cfg.Mesh.CellOf(all[i].X, all[i].Y)
			if vg.OwnerOfCell(cx, cy) == vp {
				v.ps = append(v.ps, all[i])
			}
		}
		return v
	}
	rt, err := ampi.NewRuntime(c, vx*vy, place, makeLocal, func() ampi.VP { return &picVP{} })
	if err != nil {
		return nil, err
	}
	all = nil // release the replicated copy

	es := newEventState(cfg)
	rec := &trace.Recorder{}
	rec.ObserveParticles(localParticleCount(rt))

	for step := 1; step <= cfg.Steps; step++ {
		// Compute phase: the core's scheduler runs each local VP in turn.
		var outbound []vpParcel
		rec.Time(trace.Compute, func() {
			rt.ForEach(func(avp ampi.VP) {
				v := avp.(*picVP)
				core.MoveAll(v.ps, v.block, cfg.Mesh)
				kept, leaving := particle.SplitRetain(v.ps, func(pp *particle.Particle) bool {
					cx, cy := cfg.Mesh.CellOf(pp.X, pp.Y)
					return vg.OwnerOfCell(cx, cy) == v.id
				}, nil)
				v.ps = kept
				if len(leaving) > 0 {
					outbound = append(outbound, routeToVPs(cfg.Mesh, vg, leaving)...)
				}
			})
		})

		// Exchange phase: parcels are grouped by hosting core and delivered.
		var exchErr error
		rec.Time(trace.Exchange, func() {
			buckets := make([][]vpParcel, p)
			for _, parcel := range outbound {
				dst := rt.Location(parcel.VP)
				buckets[dst] = append(buckets[dst], parcel)
			}
			for _, parcels := range comm.SparseExchange(c, buckets) {
				for _, parcel := range parcels {
					avp := rt.Local(parcel.VP)
					if avp == nil {
						exchErr = fmt.Errorf("driver: parcel for VP %d arrived at core %d which does not host it", parcel.VP, c.Rank())
						return
					}
					v := avp.(*picVP)
					v.ps = append(v.ps, parcel.Ps...)
				}
			}
		})
		if exchErr != nil {
			return nil, exchErr
		}

		// Events: removal per VP; injections routed to the owning VP if local.
		applyEventsAMPI(cfg, &es, step, rt, vg)
		rec.ObserveParticles(localParticleCount(rt))

		if step%params.Every == 0 {
			var lbErr error
			rec.Time(trace.Balance, func() {
				_, lbErr = rt.LoadBalance(params.Strategy)
			})
			if lbErr != nil {
				return nil, lbErr
			}
		}
	}

	var ps []particle.Particle
	rt.ForEach(func(avp ampi.VP) { ps = append(ps, avp.(*picVP).ps...) })
	merged, verified, err := gatherAndVerify(c, cfg, ps)
	if err != nil {
		return nil, err
	}
	rec.Migrations = rt.Stats.VPsSent + rt.Stats.VPsReceived
	res := collectResult(c, "ampi", cfg, rec, len(ps), rt.Stats.BytesSent, rec.Migrations)
	if res != nil {
		res.Verified = verified && (cfg.Verify || cfg.DistributedVerify)
		if cfg.Verify {
			res.Particles = merged
		}
	}
	return res, nil
}

// routeToVPs groups leaver particles by destination VP.
func routeToVPs(m grid.Mesh, vg *decomp.Grid2D, leaving []particle.Particle) []vpParcel {
	byVP := map[int][]particle.Particle{}
	for i := range leaving {
		cx, cy := m.CellOf(leaving[i].X, leaving[i].Y)
		dst := vg.OwnerOfCell(cx, cy)
		byVP[dst] = append(byVP[dst], leaving[i])
	}
	out := make([]vpParcel, 0, len(byVP))
	// Deterministic parcel order: ascending VP id.
	for vp := range byVP {
		out = append(out, vpParcel{VP: vp, Ps: byVP[vp]})
	}
	sortParcels(out)
	return out
}

func sortParcels(ps []vpParcel) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].VP < ps[j-1].VP; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func applyEventsAMPI(cfg Config, es *eventState, step int, rt *ampi.Runtime, vg *decomp.Grid2D) {
	for _, ev := range cfg.Schedule.At(step) {
		if ev.Remove {
			rt.ForEach(func(avp ampi.VP) {
				v := avp.(*picVP)
				kept := v.ps[:0]
				for i := range v.ps {
					if !ev.Region.ContainsPos(v.ps[i].X, v.ps[i].Y, cfg.Mesh) {
						kept = append(kept, v.ps[i])
					}
				}
				v.ps = kept
			})
		}
		if ev.Inject > 0 {
			dir := cfg.Dir
			if dir == 0 {
				dir = 1
			}
			inj := dist.InjectParticles(cfg.Mesh, ev, cfg.Seed, es.nextID, dir)
			es.nextID += uint64(ev.Inject)
			for i := range inj {
				cx, cy := cfg.Mesh.CellOf(inj[i].X, inj[i].Y)
				vp := vg.OwnerOfCell(cx, cy)
				if avp := rt.Local(vp); avp != nil {
					v := avp.(*picVP)
					v.ps = append(v.ps, inj[i])
				}
			}
		}
	}
}

func localParticleCount(rt *ampi.Runtime) int {
	n := 0
	rt.ForEach(func(avp ampi.VP) { n += len(avp.(*picVP).ps) })
	return n
}
