package driver

import (
	"fmt"
	"testing"
	"time"

	"github.com/parres/picprk/internal/ampi"
	"github.com/parres/picprk/internal/core"
	"github.com/parres/picprk/internal/diffusion"
	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/particle"
)

func testConfig(t testing.TB, L, n, steps int) Config {
	t.Helper()
	m, err := grid.NewMesh(L, grid.DefaultCharge)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Mesh: m, N: n, Steps: steps,
		Dist:   dist.Geometric{R: 0.92},
		Seed:   12345,
		Verify: true,
	}
}

// sequentialReference runs the serial simulation and returns its particles
// sorted by ID.
func sequentialReference(t testing.TB, cfg Config) []particle.Particle {
	t.Helper()
	sim, err := core.NewSimulation(cfg.distConfig(), cfg.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(cfg.Steps)
	if err := sim.Verify(cfg.Tol); err != nil {
		t.Fatalf("sequential reference failed verification: %v", err)
	}
	ps := append([]particle.Particle(nil), sim.Particles...)
	sortByID(ps)
	return ps
}

func sortByID(ps []particle.Particle) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].ID < ps[j-1].ID; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

func assertBitwiseEqual(t *testing.T, want, got []particle.Particle, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d particles, reference has %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: particle %d differs:\nref: %+v\ngot: %+v", label, want[i].ID, want[i], got[i])
		}
	}
}

func TestBaselineMatchesSequential(t *testing.T) {
	cfg := testConfig(t, 16, 2000, 40)
	ref := sequentialReference(t, cfg)
	for _, p := range []int{1, 2, 4, 6} {
		res, err := RunBaseline(p, cfg)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if !res.Verified {
			t.Fatalf("P=%d: not verified", p)
		}
		assertBitwiseEqual(t, ref, res.Particles, fmt.Sprintf("baseline P=%d", p))
		if res.FinalParticles != 2000 {
			t.Fatalf("P=%d: final count %d", p, res.FinalParticles)
		}
	}
}

func TestDiffusionMatchesSequential(t *testing.T) {
	cfg := testConfig(t, 16, 2000, 40)
	ref := sequentialReference(t, cfg)
	params := diffusion.Params{Every: 5, Threshold: 0.05, Width: 1, MinWidth: 2}
	for _, p := range []int{1, 2, 4, 6} {
		res, err := RunDiffusion(p, cfg, params)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if !res.Verified {
			t.Fatalf("P=%d: not verified", p)
		}
		assertBitwiseEqual(t, ref, res.Particles, fmt.Sprintf("diffusion P=%d", p))
	}
}

func TestAMPIMatchesSequential(t *testing.T) {
	cfg := testConfig(t, 16, 2000, 40)
	ref := sequentialReference(t, cfg)
	params := AMPIParams{Overdecompose: 4, Every: 10}
	for _, p := range []int{1, 2, 4} {
		res, err := RunAMPI(p, cfg, params)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if !res.Verified {
			t.Fatalf("P=%d: not verified", p)
		}
		assertBitwiseEqual(t, ref, res.Particles, fmt.Sprintf("ampi P=%d", p))
	}
}

func TestDriversWithInjectionAndRemoval(t *testing.T) {
	cfg := testConfig(t, 16, 1500, 30)
	cfg.Schedule = dist.Schedule{
		{Step: 10, Region: dist.Rect{X0: 2, X1: 8, Y0: 2, Y1: 8}, Inject: 400, K: 0, M: 1},
		{Step: 20, Region: dist.Rect{X0: 0, X1: 6, Y0: 0, Y1: 16}, Remove: true},
	}
	ref := sequentialReference(t, cfg)
	base, err := RunBaseline(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwiseEqual(t, ref, base.Particles, "baseline+events")

	diff, err := RunDiffusion(4, cfg, diffusion.Params{Every: 7, Threshold: 0.05, Width: 1, MinWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertBitwiseEqual(t, ref, diff.Particles, "diffusion+events")

	am, err := RunAMPI(4, cfg, AMPIParams{Overdecompose: 2, Every: 8})
	if err != nil {
		t.Fatal(err)
	}
	assertBitwiseEqual(t, ref, am.Particles, "ampi+events")
}

func TestDriversWithFastAndVerticalParticles(t *testing.T) {
	cfg := testConfig(t, 20, 800, 25)
	cfg.K = 1 // 3 cells per step: exchanges skip over neighbor subdomains
	cfg.M = -2
	ref := sequentialReference(t, cfg)

	base, err := RunBaseline(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwiseEqual(t, ref, base.Particles, "baseline k=1 m=-2")

	am, err := RunAMPI(2, cfg, AMPIParams{Overdecompose: 4, Every: 5})
	if err != nil {
		t.Fatal(err)
	}
	assertBitwiseEqual(t, ref, am.Particles, "ampi k=1 m=-2")
}

func TestDriversLeftwardDrift(t *testing.T) {
	cfg := testConfig(t, 16, 600, 20)
	cfg.Dir = -1
	ref := sequentialReference(t, cfg)
	res, err := RunDiffusion(4, cfg, diffusion.Params{Every: 5, Threshold: 0.1, Width: 1, MinWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertBitwiseEqual(t, ref, res.Particles, "diffusion dir=-1")
}

func TestDiffusionActuallyMigrates(t *testing.T) {
	cfg := testConfig(t, 32, 5000, 60)
	cfg.Dist = dist.Geometric{R: 0.85} // strongly skewed
	params := diffusion.Params{Every: 5, Threshold: 0.05, Width: 1, MinWidth: 2}
	res, err := RunDiffusion(4, cfg, params)
	if err != nil {
		t.Fatal(err)
	}
	migrations := 0
	for _, s := range res.PerRank {
		migrations += s.Migrations
	}
	if migrations == 0 {
		t.Error("diffusion never migrated on a strongly skewed workload")
	}
}

func TestDiffusionImprovesBalanceOverBaseline(t *testing.T) {
	cfg := testConfig(t, 32, 8000, 60)
	cfg.Dist = dist.Geometric{R: 0.85}
	base, err := RunBaseline(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := RunDiffusion(4, cfg, diffusion.Params{Every: 5, Threshold: 0.05, Width: 1, MinWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §V-B comparison: max particles per rank at the end.
	if diff.MaxFinalParticles >= base.MaxFinalParticles {
		t.Errorf("diffusion max/rank %d did not beat baseline %d",
			diff.MaxFinalParticles, base.MaxFinalParticles)
	}
}

func TestAMPIActuallyMigratesVPs(t *testing.T) {
	cfg := testConfig(t, 32, 5000, 40)
	cfg.Dist = dist.Geometric{R: 0.85}
	res, err := RunAMPI(4, cfg, AMPIParams{Overdecompose: 4, Every: 10})
	if err != nil {
		t.Fatal(err)
	}
	moves := 0
	for _, s := range res.PerRank {
		moves += s.Migrations
	}
	if moves == 0 {
		t.Error("ampi never migrated a VP on a strongly skewed workload")
	}
}

func TestAMPIImprovesBalanceOverBaseline(t *testing.T) {
	cfg := testConfig(t, 32, 8000, 60)
	cfg.Dist = dist.Geometric{R: 0.85}
	base, err := RunBaseline(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	am, err := RunAMPI(4, cfg, AMPIParams{Overdecompose: 8, Every: 10})
	if err != nil {
		t.Fatal(err)
	}
	if am.MaxFinalParticles >= base.MaxFinalParticles {
		t.Errorf("ampi max/rank %d did not beat baseline %d",
			am.MaxFinalParticles, base.MaxFinalParticles)
	}
}

func TestAMPIStrategies(t *testing.T) {
	cfg := testConfig(t, 16, 1000, 20)
	ref := sequentialReference(t, cfg)
	for _, s := range []ampi.Strategy{ampi.NullLB{}, ampi.RotateLB{}, ampi.GreedyLB{}, ampi.RefineLB{}, &ampi.HintedGreedyLB{}, ampi.WorkStealLB{}} {
		res, err := RunAMPI(3, cfg, AMPIParams{Overdecompose: 4, Every: 6, Strategy: s})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		assertBitwiseEqual(t, ref, res.Particles, s.Name())
	}
}

func TestSinusoidalAndPatchDistributions(t *testing.T) {
	for _, d := range []dist.Distribution{
		dist.Sinusoidal{},
		dist.Linear{Alpha: 1, Beta: 2},
		dist.Patch{X0: 3, X1: 9, Y0: 3, Y1: 9},
		dist.Uniform{},
	} {
		cfg := testConfig(t, 16, 1200, 25)
		cfg.Dist = d
		ref := sequentialReference(t, cfg)
		res, err := RunBaseline(4, cfg)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		assertBitwiseEqual(t, ref, res.Particles, d.Name())
	}
}

func TestDistributedVerify(t *testing.T) {
	cfg := testConfig(t, 16, 1500, 30)
	cfg.Verify = false
	cfg.DistributedVerify = true
	cfg.Schedule = dist.Schedule{
		{Step: 10, Region: dist.Rect{X0: 2, X1: 8, Y0: 2, Y1: 8}, Inject: 200, M: 1},
		{Step: 20, Region: dist.Rect{X0: 0, X1: 6, Y0: 0, Y1: 16}, Remove: true},
	}
	for _, run := range []struct {
		name string
		fn   func() (*Result, error)
	}{
		{"baseline", func() (*Result, error) { return RunBaseline(4, cfg) }},
		{"diffusion", func() (*Result, error) {
			return RunDiffusion(4, cfg, diffusion.Params{Every: 5, Threshold: 0.05, Width: 1, MinWidth: 2})
		}},
		{"ampi", func() (*Result, error) { return RunAMPI(4, cfg, AMPIParams{Overdecompose: 4, Every: 10}) }},
	} {
		res, err := run.fn()
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if !res.Verified {
			t.Errorf("%s: distributed verification did not pass", run.name)
		}
		if res.Particles != nil {
			t.Errorf("%s: distributed verification must not gather particles", run.name)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	m, _ := grid.NewMesh(8, 1)
	if _, err := RunBaseline(0, Config{Mesh: m, N: 1, Steps: 1}); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := RunBaseline(2, Config{Mesh: m, N: 1, Steps: -1}); err == nil {
		t.Error("negative steps accepted")
	}
	if _, err := RunBaseline(2, Config{N: 1, Steps: 1}); err == nil {
		t.Error("zero mesh accepted")
	}
	if _, err := RunDiffusion(2, Config{Mesh: m, N: 1, Steps: 1}, diffusion.Params{}); err == nil {
		t.Error("invalid diffusion params accepted")
	}
	if _, err := RunAMPI(2, Config{Mesh: m, N: 1, Steps: 1}, AMPIParams{}); err == nil {
		t.Error("invalid ampi params accepted")
	}
	if _, err := RunAMPI(2, Config{Mesh: m, N: 1, Steps: 1}, AMPIParams{Overdecompose: 100, Every: 5}); err == nil {
		t.Error("VP grid larger than domain accepted")
	}
}

func TestDriversUnderChaosDelays(t *testing.T) {
	// Random message delivery delays must not change any result: the
	// protocols rely only on (source, tag) matching and sequence-numbered
	// collectives.
	cfg := testConfig(t, 16, 800, 20)
	cfg.Chaos = 500 * time.Microsecond
	ref := sequentialReference(t, cfg)
	base, err := RunBaseline(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwiseEqual(t, ref, base.Particles, "baseline+chaos")
	am, err := RunAMPI(3, cfg, AMPIParams{Overdecompose: 4, Every: 5})
	if err != nil {
		t.Fatal(err)
	}
	assertBitwiseEqual(t, ref, am.Particles, "ampi+chaos")
	diff, err := RunDiffusion(4, cfg, diffusion.Params{Every: 4, Threshold: 0.05, Width: 1, MinWidth: 2, TwoPhase: true})
	if err != nil {
		t.Fatal(err)
	}
	assertBitwiseEqual(t, ref, diff.Particles, "diffusion+chaos")
}

func TestZeroStepsRun(t *testing.T) {
	cfg := testConfig(t, 8, 100, 0)
	res, err := RunBaseline(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.FinalParticles != 100 {
		t.Fatalf("zero-step run: verified=%v n=%d", res.Verified, res.FinalParticles)
	}
}

// TestKitchenSink combines every feature at once: fast leftward vertical
// particles, two-phase diffusion, chaos delays, an event schedule, and
// distributed verification at an awkward rank count.
func TestKitchenSink(t *testing.T) {
	cfg := testConfig(t, 24, 2500, 36)
	cfg.K = 1
	cfg.M = -2
	cfg.Dir = -1
	cfg.Dist = dist.Sinusoidal{}
	cfg.Chaos = 200 * time.Microsecond
	cfg.Verify = false
	cfg.DistributedVerify = true
	cfg.Schedule = dist.Schedule{
		{Step: 9, Region: dist.Rect{X0: 0, X1: 12, Y0: 12, Y1: 24}, Inject: 600, K: 2, M: 1},
		{Step: 18, Region: dist.Rect{X0: 6, X1: 18, Y0: 0, Y1: 24}, Remove: true},
		{Step: 27, Region: dist.Rect{X0: 0, X1: 24, Y0: 0, Y1: 6}, Inject: 300},
	}
	res, err := RunDiffusion(6, cfg, diffusion.Params{Every: 3, Threshold: 0.05, Width: 1, MinWidth: 2, TwoPhase: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("kitchen sink run not verified")
	}
	am, err := RunAMPI(5, cfg, AMPIParams{Overdecompose: 4, Every: 4, Strategy: ampi.WorkStealLB{}})
	if err != nil {
		t.Fatal(err)
	}
	if !am.Verified {
		t.Fatal("ampi kitchen sink run not verified")
	}
	if res.FinalParticles != am.FinalParticles {
		t.Fatalf("final counts disagree: %d vs %d", res.FinalParticles, am.FinalParticles)
	}
}

func TestResultHighWater(t *testing.T) {
	cfg := testConfig(t, 16, 1000, 10)
	res, err := RunBaseline(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hw := res.MaxParticlesHighWater(); hw < res.MaxFinalParticles {
		t.Errorf("high water %d below final max %d", hw, res.MaxFinalParticles)
	}
}
