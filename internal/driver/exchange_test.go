package driver

import (
	"fmt"
	"testing"

	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/trace"
)

// TestSteadyStateStepAllocationFree pins the tentpole property of the
// columnar exchange: a steady-state step — fused classification, scatter
// into reused shards, pointer exchange, columnar append — performs zero
// allocations, with the move pool both on its inline path (workers=1) and
// genuinely parallel (workers=3, particle counts above the chunking
// threshold), and both through the legacy Move→Exchange pair and the
// tile-pipelined MoveExchange (counting sort, two-wave move, split
// Start/Finish exchange). AllocsPerRun counts process-global mallocs, so
// rank 0 measures while rank 1 runs the same number of steps in lockstep —
// both ranks must therefore be allocation-free for the test to pass.
func TestSteadyStateStepAllocationFree(t *testing.T) {
	cases := []struct {
		name      string
		workers   int
		pipelined bool
		mk        func(c *comm.Comm, cfg Config) (Substrate, error)
	}{
		{"block-pool-inline", 1, false, func(c *comm.Comm, cfg Config) (Substrate, error) {
			return newBlockSubstrate(c, cfg, 2, 1)
		}},
		{"block-pool-active", 3, false, func(c *comm.Comm, cfg Config) (Substrate, error) {
			return newBlockSubstrate(c, cfg, 2, 1)
		}},
		{"vp", 1, false, func(c *comm.Comm, cfg Config) (Substrate, error) {
			return newVPSubstrate(c, cfg, 4)
		}},
		{"block-pipelined-inline", 1, true, func(c *comm.Comm, cfg Config) (Substrate, error) {
			return newBlockSubstrate(c, cfg, 2, 1)
		}},
		{"block-pipelined-active", 3, true, func(c *comm.Comm, cfg Config) (Substrate, error) {
			return newBlockSubstrate(c, cfg, 2, 1)
		}},
		{"vp-pipelined", 1, true, func(c *comm.Comm, cfg Config) (Substrate, error) {
			return newVPSubstrate(c, cfg, 4)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(t, 16, 4000, 0)
			cfg.Verify = false
			cfg.Workers = tc.workers
			cfg.Dist = nil // uniform: both ranks stay above the parallel threshold
			const runs = 10
			w := comm.NewWorld(2)
			err := w.Run(func(c *comm.Comm) error {
				s, err := tc.mk(c, cfg)
				if err != nil {
					return err
				}
				defer s.Close()
				rec := &trace.Recorder{}
				step := func() {
					if tc.pipelined {
						if err := s.MoveExchange(rec); err != nil {
							panic(err)
						}
					} else {
						s.Move()
						if err := s.Exchange(rec); err != nil {
							panic(err)
						}
					}
					if s.Count() == 0 {
						panic("no local particles — the step under test is trivial")
					}
				}
				// Warm until every reused buffer reaches its high-water
				// capacity (the leaver pattern repeats with the particles'
				// periodic trajectories).
				for i := 0; i < 40; i++ {
					step()
				}
				if c.Rank() == 0 {
					if avg := testing.AllocsPerRun(runs, step); avg != 0 {
						return fmt.Errorf("steady-state Move+Exchange: %v allocs/step, want 0", avg)
					}
				} else {
					// AllocsPerRun invokes fn runs+1 times (one warmup);
					// mirror it so the collectives stay in lockstep.
					for i := 0; i < runs+1; i++ {
						step()
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// benchmarkExchange measures the steady-state Move+Exchange step for one
// substrate construction over p ranks. Every rank runs the same b.N loop
// (the exchange is collective), so ns/op is the true lockstep step time.
func benchmarkExchange(b *testing.B, p int, mk func(c *comm.Comm, cfg Config) (Substrate, error)) {
	cfg := testConfig(b, 64, 40000, 0)
	cfg.Verify = false
	w := comm.NewWorld(p)
	err := w.Run(func(c *comm.Comm) error {
		s, err := mk(c, cfg)
		if err != nil {
			return err
		}
		defer s.Close()
		rec := &trace.Recorder{}
		for i := 0; i < 3; i++ {
			s.Move()
			if err := s.Exchange(rec); err != nil {
				return err
			}
		}
		if c.Rank() == 0 {
			b.ReportAllocs()
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			s.Move()
			if err := s.Exchange(rec); err != nil {
				return err
			}
		}
		if c.Rank() == 0 {
			b.StopTimer()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkExchange covers the decompositions the drivers actually run:
// single-rank and 2D-block for the block substrate, over-decomposed VPs for
// the ampi/worksteal family. The geometric distribution keeps the exchange
// imbalanced, which is the regime the columnar path is built for.
func BenchmarkExchange(b *testing.B) {
	b.Run("block-1x1", func(b *testing.B) {
		benchmarkExchange(b, 1, func(c *comm.Comm, cfg Config) (Substrate, error) {
			return newBlockSubstrate(c, cfg, 1, 1)
		})
	})
	b.Run("block-2x2", func(b *testing.B) {
		benchmarkExchange(b, 4, func(c *comm.Comm, cfg Config) (Substrate, error) {
			return newBlockSubstrate(c, cfg, 2, 2)
		})
	})
	b.Run("block-4x1", func(b *testing.B) {
		benchmarkExchange(b, 4, func(c *comm.Comm, cfg Config) (Substrate, error) {
			return newBlockSubstrate(c, cfg, 4, 1)
		})
	})
	b.Run("vp-2x2x4", func(b *testing.B) {
		benchmarkExchange(b, 4, func(c *comm.Comm, cfg Config) (Substrate, error) {
			return newVPSubstrate(c, cfg, 4)
		})
	})
}
