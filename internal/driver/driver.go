// Package driver contains the parallel reference implementations of the
// PIC PRK described in paper §IV, written against the message-passing
// runtime in internal/comm exactly as the paper's codes are written against
// MPI. One Engine owns the per-rank step pipeline (init → move → exchange →
// events → balance → verify); each driver is the engine instantiated with a
// Substrate (how particles and mesh data physically live on ranks) and a
// balance.Balancer (the policy deciding when and what to move):
//
//   - Baseline (paper "mpi-2d"): block substrate + NullBalancer — static
//     2D block decomposition, no load balancing.
//   - Diffusion (paper "mpi-2d-LB"): block substrate + DiffusionBalancer —
//     application-specific diffusion of the decomposition cuts.
//   - AMPI (paper "ampi"): VP substrate + AMPIBalancer — over-decomposition
//     into virtual processors with runtime-orchestrated load balancing and
//     PUP-serialized migration.
//   - WorkSteal (paper §VI future work): VP substrate + WorkStealBalancer —
//     demand-driven stealing by underloaded cores.
//
// All four produce bitwise-identical particle states to the sequential
// reference simulation (asserted by the test suite) and self-verify against
// the closed-form solution. The same Balancer implementations also drive
// the performance model (internal/model), so modeled and real decisions
// coincide by construction.
package driver

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/core"
	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/particle"
	"github.com/parres/picprk/internal/telemetry"
	"github.com/parres/picprk/internal/trace"
)

// Config describes one PIC PRK run.
type Config struct {
	Mesh grid.Mesh
	// N is the initial particle count.
	N int
	// K, M are the trajectory speed parameters (paper eqs. 3–4).
	K, M int
	// Dir is the drift direction (+1 default).
	Dir int
	// Dist is the initial distribution (nil = uniform).
	Dist dist.Distribution
	// Seed drives deterministic placement.
	Seed uint64
	// Steps is the number of time steps.
	Steps int
	// Schedule holds injection/removal events.
	Schedule dist.Schedule
	// Verify gathers all particles at rank 0 after the run and checks them
	// against the closed-form solution.
	Verify bool
	// DistributedVerify verifies without gathering: every rank checks its
	// local particles against the closed-form solution and the population
	// count and ID checksum are allreduced — the "trivially parallelized"
	// verification of paper §III-D. Result.Particles stays nil.
	DistributedVerify bool
	// Tol overrides the verification tolerance (0 = default).
	Tol float64
	// Chaos, when positive, delays every message delivery by a random
	// duration up to this bound — a stress mode that shakes out ordering
	// assumptions in the exchange and migration protocols.
	Chaos time.Duration
	// Transport selects the comm substrate: "" or "inproc" runs the ranks
	// as goroutines sharing one in-process world (the default); "tcp" or
	// "unix" runs each rank as its own wire node over loopback sockets,
	// serializing every payload through the registered codecs — the same
	// path picrun's multi-process mode uses. An empty field defers to the
	// PICPRK_TRANSPORT environment variable, which is how the test suite
	// reroutes the engine tests over the wire without editing them.
	Transport string
	// Workers is the number of worker goroutines each rank uses for the
	// move phase (intra-rank shared-memory parallelism). 0 selects the
	// default, GOMAXPROCS/ranks with a minimum of 1. Particle updates are
	// independent, so results are bitwise identical at any worker count.
	Workers int
	// Tile controls the tile-pipelined step: each rank's sub-domain splits
	// into boundary tiles (cells within one step's displacement of remote
	// territory) and interior tiles of Tile×Tile cells; boundary tiles move
	// first and their leavers go on the wire while the interior tiles are
	// still computing. 0 selects the default tile edge (DefaultTile); a
	// positive value sets the interior tile edge in cells (a value covering
	// the whole sub-domain degenerates to one boundary + one interior
	// tile); -1 disables the pipeline and runs the move and the exchange
	// strictly in sequence, as before. Results are bitwise identical at any
	// setting.
	Tile int
	// Telemetry enables the per-step timeline: every rank records one
	// telemetry.Sample per step and rank 0's Result carries the merged
	// Timeline. Off by default; the steady-state step then stays
	// allocation-free and results are bitwise identical either way.
	Telemetry bool
	// TelemetryCap bounds the per-rank sample ring; 0 keeps one slot per
	// step. A full ring evicts the oldest samples (Timeline.Dropped counts
	// them), bounding memory on very long runs.
	TelemetryCap int
	// Live, when non-nil, receives every rank's per-step samples for the
	// /metrics endpoint — independently of Telemetry, so a capped or
	// disabled timeline still feeds live gauges.
	Live *telemetry.Live
	// CheckpointEvery, when positive, ends an epoch every N steps with a
	// distributed checkpoint barrier: every rank serializes its full
	// substrate state through the PUP paths and the shards gather to rank 0
	// (the commit). The checkpoint work is confined to the boundary steps —
	// non-boundary steps stay allocation-free and results are bitwise
	// identical with checkpointing on or off. 0 disables epochs (one epoch
	// spans the whole run).
	CheckpointEvery int
	// Recover arms crash recovery on top of checkpointing (wire transports
	// only): when a peer vanishes mid-run, survivors roll back to the last
	// committed epoch, the rendezvous re-admits a replacement into the
	// vacated rank, and the run resumes — bitwise identical to an
	// uninterrupted run. Requires CheckpointEvery > 0. Workers use it to
	// decide whether a lost world means "rejoin" or "exit".
	Recover bool
}

// Transport names accepted by Config.Transport (and picrun -transport).
const (
	TransportInproc = "inproc"
	TransportTCP    = "tcp"
	TransportUnix   = "unix"
)

// ResolveTransport returns the effective transport name: the explicit
// setting if any, else the PICPRK_TRANSPORT environment variable, else
// in-process.
func (cfg *Config) ResolveTransport() string {
	if cfg.Transport != "" {
		return cfg.Transport
	}
	if env := os.Getenv("PICPRK_TRANSPORT"); env != "" {
		return env
	}
	return TransportInproc
}

// WorldOptions returns the comm.Options a run with this Config uses, for
// callers (picrun workers) that construct the World themselves and hand it
// to Engine.RunWorld.
func (cfg *Config) WorldOptions() comm.Options {
	return comm.Options{ChaosDelay: cfg.Chaos, ChaosSeed: int64(cfg.Seed)}
}

// EffectiveWorkers resolves the per-rank move worker count a run with this
// Config actually uses: the explicit Workers setting, else GOMAXPROCS/ranks
// with a minimum of 1. Exposed so tooling (picbench) records the resolved
// value instead of the raw flag.
func (cfg *Config) EffectiveWorkers(ranks int) int {
	return cfg.effectiveWorkers(ranks)
}

// effectiveWorkers resolves the per-rank move worker count.
func (cfg *Config) effectiveWorkers(ranks int) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	w := runtime.GOMAXPROCS(0) / ranks
	if w < 1 {
		w = 1
	}
	return w
}

// DefaultTile is the interior tile edge used when Config.Tile is 0.
const DefaultTile = 8

// effectiveTile resolves the tile edge (0 when the pipeline is disabled).
func (cfg *Config) effectiveTile() int {
	switch {
	case cfg.Tile == -1:
		return 0
	case cfg.Tile == 0:
		return DefaultTile
	default:
		return cfg.Tile
	}
}

// ringWidths returns the per-axis displacement ring of the run: the maximum
// distance, in cells, any particle can travel in one step. The closed-form
// trajectories (core/verify.go) move a particle exactly (2K+1) cells in x
// and M cells in y per step, so the ring is exact, not an estimate;
// injected particles carry their event's own K and M, so the ring maxes
// over the schedule too. The tile pipeline uses it to decide which cells
// can reach remote territory within a step.
func (cfg *Config) ringWidths() (rx, ry int) {
	rx = 2*cfg.K + 1
	ry = cfg.M
	if ry < 0 {
		ry = -ry
	}
	for _, ev := range cfg.Schedule {
		if ev.Inject <= 0 {
			continue
		}
		if w := 2*ev.K + 1; w > rx {
			rx = w
		}
		h := ev.M
		if h < 0 {
			h = -h
		}
		if h > ry {
			ry = h
		}
	}
	return rx, ry
}

func (cfg *Config) distConfig() dist.Config {
	return dist.Config{
		Mesh: cfg.Mesh, N: cfg.N, K: cfg.K, M: cfg.M,
		Dir: cfg.Dir, Dist: cfg.Dist, Seed: cfg.Seed,
	}
}

func (cfg *Config) validate(p int) error {
	if cfg.Steps < 0 {
		return fmt.Errorf("driver: negative step count %d", cfg.Steps)
	}
	if cfg.Mesh.L == 0 {
		return fmt.Errorf("driver: zero-value mesh")
	}
	if p <= 0 {
		return fmt.Errorf("driver: need at least one rank")
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("driver: negative move worker count %d", cfg.Workers)
	}
	if cfg.Tile < -1 {
		return fmt.Errorf("driver: invalid tile size %d (want -1, 0 or a positive edge)", cfg.Tile)
	}
	if cfg.TelemetryCap < 0 {
		return fmt.Errorf("driver: negative telemetry ring cap %d", cfg.TelemetryCap)
	}
	switch tr := cfg.ResolveTransport(); tr {
	case TransportInproc, TransportTCP, TransportUnix:
	default:
		return fmt.Errorf("driver: unknown transport %q (want %s, %s or %s)",
			tr, TransportInproc, TransportTCP, TransportUnix)
	}
	if cfg.CheckpointEvery < 0 {
		return fmt.Errorf("driver: negative checkpoint interval %d", cfg.CheckpointEvery)
	}
	if cfg.Recover && cfg.CheckpointEvery == 0 {
		return fmt.Errorf("driver: recovery requires a checkpoint interval (set CheckpointEvery)")
	}
	if err := cfg.Schedule.Validate(cfg.Mesh); err != nil {
		return err
	}
	return nil
}

// RankStats reports one rank's accounting after a run.
type RankStats struct {
	Rank int
	// Compute, Exchange, Balance, Migrate are the per-phase times: particle
	// moves, particle exchange, LB decisions (reductions + planning), and
	// LB data movement (mesh or VP migration).
	Compute, Exchange, Balance, Migrate time.Duration
	// Overlap is the exchange time hidden behind compute by the tile
	// pipeline: wall time of interior-tile moves that ran while the
	// boundary exchange was in flight. It is included in Compute (the time
	// was spent computing); Exchange holds only the exposed remainder.
	Overlap time.Duration
	// FinalParticles is the local particle count at the end of the run;
	// MaxParticles the high-water mark over all steps (§V-B metric).
	FinalParticles, MaxParticles int
	// Migrations counts LB actions that moved data to or from this rank.
	Migrations int
	// BytesMigrated counts LB payload bytes sent by this rank.
	BytesMigrated int64
	// BytesExchanged counts particle-exchange payload bytes sent by this
	// rank, in the framed columnar wire size (core.Columns.FramedBytes).
	BytesExchanged int64
	// MsgsSent counts exchange messages this rank posted over the run;
	// MsgsElided those the sparse neighbor schedule skipped relative to the
	// full P-1 ring. Their sum is (P-1) × exchange calls.
	MsgsSent, MsgsElided int64
}

// Result is what a driver run returns on rank 0.
type Result struct {
	Name    string
	P       int
	Steps   int
	Elapsed time.Duration
	PerRank []RankStats
	// FinalParticles is the global particle count after the run.
	FinalParticles int
	// MaxFinalParticles is the largest per-rank particle count at the end,
	// the metric paper §V-B reports (62,645 baseline vs 30,585 diffusion).
	MaxFinalParticles int
	// Verified is set when cfg.Verify was requested and passed.
	Verified bool
	// Particles holds the gathered global final state (sorted by ID) when
	// cfg.Verify was requested; tests compare it bitwise against the
	// sequential reference.
	Particles []particle.Particle
	// BalanceLog is rank 0's policy history: one line per executed
	// (non-empty) balancing plan. Because plans are pure functions of
	// globally-reduced loads, every rank's log is identical; tests compare
	// it against the model's log to pin decision identity.
	BalanceLog []string
	// Timeline is the merged per-step, per-rank telemetry when
	// cfg.Telemetry was set, nil otherwise.
	Timeline *telemetry.Timeline
	// Wire is the merged wire-transport accounting (per-peer frame counters,
	// one-way latency histograms, clock offsets) for socket-transport runs
	// where the caller owns every node (the in-process loopback cluster);
	// nil for in-process transport and for multi-process workers, whose
	// coordinator queries its own node directly.
	Wire *telemetry.WireReport
	// Recovery summarizes the epoch lifecycle of a checkpointed run:
	// committed epochs, and — for elastic runs that survived rank failures —
	// rollbacks and re-admissions. Nil when checkpointing was off.
	Recovery *RecoveryStats
}

// RecoveryStats counts the epoch lifecycle events of one run.
type RecoveryStats struct {
	// Generations is the number of world incarnations the run took: 1 for
	// an uninterrupted run, +1 per rollback/readmit cycle.
	Generations int
	// Commits counts committed epoch checkpoints (rank 0's shard store).
	Commits int
	// Rollbacks counts world teardowns caused by a lost rank; Readmits
	// counts replacement workers admitted into a vacated rank slot.
	Rollbacks, Readmits int
}

// MaxParticlesHighWater returns the largest per-rank high-water mark.
func (r *Result) MaxParticlesHighWater() int {
	m := 0
	for _, s := range r.PerRank {
		if s.MaxParticles > m {
			m = s.MaxParticles
		}
	}
	return m
}

// initLocalParticles computes the deterministic global initialization and
// keeps the particles owned by this rank. Replicating the initialization is
// O(N) per rank but keeps placement bitwise independent of P, which the
// verification scheme relies on.
func initLocalParticles(cfg Config, owns func(cx, cy int) bool) ([]particle.Particle, error) {
	all, err := dist.Initialize(cfg.distConfig())
	if err != nil {
		return nil, err
	}
	local := all[:0]
	for i := range all {
		cx, cy := cfg.Mesh.CellOf(all[i].X, all[i].Y)
		if owns(cx, cy) {
			local = append(local, all[i])
		}
	}
	return append([]particle.Particle(nil), local...), nil
}

// eventState tracks the globally-agreed ID counter for injections.
type eventState struct {
	nextID uint64
}

func newEventState(cfg Config) eventState {
	return eventState{nextID: uint64(cfg.N) + 1}
}

// apply fires the events scheduled at the given step against the local
// particle set: removal scans local particles; injection recomputes the
// deterministic global injection list and keeps the locally-owned ones.
// Every rank advances nextID identically.
func (es *eventState) apply(cfg Config, step int, ps []particle.Particle, owns func(cx, cy int) bool) []particle.Particle {
	for _, ev := range cfg.Schedule.At(step) {
		if ev.Remove {
			kept := ps[:0]
			for i := range ps {
				if !ev.Region.ContainsPos(ps[i].X, ps[i].Y, cfg.Mesh) {
					kept = append(kept, ps[i])
				}
			}
			ps = kept
		}
		if ev.Inject > 0 {
			dir := cfg.Dir
			if dir == 0 {
				dir = 1
			}
			inj := dist.InjectParticles(cfg.Mesh, ev, cfg.Seed, es.nextID, dir)
			es.nextID += uint64(ev.Inject)
			for i := range inj {
				cx, cy := cfg.Mesh.CellOf(inj[i].X, inj[i].Y)
				if owns(cx, cy) {
					ps = append(ps, inj[i])
				}
			}
		}
	}
	return ps
}

// applySoA is eventState.apply against an SoA particle store: removal scans
// the local particles in place; injection recomputes the deterministic
// global injection list and appends the locally-owned ones. Every rank
// advances nextID identically.
func (es *eventState) applySoA(cfg Config, step int, s *core.SoA, owns func(cx, cy int) bool) {
	for _, ev := range cfg.Schedule.At(step) {
		if ev.Remove {
			region := ev.Region
			s.Filter(func(i int) bool {
				return !region.ContainsPos(s.X[i], s.Y[i], cfg.Mesh)
			})
		}
		if ev.Inject > 0 {
			dir := cfg.Dir
			if dir == 0 {
				dir = 1
			}
			inj := dist.InjectParticles(cfg.Mesh, ev, cfg.Seed, es.nextID, dir)
			es.nextID += uint64(ev.Inject)
			for i := range inj {
				cx, cy := cfg.Mesh.CellOf(inj[i].X, inj[i].Y)
				if owns(cx, cy) {
					s.Append(inj[i])
				}
			}
		}
	}
}

// sendBuckets is a double-buffered set of per-destination send buckets for
// the step exchange, so the steady state refills existing backing arrays
// instead of allocating fresh ones.
//
// Why double buffering is enough: comm.Send transfers ownership of the
// bucket slice to the receiver, so a bucket must not be refilled while a
// receiver could still be reading it. SparseExchange begins with an
// allreduce, which no rank completes before every rank has entered it —
// and a rank only enters exchange k+1's allreduce after it finished
// receiving (and copying out) exchange k's buckets. A sender fills buckets
// for exchange k+2 only after completing exchange k+1, i.e. after its
// allreduce completed, i.e. after every receiver finished reading exchange
// k. Alternating two generations therefore never overwrites a bucket that
// is still in flight, even under chaos-mode delivery delays (a delayed
// delivery delays the receiver's progress, and with it every later
// allreduce). TestDriversUnderChaos and TestAllPoliciesUnderChaos exercise
// exactly this.
type sendBuckets[T any] struct {
	gens [2][][]T
	gen  int
}

// next returns the older generation's buckets, emptied and sized for p
// destinations, and flips the generation.
func (b *sendBuckets[T]) next(p int) [][]T {
	cur := b.gens[b.gen]
	if len(cur) != p {
		cur = make([][]T, p)
		b.gens[b.gen] = cur
	}
	b.gen = 1 - b.gen
	for i := range cur {
		cur[i] = cur[i][:0]
	}
	return cur
}

// colShards is the double-buffered set of per-destination core.Columns
// shards for the columnar exchange. The safety argument is the one
// comm.ExchangePtr documents: completing exchange call k+1 implies every
// rank the schedule let call k route to has finished reading call k's
// shards — under a sparse neighbor schedule those are the only ranks that
// ever held them — so alternating two generations never overwrites a shard
// still in flight, even under chaos-mode delivery delays.
type colShards struct {
	gens [2][]core.Columns
	gen  int
}

// next returns the older generation's shards, emptied and sized for p
// destinations, and flips the generation.
func (b *colShards) next(p int) []core.Columns {
	cur := b.gens[b.gen]
	if len(cur) != p {
		cur = make([]core.Columns, p)
		b.gens[b.gen] = cur
	}
	b.gen = 1 - b.gen
	for i := range cur {
		cur[i].Reset()
	}
	return cur
}

// distributedVerify is the parallel verification of paper §III-D: local
// closed-form position checks plus one allreduce for the population count
// and ID checksum. No rank ever sees the global particle set.
func distributedVerify(c *comm.Comm, cfg Config, ps []particle.Particle) error {
	tol := cfg.Tol
	if tol <= 0 {
		tol = core.DefaultTolerance
	}
	if err := core.VerifyPositions(cfg.Mesh, ps, cfg.Steps, tol); err != nil {
		return err
	}
	seen := make(map[uint64]bool, len(ps))
	for i := range ps {
		if seen[ps[i].ID] {
			return fmt.Errorf("driver: duplicate particle %d on rank %d", ps[i].ID, c.Rank())
		}
		seen[ps[i].ID] = true
	}
	sums := comm.Allreduce(c, []uint64{uint64(len(ps)), particle.IDSum(ps)}, comm.Sum[uint64])
	pop, err := core.ExpectedPopulation(cfg.distConfig(), cfg.Schedule, cfg.Steps)
	if err != nil {
		return err
	}
	if sums[0] != uint64(pop.Count) {
		return fmt.Errorf("driver: global particle count %d, expected %d", sums[0], pop.Count)
	}
	if sums[1] != pop.IDSum {
		return fmt.Errorf("driver: global ID checksum %d, expected %d", sums[1], pop.IDSum)
	}
	return nil
}

// gatherAndVerify collects every rank's particles at rank 0 and verifies
// them against the closed-form solution. Ranks other than 0 return
// (nil, true, nil). With cfg.DistributedVerify the gather is skipped and
// the parallel verification runs instead.
func gatherAndVerify(c *comm.Comm, cfg Config, ps []particle.Particle) ([]particle.Particle, bool, error) {
	if cfg.DistributedVerify {
		if err := distributedVerify(c, cfg, ps); err != nil {
			return nil, false, fmt.Errorf("driver: distributed verification failed: %w", err)
		}
		return nil, true, nil
	}
	all := comm.Gather(c, 0, append([]particle.Particle(nil), ps...))
	if c.Rank() != 0 {
		return nil, true, nil
	}
	var merged []particle.Particle
	for _, part := range all {
		merged = append(merged, part...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].ID < merged[j].ID })
	if !cfg.Verify {
		return merged, false, nil
	}
	if err := core.Verify(cfg.distConfig(), cfg.Schedule, merged, cfg.Steps, cfg.Tol); err != nil {
		return merged, false, fmt.Errorf("driver: verification failed: %w", err)
	}
	return merged, true, nil
}

// collectResult gathers per-rank stats at rank 0 and assembles the Result.
func collectResult(c *comm.Comm, name string, cfg Config, rec *trace.Recorder, nLocal int, bytesMigrated, bytesExchanged int64, migrations int) *Result {
	msgsSent, msgsElided := c.ExchangeMsgStats()
	st := RankStats{
		Rank:           c.Rank(),
		Compute:        rec.Get(trace.Compute),
		Exchange:       rec.Get(trace.Exchange),
		Balance:        rec.Get(trace.Balance),
		Migrate:        rec.Get(trace.Migrate),
		Overlap:        rec.Overlap(),
		FinalParticles: nLocal,
		MaxParticles:   rec.MaxParticles,
		Migrations:     migrations,
		BytesMigrated:  bytesMigrated,
		BytesExchanged: bytesExchanged,
		MsgsSent:       msgsSent,
		MsgsElided:     msgsElided,
	}
	all := comm.Gather(c, 0, st)
	if c.Rank() != 0 {
		return nil
	}
	res := &Result{Name: name, P: c.Size(), Steps: cfg.Steps, PerRank: all}
	for _, s := range all {
		res.FinalParticles += s.FinalParticles
		if s.FinalParticles > res.MaxFinalParticles {
			res.MaxFinalParticles = s.FinalParticles
		}
	}
	return res
}
