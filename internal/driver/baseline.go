package driver

import (
	"fmt"

	"github.com/parres/picprk/internal/balance"
	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/particle"
)

// RunBaseline executes the PIC PRK with the paper's "mpi-2d" reference
// implementation (§IV-A): the P ranks form a near-square 2D grid, the mesh
// is statically block-partitioned, each rank moves the particles in its
// subdomain and ships leavers to their new owners each step. No load
// balancing — with a skewed particle distribution this is the baseline that
// the balanced implementations beat.
func RunBaseline(p int, cfg Config) (*Result, error) {
	eng := &Engine{
		Name: "baseline",
		Cfg:  cfg,
		Substrate: func(c *comm.Comm, cfg Config) (Substrate, error) {
			px, py := comm.Dims2D(c.Size())
			return newBlockSubstrate(c, cfg, px, py)
		},
		Balancer: func() balance.Balancer { return balance.NullBalancer{} },
	}
	return eng.Run(p)
}

// checkOwnership asserts the exchange delivered every particle to the rank
// that owns its cell — a cheap invariant that catches routing bugs long
// before the final verification would.
func checkOwnership(m grid.Mesh, ps []particle.Particle, owns func(cx, cy int) bool, step int) error {
	for i := range ps {
		cx, cy := m.CellOf(ps[i].X, ps[i].Y)
		if !owns(cx, cy) {
			return fmt.Errorf("driver: step %d: particle %d at cell (%d,%d) not owned here", step, ps[i].ID, cx, cy)
		}
	}
	return nil
}
