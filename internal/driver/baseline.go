package driver

import (
	"github.com/parres/picprk/internal/balance"
	"github.com/parres/picprk/internal/comm"
)

// RunBaseline executes the PIC PRK with the paper's "mpi-2d" reference
// implementation (§IV-A): the P ranks form a near-square 2D grid, the mesh
// is statically block-partitioned, each rank moves the particles in its
// subdomain and ships leavers to their new owners each step. No load
// balancing — with a skewed particle distribution this is the baseline that
// the balanced implementations beat.
func RunBaseline(p int, cfg Config) (*Result, error) {
	return NewBaselineEngine(cfg).Run(p)
}

// NewBaselineEngine builds the baseline engine without running it, for
// callers that drive the rank pipeline themselves (picrun workers via
// Engine.RunWorld).
func NewBaselineEngine(cfg Config) *Engine {
	return &Engine{
		Name: "baseline",
		Cfg:  cfg,
		Substrate: func(c *comm.Comm, cfg Config) (Substrate, error) {
			px, py := comm.Dims2D(c.Size())
			return newBlockSubstrate(c, cfg, px, py)
		},
		Balancer: func() balance.Balancer { return balance.NullBalancer{} },
	}
}
