package driver

import (
	"fmt"
	"time"

	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/core"
	"github.com/parres/picprk/internal/decomp"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/particle"
	"github.com/parres/picprk/internal/trace"
)

// RunBaseline executes the PIC PRK with the paper's "mpi-2d" reference
// implementation (§IV-A): the P ranks form a near-square 2D grid, the mesh
// is statically block-partitioned, each rank moves the particles in its
// subdomain and ships leavers to their new owners each step. No load
// balancing — with a skewed particle distribution this is the baseline that
// the balanced implementations beat.
func RunBaseline(p int, cfg Config) (*Result, error) {
	if err := cfg.validate(p); err != nil {
		return nil, err
	}
	var res *Result
	var resErr error
	w := comm.NewWorld(p, comm.Options{ChaosDelay: cfg.Chaos, ChaosSeed: int64(cfg.Seed)})
	start := time.Now()
	err := w.Run(func(c *comm.Comm) error {
		px, py := comm.Dims2D(p)
		g, err := decomp.NewUniform2D(cfg.Mesh.L, px, py)
		if err != nil {
			return err
		}
		r, err := staticRank(c, cfg, g)
		if c.Rank() == 0 {
			res, resErr = r, err
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	if resErr != nil {
		return nil, resErr
	}
	res.Name = "baseline"
	res.Elapsed = time.Since(start)
	return res, nil
}

// staticRank is the per-rank body shared by the baseline (static bounds
// forever) — the diffusion driver has its own body because the
// decomposition mutates.
func staticRank(c *comm.Comm, cfg Config, g *decomp.Grid2D) (*Result, error) {
	me := c.Rank()
	x0, y0, nx, ny := g.RankRect(me)
	block, err := grid.NewBlock(cfg.Mesh, x0, y0, nx, ny)
	if err != nil {
		return nil, err
	}
	owns := func(cx, cy int) bool { return g.OwnerOfCell(cx, cy) == me }
	owner := func(cx, cy int) int { return g.OwnerOfCell(cx, cy) }

	ps, err := initLocalParticles(cfg, owns)
	if err != nil {
		return nil, err
	}
	es := newEventState(cfg)
	rec := &trace.Recorder{}
	rec.ObserveParticles(len(ps))

	for step := 1; step <= cfg.Steps; step++ {
		rec.Time(trace.Compute, func() {
			core.MoveAll(ps, block, cfg.Mesh)
		})
		ps = exchangeParticles(c, cfg.Mesh, ps, owner, rec)
		ps = es.apply(cfg, step, ps, owns)
		rec.ObserveParticles(len(ps))
		if err := checkOwnership(cfg.Mesh, ps, owns, step); err != nil {
			return nil, err
		}
	}

	merged, verified, err := gatherAndVerify(c, cfg, ps)
	if err != nil {
		return nil, err
	}
	res := collectResult(c, "baseline", cfg, rec, len(ps), 0, 0)
	if res != nil {
		res.Verified = verified && (cfg.Verify || cfg.DistributedVerify)
		if cfg.Verify {
			res.Particles = merged
		}
	}
	return res, nil
}

// checkOwnership asserts the exchange delivered every particle to the rank
// that owns its cell — a cheap invariant that catches routing bugs long
// before the final verification would.
func checkOwnership(m grid.Mesh, ps []particle.Particle, owns func(cx, cy int) bool, step int) error {
	for i := range ps {
		cx, cy := m.CellOf(ps[i].X, ps[i].Y)
		if !owns(cx, cy) {
			return fmt.Errorf("driver: step %d: particle %d at cell (%d,%d) not owned here", step, ps[i].ID, cx, cy)
		}
	}
	return nil
}
