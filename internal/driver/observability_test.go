package driver

import (
	"bufio"
	"fmt"
	"net/http"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/telemetry"
)

// TestTracedStreamedBitwiseIdentity is the observability acceptance gate:
// switching on the full tracing stack — per-step sampling, the live
// aggregate, a subscribed /events drain, and the wire transport's clock
// sync and latency accounting — must not perturb the simulation. Every
// driver over both socket transports must produce the byte-for-byte final
// state and balance log of its untraced run.
func TestTracedStreamedBitwiseIdentity(t *testing.T) {
	const p = 4
	base := testConfig(t, 16, 800, 14)
	base.Schedule = dist.Schedule{
		{Step: 5, Region: dist.Rect{X0: 2, X1: 10, Y0: 2, Y1: 10}, Inject: 150, M: 1},
	}
	for _, network := range []string{TransportTCP, TransportUnix} {
		for di := range driverMatrix(p, base) {
			plain, traced := base, base
			plain.Transport = network
			traced.Transport = network
			traced.Telemetry = true
			live := telemetry.NewLive(p)
			traced.Live = live
			ch, cancel := live.Stream().Subscribe(64)
			drained := make(chan int)
			go func() {
				n := 0
				for range ch {
					n++
				}
				drained <- n
			}()

			name := fmt.Sprintf("%s over %s", driverMatrix(p, plain)[di].name, network)
			ref, err := driverMatrix(p, plain)[di].fn()
			if err != nil {
				t.Fatalf("%s untraced: %v", name, err)
			}
			got, err := driverMatrix(p, traced)[di].fn()
			cancel()
			streamed := <-drained
			if err != nil {
				t.Fatalf("%s traced: %v", name, err)
			}
			if !got.Verified {
				t.Fatalf("%s traced: not verified", name)
			}
			assertBitwiseEqual(t, ref.Particles, got.Particles, name+" traced")
			if !reflect.DeepEqual(ref.BalanceLog, got.BalanceLog) {
				t.Fatalf("%s: tracing changed the balance log:\nuntraced: %q\ntraced:   %q",
					name, ref.BalanceLog, got.BalanceLog)
			}
			if streamed == 0 {
				t.Fatalf("%s: the /events subscriber saw no samples", name)
			}
			if got.Timeline == nil || len(got.Timeline.Samples) != p*base.Steps {
				t.Fatalf("%s: timeline incomplete", name)
			}
			// Wall stamps must be monotone per rank and offset-aware.
			lastWall := map[int]int64{}
			for _, s := range got.Timeline.Samples {
				if s.WallStartNS == 0 {
					t.Fatalf("%s: sample step %d rank %d has no wall stamp", name, s.Step, s.Rank)
				}
				if s.WallStartNS <= lastWall[s.Rank] {
					t.Fatalf("%s: rank %d wall stamps not monotone at step %d", name, s.Rank, s.Step)
				}
				lastWall[s.Rank] = s.WallStartNS
			}
			if got.Wire == nil {
				t.Fatalf("%s: no wire report on the result", name)
			}
			if lat := got.Wire.MergedLatency(); lat.Count() == 0 {
				t.Fatalf("%s: no wire latency accounting on the result", name)
			}
		}
	}
}

// TestRunWithHTTPTelemetryNoGoroutineLeak pins shutdown hygiene: a full
// engine run over the wire transport with live telemetry, the HTTP
// observability server, and a connected /events client must release every
// goroutine it started — transport read/write loops, resync tickers, HTTP
// handlers, the SSE stream — once the run ends and the server stops.
func TestRunWithHTTPTelemetryNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	const p = 2
	cfg := testConfig(t, 16, 400, 8)
	cfg.Transport = TransportTCP
	cfg.Telemetry = true
	live := telemetry.NewLive(p)
	cfg.Live = live
	addr, stop, err := telemetry.Serve("127.0.0.1:0", live)
	if err != nil {
		t.Fatal(err)
	}

	// A real SSE client, reading the stream for the whole run.
	client := &http.Client{}
	resp, err := client.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan int)
	go func() {
		n := 0
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "data: ") {
				n++
			}
		}
		clientDone <- n
	}()

	res, err := RunBaseline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || !res.Verified {
		t.Fatal("run did not verify")
	}

	if err := stop(); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-clientDone:
		if n == 0 {
			t.Error("SSE client read no samples during the run")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SSE client still blocked after server stop")
	}
	resp.Body.Close()
	client.CloseIdleConnections()

	// Goroutines wind down asynchronously (connection teardown, ticker
	// stops); poll with a deadline instead of asserting instantly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, after, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
