package driver

// Crash recovery over the wire transport: the supervisor side of the epoch
// lifecycle. RunElastic drives world generations on the coordinator — each
// generation is a rendezvous bootstrap followed by RunWorld — and turns a
// comm.ErrPeerLost unwind into a rollback/readmit cycle instead of a dead
// run: the rendezvous restarts on the same pinned address, survivors
// rejoin, a replacement worker is admitted into the vacated rank slot, and
// the new world's Restore phase resumes every rank from the last committed
// epoch. Workers are stateless across generations (shards are scattered by
// the new rank assignment), so survivors and replacements run the identical
// code path — RunElasticWorker is just Join + RunWorld in a loop.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/comm/wire"
	"github.com/parres/picprk/internal/telemetry"
)

// commitStore holds the last committed epoch across world generations. It
// lives on the coordinator (rank 0's process); only rank 0 touches it
// mid-run, but RunElastic reads it between generations, so it locks.
type commitStore struct {
	mu sync.Mutex
	// gen is the current world generation (0 = initial).
	gen int
	// step is the last committed step and shards its per-rank state; a nil
	// shards means nothing committed yet (a rollback restarts from scratch).
	step   int
	shards []rankShard
	// events is the run's epoch lifecycle record, in occurrence order.
	events []telemetry.Event

	commits, rollbacks, readmits int
}

func newCommitStore() *commitStore { return &commitStore{} }

// commit transactionally replaces the committed epoch. The caller (rank 0's
// commit phase) only reaches it after the gather completed, so the store
// never holds a partial epoch.
func (s *commitStore) commit(step int, shards []rankShard, wallNS int64) telemetry.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.step = step
	s.shards = shards
	s.commits++
	ev := telemetry.Event{Kind: telemetry.EventCommit, Step: step, Gen: s.gen, Rank: -1, WallNS: wallNS}
	s.events = append(s.events, ev)
	return ev
}

// resume reports whether a committed epoch exists to restore from, and its
// shards — the rank-0 side of the generation-start handshake.
func (s *commitStore) resume() (resumeInfo, []rankShard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shards == nil {
		return resumeInfo{}, nil
	}
	return resumeInfo{Resume: true, Step: s.step}, s.shards
}

// noteRollback records a lost world: survivors will roll back to the last
// committed step (0 = restart from scratch), and the next generation
// begins.
func (s *commitStore) noteRollback(wallNS int64) telemetry.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rollbacks++
	step := 0
	if s.shards != nil {
		step = s.step
	}
	ev := telemetry.Event{Kind: telemetry.EventRollback, Step: step, Gen: s.gen, Rank: -1, WallNS: wallNS}
	s.events = append(s.events, ev)
	s.gen++
	return ev
}

// noteReadmit records a replacement worker admitted into the vacated rank
// slot of the new generation.
func (s *commitStore) noteReadmit(rank int, wallNS int64) telemetry.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readmits++
	ev := telemetry.Event{Kind: telemetry.EventReadmit, Gen: s.gen, Rank: rank, WallNS: wallNS}
	s.events = append(s.events, ev)
	return ev
}

// summary returns the run's recovery counters and a copy of its event
// record.
func (s *commitStore) summary() (RecoveryStats, []telemetry.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stats := RecoveryStats{
		Generations: s.gen + 1,
		Commits:     s.commits,
		Rollbacks:   s.rollbacks,
		Readmits:    s.readmits,
	}
	return stats, append([]telemetry.Event(nil), s.events...)
}

// DefaultMaxRecoveries bounds rollback/readmit cycles when
// ElasticOptions.MaxRecoveries is zero.
const DefaultMaxRecoveries = 3

// ElasticOptions configures a fault-tolerant multi-node run.
type ElasticOptions struct {
	// Network is the wire transport: "tcp" or "unix".
	Network string
	// Listen is the rendezvous listen address ("" = an ephemeral loopback
	// address). The address resolved in generation 0 is pinned for every
	// later generation, so survivors and replacements rejoin the same
	// place.
	Listen string
	// Ranks is the world size. The coordinator hosts rank 0; SpawnWorkers
	// must supply the other Ranks-1 joiners.
	Ranks int
	// MaxRecoveries bounds rollback/readmit cycles (0 = the default). A
	// loss beyond the bound fails the run with the loss error.
	MaxRecoveries int
	// SpawnWorkers launches workers for one generation, pointing them at
	// the rendezvous address. Generation 0 must launch Ranks-1 workers; for
	// later generations the callback launches only replacements for dead
	// ones (survivors rejoin by themselves — RunElasticWorker loops). It
	// owns all process/goroutine bookkeeping. Nil when every worker joins
	// externally.
	SpawnWorkers func(gen int, addr string) error
	// Bind overrides the coordinator node's mesh listener address (see
	// wire.JoinOptions.Bind).
	Bind string
}

// RunElastic executes the engine as the coordinator of a fault-tolerant
// multi-process (or multi-node) run. It requires CheckpointEvery > 0 and
// Recover: each generation resumes from the last committed epoch, so the
// final result is bitwise identical to an uninterrupted run.
func (e *Engine) RunElastic(o ElasticOptions) (*Result, error) {
	if err := e.Cfg.validate(o.Ranks); err != nil {
		return nil, err
	}
	if e.Cfg.CheckpointEvery <= 0 || !e.Cfg.Recover {
		return nil, fmt.Errorf("driver: RunElastic requires Recover and CheckpointEvery > 0")
	}
	if !wire.ValidNetwork(o.Network) {
		return nil, fmt.Errorf("driver: RunElastic requires a wire transport, got %q", o.Network)
	}
	maxRec := o.MaxRecoveries
	if maxRec == 0 {
		maxRec = DefaultMaxRecoveries
	}
	// The store survives generations: it is what a rollback resumes from.
	e.store = newCommitStore()
	addr := o.Listen
	if addr == "" {
		addr = wire.DefaultAddr(o.Network)
	}
	recoveries := 0
	lostRank := -2 // -2 = no pending readmit; -1 = readmit of unknown rank
	for gen := 0; ; gen++ {
		res, runAddr, err := e.runGeneration(o, gen, addr, lostRank)
		if runAddr != "" {
			addr = runAddr // pin the resolved address for rejoins
		}
		if err == nil {
			return res, nil
		}
		var pl comm.ErrPeerLost
		if !errors.As(err, &pl) || recoveries >= maxRec {
			return nil, err
		}
		recoveries++
		lostRank = pl.Rank
		ev := e.store.noteRollback(time.Now().UnixNano())
		e.Cfg.Live.ObserveEvent(ev)
	}
}

// runGeneration runs one world generation: rendezvous, spawn callback,
// join, run. It returns the resolved rendezvous address so the caller can
// pin it across generations even when this generation failed.
func (e *Engine) runGeneration(o ElasticOptions, gen int, addr string, lostRank int) (*Result, string, error) {
	rv, err := wire.StartRendezvous(o.Network, addr, o.Ranks)
	if err != nil {
		return nil, "", err
	}
	addr = rv.Addr()
	if o.SpawnWorkers != nil {
		if err := o.SpawnWorkers(gen, addr); err != nil {
			rv.Close()
			return nil, addr, err
		}
	}
	node, err := wire.Join(o.Network, addr, wire.JoinOptions{Count: 1, WantBase: 0, Bind: o.Bind})
	if err != nil {
		rv.Close()
		return nil, addr, err
	}
	if err := rv.Wait(); err != nil {
		return nil, addr, err
	}
	if gen > 0 && lostRank != -2 {
		// The world re-formed: the replacement took the vacated slot.
		ev := e.store.noteReadmit(lostRank, time.Now().UnixNano())
		e.Cfg.Live.ObserveEvent(ev)
	}
	if e.Cfg.Live != nil {
		e.Cfg.Live.AddWireSource(node.WireReport)
	}
	w := comm.NewTransportWorld(node, e.Cfg.WorldOptions())
	res, runErr := e.RunWorld(w)
	if runErr != nil {
		return nil, addr, runErr
	}
	if res != nil {
		rep := node.WireReport()
		res.Wire = &rep
	}
	return res, addr, nil
}

// RunElasticWorker executes the worker side of a fault-tolerant run: join
// the coordinator's rendezvous (with retry — between generations there is
// a window with no listener), run the assigned rank, and — when the world
// dies under it with a lost peer and recovery is armed — rejoin the next
// generation. Returns nil when a generation runs to completion.
func (e *Engine) RunElasticWorker(network, addr string) error {
	for {
		node, err := joinWithRetry(network, addr, wire.JoinOptions{Count: 1, WantBase: -1})
		if err != nil {
			return err
		}
		w := comm.NewTransportWorld(node, e.Cfg.WorldOptions())
		if _, err := e.RunWorld(w); err != nil {
			var pl comm.ErrPeerLost
			if e.Cfg.Recover && errors.As(err, &pl) {
				continue
			}
			return err
		}
		return nil
	}
}

// joinRetryBudget bounds how long a worker keeps retrying the rendezvous
// between generations before giving up.
const joinRetryBudget = 30 * time.Second

// joinWithRetry dials the rendezvous with capped exponential backoff. A
// Join error between generations usually just means the coordinator has
// not restarted the listener yet.
func joinWithRetry(network, addr string, o wire.JoinOptions) (*wire.Node, error) {
	deadline := time.Now().Add(joinRetryBudget)
	delay := 50 * time.Millisecond
	for {
		node, err := wire.Join(network, addr, o)
		if err == nil {
			return node, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("driver: rendezvous rejoin budget exhausted: %w", err)
		}
		time.Sleep(delay)
		if delay *= 2; delay > time.Second {
			delay = time.Second
		}
	}
}
