package driver

// Substrate checkpoints: the full per-rank dynamic state of each execution
// model, serialized through the same column-wise PUP paths the migration
// machinery uses. The static configuration (mesh, decomposition shape,
// schedule, seed) is not part of a checkpoint — a restoring rank rebuilds
// it from its own Config and validates the checkpoint against it, exactly
// like core.Simulation.Checkpoint. Derived state (materialized mesh blocks,
// owner tables, tile plans, frontier masks) is likewise rebuilt rather than
// shipped: block charge data is formulaic, and the lookup structures are
// pure functions of the cuts / VP placement that do travel.

import (
	"fmt"

	"github.com/parres/picprk/internal/core"
	"github.com/parres/picprk/internal/decomp"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/pup"
)

// Checkpoint magics guard against restoring the wrong substrate family (or
// an unrelated buffer) with a clear error instead of silent corruption.
const (
	blockCheckpointMagic uint64 = 0x50494350524b4231 // "PICPRKB1"
	vpCheckpointMagic    uint64 = 0x50494350524b5631 // "PICPRKV1"
)

func pupIntSlice(p *pup.PUPer, v *[]int) {
	pup.Slice(p, v, func(p *pup.PUPer, e *int) { p.Int(e) })
}

// PUP implements pup.PUPable: the block substrate's dynamic state is the
// cut arrays (the decomposition the balancer has evolved), the local SoA
// particle container, and the migration/exchange accounting. Unpacking
// reinstalls the cuts — rebuilding the mesh block, owner table, and tile
// plan — before the restored particles are trusted.
func (s *blockSubstrate) PUP(p *pup.PUPer) {
	magic := blockCheckpointMagic
	p.Uint64(&magic)
	if p.Mode() == pup.Unpacking && magic != blockCheckpointMagic {
		p.Fail(fmt.Errorf("driver: not a block-substrate checkpoint (magic %#x)", magic))
		return
	}
	px, py, L := s.g.PX, s.g.PY, s.cfg.Mesh.L
	p.Int(&px)
	p.Int(&py)
	p.Int(&L)
	if p.Mode() == pup.Unpacking {
		if L != s.cfg.Mesh.L {
			p.Fail(fmt.Errorf("driver: checkpoint is for L=%d, run has L=%d", L, s.cfg.Mesh.L))
			return
		}
		if px != s.g.PX || py != s.g.PY {
			p.Fail(fmt.Errorf("driver: checkpoint is for a %dx%d decomposition, run has %dx%d", px, py, s.g.PX, s.g.PY))
			return
		}
	}
	// Cuts travel as values; packing must not alias the live grid (a wire
	// Ship may serialize concurrently with the owner still reading it), and
	// unpacking builds the new grid from fresh slices.
	var xcuts, ycuts []int
	if p.Mode() != pup.Unpacking {
		xcuts, ycuts = s.g.X.Cuts, s.g.Y.Cuts
	}
	pupIntSlice(p, &xcuts)
	pupIntSlice(p, &ycuts)
	core.PUPSoA(p, s.soa)
	p.Int(&s.migrations)
	pupInt64(p, &s.bytes)
	pupInt64(p, &s.xbytes)
	if p.Mode() == pup.Unpacking && p.Err() == nil {
		if err := s.installCuts(xcuts, ycuts); err != nil {
			p.Fail(err)
		}
	}
}

// installCuts validates and installs restored cut arrays, rebuilding every
// structure derived from the decomposition (mirror of Execute's tail, minus
// the neighbor charge migration — the rebuilt block's charge is formulaic).
func (s *blockSubstrate) installCuts(xcuts, ycuts []int) error {
	g := &decomp.Grid2D{PX: s.g.PX, PY: s.g.PY, X: decomp.Bounds{Cuts: xcuts}, Y: decomp.Bounds{Cuts: ycuts}}
	if err := g.X.Validate(s.cfg.Mesh.L); err != nil {
		return fmt.Errorf("driver: checkpoint x-cuts: %w", err)
	}
	if err := g.Y.Validate(s.cfg.Mesh.L); err != nil {
		return fmt.Errorf("driver: checkpoint y-cuts: %w", err)
	}
	if g.X.N() != g.PX || g.Y.N() != g.PY {
		return fmt.Errorf("driver: checkpoint cuts describe %dx%d blocks, run has %dx%d", g.X.N(), g.Y.N(), g.PX, g.PY)
	}
	x0, y0, nx, ny := g.RankRect(s.c.Rank())
	block, err := grid.NewBlock(s.cfg.Mesh, x0, y0, nx, ny)
	if err != nil {
		return err
	}
	s.g, s.block = g, block
	s.ot = core.NewOwnerTable(g.X.Cuts, g.Y.Cuts)
	s.classified = false
	s.rebuildTopology()
	return nil
}

// Checkpoint implements Substrate.
func (s *blockSubstrate) Checkpoint() ([]byte, error) { return pup.Pack(s) }

// Restore implements Substrate.
func (s *blockSubstrate) Restore(buf []byte) error { return pup.Unpack(s, buf) }

// PUP implements pup.PUPable: the VP substrate's dynamic state is the ampi
// runtime's — the location table, the runtime stats, and every locally
// hosted VP serialized through its own PUP routine (particles and grid data
// column-wise, recycled shells on unpack) — plus the exchange accounting.
// The frontier mask depends on VP placement and is rebuilt after restore.
func (s *vpSubstrate) PUP(p *pup.PUPer) {
	magic := vpCheckpointMagic
	p.Uint64(&magic)
	if p.Mode() == pup.Unpacking && magic != vpCheckpointMagic {
		p.Fail(fmt.Errorf("driver: not a VP-substrate checkpoint (magic %#x)", magic))
		return
	}
	L := s.cfg.Mesh.L
	p.Int(&L)
	if p.Mode() == pup.Unpacking && L != s.cfg.Mesh.L {
		p.Fail(fmt.Errorf("driver: checkpoint is for L=%d, run has L=%d", L, s.cfg.Mesh.L))
		return
	}
	s.rt.PUPState(p)
	pupInt64(p, &s.xbytes)
	if p.Mode() == pup.Unpacking && p.Err() == nil {
		s.rebuildTopology()
	}
}

// Checkpoint implements Substrate.
func (s *vpSubstrate) Checkpoint() ([]byte, error) { return pup.Pack(s) }

// Restore implements Substrate.
func (s *vpSubstrate) Restore(buf []byte) error { return pup.Unpack(s, buf) }
