package driver

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/parres/picprk/internal/dist"
)

// TestTilePipelineBitwiseMatrix is the determinism matrix of the tile
// pipeline: every driver must produce bitwise the same final state and the
// same balance log at every tile setting — the pipeline disabled (-1), one
// covering tile (degenerate boundary+interior split), the default, and a
// small edge (many tiles) — crossed with worker counts, all against the
// sequential reference. The tile split changes only the order in which
// independent particle updates run, so any divergence is a routing bug.
func TestTilePipelineBitwiseMatrix(t *testing.T) {
	cfg := testConfig(t, 16, 4000, 30)
	cfg.Schedule = dist.Schedule{
		{Step: 9, Region: dist.Rect{X0: 2, X1: 10, Y0: 2, Y1: 10}, Inject: 300, M: 1},
		{Step: 21, Region: dist.Rect{X0: 0, X1: 8, Y0: 0, Y1: 16}, Remove: true},
	}
	ref := sequentialReference(t, cfg)
	const p = 2
	for di := range driverMatrix(p, cfg) {
		name := driverMatrix(p, cfg)[di].name
		// The unpipelined run anchors the balance-log comparison.
		legacyCfg := cfg
		legacyCfg.Tile = -1
		legacy, err := driverMatrix(p, legacyCfg)[di].fn()
		if err != nil {
			t.Fatalf("%s tile=-1: %v", name, err)
		}
		assertBitwiseEqual(t, ref, legacy.Particles, name+" tile=-1")
		for _, tile := range []int{0, 64, 2} {
			for _, workers := range []int{1, 2, 7} {
				c := cfg
				c.Tile = tile
				c.Workers = workers
				res, err := driverMatrix(p, c)[di].fn()
				if err != nil {
					t.Fatalf("%s tile=%d workers=%d: %v", name, tile, workers, err)
				}
				if !res.Verified {
					t.Fatalf("%s tile=%d workers=%d: not verified", name, tile, workers)
				}
				label := fmt.Sprintf("%s tile=%d workers=%d", name, tile, workers)
				assertBitwiseEqual(t, ref, res.Particles, label)
				if !reflect.DeepEqual(legacy.BalanceLog, res.BalanceLog) {
					t.Fatalf("%s: balance log diverged from unpipelined run:\ntile=-1: %q\ngot:     %q",
						label, legacy.BalanceLog, res.BalanceLog)
				}
			}
		}
	}
}

// TestTilePipelineWireIdentity runs the pipelined step over real sockets:
// the Start/Finish exchange split must survive serialization and framing
// with bitwise-identical results, for the block and the VP substrate. This
// is also the test CI runs under -race to exercise the overlap between the
// transport goroutines and the interior move wave.
func TestTilePipelineWireIdentity(t *testing.T) {
	const p = 4
	cfg := testConfig(t, 16, 900, 16)
	cfg.Schedule = dist.Schedule{
		{Step: 5, Region: dist.Rect{X0: 2, X1: 10, Y0: 2, Y1: 10}, Inject: 200, M: 1},
	}
	cfg.Workers = 2
	cfg.Tile = 4
	ref := sequentialReference(t, cfg)
	for di := range driverMatrix(p, cfg) {
		if di == 1 || di == 2 {
			continue // one driver per substrate: baseline (block), worksteal (VP)
		}
		wireCfg := cfg
		wireCfg.Transport = TransportTCP
		name := driverMatrix(p, wireCfg)[di].name
		res, err := driverMatrix(p, wireCfg)[di].fn()
		if err != nil {
			t.Fatalf("%s over tcp: %v", name, err)
		}
		if !res.Verified {
			t.Fatalf("%s over tcp: not verified", name)
		}
		assertBitwiseEqual(t, ref, res.Particles, name+" tile pipeline over tcp")
	}
}

// TestTilePipelineReportsOverlap asserts the overlap metric is actually
// produced on a multi-rank pipelined run: some step of some rank must spend
// compute time while an exchange is in flight, the per-rank totals must
// surface in RankStats, and the timeline samples must sum to them.
func TestTilePipelineReportsOverlap(t *testing.T) {
	cfg := testConfig(t, 32, 8000, 20)
	cfg.Telemetry = true
	res, err := RunBaseline(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var total, sampled int64
	for _, st := range res.PerRank {
		total += st.Overlap.Nanoseconds()
	}
	if total == 0 {
		t.Fatal("pipelined 4-rank run reported zero exchange overlap")
	}
	for _, s := range res.Timeline.Samples {
		sampled += s.ExchangeOverlap.Nanoseconds()
	}
	if sampled != total {
		t.Fatalf("timeline overlap sums to %d ns, RankStats to %d ns", sampled, total)
	}

	// The unpipelined and single-rank runs must report none.
	for _, tc := range []struct {
		name string
		p    int
		tile int
	}{{"tile=-1", 4, -1}, {"p=1", 1, 0}} {
		c := cfg
		c.Tile = tc.tile
		r, err := RunBaseline(tc.p, c)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for rank, st := range r.PerRank {
			if st.Overlap != 0 {
				t.Fatalf("%s: rank %d reports overlap %v, want 0", tc.name, rank, st.Overlap)
			}
		}
	}
}

// TestTileValidation pins the config check for the tile knob.
func TestTileValidation(t *testing.T) {
	cfg := testConfig(t, 8, 100, 2)
	cfg.Tile = -2
	if _, err := RunBaseline(2, cfg); err == nil {
		t.Fatal("tile=-2 accepted")
	}
}
