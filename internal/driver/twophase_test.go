package driver

import (
	"testing"

	"github.com/parres/picprk/internal/diffusion"
	"github.com/parres/picprk/internal/dist"
)

// TestTwoPhaseMatchesSequential checks correctness of the full two-phase
// scheme (x then y boundary balancing) against the sequential reference.
func TestTwoPhaseMatchesSequential(t *testing.T) {
	cfg := testConfig(t, 16, 2000, 40)
	cfg.M = 1 // vertical motion makes the y-phase actually migrate rows
	ref := sequentialReference(t, cfg)
	params := diffusion.Params{Every: 5, Threshold: 0.05, Width: 1, MinWidth: 2, TwoPhase: true}
	for _, p := range []int{1, 4, 6} {
		res, err := RunDiffusion(p, cfg, params)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if !res.Verified {
			t.Fatalf("P=%d: not verified", p)
		}
		assertBitwiseEqual(t, ref, res.Particles, "two-phase")
	}
}

// TestTwoPhaseBalancesVerticalSkew uses a patch workload concentrated in a
// horizontal band: the x-only scheme cannot fix the y imbalance (the paper
// notes a fixed decomposition "can easily be defeated by rotating the
// particle distribution over 90°"), while the two-phase scheme can.
func TestTwoPhaseBalancesVerticalSkew(t *testing.T) {
	cfg := testConfig(t, 32, 8000, 60)
	// All particles in the bottom quarter, spread across all columns.
	cfg.Dist = dist.Patch{X0: 0, X1: 32, Y0: 0, Y1: 8}
	cfg.M = 0

	xOnly, err := RunDiffusion(4, cfg, diffusion.Params{Every: 5, Threshold: 0.05, Width: 1, MinWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	two, err := RunDiffusion(4, cfg, diffusion.Params{Every: 5, Threshold: 0.05, Width: 1, MinWidth: 2, TwoPhase: true})
	if err != nil {
		t.Fatal(err)
	}
	if !two.Verified || !xOnly.Verified {
		t.Fatal("runs not verified")
	}
	if two.MaxFinalParticles >= xOnly.MaxFinalParticles {
		t.Errorf("two-phase max/rank %d did not beat x-only %d on a vertically skewed workload",
			two.MaxFinalParticles, xOnly.MaxFinalParticles)
	}
}

// TestDiffusion1DFigure3Scenario reproduces the paper's Figure 3
// illustration: a 1D block-column decomposition whose diffusion scheme
// sends border columns from heavy ranks to light neighbors, making the
// per-rank particle counts visibly more balanced — and still bitwise
// correct.
func TestDiffusion1DFigure3Scenario(t *testing.T) {
	cfg := testConfig(t, 32, 6000, 60)
	cfg.Dist = dist.Geometric{R: 0.9}
	ref := sequentialReference(t, cfg)
	params := diffusion.Params{Every: 1, Threshold: 0.05, Width: 2, MinWidth: 3}
	res, err := RunDiffusion1D(4, cfg, params)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwiseEqual(t, ref, res.Particles, "diffusion-1d")

	// The static reference with the same 1D layout: an absurd threshold
	// disables all balancing actions.
	static, err := RunDiffusion1D(4, cfg, diffusion.Params{Every: 1, Threshold: 1e12, Width: 2, MinWidth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFinalParticles >= static.MaxFinalParticles {
		t.Errorf("1D diffusion max/rank %d did not beat static 1D %d",
			res.MaxFinalParticles, static.MaxFinalParticles)
	}
	migrations := 0
	for _, s := range res.PerRank {
		migrations += s.Migrations
	}
	if migrations == 0 {
		t.Error("1D diffusion never moved a boundary")
	}
}

// TestTwoPhaseWithEvents stresses row migration together with injection and
// removal events.
func TestTwoPhaseWithEvents(t *testing.T) {
	cfg := testConfig(t, 16, 1200, 30)
	cfg.M = -1
	cfg.Schedule = dist.Schedule{
		{Step: 10, Region: dist.Rect{X0: 0, X1: 16, Y0: 0, Y1: 4}, Inject: 500, M: 2},
		{Step: 20, Region: dist.Rect{X0: 4, X1: 12, Y0: 4, Y1: 12}, Remove: true},
	}
	ref := sequentialReference(t, cfg)
	res, err := RunDiffusion(6, cfg, diffusion.Params{Every: 4, Threshold: 0.05, Width: 1, MinWidth: 2, TwoPhase: true})
	if err != nil {
		t.Fatal(err)
	}
	assertBitwiseEqual(t, ref, res.Particles, "two-phase+events")
}
