package driver

import (
	"fmt"
	"time"

	"github.com/parres/picprk/internal/balance"
	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/core"
	"github.com/parres/picprk/internal/decomp"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/particle"
	"github.com/parres/picprk/internal/trace"
)

// blockSubstrate realizes the §IV-A/§IV-B algorithm family: each rank owns
// one rectangle of a PX×PY Cartesian-product block decomposition. With a
// NullBalancer the decomposition is static (the "mpi-2d" baseline); with a
// DiffusionBalancer the cut arrays move and the substrate migrates the
// affected mesh columns/rows between neighbors ("mpi-2d-LB").
//
// Particles live in an SoA container and move through a persistent worker
// pool. The exchange pipeline is columnar: destination classification is
// fused into the move pass (MovePool.MoveClassify fills a per-chunk Leavers
// list against the dense OwnerTable), ScatterRemove compacts stayers in
// place and scatters leavers into per-destination Columns shards, and
// comm.ExchangePtr ships the shards by pointer. Every buffer is
// double-buffered and reused, so a steady-state step (no events, no
// balancing) stays off the allocator entirely.
type blockSubstrate struct {
	c     *comm.Comm
	cfg   Config
	cart  *comm.Cart2D
	g     *decomp.Grid2D
	block *grid.Block
	soa   *core.SoA
	pool  *core.MovePool

	// ot is the dense cell→rank lookup for the current decomposition,
	// rebuilt whenever Execute installs new cuts.
	ot *core.OwnerTable
	// lv holds the leavers tagged by the last fused move+classify pass;
	// classified says whether lv is current (Move sets it, Exchange consumes
	// it — the rehome exchange after a cut shift arrives without a Move and
	// falls back to a serial classification sweep).
	lv         core.Leavers
	classified bool
	// shards / sendPtrs / recvPtrs are the reused columnar exchange state
	// (see colShards and comm.ExchangePtr for the double-buffering rules).
	shards             colShards
	sendPtrs, recvPtrs []*core.Columns
	xbytes             int64
	// peerBytes/peerMsgs accumulate the per-destination exchange matrix in
	// framed columnar units (the same units on both transports, so the
	// matrix is transport-invariant); nbr derives the sparse exchange
	// schedule from the owner table after every decomposition change.
	peerBytes, peerMsgs []int64
	nbr                 core.NbrSet

	// Tile pipeline state (tileSize == 0 means the pipeline is disabled and
	// MoveExchange falls back to the sequential Move + Exchange). frontier
	// and plan are rebuilt whenever the decomposition changes; tid, tstarts,
	// tcur and soaScratch are the reused per-step tile-sort buffers.
	tileSize   int
	rx, ry     int
	frontier   core.Frontier
	plan       core.TilePlan
	tid        []int32
	tstarts    []int32
	tcur       []int32
	soaScratch *core.SoA

	// Reused steady-state scratch: load histograms and the verification
	// AoS conversion buffer.
	hist, rhist []int64
	psScratch   []particle.Particle

	migrations int
	bytes      int64
}

func newBlockSubstrate(c *comm.Comm, cfg Config, px, py int) (*blockSubstrate, error) {
	cart := comm.NewCart2D(c, px, py)
	g, err := decomp.NewUniform2D(cfg.Mesh.L, px, py)
	if err != nil {
		return nil, err
	}
	x0, y0, nx, ny := g.RankRect(c.Rank())
	block, err := grid.NewBlock(cfg.Mesh, x0, y0, nx, ny)
	if err != nil {
		return nil, err
	}
	s := &blockSubstrate{
		c: c, cfg: cfg, cart: cart, g: g, block: block,
		ot:    core.NewOwnerTable(g.X.Cuts, g.Y.Cuts),
		hist:  make([]int64, cfg.Mesh.L),
		rhist: make([]int64, cfg.Mesh.L),
	}
	ps, err := initLocalParticles(cfg, s.owns)
	if err != nil {
		return nil, err
	}
	s.soa = core.NewSoA(ps)
	s.pool = core.NewMovePool(cfg.effectiveWorkers(c.Size()))
	s.tileSize = cfg.effectiveTile()
	s.rx, s.ry = cfg.ringWidths()
	s.peerBytes = make([]int64, c.Size())
	s.peerMsgs = make([]int64, c.Size())
	if s.tileSize > 0 {
		s.soaScratch = &core.SoA{}
	}
	s.rebuildTopology()
	return s, nil
}

// rebuildTopology recomputes everything derived from the owner table: the
// frontier mask and tile plan (when the pipeline is on) and the sparse
// exchange schedule. Called at construction, after every Execute (the cuts
// moved, so the remote-owner mask, the rank rectangle, and the reachable
// peer set all changed) and after a checkpoint restore. Installing the
// schedule mid-run arms comm's full-ring fence, which is exactly what the
// follow-up rehome exchange needs (it can route particles outside both the
// old and the new neighbor sets).
func (s *blockSubstrate) rebuildTopology() {
	self := int32(s.c.Rank())
	if s.tileSize > 0 {
		s.frontier.Rebuild(s.ot, s.cfg.Mesh.L, s.rx, s.ry, func(o int32) bool { return o != self })
		x0, y0, nx, ny := s.g.RankRect(s.c.Rank())
		s.plan.Build(&s.frontier, x0, y0, nx, ny, s.tileSize)
		nt := s.plan.NumTiles()
		if cap(s.tstarts) < nt+1 {
			s.tstarts = make([]int32, nt+1)
			s.tcur = make([]int32, nt)
		}
		s.tstarts = s.tstarts[:nt+1]
		s.tcur = s.tcur[:nt]
	}
	peers := s.nbr.Rebuild(s.ot, s.cfg.Mesh.L, s.rx, s.ry, s.c.Rank(), s.c.Size(),
		func(o int32) int { return int(o) })
	s.c.SetExchangeNeighbors(peers)
}

func (s *blockSubstrate) owns(cx, cy int) bool { return s.g.OwnerOfCell(cx, cy) == s.c.Rank() }

// Move implements Substrate: the pool advances disjoint SoA chunks in
// parallel against the local materialized block (the devirtualized fast
// path — see core/hotpath.go), tagging leavers into lv as it goes — the new
// cell is computed inside the move loop anyway, so classification is free
// and Exchange needs no second sweep.
func (s *blockSubstrate) Move() {
	s.pool.MoveClassify(s.soa, s.block, s.cfg.Mesh, s.ot, int32(s.c.Rank()), &s.lv)
	s.classified = true
}

// classifyAll rebuilds lv with a serial sweep, for exchanges that do not
// follow a Move (the rehome exchange after a decomposition change — the
// fused tags from the last Move are stale there).
func (s *blockSubstrate) classifyAll() {
	s.lv.Reset(1)
	soa, mesh, self := s.soa, s.cfg.Mesh, int32(s.c.Rank())
	for i := 0; i < soa.Len(); i++ {
		cx, cy := mesh.CellOf(soa.X[i], soa.Y[i])
		if o := s.ot.Owner(cx, cy); o != self {
			s.lv.Add(0, int32(i), o)
		}
	}
}

// Exchange implements Substrate: scatter the tagged leavers into
// per-destination Columns shards (compacting stayers in place with bulk
// copies) and ship the shards by pointer through the full-ring collective.
// No particle is ever materialized in AoS form and the steady state
// allocates nothing — shards, pointer slices and leaver lists are all
// reused generation-to-generation.
func (s *blockSubstrate) Exchange(rec *trace.Recorder) error {
	start := time.Now()
	if !s.classified {
		s.classifyAll()
	}
	s.classified = false
	shards := s.shards.next(s.c.Size())
	s.soa.ScatterRemove(&s.lv, shards)
	s.stageSendShards(shards)
	// In-process, exchange volume is the framed wire size the shards would
	// occupy (stageSendShards). On a wire transport the frames are real, so
	// account the measured transport delta instead — same quantity, but
	// including per-message framing, and exact rather than estimated.
	var wireBase int64
	onWire := s.c.OnWire()
	if onWire {
		wireBase = s.c.TransportBytes()
	}
	comm.ExchangePtr(s.c, s.sendPtrs, s.recvPtrs)
	if onWire {
		s.xbytes += s.c.TransportBytes() - wireBase
	}
	s.appendArrivals()
	rec.Add(trace.Exchange, time.Since(start))
	return nil
}

// stageSendShards fills sendPtrs from the scattered shards (nil for self
// and for empty destinations — under the sparse schedule the nils inside
// the neighbor set still travel, the ones outside it are elided entirely;
// comm's fence keeps the double-buffering contract sound across schedule
// changes) and accounts the framed in-process exchange volume plus the
// per-destination byte/message matrix.
func (s *blockSubstrate) stageSendShards(shards []core.Columns) {
	p, me := s.c.Size(), s.c.Rank()
	if len(s.sendPtrs) != p {
		s.sendPtrs = make([]*core.Columns, p)
		s.recvPtrs = make([]*core.Columns, p)
	}
	onWire := s.c.OnWire()
	for dst := range shards {
		sh := &shards[dst]
		if dst == me || sh.Len() == 0 {
			s.sendPtrs[dst] = nil
			continue
		}
		s.sendPtrs[dst] = sh
		s.peerBytes[dst] += sh.FramedBytes()
		s.peerMsgs[dst]++
		if !onWire {
			s.xbytes += sh.FramedBytes()
		}
	}
}

// appendArrivals appends every received shard to the local container.
func (s *blockSubstrate) appendArrivals() {
	p, me := s.c.Size(), s.c.Rank()
	for src := 0; src < p; src++ {
		if src == me {
			continue // self shard is always empty (classification excludes self)
		}
		if c := s.recvPtrs[src]; c != nil {
			s.soa.AppendColumns(c)
		}
	}
}

// MoveExchange implements Substrate: the tile-pipelined step. Particles are
// sorted by tile (interior tiles first, boundary tiles in one contiguous
// tail), the boundary tiles move and classify first, their leavers scatter
// into the outgoing shards and the exchange STARTS — then the interior
// tiles move while the shards are in flight, and only then does the
// exchange FINISH. The interior wave's wall time is credited as overlap:
// exchange latency the pipeline hid behind compute.
//
// Correctness: the frontier ring is the exact per-step displacement bound,
// so no interior particle can leave the rank this step — but the interior
// wave still classifies, and a leaver there is a hard error rather than a
// silent mishoming. Order of operations is safe because the boundary tail
// is compacted before the interior wave starts (interior indices never
// shift: all leaver indices sit in the tail), and arrivals append only
// after both waves. Results are bitwise identical to the sequential path:
// particle updates are independent, so the split changes only the order in
// which they run.
func (s *blockSubstrate) MoveExchange(rec *trace.Recorder) error {
	if s.tileSize == 0 {
		start := time.Now()
		s.Move()
		rec.Add(trace.Compute, time.Since(start))
		return s.Exchange(rec)
	}
	mesh, me, p := s.cfg.Mesh, s.c.Rank(), s.c.Size()
	nt, ni := s.plan.NumTiles(), s.plan.NumInterior()

	// Tile sort + wave 1 (boundary tiles, dynamically claimed).
	t0 := time.Now()
	soa := s.soa
	n := soa.Len()
	if cap(s.tid) < n {
		s.tid = make([]int32, n)
	}
	tid := s.tid[:n]
	for i := 0; i < n; i++ {
		cx, cy := mesh.CellOf(soa.X[i], soa.Y[i])
		tid[i] = s.plan.TileOf(cx, cy)
	}
	core.SortByTile(s.soaScratch, soa, tid, nt, s.tstarts, s.tcur)
	s.soa, s.soaScratch = s.soaScratch, s.soa
	s.pool.MoveClassifyTiles(s.soa, s.block, mesh, s.ot, int32(me), &s.lv, s.tstarts, ni, nt)
	rec.Add(trace.Compute, time.Since(t0))

	// Scatter the boundary leavers and put them on the wire.
	t1 := time.Now()
	shards := s.shards.next(p)
	s.soa.ScatterRemove(&s.lv, shards)
	s.stageSendShards(shards)
	var wireBase int64
	onWire := s.c.OnWire()
	if onWire {
		wireBase = s.c.TransportBytes()
	}
	comm.ExchangePtrStart(s.c, s.sendPtrs)
	rec.Add(trace.Exchange, time.Since(t1))

	// Wave 2: interior tiles, overlapped with the in-flight exchange.
	t2 := time.Now()
	s.pool.MoveClassifyTiles(s.soa, s.block, mesh, s.ot, int32(me), &s.lv, s.tstarts, 0, ni)
	d2 := time.Since(t2)
	rec.Add(trace.Compute, d2)
	if p > 1 {
		rec.AddOverlap(d2)
	}
	if k := s.lv.Count(); k > 0 {
		return fmt.Errorf("driver: %d interior-tile particles left rank %d in one step (displacement ring rx=%d ry=%d violated)", k, me, s.rx, s.ry)
	}

	// Finish: collect the shards the peers sent and absorb them.
	t3 := time.Now()
	comm.ExchangePtrFinish(s.c, s.sendPtrs, s.recvPtrs)
	if onWire {
		s.xbytes += s.c.TransportBytes() - wireBase
	}
	s.appendArrivals()
	rec.Add(trace.Exchange, time.Since(t3))
	s.classified = false
	return nil
}

// ApplyEvents implements Substrate.
func (s *blockSubstrate) ApplyEvents(es *eventState, step int) {
	es.applySoA(s.cfg, step, s.soa, s.owns)
}

// Count implements Substrate.
func (s *blockSubstrate) Count() int { return s.soa.Len() }

// Measure implements Substrate: globally reduce the per-cell-column (and,
// for the two-phase scheme, per-cell-row) particle histograms. Both
// histograms are filled in one pass over the particles into reused buffers;
// the reduction returns fresh slices, so handing them to the policy is safe.
func (s *blockSubstrate) Measure(n balance.Needs) balance.Loads {
	loads := balance.Loads{X: s.g.X, Y: s.g.Y, Cores: s.c.Size()}
	if !n.Cells && !n.Rows {
		return loads
	}
	clear(s.hist)
	clear(s.rhist)
	soa, mesh := s.soa, s.cfg.Mesh
	for i := 0; i < soa.Len(); i++ {
		cx, cy := mesh.CellOf(soa.X[i], soa.Y[i])
		s.hist[cx]++
		s.rhist[cy]++
	}
	if n.Cells {
		loads.Cells = comm.Allreduce(s.c, s.hist, comm.Sum[int64])
	}
	if n.Rows {
		loads.Rows = comm.Allreduce(s.c, s.rhist, comm.Sum[int64])
	}
	return loads
}

// Execute implements Substrate: install the new cut arrays, shipping the
// charge data of ceded columns/rows to the neighbors gaining them, then
// rebuild the owner table so the follow-up rehome exchange (and subsequent
// fused classification) sees the new decomposition. The particles
// themselves rehome via the engine's follow-up exchange.
func (s *blockSubstrate) Execute(plan balance.Plan) (bool, error) {
	if plan.X != nil {
		ng := &decomp.Grid2D{PX: s.g.PX, PY: s.g.PY, X: plan.X.Clone(), Y: s.g.Y.Clone()}
		nb, bytes, err := migrateColumns(s.cart, s.cfg.Mesh, s.g, ng, s.block)
		if err != nil {
			return false, err
		}
		s.bytes += bytes
		s.migrations++
		s.g, s.block = ng, nb
	}
	if plan.Y != nil {
		ng := &decomp.Grid2D{PX: s.g.PX, PY: s.g.PY, X: s.g.X.Clone(), Y: plan.Y.Clone()}
		nb, bytes, err := migrateRows(s.cart, s.cfg.Mesh, s.g, ng, s.block)
		if err != nil {
			return false, err
		}
		s.bytes += bytes
		s.migrations++
		s.g, s.block = ng, nb
	}
	s.ot = core.NewOwnerTable(s.g.X.Cuts, s.g.Y.Cuts)
	s.rebuildTopology()
	return true, nil
}

// CheckOwnership implements Substrate.
func (s *blockSubstrate) CheckOwnership(step int) error {
	soa, mesh, self := s.soa, s.cfg.Mesh, int32(s.c.Rank())
	for i := 0; i < soa.Len(); i++ {
		cx, cy := mesh.CellOf(soa.X[i], soa.Y[i])
		if s.ot.Owner(cx, cy) != self {
			return fmt.Errorf("driver: step %d: particle %d at cell (%d,%d) not owned here", step, soa.Meta[i].ID, cx, cy)
		}
	}
	return nil
}

// Particles implements Substrate. The returned slice is scratch, valid
// until the next Particles call.
func (s *blockSubstrate) Particles() []particle.Particle {
	s.psScratch = s.soa.AppendParticles(s.psScratch[:0])
	return s.psScratch
}

// MigrationStats implements Substrate.
func (s *blockSubstrate) MigrationStats() (int, int64) { return s.migrations, s.bytes }

// ExchangeBytes implements Substrate.
func (s *blockSubstrate) ExchangeBytes() int64 { return s.xbytes }

// PeerExchange implements Substrate.
func (s *blockSubstrate) PeerExchange() (bytes, msgs []int64) { return s.peerBytes, s.peerMsgs }

// Close implements Substrate.
func (s *blockSubstrate) Close() { s.pool.Close() }

// colsParcel carries migrated mesh columns between row neighbors after a
// boundary shift: the charge data of owned columns [X0, X0+W) for the
// sender's row range.
type colsParcel struct {
	X0   int
	W    int
	Cols []float64
}

// migrateColumns rebuilds the local grid block after the x-cuts changed.
// Each rank ships the charge data of columns it loses to the row neighbor
// gaining them (at most one parcel per neighbor, moved by pointer through
// the row communicator's exchange collective) and validates what it
// receives against the formulaic field — the data volume is what the paper
// charges the diffusion scheme for. It returns the new block and the number
// of payload bytes sent.
func migrateColumns(cart *comm.Cart2D, m grid.Mesh, old, nw *decomp.Grid2D, block *grid.Block) (*grid.Block, int64, error) {
	me := cart.Comm.Rank()
	row := cart.Row
	oldX0, _, oldNX, _ := old.RankRect(me)
	newX0, newY0, newNX, newNY := nw.RankRect(me)

	// One parcel per row neighbor that gains columns I currently own; the
	// row communicator's rank i is the rank with CX == i, so parcels index
	// directly by target px.
	send := make([]*colsParcel, row.Size())
	recv := make([]*colsParcel, row.Size())
	var sent int64
	for opx := 0; opx < nw.PX; opx++ {
		if opx == cart.CX {
			continue
		}
		lo := max(oldX0, nw.X.Lo(opx))
		hi := min(oldX0+oldNX, nw.X.Hi(opx))
		if lo >= hi {
			continue
		}
		cols, err := block.ExtractColumns(lo-oldX0, hi-lo)
		if err != nil {
			return nil, 0, err
		}
		send[opx] = &colsParcel{X0: lo, W: hi - lo, Cols: cols}
		sent += int64(8 * len(cols))
	}
	comm.ExchangePtr(row, send, recv)

	nb, err := grid.NewBlock(m, newX0, newY0, newNX, newNY)
	if err != nil {
		return nil, 0, err
	}
	for src, pc := range recv {
		if src == cart.CX || pc == nil {
			continue
		}
		if err := nb.ValidateColumns(pc.Cols, pc.X0); err != nil {
			return nil, 0, err
		}
	}
	return nb, sent, nil
}

// rowsParcel carries migrated mesh rows between column neighbors after a
// y-direction boundary shift (phase 2 of the two-phase scheme).
type rowsParcel struct {
	Y0   int
	H    int
	Rows []float64
}

// migrateRows is the y-direction analogue of migrateColumns: after the
// y-cuts changed, each rank ships the charge data of rows it loses to the
// column neighbor gaining them and validates what it receives.
func migrateRows(cart *comm.Cart2D, m grid.Mesh, old, nw *decomp.Grid2D, block *grid.Block) (*grid.Block, int64, error) {
	me := cart.Comm.Rank()
	col := cart.Col
	_, oldY0, _, oldNY := old.RankRect(me)
	newX0, newY0, newNX, newNY := nw.RankRect(me)

	send := make([]*rowsParcel, col.Size())
	recv := make([]*rowsParcel, col.Size())
	var sent int64
	for opy := 0; opy < nw.PY; opy++ {
		if opy == cart.CY {
			continue
		}
		lo := max(oldY0, nw.Y.Lo(opy))
		hi := min(oldY0+oldNY, nw.Y.Hi(opy))
		if lo >= hi {
			continue
		}
		rows, err := block.ExtractRows(lo-oldY0, hi-lo)
		if err != nil {
			return nil, 0, err
		}
		send[opy] = &rowsParcel{Y0: lo, H: hi - lo, Rows: rows}
		sent += int64(8 * len(rows))
	}
	comm.ExchangePtr(col, send, recv)

	nb, err := grid.NewBlock(m, newX0, newY0, newNX, newNY)
	if err != nil {
		return nil, 0, err
	}
	for src, pc := range recv {
		if src == cart.CY || pc == nil {
			continue
		}
		if err := nb.ValidateRows(pc.Rows, pc.Y0); err != nil {
			return nil, 0, err
		}
	}
	return nb, sent, nil
}
