package driver

import (
	"fmt"

	"github.com/parres/picprk/internal/balance"
	"github.com/parres/picprk/internal/comm"
)

// WorkStealParams tunes the work-stealing driver: the VP substrate of the
// ampi implementation driven by the demand-driven WorkStealLB policy.
type WorkStealParams struct {
	// Overdecompose is d: the problem is split into d·P virtual processors.
	Overdecompose int
	// Every is the number of steps between steal rounds.
	Every int
	// Threshold is the hunger trigger: a core steals when its load falls
	// below (1−Threshold) of the heaviest core's. 0 selects the default
	// (0.25).
	Threshold float64
}

// Validate checks parameter sanity.
func (p WorkStealParams) Validate() error {
	if p.Overdecompose <= 0 {
		return fmt.Errorf("driver: over-decomposition degree must be positive, got %d", p.Overdecompose)
	}
	if p.Every <= 0 {
		return fmt.Errorf("driver: steal interval must be positive, got %d", p.Every)
	}
	if p.Threshold < 0 || p.Threshold >= 1 {
		return fmt.Errorf("driver: steal threshold must be in [0,1), got %v", p.Threshold)
	}
	return nil
}

// RunWorkSteal executes the PIC PRK with the fourth driver: demand-driven
// work stealing over the VP substrate, the runtime style the paper's §VI
// future work targets (task-based runtimes like Charm++, HPX, Legion).
// Unlike the ampi driver's global reassignment, only underloaded cores act:
// each steals VPs from the currently heaviest core, bounding migration
// volume by the number of hungry cores per round.
func RunWorkSteal(p int, cfg Config, params WorkStealParams) (*Result, error) {
	eng, err := NewWorkStealEngine(cfg, params)
	if err != nil {
		return nil, err
	}
	return eng.Run(p)
}

// NewWorkStealEngine builds the work-stealing engine without running it.
func NewWorkStealEngine(cfg Config, params WorkStealParams) (*Engine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		Name: "worksteal",
		Cfg:  cfg,
		Substrate: func(c *comm.Comm, cfg Config) (Substrate, error) {
			return newVPSubstrate(c, cfg, params.Overdecompose)
		},
		Balancer: func() balance.Balancer { return balance.NewWorkStealBalancer(params.Threshold, params.Every) },
	}, nil
}
