package driver

import (
	"fmt"
	"testing"

	"github.com/parres/picprk/internal/balance"
	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/diffusion"
	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/grid"
)

// benchRunConfig mirrors cmd/picbench's driver-bench scenario so the
// full-run allocation numbers here track the committed BENCH_driver.json.
func benchRunConfig(b *testing.B) Config {
	m, err := grid.NewMesh(64, grid.DefaultCharge)
	if err != nil {
		b.Fatal(err)
	}
	return Config{
		Mesh: m, N: 20000, Steps: 50,
		Dist: dist.Geometric{R: 0.92},
		Seed: 5,
	}
}

// TestMigrateSteadyStateAllocs pins the cost class of VP migration: once the
// runtime's shell freelist and the column-wise PUP buffers are warm, moving a
// VP costs O(1) allocations (the pack buffer and its send envelope), not
// O(particles). The bound is deliberately loose — the pin is against a
// regression to per-particle staging (which costs tens of allocations per
// move), not against the exact constant. Rank 0 measures process-global
// mallocs while rank 1 runs the same ping-pong in lockstep.
func TestMigrateSteadyStateAllocs(t *testing.T) {
	cfg := testConfig(t, 16, 4000, 0)
	cfg.Verify = false
	cfg.Dist = nil
	const runs = 5
	w := comm.NewWorld(2)
	err := w.Run(func(c *comm.Comm) error {
		s, err := newVPSubstrate(c, cfg, 4)
		if err != nil {
			return err
		}
		defer s.Close()
		home := s.rt.Locations()
		away := s.rt.Locations()
		for vp, owner := range away {
			if owner == 0 {
				away[vp] = 1 // ping-pong one VP between the two cores
				break
			}
		}
		cycle := func() {
			if _, err := s.Execute(balance.Plan{Owner: away}); err != nil {
				panic(err)
			}
			if _, err := s.Execute(balance.Plan{Owner: home}); err != nil {
				panic(err)
			}
		}
		for i := 0; i < 3; i++ {
			cycle() // warm the shells and the reused buffers on both cores
		}
		if c.Rank() == 0 {
			if avg := testing.AllocsPerRun(runs, cycle); avg > 16 {
				return fmt.Errorf("steady-state migrate ping-pong: %v allocs/cycle, want <= 16", avg)
			}
		} else {
			for i := 0; i < runs+1; i++ {
				cycle()
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// BenchmarkFullRun measures a complete driver run — world construction,
// initialization, 50 steps with balancing, verification gather — for each
// driver at 4 ranks. allocs/op is the whole-run allocation budget the
// shaving work drives down; per-step steady-state allocations are pinned at
// zero separately (TestSteadyStateStepAllocationFree).
func BenchmarkFullRun(b *testing.B) {
	const p = 4
	b.Run("baseline", func(b *testing.B) {
		cfg := benchRunConfig(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunBaseline(p, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("diffusion", func(b *testing.B) {
		cfg := benchRunConfig(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunDiffusion(p, cfg, diffusion.Params{Every: 5, Threshold: 0.05, Width: 2, MinWidth: 3}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ampi", func(b *testing.B) {
		cfg := benchRunConfig(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunAMPI(p, cfg, AMPIParams{Overdecompose: 4, Every: 10}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("worksteal", func(b *testing.B) {
		cfg := benchRunConfig(b)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunWorkSteal(p, cfg, WorkStealParams{Overdecompose: 4, Every: 10}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
