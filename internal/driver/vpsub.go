package driver

import (
	"fmt"
	"time"

	"github.com/parres/picprk/internal/ampi"
	"github.com/parres/picprk/internal/balance"
	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/core"
	"github.com/parres/picprk/internal/decomp"
	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/particle"
	"github.com/parres/picprk/internal/pup"
	"github.com/parres/picprk/internal/trace"
)

// picVP is one virtual processor of the over-decomposed PIC problem: a
// static rectangular subdomain with its materialized mesh block and the
// particles currently inside it, stored SoA for the move kernel. Migration
// PUPs the entire state — particles and grid data — mirroring the paper's
// PUP routines (particles travel in AoS form on the wire).
type picVP struct {
	id     int
	mesh   grid.Mesh
	x0, y0 int
	nx, ny int
	block  *grid.Block
	soa    *core.SoA
	// scratch is the reused AoS conversion buffer for packing; it is not
	// part of the PUPed state.
	scratch []particle.Particle
}

// VPID implements ampi.VP.
func (v *picVP) VPID() int { return v.id }

// Load implements ampi.VP: work is exactly proportional to particle count.
func (v *picVP) Load() float64 { return float64(v.soa.Len()) }

// PUP implements pup.PUPable.
func (v *picVP) PUP(p *pup.PUPer) {
	p.Int(&v.id)
	p.Int(&v.mesh.L)
	p.Float64(&v.mesh.Q)
	p.Int(&v.x0)
	p.Int(&v.y0)
	p.Int(&v.nx)
	p.Int(&v.ny)
	var data []float64
	var ps []particle.Particle
	if p.Mode() != pup.Unpacking {
		data = v.block.OwnedData()
		v.scratch = v.soa.AppendParticles(v.scratch[:0])
		ps = v.scratch
	}
	p.Float64s(&data)
	pup.Slice(p, &ps, func(p *pup.PUPer, e *particle.Particle) { e.PUP(p) })
	if p.Mode() == pup.Unpacking && p.Err() == nil {
		block, err := grid.NewBlockFromData(v.mesh, v.x0, v.y0, v.nx, v.ny, data)
		if err != nil {
			p.Fail(err)
			return
		}
		v.block = block
		v.soa = core.NewSoA(ps)
	}
}

// vpColParcel addresses one destination VP's shard of arriving particles
// inside a per-core parcel list. The Columns pointer refers into the
// sender's double-buffered shard set (see colShards for the reuse rules).
type vpColParcel struct {
	VP   int
	Cols *core.Columns
}

// vpSubstrate realizes the §IV-C execution model: the static 2D algorithm
// over-decomposed into d·P virtual processors hosted by the ampi runtime,
// with a strategy-driven Balancer deciding VP placement and PUP-serialized
// migration executing it. It backs both the "ampi" and the "worksteal"
// drivers.
//
// The per-step exchange is columnar, like the block substrate's: the move
// pass classifies leavers against the static cell→VP owner table,
// ScatterRemove deposits them into per-VP Columns shards, the shards are
// grouped into per-core parcel lists, and comm.ExchangePtr moves the lists
// by pointer. All of it reuses double-buffered storage, so the steady-state
// step stays off the allocator.
type vpSubstrate struct {
	c    *comm.Comm
	cfg  Config
	vg   *decomp.Grid2D
	rt   *ampi.Runtime
	pool *core.MovePool

	// vot is the dense cell→VP owner table; the VP decomposition is static,
	// so it is built once.
	vot *core.OwnerTable
	// lv is the per-VP move pass's leaver list (reset per VP); shards holds
	// the double-buffered per-destination-VP Columns, filled by Move (cur is
	// the generation in flight) and shipped by Exchange.
	lv     core.Leavers
	shards colShards
	cur    []core.Columns
	// lists / sendPtrs / recvPtrs are the per-core parcel groupings; lists
	// is double-buffered because ExchangePtr transfers ownership of the
	// pointed-to slices until the next call completes.
	lists              [2][][]vpColParcel
	lgen               int
	sendPtrs, recvPtrs []*[]vpColParcel

	psScratch []particle.Particle
	xbytes    int64
}

func newVPSubstrate(c *comm.Comm, cfg Config, overdecompose int) (*vpSubstrate, error) {
	p := c.Size()
	px, py := comm.Dims2D(p)
	dx, dy := comm.Dims2D(overdecompose)
	vx, vy := px*dx, py*dy
	if vx > cfg.Mesh.L || vy > cfg.Mesh.L {
		return nil, fmt.Errorf("driver: VP grid %dx%d exceeds domain %d", vx, vy, cfg.Mesh.L)
	}
	vg, err := decomp.NewUniform2D(cfg.Mesh.L, vx, vy)
	if err != nil {
		return nil, err
	}
	place, err := ampi.BlockPlacement(vx, vy, px, py)
	if err != nil {
		return nil, err
	}

	// Initialization is replicated deterministically; each core materializes
	// only the VPs placed on it.
	all, err := dist.Initialize(cfg.distConfig())
	if err != nil {
		return nil, err
	}
	makeLocal := func(vp int) ampi.VP {
		x0, y0, nx, ny := vg.RankRect(vp)
		block, err := grid.NewBlock(cfg.Mesh, x0, y0, nx, ny)
		if err != nil {
			panic(err) // static decomposition of a validated mesh cannot fail
		}
		v := &picVP{id: vp, mesh: cfg.Mesh, x0: x0, y0: y0, nx: nx, ny: ny, block: block}
		var ps []particle.Particle
		for i := range all {
			cx, cy := cfg.Mesh.CellOf(all[i].X, all[i].Y)
			if vg.OwnerOfCell(cx, cy) == vp {
				ps = append(ps, all[i])
			}
		}
		v.soa = core.NewSoA(ps)
		return v
	}
	rt, err := ampi.NewRuntime(c, vx*vy, place, makeLocal, func() ampi.VP { return &picVP{} })
	if err != nil {
		return nil, err
	}
	pool := core.NewMovePool(cfg.effectiveWorkers(c.Size()))
	return &vpSubstrate{
		c: c, cfg: cfg, vg: vg, rt: rt, pool: pool,
		vot: core.NewOwnerTable(vg.X.Cuts, vg.Y.Cuts),
	}, nil
}

// Move implements Substrate: each local VP runs through the shared worker
// pool's fused move+classify pass against the static cell→VP owner table;
// its leavers scatter straight into the per-destination-VP Columns shards
// of the current generation — no AoS materialization, no second sweep.
func (s *vpSubstrate) Move() {
	cols := s.shards.next(s.rt.NumVPs())
	s.cur = cols
	for _, id := range s.rt.LocalIDs() {
		v := s.rt.Local(id).(*picVP)
		s.pool.MoveClassify(v.soa, v.block, s.cfg.Mesh, s.vot, int32(v.id), &s.lv)
		v.soa.ScatterRemove(&s.lv, cols)
	}
}

// Exchange implements Substrate: the non-empty VP shards of the current
// generation are grouped into per-hosting-core parcel lists (ascending VP
// order — deterministic) and moved by pointer; arrivals append column-wise
// to their destination VPs. Lists are double-buffered for the same reason
// the shards are.
func (s *vpSubstrate) Exchange(rec *trace.Recorder) error {
	start := time.Now()
	p, me := s.c.Size(), s.c.Rank()
	lists := s.lists[s.lgen]
	if len(lists) != p {
		lists = make([][]vpColParcel, p)
		s.lists[s.lgen] = lists
	}
	s.lgen = 1 - s.lgen
	for i := range lists {
		lists[i] = lists[i][:0]
	}
	cols := s.cur
	for vp := range cols {
		sh := &cols[vp]
		if sh.Len() == 0 {
			continue
		}
		dst := s.rt.Location(vp)
		lists[dst] = append(lists[dst], vpColParcel{VP: vp, Cols: sh})
	}
	if len(s.sendPtrs) != p {
		s.sendPtrs = make([]*[]vpColParcel, p)
		s.recvPtrs = make([]*[]vpColParcel, p)
	}
	onWire := s.c.OnWire()
	for dst := range lists {
		if dst == me || len(lists[dst]) == 0 {
			s.sendPtrs[dst] = nil
			continue
		}
		s.sendPtrs[dst] = &lists[dst]
		if !onWire {
			for _, pc := range lists[dst] {
				s.xbytes += pc.Cols.FramedBytes()
			}
		}
	}
	// Estimated framed size in-process, measured transport delta on the
	// wire (see blockSubstrate.Exchange for the rationale).
	var wireBase int64
	if onWire {
		wireBase = s.c.TransportBytes()
	}
	comm.ExchangePtr(s.c, s.sendPtrs, s.recvPtrs)
	if onWire {
		s.xbytes += s.c.TransportBytes() - wireBase
	}
	for src := 0; src < p; src++ {
		var parcels []vpColParcel
		if src == me {
			parcels = lists[me] // self parcels transfer locally
		} else if lp := s.recvPtrs[src]; lp != nil {
			parcels = *lp
		}
		for _, pc := range parcels {
			avp := s.rt.Local(pc.VP)
			if avp == nil {
				return fmt.Errorf("driver: parcel for VP %d arrived at core %d which does not host it", pc.VP, me)
			}
			avp.(*picVP).soa.AppendColumns(pc.Cols)
		}
	}
	rec.Add(trace.Exchange, time.Since(start))
	return nil
}

// ApplyEvents implements Substrate: removal per VP; injections routed to
// the owning VP if hosted locally.
func (s *vpSubstrate) ApplyEvents(es *eventState, step int) {
	for _, ev := range s.cfg.Schedule.At(step) {
		if ev.Remove {
			region := ev.Region
			s.rt.ForEach(func(avp ampi.VP) {
				v := avp.(*picVP)
				v.soa.Filter(func(i int) bool {
					return !region.ContainsPos(v.soa.X[i], v.soa.Y[i], s.cfg.Mesh)
				})
			})
		}
		if ev.Inject > 0 {
			dir := s.cfg.Dir
			if dir == 0 {
				dir = 1
			}
			inj := dist.InjectParticles(s.cfg.Mesh, ev, s.cfg.Seed, es.nextID, dir)
			es.nextID += uint64(ev.Inject)
			for i := range inj {
				cx, cy := s.cfg.Mesh.CellOf(inj[i].X, inj[i].Y)
				vp := s.vg.OwnerOfCell(cx, cy)
				if avp := s.rt.Local(vp); avp != nil {
					avp.(*picVP).soa.Append(inj[i])
				}
			}
		}
	}
}

// Count implements Substrate. Written without closures (and against the
// runtime's cached id list) so the per-step path stays allocation-free.
func (s *vpSubstrate) Count() int {
	n := 0
	for _, id := range s.rt.LocalIDs() {
		n += s.rt.Local(id).(*picVP).soa.Len()
	}
	return n
}

// Measure implements Substrate: the runtime's collective load reduction
// plus a copy of the current owner table.
func (s *vpSubstrate) Measure(n balance.Needs) balance.Loads {
	loads := balance.Loads{Cores: s.c.Size()}
	if n.Units {
		loads.Units = s.rt.MeasureLoads()
		loads.Owner = s.rt.Locations()
	}
	return loads
}

// Execute implements Substrate: migrate VPs to the plan's owner table.
// Particles travel inside their VP, so no rehoming exchange is needed.
func (s *vpSubstrate) Execute(plan balance.Plan) (bool, error) {
	if plan.Owner == nil {
		return false, nil
	}
	_, err := s.rt.Migrate(plan.Owner)
	return false, err
}

// CheckOwnership implements Substrate: every particle must sit inside its
// hosting VP's subdomain. Like Count, it avoids closures on the per-step
// path.
func (s *vpSubstrate) CheckOwnership(step int) error {
	mesh := s.cfg.Mesh
	for _, id := range s.rt.LocalIDs() {
		v := s.rt.Local(id).(*picVP)
		self := int32(v.id)
		for i := 0; i < v.soa.Len(); i++ {
			cx, cy := mesh.CellOf(v.soa.X[i], v.soa.Y[i])
			if s.vot.Owner(cx, cy) != self {
				return fmt.Errorf("driver: step %d: particle %d at cell (%d,%d) not owned by VP %d", step, v.soa.Meta[i].ID, cx, cy, v.id)
			}
		}
	}
	return nil
}

// Particles implements Substrate. The returned slice is scratch, valid
// until the next Particles call.
func (s *vpSubstrate) Particles() []particle.Particle {
	s.psScratch = s.psScratch[:0]
	for _, id := range s.rt.LocalIDs() {
		s.psScratch = s.rt.Local(id).(*picVP).soa.AppendParticles(s.psScratch)
	}
	return s.psScratch
}

// MigrationStats implements Substrate.
func (s *vpSubstrate) MigrationStats() (int, int64) {
	return s.rt.Stats.VPsSent + s.rt.Stats.VPsReceived, s.rt.Stats.BytesSent
}

// ExchangeBytes implements Substrate.
func (s *vpSubstrate) ExchangeBytes() int64 { return s.xbytes }

// Close implements Substrate.
func (s *vpSubstrate) Close() { s.pool.Close() }
