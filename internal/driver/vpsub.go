package driver

import (
	"fmt"
	"sort"
	"time"

	"github.com/parres/picprk/internal/ampi"
	"github.com/parres/picprk/internal/balance"
	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/core"
	"github.com/parres/picprk/internal/decomp"
	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/particle"
	"github.com/parres/picprk/internal/pup"
	"github.com/parres/picprk/internal/trace"
)

// picVP is one virtual processor of the over-decomposed PIC problem: a
// static rectangular subdomain with its materialized mesh block and the
// particles currently inside it, stored SoA for the move kernel. Migration
// PUPs the entire state — particles and grid data — mirroring the paper's
// PUP routines (particles travel in AoS form on the wire).
type picVP struct {
	id     int
	mesh   grid.Mesh
	x0, y0 int
	nx, ny int
	block  *grid.Block
	soa    *core.SoA
}

// VPID implements ampi.VP.
func (v *picVP) VPID() int { return v.id }

// Load implements ampi.VP: work is exactly proportional to particle count.
func (v *picVP) Load() float64 { return float64(v.soa.Len()) }

// PUP implements pup.PUPable.
func (v *picVP) PUP(p *pup.PUPer) {
	p.Int(&v.id)
	p.Int(&v.mesh.L)
	p.Float64(&v.mesh.Q)
	p.Int(&v.x0)
	p.Int(&v.y0)
	p.Int(&v.nx)
	p.Int(&v.ny)
	var data []float64
	var ps []particle.Particle
	if p.Mode() != pup.Unpacking {
		data = v.block.OwnedData()
		ps = v.soa.Particles()
	}
	p.Float64s(&data)
	pup.Slice(p, &ps, func(p *pup.PUPer, e *particle.Particle) { e.PUP(p) })
	if p.Mode() == pup.Unpacking && p.Err() == nil {
		block, err := grid.NewBlockFromData(v.mesh, v.x0, v.y0, v.nx, v.ny, data)
		if err != nil {
			p.Fail(err)
			return
		}
		v.block = block
		v.soa = core.NewSoA(ps)
	}
}

// vpParcel is a bundle of particles bound for one VP, exchanged at core
// level each step.
type vpParcel struct {
	VP int
	Ps []particle.Particle
}

// vpSubstrate realizes the §IV-C execution model: the static 2D algorithm
// over-decomposed into d·P virtual processors hosted by the ampi runtime,
// with a strategy-driven Balancer deciding VP placement and PUP-serialized
// migration executing it. It backs both the "ampi" and the "worksteal"
// drivers.
type vpSubstrate struct {
	c    *comm.Comm
	cfg  Config
	vg   *decomp.Grid2D
	rt   *ampi.Runtime
	pool *core.MovePool

	// outbound accumulates leaver parcels during Move for Exchange to
	// deliver; moved is the reused AoS scratch the per-VP split compacts
	// leavers into; buckets is the double-buffered per-core parcel store
	// (see sendBuckets).
	outbound []vpParcel
	moved    []particle.Particle
	buckets  sendBuckets[vpParcel]
}

func newVPSubstrate(c *comm.Comm, cfg Config, overdecompose int) (*vpSubstrate, error) {
	p := c.Size()
	px, py := comm.Dims2D(p)
	dx, dy := comm.Dims2D(overdecompose)
	vx, vy := px*dx, py*dy
	if vx > cfg.Mesh.L || vy > cfg.Mesh.L {
		return nil, fmt.Errorf("driver: VP grid %dx%d exceeds domain %d", vx, vy, cfg.Mesh.L)
	}
	vg, err := decomp.NewUniform2D(cfg.Mesh.L, vx, vy)
	if err != nil {
		return nil, err
	}
	place, err := ampi.BlockPlacement(vx, vy, px, py)
	if err != nil {
		return nil, err
	}

	// Initialization is replicated deterministically; each core materializes
	// only the VPs placed on it.
	all, err := dist.Initialize(cfg.distConfig())
	if err != nil {
		return nil, err
	}
	makeLocal := func(vp int) ampi.VP {
		x0, y0, nx, ny := vg.RankRect(vp)
		block, err := grid.NewBlock(cfg.Mesh, x0, y0, nx, ny)
		if err != nil {
			panic(err) // static decomposition of a validated mesh cannot fail
		}
		v := &picVP{id: vp, mesh: cfg.Mesh, x0: x0, y0: y0, nx: nx, ny: ny, block: block}
		var ps []particle.Particle
		for i := range all {
			cx, cy := cfg.Mesh.CellOf(all[i].X, all[i].Y)
			if vg.OwnerOfCell(cx, cy) == vp {
				ps = append(ps, all[i])
			}
		}
		v.soa = core.NewSoA(ps)
		return v
	}
	rt, err := ampi.NewRuntime(c, vx*vy, place, makeLocal, func() ampi.VP { return &picVP{} })
	if err != nil {
		return nil, err
	}
	pool := core.NewMovePool(cfg.effectiveWorkers(c.Size()))
	return &vpSubstrate{c: c, cfg: cfg, vg: vg, rt: rt, pool: pool}, nil
}

// Move implements Substrate: the core's scheduler runs each local VP in
// turn through the shared worker pool; leavers are split off into parcels
// for the exchange phase. The split reuses the AoS scratch buffer — the
// parcels copy the leavers out, so refilling it next VP is safe.
func (s *vpSubstrate) Move() {
	s.outbound = s.outbound[:0]
	s.rt.ForEach(func(avp ampi.VP) {
		v := avp.(*picVP)
		s.pool.Move(v.soa, v.block, s.cfg.Mesh)
		s.moved = s.moved[:0]
		s.moved = v.soa.SplitRetain(func(i int) bool {
			cx, cy := s.cfg.Mesh.CellOf(v.soa.X[i], v.soa.Y[i])
			return s.vg.OwnerOfCell(cx, cy) == v.id
		}, s.moved)
		if len(s.moved) > 0 {
			s.outbound = append(s.outbound, routeToVPs(s.cfg.Mesh, s.vg, s.moved)...)
		}
	})
}

// Exchange implements Substrate: parcels are grouped by hosting core into
// double-buffered buckets and delivered to their destination VPs.
func (s *vpSubstrate) Exchange(rec *trace.Recorder) error {
	start := time.Now()
	buckets := s.buckets.next(s.c.Size())
	for _, parcel := range s.outbound {
		dst := s.rt.Location(parcel.VP)
		buckets[dst] = append(buckets[dst], parcel)
	}
	s.outbound = s.outbound[:0]
	for _, parcels := range comm.SparseExchange(s.c, buckets) {
		for _, parcel := range parcels {
			avp := s.rt.Local(parcel.VP)
			if avp == nil {
				return fmt.Errorf("driver: parcel for VP %d arrived at core %d which does not host it", parcel.VP, s.c.Rank())
			}
			avp.(*picVP).soa.AppendAll(parcel.Ps)
		}
	}
	rec.Add(trace.Exchange, time.Since(start))
	return nil
}

// ApplyEvents implements Substrate: removal per VP; injections routed to
// the owning VP if hosted locally.
func (s *vpSubstrate) ApplyEvents(es *eventState, step int) {
	for _, ev := range s.cfg.Schedule.At(step) {
		if ev.Remove {
			region := ev.Region
			s.rt.ForEach(func(avp ampi.VP) {
				v := avp.(*picVP)
				v.soa.Filter(func(i int) bool {
					return !region.ContainsPos(v.soa.X[i], v.soa.Y[i], s.cfg.Mesh)
				})
			})
		}
		if ev.Inject > 0 {
			dir := s.cfg.Dir
			if dir == 0 {
				dir = 1
			}
			inj := dist.InjectParticles(s.cfg.Mesh, ev, s.cfg.Seed, es.nextID, dir)
			es.nextID += uint64(ev.Inject)
			for i := range inj {
				cx, cy := s.cfg.Mesh.CellOf(inj[i].X, inj[i].Y)
				vp := s.vg.OwnerOfCell(cx, cy)
				if avp := s.rt.Local(vp); avp != nil {
					avp.(*picVP).soa.Append(inj[i])
				}
			}
		}
	}
}

// Count implements Substrate.
func (s *vpSubstrate) Count() int {
	n := 0
	s.rt.ForEach(func(avp ampi.VP) { n += avp.(*picVP).soa.Len() })
	return n
}

// Measure implements Substrate: the runtime's collective load reduction
// plus a copy of the current owner table.
func (s *vpSubstrate) Measure(n balance.Needs) balance.Loads {
	loads := balance.Loads{Cores: s.c.Size()}
	if n.Units {
		loads.Units = s.rt.MeasureLoads()
		loads.Owner = s.rt.Locations()
	}
	return loads
}

// Execute implements Substrate: migrate VPs to the plan's owner table.
// Particles travel inside their VP, so no rehoming exchange is needed.
func (s *vpSubstrate) Execute(plan balance.Plan) (bool, error) {
	if plan.Owner == nil {
		return false, nil
	}
	_, err := s.rt.Migrate(plan.Owner)
	return false, err
}

// CheckOwnership implements Substrate: every particle must sit inside its
// hosting VP's subdomain.
func (s *vpSubstrate) CheckOwnership(step int) error {
	var err error
	s.rt.ForEach(func(avp ampi.VP) {
		if err != nil {
			return
		}
		v := avp.(*picVP)
		for i := 0; i < v.soa.Len(); i++ {
			cx, cy := s.cfg.Mesh.CellOf(v.soa.X[i], v.soa.Y[i])
			if s.vg.OwnerOfCell(cx, cy) != v.id {
				err = fmt.Errorf("driver: step %d: particle %d at cell (%d,%d) not owned by VP %d", step, v.soa.Meta[i].ID, cx, cy, v.id)
				return
			}
		}
	})
	return err
}

// Particles implements Substrate.
func (s *vpSubstrate) Particles() []particle.Particle {
	var ps []particle.Particle
	s.rt.ForEach(func(avp ampi.VP) { ps = append(ps, avp.(*picVP).soa.Particles()...) })
	return ps
}

// MigrationStats implements Substrate.
func (s *vpSubstrate) MigrationStats() (int, int64) {
	return s.rt.Stats.VPsSent + s.rt.Stats.VPsReceived, s.rt.Stats.BytesSent
}

// Close implements Substrate.
func (s *vpSubstrate) Close() { s.pool.Close() }

// routeToVPs groups leaver particles by destination VP in ascending VP
// order (deterministic parcel order).
func routeToVPs(m grid.Mesh, vg *decomp.Grid2D, leaving []particle.Particle) []vpParcel {
	byVP := map[int][]particle.Particle{}
	for i := range leaving {
		cx, cy := m.CellOf(leaving[i].X, leaving[i].Y)
		dst := vg.OwnerOfCell(cx, cy)
		byVP[dst] = append(byVP[dst], leaving[i])
	}
	out := make([]vpParcel, 0, len(byVP))
	for vp := range byVP {
		out = append(out, vpParcel{VP: vp, Ps: byVP[vp]})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].VP < out[b].VP })
	return out
}
