package driver

import (
	"fmt"
	"time"

	"github.com/parres/picprk/internal/ampi"
	"github.com/parres/picprk/internal/balance"
	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/core"
	"github.com/parres/picprk/internal/decomp"
	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/particle"
	"github.com/parres/picprk/internal/pup"
	"github.com/parres/picprk/internal/trace"
)

// picVP is one virtual processor of the over-decomposed PIC problem: a
// static rectangular subdomain with its materialized mesh block and the
// particles currently inside it, stored SoA for the move kernel. Migration
// PUPs the entire state — particles and grid data — mirroring the paper's
// PUP routines.
type picVP struct {
	id     int
	mesh   grid.Mesh
	x0, y0 int
	nx, ny int
	block  *grid.Block
	soa    *core.SoA
	// gdata is the reused grid-data staging buffer for pack and unpack; it
	// is not part of the PUPed state.
	gdata []float64
}

// VPID implements ampi.VP.
func (v *picVP) VPID() int { return v.id }

// Load implements ampi.VP: work is exactly proportional to particle count.
func (v *picVP) Load() float64 { return float64(v.soa.Len()) }

// PUP implements pup.PUPable. Particles travel column-wise: the SoA slices
// serialize directly, with no AoS staging, and unpacking resizes into
// whatever storage the shell still holds — a recycled shell (the runtime's
// freelist) makes steady-state migration nearly allocation-free.
func (v *picVP) PUP(p *pup.PUPer) {
	p.Int(&v.id)
	p.Int(&v.mesh.L)
	p.Float64(&v.mesh.Q)
	p.Int(&v.x0)
	p.Int(&v.y0)
	p.Int(&v.nx)
	p.Int(&v.ny)
	if p.Mode() != pup.Unpacking {
		v.gdata = v.block.AppendOwnedData(v.gdata[:0])
	}
	p.Float64s(&v.gdata)
	if v.soa == nil {
		v.soa = &core.SoA{}
	}
	p.Float64s(&v.soa.X)
	p.Float64s(&v.soa.Y)
	p.Float64s(&v.soa.VX)
	p.Float64s(&v.soa.VY)
	p.Float64s(&v.soa.Q)
	pup.Slice(p, &v.soa.Meta, func(p *pup.PUPer, e *core.SoAMeta) {
		p.Uint64(&e.ID)
		p.Float64(&e.X0)
		p.Float64(&e.Y0)
		p.Int32(&e.K)
		p.Int32(&e.M)
		p.Int32(&e.Dir)
		p.Int32(&e.Born)
	})
	if p.Mode() == pup.Unpacking && p.Err() == nil {
		n := len(v.soa.X)
		if len(v.soa.Y) != n || len(v.soa.VX) != n || len(v.soa.VY) != n ||
			len(v.soa.Q) != n || len(v.soa.Meta) != n {
			p.Fail(fmt.Errorf("driver: VP %d migrated with ragged particle columns", v.id))
			return
		}
		if v.block == nil {
			v.block = &grid.Block{}
		}
		if err := v.block.ReinitFromData(v.mesh, v.x0, v.y0, v.nx, v.ny, v.gdata); err != nil {
			p.Fail(err)
		}
	}
}

// vpColParcel addresses one destination VP's shard of arriving particles
// inside a per-core parcel list. The Columns pointer refers into the
// sender's double-buffered shard set (see colShards for the reuse rules).
type vpColParcel struct {
	VP   int
	Cols *core.Columns
}

// vpSubstrate realizes the §IV-C execution model: the static 2D algorithm
// over-decomposed into d·P virtual processors hosted by the ampi runtime,
// with a strategy-driven Balancer deciding VP placement and PUP-serialized
// migration executing it. It backs both the "ampi" and the "worksteal"
// drivers.
//
// The per-step exchange is columnar, like the block substrate's: the move
// pass classifies leavers against the static cell→VP owner table,
// ScatterRemove deposits them into per-VP Columns shards, the shards are
// grouped into per-core parcel lists, and comm.ExchangePtr moves the lists
// by pointer. All of it reuses double-buffered storage, so the steady-state
// step stays off the allocator.
type vpSubstrate struct {
	c    *comm.Comm
	cfg  Config
	vg   *decomp.Grid2D
	rt   *ampi.Runtime
	pool *core.MovePool

	// vot is the dense cell→VP owner table; the VP decomposition is static,
	// so it is built once.
	vot *core.OwnerTable
	// lv is the per-VP move pass's leaver list (reset per VP); shards holds
	// the double-buffered per-destination-VP Columns, filled by Move (cur is
	// the generation in flight) and shipped by Exchange.
	lv     core.Leavers
	shards colShards
	cur    []core.Columns
	// lists / sendPtrs / recvPtrs are the per-core parcel groupings; lists
	// is double-buffered because ExchangePtr transfers ownership of the
	// pointed-to slices until the next call completes.
	lists              [2][][]vpColParcel
	lgen               int
	sendPtrs, recvPtrs []*[]vpColParcel

	psScratch []particle.Particle
	xbytes    int64
	// peerBytes/peerMsgs accumulate the per-destination-core exchange
	// matrix in framed columnar units (transport-invariant); nbr derives
	// the sparse exchange schedule from the VP owner table and the current
	// placement, refreshed after every migration.
	peerBytes, peerMsgs []int64
	nbr                 core.NbrSet

	// Tile pipeline state (tileSize == 0 disables the pipeline). The VP
	// substrate splits each VP's particles into an interior head and a
	// frontier tail against a global frontier mask — a cell is frontier
	// when one step could carry a particle from it into a VP hosted on
	// another core — rather than tiling inside the (small) VP rectangles.
	// frontier depends on VP placement and is rebuilt after every Migrate.
	tileSize    int
	rx, ry      int
	frontier    core.Frontier
	tid         []int32
	pstarts     [3]int32
	pcur        [2]int32
	vni         []int
	sortScratch *core.SoA
}

func newVPSubstrate(c *comm.Comm, cfg Config, overdecompose int) (*vpSubstrate, error) {
	p := c.Size()
	px, py := comm.Dims2D(p)
	dx, dy := comm.Dims2D(overdecompose)
	vx, vy := px*dx, py*dy
	if vx > cfg.Mesh.L || vy > cfg.Mesh.L {
		return nil, fmt.Errorf("driver: VP grid %dx%d exceeds domain %d", vx, vy, cfg.Mesh.L)
	}
	vg, err := decomp.NewUniform2D(cfg.Mesh.L, vx, vy)
	if err != nil {
		return nil, err
	}
	place, err := ampi.BlockPlacement(vx, vy, px, py)
	if err != nil {
		return nil, err
	}

	// Initialization is replicated deterministically; each core materializes
	// only the VPs placed on it.
	all, err := dist.Initialize(cfg.distConfig())
	if err != nil {
		return nil, err
	}
	makeLocal := func(vp int) ampi.VP {
		x0, y0, nx, ny := vg.RankRect(vp)
		block, err := grid.NewBlock(cfg.Mesh, x0, y0, nx, ny)
		if err != nil {
			panic(err) // static decomposition of a validated mesh cannot fail
		}
		v := &picVP{id: vp, mesh: cfg.Mesh, x0: x0, y0: y0, nx: nx, ny: ny, block: block}
		n := 0
		for i := range all {
			cx, cy := cfg.Mesh.CellOf(all[i].X, all[i].Y)
			if vg.OwnerOfCell(cx, cy) == vp {
				n++
			}
		}
		ps := make([]particle.Particle, 0, n)
		for i := range all {
			cx, cy := cfg.Mesh.CellOf(all[i].X, all[i].Y)
			if vg.OwnerOfCell(cx, cy) == vp {
				ps = append(ps, all[i])
			}
		}
		v.soa = core.NewSoA(ps)
		return v
	}
	rt, err := ampi.NewRuntime(c, vx*vy, place, makeLocal, func() ampi.VP { return &picVP{} })
	if err != nil {
		return nil, err
	}
	pool := core.NewMovePool(cfg.effectiveWorkers(c.Size()))
	s := &vpSubstrate{
		c: c, cfg: cfg, vg: vg, rt: rt, pool: pool,
		vot: core.NewOwnerTable(vg.X.Cuts, vg.Y.Cuts),
	}
	s.tileSize = cfg.effectiveTile()
	s.rx, s.ry = cfg.ringWidths()
	s.peerBytes = make([]int64, p)
	s.peerMsgs = make([]int64, p)
	if s.tileSize > 0 {
		s.sortScratch = &core.SoA{}
	}
	s.rebuildTopology()
	return s, nil
}

// rebuildTopology recomputes everything derived from VP placement: the
// frontier mask (when the pipeline is on — remote means the owning VP is
// hosted on another core) and the sparse exchange schedule over hosting
// cores. Called at construction, after every migration, and after a
// checkpoint restore. A migration does not rehome particles, but it does
// put the pre-migration schedule's pointers in flight, so installing the
// refreshed schedule arms comm's full-ring fence.
func (s *vpSubstrate) rebuildTopology() {
	me := s.c.Rank()
	if s.tileSize > 0 {
		s.frontier.Rebuild(s.vot, s.cfg.Mesh.L, s.rx, s.ry, func(o int32) bool {
			return s.rt.Location(int(o)) != me
		})
	}
	peers := s.nbr.Rebuild(s.vot, s.cfg.Mesh.L, s.rx, s.ry, me, s.c.Size(),
		func(o int32) int { return s.rt.Location(int(o)) })
	s.c.SetExchangeNeighbors(peers)
}

// Move implements Substrate: each local VP runs through the shared worker
// pool's fused move+classify pass against the static cell→VP owner table;
// its leavers scatter straight into the per-destination-VP Columns shards
// of the current generation — no AoS materialization, no second sweep.
func (s *vpSubstrate) Move() {
	cols := s.shards.next(s.rt.NumVPs())
	s.cur = cols
	for _, id := range s.rt.LocalIDs() {
		v := s.rt.Local(id).(*picVP)
		s.pool.MoveClassify(v.soa, v.block, s.cfg.Mesh, s.vot, int32(v.id), &s.lv)
		v.soa.ScatterRemove(&s.lv, cols)
	}
}

// Exchange implements Substrate: the non-empty VP shards of the current
// generation are grouped into per-hosting-core parcel lists (ascending VP
// order — deterministic) and moved by pointer; arrivals append column-wise
// to their destination VPs. Lists are double-buffered for the same reason
// the shards are.
func (s *vpSubstrate) Exchange(rec *trace.Recorder) error {
	start := time.Now()
	p, me := s.c.Size(), s.c.Rank()
	lists := s.nextLists()
	cols := s.cur
	for vp := range cols {
		sh := &cols[vp]
		if sh.Len() == 0 {
			continue
		}
		dst := s.rt.Location(vp)
		lists[dst] = append(lists[dst], vpColParcel{VP: vp, Cols: sh})
	}
	if len(s.sendPtrs) != p {
		s.sendPtrs = make([]*[]vpColParcel, p)
		s.recvPtrs = make([]*[]vpColParcel, p)
	}
	onWire := s.c.OnWire()
	for dst := range lists {
		if dst == me || len(lists[dst]) == 0 {
			s.sendPtrs[dst] = nil
			continue
		}
		s.sendPtrs[dst] = &lists[dst]
		s.peerMsgs[dst]++
		for _, pc := range lists[dst] {
			s.peerBytes[dst] += pc.Cols.FramedBytes()
			if !onWire {
				s.xbytes += pc.Cols.FramedBytes()
			}
		}
	}
	// Estimated framed size in-process, measured transport delta on the
	// wire (see blockSubstrate.Exchange for the rationale).
	var wireBase int64
	if onWire {
		wireBase = s.c.TransportBytes()
	}
	comm.ExchangePtr(s.c, s.sendPtrs, s.recvPtrs)
	if onWire {
		s.xbytes += s.c.TransportBytes() - wireBase
	}
	for src := 0; src < p; src++ {
		var parcels []vpColParcel
		if src == me {
			parcels = lists[me] // self parcels transfer locally
		} else if lp := s.recvPtrs[src]; lp != nil {
			parcels = *lp
		}
		if err := s.deliverParcels(parcels); err != nil {
			return err
		}
	}
	rec.Add(trace.Exchange, time.Since(start))
	return nil
}

// deliverParcels appends each parcel's columns to its destination VP.
func (s *vpSubstrate) deliverParcels(parcels []vpColParcel) error {
	for _, pc := range parcels {
		avp := s.rt.Local(pc.VP)
		if avp == nil {
			return fmt.Errorf("driver: parcel for VP %d arrived at core %d which does not host it", pc.VP, s.c.Rank())
		}
		avp.(*picVP).soa.AppendColumns(pc.Cols)
	}
	return nil
}

// nextLists returns the older generation's per-core parcel lists, emptied.
func (s *vpSubstrate) nextLists() [][]vpColParcel {
	p := s.c.Size()
	lists := s.lists[s.lgen]
	if len(lists) != p {
		lists = make([][]vpColParcel, p)
		s.lists[s.lgen] = lists
	}
	s.lgen = 1 - s.lgen
	for i := range lists {
		lists[i] = lists[i][:0]
	}
	return lists
}

// MoveExchange implements Substrate: the tile-pipelined step on the
// over-decomposed substrate. Each VP's particles are partitioned against
// the global frontier mask into an interior head and a frontier tail
// (per-cell, not per-VP — with over-decomposition most VPs touch a remote
// core's territory somewhere, but only a band of their cells can actually
// reach it in one step). The frontier tails of every local VP move first
// and their leavers go on the wire; the interior heads move while the
// parcels are in flight. Interior leavers are legal here — a particle may
// hop to another VP hosted on this same core — but an interior leaver
// bound for a remote core would mean the displacement ring is wrong, and
// is a hard error: its shard may already be in flight.
func (s *vpSubstrate) MoveExchange(rec *trace.Recorder) error {
	if s.tileSize == 0 {
		start := time.Now()
		s.Move()
		rec.Add(trace.Compute, time.Since(start))
		return s.Exchange(rec)
	}
	mesh, p, me := s.cfg.Mesh, s.c.Size(), s.c.Rank()

	// Wave 1: partition each VP and move its frontier tail.
	t0 := time.Now()
	cols := s.shards.next(s.rt.NumVPs())
	s.cur = cols
	ids := s.rt.LocalIDs()
	if cap(s.vni) < len(ids) {
		s.vni = make([]int, len(ids))
	}
	vni := s.vni[:len(ids)]
	for k, id := range ids {
		v := s.rt.Local(id).(*picVP)
		n := v.soa.Len()
		if cap(s.tid) < n {
			s.tid = make([]int32, n)
		}
		tid := s.tid[:n]
		for i := 0; i < n; i++ {
			cx, cy := mesh.CellOf(v.soa.X[i], v.soa.Y[i])
			if s.frontier.At(cx, cy) {
				tid[i] = 1
			} else {
				tid[i] = 0
			}
		}
		core.SortByTile(s.sortScratch, v.soa, tid, 2, s.pstarts[:], s.pcur[:])
		v.soa, s.sortScratch = s.sortScratch, v.soa
		vni[k] = int(s.pstarts[1])
		s.pool.MoveClassifyRange(v.soa, vni[k], n, v.block, mesh, s.vot, int32(id), &s.lv)
		v.soa.ScatterRemove(&s.lv, cols)
	}
	rec.Add(trace.Compute, time.Since(t0))

	// Ship the remote-bound shards. Shards for VPs hosted on this core stay
	// local and deliver after both waves (wave 2 may still add to them).
	t1 := time.Now()
	lists := s.nextLists()
	for vp := range cols {
		sh := &cols[vp]
		if sh.Len() == 0 {
			continue
		}
		if dst := s.rt.Location(vp); dst != me {
			lists[dst] = append(lists[dst], vpColParcel{VP: vp, Cols: sh})
		}
	}
	if len(s.sendPtrs) != p {
		s.sendPtrs = make([]*[]vpColParcel, p)
		s.recvPtrs = make([]*[]vpColParcel, p)
	}
	onWire := s.c.OnWire()
	for dst := range lists {
		if dst == me || len(lists[dst]) == 0 {
			s.sendPtrs[dst] = nil
			continue
		}
		s.sendPtrs[dst] = &lists[dst]
		s.peerMsgs[dst]++
		for _, pc := range lists[dst] {
			s.peerBytes[dst] += pc.Cols.FramedBytes()
			if !onWire {
				s.xbytes += pc.Cols.FramedBytes()
			}
		}
	}
	var wireBase int64
	if onWire {
		wireBase = s.c.TransportBytes()
	}
	comm.ExchangePtrStart(s.c, s.sendPtrs)
	rec.Add(trace.Exchange, time.Since(t1))

	// Wave 2: interior heads, overlapped with the in-flight exchange.
	t2 := time.Now()
	for k, id := range ids {
		v := s.rt.Local(id).(*picVP)
		s.pool.MoveClassifyRange(v.soa, 0, vni[k], v.block, mesh, s.vot, int32(id), &s.lv)
		for w := 0; w < s.lv.Chunks(); w++ {
			_, ds := s.lv.Chunk(w)
			for _, d := range ds {
				if s.rt.Location(int(d)) != me {
					return fmt.Errorf("driver: interior particle of VP %d left for remote-hosted VP %d in one step (displacement ring rx=%d ry=%d violated)", id, d, s.rx, s.ry)
				}
			}
		}
		v.soa.ScatterRemove(&s.lv, cols)
	}
	d2 := time.Since(t2)
	rec.Add(trace.Compute, d2)
	if p > 1 {
		rec.AddOverlap(d2)
	}

	// Finish: remote arrivals, then the local shards from both waves.
	t3 := time.Now()
	comm.ExchangePtrFinish(s.c, s.sendPtrs, s.recvPtrs)
	if onWire {
		s.xbytes += s.c.TransportBytes() - wireBase
	}
	for src := 0; src < p; src++ {
		if src == me {
			continue
		}
		if lp := s.recvPtrs[src]; lp != nil {
			if err := s.deliverParcels(*lp); err != nil {
				return err
			}
		}
	}
	for vp := range cols {
		sh := &cols[vp]
		if sh.Len() == 0 || s.rt.Location(vp) != me {
			continue
		}
		avp := s.rt.Local(vp)
		if avp == nil {
			return fmt.Errorf("driver: local shard for VP %d on core %d which does not host it", vp, me)
		}
		avp.(*picVP).soa.AppendColumns(sh)
	}
	rec.Add(trace.Exchange, time.Since(t3))
	return nil
}

// ApplyEvents implements Substrate: removal per VP; injections routed to
// the owning VP if hosted locally.
func (s *vpSubstrate) ApplyEvents(es *eventState, step int) {
	for _, ev := range s.cfg.Schedule.At(step) {
		if ev.Remove {
			region := ev.Region
			s.rt.ForEach(func(avp ampi.VP) {
				v := avp.(*picVP)
				v.soa.Filter(func(i int) bool {
					return !region.ContainsPos(v.soa.X[i], v.soa.Y[i], s.cfg.Mesh)
				})
			})
		}
		if ev.Inject > 0 {
			dir := s.cfg.Dir
			if dir == 0 {
				dir = 1
			}
			inj := dist.InjectParticles(s.cfg.Mesh, ev, s.cfg.Seed, es.nextID, dir)
			es.nextID += uint64(ev.Inject)
			for i := range inj {
				cx, cy := s.cfg.Mesh.CellOf(inj[i].X, inj[i].Y)
				vp := s.vg.OwnerOfCell(cx, cy)
				if avp := s.rt.Local(vp); avp != nil {
					avp.(*picVP).soa.Append(inj[i])
				}
			}
		}
	}
}

// Count implements Substrate. Written without closures (and against the
// runtime's cached id list) so the per-step path stays allocation-free.
func (s *vpSubstrate) Count() int {
	n := 0
	for _, id := range s.rt.LocalIDs() {
		n += s.rt.Local(id).(*picVP).soa.Len()
	}
	return n
}

// Measure implements Substrate: the runtime's collective load reduction
// plus a copy of the current owner table.
func (s *vpSubstrate) Measure(n balance.Needs) balance.Loads {
	loads := balance.Loads{Cores: s.c.Size()}
	if n.Units {
		loads.Units = s.rt.MeasureLoads()
		loads.Owner = s.rt.Locations()
	}
	return loads
}

// Execute implements Substrate: migrate VPs to the plan's owner table.
// Particles travel inside their VP, so no rehoming exchange is needed.
func (s *vpSubstrate) Execute(plan balance.Plan) (bool, error) {
	if plan.Owner == nil {
		return false, nil
	}
	if _, err := s.rt.Migrate(plan.Owner); err != nil {
		return false, err
	}
	// VP placement changed, so which cells can reach a remote core — and
	// therefore the reachable peer set — changed.
	s.rebuildTopology()
	return false, nil
}

// CheckOwnership implements Substrate: every particle must sit inside its
// hosting VP's subdomain. Like Count, it avoids closures on the per-step
// path.
func (s *vpSubstrate) CheckOwnership(step int) error {
	mesh := s.cfg.Mesh
	for _, id := range s.rt.LocalIDs() {
		v := s.rt.Local(id).(*picVP)
		self := int32(v.id)
		for i := 0; i < v.soa.Len(); i++ {
			cx, cy := mesh.CellOf(v.soa.X[i], v.soa.Y[i])
			if s.vot.Owner(cx, cy) != self {
				return fmt.Errorf("driver: step %d: particle %d at cell (%d,%d) not owned by VP %d", step, v.soa.Meta[i].ID, cx, cy, v.id)
			}
		}
	}
	return nil
}

// Particles implements Substrate. The returned slice is scratch, valid
// until the next Particles call.
func (s *vpSubstrate) Particles() []particle.Particle {
	s.psScratch = s.psScratch[:0]
	for _, id := range s.rt.LocalIDs() {
		s.psScratch = s.rt.Local(id).(*picVP).soa.AppendParticles(s.psScratch)
	}
	return s.psScratch
}

// MigrationStats implements Substrate.
func (s *vpSubstrate) MigrationStats() (int, int64) {
	return s.rt.Stats.VPsSent + s.rt.Stats.VPsReceived, s.rt.Stats.BytesSent
}

// ExchangeBytes implements Substrate.
func (s *vpSubstrate) ExchangeBytes() int64 { return s.xbytes }

// PeerExchange implements Substrate.
func (s *vpSubstrate) PeerExchange() (bytes, msgs []int64) { return s.peerBytes, s.peerMsgs }

// Close implements Substrate.
func (s *vpSubstrate) Close() { s.pool.Close() }
