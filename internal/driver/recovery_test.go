package driver

import (
	"fmt"
	"sync"
	"testing"

	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/comm/wire"
	"github.com/parres/picprk/internal/diffusion"
	"github.com/parres/picprk/internal/trace"
)

// engineFactory builds a fresh Engine per participant — elastic runs need
// one per simulated process (each holds its own store and step hook).
type engineFactory struct {
	name string
	make func(cfg Config, p int) (*Engine, error)
}

func recoveryFactories() []engineFactory {
	return []engineFactory{
		{"baseline", func(cfg Config, p int) (*Engine, error) {
			return NewBaselineEngine(cfg), nil
		}},
		{"diffusion", func(cfg Config, p int) (*Engine, error) {
			return NewDiffusionEngine(cfg, diffusion.Params{Every: 5, Threshold: 0.05, Width: 1, MinWidth: 2})
		}},
		{"ampi", func(cfg Config, p int) (*Engine, error) {
			return NewAMPIEngine(p, cfg, AMPIParams{Overdecompose: 4, Every: 10})
		}},
		{"worksteal", func(cfg Config, p int) (*Engine, error) {
			return NewWorkStealEngine(cfg, WorkStealParams{Overdecompose: 4, Every: 6})
		}},
	}
}

// TestCheckpointingPreservesResults: arming epochs must not change a single
// bit of the physics — every driver produces identical particles with
// checkpointing on and off, and the commit count matches the schedule.
func TestCheckpointingPreservesResults(t *testing.T) {
	const ranks = 3
	cfg := testConfig(t, 16, 2000, 40)
	for _, f := range recoveryFactories() {
		t.Run(f.name, func(t *testing.T) {
			plain, err := f.make(cfg, ranks)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := plain.Run(ranks)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Recovery != nil {
				t.Error("unchckpointed run carries recovery stats")
			}

			ccfg := cfg
			ccfg.CheckpointEvery = 7
			eng, err := f.make(ccfg, ranks)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Run(ranks)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Fatal("checkpointed run not verified")
			}
			assertBitwiseEqual(t, ref.Particles, res.Particles, f.name+" checkpointed")
			if res.Recovery == nil {
				t.Fatal("checkpointed run has no recovery stats")
			}
			if want := cfg.Steps / 7; res.Recovery.Commits != want {
				t.Errorf("commits: got %d, want %d", res.Recovery.Commits, want)
			}
			if res.Recovery.Rollbacks != 0 || res.Recovery.Readmits != 0 || res.Recovery.Generations != 1 {
				t.Errorf("uninterrupted run reports recovery activity: %+v", *res.Recovery)
			}
		})
	}
}

// TestRecoveryBitwiseIdentical is the acceptance pin for the epoch
// lifecycle: a run where one rank's process is abruptly killed mid-epoch
// and a replacement is re-admitted must finish with bitwise-identical
// particles and balance decisions to an uninterrupted run — for all four
// drivers. Three "processes" (the coordinator and two workers, each with
// its own Engine and wire node over real loopback sockets) form the world;
// the victim severs its node with no handshake at step 25, between the
// commits at 20 and 30.
func TestRecoveryBitwiseIdentical(t *testing.T) {
	const (
		ranks    = 3
		every    = 10
		killStep = 25
	)
	cfg := testConfig(t, 16, 2000, 40)
	cfg.CheckpointEvery = every

	for _, f := range recoveryFactories() {
		t.Run(f.name, func(t *testing.T) {
			uninterrupted, err := f.make(cfg, ranks)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := uninterrupted.Run(ranks)
			if err != nil {
				t.Fatal(err)
			}

			rcfg := cfg
			rcfg.Recover = true
			coord, err := f.make(rcfg, ranks)
			if err != nil {
				t.Fatal(err)
			}
			healthy, err := f.make(rcfg, ranks)
			if err != nil {
				t.Fatal(err)
			}
			victim, err := f.make(rcfg, ranks)
			if err != nil {
				t.Fatal(err)
			}
			replacement, err := f.make(rcfg, ranks)
			if err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			var healthyErr, replacementErr error
			spawn := func(gen int, addr string) error {
				switch gen {
				case 0:
					wg.Add(2)
					go func() {
						defer wg.Done()
						healthyErr = healthy.RunElasticWorker("tcp", addr)
					}()
					go func() {
						defer wg.Done()
						// The victim behaves like a process that is SIGKILLed
						// mid-step: its node drops every connection with no
						// handshake and the "process" never comes back.
						node, err := wire.Join("tcp", addr, wire.JoinOptions{Count: 1, WantBase: -1})
						if err != nil {
							return
						}
						victim.StepHook = func(c *comm.Comm, step int) {
							if step == killStep {
								node.Kill()
							}
						}
						w := comm.NewTransportWorld(node, rcfg.WorldOptions())
						_, _ = victim.RunWorld(w)
					}()
				case 1:
					wg.Add(1)
					go func() {
						defer wg.Done()
						replacementErr = replacement.RunElasticWorker("tcp", addr)
					}()
				default:
					return fmt.Errorf("unexpected generation %d", gen)
				}
				return nil
			}
			res, err := coord.RunElastic(ElasticOptions{Network: "tcp", Ranks: ranks, SpawnWorkers: spawn})
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if healthyErr != nil {
				t.Fatalf("surviving worker: %v", healthyErr)
			}
			if replacementErr != nil {
				t.Fatalf("replacement worker: %v", replacementErr)
			}
			if !res.Verified {
				t.Fatal("recovered run not verified")
			}
			assertBitwiseEqual(t, ref.Particles, res.Particles, f.name+" recovered")
			if got, want := fmt.Sprint(res.BalanceLog), fmt.Sprint(ref.BalanceLog); got != want {
				t.Errorf("balance log diverged:\nref: %s\ngot: %s", want, got)
			}
			if res.Recovery == nil {
				t.Fatal("recovered run has no recovery stats")
			}
			want := RecoveryStats{Generations: 2, Commits: 4, Rollbacks: 1, Readmits: 1}
			if *res.Recovery != want {
				t.Errorf("recovery stats: got %+v, want %+v", *res.Recovery, want)
			}
		})
	}
}

// TestRunElasticValidation: the supervisor rejects configurations it cannot
// recover — no checkpoints, or a transport with no processes to lose.
func TestRunElasticValidation(t *testing.T) {
	cfg := testConfig(t, 16, 500, 10)
	eng := NewBaselineEngine(cfg)
	if _, err := eng.RunElastic(ElasticOptions{Network: "tcp", Ranks: 2}); err == nil {
		t.Error("RunElastic accepted a config without Recover/CheckpointEvery")
	}
	cfg.CheckpointEvery = 5
	cfg.Recover = true
	eng = NewBaselineEngine(cfg)
	if _, err := eng.RunElastic(ElasticOptions{Network: "inproc", Ranks: 2}); err == nil {
		t.Error("RunElastic accepted the inproc transport")
	}
}

// TestEpochNonBoundaryStepAllocationFree pins that the epoch refactor kept
// the steady-state step allocation-free with checkpointing armed: all
// checkpoint work is confined to boundary steps, so a non-boundary step
// through the state machine's step path allocates nothing.
func TestEpochNonBoundaryStepAllocationFree(t *testing.T) {
	cfg := testConfig(t, 16, 4000, 0)
	cfg.Verify = false
	cfg.Dist = nil // uniform: both ranks stay busy
	cfg.CheckpointEvery = 1 << 30
	eng := NewBaselineEngine(cfg)
	const runs = 10
	w := comm.NewWorld(2)
	err := w.Run(func(c *comm.Comm) error {
		r := &epochRunner{e: eng, c: c, cfg: cfg}
		if err := r.init(); err != nil {
			return err
		}
		defer r.sub.Close()
		step := 0
		stepFn := func() {
			step++
			if err := r.oneStep(step); err != nil {
				panic(err)
			}
			if r.sub.Count() == 0 {
				panic("no local particles — the step under test is trivial")
			}
		}
		for i := 0; i < 40; i++ {
			stepFn()
		}
		if c.Rank() == 0 {
			if avg := testing.AllocsPerRun(runs, stepFn); avg != 0 {
				return fmt.Errorf("non-boundary epoch step: %v allocs/step, want 0", avg)
			}
		} else {
			for i := 0; i < runs+1; i++ {
				stepFn()
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSubstrateCheckpointRoundTrip: each substrate's checkpoint blob
// restores onto a freshly built substrate of the same Config, and the
// restored rank continues stepping with identical state (the particles
// match field-for-field). Cross-config blobs are rejected with an error
// naming the mismatch.
func TestSubstrateCheckpointRoundTrip(t *testing.T) {
	cfg := testConfig(t, 16, 3000, 0)
	cfg.Verify = false
	subs := []struct {
		name string
		mk   func(c *comm.Comm, cfg Config) (Substrate, error)
	}{
		{"block", func(c *comm.Comm, cfg Config) (Substrate, error) {
			return newBlockSubstrate(c, cfg, 2, 1)
		}},
		{"vp", func(c *comm.Comm, cfg Config) (Substrate, error) {
			return newVPSubstrate(c, cfg, 4)
		}},
	}
	for _, tc := range subs {
		t.Run(tc.name, func(t *testing.T) {
			w := comm.NewWorld(2)
			err := w.Run(func(c *comm.Comm) error {
				s, err := tc.mk(c, cfg)
				if err != nil {
					return err
				}
				defer s.Close()
				rec := &trace.Recorder{}
				for i := 0; i < 5; i++ {
					if err := s.MoveExchange(rec); err != nil {
						return err
					}
				}
				blob, err := s.Checkpoint()
				if err != nil {
					return err
				}
				want := s.Particles()

				fresh, err := tc.mk(c, cfg)
				if err != nil {
					return err
				}
				defer fresh.Close()
				if err := fresh.Restore(blob); err != nil {
					return err
				}
				got := fresh.Particles()
				if len(got) != len(want) {
					return fmt.Errorf("restored %d particles, want %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						return fmt.Errorf("particle %d differs after restore:\nwant %+v\ngot  %+v", i, want[i], got[i])
					}
				}
				// Restored substrate keeps stepping in lockstep with the
				// original — derived structures were rebuilt correctly.
				for i := 0; i < 3; i++ {
					if err := s.MoveExchange(rec); err != nil {
						return err
					}
					if err := fresh.MoveExchange(rec); err != nil {
						return err
					}
				}
				a, b := s.Particles(), fresh.Particles()
				for i := range a {
					if a[i] != b[i] {
						return fmt.Errorf("diverged at particle %d after restored stepping", i)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSubstrateCheckpointRejectsMismatch: blobs from the wrong substrate
// family or a different mesh fail loudly.
func TestSubstrateCheckpointRejectsMismatch(t *testing.T) {
	cfg := testConfig(t, 16, 500, 0)
	cfg.Verify = false
	w := comm.NewWorld(1)
	err := w.Run(func(c *comm.Comm) error {
		block, err := newBlockSubstrate(c, cfg, 1, 1)
		if err != nil {
			return err
		}
		defer block.Close()
		vp, err := newVPSubstrate(c, cfg, 2)
		if err != nil {
			return err
		}
		defer vp.Close()

		blockBlob, err := block.Checkpoint()
		if err != nil {
			return err
		}
		vpBlob, err := vp.Checkpoint()
		if err != nil {
			return err
		}
		if err := block.Restore(vpBlob); err == nil {
			return fmt.Errorf("block substrate accepted a VP checkpoint")
		}
		if err := vp.Restore(blockBlob); err == nil {
			return fmt.Errorf("VP substrate accepted a block checkpoint")
		}
		if err := block.Restore([]byte("garbage")); err == nil {
			return fmt.Errorf("block substrate accepted garbage")
		}

		// A different mesh resolution is a different world.
		other := testConfig(t, 32, 500, 0)
		other.Verify = false
		block32, err := newBlockSubstrate(c, other, 1, 1)
		if err != nil {
			return err
		}
		defer block32.Close()
		if err := block32.Restore(blockBlob); err == nil {
			return fmt.Errorf("block substrate accepted a checkpoint for another mesh")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
