package driver

// The epoch-based engine lifecycle. A run is a sequence of epochs —
// CheckpointEvery steps bracketed by distributed checkpoint barriers —
// driven by a per-rank state machine:
//
//	Init ─→ Restore ─→ Steps ─→ Commit ─→ Steps ─→ … ─→ Finalize ─→ Done
//	            ↑                  │
//	            └──(next world generation after a rank loss)──┘
//
// Init constructs the substrate and policy from the Config (replayable by
// construction, so every generation starts from the identical state).
// Restore is the generation-start handshake: rank 0 broadcasts whether a
// committed epoch exists, and if so scatters the per-rank shards so every
// rank — survivor or replacement alike — adopts the committed state. Steps
// runs the unchanged per-step pipeline to the next epoch boundary; the
// boundary steps serialize each rank's full substrate state and gather the
// shards to rank 0 (Commit). Rollback and Readmit are cross-generation
// transitions owned by the supervisor (RunElastic in recovery.go): a lost
// rank unwinds every survivor's world with comm.ErrPeerLost, the rendezvous
// re-admits a replacement into the vacated slot, and the next generation's
// Restore resumes from the last commit — bitwise identical to an
// uninterrupted run, because the restart replays initialization and the
// shards carry every piece of divergent state (particles, cuts or VP
// placement, event ID cursor, balancer history, counters).
//
// With CheckpointEvery == 0 the machine degenerates to Init → Steps →
// Finalize, the pre-epoch pipeline: no handshake, no commits, and the
// steady-state step stays allocation-free either way (checkpoint work is
// confined to boundary steps).

import (
	"fmt"

	"github.com/parres/picprk/internal/balance"
	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/telemetry"
	"github.com/parres/picprk/internal/trace"
)

// rankShard is one rank's slice of a committed epoch: everything beyond the
// replayable Config that the rank needs to resume from the boundary step.
// Sub is the substrate checkpoint (see checkpoint.go); the rest is the
// engine-level state threaded through the step loop.
type rankShard struct {
	// Rank is the owning rank; Step the committed (completed) step.
	Rank, Step int
	// NextID is the injection ID cursor after Step's events.
	NextID uint64
	// MaxParticles is the rank's particle high-water mark up to Step.
	MaxParticles int
	// Bal is the balancer's history up to Step (its only checkpoint state —
	// see balance.HistoryRestorer).
	Bal []string
	// Sub is the substrate's serialized dynamic state.
	Sub []byte
}

// resumeInfo is the generation-start handshake rank 0 broadcasts: whether a
// committed epoch exists to resume from, and which step it ended on.
type resumeInfo struct {
	Resume bool
	Step   int
}

// epochPhase enumerates the per-rank lifecycle states.
type epochPhase int

const (
	phaseInit epochPhase = iota
	phaseRestore
	phaseSteps
	phaseCommit
	phaseFinalize
	phaseDone
)

// epochRunner is one rank's pass through the lifecycle: the state the old
// monolithic step loop kept on its stack, now threaded across phases.
type epochRunner struct {
	e   *Engine
	c   *comm.Comm
	cfg Config

	sub Substrate
	bal balance.Balancer
	es  eventState
	rec *trace.Recorder

	// Telemetry: when sampling, each step snapshots the recorder delta plus
	// the counters into the per-rank ring and/or the live aggregate. Both
	// sinks are nil-safe, and when sampling is off the step path touches
	// none of this — the steady-state step stays allocation-free and the
	// run is bitwise identical to an unsampled one.
	ring           *telemetry.Ring
	sampling       bool
	prevMigrations int
	prevBytes      int64
	prevXBytes     int64
	prevMsgsSent   int64
	prevMsgsElided int64
	lastWall       int64

	interval int
	needs    balance.Needs

	// step is the next step to run (1-based).
	step int
	res  *Result
}

// runRank is the per-rank lifecycle shared by every driver.
func (e *Engine) runRank(c *comm.Comm) (*Result, error) {
	r := &epochRunner{e: e, c: c, cfg: e.Cfg}
	defer func() {
		if r.sub != nil {
			r.sub.Close()
		}
	}()
	for ph := phaseInit; ph != phaseDone; {
		var err error
		if ph, err = r.advance(ph); err != nil {
			return nil, err
		}
	}
	return r.res, nil
}

// advance runs one phase and returns the successor.
func (r *epochRunner) advance(ph epochPhase) (epochPhase, error) {
	switch ph {
	case phaseInit:
		if err := r.init(); err != nil {
			return phaseDone, err
		}
		if r.cfg.CheckpointEvery > 0 {
			return phaseRestore, nil
		}
		return phaseSteps, nil
	case phaseRestore:
		if err := r.restore(); err != nil {
			return phaseDone, err
		}
		return phaseSteps, nil
	case phaseSteps:
		return r.runSteps()
	case phaseCommit:
		if err := r.commit(); err != nil {
			return phaseDone, err
		}
		if r.step > r.cfg.Steps {
			return phaseFinalize, nil
		}
		return phaseSteps, nil
	case phaseFinalize:
		if err := r.finalize(); err != nil {
			return phaseDone, err
		}
		return phaseDone, nil
	}
	return phaseDone, fmt.Errorf("driver: invalid epoch phase %d", ph)
}

// init constructs the rank's substrate, policy, and telemetry from the
// Config — deterministically, so every world generation initializes to the
// identical state before Restore diverges it.
func (r *epochRunner) init() error {
	sub, err := r.e.Substrate(r.c, r.cfg)
	if err != nil {
		return err
	}
	r.sub = sub
	r.bal = r.e.Balancer()
	r.es = newEventState(r.cfg)
	r.rec = &trace.Recorder{}
	r.rec.ObserveParticles(sub.Count())

	if r.cfg.Telemetry {
		capacity := r.cfg.TelemetryCap
		if capacity == 0 {
			capacity = r.cfg.Steps
		}
		r.ring = telemetry.NewRing(capacity)
	}
	r.sampling = r.ring != nil || r.cfg.Live != nil
	r.interval = r.bal.Interval()
	r.needs = r.bal.Needs()
	r.step = 1
	return nil
}

// restore is the generation-start handshake of a checkpointed run: rank 0
// consults the commit store and broadcasts whether there is a committed
// epoch to resume from; if so, it scatters the per-rank shards and every
// rank adopts its own. Survivors and replacements are indistinguishable
// here — both just initialized from scratch, and both adopt a shard.
func (r *epochRunner) restore() error {
	var info resumeInfo
	var shards []rankShard
	if r.c.Rank() == 0 && r.e.store != nil {
		info, shards = r.e.store.resume()
	}
	info = comm.Bcast(r.c, 0, info)
	if !info.Resume {
		return nil
	}
	if r.c.Rank() == 0 && len(shards) != r.c.Size() {
		return fmt.Errorf("driver: committed epoch has %d shards for %d ranks", len(shards), r.c.Size())
	}
	sh := comm.Scatter(r.c, 0, shards)
	if sh.Rank != r.c.Rank() || sh.Step != info.Step {
		return fmt.Errorf("driver: rank %d received shard for rank %d step %d (resuming step %d)",
			r.c.Rank(), sh.Rank, sh.Step, info.Step)
	}
	return r.adopt(sh)
}

// adopt installs a committed shard: substrate state, balancer history, the
// event ID cursor, the particle high-water mark, and the sampling deltas
// (so post-resume samples report per-step deltas against the restored
// cumulative counters, as an uninterrupted run would).
func (r *epochRunner) adopt(sh rankShard) error {
	if err := r.sub.Restore(sh.Sub); err != nil {
		return err
	}
	if hr, ok := r.bal.(balance.HistoryRestorer); ok {
		hr.RestoreHistory(append([]string(nil), sh.Bal...))
	}
	r.es.nextID = sh.NextID
	if sh.MaxParticles > r.rec.MaxParticles {
		r.rec.MaxParticles = sh.MaxParticles
	}
	r.prevMigrations, r.prevBytes = r.sub.MigrationStats()
	r.prevXBytes = r.sub.ExchangeBytes()
	r.prevMsgsSent, r.prevMsgsElided = r.c.ExchangeMsgStats()
	r.step = sh.Step + 1
	return nil
}

// runSteps runs the unchanged per-step pipeline to the next epoch boundary
// (step%CheckpointEvery == 0) or to the end of the run.
func (r *epochRunner) runSteps() (epochPhase, error) {
	every := r.cfg.CheckpointEvery
	for ; r.step <= r.cfg.Steps; r.step++ {
		if err := r.oneStep(r.step); err != nil {
			return phaseDone, err
		}
		if every > 0 && r.step%every == 0 {
			r.step++
			return phaseCommit, nil
		}
	}
	return phaseFinalize, nil
}

// commit is the epoch boundary: every rank serializes its substrate and the
// engine-level resume state into a rankShard, and the shards gather to rank
// 0, which records the commit transactionally — a rank lost mid-gather
// unwinds the world before the store updates, so the store never holds a
// partial epoch.
func (r *epochRunner) commit() error {
	stepDone := r.step - 1
	blob, err := r.sub.Checkpoint()
	if err != nil {
		return err
	}
	sh := rankShard{
		Rank:         r.c.Rank(),
		Step:         stepDone,
		NextID:       r.es.nextID,
		MaxParticles: r.rec.MaxParticles,
		Bal:          r.bal.History(),
		Sub:          blob,
	}
	shards := comm.Gather(r.c, 0, sh)
	if r.c.Rank() == 0 && r.e.store != nil {
		ev := r.e.store.commit(stepDone, shards, r.c.WallClockNS())
		r.cfg.Live.ObserveEvent(ev)
	}
	return nil
}

// oneStep is the per-step pipeline, verbatim from the pre-epoch engine:
// move+exchange, events, the balancing cadence, the ownership invariant,
// and sampling. It allocates nothing in the steady state.
func (r *epochRunner) oneStep(step int) error {
	if hook := r.e.StepHook; hook != nil {
		hook(r.c, step)
	}
	cfg, c, sub, bal, rec := r.cfg, r.c, r.sub, r.bal, r.rec
	if r.sampling {
		rec.StartStep()
		// Stamp the step start on the transport's offset-corrected wall
		// clock, clamped monotone per rank so the wall-clock Chrome trace
		// never renders a span that starts before its predecessor even if
		// a resync shifts the offset mid-run.
		if w := c.WallClockNS(); w > r.lastWall {
			r.lastWall = w
		} else {
			r.lastWall++
		}
	}
	decision := ""
	if err := sub.MoveExchange(rec); err != nil {
		return err
	}
	sub.ApplyEvents(&r.es, step)
	rec.ObserveParticles(sub.Count())

	if r.interval > 0 && step%r.interval == 0 {
		// Decision side: measure loads (collective) and compute the
		// plan; every rank reaches the identical plan from the
		// identical globally-reduced observation.
		var plan balance.Plan
		rec.Time(trace.Balance, func() {
			bal.Observe(sub.Measure(r.needs))
			plan = bal.Plan(step)
		})
		if !plan.Empty() {
			// Data side: execute the plan, then let the policy log it.
			var rehome bool
			var mErr error
			rec.Time(trace.Migrate, func() { rehome, mErr = sub.Execute(plan) })
			if mErr != nil {
				return mErr
			}
			bal.Apply(plan)
			if r.sampling {
				// Tag the step with the policy's own history line so the
				// timeline and -balancelog agree verbatim.
				if h := bal.History(); len(h) > 0 {
					decision = h[len(h)-1]
				}
			}
			if rehome {
				// Particles follow the new decomposition (accounted as
				// exchange, like any ownership change).
				if err := sub.Exchange(rec); err != nil {
					return err
				}
			}
		}
	}

	if err := sub.CheckOwnership(step); err != nil {
		return err
	}

	if r.sampling {
		migrations, bytes := sub.MigrationStats()
		xbytes := sub.ExchangeBytes()
		sent, elided := c.ExchangeMsgStats()
		s := telemetry.Sample{
			Step:            step,
			Rank:            c.Rank(),
			Phases:          rec.Snapshot(),
			Particles:       sub.Count(),
			Migrations:      migrations - r.prevMigrations,
			Bytes:           bytes - r.prevBytes,
			ExchangeBytes:   xbytes - r.prevXBytes,
			ExchangeOverlap: rec.SnapshotOverlap(),
			MsgsSent:        int(sent - r.prevMsgsSent),
			MsgsElided:      int(elided - r.prevMsgsElided),
			Decision:        decision,
			WallStartNS:     r.lastWall,
			ClockOffsetNS:   c.ClockOffsetNS(),
		}
		r.prevMigrations, r.prevBytes, r.prevXBytes = migrations, bytes, xbytes
		r.prevMsgsSent, r.prevMsgsElided = sent, elided
		r.ring.Append(s)
		cfg.Live.Observe(s)
	}
	return nil
}

// finalize gathers verification, telemetry, and stats to rank 0 and
// assembles the Result, attaching the epoch lifecycle record (events and
// recovery counters) when checkpointing was on.
func (r *epochRunner) finalize() error {
	ps := r.sub.Particles()
	merged, verified, err := gatherAndVerify(r.c, r.cfg, ps)
	if err != nil {
		return err
	}
	timeline := gatherTimeline(r.c, r.e.Name, r.cfg, r.ring)
	if r.ring != nil {
		// Collective on the same condition as gatherTimeline (every rank
		// builds a ring or none does, since Config is identical).
		rows := gatherPeerXchg(r.c, r.sub)
		if timeline != nil {
			timeline.PeerXchg = rows
		}
	}
	migrations, bytes := r.sub.MigrationStats()
	r.rec.Migrations = migrations
	res := collectResult(r.c, r.e.Name, r.cfg, r.rec, len(ps), bytes, r.sub.ExchangeBytes(), migrations)
	if res != nil {
		res.Verified = verified && (r.cfg.Verify || r.cfg.DistributedVerify)
		if r.cfg.Verify {
			res.Particles = merged
		}
		res.BalanceLog = r.bal.History()
		res.Timeline = timeline
		if st := r.e.store; st != nil {
			stats, events := st.summary()
			res.Recovery = &stats
			if res.Timeline != nil {
				res.Timeline.Events = events
			}
		}
	}
	r.res = res
	return nil
}
