package driver

import (
	"github.com/parres/picprk/internal/balance"
	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/diffusion"
)

// RunDiffusion executes the PIC PRK with the paper's "mpi-2d-LB" reference
// implementation (§IV-B): a 2D block decomposition whose x-direction cuts
// are periodically adjusted by a diffusion scheme — each heavy column of
// ranks cedes border cell-columns (mesh data and particles) to its lighter
// neighbor. The Cartesian-product decomposition is preserved throughout, so
// subdomains stay rectangular and the exchange stays regular.
func RunDiffusion(p int, cfg Config, params diffusion.Params) (*Result, error) {
	eng, err := NewDiffusionEngine(cfg, params)
	if err != nil {
		return nil, err
	}
	return eng.Run(p)
}

// NewDiffusionEngine builds the diffusion engine (2D decomposition, shaped
// from the world size at rank startup) without running it.
func NewDiffusionEngine(cfg Config, params diffusion.Params) (*Engine, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		Name: "diffusion",
		Cfg:  cfg,
		Substrate: func(c *comm.Comm, cfg Config) (Substrate, error) {
			px, py := comm.Dims2D(c.Size())
			return newBlockSubstrate(c, cfg, px, py)
		},
		Balancer: func() balance.Balancer { return &balance.DiffusionBalancer{Params: params} },
	}, nil
}

// RunDiffusion1D is RunDiffusion with the 1D block-column decomposition the
// paper uses to illustrate the diffusion scheme (Figure 3): every rank owns
// a full-height column block, and balancing moves whole cell-columns
// between linear neighbors.
func RunDiffusion1D(p int, cfg Config, params diffusion.Params) (*Result, error) {
	return runDiffusionShaped(p, p, 1, cfg, params)
}

func runDiffusionShaped(p, px, py int, cfg Config, params diffusion.Params) (*Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	eng := &Engine{
		Name: "diffusion",
		Cfg:  cfg,
		Substrate: func(c *comm.Comm, cfg Config) (Substrate, error) {
			return newBlockSubstrate(c, cfg, px, py)
		},
		Balancer: func() balance.Balancer { return &balance.DiffusionBalancer{Params: params} },
	}
	return eng.Run(p)
}
