package driver

import (
	"time"

	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/core"
	"github.com/parres/picprk/internal/decomp"
	"github.com/parres/picprk/internal/diffusion"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/trace"
)

// colsParcel carries migrated mesh columns between row neighbors after a
// boundary shift: the charge data of owned columns [X0, X0+W) for the
// sender's row range.
type colsParcel struct {
	X0   int
	W    int
	Cols []float64
}

// RunDiffusion executes the PIC PRK with the paper's "mpi-2d-LB" reference
// implementation (§IV-B): a 2D block decomposition whose x-direction cuts
// are periodically adjusted by a diffusion scheme — each heavy column of
// ranks cedes border cell-columns (mesh data and particles) to its lighter
// neighbor. The Cartesian-product decomposition is preserved throughout, so
// subdomains stay rectangular and the exchange stays regular.
func RunDiffusion(p int, cfg Config, params diffusion.Params) (*Result, error) {
	px, py := comm.Dims2D(p)
	return runDiffusionShaped(p, px, py, cfg, params)
}

// RunDiffusion1D is RunDiffusion with the 1D block-column decomposition the
// paper uses to illustrate the diffusion scheme (Figure 3): every rank owns
// a full-height column block, and balancing moves whole cell-columns
// between linear neighbors.
func RunDiffusion1D(p int, cfg Config, params diffusion.Params) (*Result, error) {
	return runDiffusionShaped(p, p, 1, cfg, params)
}

func runDiffusionShaped(p, px, py int, cfg Config, params diffusion.Params) (*Result, error) {
	if err := cfg.validate(p); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	var res *Result
	w := comm.NewWorld(p, comm.Options{ChaosDelay: cfg.Chaos, ChaosSeed: int64(cfg.Seed)})
	start := time.Now()
	err := w.Run(func(c *comm.Comm) error {
		r, err := diffusionRank(c, cfg, params, px, py)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			res = r
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Name = "diffusion"
	res.Elapsed = time.Since(start)
	return res, nil
}

func diffusionRank(c *comm.Comm, cfg Config, params diffusion.Params, px, py int) (*Result, error) {
	me := c.Rank()
	cart := comm.NewCart2D(c, px, py)
	g, err := decomp.NewUniform2D(cfg.Mesh.L, px, py)
	if err != nil {
		return nil, err
	}
	x0, y0, nx, ny := g.RankRect(me)
	block, err := grid.NewBlock(cfg.Mesh, x0, y0, nx, ny)
	if err != nil {
		return nil, err
	}
	owns := func(cx, cy int) bool { return g.OwnerOfCell(cx, cy) == me }
	owner := func(cx, cy int) int { return g.OwnerOfCell(cx, cy) }

	ps, err := initLocalParticles(cfg, owns)
	if err != nil {
		return nil, err
	}
	es := newEventState(cfg)
	rec := &trace.Recorder{}
	rec.ObserveParticles(len(ps))
	var bytesMigrated int64

	for step := 1; step <= cfg.Steps; step++ {
		rec.Time(trace.Compute, func() {
			core.MoveAll(ps, block, cfg.Mesh)
		})
		ps = exchangeParticles(c, cfg.Mesh, ps, owner, rec)
		ps = es.apply(cfg, step, ps, owns)
		rec.ObserveParticles(len(ps))

		if step%params.Every == 0 {
			var changedAny bool
			var lbErr error
			rec.Time(trace.Balance, func() {
				// Phase 1: balance the x-direction cuts from the globally
				// reduced per-cell-column particle histogram; every rank
				// computes the identical new bounds.
				hist := make([]int64, cfg.Mesh.L)
				for i := range ps {
					cx, _ := cfg.Mesh.CellOf(ps[i].X, ps[i].Y)
					hist[cx]++
				}
				hist = comm.Allreduce(c, hist, comm.Sum[int64])
				if newX, changed := diffusion.BalanceStepGuarded(g.X, hist, params); changed {
					ng := &decomp.Grid2D{PX: g.PX, PY: g.PY, X: newX, Y: g.Y.Clone()}
					nb, bytes, err := migrateColumns(cart, cfg.Mesh, g, ng, block)
					if err != nil {
						lbErr = err
						return
					}
					bytesMigrated += bytes
					rec.Migrations++
					g, block = ng, nb
					changedAny = true
				}
				if !params.TwoPhase {
					return
				}
				// Phase 2 (§IV-B): balance the y-direction cuts from row sums.
				rhist := make([]int64, cfg.Mesh.L)
				for i := range ps {
					_, cy := cfg.Mesh.CellOf(ps[i].X, ps[i].Y)
					rhist[cy]++
				}
				rhist = comm.Allreduce(c, rhist, comm.Sum[int64])
				if newY, changed := diffusion.BalanceStepGuarded(g.Y, rhist, params); changed {
					ng := &decomp.Grid2D{PX: g.PX, PY: g.PY, X: g.X.Clone(), Y: newY}
					nb, bytes, err := migrateRows(cart, cfg.Mesh, g, ng, block)
					if err != nil {
						lbErr = err
						return
					}
					bytesMigrated += bytes
					rec.Migrations++
					g, block = ng, nb
					changedAny = true
				}
			})
			if lbErr != nil {
				return nil, lbErr
			}
			if changedAny {
				// Particles follow the new decomposition (accounted as exchange).
				ps = exchangeParticles(c, cfg.Mesh, ps, owner, rec)
			}
		}

		if err := checkOwnership(cfg.Mesh, ps, owns, step); err != nil {
			return nil, err
		}
	}

	merged, verified, err := gatherAndVerify(c, cfg, ps)
	if err != nil {
		return nil, err
	}
	res := collectResult(c, "diffusion", cfg, rec, len(ps), bytesMigrated, rec.Migrations)
	if res != nil {
		res.Verified = verified && (cfg.Verify || cfg.DistributedVerify)
		if cfg.Verify {
			res.Particles = merged
		}
	}
	return res, nil
}

// migrateColumns rebuilds the local grid block after the x-cuts changed.
// Each rank ships the charge data of columns it loses to the row neighbor
// gaining them and validates what it receives against the formulaic field —
// the data volume is what the paper charges the diffusion scheme for.
// It returns the new block and the number of payload bytes sent.
func migrateColumns(cart *comm.Cart2D, m grid.Mesh, old, nw *decomp.Grid2D, block *grid.Block) (*grid.Block, int64, error) {
	me := cart.Comm.Rank()
	row := cart.Row
	oldX0, _, oldNX, _ := old.RankRect(me)
	newX0, newY0, newNX, newNY := nw.RankRect(me)

	// Build one parcel per row neighbor that gains columns I currently own.
	buckets := make([][]colsParcel, row.Size())
	var sent int64
	for opx := 0; opx < nw.PX; opx++ {
		if opx == cart.CX {
			continue
		}
		lo := maxInt(oldX0, nw.X.Lo(opx))
		hi := minInt(oldX0+oldNX, nw.X.Hi(opx))
		if lo >= hi {
			continue
		}
		cols, err := block.ExtractColumns(lo-oldX0, hi-lo)
		if err != nil {
			return nil, 0, err
		}
		buckets[opx] = append(buckets[opx], colsParcel{X0: lo, W: hi - lo, Cols: cols})
		sent += int64(8 * len(cols))
	}
	incoming := comm.SparseExchange(row, buckets)

	nb, err := grid.NewBlock(m, newX0, newY0, newNX, newNY)
	if err != nil {
		return nil, 0, err
	}
	for _, parcels := range incoming {
		for _, pc := range parcels {
			if err := nb.ValidateColumns(pc.Cols, pc.X0); err != nil {
				return nil, 0, err
			}
		}
	}
	return nb, sent, nil
}

// rowsParcel carries migrated mesh rows between column neighbors after a
// y-direction boundary shift (phase 2 of the two-phase scheme).
type rowsParcel struct {
	Y0   int
	H    int
	Rows []float64
}

// migrateRows is the y-direction analogue of migrateColumns: after the
// y-cuts changed, each rank ships the charge data of rows it loses to the
// column neighbor gaining them and validates what it receives.
func migrateRows(cart *comm.Cart2D, m grid.Mesh, old, nw *decomp.Grid2D, block *grid.Block) (*grid.Block, int64, error) {
	me := cart.Comm.Rank()
	col := cart.Col
	_, oldY0, _, oldNY := old.RankRect(me)
	newX0, newY0, newNX, newNY := nw.RankRect(me)

	buckets := make([][]rowsParcel, col.Size())
	var sent int64
	for opy := 0; opy < nw.PY; opy++ {
		if opy == cart.CY {
			continue
		}
		lo := maxInt(oldY0, nw.Y.Lo(opy))
		hi := minInt(oldY0+oldNY, nw.Y.Hi(opy))
		if lo >= hi {
			continue
		}
		rows, err := block.ExtractRows(lo-oldY0, hi-lo)
		if err != nil {
			return nil, 0, err
		}
		buckets[opy] = append(buckets[opy], rowsParcel{Y0: lo, H: hi - lo, Rows: rows})
		sent += int64(8 * len(rows))
	}
	incoming := comm.SparseExchange(col, buckets)

	nb, err := grid.NewBlock(m, newX0, newY0, newNX, newNY)
	if err != nil {
		return nil, 0, err
	}
	for _, parcels := range incoming {
		for _, pc := range parcels {
			if err := nb.ValidateRows(pc.Rows, pc.Y0); err != nil {
				return nil, 0, err
			}
		}
	}
	return nb, sent, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
