package driver

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/parres/picprk/internal/diffusion"
	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/model"
	"github.com/parres/picprk/internal/particle"
)

func TestWorkStealMatchesSequential(t *testing.T) {
	cfg := testConfig(t, 16, 2000, 40)
	ref := sequentialReference(t, cfg)
	params := WorkStealParams{Overdecompose: 4, Every: 6}
	for _, p := range []int{1, 2, 4, 6} {
		res, err := RunWorkSteal(p, cfg, params)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if !res.Verified {
			t.Fatalf("P=%d: not verified", p)
		}
		assertBitwiseEqual(t, ref, res.Particles, fmt.Sprintf("worksteal P=%d", p))
	}
}

func TestWorkStealWithEventsAndDistributedVerify(t *testing.T) {
	cfg := testConfig(t, 16, 1500, 30)
	cfg.Schedule = dist.Schedule{
		{Step: 10, Region: dist.Rect{X0: 2, X1: 8, Y0: 2, Y1: 8}, Inject: 400, M: 1},
		{Step: 20, Region: dist.Rect{X0: 0, X1: 6, Y0: 0, Y1: 16}, Remove: true},
	}
	ref := sequentialReference(t, cfg)
	res, err := RunWorkSteal(4, cfg, WorkStealParams{Overdecompose: 4, Every: 8})
	if err != nil {
		t.Fatal(err)
	}
	assertBitwiseEqual(t, ref, res.Particles, "worksteal+events")

	dcfg := cfg
	dcfg.Verify = false
	dcfg.DistributedVerify = true
	dres, err := RunWorkSteal(5, dcfg, WorkStealParams{Overdecompose: 2, Every: 5, Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !dres.Verified {
		t.Error("distributed verification did not pass")
	}
	if dres.Particles != nil {
		t.Error("distributed verification must not gather particles")
	}
}

func TestWorkStealActuallySteals(t *testing.T) {
	cfg := testConfig(t, 32, 5000, 40)
	cfg.Dist = dist.Geometric{R: 0.85}
	res, err := RunWorkSteal(4, cfg, WorkStealParams{Overdecompose: 4, Every: 5})
	if err != nil {
		t.Fatal(err)
	}
	moves := 0
	for _, s := range res.PerRank {
		moves += s.Migrations
	}
	if moves == 0 {
		t.Error("worksteal never moved a VP on a strongly skewed workload")
	}
	if len(res.BalanceLog) == 0 {
		t.Error("no balance log despite migrations")
	}
}

func TestWorkStealParamsValidation(t *testing.T) {
	cfg := testConfig(t, 16, 100, 5)
	if _, err := RunWorkSteal(2, cfg, WorkStealParams{}); err == nil {
		t.Error("zero params accepted")
	}
	if _, err := RunWorkSteal(2, cfg, WorkStealParams{Overdecompose: 4, Every: 5, Threshold: 1.5}); err == nil {
		t.Error("threshold above 1 accepted")
	}
	if _, err := RunWorkSteal(2, cfg, WorkStealParams{Overdecompose: 100, Every: 5}); err == nil {
		t.Error("VP grid larger than domain accepted")
	}
}

// TestAllPoliciesUnderChaos is the exchange-protocol stress for every
// balancing policy: random message delivery delays must not change a single
// particle bit in any of the four drivers.
func TestAllPoliciesUnderChaos(t *testing.T) {
	cfg := testConfig(t, 16, 1200, 24)
	cfg.Chaos = 300 * time.Microsecond
	cfg.Schedule = dist.Schedule{
		{Step: 8, Region: dist.Rect{X0: 2, X1: 10, Y0: 2, Y1: 10}, Inject: 300, M: 1},
		{Step: 16, Region: dist.Rect{X0: 0, X1: 8, Y0: 0, Y1: 16}, Remove: true},
	}
	ref := sequentialReference(t, cfg)
	for _, p := range []int{4, 5} {
		for _, run := range []struct {
			name string
			fn   func() (*Result, error)
		}{
			{"baseline", func() (*Result, error) { return RunBaseline(p, cfg) }},
			{"diffusion", func() (*Result, error) {
				return RunDiffusion(p, cfg, diffusion.Params{Every: 4, Threshold: 0.05, Width: 1, MinWidth: 2, TwoPhase: true})
			}},
			{"ampi", func() (*Result, error) { return RunAMPI(p, cfg, AMPIParams{Overdecompose: 4, Every: 6}) }},
			{"worksteal", func() (*Result, error) { return RunWorkSteal(p, cfg, WorkStealParams{Overdecompose: 4, Every: 6}) }},
		} {
			res, err := run.fn()
			if err != nil {
				t.Fatalf("%s P=%d: %v", run.name, p, err)
			}
			if !res.Verified {
				t.Fatalf("%s P=%d: not verified", run.name, p)
			}
			assertBitwiseEqual(t, ref, res.Particles, fmt.Sprintf("%s+chaos P=%d", run.name, p))
		}
	}
}

// TestEventIDContinuitySameStep pins the injection-ID protocol when removal
// and injection fire at the same step: every rank must advance the shared ID
// counter identically — including ranks that receive none of the injected
// particles — or later injections would mint colliding IDs.
func TestEventIDContinuitySameStep(t *testing.T) {
	cfg := testConfig(t, 16, 500, 1)
	cfg.Schedule = dist.Schedule{
		{Step: 1, Region: dist.Rect{X0: 0, X1: 8, Y0: 0, Y1: 16}, Remove: true},
		{Step: 1, Region: dist.Rect{X0: 1, X1: 5, Y0: 1, Y1: 5}, Inject: 100, M: 1},
		{Step: 1, Region: dist.Rect{X0: 8, X1: 12, Y0: 8, Y1: 12}, Inject: 50},
	}
	cfg.Schedule = cfg.Schedule.Sorted()

	// Four simulated ranks owning disjoint column stripes; the stripe
	// [12,16) overlaps neither injection region, so rank 3 receives nothing
	// and must still advance nextID past both batches.
	const ranks = 4
	states := make([]eventState, ranks)
	got := make([][]particle.Particle, ranks)
	for r := 0; r < ranks; r++ {
		states[r] = newEventState(cfg)
		lo, hi := r*4, (r+1)*4
		owns := func(cx, cy int) bool { return cx >= lo && cx < hi }
		got[r] = states[r].apply(cfg, 1, nil, owns)
	}
	want := uint64(cfg.N) + 1 + 100 + 50
	for r := 0; r < ranks; r++ {
		if states[r].nextID != want {
			t.Errorf("rank %d: nextID %d, want %d", r, states[r].nextID, want)
		}
	}
	if len(got[3]) != 0 {
		t.Errorf("rank 3 owns no injection cells but received %d particles", len(got[3]))
	}
	// Every injected ID appears exactly once across ranks, and the two
	// batches occupy contiguous, non-overlapping ID ranges.
	seen := map[uint64]int{}
	for r := 0; r < ranks; r++ {
		for i := range got[r] {
			seen[got[r][i].ID]++
		}
	}
	for id := uint64(cfg.N) + 1; id < want; id++ {
		if seen[id] != 1 {
			t.Fatalf("injected ID %d owned by %d ranks", id, seen[id])
		}
	}
	if len(seen) != 150 {
		t.Fatalf("%d distinct injected IDs, want 150", len(seen))
	}

	// End-to-end: the same-step schedule must stay bitwise-identical to the
	// sequential reference in all four drivers across rank counts.
	full := testConfig(t, 16, 1200, 24)
	full.Schedule = dist.Schedule{
		{Step: 12, Region: dist.Rect{X0: 0, X1: 8, Y0: 0, Y1: 16}, Remove: true},
		{Step: 12, Region: dist.Rect{X0: 1, X1: 7, Y0: 1, Y1: 7}, Inject: 300, M: 1},
		{Step: 18, Region: dist.Rect{X0: 8, X1: 14, Y0: 8, Y1: 14}, Inject: 200},
	}
	ref := sequentialReference(t, full)
	for _, p := range []int{2, 4} {
		for _, run := range []struct {
			name string
			fn   func() (*Result, error)
		}{
			{"baseline", func() (*Result, error) { return RunBaseline(p, full) }},
			{"diffusion", func() (*Result, error) {
				return RunDiffusion(p, full, diffusion.Params{Every: 5, Threshold: 0.05, Width: 1, MinWidth: 2})
			}},
			{"ampi", func() (*Result, error) { return RunAMPI(p, full, AMPIParams{Overdecompose: 4, Every: 6}) }},
			{"worksteal", func() (*Result, error) { return RunWorkSteal(p, full, WorkStealParams{Overdecompose: 4, Every: 6}) }},
		} {
			res, err := run.fn()
			if err != nil {
				t.Fatalf("%s P=%d: %v", run.name, p, err)
			}
			assertBitwiseEqual(t, ref, res.Particles, fmt.Sprintf("%s same-step events P=%d", run.name, p))
		}
	}
}

// TestModelDriverDecisionIdentity is the structural guarantee the balance
// package exists for: the performance model and the real driver run the
// same DiffusionBalancer, so for an event-free workload — where the model's
// analytic histogram equals the measured one exactly — their balancing
// histories must match string-for-string.
func TestModelDriverDecisionIdentity(t *testing.T) {
	cfg := testConfig(t, 32, 5000, 60)
	cfg.Dist = dist.Geometric{R: 0.85}
	params := diffusion.Params{Every: 5, Threshold: 0.05, Width: 1, MinWidth: 2}
	const p = 4

	res, err := RunDiffusion(p, cfg, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BalanceLog) == 0 {
		t.Fatal("driver produced no balancing decisions; the test would be vacuous")
	}

	w, err := model.NewWorkload(cfg.distConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, log := model.SimulateDiffusionTraced(model.Edison(), w, p, cfg.Steps, params)
	if !reflect.DeepEqual(res.BalanceLog, log) {
		t.Fatalf("decision histories diverge:\ndriver: %v\nmodel:  %v", res.BalanceLog, log)
	}
}

// TestBalanceLogMatchesMigrations cross-checks the log against the stats:
// a driver that reports migrations must have logged decisions and vice
// versa (for the block substrate, where each executed plan migrates).
func TestBalanceLogMatchesMigrations(t *testing.T) {
	cfg := testConfig(t, 32, 5000, 60)
	cfg.Dist = dist.Geometric{R: 0.85}
	res, err := RunDiffusion(4, cfg, diffusion.Params{Every: 5, Threshold: 0.05, Width: 1, MinWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	migrations := 0
	for _, s := range res.PerRank {
		migrations += s.Migrations
	}
	if (migrations > 0) != (len(res.BalanceLog) > 0) {
		t.Errorf("migrations=%d but %d log lines", migrations, len(res.BalanceLog))
	}
	base, err := RunBaseline(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.BalanceLog) != 0 {
		t.Errorf("baseline logged %d balancing decisions", len(base.BalanceLog))
	}
}
