package driver

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/parres/picprk/internal/diffusion"
	"github.com/parres/picprk/internal/dist"
)

// driverMatrix returns the four drivers as closures over cfg, the set every
// transport test sweeps.
func driverMatrix(p int, cfg Config) []struct {
	name string
	fn   func() (*Result, error)
} {
	return []struct {
		name string
		fn   func() (*Result, error)
	}{
		{"baseline", func() (*Result, error) { return RunBaseline(p, cfg) }},
		{"diffusion", func() (*Result, error) {
			return RunDiffusion(p, cfg, diffusion.Params{Every: 4, Threshold: 0.05, Width: 1, MinWidth: 2, TwoPhase: true})
		}},
		{"ampi", func() (*Result, error) { return RunAMPI(p, cfg, AMPIParams{Overdecompose: 4, Every: 6}) }},
		{"worksteal", func() (*Result, error) { return RunWorkSteal(p, cfg, WorkStealParams{Overdecompose: 4, Every: 6}) }},
	}
}

// TestWireTransportBitwiseIdentity is the acceptance gate for the wire
// transport: every driver over loopback sockets — each rank its own wire
// node, every payload serialized, framed, and decoded — must produce the
// byte-for-byte final particle state and BalanceLog of the in-process run.
// PerRank.BytesExchanged is deliberately not compared: in-process it is the
// framed-size estimate, on the wire it is the measured socket volume.
func TestWireTransportBitwiseIdentity(t *testing.T) {
	const p = 4
	base := testConfig(t, 16, 900, 20)
	base.Schedule = dist.Schedule{
		{Step: 6, Region: dist.Rect{X0: 2, X1: 10, Y0: 2, Y1: 10}, Inject: 200, M: 1},
		{Step: 14, Region: dist.Rect{X0: 0, X1: 8, Y0: 0, Y1: 16}, Remove: true},
	}
	networks := []string{TransportTCP, TransportUnix}
	for di := range driverMatrix(p, base) {
		for _, network := range networks {
			if network == TransportUnix && di != 0 {
				continue // unix: baseline only; the framing is network-agnostic
			}
			inCfg, wireCfg := base, base
			inCfg.Transport = TransportInproc
			wireCfg.Transport = network
			name := driverMatrix(p, inCfg)[di].name
			ref, err := driverMatrix(p, inCfg)[di].fn()
			if err != nil {
				t.Fatalf("%s in-process: %v", name, err)
			}
			got, err := driverMatrix(p, wireCfg)[di].fn()
			if err != nil {
				t.Fatalf("%s over %s: %v", name, network, err)
			}
			if !got.Verified {
				t.Fatalf("%s over %s: not verified", name, network)
			}
			assertBitwiseEqual(t, ref.Particles, got.Particles, fmt.Sprintf("%s over %s", name, network))
			if !reflect.DeepEqual(ref.BalanceLog, got.BalanceLog) {
				t.Fatalf("%s over %s: balance log diverged:\nin-process: %q\nwire:       %q",
					name, network, ref.BalanceLog, got.BalanceLog)
			}
			if ref.FinalParticles != got.FinalParticles || ref.MaxFinalParticles != got.MaxFinalParticles {
				t.Fatalf("%s over %s: totals diverged: %d/%d vs %d/%d", name, network,
					ref.FinalParticles, ref.MaxFinalParticles, got.FinalParticles, got.MaxFinalParticles)
			}
			for r, st := range got.PerRank {
				if st.FinalParticles != ref.PerRank[r].FinalParticles || st.MaxParticles != ref.PerRank[r].MaxParticles {
					t.Fatalf("%s over %s rank %d: particle accounting diverged", name, network, r)
				}
			}
		}
	}
}

// TestAllPoliciesChaosWire layers chaos-mode delivery delays on top of the
// socket transport for all four policies: delayed serialization, reordered
// frames, and the chaos-drain shutdown must still yield the exact sequential
// state. This is the wire counterpart of TestAllPoliciesUnderChaos.
func TestAllPoliciesChaosWire(t *testing.T) {
	const p = 4
	cfg := testConfig(t, 16, 800, 16)
	cfg.Transport = TransportTCP
	cfg.Chaos = 300 * time.Microsecond
	cfg.Schedule = dist.Schedule{
		{Step: 5, Region: dist.Rect{X0: 2, X1: 10, Y0: 2, Y1: 10}, Inject: 200, M: 1},
		{Step: 11, Region: dist.Rect{X0: 0, X1: 8, Y0: 0, Y1: 16}, Remove: true},
	}
	ref := sequentialReference(t, cfg)
	for _, run := range driverMatrix(p, cfg) {
		res, err := run.fn()
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if !res.Verified {
			t.Fatalf("%s: not verified", run.name)
		}
		assertBitwiseEqual(t, ref, res.Particles, run.name+"+chaos over tcp")
	}
}

// TestWireTransportTelemetry: the gathered timeline crosses the wire as a
// registered codec; sample content must survive the round trip.
func TestWireTransportTelemetry(t *testing.T) {
	cfg := testConfig(t, 16, 600, 10)
	cfg.Transport = TransportTCP
	cfg.Telemetry = true
	res, err := RunBaseline(4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline == nil {
		t.Fatal("no timeline over the wire")
	}
	if got := len(res.Timeline.Samples); got != 4*cfg.Steps {
		t.Fatalf("timeline has %d samples, want %d", got, 4*cfg.Steps)
	}
	for _, s := range res.Timeline.Samples {
		if s.Step < 1 || s.Step > cfg.Steps || s.Rank < 0 || s.Rank >= 4 {
			t.Fatalf("implausible sample %+v", s)
		}
	}
}

// TestTransportValidation pins the config-level transport checks.
func TestTransportValidation(t *testing.T) {
	cfg := testConfig(t, 8, 100, 2)
	cfg.Transport = "carrier-pigeon"
	if _, err := RunBaseline(2, cfg); err == nil {
		t.Fatal("unknown transport accepted")
	}
	cfg.Transport = ""
	t.Setenv("PICPRK_TRANSPORT", "osmosis")
	if got := cfg.ResolveTransport(); got != "osmosis" {
		t.Fatalf("env transport not picked up: %q", got)
	}
	if _, err := RunBaseline(2, cfg); err == nil {
		t.Fatal("unknown env transport accepted")
	}
	cfg.Transport = TransportInproc
	if got := cfg.ResolveTransport(); got != TransportInproc {
		t.Fatalf("explicit transport should beat the environment, got %q", got)
	}
}
