package driver

// Wire codecs for every payload the drivers route through internal/comm, so
// all four engines run unchanged over the socket transport. The traversals
// only write back when unpacking: packing a payload must not mutate it,
// because a chaos-delayed wire Ship serializes while the sending rank may
// still be reading the value it sent.

import (
	"time"

	"github.com/parres/picprk/internal/core"
	"github.com/parres/picprk/internal/pup"
	"github.com/parres/picprk/internal/telemetry"
)

// Driver payload kinds (range 50–69, see pup.Kind).
const (
	kindColsParcel pup.Kind = 50
	kindRowsParcel pup.Kind = 51
	kindVPParcels  pup.Kind = 52
	kindTimeline   pup.Kind = 53
	kindRankStats  pup.Kind = 54
	kindRankShard  pup.Kind = 55
	kindResumeInfo pup.Kind = 56
	kindPeerXchg   pup.Kind = 57
)

func pupDuration(p *pup.PUPer, d *time.Duration) {
	u := uint64(*d)
	p.Uint64(&u)
	if p.Mode() == pup.Unpacking {
		*d = time.Duration(u)
	}
}

func pupInt64(p *pup.PUPer, v *int64) {
	u := uint64(*v)
	p.Uint64(&u)
	if p.Mode() == pup.Unpacking {
		*v = int64(u)
	}
}

func pupColsParcel(p *pup.PUPer, c *colsParcel) {
	p.Int(&c.X0)
	p.Int(&c.W)
	p.Float64s(&c.Cols)
}

func pupRowsParcel(p *pup.PUPer, r *rowsParcel) {
	p.Int(&r.Y0)
	p.Int(&r.H)
	p.Float64s(&r.Rows)
}

func pupVPColParcel(p *pup.PUPer, e *vpColParcel) {
	p.Int(&e.VP)
	present := e.Cols != nil
	p.Bool(&present)
	if p.Mode() == pup.Unpacking {
		if present {
			e.Cols = &core.Columns{}
		} else {
			e.Cols = nil
		}
	}
	if present {
		core.PUPColumns(p, e.Cols)
	}
}

func pupSample(p *pup.PUPer, s *telemetry.Sample) {
	p.Int(&s.Step)
	p.Int(&s.Rank)
	for i := range s.Phases {
		pupDuration(p, &s.Phases[i])
	}
	p.Int(&s.Particles)
	p.Int(&s.Migrations)
	pupInt64(p, &s.Bytes)
	pupInt64(p, &s.ExchangeBytes)
	pupDuration(p, &s.ExchangeOverlap)
	p.Int(&s.MsgsSent)
	p.Int(&s.MsgsElided)
	p.String(&s.Decision)
	pupInt64(p, &s.WallStartNS)
	pupInt64(p, &s.ClockOffsetNS)
}

func pupPeerXchg(p *pup.PUPer, x *telemetry.PeerXchg) {
	p.Int(&x.Rank)
	pup.Slice(p, &x.Bytes, pupInt64)
	pup.Slice(p, &x.Msgs, pupInt64)
}

func pupRankTimeline(p *pup.PUPer, t *rankTimeline) {
	pup.Slice(p, &t.Samples, pupSample)
	p.Int(&t.Dropped)
}

func pupRankStats(p *pup.PUPer, s *RankStats) {
	p.Int(&s.Rank)
	pupDuration(p, &s.Compute)
	pupDuration(p, &s.Exchange)
	pupDuration(p, &s.Balance)
	pupDuration(p, &s.Migrate)
	pupDuration(p, &s.Overlap)
	p.Int(&s.FinalParticles)
	p.Int(&s.MaxParticles)
	p.Int(&s.Migrations)
	pupInt64(p, &s.BytesMigrated)
	pupInt64(p, &s.BytesExchanged)
	pupInt64(p, &s.MsgsSent)
	pupInt64(p, &s.MsgsElided)
}

func pupRankShard(p *pup.PUPer, s *rankShard) {
	p.Int(&s.Rank)
	p.Int(&s.Step)
	p.Uint64(&s.NextID)
	p.Int(&s.MaxParticles)
	pup.Slice(p, &s.Bal, func(p *pup.PUPer, line *string) { p.String(line) })
	p.ByteSlice(&s.Sub)
}

func pupResumeInfo(p *pup.PUPer, r *resumeInfo) {
	p.Bool(&r.Resume)
	p.Int(&r.Step)
}

func init() {
	pup.RegisterPtrCodec[colsParcel](kindColsParcel, pupColsParcel)
	pup.RegisterPtrCodec[rowsParcel](kindRowsParcel, pupRowsParcel)
	pup.RegisterPtrCodec[[]vpColParcel](kindVPParcels, func(p *pup.PUPer, v *[]vpColParcel) {
		pup.Slice(p, v, pupVPColParcel)
	})
	pup.RegisterCodec[rankTimeline](kindTimeline, pupRankTimeline)
	pup.RegisterCodec[RankStats](kindRankStats, pupRankStats)
	pup.RegisterCodec[rankShard](kindRankShard, pupRankShard)
	pup.RegisterCodec[resumeInfo](kindResumeInfo, pupResumeInfo)
	pup.RegisterCodec[telemetry.PeerXchg](kindPeerXchg, pupPeerXchg)
}
