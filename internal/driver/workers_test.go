package driver

import (
	"fmt"
	"testing"

	"github.com/parres/picprk/internal/balance"
	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/diffusion"
	"github.com/parres/picprk/internal/trace"
)

// TestWorkerCountBitwiseMatrix is the determinism matrix of the multicore
// move phase: all four drivers must produce bitwise the same final state as
// the sequential reference at every worker count. N is chosen so each
// rank's particle set exceeds the pool's inline threshold and the chunked
// parallel path genuinely runs.
func TestWorkerCountBitwiseMatrix(t *testing.T) {
	cfg := testConfig(t, 16, 4000, 30)
	ref := sequentialReference(t, cfg)
	const p = 2
	drivers := []struct {
		name string
		run  func(Config) (*Result, error)
	}{
		{"baseline", func(c Config) (*Result, error) { return RunBaseline(p, c) }},
		{"diffusion", func(c Config) (*Result, error) {
			return RunDiffusion(p, c, diffusion.Params{Every: 5, Threshold: 0.05, Width: 1, MinWidth: 2})
		}},
		{"ampi", func(c Config) (*Result, error) {
			return RunAMPI(p, c, AMPIParams{Overdecompose: 4, Every: 10})
		}},
		{"worksteal", func(c Config) (*Result, error) {
			return RunWorkSteal(p, c, WorkStealParams{Overdecompose: 4, Every: 10})
		}},
	}
	for _, d := range drivers {
		for _, workers := range []int{1, 2, 7} {
			c := cfg
			c.Workers = workers
			res, err := d.run(c)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", d.name, workers, err)
			}
			if !res.Verified {
				t.Fatalf("%s workers=%d: not verified", d.name, workers)
			}
			assertBitwiseEqual(t, ref, res.Particles, fmt.Sprintf("%s workers=%d", d.name, workers))
		}
	}
}

// TestEngineWithWorkersUnderRace exists for the -race CI job: ranks and
// move workers run concurrently on a particle set large enough that every
// rank's pool leaves the inline path, so the worker hand-off protocol is
// exercised under the race detector.
func TestEngineWithWorkersUnderRace(t *testing.T) {
	cfg := testConfig(t, 32, 8000, 12)
	cfg.Workers = 3
	ref := sequentialReference(t, cfg)
	res, err := RunBaseline(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwiseEqual(t, ref, res.Particles, "baseline workers=3 under race")
}

// TestMeasureOnePassReusedHistograms pins the single-pass histogram fill
// and the scratch reuse: consecutive Measure calls on the same substrate
// must return the same (correct) histograms, not accumulate into them.
func TestMeasureOnePassReusedHistograms(t *testing.T) {
	cfg := testConfig(t, 16, 1200, 0)
	w := comm.NewWorld(1)
	err := w.Run(func(c *comm.Comm) error {
		s, err := newBlockSubstrate(c, cfg, 1, 1)
		if err != nil {
			return err
		}
		defer s.Close()
		wantCells := make([]int64, cfg.Mesh.L)
		wantRows := make([]int64, cfg.Mesh.L)
		for i := 0; i < s.soa.Len(); i++ {
			cx, cy := cfg.Mesh.CellOf(s.soa.X[i], s.soa.Y[i])
			wantCells[cx]++
			wantRows[cy]++
		}
		needs := balance.Needs{Cells: true, Rows: true}
		for call := 0; call < 2; call++ {
			loads := s.Measure(needs)
			for cx := range wantCells {
				if loads.Cells[cx] != wantCells[cx] {
					return fmt.Errorf("call %d: cells[%d] = %d, want %d", call, cx, loads.Cells[cx], wantCells[cx])
				}
			}
			for cy := range wantRows {
				if loads.Rows[cy] != wantRows[cy] {
					return fmt.Errorf("call %d: rows[%d] = %d, want %d", call, cy, loads.Rows[cy], wantRows[cy])
				}
			}
		}
		// A cells-only measurement must still be correct after the
		// two-histogram pass (and vice versa).
		if loads := s.Measure(balance.Needs{Cells: true}); loads.Rows != nil {
			return fmt.Errorf("cells-only measure populated rows")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// BenchmarkBlockSubstrateStep measures one steady-state engine step (move +
// exchange) on a single-rank block substrate. Run with -benchmem: the move
// phase allocates nothing (pinned in internal/core) and the exchange only
// pays the collective's O(P) bookkeeping, so allocs/op should stay small
// and flat.
func BenchmarkBlockSubstrateStep(b *testing.B) {
	cfg := testConfig(b, 64, 50000, 0)
	cfg.Verify = false
	w := comm.NewWorld(1)
	err := w.Run(func(c *comm.Comm) error {
		s, err := newBlockSubstrate(c, cfg, 1, 1)
		if err != nil {
			return err
		}
		defer s.Close()
		rec := &trace.Recorder{}
		// Warm up the exchange scratch so steady state is measured.
		for i := 0; i < 3; i++ {
			s.Move()
			if err := s.Exchange(rec); err != nil {
				return err
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Move()
			if err := s.Exchange(rec); err != nil {
				return err
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(s.soa.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mparticle-steps/s")
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
