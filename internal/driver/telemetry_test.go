package driver

import (
	"fmt"
	"strings"
	"testing"

	"github.com/parres/picprk/internal/diffusion"
	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/telemetry"
	"github.com/parres/picprk/internal/trace"
)

// TestTimelineRecordedByAllDrivers asserts every driver emits the identical
// timeline shape: one sample per (step, rank), sorted, with per-step
// particle counts that sum to the global population.
func TestTimelineRecordedByAllDrivers(t *testing.T) {
	cfg := testConfig(t, 16, 2000, 20)
	cfg.Dist = dist.Geometric{R: 0.9}
	cfg.Telemetry = true
	const p = 4
	for _, run := range []struct {
		name string
		fn   func() (*Result, error)
	}{
		{"baseline", func() (*Result, error) { return RunBaseline(p, cfg) }},
		{"diffusion", func() (*Result, error) {
			return RunDiffusion(p, cfg, diffusion.Params{Every: 4, Threshold: 0.05, Width: 1, MinWidth: 2})
		}},
		{"ampi", func() (*Result, error) { return RunAMPI(p, cfg, AMPIParams{Overdecompose: 4, Every: 5}) }},
		{"worksteal", func() (*Result, error) { return RunWorkSteal(p, cfg, WorkStealParams{Overdecompose: 4, Every: 5}) }},
	} {
		res, err := run.fn()
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		tl := res.Timeline
		if tl == nil {
			t.Fatalf("%s: no timeline despite cfg.Telemetry", run.name)
		}
		if tl.Name != run.name || tl.P != p || tl.Steps != cfg.Steps {
			t.Errorf("%s: timeline header %q P=%d steps=%d", run.name, tl.Name, tl.P, tl.Steps)
		}
		if len(tl.Samples) != p*cfg.Steps {
			t.Fatalf("%s: %d samples, want %d", run.name, len(tl.Samples), p*cfg.Steps)
		}
		if tl.Dropped != 0 {
			t.Errorf("%s: dropped %d samples with an uncapped ring", run.name, tl.Dropped)
		}
		for i, s := range tl.Samples {
			step, rank := i/p+1, i%p
			if s.Step != step || s.Rank != rank {
				t.Fatalf("%s: sample %d is (step %d, rank %d), want (%d, %d)", run.name, i, s.Step, s.Rank, step, rank)
			}
		}
		// Per-step particle conservation: no events, so every step's ranks
		// sum to N.
		for _, st := range tl.StepStats() {
			if got := st.Load.Mean * float64(st.Load.N); got != float64(cfg.N) {
				t.Fatalf("%s: step %d holds %v particles, want %d", run.name, st.Step, got, cfg.N)
			}
		}
	}
}

// TestTimelineDecisionsMatchBalanceLog pins the decision tags: the
// non-empty decisions on rank 0's samples must reproduce BalanceLog line
// for line, and land on the balancer's cadence.
func TestTimelineDecisionsMatchBalanceLog(t *testing.T) {
	cfg := testConfig(t, 32, 5000, 60)
	cfg.Dist = dist.Geometric{R: 0.85}
	cfg.Telemetry = true
	params := diffusion.Params{Every: 5, Threshold: 0.05, Width: 1, MinWidth: 2}
	res, err := RunDiffusion(4, cfg, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BalanceLog) == 0 {
		t.Fatal("no balancing decisions; the test would be vacuous")
	}
	var tagged []string
	for _, s := range res.Timeline.Samples {
		if s.Rank != 0 || s.Decision == "" {
			continue
		}
		tagged = append(tagged, s.Decision)
		if s.Step%params.Every != 0 {
			t.Errorf("decision %q on step %d, off the every-%d cadence", s.Decision, s.Step, params.Every)
		}
		if s.Migrations == 0 {
			t.Errorf("step %d executed %q but reports no migrations", s.Step, s.Decision)
		}
	}
	if fmt.Sprint(tagged) != fmt.Sprint(res.BalanceLog) {
		t.Errorf("timeline decisions diverge from BalanceLog:\ntimeline: %v\nlog:      %v", tagged, res.BalanceLog)
	}
	// Decisions are global: every rank carries the same tag per step.
	for _, st := range res.Timeline.StepStats() {
		for _, s := range res.Timeline.Samples {
			if s.Step == st.Step && s.Decision != st.Decision {
				t.Fatalf("step %d: rank %d tag %q differs from %q", s.Step, s.Rank, s.Decision, st.Decision)
			}
		}
	}
}

// TestTelemetryPreservesResults is the acceptance criterion: sampling must
// not change a single particle bit or a single decision.
func TestTelemetryPreservesResults(t *testing.T) {
	cfg := testConfig(t, 32, 4000, 40)
	cfg.Dist = dist.Geometric{R: 0.88}
	params := diffusion.Params{Every: 4, Threshold: 0.05, Width: 1, MinWidth: 2}
	plain, err := RunDiffusion(4, cfg, params)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Telemetry = true
	cfg.Live = telemetry.NewLive(4)
	sampled, err := RunDiffusion(4, cfg, params)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwiseEqual(t, plain.Particles, sampled.Particles, "telemetry on vs off")
	if fmt.Sprint(plain.BalanceLog) != fmt.Sprint(sampled.BalanceLog) {
		t.Errorf("balance logs diverge:\noff: %v\non:  %v", plain.BalanceLog, sampled.BalanceLog)
	}
	if plain.Timeline != nil {
		t.Error("unsampled run grew a timeline")
	}

	// The live aggregate saw the run through to the last step.
	var sb strings.Builder
	cfg.Live.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), fmt.Sprintf("picprk_step %d", cfg.Steps)) {
		t.Errorf("live aggregate did not reach step %d:\n%s", cfg.Steps, sb.String())
	}
}

// TestTimelineRingCap asserts a capped ring keeps the most recent steps and
// accounts the evictions.
func TestTimelineRingCap(t *testing.T) {
	cfg := testConfig(t, 16, 1000, 30)
	cfg.Telemetry = true
	cfg.TelemetryCap = 10
	const p = 3
	res, err := RunBaseline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	if len(tl.Samples) != p*cfg.TelemetryCap {
		t.Fatalf("%d samples, want %d", len(tl.Samples), p*cfg.TelemetryCap)
	}
	if tl.Dropped != p*(cfg.Steps-cfg.TelemetryCap) {
		t.Errorf("dropped %d, want %d", tl.Dropped, p*(cfg.Steps-cfg.TelemetryCap))
	}
	if first := tl.Samples[0].Step; first != cfg.Steps-cfg.TelemetryCap+1 {
		t.Errorf("oldest retained step %d, want %d", first, cfg.Steps-cfg.TelemetryCap+1)
	}
	if last := tl.Samples[len(tl.Samples)-1].Step; last != cfg.Steps {
		t.Errorf("newest retained step %d, want %d", last, cfg.Steps)
	}
}

// TestTimelinePhaseAccounting sanity-checks the snapshot deltas: summing
// every sample's phases reproduces the run's cumulative per-rank stats.
func TestTimelinePhaseAccounting(t *testing.T) {
	cfg := testConfig(t, 16, 2000, 25)
	cfg.Telemetry = true
	res, err := RunAMPI(2, cfg, AMPIParams{Overdecompose: 4, Every: 5})
	if err != nil {
		t.Fatal(err)
	}
	totals := res.Timeline.PhaseTotals()
	var want trace.PhaseDurations
	for _, rs := range res.PerRank {
		want[trace.Compute] += rs.Compute
		want[trace.Exchange] += rs.Exchange
		want[trace.Balance] += rs.Balance
		want[trace.Migrate] += rs.Migrate
	}
	if totals != want {
		t.Errorf("timeline phase totals %v, per-rank stats %v", totals, want)
	}
}
