package driver

import (
	"testing"

	"github.com/parres/picprk/internal/comm"
)

// TestSparseExchangeMessageCounts pins the tentpole win at the driver level:
// with a narrow halo on 8 ranks, every exchange call posts only |neighbors|
// messages instead of the full P-1 ring, and the per-rank counters prove it.
//
// Geometry: L=64 on Dims2D(8) = 4×2 blocks of 16×32 cells, K=1 → rx=3 and
// M=1 → ry=1, both smaller than a block edge, so each rank's reachable set
// is exactly its torus 8-neighborhood: ±1 block in x (2 peers) plus the
// other row at its own and ±1 columns (3 peers — py=2 wraps cy±1 onto the
// same row) = 5 of the 7 possible peers.
func TestSparseExchangeMessageCounts(t *testing.T) {
	const p, steps = 8, 20
	cfg := testConfig(t, 64, 4000, steps)
	cfg.K, cfg.M = 1, 1
	res, err := RunBaseline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("baseline run did not verify")
	}
	px, py := comm.Dims2D(p)
	if px != 4 || py != 2 {
		t.Fatalf("Dims2D(8) = %dx%d, the 5-neighbor expectation assumes 4x2", px, py)
	}
	const neighbors = 5
	for _, s := range res.PerRank {
		if s.MsgsSent != neighbors*steps {
			t.Errorf("rank %d sent %d exchange messages, want %d (%d neighbors × %d steps)",
				s.Rank, s.MsgsSent, neighbors*steps, neighbors, steps)
		}
		if s.MsgsElided != (p-1-neighbors)*steps {
			t.Errorf("rank %d elided %d exchange messages, want %d",
				s.Rank, s.MsgsElided, (p-1-neighbors)*steps)
		}
		// The invariant the telemetry docs promise: sent+elided per call is
		// always P-1, so over the run it is (P-1) × exchange calls.
		if s.MsgsSent+s.MsgsElided != int64((p-1)*steps) {
			t.Errorf("rank %d sent+elided = %d, want %d",
				s.Rank, s.MsgsSent+s.MsgsElided, (p-1)*steps)
		}
	}
}

// TestFullRingWhenHaloCoversMesh pins the degenerate case: a displacement
// ring wider than any block makes every rank reachable, the derived schedule
// is the full ring, and nothing is elided — sparse bookkeeping must not
// undercount a genuinely dense exchange.
func TestFullRingWhenHaloCoversMesh(t *testing.T) {
	const p, steps = 4, 10
	cfg := testConfig(t, 16, 1000, steps)
	cfg.K, cfg.M = 8, 8 // rx=17, ry=8: wraps the whole 16-cell mesh
	res, err := RunBaseline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("baseline run did not verify")
	}
	for _, s := range res.PerRank {
		if s.MsgsSent != int64((p-1)*steps) || s.MsgsElided != 0 {
			t.Errorf("rank %d: sent %d elided %d, want %d sent and 0 elided",
				s.Rank, s.MsgsSent, s.MsgsElided, (p-1)*steps)
		}
	}
}
