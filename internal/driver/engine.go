package driver

import (
	"sync"
	"time"

	"github.com/parres/picprk/internal/balance"
	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/comm/wire"
	"github.com/parres/picprk/internal/particle"
	"github.com/parres/picprk/internal/telemetry"
	"github.com/parres/picprk/internal/trace"
)

// Substrate is what a driver variant contributes to the engine: the
// physical realization of particles and mesh data on one rank. The engine
// owns the step pipeline and the balancing cadence; the substrate owns how
// particles move, how leavers find their owner, and how a balance.Plan is
// executed against real data. Two substrates exist: the block substrate
// (static or diffusing 2D block decomposition) and the VP substrate
// (over-decomposed virtual processors with PUP migration).
type Substrate interface {
	// Move advances every local particle one time step (the compute phase).
	Move()
	// Exchange delivers boundary-crossing particles to their owners. It is
	// collective and accounts its time as trace.Exchange on rec.
	Exchange(rec *trace.Recorder) error
	// MoveExchange runs the fused tile-pipelined step: boundary particles
	// move first and their leavers go on the wire, interior particles move
	// while the exchange is in flight. Results are bitwise identical to
	// Move followed by Exchange; with Config.Tile == -1 it falls back to
	// exactly that sequence. Compute/Exchange time splits are accounted on
	// rec, plus the overlap credit (rec.AddOverlap).
	MoveExchange(rec *trace.Recorder) error
	// ApplyEvents fires the injection/removal events scheduled for step.
	ApplyEvents(es *eventState, step int)
	// Count returns the local particle count.
	Count() int
	// Measure collectively gathers the load observations a policy asked
	// for. All ranks must call it with the same Needs.
	Measure(n balance.Needs) balance.Loads
	// Execute applies a non-empty plan: migrating mesh data and/or VP
	// state. It returns rehome=true when particles must be re-exchanged
	// because their owning rank may have changed (block substrate; VP
	// migration moves particles with their VP, so it never rehomes).
	Execute(p balance.Plan) (rehome bool, err error)
	// CheckOwnership asserts every local particle is where the current
	// decomposition says it belongs — a cheap per-step invariant that
	// catches routing bugs long before verification would.
	CheckOwnership(step int) error
	// Particles returns the local particle set for verification.
	Particles() []particle.Particle
	// MigrationStats reports accumulated LB data movement: actions that
	// moved data to or from this rank, and payload bytes sent.
	MigrationStats() (migrations int, bytes int64)
	// ExchangeBytes reports accumulated particle-exchange payload bytes sent
	// by this rank, in the framed columnar wire size.
	ExchangeBytes() int64
	// Close releases per-rank resources (the move worker pool). The engine
	// calls it exactly once when the rank's pipeline exits.
	Close()
}

// Engine runs the PIC PRK step pipeline — init, move, exchange, events,
// balance, verify — for any combination of substrate and balancing policy.
// All four drivers (baseline, diffusion, ampi, worksteal) are thin
// wrappers over Engine.Run; no per-rank step loop exists outside it.
type Engine struct {
	// Name labels the Result ("baseline", "diffusion", ...).
	Name string
	// Cfg is the run configuration.
	Cfg Config
	// Substrate constructs one rank's substrate. It runs inside the SPMD
	// region; collective setup (communicator splits) is allowed and must
	// be performed by every rank in the same order.
	Substrate func(c *comm.Comm, cfg Config) (Substrate, error)
	// Balancer constructs one rank's policy instance. Instances must not
	// be shared between ranks (they hold per-rank observation state).
	Balancer func() balance.Balancer
}

// Run executes the engine on p ranks and returns rank 0's result. The
// transport resolved from Cfg decides the substrate: in-process goroutine
// ranks by default, or one wire node per rank over loopback sockets for
// "tcp"/"unix" — the latter exercises the full serialize/frame/deserialize
// path and must produce bitwise-identical results.
func (e *Engine) Run(p int) (*Result, error) {
	if err := e.Cfg.validate(p); err != nil {
		return nil, err
	}
	switch tr := e.Cfg.ResolveTransport(); tr {
	case TransportInproc:
		return e.RunWorld(comm.NewWorld(p, e.Cfg.WorldOptions()))
	default:
		return e.runWire(tr, p)
	}
}

// RunWorld executes the engine's rank pipeline on an already-constructed
// world — the entry point for picrun worker processes, whose world wraps a
// wire node joined to a remote rendezvous. It returns rank 0's result, or
// nil when this world does not host rank 0 (a worker's normal exit).
func (e *Engine) RunWorld(w *comm.World) (*Result, error) {
	if err := e.Cfg.validate(w.Size()); err != nil {
		return nil, err
	}
	var res *Result
	var resErr error
	start := time.Now()
	err := w.Run(func(c *comm.Comm) error {
		r, err := e.runRank(c)
		if c.Rank() == 0 {
			res, resErr = r, err
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	if resErr != nil {
		return nil, resErr
	}
	if res == nil {
		return nil, nil
	}
	res.Name = e.Name
	res.Elapsed = time.Since(start)
	return res, nil
}

// runWire runs the engine over a loopback socket cluster: p wire nodes in
// this process, one rank each, every payload crossing a real socket.
func (e *Engine) runWire(network string, p int) (*Result, error) {
	nodes, err := wire.LoopbackCluster(network, p)
	if err != nil {
		return nil, err
	}
	if e.Cfg.Live != nil {
		for _, n := range nodes {
			e.Cfg.Live.AddWireSource(n.WireReport)
		}
	}
	results := make([]*Result, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for i, n := range nodes {
		go func(i int, n *wire.Node) {
			defer wg.Done()
			results[i], errs[i] = e.RunWorld(comm.NewTransportWorld(n, e.Cfg.WorldOptions()))
		}(i, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if results[0] != nil {
		// Every node lives in this process, so rank 0's result can carry the
		// whole cluster's wire accounting (all peers, all offsets).
		rep := &telemetry.WireReport{}
		for _, n := range nodes {
			rep.Merge(n.WireReport())
		}
		results[0].Wire = rep
	}
	return results[0], nil
}

// runRank is the per-rank step pipeline shared by every driver.
func (e *Engine) runRank(c *comm.Comm) (*Result, error) {
	cfg := e.Cfg
	sub, err := e.Substrate(c, cfg)
	if err != nil {
		return nil, err
	}
	defer sub.Close()
	bal := e.Balancer()
	es := newEventState(cfg)
	rec := &trace.Recorder{}
	rec.ObserveParticles(sub.Count())

	// Telemetry: when sampling, each step snapshots the recorder delta plus
	// the counters into the per-rank ring and/or the live aggregate. Both
	// sinks are nil-safe, and when sampling is off the loop below touches
	// none of this — the steady-state step stays allocation-free and the
	// run is bitwise identical to an unsampled one.
	var ring *telemetry.Ring
	if cfg.Telemetry {
		capacity := cfg.TelemetryCap
		if capacity == 0 {
			capacity = cfg.Steps
		}
		ring = telemetry.NewRing(capacity)
	}
	sampling := ring != nil || cfg.Live != nil
	var prevMigrations int
	var prevBytes, prevXBytes int64
	var lastWall int64

	interval := bal.Interval()
	needs := bal.Needs()
	for step := 1; step <= cfg.Steps; step++ {
		if sampling {
			rec.StartStep()
			// Stamp the step start on the transport's offset-corrected wall
			// clock, clamped monotone per rank so the wall-clock Chrome trace
			// never renders a span that starts before its predecessor even if
			// a resync shifts the offset mid-run.
			if w := c.WallClockNS(); w > lastWall {
				lastWall = w
			} else {
				lastWall++
			}
		}
		decision := ""
		if err := sub.MoveExchange(rec); err != nil {
			return nil, err
		}
		sub.ApplyEvents(&es, step)
		rec.ObserveParticles(sub.Count())

		if interval > 0 && step%interval == 0 {
			// Decision side: measure loads (collective) and compute the
			// plan; every rank reaches the identical plan from the
			// identical globally-reduced observation.
			var plan balance.Plan
			rec.Time(trace.Balance, func() {
				bal.Observe(sub.Measure(needs))
				plan = bal.Plan(step)
			})
			if !plan.Empty() {
				// Data side: execute the plan, then let the policy log it.
				var rehome bool
				var mErr error
				rec.Time(trace.Migrate, func() { rehome, mErr = sub.Execute(plan) })
				if mErr != nil {
					return nil, mErr
				}
				bal.Apply(plan)
				if sampling {
					// Tag the step with the policy's own history line so the
					// timeline and -balancelog agree verbatim.
					if h := bal.History(); len(h) > 0 {
						decision = h[len(h)-1]
					}
				}
				if rehome {
					// Particles follow the new decomposition (accounted as
					// exchange, like any ownership change).
					if err := sub.Exchange(rec); err != nil {
						return nil, err
					}
				}
			}
		}

		if err := sub.CheckOwnership(step); err != nil {
			return nil, err
		}

		if sampling {
			migrations, bytes := sub.MigrationStats()
			xbytes := sub.ExchangeBytes()
			s := telemetry.Sample{
				Step:            step,
				Rank:            c.Rank(),
				Phases:          rec.Snapshot(),
				Particles:       sub.Count(),
				Migrations:      migrations - prevMigrations,
				Bytes:           bytes - prevBytes,
				ExchangeBytes:   xbytes - prevXBytes,
				ExchangeOverlap: rec.SnapshotOverlap(),
				Decision:        decision,
				WallStartNS:     lastWall,
				ClockOffsetNS:   c.ClockOffsetNS(),
			}
			prevMigrations, prevBytes, prevXBytes = migrations, bytes, xbytes
			ring.Append(s)
			cfg.Live.Observe(s)
		}
	}

	ps := sub.Particles()
	merged, verified, err := gatherAndVerify(c, cfg, ps)
	if err != nil {
		return nil, err
	}
	timeline := gatherTimeline(c, e.Name, cfg, ring)
	migrations, bytes := sub.MigrationStats()
	rec.Migrations = migrations
	res := collectResult(c, e.Name, cfg, rec, len(ps), bytes, sub.ExchangeBytes(), migrations)
	if res != nil {
		res.Verified = verified && (cfg.Verify || cfg.DistributedVerify)
		if cfg.Verify {
			res.Particles = merged
		}
		res.BalanceLog = bal.History()
		res.Timeline = timeline
	}
	return res, nil
}

// rankTimeline carries one rank's telemetry to rank 0.
type rankTimeline struct {
	Samples []telemetry.Sample
	Dropped int
}

// gatherTimeline merges every rank's sample ring into one Timeline at rank
// 0. It is collective when ring sampling is enabled (every rank constructs
// a ring or none does, since Config is identical) and a no-op otherwise.
func gatherTimeline(c *comm.Comm, name string, cfg Config, ring *telemetry.Ring) *telemetry.Timeline {
	if ring == nil {
		return nil
	}
	all := comm.Gather(c, 0, rankTimeline{Samples: ring.Samples(), Dropped: ring.Dropped()})
	if c.Rank() != 0 {
		return nil
	}
	perRank := make([][]telemetry.Sample, len(all))
	dropped := 0
	for i, rt := range all {
		perRank[i] = rt.Samples
		dropped += rt.Dropped
	}
	tl := telemetry.New(name, c.Size(), cfg.Steps, perRank...)
	tl.Dropped = dropped
	return tl
}
