package driver

import (
	"sync"
	"time"

	"github.com/parres/picprk/internal/balance"
	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/comm/wire"
	"github.com/parres/picprk/internal/particle"
	"github.com/parres/picprk/internal/telemetry"
	"github.com/parres/picprk/internal/trace"
)

// Substrate is what a driver variant contributes to the engine: the
// physical realization of particles and mesh data on one rank. The engine
// owns the step pipeline and the balancing cadence; the substrate owns how
// particles move, how leavers find their owner, and how a balance.Plan is
// executed against real data. Two substrates exist: the block substrate
// (static or diffusing 2D block decomposition) and the VP substrate
// (over-decomposed virtual processors with PUP migration).
type Substrate interface {
	// Move advances every local particle one time step (the compute phase).
	Move()
	// Exchange delivers boundary-crossing particles to their owners. It is
	// collective and accounts its time as trace.Exchange on rec.
	Exchange(rec *trace.Recorder) error
	// MoveExchange runs the fused tile-pipelined step: boundary particles
	// move first and their leavers go on the wire, interior particles move
	// while the exchange is in flight. Results are bitwise identical to
	// Move followed by Exchange; with Config.Tile == -1 it falls back to
	// exactly that sequence. Compute/Exchange time splits are accounted on
	// rec, plus the overlap credit (rec.AddOverlap).
	MoveExchange(rec *trace.Recorder) error
	// ApplyEvents fires the injection/removal events scheduled for step.
	ApplyEvents(es *eventState, step int)
	// Count returns the local particle count.
	Count() int
	// Measure collectively gathers the load observations a policy asked
	// for. All ranks must call it with the same Needs.
	Measure(n balance.Needs) balance.Loads
	// Execute applies a non-empty plan: migrating mesh data and/or VP
	// state. It returns rehome=true when particles must be re-exchanged
	// because their owning rank may have changed (block substrate; VP
	// migration moves particles with their VP, so it never rehomes).
	Execute(p balance.Plan) (rehome bool, err error)
	// CheckOwnership asserts every local particle is where the current
	// decomposition says it belongs — a cheap per-step invariant that
	// catches routing bugs long before verification would.
	CheckOwnership(step int) error
	// Particles returns the local particle set for verification.
	Particles() []particle.Particle
	// MigrationStats reports accumulated LB data movement: actions that
	// moved data to or from this rank, and payload bytes sent.
	MigrationStats() (migrations int, bytes int64)
	// ExchangeBytes reports accumulated particle-exchange payload bytes sent
	// by this rank, in the framed columnar wire size.
	ExchangeBytes() int64
	// PeerExchange reports the accumulated per-destination exchange matrix:
	// framed payload bytes and payload messages sent to each peer rank. The
	// slices are the substrate's own storage — read-only, valid until Close.
	PeerExchange() (bytes, msgs []int64)
	// Checkpoint serializes the rank's full dynamic state — everything not
	// derivable from the Config — through the PUP paths. Called only at
	// epoch boundaries, so the steady-state step stays allocation-free.
	Checkpoint() ([]byte, error)
	// Restore replaces the rank's dynamic state with a Checkpoint blob
	// taken on a substrate built from the identical Config (possibly in
	// another process — the blob is self-describing and validated). Derived
	// structures (owner tables, tile plans, frontier masks) are rebuilt.
	Restore(buf []byte) error
	// Close releases per-rank resources (the move worker pool). The engine
	// calls it exactly once when the rank's pipeline exits.
	Close()
}

// Engine runs the PIC PRK step pipeline — init, move, exchange, events,
// balance, verify — for any combination of substrate and balancing policy.
// All four drivers (baseline, diffusion, ampi, worksteal) are thin
// wrappers over Engine.Run; no per-rank step loop exists outside it.
type Engine struct {
	// Name labels the Result ("baseline", "diffusion", ...).
	Name string
	// Cfg is the run configuration.
	Cfg Config
	// Substrate constructs one rank's substrate. It runs inside the SPMD
	// region; collective setup (communicator splits) is allowed and must
	// be performed by every rank in the same order.
	Substrate func(c *comm.Comm, cfg Config) (Substrate, error)
	// Balancer constructs one rank's policy instance. Instances must not
	// be shared between ranks (they hold per-rank observation state).
	Balancer func() balance.Balancer

	// store holds the committed epoch shards across world generations when
	// checkpointing is on. Run installs a fresh one per invocation (before
	// dispatching rank goroutines — only rank 0 touches it mid-run, but
	// every rank reads the pointer); RunElastic pre-installs one and
	// preserves it across generations so a new world can resume.
	store *commitStore
	// StepHook, when set, runs at the top of every step on every rank —
	// fault-injection instrumentation: the chaos tests and picrun's
	// PICRUN_CHAOS_KILL hook kill a rank from it mid-run.
	StepHook func(c *comm.Comm, step int)
}

// Run executes the engine on p ranks and returns rank 0's result. The
// transport resolved from Cfg decides the substrate: in-process goroutine
// ranks by default, or one wire node per rank over loopback sockets for
// "tcp"/"unix" — the latter exercises the full serialize/frame/deserialize
// path and must produce bitwise-identical results.
func (e *Engine) Run(p int) (*Result, error) {
	if err := e.Cfg.validate(p); err != nil {
		return nil, err
	}
	if e.Cfg.CheckpointEvery > 0 {
		// Fresh store per Run, installed before the rank goroutines fan out
		// (runWire's concurrent RunWorld calls must not race on it). Only
		// RunWorld preserves an existing store — that is how RunElastic
		// carries the resume state across world generations.
		e.store = newCommitStore()
	}
	switch tr := e.Cfg.ResolveTransport(); tr {
	case TransportInproc:
		return e.RunWorld(comm.NewWorld(p, e.Cfg.WorldOptions()))
	default:
		return e.runWire(tr, p)
	}
}

// RunWorld executes the engine's rank pipeline on an already-constructed
// world — the entry point for picrun worker processes, whose world wraps a
// wire node joined to a remote rendezvous. It returns rank 0's result, or
// nil when this world does not host rank 0 (a worker's normal exit).
func (e *Engine) RunWorld(w *comm.World) (*Result, error) {
	if err := e.Cfg.validate(w.Size()); err != nil {
		return nil, err
	}
	if e.Cfg.CheckpointEvery > 0 && e.store == nil {
		e.store = newCommitStore()
	}
	var res *Result
	var resErr error
	start := time.Now()
	err := w.Run(func(c *comm.Comm) error {
		r, err := e.runRank(c)
		if c.Rank() == 0 {
			res, resErr = r, err
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	if resErr != nil {
		return nil, resErr
	}
	if res == nil {
		return nil, nil
	}
	res.Name = e.Name
	res.Elapsed = time.Since(start)
	return res, nil
}

// runWire runs the engine over a loopback socket cluster: p wire nodes in
// this process, one rank each, every payload crossing a real socket.
func (e *Engine) runWire(network string, p int) (*Result, error) {
	nodes, err := wire.LoopbackCluster(network, p)
	if err != nil {
		return nil, err
	}
	if e.Cfg.Live != nil {
		for _, n := range nodes {
			e.Cfg.Live.AddWireSource(n.WireReport)
		}
	}
	results := make([]*Result, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for i, n := range nodes {
		go func(i int, n *wire.Node) {
			defer wg.Done()
			results[i], errs[i] = e.RunWorld(comm.NewTransportWorld(n, e.Cfg.WorldOptions()))
		}(i, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if results[0] != nil {
		// Every node lives in this process, so rank 0's result can carry the
		// whole cluster's wire accounting (all peers, all offsets).
		rep := &telemetry.WireReport{}
		for _, n := range nodes {
			rep.Merge(n.WireReport())
		}
		results[0].Wire = rep
	}
	return results[0], nil
}

// rankTimeline carries one rank's telemetry to rank 0.
type rankTimeline struct {
	Samples []telemetry.Sample
	Dropped int
}

// gatherTimeline merges every rank's sample ring into one Timeline at rank
// 0. It is collective when ring sampling is enabled (every rank constructs
// a ring or none does, since Config is identical) and a no-op otherwise.
func gatherTimeline(c *comm.Comm, name string, cfg Config, ring *telemetry.Ring) *telemetry.Timeline {
	if ring == nil {
		return nil
	}
	all := comm.Gather(c, 0, rankTimeline{Samples: ring.Samples(), Dropped: ring.Dropped()})
	if c.Rank() != 0 {
		return nil
	}
	perRank := make([][]telemetry.Sample, len(all))
	dropped := 0
	for i, rt := range all {
		perRank[i] = rt.Samples
		dropped += rt.Dropped
	}
	tl := telemetry.New(name, c.Size(), cfg.Steps, perRank...)
	tl.Dropped = dropped
	return tl
}

// gatherPeerXchg collects every rank's per-peer exchange matrix row at rank
// 0. Collective; the rows are copied out of the substrate's live storage so
// the gathered Timeline owns its data.
func gatherPeerXchg(c *comm.Comm, sub Substrate) []telemetry.PeerXchg {
	bytes, msgs := sub.PeerExchange()
	row := telemetry.PeerXchg{
		Rank:  c.Rank(),
		Bytes: append([]int64(nil), bytes...),
		Msgs:  append([]int64(nil), msgs...),
	}
	rows := comm.Gather(c, 0, row)
	if c.Rank() != 0 {
		return nil
	}
	return rows
}
