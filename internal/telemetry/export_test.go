package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/parres/picprk/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden export files")

// checkGolden compares got against testdata/<name>, rewriting it under
// -update. The goldens pin the wire formats: a diff here is schema drift
// and must come with a Schema version bump (JSONL) or a deliberate
// trace-format change (Chrome).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/telemetry -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\ngot:\n%s\nwant:\n%s\n(if intentional, bump the schema/format and rerun with -update)", name, got, want)
	}
}

func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, fixtureTimeline()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "timeline.golden.jsonl", buf.Bytes())
}

func TestJSONLRoundTrip(t *testing.T) {
	tl := fixtureTimeline()
	tl.Dropped = 4
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tl); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tl, got) {
		t.Errorf("round trip changed the timeline:\nwrote %+v\nread  %+v", tl, got)
	}
}

func TestReadJSONLRejectsDrift(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"schema":"picprk/timeline/v999","impl":"x","ranks":1,"steps":1}`)); err == nil {
		t.Error("unknown schema version accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	bad := `{"schema":"` + Schema + `","impl":"x","ranks":1,"steps":1}` + "\n" +
		`{"step":1,"rank":0,"phase_ns":{"warp":5},"particles":1}` + "\n"
	if _, err := ReadJSONL(strings.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "warp") {
		t.Errorf("unknown phase name accepted (err=%v)", err)
	}
}

// TestReadJSONLAcceptsLegacy pins backward compatibility: each schema bump
// only added optional fields (v2: exchange_bytes, v3: exchange_overlap_ns,
// v4: wall_start_ns/clock_offset_ns), so older timelines must still parse,
// with absent fields reading as zero.
func TestReadJSONLAcceptsLegacy(t *testing.T) {
	for _, schema := range []string{"picprk/timeline/v1", "picprk/timeline/v2", "picprk/timeline/v3"} {
		in := `{"schema":"` + schema + `","impl":"x","ranks":1,"steps":1}` + "\n" +
			`{"step":1,"rank":0,"phase_ns":{"compute":5},"particles":1}` + "\n"
		tl, err := ReadJSONL(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%s timeline rejected: %v", schema, err)
		}
		if len(tl.Samples) != 1 || tl.Samples[0].ExchangeBytes != 0 || tl.Samples[0].ExchangeOverlap != 0 {
			t.Errorf("%s sample parsed wrong: %+v", schema, tl.Samples)
		}
		if tl.Samples[0].WallStartNS != 0 || tl.Samples[0].ClockOffsetNS != 0 {
			t.Errorf("%s sample invented wall stamps: %+v", schema, tl.Samples)
		}
	}
}

// TestMarshalSampleRoundTrip pins the per-sample JSON the /events SSE
// stream carries: identical to a v4 timeline line, and parseable back by
// UnmarshalSample (which is what picstat -follow does).
func TestMarshalSampleRoundTrip(t *testing.T) {
	tl := fixtureTimeline()
	for i := range tl.Samples {
		b, err := MarshalSample(&tl.Samples[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalSample(b)
		if err != nil {
			t.Fatalf("sample %d: %v\njson: %s", i, err, b)
		}
		if !reflect.DeepEqual(got, tl.Samples[i]) {
			t.Errorf("sample %d round trip drifted:\nwrote %+v\nread  %+v", i, tl.Samples[i], got)
		}
	}
	if _, err := UnmarshalSample([]byte(`{"phase_ns":{"warp":5}}`)); err == nil {
		t.Error("unknown phase name accepted")
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixtureTimeline()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome.golden.json", buf.Bytes())
}

// TestChromeTraceValid asserts the export is valid trace-event JSON of the
// shape Perfetto and chrome://tracing accept: a traceEvents array whose
// events all carry name/ph/pid, duration events a non-negative ts/dur,
// and instant events a scope.
func TestChromeTraceValid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixtureTimeline()); err != nil {
		t.Fatal(err)
	}
	var top struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(top.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	counts := map[string]int{}
	for i, ev := range top.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ev["name"] == "" || ph == "" || ev["pid"] == nil {
			t.Fatalf("event %d missing required fields: %v", i, ev)
		}
		counts[ph]++
		switch ph {
		case "X":
			ts, tsOK := ev["ts"].(float64)
			dur, durOK := ev["dur"].(float64)
			if !tsOK || !durOK || ts < 0 || dur <= 0 {
				t.Fatalf("duration event %d has bad ts/dur: %v", i, ev)
			}
		case "i":
			if s, _ := ev["s"].(string); s == "" {
				t.Fatalf("instant event %d missing scope: %v", i, ev)
			}
		}
	}
	// One duration event per nonzero phase, one instant per decision step,
	// metadata for the process and both rank threads, two counters per
	// sample (particles and exchange bytes) plus one per sample with
	// nonzero exchange overlap (both step-1 samples in the fixture).
	if counts["X"] == 0 || counts["M"] != 3 || counts["i"] != 1 || counts["C"] != 14 {
		t.Errorf("event mix %v", counts)
	}
}

// TestChromeTraceBSPAlignment pins the synthetic clock: all ranks start a
// step at the same ts, and the next step starts after the slowest rank of
// the previous one.
func TestChromeTraceBSPAlignment(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixtureTimeline()); err != nil {
		t.Fatal(err)
	}
	var top struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatal(err)
	}
	stepStart := map[int]float64{}
	for _, ev := range top.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		step := int(ev.Args["step"].(float64))
		first, seen := stepStart[step]
		// The first phase of each rank's step starts at the step boundary;
		// track the minimum ts per step and require both compute events
		// (phase index 0, always first per rank) to share it.
		if ev.Name != trace.Compute.String() {
			continue
		}
		if !seen {
			stepStart[step] = ev.TS
		} else if ev.TS != first {
			t.Errorf("step %d compute events start at %v and %v; ranks must align", step, first, ev.TS)
		}
	}
	// Step 1's slowest rank takes 7ms → step 2 starts at 7000µs.
	if got := stepStart[2]; got != 7000 {
		t.Errorf("step 2 starts at %vµs, want 7000 (slowest rank of step 1)", got)
	}
}

func TestChromeTraceWallGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTraceClock(&buf, fixtureTimeline(), ClockWall); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome_wall.golden.json", buf.Bytes())
}

// TestChromeTraceWallClock pins the wall-clock layout: spans anchor at each
// sample's recorded WallStartNS shifted to a zero base, per-rank timestamps
// are monotone with non-negative durations (the CI round-trip asserts the
// same on a real 2-rank TCP run), and the fixture's 200µs cross-rank skew
// survives into the trace instead of being synthesized away.
func TestChromeTraceWallClock(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTraceClock(&buf, fixtureTimeline(), ClockWall); err != nil {
		t.Fatal(err)
	}
	var top struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatal(err)
	}
	last := map[int]float64{}
	computeStart := map[int]map[int]float64{} // step -> rank -> ts
	for _, ev := range top.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Dur < 0 {
			t.Fatalf("negative duration span: %+v", ev)
		}
		if ev.TS < last[ev.TID] {
			t.Fatalf("rank %d timestamps went backwards: %v after %v", ev.TID, ev.TS, last[ev.TID])
		}
		last[ev.TID] = ev.TS
		if ev.Name == trace.Compute.String() {
			step := int(ev.Args["step"].(float64))
			if computeStart[step] == nil {
				computeStart[step] = map[int]float64{}
			}
			computeStart[step][ev.TID] = ev.TS
		}
	}
	if len(last) != 2 {
		t.Fatalf("spans on %d ranks, want 2", len(last))
	}
	// Rank 0's first step anchors the base (ts 0); rank 1 starts 200µs later.
	if computeStart[1][0] != 0 || computeStart[1][1] != 200 {
		t.Errorf("step 1 starts at rank0=%vµs rank1=%vµs, want 0 and 200 (recorded skew)",
			computeStart[1][0], computeStart[1][1])
	}
	// Step 2 starts at the recorded 10ms boundary, not the BSP 7ms one.
	if computeStart[2][0] != 10000 {
		t.Errorf("step 2 rank 0 starts at %vµs, want 10000 (wall clock, not BSP)", computeStart[2][0])
	}

	// A timeline without wall stamps (pre-v4, or serial runs of older
	// builds) must be refused, pointing at the BSP clock.
	bare := New("x", 1, 1, []Sample{{Step: 1, Rank: 0, Particles: 1}})
	if err := WriteChromeTraceClock(&buf, bare, ClockWall); err == nil {
		t.Error("wall-clock export accepted a timeline with no wall stamps")
	}
	if err := WriteChromeTraceClock(&buf, fixtureTimeline(), "lunar"); err == nil {
		t.Error("unknown clock accepted")
	}
}
