package telemetry

import (
	"testing"
	"time"

	"github.com/parres/picprk/internal/trace"
)

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRing(3)
	for step := 1; step <= 5; step++ {
		r.Append(Sample{Step: step})
	}
	if r.Len() != 3 {
		t.Fatalf("len %d, want 3", r.Len())
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped %d, want 2", r.Dropped())
	}
	got := r.Samples()
	for i, want := range []int{3, 4, 5} {
		if got[i].Step != want {
			t.Errorf("sample %d is step %d, want %d (oldest-first order after wrap)", i, got[i].Step, want)
		}
	}
}

func TestRingUnderCapacity(t *testing.T) {
	r := NewRing(10)
	r.Append(Sample{Step: 1})
	r.Append(Sample{Step: 2})
	if r.Dropped() != 0 {
		t.Errorf("dropped %d, want 0", r.Dropped())
	}
	got := r.Samples()
	if len(got) != 2 || got[0].Step != 1 || got[1].Step != 2 {
		t.Errorf("samples %+v", got)
	}
}

func TestNilSinksAreNoOps(t *testing.T) {
	var r *Ring
	var l *Live
	r.Append(Sample{Step: 1}) // must not panic
	l.Observe(Sample{Step: 1})
	if r.Len() != 0 || r.Dropped() != 0 || r.Samples() != nil {
		t.Error("nil ring reports samples")
	}
}

func TestNewSortsByStepThenRank(t *testing.T) {
	rank1 := []Sample{{Step: 1, Rank: 1}, {Step: 2, Rank: 1}}
	rank0 := []Sample{{Step: 1, Rank: 0}, {Step: 2, Rank: 0}}
	tl := New("x", 2, 2, rank1, rank0)
	want := [][2]int{{1, 0}, {1, 1}, {2, 0}, {2, 1}}
	for i, s := range tl.Samples {
		if s.Step != want[i][0] || s.Rank != want[i][1] {
			t.Fatalf("sample %d is (step %d, rank %d), want %v", i, s.Step, s.Rank, want[i])
		}
	}
}

// fixtureTimeline is the deterministic two-rank, three-step run the golden
// and analysis tests share: rank 1 is overloaded, a balancing decision
// fires at step 2 and evens the loads out by step 3.
func fixtureTimeline() *Timeline {
	mk := func(step, rank int, c, e, b, m, ov time.Duration, particles, migrations int, bytes, xbytes int64, decision string) Sample {
		s := Sample{Step: step, Rank: rank, Particles: particles, Migrations: migrations, Bytes: bytes, ExchangeBytes: xbytes, ExchangeOverlap: ov, Decision: decision}
		s.Phases[trace.Compute] = c
		s.Phases[trace.Exchange] = e
		s.Phases[trace.Balance] = b
		s.Phases[trace.Migrate] = m
		return s
	}
	ms := time.Millisecond
	rank0 := []Sample{
		mk(1, 0, 2*ms, 1*ms, 0, 0, 1*ms, 100, 0, 0, 4096, ""),
		mk(2, 0, 2*ms, 1*ms, 1*ms, 3*ms, 0, 150, 1, 2048, 2128, "step=2 x=[0 5 8]"),
		mk(3, 0, 3*ms, 1*ms, 0, 0, 0, 200, 0, 0, 128, ""),
	}
	rank1 := []Sample{
		mk(1, 1, 6*ms, 1*ms, 0, 0, 500*time.Microsecond, 300, 0, 0, 8192, ""),
		mk(2, 1, 5*ms, 1*ms, 1*ms, 2*ms, 0, 250, 1, 1024, 1648, "step=2 x=[0 5 8]"),
		mk(3, 1, 3*ms, 1*ms, 0, 0, 0, 200, 0, 0, 128, ""),
	}
	// Wall stamps on a fixed epoch: rank 1's process clock runs 150µs behind
	// rank 0's, so its corrected stamps carry the offset and its steps start
	// 200µs after rank 0's (visible skew in the wall-clock trace).
	const wallBase = int64(1_700_000_000_000_000_000)
	for i := range rank0 {
		rank0[i].WallStartNS = wallBase + int64(i)*10_000_000
	}
	for i := range rank1 {
		rank1[i].WallStartNS = wallBase + int64(i)*10_000_000 + 200_000
		rank1[i].ClockOffsetNS = 150_000
	}
	// Each exchange posts one message and elides none (P=2: the only peer is
	// always a neighbor) — exercises the v6 sample fields.
	for i := range rank0 {
		rank0[i].MsgsSent, rank1[i].MsgsSent = 1, 1
	}
	tl := New("diffusion", 2, 3, rank0, rank1)
	// One committed epoch at step 2 — exercises the v5 event lines.
	tl.Events = []Event{
		{Kind: EventCommit, Step: 2, Gen: 0, Rank: -1, WallNS: wallBase + 15_000_000},
	}
	// Per-peer exchange matrix rows — exercises the v6 matrix lines.
	tl.PeerXchg = []PeerXchg{
		{Rank: 0, Bytes: []int64{0, 6352}, Msgs: []int64{0, 3}},
		{Rank: 1, Bytes: []int64{9968, 0}, Msgs: []int64{3, 0}},
	}
	return tl
}

func TestStepStats(t *testing.T) {
	ss := fixtureTimeline().StepStats()
	if len(ss) != 3 {
		t.Fatalf("%d step stats, want 3", len(ss))
	}
	// Step 1: rank 1 totals 7ms, rank 0 totals 3ms → wall 7ms.
	if ss[0].Wall != 7*time.Millisecond {
		t.Errorf("step 1 wall %v, want 7ms", ss[0].Wall)
	}
	if ss[0].Load.Max != 300 || ss[0].Load.Mean != 200 {
		t.Errorf("step 1 load %+v", ss[0].Load)
	}
	if ss[0].Load.Imbalance != 1.5 {
		t.Errorf("step 1 imbalance %v, want 1.5", ss[0].Load.Imbalance)
	}
	if ss[1].Decision == "" || ss[1].Migrations != 2 || ss[1].Bytes != 3072 {
		t.Errorf("step 2 decision/migrations/bytes: %+v", ss[1])
	}
	// Exchange bytes sum over ranks per step.
	if ss[0].ExchangeBytes != 12288 || ss[1].ExchangeBytes != 3776 || ss[2].ExchangeBytes != 256 {
		t.Errorf("exchange bytes per step: %d, %d, %d; want 12288, 3776, 256",
			ss[0].ExchangeBytes, ss[1].ExchangeBytes, ss[2].ExchangeBytes)
	}
	if ss[2].Load.Imbalance != 1 {
		t.Errorf("step 3 imbalance %v, want 1 (balanced)", ss[2].Load.Imbalance)
	}
	// Overlap sums over ranks: step 1 has 1ms + 0.5ms of hidden exchange.
	if ss[0].Overlap != 1500*time.Microsecond || ss[1].Overlap != 0 {
		t.Errorf("overlap per step: %v, %v; want 1.5ms, 0", ss[0].Overlap, ss[1].Overlap)
	}
	// Phase sums over ranks.
	if ss[0].Phases[trace.Compute] != 8*time.Millisecond {
		t.Errorf("step 1 compute sum %v, want 8ms", ss[0].Phases[trace.Compute])
	}
}

func TestPhaseTotals(t *testing.T) {
	tot := fixtureTimeline().PhaseTotals()
	if tot[trace.Compute] != 21*time.Millisecond {
		t.Errorf("compute total %v, want 21ms", tot[trace.Compute])
	}
	if tot[trace.Exchange] != 6*time.Millisecond {
		t.Errorf("exchange total %v, want 6ms", tot[trace.Exchange])
	}
	if tot[trace.Migrate] != 5*time.Millisecond {
		t.Errorf("migrate total %v, want 5ms", tot[trace.Migrate])
	}
}

func TestWorstSteps(t *testing.T) {
	ss := fixtureTimeline().StepStats()
	worst := WorstSteps(ss, 2)
	if len(worst) != 2 {
		t.Fatalf("%d worst steps, want 2", len(worst))
	}
	// Step 2 rank 1: 5+1+1+2 = 9ms wall; step 1: 7ms.
	if worst[0].Step != 2 || worst[1].Step != 1 {
		t.Errorf("worst order %d, %d; want 2, 1", worst[0].Step, worst[1].Step)
	}
	if got := WorstSteps(ss, 10); len(got) != 3 {
		t.Errorf("over-asking returned %d steps", len(got))
	}
	// Input order is preserved.
	if ss[0].Step != 1 || ss[1].Step != 2 {
		t.Error("WorstSteps mutated its input")
	}
}

// TestSamplingDisabledAllocationFree pins the tentpole constraint: the
// per-step telemetry path must not allocate when telemetry is disabled —
// nil sinks swallow samples and the recorder snapshot is a value copy — so
// enabling the engine's sampling hooks costs nothing on unsampled runs.
func TestSamplingDisabledAllocationFree(t *testing.T) {
	var ring *Ring
	var live *Live
	rec := &trace.Recorder{}
	rec.Add(trace.Compute, time.Second)
	if avg := testing.AllocsPerRun(100, func() {
		rec.StartStep()
		rec.Add(trace.Exchange, time.Millisecond)
		s := Sample{Step: 1, Rank: 0, Phases: rec.Snapshot(), Particles: 42}
		ring.Append(s)
		live.Observe(s)
	}); avg != 0 {
		t.Errorf("disabled telemetry: %v allocs per step, want 0", avg)
	}
}

// TestSamplingEnabledAllocationFree goes further: even with telemetry on,
// the steady-state step stays off the allocator once the ring reached
// capacity (Live is atomic stores throughout).
func TestSamplingEnabledAllocationFree(t *testing.T) {
	ring := NewRing(8)
	live := NewLive(1)
	rec := &trace.Recorder{}
	for i := 0; i < 8; i++ {
		ring.Append(Sample{Step: i})
	}
	if avg := testing.AllocsPerRun(100, func() {
		rec.StartStep()
		s := Sample{Step: 9, Rank: 0, Phases: rec.Snapshot()}
		ring.Append(s)
		live.Observe(s)
	}); avg != 0 {
		t.Errorf("enabled telemetry: %v allocs per step, want 0", avg)
	}
}
