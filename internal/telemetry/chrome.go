package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/parres/picprk/internal/trace"
)

// Chrome trace-event export: the timeline rendered in the JSON format that
// chrome://tracing and Perfetto load directly. Ranks map to threads of one
// process, phases to duration ("X") events, particle counts to counter
// ("C") tracks, and balancer decisions to instant ("i") events.
//
// Two clocks are available. The default synthetic bulk-synchronous clock
// lays steps out as if all ranks started each step together and the step
// ended when its slowest rank did — which is how the exchange collective
// actually synchronizes the ranks, makes per-step idle time (imbalance)
// visible as gaps, and is deterministic for golden tests. The wall clock
// (ClockWall) instead anchors every rank's step at its recorded
// WallStartNS — real, offset-corrected timestamps on rank 0's clock — which
// is the view that shows cross-rank skew, wire queueing, and rendezvous
// stalls in a genuine multi-process run.

// chromeEvent is one trace event. Fields follow the Trace Event Format;
// ts and dur are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid,omitempty"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level object Perfetto accepts.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePID = 1

// Clock selectors for WriteChromeTraceClock.
const (
	ClockBSP  = "bsp"  // synthetic bulk-synchronous clock (default, deterministic)
	ClockWall = "wall" // recorded offset-corrected wall-clock timestamps
)

func usec(d int64) float64 { return float64(d) / 1e3 }

// WriteChromeTrace writes the timeline as Chrome trace-event JSON on the
// synthetic BSP clock.
func WriteChromeTrace(w io.Writer, tl *Timeline) error {
	return WriteChromeTraceClock(w, tl, ClockBSP)
}

// WriteChromeTraceClock writes the timeline as Chrome trace-event JSON on
// the chosen clock (ClockBSP or ClockWall).
func WriteChromeTraceClock(w io.Writer, tl *Timeline, clock string) error {
	switch clock {
	case "", ClockBSP:
		return writeChromeBSP(w, tl)
	case ClockWall:
		return writeChromeWall(w, tl)
	default:
		return fmt.Errorf("telemetry: unknown trace clock %q (want %q or %q)", clock, ClockBSP, ClockWall)
	}
}

// chromeHeader emits the process/thread metadata events shared by both
// clock modes.
func chromeHeader(tl *Timeline, label string) []chromeEvent {
	events := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: chromePID,
		Args: map[string]any{"name": label},
	}}
	seenRank := map[int]bool{}
	for i := range tl.Samples {
		r := tl.Samples[i].Rank
		if !seenRank[r] {
			seenRank[r] = true
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", PID: chromePID, TID: r,
				Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
			})
		}
	}
	return events
}

func writeChromeBSP(w io.Writer, tl *Timeline) error {
	events := chromeHeader(tl, "picprk "+tl.Name)

	// clock is the synthetic BSP step-start time in nanoseconds; samples are
	// sorted by (step, rank), so each group of equal-step samples is
	// contiguous.
	var clock int64
	for lo := 0; lo < len(tl.Samples); {
		hi := lo
		for hi < len(tl.Samples) && tl.Samples[hi].Step == tl.Samples[lo].Step {
			hi++
		}
		var slowest int64
		for _, s := range tl.Samples[lo:hi] {
			ts := clock
			for _, p := range trace.Phases() {
				d := s.Phases[p].Nanoseconds()
				if d <= 0 {
					continue
				}
				events = append(events, chromeEvent{
					Name: p.String(), Cat: "phase", Ph: "X",
					PID: chromePID, TID: s.Rank,
					TS: usec(ts), Dur: usec(d),
					Args: map[string]any{"step": s.Step},
				})
				ts += d
			}
			if ts-clock > slowest {
				slowest = ts - clock
			}
			events = append(events, chromeEvent{
				Name: fmt.Sprintf("particles rank %d", s.Rank), Ph: "C",
				PID: chromePID, TS: usec(clock),
				Args: map[string]any{"particles": s.Particles},
			})
			events = append(events, chromeEvent{
				Name: fmt.Sprintf("exchange bytes rank %d", s.Rank), Ph: "C",
				PID: chromePID, TS: usec(clock),
				Args: map[string]any{"bytes": s.ExchangeBytes},
			})
			if s.ExchangeOverlap > 0 {
				events = append(events, chromeEvent{
					Name: fmt.Sprintf("exchange overlap us rank %d", s.Rank), Ph: "C",
					PID: chromePID, TS: usec(clock),
					Args: map[string]any{"overlap_us": usec(s.ExchangeOverlap.Nanoseconds())},
				})
			}
			// Decisions are global (every rank computes the identical plan),
			// so one instant event per step suffices.
			if s.Decision != "" && s.Rank == tl.Samples[lo].Rank {
				events = append(events, chromeEvent{
					Name: s.Decision, Cat: "balance", Ph: "i",
					PID: chromePID, TID: s.Rank, TS: usec(ts), S: "g",
				})
			}
		}
		clock += slowest
		lo = hi
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// writeChromeWall renders the timeline on real wall-clock time: each
// sample's phase spans start at its recorded WallStartNS (offset-corrected
// onto rank 0's clock by the transport), shifted so the earliest sample
// sits at t=0. The engine records WallStartNS monotone per rank, so every
// rank's track is monotone and no span has negative duration — the property
// the CI round-trip job asserts on a 2-rank TCP run.
func writeChromeWall(w io.Writer, tl *Timeline) error {
	var base int64
	stamped := false
	for i := range tl.Samples {
		if ns := tl.Samples[i].WallStartNS; ns != 0 && (!stamped || ns < base) {
			base, stamped = ns, true
		}
	}
	if !stamped {
		return fmt.Errorf("telemetry: timeline has no wall-clock stamps (schema v3 or older, or recorded without sampling); use the bsp clock")
	}

	events := chromeHeader(tl, "picprk "+tl.Name+" (wall clock)")
	lastOffset := map[int]int64{}
	for i := range tl.Samples {
		s := &tl.Samples[i]
		if s.WallStartNS == 0 {
			continue
		}
		start := s.WallStartNS - base
		ts := start
		for _, p := range trace.Phases() {
			d := s.Phases[p].Nanoseconds()
			if d <= 0 {
				continue
			}
			events = append(events, chromeEvent{
				Name: p.String(), Cat: "phase", Ph: "X",
				PID: chromePID, TID: s.Rank,
				TS: usec(ts), Dur: usec(d),
				Args: map[string]any{"step": s.Step},
			})
			ts += d
		}
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("particles rank %d", s.Rank), Ph: "C",
			PID: chromePID, TS: usec(start),
			Args: map[string]any{"particles": s.Particles},
		})
		if s.ExchangeBytes > 0 {
			events = append(events, chromeEvent{
				Name: fmt.Sprintf("exchange bytes rank %d", s.Rank), Ph: "C",
				PID: chromePID, TS: usec(start),
				Args: map[string]any{"bytes": s.ExchangeBytes},
			})
		}
		if s.ClockOffsetNS != lastOffset[s.Rank] {
			lastOffset[s.Rank] = s.ClockOffsetNS
			events = append(events, chromeEvent{
				Name: fmt.Sprintf("clock offset us rank %d", s.Rank), Ph: "C",
				PID: chromePID, TS: usec(start),
				Args: map[string]any{"offset_us": usec(s.ClockOffsetNS)},
			})
		}
		if s.Decision != "" {
			events = append(events, chromeEvent{
				Name: s.Decision, Cat: "balance", Ph: "i",
				PID: chromePID, TID: s.Rank, TS: usec(ts), S: "t",
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
