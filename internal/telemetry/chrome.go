package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/parres/picprk/internal/trace"
)

// Chrome trace-event export: the timeline rendered in the JSON format that
// chrome://tracing and Perfetto load directly. Ranks map to threads of one
// process, phases to duration ("X") events, particle counts to counter
// ("C") tracks, and balancer decisions to instant ("i") events.
//
// Samples carry durations, not absolute timestamps, so the exporter lays
// steps out on a synthetic bulk-synchronous clock: all ranks start a step
// together and the step ends when its slowest rank does — which is how the
// exchange collective actually synchronizes the ranks, and makes per-step
// idle time (imbalance) visible as gaps.

// chromeEvent is one trace event. Fields follow the Trace Event Format;
// ts and dur are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid,omitempty"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level object Perfetto accepts.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePID = 1

func usec(d int64) float64 { return float64(d) / 1e3 }

// WriteChromeTrace writes the timeline as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, tl *Timeline) error {
	events := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: chromePID,
		Args: map[string]any{"name": "picprk " + tl.Name},
	}}
	seenRank := map[int]bool{}
	for i := range tl.Samples {
		r := tl.Samples[i].Rank
		if !seenRank[r] {
			seenRank[r] = true
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", PID: chromePID, TID: r,
				Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
			})
		}
	}

	// clock is the synthetic BSP step-start time in nanoseconds; samples are
	// sorted by (step, rank), so each group of equal-step samples is
	// contiguous.
	var clock int64
	for lo := 0; lo < len(tl.Samples); {
		hi := lo
		for hi < len(tl.Samples) && tl.Samples[hi].Step == tl.Samples[lo].Step {
			hi++
		}
		var slowest int64
		for _, s := range tl.Samples[lo:hi] {
			ts := clock
			for _, p := range trace.Phases() {
				d := s.Phases[p].Nanoseconds()
				if d <= 0 {
					continue
				}
				events = append(events, chromeEvent{
					Name: p.String(), Cat: "phase", Ph: "X",
					PID: chromePID, TID: s.Rank,
					TS: usec(ts), Dur: usec(d),
					Args: map[string]any{"step": s.Step},
				})
				ts += d
			}
			if ts-clock > slowest {
				slowest = ts - clock
			}
			events = append(events, chromeEvent{
				Name: fmt.Sprintf("particles rank %d", s.Rank), Ph: "C",
				PID: chromePID, TS: usec(clock),
				Args: map[string]any{"particles": s.Particles},
			})
			events = append(events, chromeEvent{
				Name: fmt.Sprintf("exchange bytes rank %d", s.Rank), Ph: "C",
				PID: chromePID, TS: usec(clock),
				Args: map[string]any{"bytes": s.ExchangeBytes},
			})
			if s.ExchangeOverlap > 0 {
				events = append(events, chromeEvent{
					Name: fmt.Sprintf("exchange overlap us rank %d", s.Rank), Ph: "C",
					PID: chromePID, TS: usec(clock),
					Args: map[string]any{"overlap_us": usec(s.ExchangeOverlap.Nanoseconds())},
				})
			}
			// Decisions are global (every rank computes the identical plan),
			// so one instant event per step suffices.
			if s.Decision != "" && s.Rank == tl.Samples[lo].Rank {
				events = append(events, chromeEvent{
					Name: s.Decision, Cat: "balance", Ph: "i",
					PID: chromePID, TID: s.Rank, TS: usec(ts), S: "g",
				})
			}
		}
		clock += slowest
		lo = hi
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
