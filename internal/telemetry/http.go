package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler mounts the observability endpoints on one mux:
//
//	/metrics      Prometheus text format from the Live aggregate
//	/debug/vars   expvar (Go runtime memstats and command line)
//	/debug/pprof  the standard profiling handlers
func Handler(l *Live) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		l.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the observability server on addr (e.g. ":6060"; ":0" picks a
// free port). It returns the bound address and a shutdown function.
func Serve(addr string, l *Live) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(l), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed after shutdown
	return ln.Addr().String(), srv.Close, nil
}
