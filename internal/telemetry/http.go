package telemetry

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler mounts the observability endpoints on one mux:
//
//	/metrics      Prometheus text format from the Live aggregate
//	/healthz      run identity + current step (readiness probe)
//	/events       Server-Sent Events stream of per-step samples
//	/debug/vars   expvar (Go runtime memstats and command line)
//	/debug/pprof  the standard profiling handlers
func Handler(l *Live) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		l.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		healthz(l, w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(l, w, r)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// healthzJSON is the /healthz response body.
type healthzJSON struct {
	Status string `json:"status"`
	Step   int64  `json:"step"`
	RunInfo
}

func healthz(l *Live, w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	body := healthzJSON{Status: "ok", Step: l.Step(), RunInfo: l.Info()}
	_ = json.NewEncoder(w).Encode(body)
}

// serveEvents streams per-step samples as Server-Sent Events: one `data:`
// line per sample, each the same JSON object a v4 timeline line carries
// (`picstat -follow` tails this). The handler returns when the client goes
// away or the stream closes at shutdown — Serve's stop function closes the
// stream before the listener precisely so no handler goroutine outlives it.
func serveEvents(l *Live, w http.ResponseWriter, r *http.Request) {
	if l == nil {
		http.Error(w, "no live telemetry on this server", http.StatusServiceUnavailable)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, cancel := l.Stream().Subscribe(256)
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// An initial comment line flushes the headers so clients know the
	// stream is live before the first sample lands.
	_, _ = w.Write([]byte(": picprk event stream\n\n"))
	fl.Flush()
	for {
		select {
		case s, open := <-ch:
			if !open {
				return
			}
			b, err := MarshalSample(&s)
			if err != nil {
				return
			}
			if _, err := w.Write([]byte("data: ")); err != nil {
				return
			}
			if _, err := w.Write(b); err != nil {
				return
			}
			if _, err := w.Write([]byte("\n\n")); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// Serve starts the observability server on addr (e.g. ":6060"; ":0" picks a
// free port). It returns the bound address and a shutdown function; the
// shutdown closes the live sample stream first (waking every /events
// handler), then drains the server gracefully so streaming clients see a
// clean end-of-body, falling back to a hard close if a handler stalls. No
// goroutine survives it.
func Serve(addr string, l *Live) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(l), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed after shutdown
	stop := func() error {
		l.Stream().Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return srv.Close()
		}
		return nil
	}
	return ln.Addr().String(), stop, nil
}
