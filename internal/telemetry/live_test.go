package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/parres/picprk/internal/trace"
)

func observeFixture(l *Live) {
	for _, s := range fixtureTimeline().Samples {
		l.Observe(s)
	}
}

func TestLivePrometheus(t *testing.T) {
	l := NewLive(2)
	observeFixture(l)
	var sb strings.Builder
	l.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"picprk_step 3",
		// Rank 0 compute accumulates 2+2+3 ms.
		`picprk_phase_seconds_total{rank="0",phase="compute"} 0.007`,
		`picprk_phase_seconds_total{rank="1",phase="migrate"} 0.002`,
		// Particle gauges hold the latest step; loads ended balanced.
		`picprk_particles{rank="0"} 200`,
		`picprk_particles{rank="1"} 200`,
		`picprk_migrations_total{rank="0"} 1`,
		`picprk_migrated_bytes_total{rank="1"} 1024`,
		// Hidden-exchange time accumulates: 1ms on rank 0, 0.5ms on rank 1.
		`picprk_exchange_overlap_seconds_total{rank="0"} 0.001`,
		`picprk_exchange_overlap_seconds_total{rank="1"} 0.0005`,
		"picprk_imbalance_ratio 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q\n%s", want, out)
		}
	}
}

func TestLiveIgnoresOutOfRangeRank(t *testing.T) {
	l := NewLive(1)
	l.Observe(Sample{Step: 1, Rank: 5, Particles: 10}) // must not panic
	var sb strings.Builder
	l.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `picprk_particles{rank="0"} 0`) {
		t.Error("out-of-range rank leaked into metrics")
	}
}

func TestHandlerEndpoints(t *testing.T) {
	l := NewLive(2)
	observeFixture(l)
	srv := httptest.NewServer(Handler(l))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "picprk_imbalance_ratio") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	code, body = get("/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars: code %d", code)
	}
	code, _ = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/: code %d", code)
	}
}

func TestServe(t *testing.T) {
	l := NewLive(1)
	l.Observe(Sample{Step: 7, Rank: 0, Particles: 9, Phases: trace.PhaseDurations{time.Millisecond}})
	addr, stop, err := Serve("127.0.0.1:0", l)
	if err != nil {
		t.Fatal(err)
	}
	defer stop() //nolint:errcheck
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "picprk_step 7") {
		t.Errorf("served metrics missing step gauge:\n%s", body)
	}
}
