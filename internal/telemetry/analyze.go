package telemetry

import (
	"sort"
	"time"

	"github.com/parres/picprk/internal/stats"
	"github.com/parres/picprk/internal/trace"
)

// Analysis helpers shared by cmd/picstat and the tests: per-step aggregates
// over ranks, run-wide phase totals, and worst-step ranking.

// StepStat aggregates one step's samples across ranks.
type StepStat struct {
	Step int
	// Wall is the step's wall-clock estimate: the maximum over ranks of
	// the rank's summed phase time. Steps are bulk-synchronous (the
	// exchange is collective), so the slowest rank sets the pace and the
	// difference to the other ranks is idle time — the cost of imbalance.
	Wall time.Duration
	// Phases sums each phase over all ranks (CPU time, not wall time).
	Phases trace.PhaseDurations
	// Load summarizes the per-rank particle counts; Load.Imbalance is the
	// paper's max-over-mean metric at this step.
	Load stats.Summary
	// Migrations and Bytes sum the LB movement over ranks this step;
	// ExchangeBytes sums the particle-exchange payload over ranks.
	Migrations    int
	Bytes         int64
	ExchangeBytes int64
	// Overlap sums the compute-while-exchange-in-flight time over ranks
	// (the tile pipeline's hidden exchange; see Sample.ExchangeOverlap).
	Overlap time.Duration
	// Decision is the balancer decision executed this step, if any.
	Decision string
}

// StepStats folds the timeline into one StepStat per step, in step order.
func (tl *Timeline) StepStats() []StepStat {
	var out []StepStat
	loads := make([]float64, 0, tl.P)
	for lo := 0; lo < len(tl.Samples); {
		hi := lo
		for hi < len(tl.Samples) && tl.Samples[hi].Step == tl.Samples[lo].Step {
			hi++
		}
		st := StepStat{Step: tl.Samples[lo].Step}
		loads = loads[:0]
		for _, s := range tl.Samples[lo:hi] {
			var rankTotal time.Duration
			for _, p := range trace.Phases() {
				st.Phases[p] += s.Phases[p]
				rankTotal += s.Phases[p]
			}
			if rankTotal > st.Wall {
				st.Wall = rankTotal
			}
			loads = append(loads, float64(s.Particles))
			st.Migrations += s.Migrations
			st.Bytes += s.Bytes
			st.ExchangeBytes += s.ExchangeBytes
			st.Overlap += s.ExchangeOverlap
			if st.Decision == "" {
				st.Decision = s.Decision
			}
		}
		st.Load = stats.Summarize(loads)
		out = append(out, st)
		lo = hi
	}
	return out
}

// PhaseTotals sums each phase over every sample in the timeline.
func (tl *Timeline) PhaseTotals() trace.PhaseDurations {
	var tot trace.PhaseDurations
	for i := range tl.Samples {
		for _, p := range trace.Phases() {
			tot[p] += tl.Samples[i].Phases[p]
		}
	}
	return tot
}

// WorstSteps returns the n steps with the largest Wall time, slowest first
// (ties broken by step order). The input is not modified.
func WorstSteps(ss []StepStat, n int) []StepStat {
	ranked := append([]StepStat(nil), ss...)
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Wall > ranked[j].Wall })
	if n < len(ranked) {
		ranked = ranked[:n]
	}
	return ranked
}
