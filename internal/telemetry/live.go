package telemetry

import (
	"fmt"
	"io"
	"sync/atomic"

	"github.com/parres/picprk/internal/stats"
	"github.com/parres/picprk/internal/trace"
)

// Live is the lock-free aggregate behind the /metrics endpoint: each rank
// stores its latest per-step observations into its own atomic slots while
// the HTTP handler reads them all. Observe is allocation-free and a no-op
// on a nil receiver, so it can sit unconditionally on the sampling path.
type Live struct {
	ranks int
	step  atomic.Int64
	// phaseNS accumulates per-rank, per-phase nanoseconds, laid out
	// rank-major: slot(rank, phase) = rank*NumPhases + phase.
	phaseNS    []atomic.Int64
	particles  []atomic.Int64
	migrations []atomic.Int64
	bytes      []atomic.Int64
	xbytes     []atomic.Int64
	overlapNS  []atomic.Int64
}

// NewLive returns a Live aggregate for the given rank count.
func NewLive(ranks int) *Live {
	if ranks < 1 {
		ranks = 1
	}
	return &Live{
		ranks:      ranks,
		phaseNS:    make([]atomic.Int64, ranks*trace.NumPhases),
		particles:  make([]atomic.Int64, ranks),
		migrations: make([]atomic.Int64, ranks),
		bytes:      make([]atomic.Int64, ranks),
		xbytes:     make([]atomic.Int64, ranks),
		overlapNS:  make([]atomic.Int64, ranks),
	}
}

// Observe folds one per-step sample into the aggregate. Samples carry
// per-step deltas, so durations, migrations, and bytes accumulate while
// the particle count and step are gauges.
func (l *Live) Observe(s Sample) {
	if l == nil || s.Rank < 0 || s.Rank >= l.ranks {
		return
	}
	l.step.Store(int64(s.Step))
	for _, p := range trace.Phases() {
		l.phaseNS[s.Rank*trace.NumPhases+int(p)].Add(s.Phases[p].Nanoseconds())
	}
	l.particles[s.Rank].Store(int64(s.Particles))
	l.migrations[s.Rank].Add(int64(s.Migrations))
	l.bytes[s.Rank].Add(s.Bytes)
	l.xbytes[s.Rank].Add(s.ExchangeBytes)
	l.overlapNS[s.Rank].Add(s.ExchangeOverlap.Nanoseconds())
}

// WritePrometheus renders the aggregate in the Prometheus text exposition
// format.
func (l *Live) WritePrometheus(w io.Writer) {
	if l == nil {
		return
	}
	fmt.Fprintf(w, "# HELP picprk_step Current simulation step.\n# TYPE picprk_step gauge\npicprk_step %d\n", l.step.Load())

	fmt.Fprintf(w, "# HELP picprk_phase_seconds_total Time spent per rank per phase.\n# TYPE picprk_phase_seconds_total counter\n")
	for rank := 0; rank < l.ranks; rank++ {
		for _, p := range trace.Phases() {
			ns := l.phaseNS[rank*trace.NumPhases+int(p)].Load()
			fmt.Fprintf(w, "picprk_phase_seconds_total{rank=\"%d\",phase=\"%s\"} %g\n", rank, p, float64(ns)/1e9)
		}
	}

	loads := make([]float64, l.ranks)
	fmt.Fprintf(w, "# HELP picprk_particles Local particle count per rank.\n# TYPE picprk_particles gauge\n")
	for rank := 0; rank < l.ranks; rank++ {
		n := l.particles[rank].Load()
		loads[rank] = float64(n)
		fmt.Fprintf(w, "picprk_particles{rank=\"%d\"} %d\n", rank, n)
	}

	fmt.Fprintf(w, "# HELP picprk_migrations_total LB data movements per rank.\n# TYPE picprk_migrations_total counter\n")
	for rank := 0; rank < l.ranks; rank++ {
		fmt.Fprintf(w, "picprk_migrations_total{rank=\"%d\"} %d\n", rank, l.migrations[rank].Load())
	}

	fmt.Fprintf(w, "# HELP picprk_migrated_bytes_total LB payload bytes sent per rank.\n# TYPE picprk_migrated_bytes_total counter\n")
	for rank := 0; rank < l.ranks; rank++ {
		fmt.Fprintf(w, "picprk_migrated_bytes_total{rank=\"%d\"} %d\n", rank, l.bytes[rank].Load())
	}

	fmt.Fprintf(w, "# HELP picprk_exchange_bytes_total Particle-exchange payload bytes sent per rank (framed columnar wire size).\n# TYPE picprk_exchange_bytes_total counter\n")
	for rank := 0; rank < l.ranks; rank++ {
		fmt.Fprintf(w, "picprk_exchange_bytes_total{rank=\"%d\"} %d\n", rank, l.xbytes[rank].Load())
	}

	fmt.Fprintf(w, "# HELP picprk_exchange_overlap_seconds_total Compute time spent while an exchange was in flight, per rank (tile pipeline).\n# TYPE picprk_exchange_overlap_seconds_total counter\n")
	for rank := 0; rank < l.ranks; rank++ {
		ns := l.overlapNS[rank].Load()
		fmt.Fprintf(w, "picprk_exchange_overlap_seconds_total{rank=\"%d\"} %g\n", rank, float64(ns)/1e9)
	}

	sum := stats.Summarize(loads)
	fmt.Fprintf(w, "# HELP picprk_imbalance_ratio Max over mean particle load (1.0 = perfect balance).\n# TYPE picprk_imbalance_ratio gauge\npicprk_imbalance_ratio %g\n", sum.Imbalance)
}
