package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"github.com/parres/picprk/internal/stats"
	"github.com/parres/picprk/internal/trace"
)

// Live is the lock-free aggregate behind the /metrics endpoint: each rank
// stores its latest per-step observations into its own atomic slots while
// the HTTP handler reads them all. Observe is allocation-free and a no-op
// on a nil receiver, so it can sit unconditionally on the sampling path.
type Live struct {
	ranks int
	step  atomic.Int64
	// phaseNS accumulates per-rank, per-phase nanoseconds, laid out
	// rank-major: slot(rank, phase) = rank*NumPhases + phase.
	phaseNS    []atomic.Int64
	particles  []atomic.Int64
	migrations []atomic.Int64
	bytes      []atomic.Int64
	xbytes     []atomic.Int64
	overlapNS  []atomic.Int64
	msgsSent   []atomic.Int64
	msgsElided []atomic.Int64

	// Epoch lifecycle counters (checkpointed runs only; stay zero otherwise).
	commits   atomic.Int64
	rollbacks atomic.Int64
	readmits  atomic.Int64

	// stream fans observed samples out to /events subscribers; Publish is a
	// single atomic load when nobody is listening, so Observe stays
	// allocation-free on the sampling path.
	stream Stream

	// mu guards the scrape-time extras: run identity for /healthz and the
	// wire-transport stat sources rendered by WritePrometheus.
	mu          sync.Mutex
	info        RunInfo
	wireSources []func() WireReport
}

// RunInfo identifies the run behind a Live aggregate, served by /healthz.
type RunInfo struct {
	// Impl is the driver label ("serial", "diffusion", ...).
	Impl string `json:"impl,omitempty"`
	// Transport names the comm substrate ("inproc", "tcp", "unix").
	Transport string `json:"transport,omitempty"`
	// World is the world rank count; LocalRanks how many of them this
	// process hosts (equal in-process, a subset in multi-process runs).
	World      int `json:"world,omitempty"`
	LocalRanks int `json:"local_ranks,omitempty"`
}

// NewLive returns a Live aggregate for the given rank count.
func NewLive(ranks int) *Live {
	if ranks < 1 {
		ranks = 1
	}
	return &Live{
		ranks:      ranks,
		phaseNS:    make([]atomic.Int64, ranks*trace.NumPhases),
		particles:  make([]atomic.Int64, ranks),
		migrations: make([]atomic.Int64, ranks),
		bytes:      make([]atomic.Int64, ranks),
		xbytes:     make([]atomic.Int64, ranks),
		overlapNS:  make([]atomic.Int64, ranks),
		msgsSent:   make([]atomic.Int64, ranks),
		msgsElided: make([]atomic.Int64, ranks),
	}
}

// Observe folds one per-step sample into the aggregate. Samples carry
// per-step deltas, so durations, migrations, and bytes accumulate while
// the particle count and step are gauges.
func (l *Live) Observe(s Sample) {
	if l == nil || s.Rank < 0 || s.Rank >= l.ranks {
		return
	}
	l.step.Store(int64(s.Step))
	for _, p := range trace.Phases() {
		l.phaseNS[s.Rank*trace.NumPhases+int(p)].Add(s.Phases[p].Nanoseconds())
	}
	l.particles[s.Rank].Store(int64(s.Particles))
	l.migrations[s.Rank].Add(int64(s.Migrations))
	l.bytes[s.Rank].Add(s.Bytes)
	l.xbytes[s.Rank].Add(s.ExchangeBytes)
	l.overlapNS[s.Rank].Add(s.ExchangeOverlap.Nanoseconds())
	l.msgsSent[s.Rank].Add(int64(s.MsgsSent))
	l.msgsElided[s.Rank].Add(int64(s.MsgsElided))
	l.stream.Publish(s)
}

// ObserveEvent folds one epoch lifecycle event into the recovery counters.
// Events are not published on the sample stream — followers see samples
// only; scrapes see the counters.
func (l *Live) ObserveEvent(e Event) {
	if l == nil {
		return
	}
	switch e.Kind {
	case EventCommit:
		l.commits.Add(1)
	case EventRollback:
		l.rollbacks.Add(1)
	case EventReadmit:
		l.readmits.Add(1)
	}
}

// Stream returns the live sample stream (/events subscribes to it); nil on
// a nil aggregate, which Subscribe and Publish tolerate.
func (l *Live) Stream() *Stream {
	if l == nil {
		return nil
	}
	return &l.stream
}

// Step returns the most recently observed simulation step.
func (l *Live) Step() int64 {
	if l == nil {
		return 0
	}
	return l.step.Load()
}

// SetRunInfo records the run identity served by /healthz.
func (l *Live) SetRunInfo(ri RunInfo) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.info = ri
	l.mu.Unlock()
}

// Info returns the recorded run identity.
func (l *Live) Info() RunInfo {
	if l == nil {
		return RunInfo{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.info
}

// AddWireSource registers a callback that snapshots wire-transport stats
// (typically a wire.Node's WireReport method); WritePrometheus merges every
// source at scrape time. Safe to call while scrapes run.
func (l *Live) AddWireSource(fn func() WireReport) {
	if l == nil || fn == nil {
		return
	}
	l.mu.Lock()
	l.wireSources = append(l.wireSources, fn)
	l.mu.Unlock()
}

// wireReport merges every registered source's snapshot.
func (l *Live) wireReport() WireReport {
	l.mu.Lock()
	sources := l.wireSources
	l.mu.Unlock()
	rep := WireReport{Offsets: map[int]int64{}}
	for _, fn := range sources {
		rep.Merge(fn())
	}
	return rep
}

// WritePrometheus renders the aggregate in the Prometheus text exposition
// format.
func (l *Live) WritePrometheus(w io.Writer) {
	if l == nil {
		return
	}
	fmt.Fprintf(w, "# HELP picprk_step Current simulation step.\n# TYPE picprk_step gauge\npicprk_step %d\n", l.step.Load())

	fmt.Fprintf(w, "# HELP picprk_phase_seconds_total Time spent per rank per phase.\n# TYPE picprk_phase_seconds_total counter\n")
	for rank := 0; rank < l.ranks; rank++ {
		for _, p := range trace.Phases() {
			ns := l.phaseNS[rank*trace.NumPhases+int(p)].Load()
			fmt.Fprintf(w, "picprk_phase_seconds_total{rank=\"%d\",phase=\"%s\"} %g\n", rank, p, float64(ns)/1e9)
		}
	}

	loads := make([]float64, l.ranks)
	fmt.Fprintf(w, "# HELP picprk_particles Local particle count per rank.\n# TYPE picprk_particles gauge\n")
	for rank := 0; rank < l.ranks; rank++ {
		n := l.particles[rank].Load()
		loads[rank] = float64(n)
		fmt.Fprintf(w, "picprk_particles{rank=\"%d\"} %d\n", rank, n)
	}

	fmt.Fprintf(w, "# HELP picprk_migrations_total LB data movements per rank.\n# TYPE picprk_migrations_total counter\n")
	for rank := 0; rank < l.ranks; rank++ {
		fmt.Fprintf(w, "picprk_migrations_total{rank=\"%d\"} %d\n", rank, l.migrations[rank].Load())
	}

	fmt.Fprintf(w, "# HELP picprk_migrated_bytes_total LB payload bytes sent per rank.\n# TYPE picprk_migrated_bytes_total counter\n")
	for rank := 0; rank < l.ranks; rank++ {
		fmt.Fprintf(w, "picprk_migrated_bytes_total{rank=\"%d\"} %d\n", rank, l.bytes[rank].Load())
	}

	fmt.Fprintf(w, "# HELP picprk_exchange_bytes_total Particle-exchange payload bytes sent per rank (framed columnar wire size).\n# TYPE picprk_exchange_bytes_total counter\n")
	for rank := 0; rank < l.ranks; rank++ {
		fmt.Fprintf(w, "picprk_exchange_bytes_total{rank=\"%d\"} %d\n", rank, l.xbytes[rank].Load())
	}

	fmt.Fprintf(w, "# HELP picprk_exchange_overlap_seconds_total Compute time spent while an exchange was in flight, per rank (tile pipeline).\n# TYPE picprk_exchange_overlap_seconds_total counter\n")
	for rank := 0; rank < l.ranks; rank++ {
		ns := l.overlapNS[rank].Load()
		fmt.Fprintf(w, "picprk_exchange_overlap_seconds_total{rank=\"%d\"} %g\n", rank, float64(ns)/1e9)
	}

	fmt.Fprintf(w, "# HELP picprk_exchange_messages_total Exchange messages posted per rank (sparse neighbor schedule).\n# TYPE picprk_exchange_messages_total counter\n")
	for rank := 0; rank < l.ranks; rank++ {
		fmt.Fprintf(w, "picprk_exchange_messages_total{rank=\"%d\"} %d\n", rank, l.msgsSent[rank].Load())
	}

	fmt.Fprintf(w, "# HELP picprk_exchange_messages_elided_total Exchange messages the sparse neighbor schedule skipped per rank, relative to the full P-1 ring.\n# TYPE picprk_exchange_messages_elided_total counter\n")
	for rank := 0; rank < l.ranks; rank++ {
		fmt.Fprintf(w, "picprk_exchange_messages_elided_total{rank=\"%d\"} %d\n", rank, l.msgsElided[rank].Load())
	}

	sum := stats.Summarize(loads)
	fmt.Fprintf(w, "# HELP picprk_imbalance_ratio Max over mean particle load (1.0 = perfect balance).\n# TYPE picprk_imbalance_ratio gauge\npicprk_imbalance_ratio %g\n", sum.Imbalance)

	fmt.Fprintf(w, "# HELP picprk_epoch_commits_total Epoch checkpoints committed (all shards gathered to rank 0).\n# TYPE picprk_epoch_commits_total counter\npicprk_epoch_commits_total %d\n", l.commits.Load())
	fmt.Fprintf(w, "# HELP picprk_rollbacks_total Rollbacks to the last committed epoch after a rank loss.\n# TYPE picprk_rollbacks_total counter\npicprk_rollbacks_total %d\n", l.rollbacks.Load())
	fmt.Fprintf(w, "# HELP picprk_readmits_total Replacement workers re-admitted into vacated ranks.\n# TYPE picprk_readmits_total counter\npicprk_readmits_total %d\n", l.readmits.Load())

	l.writeWirePrometheus(w)
}

// writeWirePrometheus renders the wire-transport stats (frame counters,
// writer-queue gauges, one-way latency histograms, clock offsets) when any
// wire source is registered; in-process runs emit nothing here.
func (l *Live) writeWirePrometheus(w io.Writer) {
	rep := l.wireReport()
	if len(rep.Peers) == 0 && len(rep.Offsets) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP picprk_wire_clock_offset_seconds Estimated offset of node 0's clock minus this node's (NTP-style min-RTT sample).\n# TYPE picprk_wire_clock_offset_seconds gauge\n")
	for _, node := range intKeysSorted(rep.Offsets) {
		fmt.Fprintf(w, "picprk_wire_clock_offset_seconds{node=\"%d\"} %g\n", node, float64(rep.Offsets[node])/1e9)
	}
	fmt.Fprintf(w, "# HELP picprk_wire_frames_sent_total Frames enqueued on the writer toward each peer node.\n# TYPE picprk_wire_frames_sent_total counter\n")
	for i := range rep.Peers {
		p := &rep.Peers[i]
		fmt.Fprintf(w, "picprk_wire_frames_sent_total{node=\"%d\",peer=\"%d\"} %d\n", p.Node, p.Peer, p.FramesSent)
	}
	fmt.Fprintf(w, "# HELP picprk_wire_frames_received_total Frames read from each peer node.\n# TYPE picprk_wire_frames_received_total counter\n")
	for i := range rep.Peers {
		p := &rep.Peers[i]
		fmt.Fprintf(w, "picprk_wire_frames_received_total{node=\"%d\",peer=\"%d\"} %d\n", p.Node, p.Peer, p.FramesRecv)
	}
	fmt.Fprintf(w, "# HELP picprk_wire_writes_total Vectored writes issued toward each peer node (frames_sent/writes = coalescing factor).\n# TYPE picprk_wire_writes_total counter\n")
	for i := range rep.Peers {
		p := &rep.Peers[i]
		fmt.Fprintf(w, "picprk_wire_writes_total{node=\"%d\",peer=\"%d\"} %d\n", p.Node, p.Peer, p.Writes)
	}
	fmt.Fprintf(w, "# HELP picprk_wire_send_queue_depth Writer-queue frames currently pending toward each peer node.\n# TYPE picprk_wire_send_queue_depth gauge\n")
	for i := range rep.Peers {
		p := &rep.Peers[i]
		fmt.Fprintf(w, "picprk_wire_send_queue_depth{node=\"%d\",peer=\"%d\"} %d\n", p.Node, p.Peer, p.QueueDepth)
	}
	fmt.Fprintf(w, "# HELP picprk_wire_send_queue_peak High-water mark of the writer queue toward each peer node.\n# TYPE picprk_wire_send_queue_peak gauge\n")
	for i := range rep.Peers {
		p := &rep.Peers[i]
		fmt.Fprintf(w, "picprk_wire_send_queue_peak{node=\"%d\",peer=\"%d\"} %d\n", p.Node, p.Peer, p.QueuePeak)
	}
	fmt.Fprintf(w, "# HELP picprk_wire_latency_seconds One-way data-frame latency from each peer node (send stamp vs offset-corrected receive; includes the sender's queue wait).\n# TYPE picprk_wire_latency_seconds histogram\n")
	for i := range rep.Peers {
		p := &rep.Peers[i]
		if p.OneWay.Count() == 0 {
			continue
		}
		var cum int64
		for b := 0; b < LatencyBuckets; b++ {
			cum += p.OneWay.Counts[b]
			le := "+Inf"
			if up := LatencyBucketUpperNS(b); up >= 0 {
				le = fmt.Sprintf("%g", float64(up)/1e9)
			}
			fmt.Fprintf(w, "picprk_wire_latency_seconds_bucket{node=\"%d\",peer=\"%d\",le=\"%s\"} %d\n", p.Node, p.Peer, le, cum)
		}
		fmt.Fprintf(w, "picprk_wire_latency_seconds_sum{node=\"%d\",peer=\"%d\"} %g\n", p.Node, p.Peer, float64(p.OneWay.SumNS)/1e9)
		fmt.Fprintf(w, "picprk_wire_latency_seconds_count{node=\"%d\",peer=\"%d\"} %d\n", p.Node, p.Peer, p.OneWay.Count())
	}
}

// intKeysSorted yields a map's keys in ascending order (stable scrapes).
func intKeysSorted(m map[int]int64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
