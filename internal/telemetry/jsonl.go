package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/parres/picprk/internal/trace"
)

// Schema identifies the timeline wire format. Readers reject any other
// value, so an incompatible change must bump the version — the CI
// round-trip job fails on silent drift. v3 added the per-step
// exchange_overlap_ns field (v2 added exchange_bytes); older files are
// still readable (absent fields read as 0).
const Schema = "picprk/timeline/v3"

// legacySchemas are the previous wire formats, accepted on read: each later
// version only added optional fields, so older files parse unchanged.
var legacySchemas = map[string]bool{
	"picprk/timeline/v1": true,
	"picprk/timeline/v2": true,
}

// metaJSON is the first line of a timeline file.
type metaJSON struct {
	Schema  string `json:"schema"`
	Impl    string `json:"impl"`
	Ranks   int    `json:"ranks"`
	Steps   int    `json:"steps"`
	Dropped int    `json:"dropped,omitempty"`
}

// sampleJSON is one sample line. Phase durations travel as a name→nanos
// object keyed by trace.Phase names, so the schema follows the phase list
// without either side hand-maintaining it.
type sampleJSON struct {
	Step       int              `json:"step"`
	Rank       int              `json:"rank"`
	PhaseNS    map[string]int64 `json:"phase_ns"`
	Particles  int              `json:"particles"`
	Migrations int              `json:"migrations,omitempty"`
	Bytes      int64            `json:"bytes,omitempty"`
	XBytes     int64            `json:"exchange_bytes,omitempty"`
	OverlapNS  int64            `json:"exchange_overlap_ns,omitempty"`
	Decision   string           `json:"decision,omitempty"`
}

// WriteJSONL writes the timeline as JSON Lines: one meta object, then one
// object per sample in (step, rank) order.
func WriteJSONL(w io.Writer, tl *Timeline) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	meta := metaJSON{Schema: Schema, Impl: tl.Name, Ranks: tl.P, Steps: tl.Steps, Dropped: tl.Dropped}
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for i := range tl.Samples {
		s := &tl.Samples[i]
		line := sampleJSON{
			Step:       s.Step,
			Rank:       s.Rank,
			PhaseNS:    make(map[string]int64, trace.NumPhases),
			Particles:  s.Particles,
			Migrations: s.Migrations,
			Bytes:      s.Bytes,
			XBytes:     s.ExchangeBytes,
			OverlapNS:  s.ExchangeOverlap.Nanoseconds(),
			Decision:   s.Decision,
		}
		for _, p := range trace.Phases() {
			line.PhaseNS[p.String()] = s.Phases[p].Nanoseconds()
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a timeline written by WriteJSONL, validating the schema
// version and every phase name.
func ReadJSONL(r io.Reader) (*Timeline, error) {
	byName := make(map[string]trace.Phase, trace.NumPhases)
	for _, p := range trace.Phases() {
		byName[p.String()] = p
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("telemetry: empty timeline")
	}
	var meta metaJSON
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		return nil, fmt.Errorf("telemetry: bad meta line: %w", err)
	}
	if meta.Schema != Schema && !legacySchemas[meta.Schema] {
		return nil, fmt.Errorf("telemetry: schema %q, this reader understands %q", meta.Schema, Schema)
	}
	tl := &Timeline{Name: meta.Impl, P: meta.Ranks, Steps: meta.Steps, Dropped: meta.Dropped}
	for line := 2; sc.Scan(); line++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var sj sampleJSON
		if err := json.Unmarshal(sc.Bytes(), &sj); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		s := Sample{
			Step:            sj.Step,
			Rank:            sj.Rank,
			Particles:       sj.Particles,
			Migrations:      sj.Migrations,
			Bytes:           sj.Bytes,
			ExchangeBytes:   sj.XBytes,
			ExchangeOverlap: time.Duration(sj.OverlapNS),
			Decision:        sj.Decision,
		}
		for name, ns := range sj.PhaseNS {
			p, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("telemetry: line %d: unknown phase %q", line, name)
			}
			s.Phases[p] = time.Duration(ns)
		}
		tl.Samples = append(tl.Samples, s)
	}
	return tl, sc.Err()
}
