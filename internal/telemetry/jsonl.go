package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/parres/picprk/internal/trace"
)

// Schema identifies the timeline wire format. Readers reject any other
// value, so an incompatible change must bump the version — the CI
// round-trip job fails on silent drift. v6 added the sparse-exchange
// message counters (msgs_sent/msgs_elided) per sample and per-peer
// exchange matrix lines (distinguished by an "xchg_rank" key) between the
// events and the samples (v5 added epoch lifecycle event lines, v4
// wall_start_ns and clock_offset_ns, v3 exchange_overlap_ns, v2
// exchange_bytes); older files are still readable (absent fields read as
// 0, absent lines as none).
const Schema = "picprk/timeline/v6"

// legacySchemas are the previous wire formats, accepted on read: each later
// version only added optional fields or line kinds, so older files parse
// unchanged.
var legacySchemas = map[string]bool{
	"picprk/timeline/v1": true,
	"picprk/timeline/v2": true,
	"picprk/timeline/v3": true,
	"picprk/timeline/v4": true,
	"picprk/timeline/v5": true,
}

// metaJSON is the first line of a timeline file.
type metaJSON struct {
	Schema  string `json:"schema"`
	Impl    string `json:"impl"`
	Ranks   int    `json:"ranks"`
	Steps   int    `json:"steps"`
	Dropped int    `json:"dropped,omitempty"`
}

// sampleJSON is one sample line. Phase durations travel as a name→nanos
// object keyed by trace.Phase names, so the schema follows the phase list
// without either side hand-maintaining it.
type sampleJSON struct {
	Step       int              `json:"step"`
	Rank       int              `json:"rank"`
	PhaseNS    map[string]int64 `json:"phase_ns"`
	Particles  int              `json:"particles"`
	Migrations int              `json:"migrations,omitempty"`
	Bytes      int64            `json:"bytes,omitempty"`
	XBytes     int64            `json:"exchange_bytes,omitempty"`
	OverlapNS  int64            `json:"exchange_overlap_ns,omitempty"`
	MsgsSent   int              `json:"msgs_sent,omitempty"`
	MsgsElided int              `json:"msgs_elided,omitempty"`
	WallNS     int64            `json:"wall_start_ns,omitempty"`
	OffsetNS   int64            `json:"clock_offset_ns,omitempty"`
	Decision   string           `json:"decision,omitempty"`
}

// peerXchgJSON is one per-peer exchange matrix line. The "xchg_rank" key
// doubles as the line discriminator: sample and event lines never carry it.
type peerXchgJSON struct {
	XchgRank *int    `json:"xchg_rank"`
	Bytes    []int64 `json:"xchg_bytes"`
	Msgs     []int64 `json:"xchg_msgs"`
}

// eventJSON is one epoch lifecycle event line. The "event" key doubles as
// the line discriminator: sample lines never carry it.
type eventJSON struct {
	Event  string `json:"event"`
	Step   int    `json:"step,omitempty"`
	Gen    int    `json:"gen,omitempty"`
	Rank   *int   `json:"rank,omitempty"`
	WallNS int64  `json:"wall_ns,omitempty"`
}

func eventLine(e *Event) eventJSON {
	ej := eventJSON{Event: e.Kind, Step: e.Step, Gen: e.Gen, WallNS: e.WallNS}
	if e.Rank >= 0 {
		r := e.Rank
		ej.Rank = &r
	}
	return ej
}

func lineEvent(ej *eventJSON) (Event, error) {
	switch ej.Event {
	case EventCommit, EventRollback, EventReadmit:
	default:
		return Event{}, fmt.Errorf("telemetry: unknown event kind %q", ej.Event)
	}
	e := Event{Kind: ej.Event, Step: ej.Step, Gen: ej.Gen, Rank: -1, WallNS: ej.WallNS}
	if ej.Rank != nil {
		e.Rank = *ej.Rank
	}
	return e, nil
}

// sampleLine converts a Sample to its wire form.
func sampleLine(s *Sample) sampleJSON {
	line := sampleJSON{
		Step:       s.Step,
		Rank:       s.Rank,
		PhaseNS:    make(map[string]int64, trace.NumPhases),
		Particles:  s.Particles,
		Migrations: s.Migrations,
		Bytes:      s.Bytes,
		XBytes:     s.ExchangeBytes,
		OverlapNS:  s.ExchangeOverlap.Nanoseconds(),
		MsgsSent:   s.MsgsSent,
		MsgsElided: s.MsgsElided,
		WallNS:     s.WallStartNS,
		OffsetNS:   s.ClockOffsetNS,
		Decision:   s.Decision,
	}
	for _, p := range trace.Phases() {
		line.PhaseNS[p.String()] = s.Phases[p].Nanoseconds()
	}
	return line
}

// lineSample converts a wire-form sample back, validating phase names.
func lineSample(sj *sampleJSON) (Sample, error) {
	s := Sample{
		Step:            sj.Step,
		Rank:            sj.Rank,
		Particles:       sj.Particles,
		Migrations:      sj.Migrations,
		Bytes:           sj.Bytes,
		ExchangeBytes:   sj.XBytes,
		ExchangeOverlap: time.Duration(sj.OverlapNS),
		MsgsSent:        sj.MsgsSent,
		MsgsElided:      sj.MsgsElided,
		WallStartNS:     sj.WallNS,
		ClockOffsetNS:   sj.OffsetNS,
		Decision:        sj.Decision,
	}
	for name, ns := range sj.PhaseNS {
		p, ok := phaseByName(name)
		if !ok {
			return Sample{}, fmt.Errorf("telemetry: unknown phase %q", name)
		}
		s.Phases[p] = time.Duration(ns)
	}
	return s, nil
}

func phaseByName(name string) (trace.Phase, bool) {
	for _, p := range trace.Phases() {
		if p.String() == name {
			return p, true
		}
	}
	return 0, false
}

// MarshalSample renders one sample as a single JSON line (no trailing
// newline) in exactly the v4 per-sample schema — the payload of the live
// /events SSE stream.
func MarshalSample(s *Sample) ([]byte, error) {
	return json.Marshal(sampleLine(s))
}

// UnmarshalSample parses a single sample line produced by MarshalSample or
// found in a timeline file (meta lines are not samples).
func UnmarshalSample(b []byte) (Sample, error) {
	var sj sampleJSON
	if err := json.Unmarshal(b, &sj); err != nil {
		return Sample{}, err
	}
	return lineSample(&sj)
}

// WriteJSONL writes the timeline as JSON Lines: one meta object, the epoch
// lifecycle events (if any) in occurrence order, then one object per sample
// in (step, rank) order.
func WriteJSONL(w io.Writer, tl *Timeline) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	meta := metaJSON{Schema: Schema, Impl: tl.Name, Ranks: tl.P, Steps: tl.Steps, Dropped: tl.Dropped}
	if err := enc.Encode(meta); err != nil {
		return err
	}
	for i := range tl.Events {
		if err := enc.Encode(eventLine(&tl.Events[i])); err != nil {
			return err
		}
	}
	for i := range tl.PeerXchg {
		px := &tl.PeerXchg[i]
		r := px.Rank
		if err := enc.Encode(peerXchgJSON{XchgRank: &r, Bytes: px.Bytes, Msgs: px.Msgs}); err != nil {
			return err
		}
	}
	for i := range tl.Samples {
		if err := enc.Encode(sampleLine(&tl.Samples[i])); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a timeline written by WriteJSONL, validating the schema
// version and every phase name.
func ReadJSONL(r io.Reader) (*Timeline, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("telemetry: empty timeline")
	}
	var meta metaJSON
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		return nil, fmt.Errorf("telemetry: bad meta line: %w", err)
	}
	if meta.Schema != Schema && !legacySchemas[meta.Schema] {
		return nil, fmt.Errorf("telemetry: schema %q, this reader understands %q", meta.Schema, Schema)
	}
	tl := &Timeline{Name: meta.Impl, P: meta.Ranks, Steps: meta.Steps, Dropped: meta.Dropped}
	for line := 2; sc.Scan(); line++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		// Event lines carry the "event" discriminator key, matrix lines
		// "xchg_rank"; everything else is a sample.
		var probe struct {
			Event    string `json:"event"`
			XchgRank *int   `json:"xchg_rank"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		if probe.Event != "" {
			var ej eventJSON
			if err := json.Unmarshal(sc.Bytes(), &ej); err != nil {
				return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
			}
			e, err := lineEvent(&ej)
			if err != nil {
				return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
			}
			tl.Events = append(tl.Events, e)
			continue
		}
		if probe.XchgRank != nil {
			var pj peerXchgJSON
			if err := json.Unmarshal(sc.Bytes(), &pj); err != nil {
				return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
			}
			tl.PeerXchg = append(tl.PeerXchg, PeerXchg{Rank: *pj.XchgRank, Bytes: pj.Bytes, Msgs: pj.Msgs})
			continue
		}
		var sj sampleJSON
		if err := json.Unmarshal(sc.Bytes(), &sj); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		s, err := lineSample(&sj)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		tl.Samples = append(tl.Samples, s)
	}
	return tl, sc.Err()
}
