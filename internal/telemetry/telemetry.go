// Package telemetry records the per-step, per-rank timeline of a PIC PRK
// run: how long each rank spent in each phase of each step, how many
// particles it held, what the load balancer moved, and which decision it
// took. The paper's evaluation (§V-B) argues from exactly these
// trajectories — max particles per core over time, phase timing breakdowns
// — and the end-of-run sums in trace.Recorder cannot show *when* imbalance
// develops or what a balancing action cost.
//
// The package has three consumers:
//
//   - the timeline writers (JSONL for cmd/picstat, Chrome trace-event JSON
//     for chrome://tracing and Perfetto),
//   - the live /metrics endpoint (Prometheus text format, plus expvar and
//     pprof) backed by the lock-free Live aggregate,
//   - the analysis helpers cmd/picstat builds its report from.
//
// Everything on the recording side is nil-safe and allocation-free: a nil
// *Ring or *Live accepts samples as no-ops, so the engine's steady-state
// step stays off the allocator when telemetry is disabled.
package telemetry

import (
	"sort"
	"time"

	"github.com/parres/picprk/internal/trace"
)

// Sample is one rank's observation of one step.
type Sample struct {
	// Step is the 1-based simulation step.
	Step int
	// Rank is the observing rank.
	Rank int
	// Phases holds the time this rank spent in each phase during this step
	// (a trace.Recorder.Snapshot delta, not a cumulative sum).
	Phases trace.PhaseDurations
	// Particles is the local particle count at the end of the step.
	Particles int
	// Migrations is the number of LB data movements this step (delta).
	Migrations int
	// Bytes is the LB payload bytes this rank sent this step (delta).
	Bytes int64
	// ExchangeBytes is the particle-exchange payload bytes this rank sent
	// this step (delta), measured as the columnar path's framed wire size
	// (core.Columns.FramedBytes), not a per-particle serialization estimate.
	ExchangeBytes int64
	// ExchangeOverlap is the compute time this step spent while an exchange
	// was in flight (the tile pipeline's interior wave). It is not a phase:
	// the same wall time is already inside Phases[trace.Compute]. The ratio
	// overlap/(overlap+exchange) is how much of the exchange the pipeline
	// hid behind compute.
	ExchangeOverlap time.Duration
	// MsgsSent is the number of exchange messages this rank posted this
	// step (delta); MsgsElided is the number the sparse neighbor schedule
	// skipped relative to the full P-1 ring (nil sends never posted). Their
	// sum per exchange call is always P-1, so elided/(sent+elided) is the
	// fraction of the all-to-all the topology made unnecessary.
	MsgsSent   int
	MsgsElided int
	// WallStartNS is the wall-clock time this rank began the step, in
	// nanoseconds on the world's common timeline (rank 0's clock; the wire
	// transport offset-corrects it, see Comm.WallClockNS). Zero when the
	// recording side predates the field or deliberately omits it. The
	// engine clamps it monotone per rank, so equal-rank samples sort by
	// wall time even if a mid-run offset update stepped the clock back.
	WallStartNS int64
	// ClockOffsetNS is the recording process's estimated clock offset to
	// rank 0's clock at sampling time (already folded into WallStartNS; kept
	// so cross-rank skew is visible in the timeline itself).
	ClockOffsetNS int64
	// Decision is the balancer's history line when a plan executed this
	// step, empty otherwise. Plans are identical on every rank, so readers
	// normally take rank 0's.
	Decision string
}

// Ring is a fixed-capacity per-rank sample store that keeps the most recent
// samples once full. Each rank owns one; it is not safe for concurrent use.
// A nil *Ring ignores appends and reports no samples.
type Ring struct {
	buf []Sample
	n   int // total samples ever appended
}

// NewRing returns a ring holding at most capacity samples. Capacity must be
// positive; size it to the step count to keep every sample.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{buf: make([]Sample, 0, capacity)}
}

// Append records one sample, evicting the oldest if the ring is full. It is
// allocation-free after the ring reaches capacity, and a no-op on nil.
func (r *Ring) Append(s Sample) {
	if r == nil {
		return
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.n%len(r.buf)] = s
	}
	r.n++
}

// Len returns the number of samples currently held.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Dropped returns how many samples were evicted because the ring was full.
func (r *Ring) Dropped() int {
	if r == nil {
		return 0
	}
	return r.n - len(r.buf)
}

// Samples returns the held samples in append order (oldest first), as a
// fresh slice.
func (r *Ring) Samples() []Sample {
	if r == nil || len(r.buf) == 0 {
		return nil
	}
	out := make([]Sample, 0, len(r.buf))
	if r.n > len(r.buf) {
		// The ring wrapped: the oldest sample sits at the write cursor.
		at := r.n % len(r.buf)
		out = append(out, r.buf[at:]...)
		out = append(out, r.buf[:at]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Timeline is the merged per-step record of one run: every rank's samples,
// sorted by (step, rank). Rank 0's Result carries one when the run sampled.
type Timeline struct {
	// Name is the implementation label ("serial", "baseline", ...).
	Name string
	// P is the rank count; Steps the configured step count.
	P, Steps int
	// Dropped counts samples evicted from capped rings across all ranks;
	// zero means the timeline is complete.
	Dropped int
	// Samples holds every retained sample, sorted by (Step, Rank).
	Samples []Sample
	// Events holds the epoch lifecycle events of a checkpointed run, in
	// occurrence order: commits, rollbacks, re-admissions. Empty when
	// checkpointing was off. Samples from a generation that was rolled back
	// are lost with its world — the rollback events explain the gaps.
	Events []Event
	// PeerXchg holds each rank's end-of-run per-peer exchange matrix row,
	// sorted by rank. Empty on timelines from runs (or schema versions)
	// that did not gather it.
	PeerXchg []PeerXchg
}

// PeerXchg is one rank's row of the per-peer exchange matrix: cumulative
// framed payload bytes and payload messages sent to each destination rank
// over the whole run. Both slices have length P; the self entry is zero.
type PeerXchg struct {
	// Rank is the sending rank.
	Rank int
	// Bytes[d] is the framed columnar payload bytes sent to rank d.
	Bytes []int64
	// Msgs[d] is the number of non-empty payload messages sent to rank d.
	Msgs []int64
}

// Event kinds recorded on a checkpointed run's timeline.
const (
	// EventCommit: an epoch checkpoint committed (all shards reached rank 0).
	EventCommit = "commit"
	// EventRollback: a rank was lost; survivors rolled back to the last
	// committed epoch (Step 0 = restart from scratch, nothing committed yet).
	EventRollback = "rollback"
	// EventReadmit: a replacement worker was admitted into a vacated rank.
	EventReadmit = "readmit"
)

// Event is one epoch lifecycle event: a committed checkpoint, a rollback to
// one, or a replacement rank's re-admission.
type Event struct {
	// Kind is one of EventCommit, EventRollback, EventReadmit.
	Kind string
	// Step is the checkpointed step (commit) or the step rolled back to
	// (rollback); 0 for readmit.
	Step int
	// Gen is the world generation the event happened in (0 = initial).
	Gen int
	// Rank is the re-admitted rank for readmit events, -1 otherwise.
	Rank int
	// WallNS is the event time on the reference wall clock.
	WallNS int64
}

// New assembles a Timeline from per-rank sample slices, sorting the merged
// samples by (step, rank).
func New(name string, p, steps int, perRank ...[]Sample) *Timeline {
	tl := &Timeline{Name: name, P: p, Steps: steps}
	for _, rs := range perRank {
		tl.Samples = append(tl.Samples, rs...)
	}
	sort.SliceStable(tl.Samples, func(i, j int) bool {
		a, b := tl.Samples[i], tl.Samples[j]
		if a.Step != b.Step {
			return a.Step < b.Step
		}
		return a.Rank < b.Rank
	})
	return tl
}
