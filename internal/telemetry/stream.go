package telemetry

import (
	"sync"
	"sync/atomic"
)

// Stream fans per-step samples out to live subscribers (the /events SSE
// endpoint, tests). It follows the package's zero-cost-when-off discipline:
// Publish with no subscribers is one atomic load and nothing else, so the
// engine's sampling path stays allocation-free unless someone is actually
// watching; a nil *Stream ignores everything.
//
// Slow subscribers do not apply backpressure to the simulation: each
// subscription has a bounded buffer and samples that do not fit are dropped
// for that subscriber only. A live view that lags reality by a few dropped
// samples is correct behavior for a tail — the timeline file is the
// lossless record.
type Stream struct {
	subs   atomic.Int32 // subscriber count, checked lock-free by Publish
	mu     sync.Mutex
	chans  map[chan Sample]struct{}
	closed bool
}

// Publish offers one sample to every subscriber, dropping it for any whose
// buffer is full. No-op (and allocation-free) without subscribers.
func (st *Stream) Publish(s Sample) {
	if st == nil || st.subs.Load() == 0 {
		return
	}
	st.mu.Lock()
	for ch := range st.chans {
		select {
		case ch <- s:
		default:
		}
	}
	st.mu.Unlock()
}

// Subscribe registers a subscriber with the given buffer capacity (minimum
// 1) and returns its channel plus a cancel function. The channel closes when
// the subscription is canceled or the stream shuts down; on an
// already-closed stream the returned channel is closed immediately.
func (st *Stream) Subscribe(buf int) (<-chan Sample, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Sample, buf)
	if st == nil {
		close(ch)
		return ch, func() {}
	}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	if st.chans == nil {
		st.chans = make(map[chan Sample]struct{})
	}
	st.chans[ch] = struct{}{}
	st.subs.Store(int32(len(st.chans)))
	st.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			st.mu.Lock()
			if _, ok := st.chans[ch]; ok {
				delete(st.chans, ch)
				close(ch)
			}
			st.subs.Store(int32(len(st.chans)))
			st.mu.Unlock()
		})
	}
	return ch, cancel
}

// Close shuts the stream down: every subscriber channel closes (so blocked
// SSE handlers return) and future Subscribes get a closed channel. It is
// idempotent and part of Serve's shutdown path — the goroutine-leak test
// pins that no handler survives it.
func (st *Stream) Close() {
	if st == nil {
		return
	}
	st.mu.Lock()
	if !st.closed {
		st.closed = true
		for ch := range st.chans {
			close(ch)
		}
		st.chans = nil
		st.subs.Store(0)
	}
	st.mu.Unlock()
}
