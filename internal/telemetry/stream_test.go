package telemetry

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestStreamPublishSubscribe(t *testing.T) {
	var st Stream
	ch, cancel := st.Subscribe(8)
	for step := 1; step <= 3; step++ {
		st.Publish(Sample{Step: step})
	}
	for want := 1; want <= 3; want++ {
		select {
		case s := <-ch:
			if s.Step != want {
				t.Fatalf("got step %d, want %d", s.Step, want)
			}
		case <-time.After(time.Second):
			t.Fatalf("sample %d never arrived", want)
		}
	}
	cancel()
	if _, open := <-ch; open {
		t.Fatal("channel still open after cancel")
	}
	st.Publish(Sample{Step: 4}) // must not panic or block
	cancel()                    // idempotent
}

func TestStreamDropsSlowSubscriber(t *testing.T) {
	var st Stream
	ch, cancel := st.Subscribe(1)
	defer cancel()
	for step := 1; step <= 5; step++ {
		st.Publish(Sample{Step: step})
	}
	s := <-ch
	if s.Step != 1 {
		t.Fatalf("kept step %d, want the first", s.Step)
	}
	select {
	case s := <-ch:
		t.Fatalf("unexpected buffered sample %d (buffer is 1)", s.Step)
	default:
	}
}

func TestStreamCloseWakesSubscribers(t *testing.T) {
	var st Stream
	ch, _ := st.Subscribe(1)
	st.Close()
	select {
	case _, open := <-ch:
		if open {
			t.Fatal("expected closed channel")
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not wake the subscriber")
	}
	// Late subscribers get an already-closed channel, and a nil stream is a
	// no-op everywhere.
	late, cancel := st.Subscribe(1)
	if _, open := <-late; open {
		t.Fatal("subscribe after close returned a live channel")
	}
	cancel()
	var nilStream *Stream
	nilStream.Publish(Sample{})
	nilStream.Close()
	nch, ncancel := nilStream.Subscribe(1)
	if _, open := <-nch; open {
		t.Fatal("nil stream returned a live channel")
	}
	ncancel()
}

// TestStreamPublishIdleAllocationFree pins the zero-cost-when-off rule for
// the streaming hook on Live.Observe: publishing with no subscribers is one
// atomic load.
func TestStreamPublishIdleAllocationFree(t *testing.T) {
	live := NewLive(1)
	if avg := testing.AllocsPerRun(100, func() {
		live.Observe(Sample{Step: 1, Rank: 0})
	}); avg != 0 {
		t.Errorf("idle stream publish: %v allocs per observe, want 0", avg)
	}
}

// TestServeEventsAndHealthz drives the full HTTP surface end to end: an SSE
// client subscribed to /events receives samples observed while it is
// connected, /healthz reports the run identity and step, and Serve's stop
// function terminates the SSE stream.
func TestServeEventsAndHealthz(t *testing.T) {
	live := NewLive(2)
	live.SetRunInfo(RunInfo{Impl: "diffusion", Transport: "tcp", World: 2, LocalRanks: 1})
	addr, stop, err := Serve("127.0.0.1:0", live)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// The initial comment is flushed on connect, so once headers are in the
	// subscription exists; observe two samples and read them back.
	sc := bufio.NewScanner(resp.Body)
	tl := fixtureTimeline()
	go func() {
		for i := range tl.Samples[:2] {
			live.Observe(tl.Samples[i])
		}
	}()
	var got []Sample
	deadline := time.After(5 * time.Second)
	for len(got) < 2 {
		lineCh := make(chan string, 1)
		go func() {
			if sc.Scan() {
				lineCh <- sc.Text()
			} else {
				lineCh <- ""
			}
		}()
		select {
		case line := <-lineCh:
			if data, ok := strings.CutPrefix(line, "data: "); ok {
				s, err := UnmarshalSample([]byte(data))
				if err != nil {
					t.Fatalf("bad SSE sample %q: %v", data, err)
				}
				got = append(got, s)
			}
		case <-deadline:
			t.Fatalf("timed out waiting for SSE samples; got %d", len(got))
		}
	}
	if got[0].Step != tl.Samples[0].Step || got[0].WallStartNS != tl.Samples[0].WallStartNS {
		t.Errorf("first streamed sample drifted: %+v vs %+v", got[0], tl.Samples[0])
	}

	hresp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status    string `json:"status"`
		Step      int64  `json:"step"`
		Impl      string `json:"impl"`
		Transport string `json:"transport"`
		World     int    `json:"world"`
		Local     int    `json:"local_ranks"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hz.Status != "ok" || hz.Impl != "diffusion" || hz.Transport != "tcp" || hz.World != 2 || hz.Local != 1 {
		t.Errorf("healthz %+v", hz)
	}
	if hz.Step != int64(tl.Samples[1].Step) {
		t.Errorf("healthz step %d, want %d", hz.Step, tl.Samples[1].Step)
	}

	// stop() closes the stream first, so the SSE response ends promptly.
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for sc.Scan() {
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream did not terminate after server stop")
	}
}
