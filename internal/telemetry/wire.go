package telemetry

import "fmt"

// Wire-transport observability types. The wire transport (internal/comm/wire)
// counts frames, tracks writer-queue depth, and histograms the one-way
// latency of every data frame it receives (sender's offset-corrected send
// stamp vs the receiver's offset-corrected clock); this file is the neutral
// vocabulary it reports those numbers in, so telemetry does not import the
// transport and the transport does not know about Prometheus.

// LatencyBuckets is the number of power-of-two latency histogram buckets.
// Bucket i counts observations in [2^i µs-ish, 2^(i+1)) — precisely, bucket i
// has upper bound LatencyBucketUpperNS(i) = 1024ns << i, except the last
// bucket which is unbounded. That spans ~1µs to ~4s, plenty for a socket.
const LatencyBuckets = 24

// LatencyBucketUpperNS returns bucket i's exclusive upper bound in
// nanoseconds, or -1 for the final (unbounded) bucket.
func LatencyBucketUpperNS(i int) int64 {
	if i >= LatencyBuckets-1 {
		return -1
	}
	return 1024 << uint(i)
}

// LatencyBucket maps a non-negative latency in nanoseconds to its bucket.
func LatencyBucket(ns int64) int {
	b := 0
	for upper := int64(1024); b < LatencyBuckets-1 && ns >= upper; b, upper = b+1, upper<<1 {
	}
	return b
}

// LatencyHist is a snapshot of a power-of-two latency histogram.
type LatencyHist struct {
	Counts [LatencyBuckets]int64
	SumNS  int64
}

// Count returns the total number of observations.
func (h *LatencyHist) Count() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Merge adds another histogram's observations into h.
func (h *LatencyHist) Merge(o LatencyHist) {
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.SumNS += o.SumNS
}

// Quantile returns an upper-bound estimate (in ns) of the q-quantile
// (0 < q <= 1): the upper edge of the bucket holding that rank, or the lower
// edge for the unbounded last bucket. Returns 0 on an empty histogram.
func (h *LatencyHist) Quantile(q float64) int64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.Counts {
		seen += c
		if seen >= rank {
			if up := LatencyBucketUpperNS(i); up >= 0 {
				return up
			}
			return 1024 << uint(LatencyBuckets-2) // lower edge of the unbounded bucket
		}
	}
	return 0
}

// PeerWire is one node's accounting for one peer connection.
type PeerWire struct {
	Node int // observing node index
	Peer int // peer node index
	// FramesSent counts frames enqueued on the writer toward Peer;
	// FramesRecv counts frames read from Peer (both include control frames).
	FramesSent int64
	FramesRecv int64
	// Writes counts writev syscalls the writer issued toward Peer; the ratio
	// FramesSent/Writes is the coalescing factor (frames per wakeup).
	Writes int64
	// QueueDepth is the writer queue's instantaneous frame count at snapshot
	// time; QueuePeak its high-water mark over the connection's lifetime.
	QueueDepth int64
	QueuePeak  int64
	// OneWay histograms the estimated one-way latency of data frames
	// received FROM Peer: offset-corrected receive time minus the send stamp,
	// clamped at zero. It deliberately includes the sender's writer-queue
	// wait — queueing delay is exactly what the gauge is for.
	OneWay LatencyHist
}

// WireReport is a snapshot of one node's (or several merged nodes') wire
// accounting: per-peer counters plus each node's estimated clock offset to
// node 0's clock, in nanoseconds.
type WireReport struct {
	Peers   []PeerWire
	Offsets map[int]int64
}

// Merge appends another report's peers and offsets into r.
func (r *WireReport) Merge(o WireReport) {
	r.Peers = append(r.Peers, o.Peers...)
	if len(o.Offsets) > 0 && r.Offsets == nil {
		r.Offsets = make(map[int]int64, len(o.Offsets))
	}
	for k, v := range o.Offsets {
		r.Offsets[k] = v
	}
}

// MergedLatency folds every peer's one-way histogram into one.
func (r *WireReport) MergedLatency() LatencyHist {
	var h LatencyHist
	for i := range r.Peers {
		h.Merge(r.Peers[i].OneWay)
	}
	return h
}

// FmtNS renders a nanosecond count human-readably (µs/ms resolution) for
// console summaries.
func FmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
