package model

import (
	"math"
	"testing"

	"github.com/parres/picprk/internal/ampi"
	"github.com/parres/picprk/internal/diffusion"
	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/grid"
)

func workload(t testing.TB, L, n int, r float64, sched dist.Schedule) *Workload {
	t.Helper()
	m := grid.MustMesh(L, 1)
	w, err := NewWorkload(dist.Config{Mesh: m, N: n, Dist: dist.Geometric{R: r}, Seed: 1}, sched)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorkloadConservesParticles(t *testing.T) {
	w := workload(t, 100, 50000, 0.95, nil)
	if w.Total() != 50000 {
		t.Fatalf("initial total %v", w.Total())
	}
	for s := 0; s < 500; s++ {
		w.Step()
		if w.Total() != 50000 {
			t.Fatalf("step %d: total %v", s, w.Total())
		}
	}
}

func TestWorkloadShiftMatchesClosedForm(t *testing.T) {
	// After s steps the histogram is the initial one shifted by s·(2k+1).
	w := workload(t, 64, 10000, 0.9, nil)
	initial := make([]float64, 64)
	for c := 0; c < 64; c++ {
		initial[c] = w.RangeSum(c, c+1)
	}
	for s := 0; s < 10; s++ {
		w.Step()
	}
	for c := 0; c < 64; c++ {
		want := initial[(c-10+64)%64]
		if got := w.RangeSum(c, c+1); got != want {
			t.Fatalf("column %d after 10 steps: %v, want %v", c, got, want)
		}
	}
}

func TestWorkloadRangeSumWraps(t *testing.T) {
	w := workload(t, 16, 1000, 1.0, nil) // uniform
	full := w.RangeSum(0, 16)
	if math.Abs(full-1000) > 1e-9 {
		t.Fatalf("full range %v", full)
	}
	// A wrapped range [12, 20) == [12,16)+[0,4).
	wrapped := w.RangeSum(12, 20)
	parts := w.RangeSum(12, 16) + w.RangeSum(0, 4)
	if math.Abs(wrapped-parts) > 1e-9 {
		t.Fatalf("wrapped %v != parts %v", wrapped, parts)
	}
}

func TestWorkloadEvents(t *testing.T) {
	sched := dist.Schedule{
		{Step: 5, Region: dist.Rect{X0: 0, X1: 16, Y0: 0, Y1: 16}, Inject: 4000},
		{Step: 8, Region: dist.Rect{X0: 0, X1: 16, Y0: 0, Y1: 8}, Remove: true},
	}
	w := workload(t, 16, 1000, 1.0, sched)
	for s := 1; s <= 5; s++ {
		w.Step()
	}
	if math.Abs(w.Total()-5000) > 1e-6 {
		t.Fatalf("after injection: %v", w.Total())
	}
	for s := 6; s <= 8; s++ {
		w.Step()
	}
	// Removal of the lower half of every column removes half the particles.
	if math.Abs(w.Total()-2500) > 1e-6 {
		t.Fatalf("after removal: %v", w.Total())
	}
}

func TestWorkloadHistogramMatchesRangeSum(t *testing.T) {
	w := workload(t, 32, 5000, 0.9, nil)
	for s := 0; s < 7; s++ {
		w.Step()
	}
	h := w.Histogram()
	for c := 0; c < 32; c++ {
		if math.Abs(float64(h[c])-w.RangeSum(c, c+1)) > 0.5 {
			t.Fatalf("column %d: histogram %d vs range %v", c, h[c], w.RangeSum(c, c+1))
		}
	}
}

func TestMachineCostMonotonicity(t *testing.T) {
	m := Edison()
	if m.MsgCost(0, 0, 1000) != 0 {
		t.Error("same-core message should be free")
	}
	is := m.MsgCost(0, 1, 1000)  // intra-socket
	in := m.MsgCost(0, 13, 1000) // intra-node (across sockets)
	xn := m.MsgCost(0, 24, 1000) // inter-node
	if !(is < in && in < xn) {
		t.Errorf("cost ordering violated: %v %v %v", is, in, xn)
	}
	if m.MsgCost(0, 1, 2000) <= m.MsgCost(0, 1, 1000) {
		t.Error("cost must grow with bytes")
	}
	if m.SyncCost(1) != 0 || m.SyncCost(2) <= 0 {
		t.Error("sync cost endpoints wrong")
	}
	if m.AllreduceCost(1, 100) != 0 || m.AllreduceCost(64, 100) <= m.AllreduceCost(4, 100) {
		t.Error("allreduce cost must grow with P")
	}
}

const testSteps = 1500

func TestSerialTimeMatchesComputeBound(t *testing.T) {
	m := Edison()
	w := workload(t, 128, 100000, 0.99, nil)
	o := SimulateSerial(m, w, testSteps)
	want := m.TimePerParticle * 100000 * testSteps
	if math.Abs(o.Seconds-want) > want*1e-9 {
		t.Fatalf("serial %v, want %v", o.Seconds, want)
	}
}

func TestBaselineSlowerThanIdealFasterThanSerial(t *testing.T) {
	m := Edison()
	serial := SimulateSerial(m, workload(t, 128, 100000, 0.99, nil), testSteps)
	base := SimulateBaseline(m, workload(t, 128, 100000, 0.99, nil), 8, testSteps)
	if base.Seconds >= serial.Seconds {
		t.Fatalf("baseline %v not faster than serial %v", base.Seconds, serial.Seconds)
	}
	if base.Seconds <= serial.Seconds/8 {
		t.Fatalf("baseline %v beat perfect speedup %v on a skewed workload", base.Seconds, serial.Seconds/8)
	}
	if base.MaxFinalLoad <= base.IdealLoad {
		t.Fatalf("skewed baseline should be imbalanced: max %v ideal %v", base.MaxFinalLoad, base.IdealLoad)
	}
}

func TestDiffusionBeatsBaselineOnSkewedWorkload(t *testing.T) {
	m := Edison()
	base := SimulateBaseline(m, workload(t, 128, 200000, 0.97, nil), 16, testSteps)
	params := diffusion.Params{Every: 2, Threshold: 0.02, Width: 2, MinWidth: 3}
	diff := SimulateDiffusion(m, workload(t, 128, 200000, 0.97, nil), 16, testSteps, params)
	if diff.Seconds >= base.Seconds {
		t.Fatalf("diffusion %v did not beat baseline %v", diff.Seconds, base.Seconds)
	}
	if diff.Migrations == 0 {
		t.Fatal("diffusion never migrated")
	}
	if diff.MaxFinalLoad >= base.MaxFinalLoad {
		t.Fatalf("diffusion max load %v not better than baseline %v", diff.MaxFinalLoad, base.MaxFinalLoad)
	}
}

func TestAMPIBeatsBaselineOnSkewedWorkload(t *testing.T) {
	m := Edison()
	base := SimulateBaseline(m, workload(t, 128, 200000, 0.97, nil), 16, testSteps)
	am := SimulateAMPI(m, workload(t, 128, 200000, 0.97, nil), 16, testSteps,
		AMPIModelParams{Overdecompose: 8, Every: 100})
	if am.Seconds >= base.Seconds {
		t.Fatalf("ampi %v did not beat baseline %v", am.Seconds, base.Seconds)
	}
	if am.Migrations == 0 {
		t.Fatal("ampi never migrated")
	}
}

func TestUniformWorkloadNeedsNoBalancing(t *testing.T) {
	// With r=1 the distribution is uniform: baseline is already balanced
	// and the balanced variants must not be much better (the paper's
	// r=1 degenerate case).
	m := Edison()
	mk := func() *Workload { return workload(t, 128, 100000, 1.0, nil) }
	base := SimulateBaseline(m, mk(), 16, testSteps)
	diff := SimulateDiffusion(m, mk(), 16, testSteps, diffusion.Params{Every: 2, Threshold: 0.02, Width: 2, MinWidth: 3})
	if diff.Seconds < base.Seconds*0.95 {
		t.Fatalf("diffusion %v should not beat balanced baseline %v", diff.Seconds, base.Seconds)
	}
	if ratio := base.MaxFinalLoad / base.IdealLoad; ratio > 1.1 {
		t.Fatalf("uniform baseline imbalance %v", ratio)
	}
}

func TestGreedyEpochCostGrowsWithFrequency(t *testing.T) {
	// Figure 5's green line: smaller F = more reshuffles = more LB time.
	m := Edison()
	fast := SimulateAMPI(m, workload(t, 128, 200000, 0.97, nil), 16, testSteps, AMPIModelParams{Overdecompose: 4, Every: 20})
	slow := SimulateAMPI(m, workload(t, 128, 200000, 0.97, nil), 16, testSteps, AMPIModelParams{Overdecompose: 4, Every: 500})
	if fast.LBSeconds <= slow.LBSeconds {
		t.Fatalf("LB cost at F=20 (%v) should exceed F=500 (%v)", fast.LBSeconds, slow.LBSeconds)
	}
}

func TestOverdecompositionReducesImbalance(t *testing.T) {
	// Figure 5's red line mechanism: more VPs = finer balancing granularity.
	m := Edison()
	d1 := SimulateAMPI(m, workload(t, 128, 200000, 0.97, nil), 16, testSteps, AMPIModelParams{Overdecompose: 1, Every: 200})
	d8 := SimulateAMPI(m, workload(t, 128, 200000, 0.97, nil), 16, testSteps, AMPIModelParams{Overdecompose: 8, Every: 200})
	if d8.MaxFinalLoad >= d1.MaxFinalLoad {
		t.Fatalf("d=8 max load %v not better than d=1 %v", d8.MaxFinalLoad, d1.MaxFinalLoad)
	}
}

func TestRefineMovesLessThanGreedy(t *testing.T) {
	m := Edison()
	greedy := SimulateAMPI(m, workload(t, 128, 200000, 0.97, nil), 16, testSteps,
		AMPIModelParams{Overdecompose: 4, Every: 100, Strategy: ampi.GreedyLB{}})
	refine := SimulateAMPI(m, workload(t, 128, 200000, 0.97, nil), 16, testSteps,
		AMPIModelParams{Overdecompose: 4, Every: 100, Strategy: ampi.RefineLB{}})
	if refine.Migrations >= greedy.Migrations {
		t.Fatalf("refine moved %d VPs, greedy %d — refine should move fewer", refine.Migrations, greedy.Migrations)
	}
}

func TestSimulationsAreDeterministic(t *testing.T) {
	m := Edison()
	a := SimulateAMPI(m, workload(t, 64, 50000, 0.95, nil), 8, 500, AMPIModelParams{Overdecompose: 4, Every: 50})
	b := SimulateAMPI(m, workload(t, 64, 50000, 0.95, nil), 8, 500, AMPIModelParams{Overdecompose: 4, Every: 50})
	if a != b {
		t.Fatalf("ampi model not deterministic:\n%+v\n%+v", a, b)
	}
	c := SimulateDiffusion(m, workload(t, 64, 50000, 0.95, nil), 8, 500, diffusion.Params{Every: 5, Threshold: 0.02, Width: 5, MinWidth: 6})
	d := SimulateDiffusion(m, workload(t, 64, 50000, 0.95, nil), 8, 500, diffusion.Params{Every: 5, Threshold: 0.02, Width: 5, MinWidth: 6})
	if c != d {
		t.Fatalf("diffusion model not deterministic")
	}
}

func TestTunersReturnBestOfGrid(t *testing.T) {
	m := Edison()
	wfac := func() *Workload { return workload(t, 64, 50000, 0.95, nil) }
	grid := []diffusion.Params{
		{Every: 2, Threshold: 0.02, Width: 2, MinWidth: 3},
		{Every: 100, Threshold: 0.02, Width: 100, MinWidth: 101}, // effectively off
	}
	p, best := TuneDiffusion(m, wfac, 8, 500, grid)
	for _, g := range grid {
		o := SimulateDiffusion(m, wfac(), 8, 500, g)
		if o.Seconds < best.Seconds {
			t.Fatalf("tuner missed better params %+v (%v < %v at %+v)", g, o.Seconds, best.Seconds, p)
		}
	}
}

func TestModelDiffusionDecisionMatchesDriverDecision(t *testing.T) {
	// The model and the real driver share diffusion.BalanceStepGuarded; for
	// the same histogram they must compute identical cuts. This pins the
	// "same decision logic" design claim.
	w := workload(t, 64, 20000, 0.9, nil)
	for s := 0; s < 40; s++ {
		w.Step()
	}
	hist := w.Histogram()
	var manual [64]int64
	for c := 0; c < 64; c++ {
		manual[c] = int64(w.RangeSum(c, c+1) + 0.5)
	}
	for c := range hist {
		if hist[c] != manual[c] {
			t.Fatalf("histogram disagrees with range sums at %d", c)
		}
	}
}
