package model

import (
	"fmt"

	"github.com/parres/picprk/internal/ampi"
	"github.com/parres/picprk/internal/balance"
	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/decomp"
	"github.com/parres/picprk/internal/diffusion"
)

// Outcome reports one modeled run.
type Outcome struct {
	// Seconds is the modeled makespan (sum over steps of the slowest
	// rank's compute+comm, plus synchronization and LB epochs).
	Seconds float64
	// ComputeSeconds is the part attributable to the slowest rank's
	// particle moves; CommSeconds to particle exchange; LBSeconds to load
	// balancing (decision collectives + migration).
	ComputeSeconds, CommSeconds, LBSeconds float64
	// MaxFinalLoad is the largest per-rank particle count at the end of the
	// run (paper §V-B's metric) and IdealLoad the perfectly balanced count.
	MaxFinalLoad, IdealLoad float64
	// Migrations counts LB data movements (cut shifts or VP moves).
	Migrations int
	// BytesMigrated is the total migration payload.
	BytesMigrated float64
}

func (o Outcome) String() string {
	return fmt.Sprintf("%.2fs (compute %.2f, comm %.2f, lb %.2f) maxLoad %.0f/%.0f migrations %d",
		o.Seconds, o.ComputeSeconds, o.CommSeconds, o.LBSeconds, o.MaxFinalLoad, o.IdealLoad, o.Migrations)
}

// SimulateBaseline models the paper's "mpi-2d" implementation: static
// near-square 2D block decomposition, no load balancing.
func SimulateBaseline(m Machine, w *Workload, p, steps int) Outcome {
	px, py := comm.Dims2D(p)
	xb := decomp.MustUniformBounds(w.L, px)
	out := Outcome{}
	for s := 0; s < steps; s++ {
		stepRanks2D(m, w, px, py, xb, &out)
		w.Step()
	}
	finishRanks2D(w, px, py, xb, &out)
	return out
}

// SimulateDiffusion models the paper's "mpi-2d-LB" implementation: the
// baseline plus the diffusion-based x-direction boundary balancing of
// §IV-B, with its three knobs (frequency, threshold, border width).
func SimulateDiffusion(m Machine, w *Workload, p, steps int, params diffusion.Params) Outcome {
	o, _ := SimulateDiffusionTraced(m, w, p, steps, params)
	return o
}

// SimulateDiffusionTraced is SimulateDiffusion returning, alongside the
// outcome, the balancing history of the policy — the very same
// balance.DiffusionBalancer the real driver runs, fed the analytic
// histogram instead of a particle reduction. For identical load histories
// the returned log is identical to the driver's Result.BalanceLog, which a
// test asserts.
func SimulateDiffusionTraced(m Machine, w *Workload, p, steps int, params diffusion.Params) (Outcome, []string) {
	px, py := comm.Dims2D(p)
	xb := decomp.MustUniformBounds(w.L, px)
	yb := decomp.MustUniformBounds(w.L, py)
	bal := &balance.DiffusionBalancer{Params: params}
	needs := bal.Needs()
	out := Outcome{}
	for s := 1; s <= steps; s++ {
		stepRanks2D(m, w, px, py, xb, &out)
		w.Step()
		if s%params.Every == 0 && px > 1 {
			loads := balance.Loads{X: xb, Y: yb, Cores: p, Cells: w.Histogram()}
			if needs.Rows {
				loads.Rows = w.RowHistogram()
			}
			bal.Observe(loads)
			plan := bal.Plan(s)
			// Decision protocol cost: the paper's scheme reduces per-block
			// sums along each column of processors and exchanges border
			// column loads with x-neighbors — payload O(px + Width), not the
			// full histogram.
			cost := m.AllreduceCost(p, float64(8*(px+params.Width)))
			if params.TwoPhase {
				// Phase 2 pays the analogous row-sum reduction. The model's
				// workload is uniform in y (paper §III-E1), so the y-cuts
				// never move and phase 2 contributes only decision cost —
				// which is exactly why the paper's experiments restrict
				// balancing to the x direction.
				cost += m.AllreduceCost(p, float64(8*(py+params.Width)))
			}
			if plan.X != nil {
				newX := *plan.X
				// Each moved cut ships border columns between the adjacent
				// rank columns, one message per row of ranks; the epoch's
				// extra time is the slowest pair's cost.
				// Unlike the AMPI reshuffle, diffusion transfers are strictly
				// nearest-neighbor (the subdomains stay compact, §V-B), so
				// concurrent pairs do not contend for bisection bandwidth;
				// the epoch costs the slowest single pair.
				var worst float64
				rowCells := float64(w.L) / float64(py)
				for j := 1; j < px; j++ {
					lo, hi := min(xb.Cuts[j], newX.Cuts[j]), max(xb.Cuts[j], newX.Cuts[j])
					if lo == hi {
						continue
					}
					moved := w.RangeSum(lo, hi) / float64(py)
					bytes := float64(hi-lo)*rowCells*m.BytesPerCell + moved*m.BytesPerParticle
					// The transfer happens between x-adjacent ranks in every
					// row; the worst row pair crosses a node boundary iff any
					// does — model each row pair and keep the slowest.
					for cy := 0; cy < py; cy++ {
						a := cy*px + (j - 1)
						b := cy*px + j
						if c := m.MsgCost(a, b, bytes); c > worst {
							worst = c
						}
					}
					out.Migrations++
					out.BytesMigrated += bytes * float64(py)
				}
				cost += worst
				xb = newX
			}
			if plan.Y != nil {
				// The analytic workload is y-uniform, so a y move is all but
				// impossible; charge it like an x move of the same width and
				// keep the cuts coherent regardless.
				newY := *plan.Y
				colCells := float64(w.L) / float64(px)
				var worst float64
				for j := 1; j < py; j++ {
					lo, hi := min(yb.Cuts[j], newY.Cuts[j]), max(yb.Cuts[j], newY.Cuts[j])
					if lo == hi {
						continue
					}
					moved := w.Total() * float64(hi-lo) / float64(w.L) / float64(px)
					bytes := float64(hi-lo)*colCells*m.BytesPerCell + moved*m.BytesPerParticle
					for cx := 0; cx < px; cx++ {
						a := (j-1)*px + cx
						b := j*px + cx
						if c := m.MsgCost(a, b, bytes); c > worst {
							worst = c
						}
					}
					out.Migrations++
					out.BytesMigrated += bytes * float64(px)
				}
				cost += worst
				yb = newY
			}
			if !plan.Empty() {
				bal.Apply(plan)
			}
			out.Seconds += cost
			out.LBSeconds += cost
		}
	}
	finishRanks2D(w, px, py, xb, &out)
	return out, bal.History()
}

// stepRanks2D charges one step of the block-decomposed implementations:
// every rank moves its particles and exchanges boundary-crossing particles
// with its x-neighbor.
func stepRanks2D(m Machine, w *Workload, px, py int, xb decomp.Bounds, out *Outcome) {
	var maxCost, maxCompute float64
	pyf := float64(py)
	for cx := 0; cx < px; cx++ {
		lo, hi := xb.Lo(cx), xb.Hi(cx)
		load := w.RangeSum(lo, hi) / pyf
		compute := m.TimePerParticle * load
		// Outgoing particles: those in the trailing Speed columns cross to
		// the next block in the drift direction; incoming from the previous.
		width := hi - lo
		span := min(w.Speed, width)
		crossOut := w.RangeSum(hi-span, hi) / pyf
		var nx, pv int
		if w.Dir >= 0 {
			nx, pv = (cx+1)%px, (cx-1+px)%px
		} else {
			nx, pv = (cx-1+px)%px, (cx+1)%px
		}
		plo, phi := xb.Lo(pv), xb.Hi(pv)
		pspan := min(w.Speed, phi-plo)
		crossIn := w.RangeSum(phi-pspan, phi) / pyf
		for cy := 0; cy < py; cy++ {
			me := cy*px + cx
			cost := compute
			cost += m.MsgCost(me, cy*px+nx, crossOut*m.BytesPerParticle)
			cost += m.MsgCost(cy*px+pv, me, crossIn*m.BytesPerParticle)
			// Per-step halo synchronization with the four spatial neighbors
			// (counts are exchanged even when no particles cross).
			cost += m.MsgCost(me, cy*px+(cx+1)%px, m.HaloBytes)
			cost += m.MsgCost(me, cy*px+(cx-1+px)%px, m.HaloBytes)
			if py > 1 {
				cost += m.MsgCost(me, ((cy+1)%py)*px+cx, m.HaloBytes)
				cost += m.MsgCost(me, ((cy-1+py)%py)*px+cx, m.HaloBytes)
			}
			if cost > maxCost {
				maxCost = cost
			}
		}
		if compute > maxCompute {
			maxCompute = compute
		}
	}
	step := maxCost + m.SyncCost(px*py)
	out.Seconds += step
	out.ComputeSeconds += maxCompute
	out.CommSeconds += step - maxCompute
}

func finishRanks2D(w *Workload, px, py int, xb decomp.Bounds, out *Outcome) {
	var maxLoad float64
	for cx := 0; cx < px; cx++ {
		if l := w.RangeSum(xb.Lo(cx), xb.Hi(cx)) / float64(py); l > maxLoad {
			maxLoad = l
		}
	}
	out.MaxFinalLoad = maxLoad
	out.IdealLoad = w.Total() / float64(px*py)
}

// AMPIModelParams tunes the modeled "ampi" implementation.
type AMPIModelParams struct {
	// Overdecompose is d: d·P virtual processors.
	Overdecompose int
	// Every is F: steps between load-balancer invocations.
	Every int
	// Strategy is the balancer; nil means GreedyLB, Charm++'s classic
	// default: a full locality-agnostic reassignment each invocation, the
	// behaviour behind the paper's Figure 5 sensitivity to F and the
	// §V-B fragmentation discussion. RefineLB is available as an ablation.
	Strategy ampi.Strategy
}

// SimulateAMPI models the paper's "ampi" implementation: the §IV-A
// algorithm over-decomposed into d·P VPs, rebalanced every F steps by a
// locality-agnostic runtime strategy. VP-to-core fragmentation and its
// communication penalty emerge from the owner table: after migrations, VPs
// adjacent in the domain may live on different nodes, so their per-step
// boundary traffic pays inter-node cost — the effect the paper blames for
// the strong-scaling gap (§V-B).
func SimulateAMPI(m Machine, w *Workload, p, steps int, params AMPIModelParams) Outcome {
	o, _ := SimulateAMPITraced(m, w, p, steps, params)
	return o
}

// SimulateAMPITraced is SimulateAMPI returning, alongside the outcome, the
// balancing history of the policy — the same balance.AMPIBalancer the real
// driver runs, fed analytic per-VP loads.
func SimulateAMPITraced(m Machine, w *Workload, p, steps int, params AMPIModelParams) (Outcome, []string) {
	if params.Strategy == nil {
		params.Strategy = ampi.GreedyLB{}
	}
	bal := balance.NewAMPIBalancer(params.Strategy, params.Every)
	px, py := comm.Dims2D(p)
	dx, dy := comm.Dims2D(params.Overdecompose)
	vx, vy := px*dx, py*dy
	if vx > w.L {
		// Clamp over-decomposition to one column of cells per VP.
		vx = w.L
	}
	vxb := decomp.MustUniformBounds(w.L, vx)
	if ta, ok := params.Strategy.(ampi.TopologyAware); ok {
		ta.SetTopology(ampi.GridNeighbors(vx, vy), m.CoresPerNode)
	}
	place, err := ampi.BlockPlacement(vx, vy, px, py)
	if err != nil {
		// vx was clamped; fall back to a contiguous striping that is still
		// compact per core.
		place = func(vp int) int {
			gx, gy := vp%vx, vp/vx
			return (gy*py/vy)*px + gx*px/vx
		}
	}
	nvp := vx * vy
	owner := make([]int, nvp)
	for vp := range owner {
		owner[vp] = place(vp)
	}

	out := Outcome{}
	vyf := float64(vy)
	xload := make([]float64, vx)
	coreCost := make([]float64, p)
	coreCompute := make([]float64, p)
	coreNVP := make([]int, p)
	for _, c := range owner {
		coreNVP[c]++
	}
	vpLoads := make([]float64, nvp)

	for s := 1; s <= steps; s++ {
		for i := 0; i < vx; i++ {
			xload[i] = w.RangeSum(vxb.Lo(i), vxb.Hi(i))
		}
		for c := 0; c < p; c++ {
			coreCompute[c] = float64(coreNVP[c]) * m.VPOverheadPerStep
		}
		for vp := 0; vp < nvp; vp++ {
			coreCompute[owner[vp]] += m.TimePerParticle * xload[vp%vx] / vyf
		}
		copy(coreCost, coreCompute)
		// Boundary traffic between x-adjacent VPs, plus per-step halo
		// synchronization with all four VP neighbors: a fragmented owner
		// table turns these into inter-node messages.
		for i := 0; i < vx; i++ {
			width := vxb.Width(i)
			span := min(w.Speed, width)
			cross := w.RangeSum(vxb.Hi(i)-span, vxb.Hi(i)) / vyf
			var ni int
			if w.Dir >= 0 {
				ni = (i + 1) % vx
			} else {
				ni = (i - 1 + vx) % vx
			}
			for j := 0; j < vy; j++ {
				me := owner[j*vx+i]
				if dst := owner[j*vx+ni]; dst != me {
					c := m.MsgCost(me, dst, cross*m.BytesPerParticle)
					coreCost[me] += c
					coreCost[dst] += c
				}
				halo := func(other int) {
					if other != me {
						coreCost[me] += m.MsgCost(me, other, m.HaloBytes)
					}
				}
				halo(owner[j*vx+(i+1)%vx])
				halo(owner[j*vx+(i-1+vx)%vx])
				if vy > 1 {
					halo(owner[((j+1)%vy)*vx+i])
					halo(owner[((j-1+vy)%vy)*vx+i])
				}
			}
		}
		var maxCost, maxCompute float64
		for c := 0; c < p; c++ {
			if coreCost[c] > maxCost {
				maxCost = coreCost[c]
			}
			if coreCompute[c] > maxCompute {
				maxCompute = coreCompute[c]
			}
		}
		step := maxCost + m.SyncCost(p)
		out.Seconds += step
		out.ComputeSeconds += maxCompute
		out.CommSeconds += step - maxCompute

		w.Step()

		if s%params.Every == 0 && p > 1 {
			for i := 0; i < vx; i++ {
				xload[i] = w.RangeSum(vxb.Lo(i), vxb.Hi(i))
			}
			for vp := 0; vp < nvp; vp++ {
				vpLoads[vp] = xload[vp%vx] / vyf
			}
			bal.Observe(balance.Loads{Units: vpLoads, Owner: owner, Cores: p})
			plan := bal.Plan(s)
			cost := m.AllreduceCost(p, float64(8*nvp))
			newOwner := owner
			if plan.Owner != nil {
				newOwner = plan.Owner
			}
			extra := make([]float64, p)
			cellsPerVP := float64(w.L) / float64(vx) * float64(w.L) / vyf
			var intraBytes, interBytes float64
			for vp := 0; vp < nvp; vp++ {
				if newOwner[vp] == owner[vp] {
					continue
				}
				bytes := cellsPerVP*m.BytesPerCell + vpLoads[vp]*m.BytesPerParticle
				c := m.MsgCost(owner[vp], newOwner[vp], bytes)
				extra[owner[vp]] += c
				extra[newOwner[vp]] += c
				coreNVP[owner[vp]]--
				coreNVP[newOwner[vp]]++
				out.Migrations++
				out.BytesMigrated += bytes
				if m.SameNode(owner[vp], newOwner[vp]) {
					intraBytes += bytes
				} else {
					interBytes += bytes
				}
			}
			var worst float64
			for c := 0; c < p; c++ {
				if extra[c] > worst {
					worst = extra[c]
				}
			}
			// A bulk reshuffle is globally limited: the epoch cannot finish
			// faster than the total moved volume over the machine's
			// aggregate migration throughput (node-local moves are
			// memcpy-class, cross-node moves pay the network).
			if agg := m.MigrationEpochTime(p, intraBytes, interBytes); agg > worst {
				worst = agg
			}
			cost += worst
			if plan.Owner != nil {
				owner = plan.Owner
				bal.Apply(plan)
			}
			out.Seconds += cost
			out.LBSeconds += cost
		}
	}

	// Final per-core loads for the paper's §V-B metric.
	for i := 0; i < vx; i++ {
		xload[i] = w.RangeSum(vxb.Lo(i), vxb.Hi(i))
	}
	coreLoad := make([]float64, p)
	for vp := 0; vp < nvp; vp++ {
		coreLoad[owner[vp]] += xload[vp%vx] / vyf
	}
	for _, l := range coreLoad {
		if l > out.MaxFinalLoad {
			out.MaxFinalLoad = l
		}
	}
	out.IdealLoad = w.Total() / float64(p)
	return out, bal.History()
}

// SimulateSerial models the single-core run used as the speedup baseline.
func SimulateSerial(m Machine, w *Workload, steps int) Outcome {
	out := Outcome{}
	for s := 0; s < steps; s++ {
		t := m.TimePerParticle * w.Total()
		out.Seconds += t
		out.ComputeSeconds += t
		w.Step()
	}
	out.MaxFinalLoad = w.Total()
	out.IdealLoad = w.Total()
	return out
}
