package model

import (
	"fmt"

	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/grid"
)

// Workload is the analytic particle-distribution state: a per-cell-column
// histogram that rotates rightward (2k+1) columns per step (paper §III-E1)
// and is uniform in y. Injection/removal events perturb it.
type Workload struct {
	L     int
	Shift int // columns shifted so far (mod L)
	Speed int // (2k+1) columns per step
	Dir   int // +1 or -1

	// base[c] is the particle count currently at column position... the
	// physical column of logical index c is (c + Shift·Dir) mod L; sums are
	// taken over physical ranges by un-rotating into logical space.
	base   []float64
	prefix []float64 // prefix[i] = sum(base[:i]), rebuilt when base changes

	events dist.Schedule
	step   int
}

// NewWorkload builds the analytic workload matching a dist.Config and event
// schedule: the same column apportionment as the real initializer.
func NewWorkload(cfg dist.Config, sched dist.Schedule) (*Workload, error) {
	counts, err := dist.ColumnCounts(cfg)
	if err != nil {
		return nil, err
	}
	if err := sched.Validate(cfg.Mesh); err != nil {
		return nil, err
	}
	dir := cfg.Dir
	if dir == 0 {
		dir = 1
	}
	w := &Workload{
		L:      cfg.Mesh.L,
		Speed:  2*cfg.K + 1,
		Dir:    dir,
		base:   make([]float64, cfg.Mesh.L),
		events: sched.Sorted(),
	}
	for i, c := range counts {
		w.base[i] = float64(c)
	}
	w.rebuildPrefix()
	return w, nil
}

func (w *Workload) rebuildPrefix() {
	if w.prefix == nil {
		w.prefix = make([]float64, w.L+1)
	}
	w.prefix[0] = 0
	for i, v := range w.base {
		w.prefix[i+1] = w.prefix[i] + v
	}
}

// Total returns the current particle count.
func (w *Workload) Total() float64 { return w.prefix[w.L] }

// Step advances one time step: the histogram rotates and any events
// scheduled for the new step fire.
func (w *Workload) Step() {
	w.Shift = (w.Shift + w.Speed) % w.L
	w.step++
	for _, ev := range w.events.At(w.step) {
		w.applyEvent(ev)
	}
}

// applyEvent edits the base histogram in logical space. Removal deletes the
// fraction of each affected column that lies in the event's y-range
// (the workload is y-uniform); injection adds uniformly over the region.
func (w *Workload) applyEvent(ev dist.Event) {
	if ev.Remove {
		yFrac := float64(ev.Region.Y1-ev.Region.Y0) / float64(w.L)
		for c := ev.Region.X0; c < ev.Region.X1; c++ {
			w.base[w.logical(c)] *= 1 - yFrac
		}
	}
	if ev.Inject > 0 {
		per := float64(ev.Inject) / float64(ev.Region.X1-ev.Region.X0)
		for c := ev.Region.X0; c < ev.Region.X1; c++ {
			w.base[w.logical(c)] += per
		}
	}
	w.rebuildPrefix()
}

// logical maps a physical column to its index in base given the current
// rotation.
func (w *Workload) logical(phys int) int {
	return grid.WrapIndex(phys-w.Dir*w.Shift, w.L)
}

// RangeSum returns the particle count currently in physical columns
// [a, b) (b may exceed L to express wrapped ranges; the range length must
// not exceed L).
func (w *Workload) RangeSum(a, b int) float64 {
	if b < a || b-a > w.L {
		panic(fmt.Sprintf("model: bad range [%d,%d)", a, b))
	}
	if b == a {
		return 0
	}
	// Un-rotate: physical [a,b) corresponds to logical [a-shift, b-shift).
	la := w.logical(a)
	width := b - a
	if la+width <= w.L {
		return w.prefix[la+width] - w.prefix[la]
	}
	return (w.prefix[w.L] - w.prefix[la]) + w.prefix[la+width-w.L]
}

// Histogram materializes the current physical per-column histogram as
// int64, which the diffusion decision function consumes.
func (w *Workload) Histogram() []int64 {
	out := make([]int64, w.L)
	for phys := 0; phys < w.L; phys++ {
		out[phys] = int64(w.base[w.logical(phys)] + 0.5)
	}
	return out
}

// RowHistogram materializes the per-cell-row histogram for the two-phase
// diffusion decision. The analytic workload is uniform in y (paper
// §III-E1), so every row carries Total()/L particles.
func (w *Workload) RowHistogram() []int64 {
	out := make([]int64, w.L)
	per := int64(w.Total()/float64(w.L) + 0.5)
	for i := range out {
		out[i] = per
	}
	return out
}
