package model

import (
	"testing"

	"github.com/parres/picprk/internal/ampi"
	"github.com/parres/picprk/internal/diffusion"
)

// The paper's §V-B attributes the AMPI strong-scaling gap to
// locality-agnostic VP migration fragmenting the subdomains, and closes
// with the hypothesis that a balancer "properly hinted" about locality
// would not suffer it. These ablations test that causal chain in the model.

func TestHintedStrategyReducesModeledFragmentationPenalty(t *testing.T) {
	m := Edison()
	const p, steps = 96, 1500
	mk := func() *Workload { return workload(t, 1498, 600000, 0.999, nil) }

	greedy := SimulateAMPI(m, mk(), p, steps, AMPIModelParams{Overdecompose: 8, Every: 160, Strategy: ampi.GreedyLB{}})
	hinted := SimulateAMPI(m, mk(), p, steps, AMPIModelParams{Overdecompose: 8, Every: 160, Strategy: &ampi.HintedGreedyLB{}})

	// The hint must cut the communication share of the makespan.
	if hinted.CommSeconds >= greedy.CommSeconds {
		t.Errorf("hinted comm %.3fs not below greedy %.3fs", hinted.CommSeconds, greedy.CommSeconds)
	}
	// And the total must improve: same balance class, less fragmentation.
	if hinted.Seconds >= greedy.Seconds {
		t.Errorf("hinted total %.3fs not below greedy %.3fs", hinted.Seconds, greedy.Seconds)
	}
}

func TestFatNodeNarrowsAMPIGap(t *testing.T) {
	// On a machine with few node boundaries, locality-agnostic migration
	// hurts less: the ampi/diffusion gap at multi-node strong scaling must
	// shrink relative to the Edison-class machine.
	const p, steps = 384, 1500
	mk := func() *Workload { return workload(t, 1498, 600000, 0.999, nil) }
	gap := func(m Machine) float64 {
		diff := SimulateDiffusion(m, mk(), p, steps, diffusion.Params{Every: 2, Threshold: 0.02, Width: 4, MinWidth: 5})
		am := SimulateAMPI(m, mk(), p, steps, AMPIModelParams{Overdecompose: 4, Every: 640})
		return am.Seconds / diff.Seconds
	}
	edison := gap(Edison())
	fat := gap(FatNode())
	if fat >= edison {
		t.Errorf("fat-node ampi/diffusion gap %.2f not below Edison's %.2f", fat, edison)
	}
}

func TestDiffusionKnobsInterfere(t *testing.T) {
	// The paper (§IV-B) notes frequency, threshold and width "have
	// interfering results … and therefore should be co-tuned": a width that
	// is good at one frequency is bad at another, because the product
	// Width/Every must outpace the drift.
	m := Edison()
	mk := func() *Workload { return workload(t, 1498, 600000, 0.999, nil) }
	const p, steps = 24, 1500

	fastNarrow := SimulateDiffusion(m, mk(), p, steps, diffusion.Params{Every: 2, Threshold: 0.02, Width: 4, MinWidth: 5})
	slowNarrow := SimulateDiffusion(m, mk(), p, steps, diffusion.Params{Every: 50, Threshold: 0.02, Width: 4, MinWidth: 5})
	slowWide := SimulateDiffusion(m, mk(), p, steps, diffusion.Params{Every: 50, Threshold: 0.02, Width: 100, MinWidth: 101})

	if fastNarrow.Seconds >= slowNarrow.Seconds {
		t.Errorf("width 4 at Every=2 (%.2fs) should beat the same width at Every=50 (%.2fs)",
			fastNarrow.Seconds, slowNarrow.Seconds)
	}
	if slowWide.Seconds >= slowNarrow.Seconds {
		t.Errorf("at Every=50, width 100 (%.2fs) should beat width 4 (%.2fs): the cuts must track the drift",
			slowWide.Seconds, slowNarrow.Seconds)
	}
}

func TestLaggingBalancerWorseThanNone(t *testing.T) {
	// A balancer whose cut speed cannot keep up with the drift chases the
	// cloud and concentrates capacity where the load used to be.
	m := Edison()
	mk := func() *Workload { return workload(t, 1498, 600000, 0.999, nil) }
	const p, steps = 24, 1500
	base := SimulateBaseline(m, mk(), p, steps)
	lagging := SimulateDiffusion(m, mk(), p, steps, diffusion.Params{Every: 100, Threshold: 0.02, Width: 1, MinWidth: 2})
	// "Worse than none" is workload-dependent; at minimum it must be far
	// from the well-tuned configuration.
	tuned := SimulateDiffusion(m, mk(), p, steps, diffusion.Params{Every: 2, Threshold: 0.02, Width: 8, MinWidth: 9})
	if lagging.Seconds < tuned.Seconds*1.2 {
		t.Errorf("lagging (%.2fs) unexpectedly close to tuned (%.2fs)", lagging.Seconds, tuned.Seconds)
	}
	if tuned.Seconds >= base.Seconds {
		t.Errorf("tuned diffusion (%.2fs) should beat baseline (%.2fs)", tuned.Seconds, base.Seconds)
	}
}

func TestTwoPhaseCostsButDoesNotHelpOnYUniformWorkload(t *testing.T) {
	// The paper's experiments restrict diffusion to the x direction because
	// the workload is uniform in y; the model's two-phase run must agree
	// (no benefit, slight extra decision cost).
	m := Edison()
	mk := func() *Workload { return workload(t, 1498, 600000, 0.999, nil) }
	const p, steps = 96, 1500
	params := diffusion.Params{Every: 2, Threshold: 0.02, Width: 8, MinWidth: 9}
	xOnly := SimulateDiffusion(m, mk(), p, steps, params)
	params.TwoPhase = true
	two := SimulateDiffusion(m, mk(), p, steps, params)
	if two.Seconds < xOnly.Seconds {
		t.Errorf("two-phase (%.2fs) cannot beat x-only (%.2fs) on a y-uniform workload", two.Seconds, xOnly.Seconds)
	}
	if two.Seconds > xOnly.Seconds*1.2 {
		t.Errorf("two-phase overhead too large: %.2fs vs %.2fs", two.Seconds, xOnly.Seconds)
	}
}
