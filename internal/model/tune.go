package model

import (
	"github.com/parres/picprk/internal/diffusion"
)

// The paper tunes each implementation's parameters per concurrency level
// and reports the best run ("For each implementation we tuned the relevant
// parameters and picked the best performing execution", §V-B). These
// helpers perform that grid search against the model.

// WorkloadFactory produces a fresh workload for each tuning trial.
type WorkloadFactory func() *Workload

// DiffusionGrid returns the parameter grid the tuner searches: the three
// interfering knobs of §IV-B. Frequencies and widths are paired so the
// boundary can track the drifting distribution (the cloud moves (2k+1)
// cells per step, so a cut must be able to move ≈ Every·speed cells per
// epoch to follow it) as well as lag it.
func DiffusionGrid(speed int) []diffusion.Params {
	var grid []diffusion.Params
	for _, every := range []int{1, 2, 5, 10, 25, 50, 100} {
		for _, wmul := range []int{1, 2, 4} {
			width := every * speed * wmul
			grid = append(grid, diffusion.Params{
				Every: every, Threshold: 0.02, Width: width, MinWidth: width + 1,
			})
		}
	}
	return grid
}

// TuneDiffusion runs the modeled diffusion implementation over the grid and
// returns the best parameters and outcome.
func TuneDiffusion(m Machine, wf WorkloadFactory, p, steps int, grid []diffusion.Params) (diffusion.Params, Outcome) {
	var bestP diffusion.Params
	var best Outcome
	first := true
	for _, params := range grid {
		o := SimulateDiffusion(m, wf(), p, steps, params)
		if first || o.Seconds < best.Seconds {
			best, bestP = o, params
			first = false
		}
	}
	return bestP, best
}

// AMPIGrid returns the (d, F) grid for the modeled AMPI implementation,
// covering the ranges of the paper's Figure 5 sweep plus very rare LB
// invocations: with high over-decomposition a core hosts a mixture of VPs
// from all over the domain, so per-core load drifts slowly and one or two
// greedy epochs per run can suffice (the effect behind the paper's
// weak-scaling discussion, §V-C).
func AMPIGrid() []AMPIModelParams {
	var grid []AMPIModelParams
	for _, d := range []int{2, 4, 8, 16, 32} {
		for _, f := range []int{40, 160, 640, 1000, 2000, 3000} {
			grid = append(grid, AMPIModelParams{Overdecompose: d, Every: f})
		}
	}
	return grid
}

// TuneAMPI runs the modeled AMPI implementation over the grid and returns
// the best parameters and outcome.
func TuneAMPI(m Machine, wf WorkloadFactory, p, steps int, grid []AMPIModelParams) (AMPIModelParams, Outcome) {
	var bestP AMPIModelParams
	var best Outcome
	first := true
	for _, params := range grid {
		o := SimulateAMPI(m, wf(), p, steps, params)
		if first || o.Seconds < best.Seconds {
			best, bestP = o, params
			first = false
		}
	}
	return bestP, best
}
