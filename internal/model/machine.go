// Package model is a deterministic BSP performance model of the PIC PRK on
// a cluster. The repository's real drivers (internal/driver) execute on
// goroutine ranks and validate correctness at any P, but they cannot
// exhibit wall-clock scaling beyond the host's cores — and the paper's
// evaluation runs on 192–3,072 cores of NERSC's Edison (Cray XC30). The
// model reproduces those experiments' *shapes*: it executes the very same
// decomposition and load-balancing decision logic as the drivers
// (diffusion.BalanceStepGuarded, ampi.Strategy plans) against an
// analytically-evolved workload, and charges time for exactly the effects
// the paper discusses — per-particle compute, neighbor particle exchange,
// synchronization, LB decision collectives, migration volume, VP scheduling
// overhead, and the locality (intra-socket / intra-node / inter-node) of
// every message.
//
// The workload evolution is closed-form: the paper's skewed distribution
// shifts right at (2k+1) cells per step and is uniform in y, so per-column
// histograms fully describe it (§III-E1).
package model

import "math"

// Machine describes the modeled cluster. All times are seconds, bandwidths
// bytes/second.
type Machine struct {
	// CoresPerNode and CoresPerSocket define the locality hierarchy
	// (Edison: two 12-core sockets per node).
	CoresPerNode, CoresPerSocket int
	// TimePerParticle is the compute cost of one particle move.
	TimePerParticle float64
	// Message cost parameters by distance class.
	LatencyIntraSocket, LatencyIntraNode, LatencyInterNode float64
	BwIntraSocket, BwIntraNode, BwInterNode                float64
	// SyncPerRound is the per-round cost of the implicit step barrier /
	// exchange coordination; a step pays SyncPerRound·ceil(log2 P).
	SyncPerRound float64
	// VPOverheadPerStep is the scheduler cost per virtual processor per
	// step (user-level context switch + message dispatch in AMPI).
	VPOverheadPerStep float64
	// BytesPerParticle is the particle wire size (matches particle.EncodedSize).
	BytesPerParticle float64
	// BytesPerCell is the migrated mesh data per cell.
	BytesPerCell float64
	// MigrationAggBwPerNode is the effective per-node throughput of a bulk
	// migration epoch. When a locality-agnostic balancer reshuffles most
	// VPs at once, the transfers behave like an all-to-all: they are limited
	// by the machine's global bandwidth (which grows with node count on a
	// dragonfly) and by the runtime's serialization overhead, not by a
	// single link. The paper's Figure 5 F-sweep (180 s at F=20 vs 43 s at
	// F=160 on 8 nodes) implies ≈450 ms per greedy epoch over ≈0.9 GB of
	// VP state, i.e. ≈250 MB/s of effective throughput per node — far below
	// link speed, reflecting PUP serialization and LB framework overhead.
	MigrationAggBwPerNode float64
	// MigrationIntraBwPerNode is the corresponding throughput for VP moves
	// that stay within a node: a PUP pack/unpack plus a memcpy, an order of
	// magnitude faster than cross-network migration.
	MigrationIntraBwPerNode float64
	// HaloBytes is the size of the per-step neighbor synchronization
	// message every rank (or VP) exchanges with each of its four spatial
	// neighbors — the counts/handshake traffic a neighbor exchange pays
	// even when no particles cross. For a compact decomposition these stay
	// intra-node; for a fragmented VP placement they become inter-node
	// latency, the §V-B effect.
	HaloBytes float64
}

// Edison returns machine parameters calibrated to the order of magnitude of
// the paper's platform (Cray XC30: 24-core nodes, Aries interconnect) and
// of this repository's measured kernel (tens of ns per particle move).
// Absolute times are not the point — shapes are — but these values put the
// model's outputs in the same range as the paper's figures.
func Edison() Machine {
	return Machine{
		CoresPerNode:            24,
		CoresPerSocket:          12,
		TimePerParticle:         50e-9,
		LatencyIntraSocket:      0.5e-6,
		LatencyIntraNode:        1.5e-6,
		LatencyInterNode:        8e-6,
		BwIntraSocket:           8e9,
		BwIntraNode:             5e9,
		BwInterNode:             1e9,
		SyncPerRound:            1.2e-6,
		VPOverheadPerStep:       2e-6,
		BytesPerParticle:        92,
		BytesPerCell:            8,
		MigrationAggBwPerNode:   250e6,
		MigrationIntraBwPerNode: 4e9,
		HaloBytes:               64,
	}
}

func (m Machine) nodes(p int) float64 {
	nodes := (p + m.CoresPerNode - 1) / m.CoresPerNode
	if nodes < 1 {
		nodes = 1
	}
	return float64(nodes)
}

// MigrationEpochTime returns the time a bulk migration epoch needs to move
// the given intra-node and inter-node payload volumes: each class is limited
// by its aggregate throughput, which scales with the number of nodes the
// run occupies.
func (m Machine) MigrationEpochTime(p int, intraBytes, interBytes float64) float64 {
	n := m.nodes(p)
	return intraBytes/(m.MigrationIntraBwPerNode*n) + interBytes/(m.MigrationAggBwPerNode*n)
}

// SameNode reports whether two cores share a node.
func (m Machine) SameNode(a, b int) bool { return a/m.CoresPerNode == b/m.CoresPerNode }

// FatNode returns a hypothetical modern fat-node machine: 128 cores per
// node and a faster network. Regenerating the figures against it shows how
// the paper's conclusions shift with the platform: with far fewer node
// boundaries, locality-agnostic VP migration is cheaper and the AMPI
// strong-scaling gap narrows — the PRK doing exactly what it was designed
// for, rating balancers against a machine.
func FatNode() Machine {
	m := Edison()
	m.CoresPerNode = 128
	m.CoresPerSocket = 64
	m.LatencyInterNode = 2e-6
	m.BwInterNode = 10e9
	m.MigrationAggBwPerNode = 2e9
	return m
}

// distanceClass classifies a core pair.
type distanceClass int

const (
	sameCore distanceClass = iota
	intraSocket
	intraNode
	interNode
)

func (m Machine) class(a, b int) distanceClass {
	switch {
	case a == b:
		return sameCore
	case a/m.CoresPerSocket == b/m.CoresPerSocket:
		return intraSocket
	case a/m.CoresPerNode == b/m.CoresPerNode:
		return intraNode
	default:
		return interNode
	}
}

// MsgCost returns the cost of moving `bytes` between two cores as one
// message. Same-core transfers are free (a memcpy the compute term already
// covers).
func (m Machine) MsgCost(a, b int, bytes float64) float64 {
	switch m.class(a, b) {
	case sameCore:
		return 0
	case intraSocket:
		return m.LatencyIntraSocket + bytes/m.BwIntraSocket
	case intraNode:
		return m.LatencyIntraNode + bytes/m.BwIntraNode
	default:
		return m.LatencyInterNode + bytes/m.BwInterNode
	}
}

// SyncCost returns the per-step synchronization overhead for P ranks.
func (m Machine) SyncCost(p int) float64 {
	if p <= 1 {
		return 0
	}
	return m.SyncPerRound * math.Ceil(math.Log2(float64(p)))
}

// AllreduceCost models a tree allreduce of the given payload among P ranks:
// 2·ceil(log2 P) rounds, each paying the worst-case (inter-node) message
// cost for the payload.
func (m Machine) AllreduceCost(p int, bytes float64) float64 {
	if p <= 1 {
		return 0
	}
	rounds := 2 * math.Ceil(math.Log2(float64(p)))
	return rounds * (m.LatencyInterNode + bytes/m.BwInterNode)
}
