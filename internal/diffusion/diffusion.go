// Package diffusion implements the application-specific, diffusion-based
// load-balancing strategy of paper §IV-B (after Cybenko and Boillat): each
// block periodically compares its workload with its neighbors' and, when the
// difference exceeds a threshold, sheds its border cell-columns to the
// lighter neighbor. The Cartesian-product decomposition is preserved, so the
// decision reduces to editing a 1D boundary array per direction.
//
// The decision is a pure function of the globally-reduced load vector:
// every rank computes the identical new boundary array without negotiation,
// and the performance-model layer reuses the very same function, so model
// and real drivers make identical decisions for identical load histories.
package diffusion

import (
	"fmt"

	"github.com/parres/picprk/internal/decomp"
)

// Params tunes the diffusion scheme. The paper calls out three interfering
// knobs that must be co-tuned: the frequency of balancing actions, the
// trigger threshold τ, and the width of the exchanged border region.
type Params struct {
	// Every is the number of time steps between balancing actions
	// (frequency knob). Drivers interpret it; the decision functions here
	// do not.
	Every int
	// Threshold is τ expressed as a fraction of the mean block load:
	// a pair (i, i+1) triggers when |load[i]-load[i+1]| > Threshold·mean.
	Threshold float64
	// Width is the number of border cell-columns migrated per action.
	Width int
	// MinWidth is the minimum block width in cells; shifts that would
	// shrink a block below it are skipped.
	MinWidth int
	// TwoPhase enables the full two-phase scheme of §IV-B: after balancing
	// the x-direction cuts from column sums, balance the y-direction cuts
	// from row sums. The paper's experiments restrict balancing to the
	// x direction because the skewed workload drifts along x and is uniform
	// in y; TwoPhase pays an extra reduction per epoch and helps only when
	// the workload also varies in y.
	TwoPhase bool
}

// DefaultParams are reasonable defaults for the paper's skewed workload.
func DefaultParams() Params {
	return Params{Every: 100, Threshold: 0.1, Width: 1, MinWidth: 2}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Every <= 0 {
		return fmt.Errorf("diffusion: Every must be positive, got %d", p.Every)
	}
	if p.Threshold < 0 {
		return fmt.Errorf("diffusion: negative threshold %v", p.Threshold)
	}
	if p.Width <= 0 {
		return fmt.Errorf("diffusion: Width must be positive, got %d", p.Width)
	}
	if p.MinWidth < 1 {
		return fmt.Errorf("diffusion: MinWidth must be >= 1, got %d", p.MinWidth)
	}
	return nil
}

// BalanceStep computes one diffusion action: given the current 1D bounds and
// the load (particle count) of each block, it returns the new bounds and
// whether any cut moved. For every adjacent pair whose load difference
// exceeds τ·mean, the cut between them shifts by Width cells toward the
// heavier block (i.e. the heavy block cedes its border columns).
//
// Shift decisions are made Jacobi-style from the input loads, then applied
// left to right; a shift is skipped if it would shrink either affected block
// below MinWidth given the shifts already applied. The whole computation is
// deterministic, so all ranks agree on the result without communication
// beyond the load reduction itself.
//
// The domain is periodic, but like the paper's reference implementation the
// diffusion acts on the linear chain of blocks only (no wrap-around pair):
// particles stream across the seam, and the chain ends adapt via their inner
// neighbors.
func BalanceStep(b decomp.Bounds, loads []int64, p Params) (decomp.Bounds, bool) {
	n := b.N()
	if len(loads) != n {
		panic(fmt.Sprintf("diffusion: %d loads for %d blocks", len(loads), n))
	}
	if n < 2 {
		return b, false
	}
	var total int64
	for _, l := range loads {
		total += l
	}
	mean := float64(total) / float64(n)
	trigger := p.Threshold * mean

	// Desired shift of each interior cut j (between blocks j-1 and j):
	// +Width moves the cut right (block j-1 grows), -Width moves it left.
	shift := make([]int, n+1)
	for i := 0; i+1 < n; i++ {
		diff := float64(loads[i] - loads[i+1])
		switch {
		case diff > trigger:
			shift[i+1] = -p.Width // heavy left block cedes border columns
		case -diff > trigger:
			shift[i+1] = +p.Width // heavy right block cedes border columns
		}
	}

	nb := b.Clone()
	changed := false
	for j := 1; j < n; j++ {
		if shift[j] == 0 {
			continue
		}
		cut := nb.Cuts[j] + shift[j]
		// The new cut must keep both adjacent blocks at MinWidth, taking
		// already-applied shifts on the left into account and the original
		// cut on the right (its shift, if any, is applied later and only
		// ever checked against this updated value).
		if cut-nb.Cuts[j-1] < p.MinWidth || nb.Cuts[j+1]-cut < p.MinWidth {
			continue
		}
		nb.Cuts[j] = cut
		changed = true
	}
	return nb, changed
}

// BalanceStepGuarded is BalanceStep with overshoot protection: a cut moves
// only if transferring the border columns strictly reduces the heavier load
// of the pair. Near a steep load gradient a single cell-column can carry
// more particles than the whole imbalance, making the fixed-width scheme
// oscillate (shuttle the column back and forth every invocation); the guard
// suppresses exactly those moves. It requires per-cell-column loads, which
// the parallel driver obtains with one extra reduction over its column
// communicator — the cost the paper attributes to co-tuning the scheme.
func BalanceStepGuarded(b decomp.Bounds, cellLoads []int64, p Params) (decomp.Bounds, bool) {
	n := b.N()
	if n < 2 {
		return b, false
	}
	loads := BlockLoads(b, cellLoads)
	var total int64
	for _, l := range loads {
		total += l
	}
	mean := float64(total) / float64(n)
	trigger := p.Threshold * mean

	nb := b.Clone()
	changed := false
	for j := 1; j < n; j++ {
		left, right := loads[j-1], loads[j]
		diff := float64(left - right)
		var shift int
		switch {
		case diff > trigger:
			shift = -p.Width
		case -diff > trigger:
			shift = +p.Width
		default:
			continue
		}
		cut := nb.Cuts[j] + shift
		if cut-nb.Cuts[j-1] < p.MinWidth || nb.Cuts[j+1]-cut < p.MinWidth {
			continue
		}
		// Load carried by the columns that would change hands.
		var moved int64
		lo, hi := cut, nb.Cuts[j]
		if shift > 0 {
			lo, hi = nb.Cuts[j], cut
		}
		for c := lo; c < hi; c++ {
			moved += cellLoads[c]
		}
		var newLeft, newRight int64
		if shift < 0 {
			newLeft, newRight = left-moved, right+moved
		} else {
			newLeft, newRight = left+moved, right-moved
		}
		if max(newLeft, newRight) > max(left, right) {
			// Overshoot: the move would worsen the pair. Moves of equal max
			// are allowed — they occur when the border cells are empty, and
			// repeating them lets the cut slide across an empty region
			// toward the load instead of stalling at a plateau.
			continue
		}
		nb.Cuts[j] = cut
		// Gauss-Seidel update so the next pair's decision sees the move.
		loads[j-1], loads[j] = newLeft, newRight
		changed = true
	}
	return nb, changed
}

// BalanceToConvergence applies BalanceStep repeatedly (at most maxIter
// times) against a static load-per-cell profile, recomputing block loads
// after each move. cellLoads[i] is the particle count of cell-column i.
//
// Fixed-width diffusion moves can enter a limit cycle (a cut shuttling one
// column back and forth) rather than reaching a fixed point — the paper
// notes the scheme "is no panacea". BalanceToConvergence therefore detects
// revisited states and returns the best bounds seen (smallest maximum block
// load), along with the number of iterations performed. It is used by tests
// and by offline tuning to inspect the scheme's behaviour on a frozen
// distribution.
func BalanceToConvergence(b decomp.Bounds, cellLoads []int64, p Params, maxIter int) (decomp.Bounds, int) {
	cur := b
	best := b
	bestMax := maxOf(BlockLoads(b, cellLoads))
	seen := map[string]bool{key(b): true}
	for iter := 0; iter < maxIter; iter++ {
		loads := BlockLoads(cur, cellLoads)
		next, changed := BalanceStep(cur, loads, p)
		if !changed {
			return cur, iter
		}
		if m := maxOf(BlockLoads(next, cellLoads)); m < bestMax {
			bestMax = m
			best = next
		}
		k := key(next)
		if seen[k] {
			return best, iter + 1
		}
		seen[k] = true
		cur = next
	}
	return best, maxIter
}

func maxOf(loads []int64) int64 {
	var m int64
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return m
}

func key(b decomp.Bounds) string {
	buf := make([]byte, 0, 8*len(b.Cuts))
	for _, c := range b.Cuts {
		v := uint64(int64(c))
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return string(buf)
}

// BlockLoads aggregates per-cell-column loads into per-block loads under
// the given bounds.
func BlockLoads(b decomp.Bounds, cellLoads []int64) []int64 {
	out := make([]int64, b.N())
	for i := 0; i < b.N(); i++ {
		var s int64
		for c := b.Lo(i); c < b.Hi(i); c++ {
			s += cellLoads[c]
		}
		out[i] = s
	}
	return out
}
