package diffusion_test

import (
	"fmt"

	"github.com/parres/picprk/internal/decomp"
	"github.com/parres/picprk/internal/diffusion"
)

// ExampleBalanceStepGuarded balances a skewed per-column load across four
// blocks: the heavy leftmost block cedes border columns to its neighbor.
func ExampleBalanceStepGuarded() {
	// 16 cell columns: all the load sits in the first four.
	cellLoads := []int64{400, 300, 200, 100, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	bounds := decomp.MustUniformBounds(16, 4)
	params := diffusion.Params{Every: 1, Threshold: 0.1, Width: 1, MinWidth: 1}

	fmt.Println("cuts before:", bounds.Cuts, "loads:", diffusion.BlockLoads(bounds, cellLoads))
	for i := 0; i < 8; i++ {
		next, changed := diffusion.BalanceStepGuarded(bounds, cellLoads, params)
		if !changed {
			break
		}
		bounds = next
	}
	fmt.Println("cuts after: ", bounds.Cuts, "loads:", diffusion.BlockLoads(bounds, cellLoads))
	// Output:
	// cuts before: [0 4 8 12 16] loads: [1000 0 0 0]
	// cuts after:  [0 1 2 8 16] loads: [400 300 300 0]
}
