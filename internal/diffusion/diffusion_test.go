package diffusion

import (
	"testing"

	"github.com/parres/picprk/internal/decomp"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Params{
		{Every: 0, Threshold: 0.1, Width: 1, MinWidth: 1},
		{Every: 10, Threshold: -1, Width: 1, MinWidth: 1},
		{Every: 10, Threshold: 0.1, Width: 0, MinWidth: 1},
		{Every: 10, Threshold: 0.1, Width: 1, MinWidth: 0},
	}
	for i, p := range bads {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestBalanceStepMovesCutTowardHeavy(t *testing.T) {
	b := decomp.MustUniformBounds(20, 2) // cuts [0,10,20]
	p := Params{Threshold: 0.1, Width: 2, MinWidth: 2}
	// Left block much heavier: it cedes border columns, cut moves left.
	nb, changed := BalanceStep(b, []int64{1000, 100}, p)
	if !changed || nb.Cuts[1] != 8 {
		t.Fatalf("cut=%d changed=%v, want 8,true", nb.Cuts[1], changed)
	}
	// Right block heavier: cut moves right.
	nb, changed = BalanceStep(b, []int64{100, 1000}, p)
	if !changed || nb.Cuts[1] != 12 {
		t.Fatalf("cut=%d changed=%v, want 12,true", nb.Cuts[1], changed)
	}
}

func TestBalanceStepRespectsThreshold(t *testing.T) {
	b := decomp.MustUniformBounds(20, 2)
	p := Params{Threshold: 0.5, Width: 1, MinWidth: 1}
	// Difference 100 vs mean 550*0.5=275: below threshold, no move.
	nb, changed := BalanceStep(b, []int64{600, 500}, p)
	if changed || nb.Cuts[1] != 10 {
		t.Fatalf("threshold ignored: cut=%d changed=%v", nb.Cuts[1], changed)
	}
}

func TestBalanceStepRespectsMinWidth(t *testing.T) {
	b := decomp.Bounds{Cuts: []int{0, 2, 20}}
	p := Params{Threshold: 0.1, Width: 1, MinWidth: 2}
	// Left block is heavy but already at MinWidth: the move is skipped.
	nb, changed := BalanceStep(b, []int64{1000, 10}, p)
	if changed || nb.Cuts[1] != 2 {
		t.Fatalf("MinWidth violated: %v", nb.Cuts)
	}
}

func TestBalanceStepNeverProducesInvalidBounds(t *testing.T) {
	// A pathological sawtooth load on many narrow blocks must still yield
	// structurally valid bounds.
	b := decomp.MustUniformBounds(30, 10)
	loads := make([]int64, 10)
	for i := range loads {
		if i%2 == 0 {
			loads[i] = 1000
		}
	}
	p := Params{Threshold: 0.01, Width: 1, MinWidth: 1}
	cur := b
	for iter := 0; iter < 50; iter++ {
		nb, _ := BalanceStep(cur, loads, p)
		if err := nb.Validate(30); err != nil {
			t.Fatalf("iter %d: %v (cuts %v)", iter, err, nb.Cuts)
		}
		cur = nb
	}
}

func TestBalanceStepSingleBlockNoop(t *testing.T) {
	b := decomp.MustUniformBounds(10, 1)
	nb, changed := BalanceStep(b, []int64{500}, DefaultParams())
	if changed || !nb.Equal(b) {
		t.Error("single block must be a no-op")
	}
}

func TestBalanceToConvergenceEvensOutSkewedLoad(t *testing.T) {
	// A geometric per-cell load: diffusion should shrink the heavy blocks
	// until loads differ by less than the threshold everywhere.
	const L, P = 64, 8
	cell := make([]int64, L)
	v := 10000.0
	for i := range cell {
		cell[i] = int64(v)
		v *= 0.9
	}
	b := decomp.MustUniformBounds(L, P)
	p := Params{Threshold: 0.05, Width: 1, MinWidth: 1}
	before := maxLoad(BlockLoads(b, cell))
	nb := b
	iters := 0
	for ; iters < 1000; iters++ {
		next, changed := BalanceStepGuarded(nb, cell, p)
		if !changed {
			break
		}
		nb = next
	}
	if iters >= 1000 {
		t.Fatal("did not converge")
	}
	after := maxLoad(BlockLoads(nb, cell))
	if after >= before {
		t.Fatalf("max load did not improve: %d -> %d", before, after)
	}
	if err := nb.Validate(L); err != nil {
		t.Fatal(err)
	}
	// At this coarse granularity (64 columns, steep gradient) the fixed
	// point is limited by single-column loads; what matters is the ~2x
	// improvement in max load, the same factor the paper reports for its
	// diffusion scheme (§V-B: 62,645 -> 30,585 max particles/core).
	if after > before/18*10 {
		t.Errorf("max load improved only %d -> %d, want at least 1.8x", before, after)
	}
	var total int64
	for _, c := range cell {
		total += c
	}
	ideal := total / P
	if after > 3*ideal {
		t.Errorf("converged max load %d still > 3x ideal %d", after, ideal)
	}
}

func maxLoad(loads []int64) int64 {
	var m int64
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return m
}

func TestBalanceToConvergenceStopsOnFixedPoint(t *testing.T) {
	// A mild imbalance with a generous threshold converges to a true fixed
	// point (no change), well before maxIter.
	cell := make([]int64, 40)
	for i := range cell {
		cell[i] = 100
	}
	cell[0] = 150
	b := decomp.MustUniformBounds(40, 4)
	p := Params{Threshold: 0.5, Width: 1, MinWidth: 1}
	nb, iters := BalanceToConvergence(b, cell, p, 100)
	if iters >= 100 {
		t.Fatal("no convergence on a nearly balanced workload")
	}
	if err := nb.Validate(40); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceToConvergenceDetectsCycles(t *testing.T) {
	// A steep profile with fixed-width moves oscillates; the cycle detector
	// must terminate early and return the best state seen, not loop to
	// maxIter.
	cell := make([]int64, 64)
	v := 10000.0
	for i := range cell {
		cell[i] = int64(v)
		v *= 0.9
	}
	b := decomp.MustUniformBounds(64, 8)
	p := Params{Threshold: 0.05, Width: 1, MinWidth: 1}
	before := maxLoad(BlockLoads(b, cell))
	nb, iters := BalanceToConvergence(b, cell, p, 100000)
	if iters >= 100000 {
		t.Fatal("cycle not detected")
	}
	if err := nb.Validate(64); err != nil {
		t.Fatal(err)
	}
	if maxLoad(BlockLoads(nb, cell)) > before {
		t.Error("returned bounds worse than the starting point")
	}
}

func TestBlockLoads(t *testing.T) {
	b := decomp.Bounds{Cuts: []int{0, 2, 5}}
	got := BlockLoads(b, []int64{1, 2, 3, 4, 5})
	if got[0] != 3 || got[1] != 12 {
		t.Errorf("BlockLoads = %v", got)
	}
}

func TestBalanceStepDeterministic(t *testing.T) {
	b := decomp.MustUniformBounds(40, 5)
	loads := []int64{900, 100, 400, 50, 800}
	p := Params{Threshold: 0.05, Width: 2, MinWidth: 2}
	a1, _ := BalanceStep(b, loads, p)
	a2, _ := BalanceStep(b, loads, p)
	if !a1.Equal(a2) {
		t.Error("BalanceStep not deterministic")
	}
}
