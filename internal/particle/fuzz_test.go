package particle

import "testing"

// FuzzDecode feeds arbitrary bytes to the particle decoder: it must never
// panic, and any buffer it accepts must re-encode to the same bytes.
func FuzzDecode(f *testing.F) {
	f.Add(EncodeSlice([]Particle{{ID: 1, X: 0.5, Y: 0.5, Q: -0.35, X0: 0.5, Y0: 0.5, Dir: 1}}))
	f.Add([]byte{})
	f.Add(make([]byte, EncodedSize-1))
	f.Add(make([]byte, EncodedSize+3))
	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := DecodeSlice(data)
		if err != nil {
			return
		}
		if got := EncodeSlice(ps); string(got) != string(data) {
			t.Fatalf("accepted buffer does not round-trip")
		}
	})
}
