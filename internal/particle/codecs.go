package particle

import "github.com/parres/picprk/internal/pup"

// KindParticles is the wire codec kind for []Particle (verification
// gathers and checkpoint payloads).
const KindParticles pup.Kind = 30

func init() {
	pup.RegisterCodec[[]Particle](KindParticles, func(p *pup.PUPer, v *[]Particle) {
		pup.Slice(p, v, func(p *pup.PUPer, e *Particle) { e.PUP(p) })
	})
}
