package particle

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func sample() Particle {
	return Particle{
		ID: 42, X: 1.5, Y: 2.5, VX: 0, VY: 3,
		Q: -0.353553, X0: 0.5, Y0: 2.5, K: 1, M: 3, Dir: 1, Born: 7,
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	p := sample()
	buf := p.Encode(nil)
	if len(buf) != EncodedSize {
		t.Fatalf("encoded size %d, want %d", len(buf), EncodedSize)
	}
	var q Particle
	rest, err := q.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("leftover %d bytes", len(rest))
	}
	if q != p {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", q, p)
	}
}

func TestEncodeDecodeRoundtripProperty(t *testing.T) {
	f := func(id uint64, x, y, vx, vy, q float64, k, m int32, born int32, neg bool) bool {
		dir := int32(1)
		if neg {
			dir = -1
		}
		p := Particle{ID: id, X: x, Y: y, VX: vx, VY: vy, Q: q,
			X0: x, Y0: y, K: k, M: m, Dir: dir, Born: born}
		var out Particle
		if _, err := out.Decode(p.Encode(nil)); err != nil {
			return false
		}
		// NaN payloads break == comparison; compare bit patterns instead.
		return reflect.DeepEqual(bits(p), bits(out))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func bits(p Particle) [12]uint64 {
	return [12]uint64{
		p.ID,
		math.Float64bits(p.X), math.Float64bits(p.Y),
		math.Float64bits(p.VX), math.Float64bits(p.VY),
		math.Float64bits(p.Q), math.Float64bits(p.X0), math.Float64bits(p.Y0),
		uint64(uint32(p.K)), uint64(uint32(p.M)), uint64(uint32(p.Dir)), uint64(uint32(p.Born)),
	}
}

func TestDecodeShortBuffer(t *testing.T) {
	var p Particle
	if _, err := p.Decode(make([]byte, EncodedSize-1)); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestEncodeDecodeSlice(t *testing.T) {
	ps := []Particle{sample(), sample(), sample()}
	ps[1].ID = 43
	ps[2].ID = 44
	out, err := DecodeSlice(EncodeSlice(ps))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ps, out) {
		t.Fatal("slice roundtrip mismatch")
	}
	if _, err := DecodeSlice(make([]byte, EncodedSize+1)); err == nil {
		t.Error("ragged buffer accepted")
	}
	empty, err := DecodeSlice(nil)
	if err != nil || len(empty) != 0 {
		t.Errorf("empty buffer: %v, %v", empty, err)
	}
}

func TestExpectedAt(t *testing.T) {
	p := Particle{X0: 2.5, Y0: 3.5, K: 0, M: 1, Dir: 1}
	x, y := p.ExpectedAt(3, 8)
	if x != 5.5 || y != 6.5 {
		t.Errorf("got (%v,%v), want (5.5,6.5)", x, y)
	}
	// Wraps periodically.
	x, y = p.ExpectedAt(7, 8)
	if x != 1.5 || y != 2.5 {
		t.Errorf("wrap: got (%v,%v), want (1.5,2.5)", x, y)
	}
	// K>1 and negative direction.
	p = Particle{X0: 4.5, Y0: 0.5, K: 1, M: -1, Dir: -1}
	x, y = p.ExpectedAt(1, 8)
	if x != 1.5 || y != 7.5 {
		t.Errorf("k/dir: got (%v,%v), want (1.5,7.5)", x, y)
	}
}

func TestExpectedAtZeroSteps(t *testing.T) {
	p := Particle{X0: 2.5, Y0: 3.5, K: 2, M: 5, Dir: 1}
	x, y := p.ExpectedAt(0, 8)
	if x != 2.5 || y != 3.5 {
		t.Errorf("s=0 must return the initial position, got (%v,%v)", x, y)
	}
}

func TestIDSum(t *testing.T) {
	ps := make([]Particle, 100)
	for i := range ps {
		ps[i].ID = uint64(i + 1)
	}
	if got := IDSum(ps); got != 100*101/2 {
		t.Errorf("IDSum = %d, want %d", got, 100*101/2)
	}
	if IDSum(nil) != 0 {
		t.Error("IDSum(nil) != 0")
	}
}

func TestValidate(t *testing.T) {
	good := sample()
	if err := good.Validate(8); err != nil {
		t.Errorf("valid particle rejected: %v", err)
	}
	cases := []func(*Particle){
		func(p *Particle) { p.ID = 0 },
		func(p *Particle) { p.X = -0.1 },
		func(p *Particle) { p.Y = 8 },
		func(p *Particle) { p.VX = math.NaN() },
		func(p *Particle) { p.K = -1 },
		func(p *Particle) { p.Dir = 0 },
	}
	for i, mutate := range cases {
		p := sample()
		mutate(&p)
		if err := p.Validate(8); err == nil {
			t.Errorf("case %d: invalid particle accepted", i)
		}
	}
}

func TestPartition(t *testing.T) {
	ps := make([]Particle, 10)
	for i := range ps {
		ps[i].ID = uint64(i + 1)
	}
	buckets := Partition(ps, 3, func(p *Particle) int { return int(p.ID) % 3 })
	if len(buckets) != 3 {
		t.Fatalf("%d buckets", len(buckets))
	}
	total := 0
	for b, bucket := range buckets {
		total += len(bucket)
		for _, p := range bucket {
			if int(p.ID)%3 != b {
				t.Errorf("particle %d in bucket %d", p.ID, b)
			}
		}
	}
	if total != 10 {
		t.Errorf("partition lost particles: %d", total)
	}
	// Order within a bucket preserved.
	if buckets[1][0].ID != 1 || buckets[1][1].ID != 4 {
		t.Errorf("bucket order not preserved: %v", buckets[1])
	}
}

func TestSplitRetain(t *testing.T) {
	ps := make([]Particle, 10)
	for i := range ps {
		ps[i].ID = uint64(i + 1)
	}
	kept, moved := SplitRetain(ps, func(p *Particle) bool { return p.ID%2 == 0 }, nil)
	if len(kept) != 5 || len(moved) != 5 {
		t.Fatalf("kept %d moved %d", len(kept), len(moved))
	}
	for _, p := range kept {
		if p.ID%2 != 0 {
			t.Errorf("kept odd particle %d", p.ID)
		}
	}
	// Retained order preserved.
	for i := 1; i < len(kept); i++ {
		if kept[i].ID < kept[i-1].ID {
			t.Error("retained order not preserved")
		}
	}
}

func TestPartitionProperty(t *testing.T) {
	f := func(ids []uint64, nb uint8) bool {
		n := int(nb%7) + 1
		ps := make([]Particle, len(ids))
		var want uint64
		for i, id := range ids {
			ps[i].ID = id
			want += id
		}
		buckets := Partition(ps, n, func(p *Particle) int { return int(p.ID % uint64(n)) })
		var got uint64
		cnt := 0
		for _, b := range buckets {
			got += IDSum(b)
			cnt += len(b)
		}
		return got == want && cnt == len(ids)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeSlice(b *testing.B) {
	ps := make([]Particle, 1000)
	for i := range ps {
		ps[i] = sample()
		ps[i].ID = uint64(i + 1)
	}
	b.SetBytes(int64(len(ps) * EncodedSize))
	for i := 0; i < b.N; i++ {
		EncodeSlice(ps)
	}
}

func BenchmarkDecodeSlice(b *testing.B) {
	ps := make([]Particle, 1000)
	for i := range ps {
		ps[i] = sample()
		ps[i].ID = uint64(i + 1)
	}
	buf := EncodeSlice(ps)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeSlice(buf); err != nil {
			b.Fatal(err)
		}
	}
}
