// Package particle defines the charged particles of the PIC PRK, together
// with the bookkeeping needed for the closed-form verification of paper
// §III-D and a compact binary wire encoding used when particles migrate
// between ranks or virtual processors.
package particle

import (
	"fmt"
	"math"
)

// Particle is one free-moving charged particle.
//
// Beyond its dynamic state (position, velocity, charge), a particle carries
// the parameters of its closed-form trajectory (paper eqs. 5–6): its initial
// position, the odd charge multiple (2K+1), the vertical velocity multiple M,
// the sign Dir of its initial horizontal acceleration, and the time step Born
// at which it entered the simulation. These make per-particle verification an
// O(1) computation at any later step.
type Particle struct {
	// ID uniquely identifies the particle; IDs are assigned 1..n so the
	// survivor checksum of paper §III-D applies.
	ID uint64
	// X, Y are the current position in [0, L).
	X, Y float64
	// VX, VY are the current velocity components.
	VX, VY float64
	// Q is the signed charge, a (2K+1) multiple of the base charge from
	// paper eq. 3.
	Q float64
	// X0, Y0 are the position at step Born.
	X0, Y0 float64
	// K is the non-negative integer controlling horizontal speed: the
	// particle crosses (2K+1) cells per step.
	K int32
	// M is the integer controlling vertical speed: the particle moves
	// M cells per step in y.
	M int32
	// Dir is the sign (+1 or -1) of the initial horizontal acceleration.
	Dir int32
	// Born is the time step at which the particle entered the simulation
	// (0 for initial particles, t' for injected ones).
	Born int32
}

// Validate performs basic sanity checks used by property tests and by
// drivers when receiving migrated particles.
func (p *Particle) Validate(L float64) error {
	if p.ID == 0 {
		return fmt.Errorf("particle: zero ID")
	}
	if p.X < 0 || p.X >= L || p.Y < 0 || p.Y >= L {
		return fmt.Errorf("particle %d: position (%v,%v) outside [0,%v)", p.ID, p.X, p.Y, L)
	}
	if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsNaN(p.VX) || math.IsNaN(p.VY) {
		return fmt.Errorf("particle %d: NaN state", p.ID)
	}
	if p.K < 0 {
		return fmt.Errorf("particle %d: negative K=%d", p.ID, p.K)
	}
	if p.Dir != 1 && p.Dir != -1 {
		return fmt.Errorf("particle %d: Dir must be ±1, got %d", p.ID, p.Dir)
	}
	return nil
}

// ExpectedAt returns the closed-form position of the particle after it has
// participated in the simulation for s steps since Born (paper eqs. 5–6):
//
//	xs = (x0 + Dir·(2K+1)·s·h) mod L
//	ys = (y0 + M·h·s)          mod L
//
// with h = 1. The computation is exact in float64 for the domain sizes the
// PRK uses (positions are half-integers well below 2^52).
func (p *Particle) ExpectedAt(s int, L float64) (x, y float64) {
	x = p.X0 + float64(p.Dir)*float64(2*int64(p.K)+1)*float64(s)
	y = p.Y0 + float64(p.M)*float64(s)
	return wrap(x, L), wrap(y, L)
}

func wrap(v, L float64) float64 {
	v = math.Mod(v, L)
	if v < 0 {
		v += L
	}
	if v >= L {
		v -= L
	}
	return v
}

// EncodedSize is the number of bytes in the wire encoding of one particle.
const EncodedSize = 8 + 7*8 + 4*4 // ID + 7 float64 + 4 int32

// Encode appends the wire encoding of p to dst and returns the extended
// slice. The encoding is little-endian and fixed-size.
func (p *Particle) Encode(dst []byte) []byte {
	dst = appendU64(dst, p.ID)
	dst = appendF64(dst, p.X)
	dst = appendF64(dst, p.Y)
	dst = appendF64(dst, p.VX)
	dst = appendF64(dst, p.VY)
	dst = appendF64(dst, p.Q)
	dst = appendF64(dst, p.X0)
	dst = appendF64(dst, p.Y0)
	dst = appendU32(dst, uint32(p.K))
	dst = appendU32(dst, uint32(p.M))
	dst = appendU32(dst, uint32(p.Dir))
	dst = appendU32(dst, uint32(p.Born))
	return dst
}

// Decode reads one particle from the front of src, returning the remainder.
func (p *Particle) Decode(src []byte) ([]byte, error) {
	if len(src) < EncodedSize {
		return src, fmt.Errorf("particle: short buffer %d < %d", len(src), EncodedSize)
	}
	p.ID, src = takeU64(src)
	p.X, src = takeF64(src)
	p.Y, src = takeF64(src)
	p.VX, src = takeF64(src)
	p.VY, src = takeF64(src)
	p.Q, src = takeF64(src)
	p.X0, src = takeF64(src)
	p.Y0, src = takeF64(src)
	var u uint32
	u, src = takeU32(src)
	p.K = int32(u)
	u, src = takeU32(src)
	p.M = int32(u)
	u, src = takeU32(src)
	p.Dir = int32(u)
	u, src = takeU32(src)
	p.Born = int32(u)
	return src, nil
}

// EncodeSlice encodes all particles in ps into a fresh buffer.
func EncodeSlice(ps []Particle) []byte {
	buf := make([]byte, 0, len(ps)*EncodedSize)
	for i := range ps {
		buf = ps[i].Encode(buf)
	}
	return buf
}

// DecodeSlice decodes a buffer produced by EncodeSlice.
func DecodeSlice(buf []byte) ([]Particle, error) {
	if len(buf)%EncodedSize != 0 {
		return nil, fmt.Errorf("particle: buffer length %d not a multiple of record size %d", len(buf), EncodedSize)
	}
	ps := make([]Particle, len(buf)/EncodedSize)
	var err error
	for i := range ps {
		buf, err = ps[i].Decode(buf)
		if err != nil {
			return nil, err
		}
	}
	return ps, nil
}

// IDSum returns the sum of particle IDs, the cheap lost-particle checksum of
// paper §III-D: for n surviving particles with IDs 1..n it must equal
// n·(n+1)/2.
func IDSum(ps []Particle) uint64 {
	var s uint64
	for i := range ps {
		s += ps[i].ID
	}
	return s
}

// Partition splits ps in place into buckets according to the destination
// function, returning one slice per bucket. Bucket indices returned by dest
// must lie in [0, n). The relative order of particles within a bucket follows
// their order in ps. The input slice is consumed (its backing array is reused
// for bucket 0 when possible is NOT attempted; buckets are fresh slices for
// clarity and safety when handed to other goroutines).
func Partition(ps []Particle, n int, dest func(*Particle) int) [][]Particle {
	counts := make([]int, n)
	for i := range ps {
		d := dest(&ps[i])
		if d < 0 || d >= n {
			panic(fmt.Sprintf("particle: destination %d out of range [0,%d)", d, n))
		}
		counts[d]++
	}
	buckets := make([][]Particle, n)
	for b := range buckets {
		if counts[b] > 0 {
			buckets[b] = make([]Particle, 0, counts[b])
		}
	}
	for i := range ps {
		d := dest(&ps[i])
		buckets[d] = append(buckets[d], ps[i])
	}
	return buckets
}

// SplitRetain walks ps, keeps particles for which keep returns true, and
// appends the rest to moved. It returns the retained prefix (reusing the
// backing array of ps) and the extended moved slice. Order of retained
// particles is preserved.
func SplitRetain(ps []Particle, keep func(*Particle) bool, moved []Particle) (retained, out []Particle) {
	w := 0
	for i := range ps {
		if keep(&ps[i]) {
			ps[w] = ps[i]
			w++
		} else {
			moved = append(moved, ps[i])
		}
	}
	return ps[:w], moved
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

func takeU64(b []byte) (uint64, []byte) {
	v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	return v, b[8:]
}

func takeU32(b []byte) (uint32, []byte) {
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return v, b[4:]
}

func takeF64(b []byte) (float64, []byte) {
	u, rest := takeU64(b)
	return math.Float64frombits(u), rest
}
