package particle

import "github.com/parres/picprk/internal/pup"

// PUP serializes the particle with the pack/unpack framework; the layout
// matches Encode field for field. Used by VP migration and by simulation
// checkpoints.
func (p *Particle) PUP(pp *pup.PUPer) {
	pp.Uint64(&p.ID)
	pp.Float64(&p.X)
	pp.Float64(&p.Y)
	pp.Float64(&p.VX)
	pp.Float64(&p.VY)
	pp.Float64(&p.Q)
	pp.Float64(&p.X0)
	pp.Float64(&p.Y0)
	pp.Int32(&p.K)
	pp.Int32(&p.M)
	pp.Int32(&p.Dir)
	pp.Int32(&p.Born)
}
