package balance

import (
	"reflect"
	"strings"
	"testing"

	"github.com/parres/picprk/internal/ampi"
	"github.com/parres/picprk/internal/decomp"
	"github.com/parres/picprk/internal/diffusion"
)

func TestNullBalancerIsInert(t *testing.T) {
	var b NullBalancer
	if b.Name() != "null" {
		t.Errorf("name %q", b.Name())
	}
	if b.Interval() != 0 {
		t.Errorf("interval %d, want 0 (balancing disabled)", b.Interval())
	}
	if n := b.Needs(); n.Cells || n.Rows || n.Units {
		t.Errorf("null policy requested observations: %+v", n)
	}
	b.Observe(Loads{Cells: []int64{1, 2, 3}})
	if p := b.Plan(5); !p.Empty() {
		t.Errorf("null plan not empty: %s", p)
	}
	b.Apply(Plan{})
	if h := b.History(); h != nil {
		t.Errorf("null history %v", h)
	}
}

func TestPlanEmptyAndString(t *testing.T) {
	if s := (Plan{}).String(); s != "noop" {
		t.Errorf("empty plan prints %q", s)
	}
	xb := decomp.MustUniformBounds(16, 4)
	p := Plan{X: &xb, Owner: []int{0, 1, 1, 0}}
	if p.Empty() {
		t.Fatal("non-trivial plan reported empty")
	}
	s := p.String()
	if !strings.Contains(s, "x=") || !strings.Contains(s, "owner=4@") {
		t.Errorf("plan string %q missing x cuts or owner digest", s)
	}
}

func TestOwnerDigestDeterministicAndDiscriminating(t *testing.T) {
	a := []int{0, 1, 2, 3, 0, 1}
	b := append([]int(nil), a...)
	if ownerDigest(a) != ownerDigest(b) {
		t.Error("equal tables digest differently")
	}
	b[3] = 0
	if ownerDigest(a) == ownerDigest(b) {
		t.Error("different tables share a digest")
	}
}

func TestDiffusionBalancerPlansAndLogs(t *testing.T) {
	params := diffusion.Params{Every: 5, Threshold: 0.05, Width: 1, MinWidth: 2}
	b := &DiffusionBalancer{Params: params}
	if b.Interval() != 5 {
		t.Fatalf("interval %d", b.Interval())
	}
	if n := b.Needs(); !n.Cells || n.Rows || n.Units {
		t.Fatalf("needs %+v, want cells only without TwoPhase", n)
	}

	// Strongly left-skewed histogram: the first cut must diffuse left.
	L := 16
	cells := make([]int64, L)
	for i := range cells {
		cells[i] = 10
	}
	cells[0], cells[1] = 1000, 800
	loads := Loads{X: decomp.MustUniformBounds(L, 4), Cells: cells, Cores: 4}
	b.Observe(loads)
	plan := b.Plan(5)
	if plan.X == nil {
		t.Fatal("no x plan on a strongly skewed histogram")
	}
	if plan.Y != nil {
		t.Fatal("y plan produced without TwoPhase")
	}
	// Determinism: the same observation yields the identical plan.
	b2 := &DiffusionBalancer{Params: params}
	b2.Observe(loads)
	if got := b2.Plan(5); got.String() != plan.String() {
		t.Fatalf("plans differ for identical loads: %s vs %s", got, plan)
	}

	b.Apply(plan)
	h := b.History()
	if len(h) != 1 || !strings.HasPrefix(h[0], "step=5 x=") {
		t.Fatalf("history %v", h)
	}
	b.Apply(Plan{})
	if len(b.History()) != 1 {
		t.Error("empty plan was logged")
	}
}

func TestDiffusionBalancerTwoPhaseNeedsRows(t *testing.T) {
	b := &DiffusionBalancer{Params: diffusion.Params{Every: 3, Threshold: 0.05, Width: 1, MinWidth: 2, TwoPhase: true}}
	if n := b.Needs(); !n.Cells || !n.Rows {
		t.Fatalf("two-phase needs %+v", n)
	}
	L := 12
	cells := make([]int64, L)
	rows := make([]int64, L)
	for i := range cells {
		cells[i], rows[i] = 10, 10
	}
	rows[0] = 500 // y-skew only
	b.Observe(Loads{
		X: decomp.MustUniformBounds(L, 3), Y: decomp.MustUniformBounds(L, 3),
		Cells: cells, Rows: rows, Cores: 9,
	})
	plan := b.Plan(3)
	if plan.X != nil {
		t.Errorf("x plan on a uniform column histogram: %s", plan)
	}
	if plan.Y == nil {
		t.Error("no y plan on a skewed row histogram")
	}
}

func TestStrategyBalancerEmptyPlanOnZeroMoves(t *testing.T) {
	b := NewAMPIBalancer(ampi.NullLB{}, 4)
	if b.Name() != "NullLB" {
		t.Errorf("name %q", b.Name())
	}
	if b.Interval() != 4 {
		t.Errorf("interval %d", b.Interval())
	}
	if n := b.Needs(); !n.Units || n.Cells || n.Rows {
		t.Errorf("needs %+v, want units only", n)
	}
	b.Observe(Loads{Units: []float64{5, 1, 1, 1}, Owner: []int{0, 0, 1, 1}, Cores: 2})
	if p := b.Plan(4); !p.Empty() {
		t.Fatalf("NullLB produced a plan: %s", p)
	}
	b.Apply(Plan{})
	if b.History() != nil {
		t.Error("no-op epoch was logged")
	}
}

func TestStrategyBalancerPlansAndLogs(t *testing.T) {
	b := NewAMPIBalancer(ampi.RotateLB{}, 2)
	b.Observe(Loads{Units: []float64{1, 1, 1, 1}, Owner: []int{0, 0, 1, 1}, Cores: 2})
	plan := b.Plan(2)
	if plan.Owner == nil {
		t.Fatal("RotateLB produced no plan")
	}
	if want := []int{1, 1, 0, 0}; !reflect.DeepEqual(plan.Owner, want) {
		t.Fatalf("owner %v, want %v", plan.Owner, want)
	}
	b.Apply(plan)
	h := b.History()
	if len(h) != 1 || !strings.HasPrefix(h[0], "step=2 moves=4 owner=4@") {
		t.Fatalf("history %v", h)
	}
}

func TestAMPIBalancerDefaultsToRefineLB(t *testing.T) {
	if name := NewAMPIBalancer(nil, 5).Name(); name != "RefineLB" {
		t.Errorf("default strategy %q, want RefineLB", name)
	}
}

func TestWorkStealBalancerSteals(t *testing.T) {
	b := NewWorkStealBalancer(0, 6)
	if b.Name() != "WorkStealLB" {
		t.Errorf("name %q", b.Name())
	}
	if b.Interval() != 6 {
		t.Errorf("interval %d", b.Interval())
	}
	// Core 0 holds everything; core 1 is idle and must steal a VP.
	b.Observe(Loads{Units: []float64{8, 4, 2, 1}, Owner: []int{0, 0, 0, 0}, Cores: 2})
	plan := b.Plan(6)
	if plan.Owner == nil {
		t.Fatal("idle core did not steal")
	}
	if moves := ampi.Moves([]int{0, 0, 0, 0}, plan.Owner); moves != 1 {
		t.Fatalf("%d moves, want exactly 1 per hungry core", moves)
	}
	// Balanced loads: nothing to steal.
	b.Observe(Loads{Units: []float64{1, 1, 1, 1}, Owner: []int{0, 0, 1, 1}, Cores: 2})
	if p := b.Plan(12); !p.Empty() {
		t.Fatalf("steal on balanced loads: %s", p)
	}
}
