package balance

import (
	"fmt"

	"github.com/parres/picprk/internal/diffusion"
)

// DiffusionBalancer is the paper's "mpi-2d-LB" policy (§IV-B): the
// x-direction cuts of a block decomposition diffuse toward the lighter
// neighbor whenever an adjacent pair's load difference exceeds the
// threshold, with overshoot protection; with Params.TwoPhase the y-cuts
// are balanced from row sums as well. The decision itself lives in
// internal/diffusion — this type adapts it to the Balancer interface so
// the driver engine and the performance model share it verbatim.
type DiffusionBalancer struct {
	Params diffusion.Params

	loads    Loads
	lastStep int
	history  []string
}

// Name implements Balancer.
func (b *DiffusionBalancer) Name() string { return "diffusion" }

// Interval implements Balancer.
func (b *DiffusionBalancer) Interval() int { return b.Params.Every }

// Needs implements Balancer: the guarded decision wants per-cell-column
// loads, and the second phase per-cell-row loads.
func (b *DiffusionBalancer) Needs() Needs {
	return Needs{Cells: true, Rows: b.Params.TwoPhase}
}

// Observe implements Balancer.
func (b *DiffusionBalancer) Observe(l Loads) { b.loads = l }

// Plan implements Balancer. The y decision is taken from the same
// observation as the x decision: it depends only on the y-cuts and the
// global row histogram, neither of which an x-cut move changes, so one
// observation per epoch suffices for both phases.
func (b *DiffusionBalancer) Plan(step int) Plan {
	b.lastStep = step
	var plan Plan
	if newX, changed := diffusion.BalanceStepGuarded(b.loads.X, b.loads.Cells, b.Params); changed {
		plan.X = &newX
	}
	if b.Params.TwoPhase {
		if newY, changed := diffusion.BalanceStepGuarded(b.loads.Y, b.loads.Rows, b.Params); changed {
			plan.Y = &newY
		}
	}
	return plan
}

// Apply implements Balancer.
func (b *DiffusionBalancer) Apply(p Plan) {
	if p.Empty() {
		return
	}
	b.history = append(b.history, fmt.Sprintf("step=%d %s", b.lastStep, p))
}

// History implements Balancer.
func (b *DiffusionBalancer) History() []string { return b.history }

// RestoreHistory implements HistoryRestorer.
func (b *DiffusionBalancer) RestoreHistory(h []string) { b.history = h }
