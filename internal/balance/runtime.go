package balance

import (
	"fmt"

	"github.com/parres/picprk/internal/ampi"
)

// strategyBalancer adapts an ampi.Strategy — a pure function from measured
// per-VP loads to a new owner table — to the Balancer interface. It is the
// common core of AMPIBalancer and WorkStealBalancer.
type strategyBalancer struct {
	strategy ampi.Strategy
	every    int

	loads     Loads
	lastStep  int
	lastMoves int
	history   []string
}

// Name implements Balancer.
func (b *strategyBalancer) Name() string { return b.strategy.Name() }

// Interval implements Balancer.
func (b *strategyBalancer) Interval() int { return b.every }

// Needs implements Balancer.
func (b *strategyBalancer) Needs() Needs { return Needs{Units: true} }

// Observe implements Balancer.
func (b *strategyBalancer) Observe(l Loads) { b.loads = l }

// Plan implements Balancer: run the strategy and return its owner table,
// or an empty plan when nothing would move.
func (b *strategyBalancer) Plan(step int) Plan {
	b.lastStep = step
	newOwner := b.strategy.Plan(b.loads.Units, b.loads.Owner, b.loads.Cores)
	if len(newOwner) == len(b.loads.Owner) {
		b.lastMoves = ampi.Moves(b.loads.Owner, newOwner)
		if b.lastMoves == 0 {
			return Plan{}
		}
	}
	return Plan{Owner: newOwner}
}

// Apply implements Balancer.
func (b *strategyBalancer) Apply(p Plan) {
	if p.Empty() {
		return
	}
	b.history = append(b.history, fmt.Sprintf("step=%d moves=%d %s", b.lastStep, b.lastMoves, p))
}

// History implements Balancer.
func (b *strategyBalancer) History() []string { return b.history }

// RestoreHistory implements HistoryRestorer.
func (b *strategyBalancer) RestoreHistory(h []string) { b.history = h }

// AMPIBalancer is the paper's "ampi" policy (§IV-C): every Interval steps
// a runtime strategy reassigns over-decomposed VPs to cores from the
// globally-reduced per-VP loads.
type AMPIBalancer struct{ strategyBalancer }

// NewAMPIBalancer builds the policy. A nil strategy selects the paper's
// choice, RefineLB.
func NewAMPIBalancer(s ampi.Strategy, every int) *AMPIBalancer {
	if s == nil {
		s = ampi.RefineLB{}
	}
	return &AMPIBalancer{strategyBalancer{strategy: s, every: every}}
}

// WorkStealBalancer is the demand-driven policy of the paper's §VI future
// work: cores whose load falls below a threshold fraction of the mean
// steal VPs from the heaviest cores. It wraps ampi.WorkStealLB.
type WorkStealBalancer struct{ strategyBalancer }

// NewWorkStealBalancer builds the policy; threshold 0 selects the
// WorkStealLB default (0.25).
func NewWorkStealBalancer(threshold float64, every int) *WorkStealBalancer {
	return &WorkStealBalancer{strategyBalancer{strategy: ampi.WorkStealLB{Threshold: threshold}, every: every}}
}
