// Package balance defines the load-balancing policy layer shared by the
// parallel drivers and the performance model. A Balancer turns observed
// load state into a rebalancing Plan; the driver engine executes plans
// against real particles and mesh data, the model executes them against
// its analytic workload — but both run the *same* policy code, so the
// paper's guarantee that model and drivers make identical decisions for
// identical load histories is structural, not by convention.
//
// Four policies mirror the paper's implementation matrix:
//
//   - NullBalancer: no balancing (the "mpi-2d" baseline).
//   - DiffusionBalancer: the application-specific diffusion scheme of
//     §IV-B, editing block-decomposition cut arrays (optionally two-phase).
//   - AMPIBalancer: a runtime strategy (RefineLB by default) reassigning
//     over-decomposed virtual processors to cores, as in §IV-C.
//   - WorkStealBalancer: demand-driven VP stealing, the §VI future-work
//     direction, promoted to a first-class policy.
package balance

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strings"

	"github.com/parres/picprk/internal/decomp"
)

// Needs declares which observations a policy consumes, so the substrate
// only pays for the reductions the policy actually uses.
type Needs struct {
	// Cells requests the globally-reduced per-cell-column histogram.
	Cells bool
	// Rows requests the globally-reduced per-cell-row histogram.
	Rows bool
	// Units requests per-VP loads plus the current VP-to-core owner table.
	Units bool
}

// Loads is one observation of the system's load state. Which fields are
// populated follows the policy's Needs; the decomposition fields (X, Y for
// block policies, Owner/Cores for unit policies) describe the assignment
// the plan will amend.
type Loads struct {
	// X, Y are the current cut arrays of a block decomposition.
	X, Y decomp.Bounds
	// Cells and Rows are global per-cell-column / per-cell-row histograms.
	Cells, Rows []int64
	// Units holds per-VP loads; Owner the current VP-to-core table.
	Units []float64
	Owner []int
	// Cores is the number of cores the plan may assign work to.
	Cores int
}

// Plan is a policy decision. Nil fields mean "leave unchanged"; a zero Plan
// is a no-op. Plans must be pure data — executing one is the substrate's
// job — and deterministic: every rank computes the identical plan from the
// identical Loads.
type Plan struct {
	// X, Y are replacement cut arrays for a block decomposition.
	X, Y *decomp.Bounds
	// Owner is a replacement VP-to-core table.
	Owner []int
}

// Empty reports whether the plan changes nothing.
func (p Plan) Empty() bool { return p.X == nil && p.Y == nil && p.Owner == nil }

// String renders the plan compactly. Owner tables can be large, so they are
// summarized by length and digest rather than printed in full.
func (p Plan) String() string {
	if p.Empty() {
		return "noop"
	}
	var parts []string
	if p.X != nil {
		parts = append(parts, fmt.Sprintf("x=%v", p.X.Cuts))
	}
	if p.Y != nil {
		parts = append(parts, fmt.Sprintf("y=%v", p.Y.Cuts))
	}
	if p.Owner != nil {
		parts = append(parts, "owner="+ownerDigest(p.Owner))
	}
	return strings.Join(parts, " ")
}

// ownerDigest fingerprints an owner table: length plus an FNV-1a hash.
// Decision-identity tests compare digests instead of full tables.
func ownerDigest(owner []int) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, c := range owner {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(c)))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%d@%016x", len(owner), h.Sum64())
}

// Balancer is a load-balancing policy. The driver engine (and the model's
// simulation loop) call it in a fixed cadence: every Interval() steps,
// Observe the loads the policy Needs, ask for a Plan, and — if the plan is
// non-empty and was executed — Apply it so the policy can update its
// history. Implementations are used by one rank loop at a time and need not
// be safe for concurrent use; each rank constructs its own instance.
type Balancer interface {
	// Name identifies the policy in logs and experiment tables.
	Name() string
	// Interval is the number of steps between balancing actions; 0 disables
	// balancing entirely.
	Interval() int
	// Needs declares which Loads fields Observe expects populated.
	Needs() Needs
	// Observe records one load measurement.
	Observe(Loads)
	// Plan computes the rebalancing decision for the given step from the
	// most recent observation. It must be deterministic.
	Plan(step int) Plan
	// Apply informs the policy that the returned plan was executed.
	Apply(Plan)
	// History returns one line per executed (non-empty) plan, in order.
	// Identical load histories must yield identical histories — the
	// model-vs-driver decision-identity tests compare these verbatim.
	History() []string
}

// HistoryRestorer is the optional checkpoint hook: a Balancer that records
// history implements it so the driver's epoch supervisor can roll the
// decision log back to (or forward onto) a committed checkpoint. All other
// per-step balancer state is recomputed from fresh Observe/Plan calls each
// cadence, so the history is the only state a restore must carry for the
// BalanceLog of a recovered run to match an uninterrupted one verbatim.
type HistoryRestorer interface {
	// RestoreHistory replaces the decision history with h (taking ownership
	// of the slice).
	RestoreHistory(h []string)
}

// NullBalancer is the baseline policy: never balance.
type NullBalancer struct{}

// Name implements Balancer.
func (NullBalancer) Name() string { return "null" }

// Interval implements Balancer: 0 disables balancing.
func (NullBalancer) Interval() int { return 0 }

// Needs implements Balancer.
func (NullBalancer) Needs() Needs { return Needs{} }

// Observe implements Balancer.
func (NullBalancer) Observe(Loads) {}

// Plan implements Balancer.
func (NullBalancer) Plan(int) Plan { return Plan{} }

// Apply implements Balancer.
func (NullBalancer) Apply(Plan) {}

// History implements Balancer.
func (NullBalancer) History() []string { return nil }
