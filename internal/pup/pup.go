// Package pup provides a pack/unpack serialization framework modeled on
// Charm++'s PUP, which the paper's AMPI implementation uses for migrating
// virtual processors ("we opted for PUP because it yields higher
// performance", §IV-C). One traversal method written against *PUPer serves
// three modes — sizing, packing and unpacking — so object layout is defined
// exactly once and the pack/unpack pair can never drift apart.
package pup

import (
	"fmt"
	"math"
)

// Mode selects what a PUPer pass does.
type Mode int

// The three traversal modes.
const (
	Sizing Mode = iota
	Packing
	Unpacking
)

// PUPable is implemented by objects that can be migrated.
type PUPable interface {
	PUP(p *PUPer)
}

// PUPer carries the state of one sizing/packing/unpacking traversal.
// After a traversal, check Err (unpacking a short or corrupt buffer records
// an error and turns subsequent calls into no-ops rather than panicking).
type PUPer struct {
	mode Mode
	buf  []byte
	off  int
	size int
	err  error
}

// NewSizer returns a PUPer that only measures the encoded size.
func NewSizer() *PUPer { return &PUPer{mode: Sizing} }

// NewPacker returns a PUPer that packs into a fresh buffer of the given
// size (obtained from a prior sizing pass).
func NewPacker(size int) *PUPer {
	return &PUPer{mode: Packing, buf: make([]byte, size)}
}

// NewUnpacker returns a PUPer that unpacks from buf.
func NewUnpacker(buf []byte) *PUPer {
	return &PUPer{mode: Unpacking, buf: buf}
}

// Mode returns the traversal mode, for objects that must behave differently
// when restoring (e.g. rebuilding caches after unpacking).
func (p *PUPer) Mode() Mode { return p.mode }

// Size returns the measured size after a sizing pass.
func (p *PUPer) Size() int { return p.size }

// Bytes returns the packed buffer after a packing pass.
func (p *PUPer) Bytes() []byte { return p.buf }

// Err returns the first error encountered (unpack overruns).
func (p *PUPer) Err() error { return p.err }

// Remaining reports the unread byte count during an unpacking pass (0 in
// the other modes). Traversals that allocate from decoded lengths use it to
// reject implausible counts before calling make.
func (p *PUPer) Remaining() int {
	if p.mode == Unpacking {
		return len(p.buf) - p.off
	}
	return 0
}

// Done reports whether an unpacking pass consumed the whole buffer.
func (p *PUPer) Done() bool { return p.mode == Unpacking && p.off == len(p.buf) && p.err == nil }

// Fail records an application-level error (e.g. a consistency check during
// unpacking failed); subsequent operations become no-ops and Err/Unpack
// report the error. The first recorded error wins.
func (p *PUPer) Fail(err error) {
	if p.err == nil && err != nil {
		p.err = err
	}
}

func (p *PUPer) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("pup: "+format, args...)
	}
}

func (p *PUPer) raw(n int) []byte {
	switch p.mode {
	case Sizing:
		p.size += n
		return nil
	case Packing:
		if p.off+n > len(p.buf) {
			p.fail("pack overflow: need %d bytes at offset %d of %d", n, p.off, len(p.buf))
			return nil
		}
	case Unpacking:
		if p.off+n > len(p.buf) {
			p.fail("unpack overrun: need %d bytes at offset %d of %d", n, p.off, len(p.buf))
			return nil
		}
	}
	b := p.buf[p.off : p.off+n]
	p.off += n
	return b
}

// Uint64 serializes one uint64.
func (p *PUPer) Uint64(v *uint64) {
	b := p.raw(8)
	if b == nil {
		return
	}
	switch p.mode {
	case Packing:
		putU64(b, *v)
	case Unpacking:
		*v = getU64(b)
	}
}

// Int serializes one int (as 8 bytes, two's complement).
func (p *PUPer) Int(v *int) {
	u := uint64(int64(*v))
	p.Uint64(&u)
	if p.mode == Unpacking {
		*v = int(int64(u))
	}
}

// Int32 serializes one int32.
func (p *PUPer) Int32(v *int32) {
	b := p.raw(4)
	if b == nil {
		return
	}
	switch p.mode {
	case Packing:
		u := uint32(*v)
		b[0], b[1], b[2], b[3] = byte(u), byte(u>>8), byte(u>>16), byte(u>>24)
	case Unpacking:
		*v = int32(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
	}
}

// Float64 serializes one float64 (IEEE-754 bits).
func (p *PUPer) Float64(v *float64) {
	u := math.Float64bits(*v)
	p.Uint64(&u)
	if p.mode == Unpacking {
		*v = math.Float64frombits(u)
	}
}

// Bool serializes one bool as a byte.
func (p *PUPer) Bool(v *bool) {
	b := p.raw(1)
	if b == nil {
		return
	}
	switch p.mode {
	case Packing:
		if *v {
			b[0] = 1
		} else {
			b[0] = 0
		}
	case Unpacking:
		*v = b[0] != 0
	}
}

// Float64s serializes a slice of float64, length-prefixed.
func (p *PUPer) Float64s(v *[]float64) {
	n := len(*v)
	p.Int(&n)
	if p.err != nil {
		return
	}
	if p.mode == Unpacking {
		if n < 0 || n > len(p.buf)/8 {
			p.fail("implausible float64 slice length %d", n)
			return
		}
		*v = resize(*v, n)
	}
	for i := range *v {
		p.Float64(&(*v)[i])
		if p.err != nil {
			return
		}
	}
}

// resize sets a slice's length, reusing its capacity when it suffices: an
// unpack into a retained scratch slice (or a recycled object's field) stays
// off the allocator once the buffer has grown to its working size.
func resize[T any](v []T, n int) []T {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]T, n)
}

// String serializes a string, length-prefixed.
func (p *PUPer) String(v *string) {
	n := len(*v)
	p.Int(&n)
	if p.err != nil {
		return
	}
	switch p.mode {
	case Sizing:
		p.size += n
	case Packing:
		b := p.raw(n)
		if b != nil {
			copy(b, *v)
		}
	case Unpacking:
		if n < 0 || n > len(p.buf) {
			p.fail("implausible string length %d", n)
			return
		}
		b := p.raw(n)
		if b != nil {
			*v = string(b)
		}
	}
}

// ByteSlice serializes a []byte, length-prefixed. (Named to avoid the
// Bytes accessor, which returns the packed buffer.)
func (p *PUPer) ByteSlice(v *[]byte) {
	n := len(*v)
	p.Int(&n)
	if p.err != nil {
		return
	}
	switch p.mode {
	case Sizing:
		p.size += n
	case Packing:
		b := p.raw(n)
		if b != nil {
			copy(b, *v)
		}
	case Unpacking:
		if n < 0 || n > len(p.buf) {
			p.fail("implausible byte slice length %d", n)
			return
		}
		b := p.raw(n)
		if b != nil {
			*v = append([]byte(nil), b...)
		}
	}
}

// Slice serializes a slice of arbitrary elements, length-prefixed, using the
// provided per-element function. Unpacking reuses the passed slice's capacity
// without zeroing it, so elem must write every field it reads back.
func Slice[T any](p *PUPer, v *[]T, elem func(p *PUPer, e *T)) {
	n := len(*v)
	p.Int(&n)
	if p.err != nil {
		return
	}
	if p.mode == Unpacking {
		if n < 0 || n > len(p.buf) {
			p.fail("implausible slice length %d", n)
			return
		}
		*v = resize(*v, n)
	}
	for i := range *v {
		elem(p, &(*v)[i])
		if p.err != nil {
			return
		}
	}
}

// Pack runs the canonical size-then-pack sequence and returns the buffer.
func Pack(obj PUPable) ([]byte, error) {
	s := NewSizer()
	obj.PUP(s)
	if s.Err() != nil {
		return nil, s.Err()
	}
	pk := NewPacker(s.Size())
	obj.PUP(pk)
	if pk.Err() != nil {
		return nil, pk.Err()
	}
	return pk.Bytes(), nil
}

// Unpack restores obj from a buffer produced by Pack, requiring that the
// whole buffer is consumed.
func Unpack(obj PUPable, buf []byte) error {
	u := NewUnpacker(buf)
	obj.PUP(u)
	if u.Err() != nil {
		return u.Err()
	}
	if !u.Done() {
		return fmt.Errorf("pup: %d trailing bytes after unpack", len(buf)-u.off)
	}
	return nil
}

func putU64(b []byte, v uint64) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}

func getU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
