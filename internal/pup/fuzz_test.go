package pup

import "testing"

// FuzzUnpack feeds arbitrary bytes to a PUP unpacker over a struct with
// every primitive: it must never panic or allocate absurd amounts.
func FuzzUnpack(f *testing.F) {
	good, _ := Pack(&demo{F: []float64{1, 2}, G: "seed", Sub: []pair{{1, 2}}})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		var d demo
		if err := Unpack(&d, data); err != nil {
			return
		}
		// Anything accepted must re-pack without error.
		if _, err := Pack(&d); err != nil {
			t.Fatalf("accepted value failed to re-pack: %v", err)
		}
	})
}
