package pup

// The codec registry is the typed-message layer between the message-passing
// runtime and a byte-oriented transport. The in-process transport moves Go
// values by reference and never needs it; a wire transport cannot carry
// pointers, so every payload type that crosses internal/comm registers a
// codec here — a kind id plus a PUP traversal — and the transport looks the
// codec up by the payload's concrete type on send and by the kind id on
// receive. Registration happens in package init functions (each package
// registers the payloads it sends), so an unregistered type surfaces as a
// clear send-time error instead of a silent corruption.

import (
	"fmt"
	"reflect"
	"sync"
)

// Kind identifies a registered payload type on the wire. Kind ranges are
// assigned per package to keep registrations collision-free:
//
//	0         untyped nil (built in, no registration)
//	1–19      pup: Go builtins and primitive slices
//	20–29     internal/comm
//	30–39     internal/particle
//	40–49     internal/core
//	50–69     internal/driver
//	90–99     internal/comm/wire control frames
//	100–199   tests
type Kind uint16

// KindNil is the reserved kind for an untyped nil payload.
const KindNil Kind = 0

// codec binds a payload type to its wire traversal.
type codec struct {
	kind Kind
	typ  reflect.Type
	enc  func(p *PUPer, v any)
	dec  func(p *PUPer) any
}

var registry struct {
	mu     sync.RWMutex
	byType map[reflect.Type]*codec
	byKind map[Kind]*codec
}

func register(kind Kind, typ reflect.Type, enc func(*PUPer, any), dec func(*PUPer) any) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.byType == nil {
		registry.byType = make(map[reflect.Type]*codec)
		registry.byKind = make(map[Kind]*codec)
	}
	if kind == KindNil {
		panic("pup: kind 0 is reserved for untyped nil")
	}
	if prev, ok := registry.byKind[kind]; ok {
		panic(fmt.Sprintf("pup: kind %d already registered for %v", kind, prev.typ))
	}
	if prev, ok := registry.byType[typ]; ok {
		panic(fmt.Sprintf("pup: type %v already registered as kind %d", typ, prev.kind))
	}
	c := &codec{kind: kind, typ: typ, enc: enc, dec: dec}
	registry.byType[typ] = c
	registry.byKind[kind] = c
}

func lookupType(typ reflect.Type) *codec {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return registry.byType[typ]
}

func lookupKind(kind Kind) *codec {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return registry.byKind[kind]
}

// RegisterCodec registers a codec for payloads of type T, serialized by the
// given PUP traversal. Decoding yields a T. It panics on a duplicate kind or
// type (registrations are init-time configuration, not runtime input).
func RegisterCodec[T any](kind Kind, fn func(p *PUPer, v *T)) {
	typ := reflect.TypeOf((*T)(nil)).Elem()
	register(kind, typ,
		func(p *PUPer, v any) {
			t := v.(T)
			fn(p, &t)
		},
		func(p *PUPer) any {
			var t T
			fn(p, &t)
			if p.Err() != nil {
				return nil
			}
			return t
		})
}

// RegisterPtrCodec registers a codec for payloads of type *T. A typed nil
// pointer is a valid payload (the pointer collectives use nil as "nothing
// for you") and travels as a one-byte flag; decoding yields a typed nil *T,
// so receive-side type assertions on *T keep working across the wire.
func RegisterPtrCodec[T any](kind Kind, fn func(p *PUPer, v *T)) {
	typ := reflect.TypeOf((*T)(nil))
	register(kind, typ,
		func(p *PUPer, v any) {
			ptr := v.(*T)
			present := ptr != nil
			p.Bool(&present)
			if present {
				fn(p, ptr)
			}
		},
		func(p *PUPer) any {
			var present bool
			p.Bool(&present)
			if !present || p.Err() != nil {
				return (*T)(nil)
			}
			t := new(T)
			fn(p, t)
			if p.Err() != nil {
				return (*T)(nil)
			}
			return t
		})
}

// PayloadKind returns the registered kind for a payload value, or an error
// naming the unregistered type. A nil payload is KindNil.
func PayloadKind(v any) (Kind, error) {
	if v == nil {
		return KindNil, nil
	}
	c := lookupType(reflect.TypeOf(v))
	if c == nil {
		return 0, fmt.Errorf("pup: no codec registered for payload type %T", v)
	}
	return c.kind, nil
}

// EncodePayload serializes a payload for the wire: the codec's kind followed
// by the PUP-packed body, appended to dst (pass nil for a fresh buffer).
func EncodePayload(dst []byte, v any) ([]byte, Kind, error) {
	kind, err := PayloadKind(v)
	if err != nil {
		return nil, 0, err
	}
	if kind == KindNil {
		return dst, KindNil, nil
	}
	c := lookupKind(kind)
	s := NewSizer()
	c.enc(s, v)
	if s.Err() != nil {
		return nil, 0, fmt.Errorf("pup: sizing %T: %w", v, s.Err())
	}
	pk := NewPacker(s.Size())
	c.enc(pk, v)
	if pk.Err() != nil {
		return nil, 0, fmt.Errorf("pup: packing %T: %w", v, pk.Err())
	}
	return append(dst, pk.Bytes()...), kind, nil
}

// DecodePayload reconstructs a payload from its kind and packed body. The
// whole body must be consumed.
func DecodePayload(kind Kind, body []byte) (any, error) {
	if kind == KindNil {
		if len(body) != 0 {
			return nil, fmt.Errorf("pup: %d stray bytes on a nil payload", len(body))
		}
		return nil, nil
	}
	c := lookupKind(kind)
	if c == nil {
		return nil, fmt.Errorf("pup: no codec registered for kind %d", kind)
	}
	u := NewUnpacker(body)
	v := c.dec(u)
	if u.Err() != nil {
		return nil, fmt.Errorf("pup: decoding kind %d (%v): %w", kind, c.typ, u.Err())
	}
	if !u.Done() {
		return nil, fmt.Errorf("pup: kind %d (%v): %d trailing bytes", kind, c.typ, len(body)-u.off)
	}
	return v, nil
}

// Builtin kinds for the Go primitives and primitive slices the collectives
// ship (reduction vectors, migration buffers, scalar broadcasts).
const (
	KindBool    Kind = 1
	KindInt     Kind = 2
	KindInt64   Kind = 3
	KindUint64  Kind = 4
	KindFloat64 Kind = 5
	KindString  Kind = 6
	KindBytes   Kind = 7
	KindInts    Kind = 8
	KindInt64s  Kind = 9
	KindUint64s Kind = 10
	KindF64s    Kind = 11
	KindInt32s  Kind = 12
)

func init() {
	RegisterCodec[bool](KindBool, func(p *PUPer, v *bool) { p.Bool(v) })
	RegisterCodec[int](KindInt, func(p *PUPer, v *int) { p.Int(v) })
	RegisterCodec[int64](KindInt64, func(p *PUPer, v *int64) {
		u := uint64(*v)
		p.Uint64(&u)
		// Write back only when restoring: packing a payload must not
		// mutate it (the sender may still be reading the value it sent).
		if p.Mode() == Unpacking {
			*v = int64(u)
		}
	})
	RegisterCodec[uint64](KindUint64, func(p *PUPer, v *uint64) { p.Uint64(v) })
	RegisterCodec[float64](KindFloat64, func(p *PUPer, v *float64) { p.Float64(v) })
	RegisterCodec[string](KindString, func(p *PUPer, v *string) { p.String(v) })
	RegisterCodec[[]byte](KindBytes, func(p *PUPer, v *[]byte) { p.ByteSlice(v) })
	RegisterCodec[[]int](KindInts, func(p *PUPer, v *[]int) {
		Slice(p, v, func(p *PUPer, e *int) { p.Int(e) })
	})
	RegisterCodec[[]int64](KindInt64s, func(p *PUPer, v *[]int64) {
		Slice(p, v, func(p *PUPer, e *int64) {
			u := uint64(*e)
			p.Uint64(&u)
			if p.Mode() == Unpacking {
				*e = int64(u)
			}
		})
	})
	RegisterCodec[[]uint64](KindUint64s, func(p *PUPer, v *[]uint64) {
		Slice(p, v, func(p *PUPer, e *uint64) { p.Uint64(e) })
	})
	RegisterCodec[[]float64](KindF64s, func(p *PUPer, v *[]float64) { p.Float64s(v) })
	RegisterCodec[[]int32](KindInt32s, func(p *PUPer, v *[]int32) {
		Slice(p, v, func(p *PUPer, e *int32) { p.Int32(e) })
	})
}
