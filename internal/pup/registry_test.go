package pup

import (
	"math"
	"reflect"
	"testing"
)

// testPair is a registered struct payload for round-trip tests.
type testPair struct {
	A int
	B float64
}

// testKind* live in the test range (100–199).
const (
	testKindPair    Kind = 100
	testKindPairPtr Kind = 101
)

func init() {
	RegisterCodec[testPair](testKindPair, func(p *PUPer, v *testPair) {
		p.Int(&v.A)
		p.Float64(&v.B)
	})
	RegisterPtrCodec[testPair](testKindPairPtr, func(p *PUPer, v *testPair) {
		p.Int(&v.A)
		p.Float64(&v.B)
	})
}

func roundTrip(t *testing.T, v any) any {
	t.Helper()
	body, kind, err := EncodePayload(nil, v)
	if err != nil {
		t.Fatalf("encode %T: %v", v, err)
	}
	got, err := DecodePayload(kind, body)
	if err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	return got
}

func TestPayloadRoundTripBuiltins(t *testing.T) {
	cases := []any{
		true,
		int(-42),
		int64(-1 << 40),
		uint64(1) << 63,
		math.Copysign(0, -1), // -0.0 must survive bitwise
		"hello wire",
		[]byte{0, 1, 2, 255},
		[]int{3, -4, 5},
		[]int64{-9, 9},
		[]uint64{1, 2, 3},
		[]float64{1.5, -2.25, math.Inf(1)},
		[]int32{-7, 7},
		testPair{A: 7, B: 2.5},
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if !reflect.DeepEqual(got, v) {
			t.Errorf("round trip %T: got %#v, want %#v", v, got, v)
		}
	}
}

func TestPayloadNil(t *testing.T) {
	body, kind, err := EncodePayload(nil, nil)
	if err != nil || kind != KindNil || len(body) != 0 {
		t.Fatalf("nil encode: body=%v kind=%d err=%v", body, kind, err)
	}
	got, err := DecodePayload(KindNil, nil)
	if err != nil || got != nil {
		t.Fatalf("nil decode: got=%v err=%v", got, err)
	}
}

func TestPayloadTypedNilPointer(t *testing.T) {
	var p *testPair
	got := roundTrip(t, p)
	tp, ok := got.(*testPair)
	if !ok || tp != nil {
		t.Fatalf("typed nil pointer: got %#v (%T)", got, got)
	}
	// A non-nil pointer decodes to a fresh pointer with equal contents.
	got = roundTrip(t, &testPair{A: 1, B: -1})
	tp, ok = got.(*testPair)
	if !ok || tp == nil || tp.A != 1 || tp.B != -1 {
		t.Fatalf("pointer payload: got %#v (%T)", got, got)
	}
}

func TestPayloadUnregisteredType(t *testing.T) {
	type unregistered struct{ X int }
	if _, _, err := EncodePayload(nil, unregistered{}); err == nil {
		t.Fatal("encoding an unregistered type succeeded")
	}
	if _, err := DecodePayload(Kind(65535), nil); err == nil {
		t.Fatal("decoding an unregistered kind succeeded")
	}
}

func TestPayloadTrailingBytes(t *testing.T) {
	body, kind, err := EncodePayload(nil, int(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePayload(kind, append(body, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := DecodePayload(kind, body[:len(body)-1]); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate kind registration did not panic")
		}
	}()
	RegisterCodec[struct{ Y uint64 }](testKindPair, func(p *PUPer, v *struct{ Y uint64 }) { p.Uint64(&v.Y) })
}
