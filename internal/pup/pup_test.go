package pup

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

type demo struct {
	A   uint64
	B   int
	C   int32
	D   float64
	E   bool
	F   []float64
	G   string
	Sub []pair
}

type pair struct{ X, Y int }

func (d *demo) PUP(p *PUPer) {
	p.Uint64(&d.A)
	p.Int(&d.B)
	p.Int32(&d.C)
	p.Float64(&d.D)
	p.Bool(&d.E)
	p.Float64s(&d.F)
	p.String(&d.G)
	Slice(p, &d.Sub, func(p *PUPer, e *pair) {
		p.Int(&e.X)
		p.Int(&e.Y)
	})
}

func TestPackUnpackRoundtrip(t *testing.T) {
	in := demo{
		A: 12345678901234567, B: -42, C: -7, D: math.Pi, E: true,
		F: []float64{1.5, -2.5, 0}, G: "hello pup",
		Sub: []pair{{1, 2}, {3, 4}},
	}
	buf, err := Pack(&in)
	if err != nil {
		t.Fatal(err)
	}
	var out demo
	if err := Unpack(&out, buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("roundtrip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestPackUnpackEmptySlices(t *testing.T) {
	in := demo{G: "", F: nil, Sub: nil}
	buf, err := Pack(&in)
	if err != nil {
		t.Fatal(err)
	}
	var out demo
	if err := Unpack(&out, buf); err != nil {
		t.Fatal(err)
	}
	if len(out.F) != 0 || len(out.Sub) != 0 || out.G != "" {
		t.Fatalf("empty roundtrip gave %+v", out)
	}
}

func TestSizingMatchesPacking(t *testing.T) {
	in := demo{F: make([]float64, 100), G: "abc", Sub: make([]pair, 5)}
	s := NewSizer()
	in.PUP(s)
	buf, err := Pack(&in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != len(buf) {
		t.Fatalf("sizer said %d, packer produced %d", s.Size(), len(buf))
	}
}

func TestUnpackShortBuffer(t *testing.T) {
	in := demo{F: []float64{1, 2, 3}, G: "xyz"}
	buf, _ := Pack(&in)
	for _, cut := range []int{0, 1, 8, len(buf) - 1} {
		var out demo
		if err := Unpack(&out, buf[:cut]); err == nil {
			t.Errorf("short buffer (%d bytes) accepted", cut)
		}
	}
}

func TestUnpackTrailingBytes(t *testing.T) {
	in := demo{}
	buf, _ := Pack(&in)
	var out demo
	if err := Unpack(&out, append(buf, 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestUnpackCorruptLength(t *testing.T) {
	in := demo{F: []float64{1}}
	buf, _ := Pack(&in)
	// The F length field sits after A(8)+B(8)+C(4)+D(8)+E(1) = 29 bytes.
	buf[29] = 0xFF
	buf[30] = 0xFF
	var out demo
	if err := Unpack(&out, buf); err == nil {
		t.Error("corrupt slice length accepted")
	}
}

func TestErrorsStickAndStopTraversal(t *testing.T) {
	u := NewUnpacker([]byte{1, 2}) // too short for anything
	var v uint64
	u.Uint64(&v)
	first := u.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	var f float64
	u.Float64(&f) // must not panic or overwrite the first error
	if u.Err() != first {
		t.Error("error was overwritten")
	}
}

func TestPUPRoundtripProperty(t *testing.T) {
	f := func(a uint64, b int64, c int32, d float64, e bool, fs []float64, g string) bool {
		in := demo{A: a, B: int(b), C: c, D: d, E: e, F: fs, G: g}
		buf, err := Pack(&in)
		if err != nil {
			return false
		}
		var out demo
		if err := Unpack(&out, buf); err != nil {
			return false
		}
		// Compare via packed form to sidestep NaN != NaN.
		buf2, err := Pack(&out)
		if err != nil {
			return false
		}
		return string(buf) == string(buf2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModeAccessors(t *testing.T) {
	if NewSizer().Mode() != Sizing || NewPacker(0).Mode() != Packing || NewUnpacker(nil).Mode() != Unpacking {
		t.Error("mode accessors wrong")
	}
}

func BenchmarkPack(b *testing.B) {
	in := demo{F: make([]float64, 1000), G: "benchmark", Sub: make([]pair, 100)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pack(&in); err != nil {
			b.Fatal(err)
		}
	}
}
