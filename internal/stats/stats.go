// Package stats provides the load-imbalance and timing metrics used to
// evaluate the PIC PRK runs: per-rank load summaries, imbalance ratios, and
// simple series statistics for the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a set of per-rank loads.
type Summary struct {
	N        int
	Min, Max float64
	Mean     float64
	StdDev   float64
	// Imbalance is max/mean, the canonical load-imbalance factor: 1.0 is
	// perfect balance; the paper's §V-B quotes max particles per core
	// against the ideal (mean) count, which is exactly this ratio.
	Imbalance float64
	// Gini is the Gini coefficient of the load distribution in [0, 1).
	Gini float64
}

// Summarize computes a Summary of the given loads. Empty input returns the
// zero Summary.
func Summarize(loads []float64) Summary {
	if len(loads) == 0 {
		return Summary{}
	}
	s := Summary{N: len(loads), Min: loads[0], Max: loads[0]}
	var sum float64
	for _, l := range loads {
		sum += l
		if l < s.Min {
			s.Min = l
		}
		if l > s.Max {
			s.Max = l
		}
	}
	s.Mean = sum / float64(len(loads))
	var ss float64
	for _, l := range loads {
		d := l - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(loads)))
	if s.Mean > 0 {
		s.Imbalance = s.Max / s.Mean
	} else if s.Max == 0 {
		s.Imbalance = 1
	}
	s.Gini = gini(loads)
	return s
}

func gini(loads []float64) float64 {
	n := len(loads)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), loads...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, l := range sorted {
		cum += float64(i+1) * l
		total += l
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(float64(n)*total) - float64(n+1)/float64(n)
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.0f max=%.0f mean=%.1f imb=%.3f gini=%.3f",
		s.N, s.Min, s.Max, s.Mean, s.Imbalance, s.Gini)
}

// Ints converts integer loads for Summarize.
func Ints[T ~int | ~int32 | ~int64](v []T) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}

// Speedup returns base/t for each series entry, the strong-scaling speedup
// over a serial baseline time.
func Speedup(base float64, times []float64) []float64 {
	out := make([]float64, len(times))
	for i, t := range times {
		if t > 0 {
			out[i] = base / t
		}
	}
	return out
}
