package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{10, 20, 30, 40})
	if s.N != 4 || s.Min != 10 || s.Max != 40 || s.Mean != 25 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Imbalance-1.6) > 1e-12 {
		t.Errorf("imbalance %v, want 1.6", s.Imbalance)
	}
	wantSD := math.Sqrt((225 + 25 + 25 + 225) / 4.0)
	if math.Abs(s.StdDev-wantSD) > 1e-12 {
		t.Errorf("stddev %v, want %v", s.StdDev, wantSD)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary %+v", s)
	}
	s := Summarize([]float64{0, 0, 0})
	if s.Imbalance != 1 || s.Gini != 0 {
		t.Errorf("all-zero summary %+v", s)
	}
	one := Summarize([]float64{7})
	if one.Imbalance != 1 || one.StdDev != 0 {
		t.Errorf("single summary %+v", one)
	}
}

func TestGiniExtremes(t *testing.T) {
	eq := Summarize([]float64{5, 5, 5, 5})
	if math.Abs(eq.Gini) > 1e-12 {
		t.Errorf("equal loads gini %v", eq.Gini)
	}
	// All load on one of many ranks approaches gini -> 1.
	skew := make([]float64, 100)
	skew[0] = 1000
	g := Summarize(skew).Gini
	if g < 0.95 {
		t.Errorf("maximal skew gini %v", g)
	}
}

func TestGiniInvariantToScale(t *testing.T) {
	f := func(raw []uint16, mul uint8) bool {
		if len(raw) < 2 {
			return true
		}
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		k := float64(mul%9) + 1
		var total float64
		for i, r := range raw {
			a[i] = float64(r)
			b[i] = float64(r) * k
			total += a[i]
		}
		if total == 0 {
			return true
		}
		ga, gb := Summarize(a).Gini, Summarize(b).Gini
		return math.Abs(ga-gb) < 1e-9 && ga >= -1e-12 && ga < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestImbalanceAtLeastOne(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]float64, len(raw))
		var total float64
		for i, r := range raw {
			v[i] = float64(r)
			total += v[i]
		}
		if total == 0 {
			return true
		}
		return Summarize(v).Imbalance >= 1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInts(t *testing.T) {
	got := Ints([]int64{1, 2, 3})
	if len(got) != 3 || got[2] != 3 {
		t.Errorf("Ints = %v", got)
	}
}

func TestSpeedup(t *testing.T) {
	got := Speedup(100, []float64{100, 50, 25, 0})
	want := []float64{1, 2, 4, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Speedup[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSummaryString(t *testing.T) {
	if s := Summarize([]float64{1, 2}).String(); s == "" {
		t.Error("empty string")
	}
}
