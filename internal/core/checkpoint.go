package core

import (
	"fmt"

	"github.com/parres/picprk/internal/particle"
	"github.com/parres/picprk/internal/pup"
)

// checkpointMagic guards against restoring unrelated buffers.
const checkpointMagic uint64 = 0x50494350524b4331 // "PICPRKC1"

// simState adapts the simulation's dynamic state to the PUP framework. The
// static configuration (mesh, distribution, schedule, seed) is not part of
// the checkpoint: the caller reconstructs the simulation from the same
// config and restores the dynamic state into it, mirroring how the PRK's
// initialization is replayable by construction.
type simState struct{ s *Simulation }

// PUP implements pup.PUPable.
func (st simState) PUP(p *pup.PUPer) {
	magic := checkpointMagic
	p.Uint64(&magic)
	if p.Mode() == pup.Unpacking && magic != checkpointMagic {
		p.Fail(fmt.Errorf("core: not a PIC PRK checkpoint (magic %#x)", magic))
		return
	}
	p.Int(&st.s.step)
	p.Uint64(&st.s.nextID)
	meshL := st.s.Mesh.L
	p.Int(&meshL)
	if p.Mode() == pup.Unpacking && meshL != st.s.Mesh.L {
		p.Fail(fmt.Errorf("core: checkpoint is for L=%d, simulation has L=%d", meshL, st.s.Mesh.L))
		return
	}
	pup.Slice(p, &st.s.Particles, func(p *pup.PUPer, e *particle.Particle) { e.PUP(p) })
	pup.Slice(p, &st.s.Removed, func(p *pup.PUPer, e *uint64) { p.Uint64(e) })
}

// Checkpoint serializes the simulation's dynamic state — particles, step
// counter, injection ID cursor, and removal record — so a run can be
// suspended and resumed. The configuration is not included; Restore must be
// called on a simulation built with the identical config and schedule.
func (s *Simulation) Checkpoint() ([]byte, error) {
	return pup.Pack(simState{s})
}

// Restore replaces the simulation's dynamic state with a checkpoint
// produced by Checkpoint. The receiving simulation must have been built
// with the same configuration; the mesh size is validated, and resumed runs
// are bitwise identical to uninterrupted ones (asserted by tests).
func (s *Simulation) Restore(buf []byte) error {
	return pup.Unpack(simState{s}, buf)
}
