package core

// NbrSet derives a rank's exchange neighborhood from the owner table: the
// set of peer groups (ranks, or VP-hosting cores) that own at least one
// cell within the displacement ring of a cell this group owns. It is the
// communication-schedule counterpart of Frontier: where Frontier marks the
// cells whose particles might leave, NbrSet names the peers those particles
// can reach — exactly the ranks comm.ExchangePtr needs to talk to, because
// the kernel's per-step displacement bound ((2K+1) cells in x, |M| in y,
// tile.go's preamble) is also a bound on how far a leaver's destination
// cell sits from the cell it left.
//
// The relation is symmetric: group A lists B iff some cell of A and some
// cell of B are within the (wrapped) ring of each other, which is the same
// predicate with A and B swapped, and the ring window [-r, r] is symmetric.
// Every rank therefore derives a mutually consistent schedule from its own
// replicated owner table with no agreement round — the property
// comm.SetExchangeNeighbors requires.
//
// Rebuild exploits the owner table's Cartesian-product structure instead of
// dilating a per-cell mask: each axis is a short list of owner runs
// (contiguous cell intervals per block), two blocks are within the ring iff
// their x-intervals are within rx and their y-intervals within ry of each
// other under wrapped interval distance, and the separable [-rx,rx]×[-ry,ry]
// window makes that pairwise test exactly the cell-level reachability
// predicate. The work is O(L + (px+py)² + px·py·(px+py)) per rebuild —
// block-count sized, not mesh sized — which keeps the refresh off the
// balance phase's critical path.
//
// A NbrSet value is reusable: Rebuild keeps the backing storage, so a
// per-rebalance refresh allocates nothing once the buffers are warm.
type NbrSet struct {
	member       []bool
	peers        []int
	xRuns, yRuns []ownerRun
	xNear, yNear []bool // run-pair wrapped-distance matrices, one per axis
	rowReach     []bool // per y-run: x-runs reachable from its member blocks
	reach        []bool // per block: within the ring of some member block
}

// ownerRun is one maximal run of cells on an axis owned by a single block:
// cells [lo, hi) all map to block idx. The owner table's monotone cut
// structure means every non-empty block contributes exactly one run per
// axis, so the run lists are the (tiny) block-granular view of the mesh.
type ownerRun struct{ idx, lo, hi int }

// Rebuild recomputes the neighbor set for one group over an L×L domain.
// self is the caller's group index, groups the total group count, and
// groupOf maps an owner-table owner index to its group (identity for the
// block substrate, where owners are ranks; the hosting core for the VP
// substrate, where owners are virtual processors). rx/ry are the
// displacement ring widths. The returned slice is sorted ascending,
// excludes self, and remains valid until the next Rebuild; callers must
// not mutate it.
func (s *NbrSet) Rebuild(ot *OwnerTable, L, rx, ry, self, groups int, groupOf func(owner int32) int) []int {
	// A window reaching half the wrapped axis already covers all of it.
	if rx >= L/2 {
		rx = L / 2
	}
	if ry >= L/2 {
		ry = L / 2
	}
	if len(s.member) < groups {
		s.member = make([]bool, groups)
	}
	for _, g := range s.peers {
		s.member[g] = false
	}
	s.peers = s.peers[:0]

	s.xRuns = axisRuns(s.xRuns[:0], ot.xOwner[:L])
	s.yRuns = axisRuns(s.yRuns[:0], ot.yOwner[:L])
	nx, ny := len(s.xRuns), len(s.yRuns)
	s.xNear = nearMatrix(s.xNear, s.xRuns, L, rx)
	s.yNear = nearMatrix(s.yNear, s.yRuns, L, ry)

	// rowReach[j0*nx+i]: is x-run i within rx of a block this group owns in
	// y-run j0? OR of the xNear rows of the member blocks in that y-run.
	s.rowReach = growBools(s.rowReach, ny*nx)
	for j0 := 0; j0 < ny; j0++ {
		row := s.rowReach[j0*nx : j0*nx+nx]
		for i := range row {
			row[i] = false
		}
		yo := int32(s.yRuns[j0].idx) * ot.px
		for i0 := 0; i0 < nx; i0++ {
			if groupOf(yo+int32(s.xRuns[i0].idx)) != self {
				continue
			}
			near := s.xNear[i0*nx : i0*nx+nx]
			for i := range row {
				row[i] = row[i] || near[i]
			}
		}
	}
	// reach[j*nx+i]: block (i,j) lies within the ring of some member block —
	// the block-granular image of the dilated region.
	s.reach = growBools(s.reach, ny*nx)
	for j := 0; j < ny; j++ {
		row := s.reach[j*nx : j*nx+nx]
		for i := range row {
			row[i] = false
		}
		for j0 := 0; j0 < ny; j0++ {
			if !s.yNear[j0*ny+j] {
				continue
			}
			src := s.rowReach[j0*nx : j0*nx+nx]
			for i := range row {
				row[i] = row[i] || src[i]
			}
		}
	}
	// Collect the owners of every block the ring touches: those are the
	// groups one move can deliver a particle to (or receive one from, by
	// symmetry).
	for j := 0; j < ny; j++ {
		yo := int32(s.yRuns[j].idx) * ot.px
		for i := 0; i < nx; i++ {
			if !s.reach[j*nx+i] {
				continue
			}
			g := groupOf(yo + int32(s.xRuns[i].idx))
			if g != self && !s.member[g] {
				s.member[g] = true
				s.peers = append(s.peers, g)
			}
		}
	}
	// Membership collection walks blocks row-major, so peers is not sorted;
	// comm.SetExchangeNeighbors requires ascending order. Insertion sort:
	// the set is small (a handful of adjacent groups) and nearly sorted.
	for i := 1; i < len(s.peers); i++ {
		for j := i; j > 0 && s.peers[j-1] > s.peers[j]; j-- {
			s.peers[j-1], s.peers[j] = s.peers[j], s.peers[j-1]
		}
	}
	return s.peers
}

// axisRuns appends one run per maximal constant stretch of the axis owner
// array. Blocks appear in cut order, so each value shows up at most once.
func axisRuns(runs []ownerRun, owner []int32) []ownerRun {
	for c := 0; c < len(owner); {
		v, lo := owner[c], c
		for c++; c < len(owner) && owner[c] == v; c++ {
		}
		runs = append(runs, ownerRun{idx: int(v), lo: lo, hi: c})
	}
	return runs
}

// nearMatrix fills the symmetric pair matrix: m[a*n+b] reports whether runs
// a and b are within wrapped distance r of each other on an axis of L cells.
func nearMatrix(m []bool, runs []ownerRun, L, r int) []bool {
	n := len(runs)
	m = growBools(m, n*n)
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			v := runsNear(runs[a], runs[b], L, r)
			m[a*n+b], m[b*n+a] = v, v
		}
	}
	return m
}

// runsNear reports whether some cell of run a and some cell of run b lie
// within wrapped distance r. Runs never wrap (cuts are monotone in [0, L)),
// so the nearest pair is either an overlap or the facing endpoints in one
// of the two directions around the ring.
func runsNear(a, b ownerRun, L, r int) bool {
	if a.lo < b.hi && b.lo < a.hi {
		return true // overlapping intervals share a cell
	}
	f := b.lo - a.hi + 1 // forward: a's last cell to b's first
	if f < 0 {
		f += L
	}
	g := a.lo - b.hi + 1 // backward: b's last cell to a's first
	if g < 0 {
		g += L
	}
	return min(f, g) <= r
}

// growBools returns a slice of exactly n entries, reusing b's storage when
// it is large enough. Contents are unspecified; callers clear what they use.
func growBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	return b[:n]
}
