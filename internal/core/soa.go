package core

import (
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/particle"
)

// SoA is a structure-of-arrays particle container: the hot fields the move
// kernel touches every step (positions, velocities, charge) live in
// separate dense slices, while the cold verification metadata stays in a
// parallel slice of records. On wide particle sets this layout keeps the
// inner loop's working set to 5 streams of 8 bytes per particle instead of
// the 96-byte AoS record, a standard optimization in production PIC codes;
// BenchmarkMoveAoSvsSoA quantifies the difference on this machine.
type SoA struct {
	X, Y, VX, VY, Q []float64
	// Meta holds the cold per-particle fields (ID and closed-form
	// trajectory parameters), index-aligned with the hot slices.
	Meta []SoAMeta
}

// SoAMeta is the cold part of a particle.
type SoAMeta struct {
	ID     uint64
	X0, Y0 float64
	K, M   int32
	Dir    int32
	Born   int32
}

// NewSoA converts an AoS particle slice.
func NewSoA(ps []particle.Particle) *SoA {
	s := &SoA{
		X:    make([]float64, len(ps)),
		Y:    make([]float64, len(ps)),
		VX:   make([]float64, len(ps)),
		VY:   make([]float64, len(ps)),
		Q:    make([]float64, len(ps)),
		Meta: make([]SoAMeta, len(ps)),
	}
	for i := range ps {
		p := &ps[i]
		s.X[i], s.Y[i], s.VX[i], s.VY[i], s.Q[i] = p.X, p.Y, p.VX, p.VY, p.Q
		s.Meta[i] = SoAMeta{ID: p.ID, X0: p.X0, Y0: p.Y0, K: p.K, M: p.M, Dir: p.Dir, Born: p.Born}
	}
	return s
}

// Len returns the particle count.
func (s *SoA) Len() int { return len(s.X) }

// Particles converts back to AoS in a fresh slice. Callers that convert
// repeatedly should hold a scratch buffer and use AppendParticles instead —
// this convenience form allocates the full copy every call.
func (s *SoA) Particles() []particle.Particle {
	return s.AppendParticles(make([]particle.Particle, 0, s.Len()))
}

// AppendParticles appends every particle, in AoS form, to dst and returns
// the extended slice. Passing a reused scratch buffer (truncated to [:0])
// makes repeated conversions allocation-free once the buffer reached the
// particle-count high-water mark.
func (s *SoA) AppendParticles(dst []particle.Particle) []particle.Particle {
	for i := range s.X {
		m := s.Meta[i]
		dst = append(dst, particle.Particle{
			ID: m.ID, X: s.X[i], Y: s.Y[i], VX: s.VX[i], VY: s.VY[i], Q: s.Q[i],
			X0: m.X0, Y0: m.Y0, K: m.K, M: m.M, Dir: m.Dir, Born: m.Born,
		})
	}
	return dst
}

// MoveAllSoA advances every particle one step, bitwise identically to
// MoveAll on the equivalent AoS slice (the arithmetic and its order are the
// same; only the memory layout and the charge-lookup specialization differ —
// see hotpath.go).
func (s *SoA) MoveAllSoA(src ChargeSource, m grid.Mesh) {
	moveRange(s, 0, s.Len(), src, m)
}

// At returns particle i in AoS form.
func (s *SoA) At(i int) particle.Particle {
	m := s.Meta[i]
	return particle.Particle{
		ID: m.ID, X: s.X[i], Y: s.Y[i], VX: s.VX[i], VY: s.VY[i], Q: s.Q[i],
		X0: m.X0, Y0: m.Y0, K: m.K, M: m.M, Dir: m.Dir, Born: m.Born,
	}
}

// Append adds one particle.
func (s *SoA) Append(p particle.Particle) {
	s.X = append(s.X, p.X)
	s.Y = append(s.Y, p.Y)
	s.VX = append(s.VX, p.VX)
	s.VY = append(s.VY, p.VY)
	s.Q = append(s.Q, p.Q)
	s.Meta = append(s.Meta, SoAMeta{ID: p.ID, X0: p.X0, Y0: p.Y0, K: p.K, M: p.M, Dir: p.Dir, Born: p.Born})
}

// AppendAll adds every particle of ps.
func (s *SoA) AppendAll(ps []particle.Particle) {
	for i := range ps {
		s.Append(ps[i])
	}
}

// Copy copies slot i onto slot w (the in-place compaction primitive).
func (s *SoA) Copy(w, i int) {
	if w == i {
		return
	}
	s.X[w], s.Y[w] = s.X[i], s.Y[i]
	s.VX[w], s.VY[w] = s.VX[i], s.VY[i]
	s.Q[w] = s.Q[i]
	s.Meta[w] = s.Meta[i]
}

// Truncate shortens the container to n particles, keeping capacity.
func (s *SoA) Truncate(n int) {
	s.X, s.Y = s.X[:n], s.Y[:n]
	s.VX, s.VY = s.VX[:n], s.VY[:n]
	s.Q = s.Q[:n]
	s.Meta = s.Meta[:n]
}

// SplitRetain compacts s in place, keeping particles for which keep returns
// true (order preserved) and appending the rest, in AoS form, to moved.
// Passing a reused moved buffer makes the steady-state exchange split
// allocation-free.
func (s *SoA) SplitRetain(keep func(i int) bool, moved []particle.Particle) []particle.Particle {
	w := 0
	for i := range s.X {
		if keep(i) {
			s.Copy(w, i)
			w++
		} else {
			moved = append(moved, s.At(i))
		}
	}
	s.Truncate(w)
	return moved
}

// Filter keeps only the particles for which keep returns true, in place.
func (s *SoA) Filter(keep func(i int) bool) {
	w := 0
	for i := range s.X {
		if keep(i) {
			s.Copy(w, i)
			w++
		}
	}
	s.Truncate(w)
}
