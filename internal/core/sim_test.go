package core

import (
	"strings"
	"testing"

	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/particle"
)

func newSim(t testing.TB, L, n, k, mv int, d dist.Distribution, sched dist.Schedule) *Simulation {
	t.Helper()
	sim, err := NewSimulation(dist.Config{
		Mesh: mesh(t, L), N: n, K: k, M: mv, Dist: d, Seed: 99,
	}, sched)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestSimulationRunAndVerify(t *testing.T) {
	sim := newSim(t, 32, 5000, 0, 1, dist.Geometric{R: 0.9}, nil)
	sim.Run(100)
	if sim.Steps() != 100 {
		t.Fatalf("steps %d", sim.Steps())
	}
	if err := sim.Verify(0); err != nil {
		t.Fatal(err)
	}
	if got := particle.IDSum(sim.Particles); got != 5000*5001/2 {
		t.Fatalf("checksum %d", got)
	}
}

func TestSimulationInjection(t *testing.T) {
	sched := dist.Schedule{
		{Step: 10, Region: dist.Rect{X0: 4, X1: 12, Y0: 4, Y1: 12}, Inject: 300, K: 1, M: 0},
	}
	sim := newSim(t, 16, 1000, 0, 0, dist.Uniform{}, sched)
	sim.Run(5)
	if len(sim.Particles) != 1000 {
		t.Fatalf("before injection: %d", len(sim.Particles))
	}
	sim.Run(10)
	if len(sim.Particles) != 1300 {
		t.Fatalf("after injection: %d", len(sim.Particles))
	}
	if sim.NextID() != 1301 {
		t.Fatalf("nextID %d", sim.NextID())
	}
	sim.Run(15)
	if err := sim.Verify(0); err != nil {
		t.Fatal(err)
	}
}

func TestSimulationRemoval(t *testing.T) {
	sched := dist.Schedule{
		{Step: 7, Region: dist.Rect{X0: 0, X1: 16, Y0: 0, Y1: 8}, Remove: true},
	}
	sim := newSim(t, 16, 2000, 0, 0, dist.Uniform{}, sched)
	sim.Run(20)
	if len(sim.Particles) >= 2000 {
		t.Fatalf("removal did not happen: %d", len(sim.Particles))
	}
	if len(sim.Removed)+len(sim.Particles) != 2000 {
		t.Fatalf("removed+left = %d+%d", len(sim.Removed), len(sim.Particles))
	}
	if err := sim.Verify(0); err != nil {
		t.Fatal(err)
	}
}

func TestSimulationRemovalThenInjectionSameStep(t *testing.T) {
	// Removal fires before injection at the same step, so injected
	// particles survive even inside the removal region.
	region := dist.Rect{X0: 0, X1: 16, Y0: 0, Y1: 16}
	sched := dist.Schedule{
		{Step: 5, Region: region, Remove: true},
		{Step: 5, Region: region, Inject: 123},
	}
	sim := newSim(t, 16, 500, 0, 0, dist.Uniform{}, sched)
	sim.Run(5)
	if len(sim.Particles) != 123 {
		t.Fatalf("expected only injected to survive, have %d", len(sim.Particles))
	}
	sim.Run(10)
	if err := sim.Verify(0); err != nil {
		t.Fatal(err)
	}
}

func TestSimulationString(t *testing.T) {
	sim := newSim(t, 8, 10, 0, 0, nil, nil)
	if s := sim.String(); !strings.Contains(s, "particles=10") {
		t.Errorf("String() = %q", s)
	}
}

func TestExpectedPopulationMatchesSimulation(t *testing.T) {
	cfg := dist.Config{Mesh: mesh(t, 24), N: 3000, K: 1, M: -1, Dist: dist.Sinusoidal{}, Seed: 5}
	sched := dist.Schedule{
		{Step: 8, Region: dist.Rect{X0: 2, X1: 20, Y0: 2, Y1: 20}, Inject: 700, M: 2},
		{Step: 16, Region: dist.Rect{X0: 0, X1: 12, Y0: 0, Y1: 24}, Remove: true},
	}
	sim, err := NewSimulation(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	const T = 30
	sim.Run(T)
	pop, err := ExpectedPopulation(cfg, sched, T)
	if err != nil {
		t.Fatal(err)
	}
	if pop.Count != len(sim.Particles) {
		t.Fatalf("predicted %d particles, simulation has %d", pop.Count, len(sim.Particles))
	}
	if pop.IDSum != particle.IDSum(sim.Particles) {
		t.Fatalf("predicted checksum %d, simulation %d", pop.IDSum, particle.IDSum(sim.Particles))
	}
	// Removed IDs must agree too.
	removed := map[uint64]bool{}
	for _, id := range sim.Removed {
		removed[id] = true
	}
	if len(pop.RemovedIDs) != len(sim.Removed) {
		t.Fatalf("predicted %d removed, simulation removed %d", len(pop.RemovedIDs), len(sim.Removed))
	}
	for _, id := range pop.RemovedIDs {
		if !removed[id] {
			t.Fatalf("predicted removal of %d which survived", id)
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Simulation)
	}{
		{"position", func(s *Simulation) { s.Particles[7].X += 1 }},
		{"velocity", func(s *Simulation) { s.Particles[3].VY += 0.5 }},
		{"lost particle", func(s *Simulation) { s.Particles = s.Particles[:len(s.Particles)-1] }},
		{"duplicated particle", func(s *Simulation) { s.Particles = append(s.Particles, s.Particles[0]) }},
		{"forged id", func(s *Simulation) { s.Particles[5].ID = 99999 }},
	}
	for _, m := range mutations {
		sim := newSim(t, 16, 500, 0, 1, dist.Geometric{R: 0.9}, nil)
		sim.Run(20)
		m.mut(sim)
		if err := sim.Verify(0); err == nil {
			t.Errorf("%s corruption not detected", m.name)
		}
	}
}

func TestVerifyPositionsBornAfterRun(t *testing.T) {
	ps := []particle.Particle{{ID: 1, Born: 10, Dir: 1}}
	if err := VerifyPositions(mesh(t, 8), ps, 5, 1e-6); err == nil {
		t.Error("future-born particle accepted")
	}
}

func TestScheduleValidationAtConstruction(t *testing.T) {
	_, err := NewSimulation(dist.Config{Mesh: mesh(t, 8), N: 10},
		dist.Schedule{{Step: -1, Inject: 5, Region: dist.Rect{X0: 0, X1: 4, Y0: 0, Y1: 4}}})
	if err == nil {
		t.Error("invalid schedule accepted")
	}
}

func BenchmarkSequentialStep(b *testing.B) {
	sim, err := NewSimulation(dist.Config{
		Mesh: mesh(b, 128), N: 100000, Dist: dist.Geometric{R: 0.99}, Seed: 1,
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
	b.ReportMetric(float64(len(sim.Particles)), "particles")
}
