package core

import (
	"testing"

	"github.com/parres/picprk/internal/dist"
)

func TestCheckpointResumeBitwiseIdentical(t *testing.T) {
	cfg := dist.Config{Mesh: mesh(t, 32), N: 3000, K: 1, M: 2, Dist: dist.Geometric{R: 0.9}, Seed: 11}
	sched := dist.Schedule{
		{Step: 40, Region: dist.Rect{X0: 4, X1: 28, Y0: 4, Y1: 28}, Inject: 500, M: 1},
		{Step: 70, Region: dist.Rect{X0: 0, X1: 16, Y0: 0, Y1: 32}, Remove: true},
	}
	// Uninterrupted run.
	ref, err := NewSimulation(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(100)

	// Interrupted at step 55 (after the injection, before the removal).
	a, err := NewSimulation(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	a.Run(55)
	ckpt, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	b, err := NewSimulation(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	if b.Steps() != 55 || b.NextID() != a.NextID() {
		t.Fatalf("restored step=%d nextID=%d, want 55/%d", b.Steps(), b.NextID(), a.NextID())
	}
	b.Run(45)

	if len(b.Particles) != len(ref.Particles) {
		t.Fatalf("resumed run has %d particles, reference %d", len(b.Particles), len(ref.Particles))
	}
	for i := range ref.Particles {
		if b.Particles[i] != ref.Particles[i] {
			t.Fatalf("particle %d differs after resume", ref.Particles[i].ID)
		}
	}
	if err := b.Verify(0); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	sim := newSim(t, 16, 100, 0, 0, nil, nil)
	if err := sim.Restore([]byte("definitely not a checkpoint")); err == nil {
		t.Error("garbage accepted")
	}
	if err := sim.Restore(nil); err == nil {
		t.Error("empty buffer accepted")
	}
}

func TestRestoreRejectsWrongMesh(t *testing.T) {
	a := newSim(t, 16, 100, 0, 0, nil, nil)
	a.Run(3)
	ckpt, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b := newSim(t, 32, 100, 0, 0, nil, nil)
	if err := b.Restore(ckpt); err == nil {
		t.Error("checkpoint restored into a different domain size")
	}
}

func TestRestoreRejectsTruncated(t *testing.T) {
	a := newSim(t, 16, 500, 0, 0, nil, nil)
	a.Run(5)
	ckpt, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b := newSim(t, 16, 500, 0, 0, nil, nil)
	if err := b.Restore(ckpt[:len(ckpt)/2]); err == nil {
		t.Error("truncated checkpoint accepted")
	}
}
