package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"github.com/parres/picprk/internal/pup"
)

// TestColumnsWireGolden pins the documented exchange wire layout byte for
// byte: 48 bytes of framing (six little-endian uint64 section lengths)
// followed by 80 bytes per particle — the five hot float64 columns, then
// the 40-byte metadata record. This is the format DESIGN.md documents and
// Columns.FramedBytes accounts; if it drifts, fix the encoder, not the test.
func TestColumnsWireGolden(t *testing.T) {
	c := &Columns{
		X: []float64{1.5}, Y: []float64{-2.25},
		VX: []float64{3.0}, VY: []float64{-0.5},
		Q:    []float64{7.75},
		Meta: []SoAMeta{{ID: 0x0102030405060708, X0: 0.25, Y0: -8.5, K: 2, M: -3, Dir: 1, Born: 4}},
	}
	sz := pup.NewSizer()
	PUPColumns(sz, c)
	pk := pup.NewPacker(sz.Size())
	PUPColumns(pk, c)
	if pk.Err() != nil {
		t.Fatal(pk.Err())
	}
	got := pk.Bytes()

	if int64(len(got)) != c.FramedBytes() {
		t.Fatalf("encoded %d bytes, FramedBytes says %d", len(got), c.FramedBytes())
	}
	if len(got) != ColumnsFrameBytes+1*ColumnsBytesPerParticle {
		t.Fatalf("encoded %d bytes, want %d frame + %d per particle",
			len(got), ColumnsFrameBytes, ColumnsBytesPerParticle)
	}

	var want bytes.Buffer
	le := binary.LittleEndian
	u64 := func(v uint64) { _ = binary.Write(&want, le, v) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	i32 := func(v int32) { _ = binary.Write(&want, le, v) }
	for i := 0; i < 6; i++ { // six section lengths
		u64(1)
	}
	f64(1.5)
	f64(-2.25)
	f64(3.0)
	f64(-0.5)
	f64(7.75)
	u64(0x0102030405060708)
	f64(0.25)
	f64(-8.5)
	i32(2)
	i32(-3)
	i32(1)
	i32(4)
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("columns encoding drifted:\n got % x\nwant % x", got, want.Bytes())
	}

	// Round trip through the registered *Columns codec, including typed nil.
	body, kind, err := pup.EncodePayload(nil, c)
	if err != nil || kind != KindColumnsPtr {
		t.Fatalf("encode payload: kind=%d err=%v", kind, err)
	}
	back, err := pup.DecodePayload(kind, body)
	if err != nil {
		t.Fatal(err)
	}
	bc := back.(*Columns)
	if bc.Len() != 1 || bc.X[0] != 1.5 || bc.Meta[0] != c.Meta[0] {
		t.Fatalf("columns did not round-trip: %+v", bc)
	}
	nilBody, kind, err := pup.EncodePayload(nil, (*Columns)(nil))
	if err != nil {
		t.Fatal(err)
	}
	back, err = pup.DecodePayload(kind, nilBody)
	if err != nil {
		t.Fatal(err)
	}
	if pc, ok := back.(*Columns); !ok || pc != nil {
		t.Fatalf("nil shard did not round-trip: %#v", back)
	}
}

func TestColumnsWireRejectsOversizedLengths(t *testing.T) {
	// A frame claiming huge sections must fail before allocating.
	var hdr bytes.Buffer
	for i := 0; i < 6; i++ {
		_ = binary.Write(&hdr, binary.LittleEndian, uint64(1<<40))
	}
	u := pup.NewUnpacker(hdr.Bytes())
	var c Columns
	PUPColumns(u, &c)
	if u.Err() == nil {
		t.Fatal("oversized section lengths were accepted")
	}
}
