package core

// This file is the columnar side of the exchange hot path: leaver particles
// travel between ranks as Columns — the same six dense slices the SoA
// container uses — instead of being materialized one particle.Particle at a
// time. Classification happens inside the move loops (hotpath.go) via an
// OwnerTable lookup, the per-chunk results accumulate in a Leavers list, and
// ScatterRemove splits the SoA into per-destination Columns shards with bulk
// range copies. None of it touches the allocator in steady state: every
// buffer is caller-owned and reused across steps.

// Columns is one destination's shard of departing particles in
// structure-of-arrays form: the five hot []float64 streams plus the cold
// metadata, exactly the SoA layout, so scatter and append are plain copies.
// A Columns value is reusable: Reset keeps the backing arrays.
type Columns struct {
	X, Y, VX, VY, Q []float64
	Meta            []SoAMeta
}

// Len returns the particle count in the shard.
func (c *Columns) Len() int { return len(c.X) }

// Reset empties the shard, keeping capacity.
func (c *Columns) Reset() {
	c.X, c.Y = c.X[:0], c.Y[:0]
	c.VX, c.VY = c.VX[:0], c.VY[:0]
	c.Q = c.Q[:0]
	c.Meta = c.Meta[:0]
}

// AppendFrom appends particle i of s to the shard.
func (c *Columns) AppendFrom(s *SoA, i int) {
	c.X = append(c.X, s.X[i])
	c.Y = append(c.Y, s.Y[i])
	c.VX = append(c.VX, s.VX[i])
	c.VY = append(c.VY, s.VY[i])
	c.Q = append(c.Q, s.Q[i])
	c.Meta = append(c.Meta, s.Meta[i])
}

// Wire-size accounting for the columnar exchange. The in-process runtime
// transfers Columns by reference, so these constants define the *framed*
// size an equivalent byte-oriented transport would ship: one uint64 length
// per column section (6 sections), then 5 float64 columns (8 bytes each per
// particle) plus the 40-byte metadata record. Telemetry reports exchange
// volume in these units so the numbers survive a transport change.
const (
	// ColumnsFrameBytes is the fixed per-shard framing overhead.
	ColumnsFrameBytes = 6 * 8
	// ColumnsBytesPerParticle is the per-particle wire size: 5 hot float64
	// fields plus the SoAMeta record (8 + 8 + 8 + 4×4 = 40 bytes).
	ColumnsBytesPerParticle = 5*8 + 40
)

// FramedBytes returns the shard's wire size under the documented framing.
func (c *Columns) FramedBytes() int64 {
	return ColumnsFrameBytes + int64(c.Len())*ColumnsBytesPerParticle
}

// AppendColumns bulk-appends a received shard to the container.
func (s *SoA) AppendColumns(c *Columns) {
	s.X = append(s.X, c.X...)
	s.Y = append(s.Y, c.Y...)
	s.VX = append(s.VX, c.VX...)
	s.VY = append(s.VY, c.VY...)
	s.Q = append(s.Q, c.Q...)
	s.Meta = append(s.Meta, c.Meta...)
}

// OwnerTable is a dense per-cell owner lookup for a Cartesian-product
// decomposition: owner(cx, cy) = yOwner[cy]*px + xOwner[cx]. It replaces the
// per-particle binary search over the cut arrays on the classification path
// with two array reads. Rebuild it whenever the cuts change (the table is
// small — 2·L int32 — so a rebuild on the rare balancing step is cheap).
type OwnerTable struct {
	xOwner, yOwner []int32
	px             int32
}

// NewOwnerTable builds the table from the two cut arrays of a decomposition
// (block i of the x axis owns cells [xCuts[i], xCuts[i+1]), likewise y).
func NewOwnerTable(xCuts, yCuts []int) *OwnerTable {
	t := &OwnerTable{
		xOwner: make([]int32, xCuts[len(xCuts)-1]),
		yOwner: make([]int32, yCuts[len(yCuts)-1]),
		px:     int32(len(xCuts) - 1),
	}
	for b := 0; b+1 < len(xCuts); b++ {
		for c := xCuts[b]; c < xCuts[b+1]; c++ {
			t.xOwner[c] = int32(b)
		}
	}
	for b := 0; b+1 < len(yCuts); b++ {
		for c := yCuts[b]; c < yCuts[b+1]; c++ {
			t.yOwner[c] = int32(b)
		}
	}
	return t
}

// Owner returns the owner index of cell (cx, cy).
func (t *OwnerTable) Owner(cx, cy int) int32 {
	return t.yOwner[cy]*t.px + t.xOwner[cx]
}

// Leavers records the particles that left their owner during a fused
// move+classify pass, as per-chunk (index, destination) lists: chunk w is
// filled only by worker w, so the parallel pass needs no synchronization,
// and chunks concatenate in index order because chunks are contiguous
// ascending ranges. Reset keeps the backing arrays, so a steady-state pass
// allocates nothing once the lists reached their high-water capacity.
type Leavers struct {
	n        int // active chunk count
	idx, dst [][]int32
}

// Reset prepares the list for a pass with the given chunk count, keeping
// the capacity of every previously used chunk.
func (l *Leavers) Reset(chunks int) {
	if chunks > len(l.idx) {
		idx := make([][]int32, chunks)
		copy(idx, l.idx)
		l.idx = idx
		dst := make([][]int32, chunks)
		copy(dst, l.dst)
		l.dst = dst
	}
	l.n = chunks
	for w := 0; w < chunks; w++ {
		l.idx[w] = l.idx[w][:0]
		l.dst[w] = l.dst[w][:0]
	}
}

// Add records particle i leaving for destination dst, observed by chunk w.
func (l *Leavers) Add(w int, i, dst int32) {
	l.idx[w] = append(l.idx[w], i)
	l.dst[w] = append(l.dst[w], dst)
}

// Chunks returns the active chunk count of the last pass.
func (l *Leavers) Chunks() int { return l.n }

// Chunk returns chunk w's (index, destination) lists. The tile-pipelined
// step reads them to assert invariants (interior leavers must stay local)
// before handing the list to ScatterRemove.
func (l *Leavers) Chunk(w int) (idx, dst []int32) { return l.idx[w], l.dst[w] }

// Count returns the total number of recorded leavers.
func (l *Leavers) Count() int {
	n := 0
	for w := 0; w < l.n; w++ {
		n += len(l.idx[w])
	}
	return n
}

// ScatterRemove removes the recorded leavers from s — compacting the
// stayers in place with bulk range copies, preserving their order — and
// appends each leaver to out[dst], the per-destination Columns shards.
// Leaver indices must ascend across the concatenated chunks (they do, by
// Leavers' construction) and each must be a valid index into s.
func (s *SoA) ScatterRemove(lv *Leavers, out []Columns) {
	w, read := 0, 0
	for c := 0; c < lv.n; c++ {
		ids, ds := lv.idx[c], lv.dst[c]
		for j := range ids {
			i := int(ids[j])
			out[ds[j]].AppendFrom(s, i)
			if n := i - read; n > 0 {
				if w != read {
					copy(s.X[w:w+n], s.X[read:i])
					copy(s.Y[w:w+n], s.Y[read:i])
					copy(s.VX[w:w+n], s.VX[read:i])
					copy(s.VY[w:w+n], s.VY[read:i])
					copy(s.Q[w:w+n], s.Q[read:i])
					copy(s.Meta[w:w+n], s.Meta[read:i])
				}
				w += n
			}
			read = i + 1
		}
	}
	if n := s.Len() - read; n > 0 {
		if w != read {
			copy(s.X[w:w+n], s.X[read:])
			copy(s.Y[w:w+n], s.Y[read:])
			copy(s.VX[w:w+n], s.VX[read:])
			copy(s.VY[w:w+n], s.VY[read:])
			copy(s.Q[w:w+n], s.Q[read:])
			copy(s.Meta[w:w+n], s.Meta[read:])
		}
		w += n
	}
	s.Truncate(w)
}
