package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/particle"
)

// DefaultTolerance is the verification tolerance on particle positions.
// The kernel's arithmetic is deterministic but not exactly lattice-exact;
// the center-line configuration is self-restoring, so the error stays many
// orders of magnitude below the h/2 lattice spacing even over thousands of
// steps (asserted by tests out to 10k steps). The PRK reference
// implementation uses an epsilon-based check for the same reason.
const DefaultTolerance = 1e-5

// VerifyPositions checks every particle against its closed-form trajectory
// (paper eqs. 5–6): after s = steps − Born participating steps the particle
// must be at
//
//	x = (x0 + Dir·(2K+1)·s·h) mod L,   y = (y0 + M·h·s) mod L
//
// within tol (measured as periodic distance). It also checks the velocity
// pattern implied by the spec: vy = M·h/dt always, and vx alternates between
// 0 (after an even number of steps) and Dir·2·(2K+1)·h/dt (after an odd
// number). A single miscomputed force anywhere in a parallel run breaks
// these conditions.
func VerifyPositions(m grid.Mesh, ps []particle.Particle, steps int, tol float64) error {
	L := m.Size()
	for i := range ps {
		p := &ps[i]
		s := steps - int(p.Born)
		if s < 0 {
			return fmt.Errorf("core: particle %d born at step %d but run is only %d steps", p.ID, p.Born, steps)
		}
		ex, ey := p.ExpectedAt(s, L)
		if d := periodicDist(p.X, ex, L); d > tol {
			return fmt.Errorf("core: particle %d x=%v, expected %v after %d steps (|err|=%.3e)", p.ID, p.X, ex, s, d)
		}
		if d := periodicDist(p.Y, ey, L); d > tol {
			return fmt.Errorf("core: particle %d y=%v, expected %v after %d steps (|err|=%.3e)", p.ID, p.Y, ey, s, d)
		}
		if d := math.Abs(p.VY - float64(p.M)); d > tol {
			return fmt.Errorf("core: particle %d vy=%v, expected %d (|err|=%.3e)", p.ID, p.VY, p.M, d)
		}
		var evx float64
		if s%2 == 1 {
			evx = float64(p.Dir) * 2 * float64(2*p.K+1)
		}
		if d := math.Abs(p.VX - evx); d > tol {
			return fmt.Errorf("core: particle %d vx=%v, expected %v after %d steps (|err|=%.3e)", p.ID, p.VX, evx, s, d)
		}
	}
	return nil
}

func periodicDist(a, b, L float64) float64 {
	d := math.Abs(a - b)
	if d > L/2 {
		d = L - d
	}
	return d
}

// Population is the analytically-predicted particle population after a run.
type Population struct {
	// Count is the number of surviving particles.
	Count int
	// IDSum is the sum of surviving particle IDs. With no removal events and
	// n particles (initial + injected) it equals n·(n+1)/2, the checksum of
	// paper §III-D.
	IDSum uint64
	// RemovedIDs lists particles deleted by removal events, ascending.
	RemovedIDs []uint64
}

// ExpectedPopulation computes, without running the simulation, the surviving
// particle population after steps time steps under the given initialization
// and event schedule. It replays the schedule against closed-form
// trajectories: a removal event at step t deletes every live particle whose
// predicted position at t falls inside the region; injection events
// materialize the very same particles a running simulation would create.
func ExpectedPopulation(cfg dist.Config, sched dist.Schedule, steps int) (Population, error) {
	ps, err := dist.Initialize(cfg)
	if err != nil {
		return Population{}, err
	}
	dir := cfg.Dir
	if dir == 0 {
		dir = 1
	}
	nextID := uint64(cfg.N) + 1
	L := cfg.Mesh.Size()
	for _, ev := range sched.Sorted() {
		if ev.Step > steps {
			break
		}
		if ev.Remove {
			kept := ps[:0]
			for i := range ps {
				p := &ps[i]
				x, y := p.ExpectedAt(ev.Step-int(p.Born), L)
				if !ev.Region.ContainsPos(x, y, cfg.Mesh) {
					kept = append(kept, *p)
				}
			}
			ps = kept
		}
		if ev.Inject > 0 {
			ps = append(ps, dist.InjectParticles(cfg.Mesh, ev, cfg.Seed, nextID, dir)...)
			nextID += uint64(ev.Inject)
		}
	}
	pop := Population{Count: len(ps)}
	alive := make(map[uint64]bool, len(ps))
	for i := range ps {
		pop.IDSum += ps[i].ID
		alive[ps[i].ID] = true
	}
	for id := uint64(1); id < nextID; id++ {
		if !alive[id] {
			pop.RemovedIDs = append(pop.RemovedIDs, id)
		}
	}
	return pop, nil
}

// VerifyState is the full verification used by the sequential simulation and
// by parallel drivers after gathering all particles: per-particle positions
// and velocities against the closed-form solution, no duplicate IDs, and the
// population count and ID checksum against the analytic prediction.
func VerifyState(m grid.Mesh, ps []particle.Particle, sched dist.Schedule, seed uint64, dir, initialN, steps int, tol float64) error {
	cfg := dist.Config{Mesh: m, N: initialN, Seed: seed, Dir: dir}
	return verifyAgainst(cfg, sched, ps, steps, tol)
}

// Verify checks a final particle population against the initialization
// config and schedule that produced it.
func Verify(cfg dist.Config, sched dist.Schedule, ps []particle.Particle, steps int, tol float64) error {
	return verifyAgainst(cfg, sched, ps, steps, tol)
}

func verifyAgainst(cfg dist.Config, sched dist.Schedule, ps []particle.Particle, steps int, tol float64) error {
	if tol <= 0 {
		tol = DefaultTolerance
	}
	if err := VerifyPositions(cfg.Mesh, ps, steps, tol); err != nil {
		return err
	}
	ids := make([]uint64, len(ps))
	for i := range ps {
		ids[i] = ps[i].ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			return fmt.Errorf("core: duplicate particle ID %d", ids[i])
		}
	}
	// Population check. Note: for trajectory-params verification above, the
	// per-particle data is intrinsic; the population prediction additionally
	// requires the distribution to regenerate removed/injected sets. When
	// the caller does not know the distribution (cfg.Dist nil is fine: the
	// checksum depends only on which IDs survive), removal events make the
	// prediction placement-dependent, so require the distribution then.
	if cfg.Dist == nil && hasRemoval(sched, steps) {
		return fmt.Errorf("core: verification with removal events requires cfg.Dist")
	}
	pop, err := ExpectedPopulation(cfg, sched, steps)
	if err != nil {
		return err
	}
	if len(ps) != pop.Count {
		return fmt.Errorf("core: particle count %d, expected %d", len(ps), pop.Count)
	}
	if got := particle.IDSum(ps); got != pop.IDSum {
		return fmt.Errorf("core: ID checksum %d, expected %d", got, pop.IDSum)
	}
	return nil
}

func hasRemoval(sched dist.Schedule, steps int) bool {
	for _, ev := range sched {
		if ev.Remove && ev.Step <= steps {
			return true
		}
	}
	return false
}
