// Package core implements the computational kernel of the PIC PRK: the
// 4-corner Coulomb force evaluation, the explicit integration of the
// equations of motion (paper eqs. 1–2), a sequential reference simulation,
// and the closed-form verification of paper §III-D.
package core

import (
	"math"

	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/particle"
)

// ChargeSource supplies the fixed charge at a global mesh point. Both
// grid.Mesh (formulaic) and *grid.Block (materialized per-rank field with
// ghost ring) satisfy it. Parallel drivers pass their local Block so that a
// decomposition or migration bug shows up as a verification failure.
type ChargeSource interface {
	Charge(i, j int) float64
}

// Force computes the total Coulomb force exerted on a particle of charge q
// at position (x, y) inside cell (cx, cy) by the four fixed charges at the
// cell's corners. The convention follows the paper: with ke = 1 the force
// from corner charge Qc on the particle is q·Qc·(p−c)/|p−c|³, repulsive for
// like signs. The corner iteration order is fixed so that the floating-point
// result is identical regardless of decomposition.
func Force(src ChargeSource, q, x, y float64, cx, cy int) (fx, fy float64) {
	relx := x - float64(cx)
	rely := y - float64(cy)
	return forceCorners(src.Charge(cx, cy), src.Charge(cx+1, cy), src.Charge(cx, cy+1), src.Charge(cx+1, cy+1),
		q, relx, rely)
}

// forceCorners evaluates the four corner contributions given the corner
// charges in fixed order — (0,0), (1,0), (0,1), (1,1) — and sums them in a
// fixed association. Every move path (generic, mesh-specialized,
// block-specialized) funnels through this one function, so the
// floating-point result is bitwise identical regardless of how the corner
// charges were obtained.
func forceCorners(q00, q10, q01, q11, q, relx, rely float64) (fx, fy float64) {
	fx0, fy0 := corner(q00, q, relx, rely)
	fx1, fy1 := corner(q10, q, relx-1, rely)
	fx2, fy2 := corner(q01, q, relx, rely-1)
	fx3, fy3 := corner(q11, q, relx-1, rely-1)
	return ((fx0 + fx1) + (fx2 + fx3)), ((fy0 + fy1) + (fy2 + fy3))
}

func corner(qc, q, rx, ry float64) (fx, fy float64) {
	r2 := rx*rx + ry*ry
	r := math.Sqrt(r2)
	f := q * qc / r2
	return f * (rx / r), f * (ry / r)
}

// Move advances one particle by one time step of length dt = 1 using the
// paper's update (eqs. 1–2):
//
//	x(t+dt) = x(t) + v·dt + a·dt²/2
//	v(t+dt) = v(t) + a·dt
//
// with a = F_total (the PRK sets ke/m = 1). Positions wrap periodically.
// Move returns the cell the particle landed in.
func Move(p *particle.Particle, src ChargeSource, m grid.Mesh) (cx, cy int) {
	ocx, ocy := m.CellOf(p.X, p.Y)
	ax, ay := Force(src, p.Q, p.X, p.Y, ocx, ocy)
	p.X = m.WrapCoord(p.X + p.VX + 0.5*ax)
	p.Y = m.WrapCoord(p.Y + p.VY + 0.5*ay)
	p.VX += ax
	p.VY += ay
	return m.CellOf(p.X, p.Y)
}

// MoveAll advances every particle in ps by one step against the same charge
// source. It is the inner loop of the sequential simulation and of each
// rank's compute phase in the parallel drivers.
func MoveAll(ps []particle.Particle, src ChargeSource, m grid.Mesh) {
	for i := range ps {
		Move(&ps[i], src, m)
	}
}
