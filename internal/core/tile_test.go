package core

import (
	"testing"

	"github.com/parres/picprk/internal/grid"
)

// testOwnerTable builds a px×py uniform decomposition owner table over an
// L×L domain, the shape the tile plan is built against in the drivers.
func testOwnerTable(L, px, py int) *OwnerTable {
	xCuts := make([]int, px+1)
	for i := range xCuts {
		xCuts[i] = i * L / px
	}
	yCuts := make([]int, py+1)
	for i := range yCuts {
		yCuts[i] = i * L / py
	}
	return NewOwnerTable(xCuts, yCuts)
}

// TestFrontierMatchesBruteForce pins the separable wrapped dilation against
// the direct definition: a cell is frontier iff some cell within the
// displacement ring (|dx| ≤ rx, |dy| ≤ ry, wrapped) has a remote owner.
func TestFrontierMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		L, px, py, rx, ry int
		self              int32
	}{
		{16, 2, 2, 3, 1, 0},
		{16, 4, 1, 1, 2, 2},
		{12, 3, 2, 5, 3, 4},
		{8, 2, 2, 7, 9, 1},  // ring wider than the wrapped axis
		{16, 1, 1, 3, 1, 0}, // single owner: nothing is remote
	} {
		ot := testOwnerTable(tc.L, tc.px, tc.py)
		remote := func(o int32) bool { return o != tc.self }
		var fr Frontier
		fr.Rebuild(ot, tc.L, tc.rx, tc.ry, remote)
		for cy := 0; cy < tc.L; cy++ {
			for cx := 0; cx < tc.L; cx++ {
				want := false
				for dy := -tc.ry; dy <= tc.ry && !want; dy++ {
					for dx := -tc.rx; dx <= tc.rx; dx++ {
						if remote(ot.Owner(wrapCell(cx+dx, tc.L), wrapCell(cy+dy, tc.L))) {
							want = true
							break
						}
					}
				}
				if got := fr.At(cx, cy); got != want {
					t.Fatalf("L=%d %dx%d ring(%d,%d) self=%d: cell (%d,%d) frontier=%v, brute force says %v",
						tc.L, tc.px, tc.py, tc.rx, tc.ry, tc.self, cx, cy, got, want)
				}
			}
		}
	}
}

// TestTilePlanCoversEveryCellOnce pins the plan's partition property for
// assorted rectangle shapes and tile sizes: every cell maps to exactly one
// valid tile id, interior tiles hold only non-frontier cells, boundary tiles
// only frontier cells, and the id split matches NumInterior.
func TestTilePlanCoversEveryCellOnce(t *testing.T) {
	L := 24
	ot := testOwnerTable(L, 3, 2)
	var fr Frontier
	fr.Rebuild(ot, L, 3, 1, func(o int32) bool { return o != 2 })
	for _, tc := range []struct {
		x0, y0, nx, ny, size int
	}{
		{0, 0, 8, 12, 4},
		{8, 0, 8, 12, 3}, // ragged: 8 % 3 != 0
		{16, 12, 8, 12, 5},
		{0, 12, 8, 12, 1},  // one cell per grid tile
		{8, 12, 8, 12, 64}, // size covers the rect: degenerate 2-tile plan
	} {
		var tp TilePlan
		tp.Build(&fr, tc.x0, tc.y0, tc.nx, tc.ny, tc.size)
		nt, ni := tp.NumTiles(), tp.NumInterior()
		if ni < 0 || ni > nt {
			t.Fatalf("%+v: NumInterior %d outside [0, %d]", tc, ni, nt)
		}
		if tc.size >= tc.nx && tc.size >= tc.ny && nt > 2 {
			t.Fatalf("%+v: covering tile size built %d tiles, want at most 2", tc, nt)
		}
		seen := make([]int, nt)
		boundaryCells := 0
		for cy := tc.y0; cy < tc.y0+tc.ny; cy++ {
			for cx := tc.x0; cx < tc.x0+tc.nx; cx++ {
				id := tp.TileOf(cx, cy)
				if id < 0 || int(id) >= nt {
					t.Fatalf("%+v: cell (%d,%d) has tile id %d outside [0,%d)", tc, cx, cy, id, nt)
				}
				seen[id]++
				if fr.At(cx, cy) {
					boundaryCells++
					if int(id) < ni {
						t.Fatalf("%+v: frontier cell (%d,%d) landed in interior tile %d", tc, cx, cy, id)
					}
				} else if int(id) >= ni {
					t.Fatalf("%+v: interior cell (%d,%d) landed in boundary tile %d", tc, cx, cy, id)
				}
			}
		}
		total := 0
		for id, n := range seen {
			if n == 0 {
				t.Fatalf("%+v: tile %d holds no cells", tc, id)
			}
			total += n
		}
		if total != tc.nx*tc.ny {
			t.Fatalf("%+v: tiles cover %d cells, rect has %d", tc, total, tc.nx*tc.ny)
		}
		if tp.BoundaryCells() != boundaryCells {
			t.Fatalf("%+v: BoundaryCells %d, counted %d", tc, tp.BoundaryCells(), boundaryCells)
		}
	}
}

// TestSortByTileStableGrouping pins the counting sort: dst holds src grouped
// by ascending tile id, original order preserved within each tile, and the
// starts offsets delimit exactly each tile's range.
func TestSortByTileStableGrouping(t *testing.T) {
	m := mesh(t, 16)
	ps := hotpathParticles(t, m, 500)
	src := NewSoA(ps)
	n := src.Len()
	nt := 5
	tid := make([]int32, n)
	for i := range tid {
		tid[i] = int32((i * 7) % nt) // scrambled but deterministic
	}
	dst := &SoA{}
	starts := make([]int32, nt+1)
	cur := make([]int32, nt)
	SortByTile(dst, src, tid, nt, starts, cur)
	if dst.Len() != n {
		t.Fatalf("sorted length %d, want %d", dst.Len(), n)
	}
	if starts[0] != 0 || int(starts[nt]) != n {
		t.Fatalf("starts ends [%d, %d], want [0, %d]", starts[0], starts[nt], n)
	}
	// Walk dst tile by tile: ids must match, and within a tile the original
	// order (ascending source index, recovered via particle ID) holds.
	byID := make(map[uint64]int, n)
	for i := 0; i < n; i++ {
		byID[src.Meta[i].ID] = i
	}
	for tile := 0; tile < nt; tile++ {
		prev := -1
		for w := starts[tile]; w < starts[tile+1]; w++ {
			i := byID[dst.Meta[w].ID]
			if tid[i] != int32(tile) {
				t.Fatalf("dst slot %d holds particle of tile %d, range belongs to tile %d", w, tid[i], tile)
			}
			if dst.At(int(w)) != src.At(i) {
				t.Fatalf("particle %d corrupted by sort", dst.Meta[w].ID)
			}
			if i <= prev {
				t.Fatalf("tile %d not stable: source index %d after %d", tile, i, prev)
			}
			prev = i
		}
	}
}

// TestMoveClassifyTilesMatchesMoveClassify pins the tile-queue mode against
// the plain fused pass: after sorting by tile, running the boundary tiles
// then the interior tiles (the pipeline's two waves) must produce bitwise
// the same particle states and the same leaver set as one MoveClassify over
// the same container, at every worker count.
func TestMoveClassifyTilesMatchesMoveClassify(t *testing.T) {
	L := 32
	m := mesh(t, L)
	block, err := grid.NewBlock(m, 0, 0, L, L)
	if err != nil {
		t.Fatal(err)
	}
	ot := testOwnerTable(L, 2, 2)
	self := int32(0)
	var fr Frontier
	fr.Rebuild(ot, L, 3, 1, func(o int32) bool { return o != self })
	var tp TilePlan
	tp.Build(&fr, 0, 0, L, L, 4)
	nt, ni := tp.NumTiles(), tp.NumInterior()

	ps := hotpathParticles(t, m, 4*parallelThreshold+11)
	sorted := NewSoA(ps)
	tid := make([]int32, sorted.Len())
	for i := range tid {
		cx, cy := m.CellOf(sorted.X[i], sorted.Y[i])
		tid[i] = tp.TileOf(cx, cy)
	}
	starts := make([]int32, nt+1)
	cur := make([]int32, nt)
	scratch := &SoA{}
	SortByTile(scratch, sorted, tid, nt, starts, cur)
	sorted = scratch

	// Reference: one fused pass over the sorted container, single worker.
	ref := NewSoA(sorted.Particles())
	refPool := NewMovePool(1)
	var refLv Leavers
	refPool.MoveClassify(ref, block, m, ot, self, &refLv)
	refLeft := make(map[uint64]int32)
	for w := 0; w < refLv.Chunks(); w++ {
		idx, dst := refLv.Chunk(w)
		for j := range idx {
			refLeft[ref.Meta[idx[j]].ID] = dst[j]
		}
	}

	for _, workers := range []int{1, 2, 7} {
		got := NewSoA(sorted.Particles())
		pool := NewMovePool(workers)
		var lv Leavers
		gotLeft := make(map[uint64]int32)
		collect := func() {
			for w := 0; w < lv.Chunks(); w++ {
				idx, dst := lv.Chunk(w)
				for j := range idx {
					gotLeft[got.Meta[idx[j]].ID] = dst[j]
				}
			}
		}
		// The pipeline's order: boundary tiles first, interior after.
		pool.MoveClassifyTiles(got, block, m, ot, self, &lv, starts, ni, nt)
		collect()
		pool.MoveClassifyTiles(got, block, m, ot, self, &lv, starts, 0, ni)
		collect()
		pool.Close()
		assertSoAEqual(t, ref, got, "tile waves vs fused pass")
		if len(gotLeft) != len(refLeft) {
			t.Fatalf("workers=%d: %d leavers, want %d", workers, len(gotLeft), len(refLeft))
		}
		for id, dst := range refLeft {
			if gotLeft[id] != dst {
				t.Fatalf("workers=%d: particle %d leaves for %d, want %d", workers, id, gotLeft[id], dst)
			}
		}
	}
	refPool.Close()
}

// TestSoAResizeIndependentCapacities pins Resize against containers whose
// slice capacities diverged (possible after column-wise appends).
func TestSoAResizeIndependentCapacities(t *testing.T) {
	s := &SoA{}
	s.Resize(10)
	s.Meta = make([]SoAMeta, 0, 3) // shrink one column's capacity
	s.Resize(8)
	if len(s.X) != 8 || len(s.Y) != 8 || len(s.VX) != 8 || len(s.VY) != 8 || len(s.Q) != 8 || len(s.Meta) != 8 {
		t.Fatalf("resize left ragged lengths: X=%d Y=%d VX=%d VY=%d Q=%d Meta=%d",
			len(s.X), len(s.Y), len(s.VX), len(s.VY), len(s.Q), len(s.Meta))
	}
}
