package core

import (
	"fmt"

	"github.com/parres/picprk/internal/pup"
)

// KindColumnsPtr is the wire codec kind for *Columns exchange shards.
const KindColumnsPtr pup.Kind = 40

// PUPColumns is the wire traversal for a Columns shard, producing exactly
// the framed layout the exchange-byte accounting documents (DESIGN.md §5
// and the constants above): six uint64 section lengths (48 bytes of
// framing), the five hot float64 columns, then one 40-byte metadata record
// per particle — ColumnsFrameBytes + n·ColumnsBytesPerParticle in total,
// so Columns.FramedBytes is the encoder's true output size by construction
// (pinned by TestColumnsWireGolden). Shared by the *Columns codec and the
// VP parcel codec in internal/driver.
func PUPColumns(p *pup.PUPer, c *Columns) {
	lens := [6]uint64{
		uint64(len(c.X)), uint64(len(c.Y)), uint64(len(c.VX)),
		uint64(len(c.VY)), uint64(len(c.Q)), uint64(len(c.Meta)),
	}
	for i := range lens {
		p.Uint64(&lens[i])
	}
	if p.Mode() == pup.Unpacking {
		need := 8*(lens[0]+lens[1]+lens[2]+lens[3]+lens[4]) + 40*lens[5]
		if need > uint64(p.Remaining()) {
			p.Fail(fmt.Errorf("core: columns shard claims %d bytes, %d remain", need, p.Remaining()))
			return
		}
		c.X = make([]float64, lens[0])
		c.Y = make([]float64, lens[1])
		c.VX = make([]float64, lens[2])
		c.VY = make([]float64, lens[3])
		c.Q = make([]float64, lens[4])
		c.Meta = make([]SoAMeta, lens[5])
	}
	for _, col := range [5][]float64{c.X, c.Y, c.VX, c.VY, c.Q} {
		for i := range col {
			p.Float64(&col[i])
		}
	}
	for i := range c.Meta {
		PUPSoAMeta(p, &c.Meta[i])
	}
}

// PUPSoA serializes a whole SoA container — the block substrate's
// checkpoint payload. Each column is length-prefixed independently (the
// traversal reuses the container's existing capacity when unpacking, like
// every other PUP path), and a ragged container fails cleanly rather than
// producing a silently corrupt particle set.
func PUPSoA(p *pup.PUPer, s *SoA) {
	p.Float64s(&s.X)
	p.Float64s(&s.Y)
	p.Float64s(&s.VX)
	p.Float64s(&s.VY)
	p.Float64s(&s.Q)
	pup.Slice(p, &s.Meta, PUPSoAMeta)
	if p.Err() == nil && p.Mode() == pup.Unpacking {
		n := len(s.X)
		if len(s.Y) != n || len(s.VX) != n || len(s.VY) != n || len(s.Q) != n || len(s.Meta) != n {
			p.Fail(fmt.Errorf("core: ragged SoA checkpoint (%d/%d/%d/%d/%d/%d)",
				len(s.X), len(s.Y), len(s.VX), len(s.VY), len(s.Q), len(s.Meta)))
		}
	}
}

// PUPSoAMeta serializes one 40-byte metadata record (8 ID + 2×8 origin +
// 4×4 trajectory ints).
func PUPSoAMeta(p *pup.PUPer, m *SoAMeta) {
	p.Uint64(&m.ID)
	p.Float64(&m.X0)
	p.Float64(&m.Y0)
	p.Int32(&m.K)
	p.Int32(&m.M)
	p.Int32(&m.Dir)
	p.Int32(&m.Born)
}

func init() {
	pup.RegisterPtrCodec[Columns](KindColumnsPtr, PUPColumns)
}
