package core

import (
	"sync"
	"sync/atomic"

	"github.com/parres/picprk/internal/grid"
)

// This file is the multicore, allocation-free hot path of the move phase.
//
// The generic kernel (Force + Move) pays four interface-dispatched Charge
// calls per particle per step. moveRange dispatches ONCE per chunk on the
// concrete charge-source type and then runs a specialized inner loop:
//
//   - grid.Mesh: the charge is formulaic (±Q by column parity), so the four
//     corner charges are computed from one parity test — no memory traffic
//     for the field at all.
//   - *grid.Block: the four corner charges of an owned cell are two adjacent
//     pairs in the block's row-major charge array, read directly by index —
//     no per-corner seam arithmetic, no bounds re-derivation.
//   - anything else: the generic ChargeSource path, kept as the semantic
//     reference (TestGenericSourceMatchesSpecialized pins the identity).
//
// All three paths share forceCorners, so the floating-point operations and
// their order are literally the same code: the specialization changes where
// the corner charges come from, never the arithmetic. Results are therefore
// bitwise identical across paths, which the verification scheme and the
// cross-driver identity tests rely on.

// moveRange advances particles [lo, hi) of s by one step against src.
func moveRange(s *SoA, lo, hi int, src ChargeSource, m grid.Mesh) {
	switch b := src.(type) {
	case grid.Mesh:
		moveRangeMesh(s, lo, hi, b, m)
	case *grid.Block:
		moveRangeBlock(s, lo, hi, b, m)
	default:
		moveRangeGeneric(s, lo, hi, src, m)
	}
}

// moveRangeMesh is the formulaic-field fast path: mesh-point charges depend
// only on column parity (+Q even, -Q odd, and column L wraps to the
// even column 0 — L is even, so parity needs no wrapping).
func moveRangeMesh(s *SoA, lo, hi int, cm, m grid.Mesh) {
	xs, ys, vxs, vys, qs := s.X, s.Y, s.VX, s.VY, s.Q
	for i := lo; i < hi; i++ {
		cx, cy := m.CellOf(xs[i], ys[i])
		q00 := cm.Q
		if cx&1 == 1 {
			q00 = -q00
		}
		// Corner columns alternate: (cx,·) = q00, (cx+1,·) = -q00.
		ax, ay := forceCorners(q00, -q00, q00, -q00, qs[i], xs[i]-float64(cx), ys[i]-float64(cy))
		xs[i] = m.WrapCoord(xs[i] + vxs[i] + 0.5*ax)
		ys[i] = m.WrapCoord(ys[i] + vys[i] + 0.5*ay)
		vxs[i] += ax
		vys[i] += ay
	}
}

// moveRangeBlock is the materialized-field fast path: every particle a rank
// moves sits in a cell its block owns (the engine's ownership invariant), so
// the four corner charges are read straight out of the block's charge array.
func moveRangeBlock(s *SoA, lo, hi int, b *grid.Block, m grid.Mesh) {
	xs, ys, vxs, vys, qs := s.X, s.Y, s.VX, s.VY, s.Q
	for i := lo; i < hi; i++ {
		cx, cy := m.CellOf(xs[i], ys[i])
		q00, q10, q01, q11 := b.CornerCharges(cx, cy)
		ax, ay := forceCorners(q00, q10, q01, q11, qs[i], xs[i]-float64(cx), ys[i]-float64(cy))
		xs[i] = m.WrapCoord(xs[i] + vxs[i] + 0.5*ax)
		ys[i] = m.WrapCoord(ys[i] + vys[i] + 0.5*ay)
		vxs[i] += ax
		vys[i] += ay
	}
}

// moveRangeGeneric is the interface-dispatched fallback for charge sources
// other than the two concrete field types.
func moveRangeGeneric(s *SoA, lo, hi int, src ChargeSource, m grid.Mesh) {
	xs, ys, vxs, vys, qs := s.X, s.Y, s.VX, s.VY, s.Q
	for i := lo; i < hi; i++ {
		cx, cy := m.CellOf(xs[i], ys[i])
		ax, ay := Force(src, qs[i], xs[i], ys[i], cx, cy)
		xs[i] = m.WrapCoord(xs[i] + vxs[i] + 0.5*ax)
		ys[i] = m.WrapCoord(ys[i] + vys[i] + 0.5*ay)
		vxs[i] += ax
		vys[i] += ay
	}
}

// moveClassifyRange is moveRange fused with destination classification:
// after a particle's update, its new cell is looked up in the owner table
// and, when the owner differs from self, (index, owner) is recorded on the
// chunk's leaver list. The move arithmetic is byte-for-byte the same code as
// the plain loops — classification only adds reads after the update — so
// results stay bitwise identical to moveRange.
func moveClassifyRange(s *SoA, lo, hi int, src ChargeSource, m grid.Mesh, ot *OwnerTable, self int32, lv *Leavers, w int) {
	switch b := src.(type) {
	case grid.Mesh:
		moveClassifyRangeMesh(s, lo, hi, b, m, ot, self, lv, w)
	case *grid.Block:
		moveClassifyRangeBlock(s, lo, hi, b, m, ot, self, lv, w)
	default:
		moveClassifyRangeGeneric(s, lo, hi, src, m, ot, self, lv, w)
	}
}

// moveClassifyRangeMesh fuses classification into the formulaic-field path.
func moveClassifyRangeMesh(s *SoA, lo, hi int, cm, m grid.Mesh, ot *OwnerTable, self int32, lv *Leavers, w int) {
	xs, ys, vxs, vys, qs := s.X, s.Y, s.VX, s.VY, s.Q
	for i := lo; i < hi; i++ {
		cx, cy := m.CellOf(xs[i], ys[i])
		q00 := cm.Q
		if cx&1 == 1 {
			q00 = -q00
		}
		ax, ay := forceCorners(q00, -q00, q00, -q00, qs[i], xs[i]-float64(cx), ys[i]-float64(cy))
		xs[i] = m.WrapCoord(xs[i] + vxs[i] + 0.5*ax)
		ys[i] = m.WrapCoord(ys[i] + vys[i] + 0.5*ay)
		vxs[i] += ax
		vys[i] += ay
		ncx, ncy := m.CellOf(xs[i], ys[i])
		if o := ot.Owner(ncx, ncy); o != self {
			lv.Add(w, int32(i), o)
		}
	}
}

// moveClassifyRangeBlock fuses classification into the materialized-field
// path.
func moveClassifyRangeBlock(s *SoA, lo, hi int, b *grid.Block, m grid.Mesh, ot *OwnerTable, self int32, lv *Leavers, w int) {
	xs, ys, vxs, vys, qs := s.X, s.Y, s.VX, s.VY, s.Q
	for i := lo; i < hi; i++ {
		cx, cy := m.CellOf(xs[i], ys[i])
		q00, q10, q01, q11 := b.CornerCharges(cx, cy)
		ax, ay := forceCorners(q00, q10, q01, q11, qs[i], xs[i]-float64(cx), ys[i]-float64(cy))
		xs[i] = m.WrapCoord(xs[i] + vxs[i] + 0.5*ax)
		ys[i] = m.WrapCoord(ys[i] + vys[i] + 0.5*ay)
		vxs[i] += ax
		vys[i] += ay
		ncx, ncy := m.CellOf(xs[i], ys[i])
		if o := ot.Owner(ncx, ncy); o != self {
			lv.Add(w, int32(i), o)
		}
	}
}

// moveClassifyRangeGeneric fuses classification into the generic path.
func moveClassifyRangeGeneric(s *SoA, lo, hi int, src ChargeSource, m grid.Mesh, ot *OwnerTable, self int32, lv *Leavers, w int) {
	xs, ys, vxs, vys, qs := s.X, s.Y, s.VX, s.VY, s.Q
	for i := lo; i < hi; i++ {
		cx, cy := m.CellOf(xs[i], ys[i])
		ax, ay := Force(src, qs[i], xs[i], ys[i], cx, cy)
		xs[i] = m.WrapCoord(xs[i] + vxs[i] + 0.5*ax)
		ys[i] = m.WrapCoord(ys[i] + vys[i] + 0.5*ay)
		vxs[i] += ax
		vys[i] += ay
		ncx, ncy := m.CellOf(xs[i], ys[i])
		if o := ot.Owner(ncx, ncy); o != self {
			lv.Add(w, int32(i), o)
		}
	}
}

// chunkBounds returns the half-open particle range of chunk w when n
// particles are split into `workers` contiguous chunks. Boundaries are a
// pure function of (n, workers, w); they exist for cache locality, not for
// correctness — each particle's update reads and writes only its own slots,
// so ANY partition yields bitwise-identical results.
func chunkBounds(n, workers, w int) (lo, hi int) {
	return w * n / workers, (w + 1) * n / workers
}

// parallelThreshold is the particle count below which MovePool.Move runs
// the chunk serially: waking workers costs a few microseconds, which only
// pays for itself on reasonably sized particle sets (virtual processors in
// an over-decomposed run can hold just a handful of particles each).
const parallelThreshold = 512

// ParallelMove advances every particle of s by one step using the given
// number of workers. It is a convenience wrapper over a throwaway MovePool;
// steady-state callers (the driver substrates) hold a persistent pool so
// the per-step move allocates nothing.
func ParallelMove(workers int, s *SoA, src ChargeSource, m grid.Mesh) {
	p := NewMovePool(workers)
	defer p.Close()
	p.Move(s, src, m)
}

// MovePool is a persistent chunked worker pool for the move phase: one
// fixed set of worker goroutines advances disjoint contiguous chunks of an
// SoA in parallel. A Move on an idle pool performs zero heap allocations —
// job hand-off is a buffered-channel token per worker plus a WaitGroup.
//
// Bitwise determinism: particles are independent (each update touches only
// its own slots and the read-only charge field), so the result is identical
// to the serial loop at any worker count; chunking only affects locality.
type MovePool struct {
	workers int
	wake    []chan struct{}
	busy    sync.WaitGroup

	// In-flight job, written by Move before the wake sends and read by the
	// workers; the channel send/receive and WaitGroup edges order the
	// accesses (no locks on the hot path).
	s   *SoA
	src ChargeSource
	m   grid.Mesh
	// Classification extension of the job: when lv is non-nil the workers
	// run the fused move+classify loops, tagging leavers per chunk.
	ot   *OwnerTable
	self int32
	lv   *Leavers
	// Range restriction of the job: chunk mode splits [rLo, rHi) into even
	// static chunks instead of the whole container.
	rLo, rHi int
	// Tile-queue extension of the job: when tiles is set the workers claim
	// tiles [tLo, tHi) dynamically off the shared cursor instead of taking
	// static chunks — tile t covers particles [tStarts[t], tStarts[t+1])
	// and its leavers land in chunk t-tLo, so results are independent of
	// which worker claims which tile.
	tiles    bool
	tStarts  []int32
	tLo, tHi int
	cursor   atomic.Int64
}

// NewMovePool starts a pool with the given number of workers (minimum 1).
// A one-worker pool runs moves inline and starts no goroutines.
func NewMovePool(workers int) *MovePool {
	if workers < 1 {
		workers = 1
	}
	p := &MovePool{workers: workers}
	if workers == 1 {
		return p
	}
	p.wake = make([]chan struct{}, workers)
	for w := range p.wake {
		ch := make(chan struct{}, 1)
		p.wake[w] = ch
		go p.worker(w, ch)
	}
	return p
}

// Workers returns the pool's worker count.
func (p *MovePool) Workers() int { return p.workers }

func (p *MovePool) worker(w int, wake <-chan struct{}) {
	for range wake {
		if p.tiles {
			p.runTiles()
		} else {
			lo, hi := chunkBounds(p.rHi-p.rLo, p.workers, w)
			lo, hi = lo+p.rLo, hi+p.rLo
			if p.lv != nil {
				moveClassifyRange(p.s, lo, hi, p.src, p.m, p.ot, p.self, p.lv, w)
			} else {
				moveRange(p.s, lo, hi, p.src, p.m)
			}
		}
		p.busy.Done()
	}
}

// runTiles drains the tile queue: claim the next unprocessed tile off the
// shared cursor, run the fused move+classify on its particle range, repeat
// until the queue is empty. Completion-driven claiming is what balances
// unevenly loaded tiles across workers; determinism is untouched because a
// tile's particles and its leaver chunk depend only on the tile id.
func (p *MovePool) runTiles() {
	for {
		t := int(p.cursor.Add(1)) - 1
		if t >= p.tHi {
			return
		}
		moveClassifyRange(p.s, int(p.tStarts[t]), int(p.tStarts[t+1]), p.src, p.m, p.ot, p.self, p.lv, t-p.tLo)
	}
}

// Move advances every particle of s by one step against src. It blocks
// until all chunks are done; the pool must not be shared by concurrent
// callers. Small particle sets run inline (see parallelThreshold).
func (p *MovePool) Move(s *SoA, src ChargeSource, m grid.Mesh) {
	if p.workers == 1 || s.Len() < parallelThreshold {
		moveRange(s, 0, s.Len(), src, m)
		return
	}
	p.s, p.src, p.m = s, src, m
	p.rLo, p.rHi = 0, s.Len()
	p.tiles = false
	p.busy.Add(p.workers)
	for _, ch := range p.wake {
		ch <- struct{}{}
	}
	p.busy.Wait()
	p.s, p.src = nil, nil
}

// MoveClassify is Move fused with destination classification: every
// particle is advanced one step and, when its new cell's owner (per the
// owner table) differs from self, recorded on lv with its destination. The
// leaver lists come back ready for SoA.ScatterRemove — the exchange phase
// needs no second sweep over the particles. lv is Reset here; like Move,
// the call performs zero heap allocations once lv reached its high-water
// capacity, and results are bitwise identical at any worker count.
func (p *MovePool) MoveClassify(s *SoA, src ChargeSource, m grid.Mesh, ot *OwnerTable, self int32, lv *Leavers) {
	p.MoveClassifyRange(s, 0, s.Len(), src, m, ot, self, lv)
}

// MoveClassifyRange is MoveClassify restricted to particles [lo, hi). The
// leaver chunks cover only the range, in ascending index order, so they
// still feed SoA.ScatterRemove directly; particles outside the range are
// untouched. The tile-pipelined step uses it for the per-wave moves of the
// VP substrate (frontier tail first, interior head after).
func (p *MovePool) MoveClassifyRange(s *SoA, lo, hi int, src ChargeSource, m grid.Mesh, ot *OwnerTable, self int32, lv *Leavers) {
	if p.workers == 1 || hi-lo < parallelThreshold {
		lv.Reset(1)
		moveClassifyRange(s, lo, hi, src, m, ot, self, lv, 0)
		return
	}
	lv.Reset(p.workers)
	p.s, p.src, p.m = s, src, m
	p.ot, p.self, p.lv = ot, self, lv
	p.rLo, p.rHi = lo, hi
	p.tiles = false
	p.busy.Add(p.workers)
	for _, ch := range p.wake {
		ch <- struct{}{}
	}
	p.busy.Wait()
	p.s, p.src, p.ot, p.lv = nil, nil, nil, nil
}

// MoveClassifyTiles is the tile-queue mode of the fused move+classify:
// workers dynamically claim tiles [tLo, tHi) — tile t covering the sorted
// particle range [starts[t], starts[t+1]) — off a shared cursor, finishing
// busy tiles without idling on static chunk boundaries. Leavers land in
// chunk t-tLo regardless of the claiming worker, and tiles are ascending
// particle ranges, so the concatenated leaver indices stay ascending (the
// ScatterRemove precondition) and results are bitwise identical at any
// worker count — dynamic claiming changes who computes, never what.
func (p *MovePool) MoveClassifyTiles(s *SoA, src ChargeSource, m grid.Mesh, ot *OwnerTable, self int32, lv *Leavers, starts []int32, tLo, tHi int) {
	nt := tHi - tLo
	if nt <= 0 {
		lv.Reset(0)
		return
	}
	lv.Reset(nt)
	if p.workers == 1 || int(starts[tHi]-starts[tLo]) < parallelThreshold {
		for t := tLo; t < tHi; t++ {
			moveClassifyRange(s, int(starts[t]), int(starts[t+1]), src, m, ot, self, lv, t-tLo)
		}
		return
	}
	p.s, p.src, p.m = s, src, m
	p.ot, p.self, p.lv = ot, self, lv
	p.tStarts, p.tLo, p.tHi = starts, tLo, tHi
	p.tiles = true
	p.cursor.Store(int64(tLo))
	p.busy.Add(p.workers)
	for _, ch := range p.wake {
		ch <- struct{}{}
	}
	p.busy.Wait()
	p.s, p.src, p.ot, p.lv = nil, nil, nil, nil
	p.tStarts, p.tiles = nil, false
}

// Close terminates the worker goroutines. The pool must be idle; Move must
// not be called afterwards (except on a pool that never had workers).
func (p *MovePool) Close() {
	for _, ch := range p.wake {
		close(ch)
	}
	p.wake = nil
}
