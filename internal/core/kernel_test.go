package core

import (
	"math"
	"testing"

	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/particle"
)

func mesh(t testing.TB, L int) grid.Mesh {
	t.Helper()
	m, err := grid.NewMesh(L, grid.DefaultCharge)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// centerParticle builds a particle at the center of cell (cx, cy) with the
// paper's eq. 3 charge for horizontal speed (2k+1) and vertical speed m.
func centerParticle(msh grid.Mesh, cx, cy, k, mv, dir int, id uint64) particle.Particle {
	sign := float64(dir * msh.ColumnSign(cx))
	x := float64(cx) + 0.5
	y := float64(cy) + 0.5
	return particle.Particle{
		ID: id, X: x, Y: y,
		VX: 0, VY: float64(mv),
		Q:  sign * float64(2*k+1) * dist.BaseCharge(msh.Q, 0.5),
		X0: x, Y0: y,
		K: int32(k), M: int32(mv), Dir: int32(dir), Born: 0,
	}
}

func TestForceAtCellCenterIsHorizontal(t *testing.T) {
	m := mesh(t, 8)
	for cx := 0; cx < 8; cx++ {
		p := centerParticle(m, cx, 3, 0, 0, 1, 1)
		fx, fy := Force(m, p.Q, p.X, p.Y, cx, 3)
		if fy != 0 {
			t.Errorf("col %d: vertical force %v, want exactly 0", cx, fy)
		}
		if math.Abs(fx-2) > 1e-12 {
			t.Errorf("col %d: horizontal force %v, want 2 (so displacement is h)", cx, fx)
		}
	}
}

func TestForceDirectionFollowsChargeSign(t *testing.T) {
	m := mesh(t, 8)
	// dir=-1 flips the charge sign, so acceleration points -x.
	p := centerParticle(m, 2, 2, 0, 0, -1, 1)
	fx, _ := Force(m, p.Q, p.X, p.Y, 2, 2)
	if fx >= 0 {
		t.Errorf("leftward particle has non-negative force %v", fx)
	}
}

func TestForceScalesWithK(t *testing.T) {
	m := mesh(t, 8)
	for k := 0; k <= 5; k++ {
		p := centerParticle(m, 0, 0, k, 0, 1, 1)
		fx, _ := Force(m, p.Q, p.X, p.Y, 0, 0)
		want := 2 * float64(2*k+1)
		if math.Abs(fx-want) > 1e-11 {
			t.Errorf("k=%d: force %v, want %v", k, fx, want)
		}
	}
}

func TestMoveSingleStepOneCell(t *testing.T) {
	m := mesh(t, 10)
	p := centerParticle(m, 2, 5, 0, 0, 1, 1)
	Move(&p, m, m)
	if math.Abs(p.X-3.5) > 1e-12 {
		t.Errorf("x=%v, want 3.5", p.X)
	}
	if math.Abs(p.Y-5.5) > 1e-12 {
		t.Errorf("y=%v, want 5.5", p.Y)
	}
	if math.Abs(p.VX-2) > 1e-12 {
		t.Errorf("vx=%v, want 2", p.VX)
	}
	// Second step decelerates back to rest one cell further.
	Move(&p, m, m)
	if math.Abs(p.X-4.5) > 1e-12 || math.Abs(p.VX) > 1e-12 {
		t.Errorf("after 2 steps: x=%v vx=%v, want 4.5, 0", p.X, p.VX)
	}
}

func TestMovePeriodicWrap(t *testing.T) {
	m := mesh(t, 4)
	p := centerParticle(m, 3, 3, 0, 1, 1, 1) // moving right and up from last column/row
	Move(&p, m, m)
	if math.Abs(p.X-0.5) > 1e-12 {
		t.Errorf("x=%v, want wrap to 0.5", p.X)
	}
	if math.Abs(p.Y-0.5) > 1e-12 {
		t.Errorf("y=%v, want wrap to 0.5", p.Y)
	}
}

func TestMoveMatchesClosedFormManySteps(t *testing.T) {
	m := mesh(t, 16)
	cases := []struct{ cx, cy, k, mv, dir int }{
		{0, 0, 0, 0, 1},
		{1, 3, 0, 0, 1},
		{5, 9, 1, 0, 1},
		{2, 2, 2, 3, 1},
		{7, 15, 0, -2, 1},
		{4, 8, 3, 1, -1},
		{9, 1, 1, -1, -1},
	}
	const steps = 5000
	for _, c := range cases {
		p := centerParticle(m, c.cx, c.cy, c.k, c.mv, c.dir, 1)
		for s := 1; s <= steps; s++ {
			Move(&p, m, m)
			ex, ey := p.ExpectedAt(s, m.Size())
			if d := periodicDist(p.X, ex, m.Size()); d > 1e-7 {
				t.Fatalf("case %+v step %d: x err %.3e", c, s, d)
			}
			if d := periodicDist(p.Y, ey, m.Size()); d > 1e-7 {
				t.Fatalf("case %+v step %d: y err %.3e", c, s, d)
			}
		}
	}
}

// TestErrorStaysBoundedLongRun drives a particle for 10k steps and checks
// the accumulated position error stays far below the verification
// tolerance, confirming the center-line configuration is self-restoring.
func TestErrorStaysBoundedLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long run")
	}
	m := mesh(t, 1000)
	p := centerParticle(m, 17, 500, 0, 1, 1, 1)
	const steps = 10000
	var worst float64
	for s := 1; s <= steps; s++ {
		Move(&p, m, m)
		ex, ey := p.ExpectedAt(s, m.Size())
		d := math.Max(periodicDist(p.X, ex, m.Size()), periodicDist(p.Y, ey, m.Size()))
		if d > worst {
			worst = d
		}
	}
	if worst > DefaultTolerance/10 {
		t.Errorf("worst error %.3e over %d steps, want < %g", worst, steps, DefaultTolerance/10)
	}
	t.Logf("worst position error over %d steps: %.3e", steps, worst)
}

func TestForceDeterministicAcrossSources(t *testing.T) {
	// The formulaic mesh and a materialized block must give bitwise
	// identical forces.
	m := mesh(t, 12)
	b, err := grid.NewBlock(m, 3, 4, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	for cy := 4; cy < 10; cy++ {
		for cx := 3; cx < 8; cx++ {
			x, y := float64(cx)+0.5, float64(cy)+0.5
			fx1, fy1 := Force(m, 0.25, x, y, cx, cy)
			fx2, fy2 := Force(b, 0.25, x, y, cx, cy)
			if fx1 != fx2 || fy1 != fy2 {
				t.Fatalf("cell (%d,%d): mesh force (%v,%v) != block force (%v,%v)", cx, cy, fx1, fy1, fx2, fy2)
			}
		}
	}
}

func BenchmarkForce(b *testing.B) {
	m := grid.MustMesh(64, 1)
	p := centerParticle(m, 5, 5, 0, 0, 1, 1)
	var sink float64
	for i := 0; i < b.N; i++ {
		fx, fy := Force(m, p.Q, p.X, p.Y, 5, 5)
		sink += fx + fy
	}
	_ = sink
}

func BenchmarkMoveAll(b *testing.B) {
	m := grid.MustMesh(64, 1)
	ps, err := dist.Initialize(dist.Config{Mesh: m, N: 10000, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MoveAll(ps, m, m)
	}
	b.ReportMetric(float64(len(ps)), "particles/op")
}
