package core_test

import (
	"fmt"

	"github.com/parres/picprk/internal/core"
	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/grid"
)

// Example runs the sequential PIC PRK end to end: initialize a skewed
// population, move it for 500 steps, and verify every particle against the
// closed-form solution of paper §III-D.
func Example() {
	mesh, err := grid.NewMesh(32, grid.DefaultCharge)
	if err != nil {
		panic(err)
	}
	sim, err := core.NewSimulation(dist.Config{
		Mesh: mesh,
		N:    10000,
		Dist: dist.Geometric{R: 0.9},
		Seed: 42,
	}, nil)
	if err != nil {
		panic(err)
	}
	sim.Run(500)
	if err := sim.Verify(0); err != nil {
		fmt.Println("verification failed:", err)
		return
	}
	fmt.Printf("%d particles verified after %d steps\n", len(sim.Particles), sim.Steps())
	// Output: 10000 particles verified after 500 steps
}

// ExampleSimulation_Checkpoint suspends a run and resumes it elsewhere,
// bitwise identically.
func ExampleSimulation_Checkpoint() {
	mesh := grid.MustMesh(16, grid.DefaultCharge)
	cfg := dist.Config{Mesh: mesh, N: 1000, Seed: 7}
	a, _ := core.NewSimulation(cfg, nil)
	a.Run(100)
	ckpt, _ := a.Checkpoint()

	b, _ := core.NewSimulation(cfg, nil)
	_ = b.Restore(ckpt)
	b.Run(100)
	fmt.Println("resumed to step", b.Steps(), "verify:", b.Verify(0) == nil)
	// Output: resumed to step 200 verify: true
}
