package core

import (
	"fmt"

	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/particle"
)

// Simulation is the sequential reference implementation of the PIC PRK.
// Parallel drivers must produce bitwise-identical particle states, which
// the test suite asserts.
type Simulation struct {
	Mesh      grid.Mesh
	Particles []particle.Particle
	Schedule  dist.Schedule
	// Seed and Dir are needed to materialize injection events exactly as
	// every parallel rank does.
	Seed uint64
	Dir  int

	cfg    dist.Config
	step   int
	nextID uint64
	// Removed accumulates the IDs of particles deleted by removal events,
	// for checksum accounting.
	Removed []uint64
}

// NewSimulation builds a sequential simulation from an initialization
// config and an event schedule. The returned simulation owns its particle
// slice.
func NewSimulation(cfg dist.Config, sched dist.Schedule) (*Simulation, error) {
	if err := sched.Validate(cfg.Mesh); err != nil {
		return nil, err
	}
	ps, err := dist.Initialize(cfg)
	if err != nil {
		return nil, err
	}
	dir := cfg.Dir
	if dir == 0 {
		dir = 1
	}
	return &Simulation{
		Mesh:      cfg.Mesh,
		Particles: ps,
		Schedule:  sched.Sorted(),
		Seed:      cfg.Seed,
		Dir:       dir,
		cfg:       cfg,
		nextID:    uint64(cfg.N) + 1,
	}, nil
}

// Step advances the simulation by one time step: every particle moves, then
// any events scheduled for the new step fire (removal before injection, so
// particles injected at step s are never removed by the same step's event).
func (s *Simulation) Step() {
	MoveAll(s.Particles, s.Mesh, s.Mesh)
	s.step++
	s.applyEvents(s.step)
}

// applyEvents fires all events scheduled at the given step.
func (s *Simulation) applyEvents(step int) {
	for _, ev := range s.Schedule.At(step) {
		if ev.Remove {
			kept := s.Particles[:0]
			for i := range s.Particles {
				p := &s.Particles[i]
				if ev.Region.ContainsPos(p.X, p.Y, s.Mesh) {
					s.Removed = append(s.Removed, p.ID)
				} else {
					kept = append(kept, *p)
				}
			}
			s.Particles = kept
		}
		if ev.Inject > 0 {
			inj := dist.InjectParticles(s.Mesh, ev, s.Seed, s.nextID, s.Dir)
			s.Particles = append(s.Particles, inj...)
			s.nextID += uint64(ev.Inject)
		}
	}
}

// Run advances the simulation by n steps.
func (s *Simulation) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Steps returns the number of steps taken so far.
func (s *Simulation) Steps() int { return s.step }

// NextID returns the next unassigned particle ID.
func (s *Simulation) NextID() uint64 { return s.nextID }

// Verify checks the final state against the closed-form solution; see
// VerifyState for the rules.
func (s *Simulation) Verify(tol float64) error {
	return Verify(s.cfg, s.Schedule, s.Particles, s.step, tol)
}

// String summarizes the simulation state.
func (s *Simulation) String() string {
	return fmt.Sprintf("sim{step=%d particles=%d removed=%d}", s.step, len(s.Particles), len(s.Removed))
}
