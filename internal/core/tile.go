package core

// This file is the spatial side of the tile-pipelined step: a Frontier mask
// marking every cell from which one move could reach remotely-owned
// territory, and a TilePlan splitting a rank's (or VP's) cell rectangle into
// boundary tiles (frontier cells) and interior tiles (everything else).
//
// The pipeline they enable: particles are sorted by tile each step, the
// boundary tiles move first and their leavers go on the wire immediately,
// and the interior tiles move while that exchange is in flight. The split
// is sound because the kernel's trajectories have an exact per-step
// displacement bound — (2K+1) cells in x and |M| cells in y (verify.go's
// closed form: both half-steps advance Dir·(2K+1) in x, and VY is constant
// M) — so a particle in a cell farther than that from any remote cell
// cannot leave this step. The driver still classifies interior particles
// and hard-errors if one tries to leave, so a wrong ring width is a loud
// failure, never silent corruption.

// Frontier is a dense per-cell mask over the full L×L domain: true means a
// particle in that cell could reach a cell with a remote owner in one step.
// It is the remote-owner mask dilated by the displacement ring (rx cells in
// x, ry in y), with wraparound. Rebuild it whenever ownership placement
// changes (a decomposition shift, a VP migration) — the mask is L² bools,
// so a rebuild on the rare balancing step is cheap.
type Frontier struct {
	L    int
	mask []bool
	tmp  []bool
}

// Rebuild recomputes the mask for the given owner table and ring widths.
// remote reports whether an owner index lives outside this rank (for the
// block substrate: owner != self; for the VP substrate: the owning VP is
// hosted on another core).
func (f *Frontier) Rebuild(ot *OwnerTable, L, rx, ry int, remote func(owner int32) bool) {
	f.L = L
	if len(f.mask) != L*L {
		f.mask = make([]bool, L*L)
		f.tmp = make([]bool, L*L)
	}
	// Base mask: cells with a remote owner.
	for cy := 0; cy < L; cy++ {
		row := f.tmp[cy*L:]
		for cx := 0; cx < L; cx++ {
			row[cx] = remote(ot.Owner(cx, cy))
		}
	}
	// Dilate by rx in x (wrapped), tmp → mask.
	if rx >= L/2 {
		rx = L / 2 // window spans the whole wrapped axis beyond this
	}
	if ry >= L/2 {
		ry = L / 2
	}
	for cy := 0; cy < L; cy++ {
		src := f.tmp[cy*L : cy*L+L]
		dst := f.mask[cy*L : cy*L+L]
		for cx := 0; cx < L; cx++ {
			v := false
			for d := -rx; d <= rx; d++ {
				if src[wrapCell(cx+d, L)] {
					v = true
					break
				}
			}
			dst[cx] = v
		}
	}
	// Dilate by ry in y (wrapped), mask → tmp, then swap back.
	for cy := 0; cy < L; cy++ {
		dst := f.tmp[cy*L : cy*L+L]
		for cx := 0; cx < L; cx++ {
			v := false
			for d := -ry; d <= ry; d++ {
				if f.mask[wrapCell(cy+d, L)*L+cx] {
					v = true
					break
				}
			}
			dst[cx] = v
		}
	}
	f.mask, f.tmp = f.tmp, f.mask
}

// At reports whether cell (cx, cy) is a frontier cell.
func (f *Frontier) At(cx, cy int) bool { return f.mask[cy*f.L+cx] }

func wrapCell(c, L int) int {
	c %= L
	if c < 0 {
		c += L
	}
	return c
}

// TilePlan partitions the cell rectangle [x0, x0+nx) × [y0, y0+ny) into
// tiles. The rectangle is covered by a grid of size×size cell tiles (ragged
// at the far edges); each grid tile then splits into up to two plan tiles —
// its interior cells and its frontier cells — so the boundary/interior
// classification is exact per cell, not rounded to tile granularity. Tile
// ids are ordered interior first: ids [0, NumInterior) are interior tiles,
// ids [NumInterior, NumTiles) are boundary tiles. Sorting particles by tile
// id therefore lands every boundary particle in one contiguous tail, which
// is what lets the exchange scatter touch only the tail of the SoA.
//
// Every cell of the rectangle belongs to exactly one tile
// (TestTilePlanCoversEveryCellOnce pins this for assorted shapes).
type TilePlan struct {
	x0, y0, nx, ny int
	// tileOf maps local cell (cy-y0)*nx + (cx-x0) to its tile id.
	tileOf            []int32
	nInterior, nTiles int
	boundaryCells     int
}

// Build recomputes the plan for the rectangle against the frontier mask.
// size is the tile edge in cells (minimum 1); a size covering the whole
// rectangle degenerates to at most one interior and one boundary tile.
func (tp *TilePlan) Build(fr *Frontier, x0, y0, nx, ny, size int) {
	if size < 1 {
		size = 1
	}
	tp.x0, tp.y0, tp.nx, tp.ny = x0, y0, nx, ny
	if len(tp.tileOf) < nx*ny {
		tp.tileOf = make([]int32, nx*ny)
	}
	gx := (nx + size - 1) / size
	gy := (ny + size - 1) / size
	// First pass: which grid tiles have interior cells, which have frontier
	// cells. Encoded as 2 bits per grid tile in a small scratch walk — the
	// plan rebuild is rare (init and balancing steps only), so clarity over
	// cleverness.
	hasInterior := make([]bool, gx*gy)
	hasBoundary := make([]bool, gx*gy)
	for ly := 0; ly < ny; ly++ {
		g := (ly / size) * gx
		for lx := 0; lx < nx; lx++ {
			if fr.At(x0+lx, y0+ly) {
				hasBoundary[g+lx/size] = true
			} else {
				hasInterior[g+lx/size] = true
			}
		}
	}
	// Second pass: assign ids — interior parts first (row-major over grid
	// tiles), boundary parts after.
	nInterior := 0
	for _, h := range hasInterior {
		if h {
			nInterior++
		}
	}
	interiorID := make([]int32, gx*gy)
	boundaryID := make([]int32, gx*gy)
	ii, bi := int32(0), int32(nInterior)
	for g := range interiorID {
		if hasInterior[g] {
			interiorID[g] = ii
			ii++
		}
		if hasBoundary[g] {
			boundaryID[g] = bi
			bi++
		}
	}
	tp.nInterior, tp.nTiles = nInterior, int(bi)
	tp.boundaryCells = 0
	for ly := 0; ly < ny; ly++ {
		g := (ly / size) * gx
		row := tp.tileOf[ly*nx:]
		for lx := 0; lx < nx; lx++ {
			if fr.At(x0+lx, y0+ly) {
				row[lx] = boundaryID[g+lx/size]
				tp.boundaryCells++
			} else {
				row[lx] = interiorID[g+lx/size]
			}
		}
	}
}

// NumTiles returns the total tile count.
func (tp *TilePlan) NumTiles() int { return tp.nTiles }

// NumInterior returns the number of interior tiles; boundary tiles occupy
// ids [NumInterior, NumTiles).
func (tp *TilePlan) NumInterior() int { return tp.nInterior }

// BoundaryCells returns how many cells of the rectangle are frontier cells.
func (tp *TilePlan) BoundaryCells() int { return tp.boundaryCells }

// TileOf returns the tile id of the global cell (cx, cy), which must lie
// inside the plan's rectangle.
func (tp *TilePlan) TileOf(cx, cy int) int32 {
	return tp.tileOf[(cy-tp.y0)*tp.nx+(cx-tp.x0)]
}

// SortByTile stably reorders src into dst by tile id: dst holds src's
// particles grouped by tile, ascending, with the original order preserved
// within each tile. tid[i] is the tile id of src particle i (in [0, nt));
// starts must have length nt+1 and receives the tile range offsets
// (tile t occupies dst indices [starts[t], starts[t+1])); cur must have
// length ≥ nt and is clobbered. dst is resized to src's length; with
// caller-reused buffers the sort allocates nothing once capacities reach
// their high-water marks.
func SortByTile(dst, src *SoA, tid []int32, nt int, starts, cur []int32) {
	n := src.Len()
	dst.Resize(n)
	for t := 0; t <= nt; t++ {
		starts[t] = 0
	}
	for _, t := range tid {
		starts[t+1]++
	}
	for t := 0; t < nt; t++ {
		starts[t+1] += starts[t]
		cur[t] = starts[t]
	}
	for i := 0; i < n; i++ {
		t := tid[i]
		w := cur[t]
		cur[t] = w + 1
		dst.X[w], dst.Y[w] = src.X[i], src.Y[i]
		dst.VX[w], dst.VY[w] = src.VX[i], src.VY[i]
		dst.Q[w] = src.Q[i]
		dst.Meta[w] = src.Meta[i]
	}
}

// Resize sets the container's length to n, growing capacity as needed.
// It is a scratch-buffer primitive: slots hold unspecified values after a
// growing Resize until written.
func (s *SoA) Resize(n int) {
	s.X = resized(s.X, n)
	s.Y = resized(s.Y, n)
	s.VX = resized(s.VX, n)
	s.VY = resized(s.VY, n)
	s.Q = resized(s.Q, n)
	s.Meta = resized(s.Meta, n)
}

func resized[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}
