package core

import (
	"testing"

	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/grid"
)

func TestSoAMatchesAoSBitwise(t *testing.T) {
	m := mesh(t, 32)
	cfg := dist.Config{Mesh: m, N: 5000, K: 1, M: -1, Dist: dist.Geometric{R: 0.9}, Seed: 3}
	aos, err := dist.Initialize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	soa := NewSoA(aos)
	for step := 0; step < 100; step++ {
		MoveAll(aos, m, m)
		soa.MoveAllSoA(m, m)
	}
	back := soa.Particles()
	if len(back) != len(aos) {
		t.Fatalf("length mismatch %d vs %d", len(back), len(aos))
	}
	for i := range aos {
		if aos[i] != back[i] {
			t.Fatalf("particle %d differs between AoS and SoA:\n%+v\n%+v", aos[i].ID, aos[i], back[i])
		}
	}
}

func TestSoARoundtrip(t *testing.T) {
	m := mesh(t, 16)
	ps, err := dist.Initialize(dist.Config{Mesh: m, N: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	back := NewSoA(ps).Particles()
	for i := range ps {
		if ps[i] != back[i] {
			t.Fatalf("roundtrip differs at %d", i)
		}
	}
	if NewSoA(nil).Len() != 0 {
		t.Error("empty SoA length")
	}
}

func BenchmarkMoveAoS(b *testing.B) {
	m := grid.MustMesh(256, 1)
	ps, err := dist.Initialize(dist.Config{Mesh: m, N: 200000, Dist: dist.Geometric{R: 0.99}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MoveAll(ps, m, m)
	}
	b.ReportMetric(float64(len(ps))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mparticles/s")
}

func BenchmarkMoveSoA(b *testing.B) {
	m := grid.MustMesh(256, 1)
	ps, err := dist.Initialize(dist.Config{Mesh: m, N: 200000, Dist: dist.Geometric{R: 0.99}, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	soa := NewSoA(ps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		soa.MoveAllSoA(m, m)
	}
	b.ReportMetric(float64(soa.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mparticles/s")
}
