package core

import (
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/parres/picprk/internal/dist"
)

var updateGolden = flag.Bool("update", false, "rewrite the checkpoint golden file")

// TestCheckpointGolden pins the PICPRKC1 checkpoint byte format: a fixed
// small simulation's checkpoint must match the recorded golden bytes
// exactly. Substrate checkpoints and epoch shards build on the same PUP
// primitives, so drift here means every persisted or wire-shipped
// checkpoint changed format — bump the magic ("PICPRKC2") and regenerate
// with -update instead of silently breaking cross-version restores.
func TestCheckpointGolden(t *testing.T) {
	sim, err := NewSimulation(dist.Config{
		Mesh: mesh(t, 8), N: 6, K: 1, M: 1, Dist: dist.Geometric{R: 0.9}, Seed: 7,
	}, dist.Schedule{
		{Step: 2, Region: dist.Rect{X0: 1, X1: 7, Y0: 1, Y1: 7}, Inject: 2, M: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(3)
	ckpt, err := sim.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "checkpoint.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(hex.Dump(ckpt)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to record the golden bytes)", err)
	}
	if got := hex.Dump(ckpt); got != string(want) {
		t.Errorf("PICPRKC1 checkpoint bytes drifted from the golden file:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The golden bytes must restore into an identical simulation.
	back, err := NewSimulation(dist.Config{
		Mesh: mesh(t, 8), N: 6, K: 1, M: 1, Dist: dist.Geometric{R: 0.9}, Seed: 7,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	if back.Steps() != 3 || len(back.Particles) != len(sim.Particles) {
		t.Fatalf("restored step=%d particles=%d, want 3/%d", back.Steps(), len(back.Particles), len(sim.Particles))
	}
	for i := range sim.Particles {
		if back.Particles[i] != sim.Particles[i] {
			t.Fatalf("particle %d differs after golden restore", sim.Particles[i].ID)
		}
	}
}

// TestRestoreRejectsWrongMagic: a buffer whose leading magic is not
// PICPRKC1 is refused with an error that names the magic, not a decode
// failure deeper in.
func TestRestoreRejectsWrongMagic(t *testing.T) {
	a := newSim(t, 16, 100, 0, 0, nil, nil)
	a.Run(3)
	ckpt, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), ckpt...)
	corrupt[0] ^= 0xff // the magic occupies the first 8 bytes
	b := newSim(t, 16, 100, 0, 0, nil, nil)
	err = b.Restore(corrupt)
	if err == nil {
		t.Fatal("checkpoint with a wrong magic accepted")
	}
	if !strings.Contains(err.Error(), "magic") {
		t.Errorf("error %q does not name the magic mismatch", err)
	}
}
