package core

import (
	"runtime"
	"testing"

	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/particle"
)

// opaqueSource hides the concrete field type from the moveRange type switch,
// forcing the generic interface-dispatched path.
type opaqueSource struct{ src ChargeSource }

func (o opaqueSource) Charge(i, j int) float64 { return o.src.Charge(i, j) }

func hotpathParticles(t testing.TB, m grid.Mesh, n int) []particle.Particle {
	t.Helper()
	ps, err := dist.Initialize(dist.Config{Mesh: m, N: n, K: 1, M: -1, Dist: dist.Geometric{R: 0.9}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func assertSoAEqual(t *testing.T, want, got *SoA, label string) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("%s: length %d vs %d", label, got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if want.At(i) != got.At(i) {
			t.Fatalf("%s: particle %d differs:\nwant %+v\ngot  %+v", label, want.Meta[i].ID, want.At(i), got.At(i))
		}
	}
}

// TestGenericSourceMatchesSpecialized pins the devirtualization identity:
// the mesh and block fast paths must produce bitwise the same trajectories
// as the generic ChargeSource path wrapping the same field.
func TestGenericSourceMatchesSpecialized(t *testing.T) {
	m := mesh(t, 32)
	block, err := grid.NewBlock(m, 0, 0, m.L, m.L)
	if err != nil {
		t.Fatal(err)
	}
	ps := hotpathParticles(t, m, 3000)
	viaMesh := NewSoA(ps)
	viaBlock := NewSoA(ps)
	viaGenericMesh := NewSoA(ps)
	viaGenericBlock := NewSoA(ps)
	for step := 0; step < 60; step++ {
		viaMesh.MoveAllSoA(m, m)
		viaBlock.MoveAllSoA(block, m)
		viaGenericMesh.MoveAllSoA(opaqueSource{m}, m)
		viaGenericBlock.MoveAllSoA(opaqueSource{block}, m)
	}
	assertSoAEqual(t, viaGenericMesh, viaMesh, "mesh fast path vs generic")
	assertSoAEqual(t, viaGenericBlock, viaBlock, "block fast path vs generic")
	assertSoAEqual(t, viaGenericMesh, viaGenericBlock, "mesh vs block field")
}

// TestParallelMoveBitwiseIdentity asserts the chunked pool reproduces the
// serial AoS loop bit for bit at every worker count, for both concrete
// field types.
func TestParallelMoveBitwiseIdentity(t *testing.T) {
	m := mesh(t, 32)
	block, err := grid.NewBlock(m, 0, 0, m.L, m.L)
	if err != nil {
		t.Fatal(err)
	}
	// Above parallelThreshold so the pool path actually engages.
	ps := hotpathParticles(t, m, 4*parallelThreshold+37)
	for _, src := range []struct {
		name string
		s    ChargeSource
	}{{"mesh", m}, {"block", block}} {
		ref := append([]particle.Particle(nil), ps...)
		for step := 0; step < 25; step++ {
			MoveAll(ref, src.s, m)
		}
		for _, workers := range []int{1, 2, 7} {
			soa := NewSoA(ps)
			pool := NewMovePool(workers)
			for step := 0; step < 25; step++ {
				pool.Move(soa, src.s, m)
			}
			pool.Close()
			assertSoAEqual(t, NewSoA(ref), soa, src.name)
		}
		// The throwaway wrapper must agree too.
		soa := NewSoA(ps)
		for step := 0; step < 25; step++ {
			ParallelMove(3, soa, src.s, m)
		}
		assertSoAEqual(t, NewSoA(ref), soa, src.name+" ParallelMove")
	}
}

// TestChunkBounds asserts the chunk partition covers [0, n) exactly once
// for awkward worker/particle combinations.
func TestChunkBounds(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 1}, {1, 1}, {1, 7}, {5, 7}, {7, 7}, {100, 7}, {1 << 20, 16},
	} {
		next := 0
		for w := 0; w < tc.workers; w++ {
			lo, hi := chunkBounds(tc.n, tc.workers, w)
			if lo != next {
				t.Fatalf("n=%d workers=%d: chunk %d starts at %d, want %d", tc.n, tc.workers, w, lo, next)
			}
			if hi < lo {
				t.Fatalf("n=%d workers=%d: chunk %d inverted [%d,%d)", tc.n, tc.workers, w, lo, hi)
			}
			next = hi
		}
		if next != tc.n {
			t.Fatalf("n=%d workers=%d: chunks end at %d", tc.n, tc.workers, next)
		}
	}
}

// TestMovePhaseAllocationFree pins the tentpole property: a Move on a
// persistent pool performs zero heap allocations, for both the block and
// (pre-boxed) mesh charge sources and at one and several workers.
func TestMovePhaseAllocationFree(t *testing.T) {
	m := mesh(t, 64)
	block, err := grid.NewBlock(m, 0, 0, m.L, m.L)
	if err != nil {
		t.Fatal(err)
	}
	soa := NewSoA(hotpathParticles(t, m, 4096))
	// Box the mesh once: converting the 16-byte Mesh value to an interface
	// allocates, which is why the substrates hand the pool a *grid.Block.
	var meshSrc ChargeSource = m
	for _, workers := range []int{1, 3} {
		pool := NewMovePool(workers)
		for _, src := range []struct {
			name string
			s    ChargeSource
		}{{"block", block}, {"mesh", meshSrc}} {
			pool.Move(soa, src.s, m) // warm up
			if avg := testing.AllocsPerRun(20, func() {
				pool.Move(soa, src.s, m)
			}); avg != 0 {
				t.Errorf("workers=%d src=%s: %v allocs per Move, want 0", workers, src.name, avg)
			}
		}
		pool.Close()
	}
}

// BenchmarkMovePhaseSteadyState is the regression guard for the hot path:
// ns/op tracks the kernel's speed, allocs/op must stay 0 (asserted by
// TestMovePhaseAllocationFree; visible here via -benchmem).
func BenchmarkMovePhaseSteadyState(b *testing.B) {
	m := grid.MustMesh(256, 1)
	block, err := grid.NewBlock(m, 0, 0, m.L, m.L)
	if err != nil {
		b.Fatal(err)
	}
	soa := NewSoA(hotpathParticles(b, m, 200000))
	pool := NewMovePool(runtime.GOMAXPROCS(0))
	defer pool.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.Move(soa, block, m)
	}
	b.ReportMetric(float64(soa.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mparticles/s")
}
