package core

import (
	"math/rand"
	"testing"
)

// bruteNeighbors computes the neighbor set from the definition: group g is
// a neighbor of self iff some cell of self and some cell of g lie within
// the wrapped displacement ring of each other.
func bruteNeighbors(ot *OwnerTable, L, rx, ry, self, groups int, groupOf func(int32) int) []int {
	if rx >= L/2 {
		rx = L / 2
	}
	if ry >= L/2 {
		ry = L / 2
	}
	seen := make([]bool, groups)
	var out []int
	for cy := 0; cy < L; cy++ {
		for cx := 0; cx < L; cx++ {
			if groupOf(ot.Owner(cx, cy)) != self {
				continue
			}
			for dy := -ry; dy <= ry; dy++ {
				for dx := -rx; dx <= rx; dx++ {
					g := groupOf(ot.Owner(wrapCell(cx+dx, L), wrapCell(cy+dy, L)))
					if g != self && !seen[g] {
						seen[g] = true
						out = append(out, g)
					}
				}
			}
		}
	}
	// Match Rebuild's sorted order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// randomCuts builds a random monotone cut array splitting [0, L) into n
// non-empty blocks — the shape a rebalanced decomposition takes.
func randomCuts(rng *rand.Rand, L, n int) []int {
	cuts := make([]int, n+1)
	cuts[n] = L
	// Choose n-1 distinct interior cut points.
	interior := rng.Perm(L - 1)[: n-1 : n-1]
	for i := 1; i < n; i++ {
		cuts[i] = interior[i-1] + 1
	}
	for i := 1; i < n; i++ { // insertion sort the interior points
		for j := i; j > 1 && cuts[j-1] > cuts[j]; j-- {
			cuts[j-1], cuts[j] = cuts[j], cuts[j-1]
		}
	}
	return cuts
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestNbrSetMatchesBruteForce is the schedule's property test: over
// randomized meshes, halo widths, and rebalanced (randomly re-cut) owner
// tables, the block-run interval derivation must equal brute-force
// reachability, the relation must be symmetric across all groups, and a
// ring wide enough to reach everyone must collapse to the full ring.
func TestNbrSetMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var nbr NbrSet
	for trial := 0; trial < 60; trial++ {
		L := 8 + rng.Intn(17)   // 8..24
		px := 1 + rng.Intn(4)   // 1..4
		py := 1 + rng.Intn(3)   // 1..3
		rx := 1 + 2*rng.Intn(4) // 1,3,5,7 — (2K+1) shapes
		ry := rng.Intn(4)       // 0..3 — |M| shapes, including no y motion
		if px > L || py > L {
			continue
		}
		ot := NewOwnerTable(randomCuts(rng, L, px), randomCuts(rng, L, py))
		groups := px * py
		ident := func(o int32) int { return int(o) }
		got := make([][]int, groups)
		for self := 0; self < groups; self++ {
			want := bruteNeighbors(ot, L, rx, ry, self, groups, ident)
			peers := nbr.Rebuild(ot, L, rx, ry, self, groups, ident)
			if !equalInts(peers, want) {
				t.Fatalf("L=%d %dx%d ring(%d,%d) self=%d: derived %v, brute force %v",
					L, px, py, rx, ry, self, peers, want)
			}
			got[self] = append([]int(nil), peers...)
		}
		// Symmetry: i lists j iff j lists i — the property that makes
		// independently derived schedules mutually consistent.
		for i := 0; i < groups; i++ {
			for _, j := range got[i] {
				found := false
				for _, back := range got[j] {
					if back == i {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("L=%d %dx%d ring(%d,%d): %d lists %d but not vice versa (%v / %v)",
						L, px, py, rx, ry, i, j, got[i], got[j])
				}
			}
		}
	}
}

// TestNbrSetDegenerateFullRing pins the all-ranks-adjacent case: a ring
// wide enough to wrap the whole domain must produce the full ring — every
// other group, in order.
func TestNbrSetDegenerateFullRing(t *testing.T) {
	L, px, py := 16, 4, 2
	ot := testOwnerTable(L, px, py)
	groups := px * py
	var nbr NbrSet
	for self := 0; self < groups; self++ {
		peers := nbr.Rebuild(ot, L, L, L, self, groups, func(o int32) int { return int(o) })
		if len(peers) != groups-1 {
			t.Fatalf("self=%d: %d peers, want full ring of %d", self, len(peers), groups-1)
		}
		prev := -1
		for _, g := range peers {
			if g == self || g <= prev {
				t.Fatalf("self=%d: bad full-ring peer list %v", self, peers)
			}
			prev = g
		}
	}
}

// TestNbrSetGrouped exercises the groupOf indirection the VP substrate
// uses: owners are virtual processors, randomly placed on a smaller set of
// hosting cores, and the schedule must match brute force over the induced
// core-level ownership.
func TestNbrSetGrouped(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var nbr NbrSet
	for trial := 0; trial < 30; trial++ {
		L := 12 + rng.Intn(9) // 12..20
		vpx, vpy := 4, 2      // 8 VPs
		cores := 2 + rng.Intn(3)
		ot := NewOwnerTable(randomCuts(rng, L, vpx), randomCuts(rng, L, vpy))
		loc := make([]int, vpx*vpy)
		for vp := range loc {
			loc[vp] = rng.Intn(cores)
		}
		groupOf := func(o int32) int { return loc[o] }
		for self := 0; self < cores; self++ {
			want := bruteNeighbors(ot, L, 3, 1, self, cores, groupOf)
			peers := nbr.Rebuild(ot, L, 3, 1, self, cores, groupOf)
			if !equalInts(peers, want) {
				t.Fatalf("L=%d cores=%d loc=%v self=%d: derived %v, brute force %v",
					L, cores, loc, self, peers, want)
			}
		}
	}
}

// TestNbrSetRebuildReusesBuffers pins the no-alloc property of the
// rebalance path: after the first Rebuild on a given domain size, further
// rebuilds (same L, changed cuts) must not allocate.
func TestNbrSetRebuildReusesBuffers(t *testing.T) {
	L := 16
	a := testOwnerTable(L, 4, 2)
	b := NewOwnerTable(randomCuts(rand.New(rand.NewSource(3)), L, 4),
		randomCuts(rand.New(rand.NewSource(4)), L, 2))
	var nbr NbrSet
	nbr.Rebuild(a, L, 3, 1, 0, 8, func(o int32) int { return int(o) })
	avg := testing.AllocsPerRun(10, func() {
		nbr.Rebuild(b, L, 3, 1, 0, 8, func(o int32) int { return int(o) })
		nbr.Rebuild(a, L, 3, 1, 0, 8, func(o int32) int { return int(o) })
	})
	if avg > 0 {
		t.Fatalf("steady-state Rebuild allocates %v/run, want 0", avg)
	}
}
