package comm

// The columnar exchange collective. SparseExchange is convenient but it
// allocates on every call (indicator slice, allreduce internals, output
// bucket slice) and boxes []T slice headers through any, which escapes to
// the heap. ExchangePtr is the allocation-free alternative for the particle
// exchange hot path: payloads are *T pointers into caller-owned,
// double-buffered storage, so boxing a pointer into any allocates nothing,
// and the send/receive schedule is the fixed Alltoall ring, so no
// metadata agreement round is needed.

// tagXchgBase is the base of the exchange collective's tag space. Like the
// sparse exchange, each call carries a per-call sequence number in its tag:
// chaos mode (Options.ChaosDelay) delivers each message on its own delayed
// goroutine, so two consecutive exchanges' messages between the same
// (source, destination) pair can arrive reordered — distinct per-call tags
// keep them matched to the right call.
const tagXchgBase = -5000000

// ExchangePtr sends send[i] to rank i and fills recv[j] with the pointer
// received from rank j, for every rank. Both slices must have length
// Size(). A nil pointer is a valid payload ("nothing for you") and is
// delivered like any other; recv[rank] is set to send[rank] locally.
//
// Unlike SparseExchange the schedule is a full ring: every rank sends to
// every other rank each call, even when the payload is nil. That costs P-1
// tiny messages but buys the double-buffering contract below, and pointer
// payloads make each message allocation-free (boxing a pointer into any
// does not allocate).
//
// Double-buffering contract: ownership of *send[i] passes to the receiver
// until the caller's NEXT ExchangePtr call on this communicator completes.
// The full ring makes this safe: completing call k+1 means every rank has
// received this rank's k+1 message, which each rank sent only after its own
// call k returned — i.e. after it finished reading the call-k payloads. So
// a caller alternating between two generations of backing buffers
// (write gen A, exchange, write gen B, exchange, overwrite gen A, ...)
// never overwrites a buffer a peer might still read, even under chaos-mode
// delivery delays. This argument needs every rank to hear from every other
// rank each call — do not "optimize" away the nil sends.
// "Completes" above means the ExchangePtrFinish half returns: ExchangePtr
// is the composition of ExchangePtrStart (all sends — asynchronous, never
// blocks) and ExchangePtrFinish (all receives). Splitting them lets a
// caller initiate the exchange as soon as its outgoing payloads are ready
// and compute while the messages are in flight; the double-buffering
// contract is unchanged because it is defined in terms of the caller's next
// *completed* exchange.
func ExchangePtr[T any](c *Comm, send, recv []*T) {
	ExchangePtrStart(c, send)
	ExchangePtrFinish(c, send, recv)
}

// ExchangePtrStart initiates an exchange: it posts the send to every other
// rank (Send is asynchronous, so Start never blocks) and marks the exchange
// open. Exactly one ExchangePtrFinish must follow on this communicator
// before any other exchange starts; the payloads handed over — including
// send itself — must not be mutated until that Finish returns.
func ExchangePtrStart[T any](c *Comm, send []*T) {
	p := c.Size()
	if len(send) != p {
		panic("comm: ExchangePtr send length must equal communicator size")
	}
	if c.xchgOpen {
		panic("comm: ExchangePtrStart with a previous exchange still open")
	}
	c.xchgSeq++
	c.xchgTag = tagXchgBase - int(c.xchgSeq%1000000)
	c.xchgOpen = true
	for i := 1; i < p; i++ {
		c.Send((c.rank+i)%p, c.xchgTag, send[(c.rank+i)%p])
	}
}

// ExchangePtrFinish completes the exchange opened by ExchangePtrStart:
// recv[j] is filled with the pointer received from rank j (and recv[rank]
// with send[rank], transferred locally). send must be the same slice passed
// to Start.
func ExchangePtrFinish[T any](c *Comm, send, recv []*T) {
	p := c.Size()
	if len(send) != p || len(recv) != p {
		panic("comm: ExchangePtr send/recv length must equal communicator size")
	}
	if !c.xchgOpen {
		panic("comm: ExchangePtrFinish without a matching ExchangePtrStart")
	}
	c.xchgOpen = false
	recv[c.rank] = send[c.rank]
	for i := 1; i < p; i++ {
		src := (c.rank - i + p) % p
		data, _ := c.Recv(src, c.xchgTag)
		recv[src] = cast[*T](data, "ExchangePtr")
	}
}
