package comm

// The columnar exchange collective. SparseExchange is convenient but it
// allocates on every call (indicator slice, allreduce internals, output
// bucket slice) and boxes []T slice headers through any, which escapes to
// the heap. ExchangePtr is the allocation-free alternative for the particle
// exchange hot path: payloads are *T pointers into caller-owned,
// double-buffered storage, so boxing a pointer into any allocates nothing,
// and the send/receive schedule is the fixed Alltoall ring, so no
// metadata agreement round is needed.

// tagXchgBase is the base of the exchange collective's tag space. Like the
// sparse exchange, each call carries a per-call sequence number in its tag:
// chaos mode (Options.ChaosDelay) delivers each message on its own delayed
// goroutine, so two consecutive exchanges' messages between the same
// (source, destination) pair can arrive reordered — distinct per-call tags
// keep them matched to the right call.
const tagXchgBase = -5000000

// ExchangePtr sends send[i] to rank i and fills recv[j] with the pointer
// received from rank j, for every rank. Both slices must have length
// Size(). A nil pointer is a valid payload ("nothing for you") and is
// delivered like any other; recv[rank] is set to send[rank] locally.
//
// Unlike SparseExchange the schedule is a full ring: every rank sends to
// every other rank each call, even when the payload is nil. That costs P-1
// tiny messages but buys the double-buffering contract below, and pointer
// payloads make each message allocation-free (boxing a pointer into any
// does not allocate).
//
// Double-buffering contract: ownership of *send[i] passes to the receiver
// until the caller's NEXT ExchangePtr call on this communicator completes.
// The full ring makes this safe: completing call k+1 means every rank has
// received this rank's k+1 message, which each rank sent only after its own
// call k returned — i.e. after it finished reading the call-k payloads. So
// a caller alternating between two generations of backing buffers
// (write gen A, exchange, write gen B, exchange, overwrite gen A, ...)
// never overwrites a buffer a peer might still read, even under chaos-mode
// delivery delays. This argument needs every rank to hear from every other
// rank each call — do not "optimize" away the nil sends.
func ExchangePtr[T any](c *Comm, send, recv []*T) {
	p := c.Size()
	if len(send) != p || len(recv) != p {
		panic("comm: ExchangePtr send/recv length must equal communicator size")
	}
	c.xchgSeq++
	tag := tagXchgBase - int(c.xchgSeq%1000000)
	recv[c.rank] = send[c.rank]
	for i := 1; i < p; i++ {
		dst := (c.rank + i) % p
		src := (c.rank - i + p) % p
		c.Send(dst, tag, send[dst])
		data, _ := c.Recv(src, tag)
		recv[src] = cast[*T](data, "ExchangePtr")
	}
}
