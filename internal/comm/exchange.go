package comm

import "fmt"

// The columnar exchange collective. SparseExchange is convenient but it
// allocates on every call (indicator slice, allreduce internals, output
// bucket slice) and boxes []T slice headers through any, which escapes to
// the heap. ExchangePtr is the allocation-free alternative for the particle
// exchange hot path: payloads are *T pointers into caller-owned,
// double-buffered storage, so boxing a pointer into any allocates nothing,
// and the send/receive schedule is static — either the full Alltoall ring
// or, when the caller installs a neighbor schedule, the sparse neighborhood
// subset of it — so no metadata agreement round is needed.

// tagXchgBase is the base of the exchange collective's tag space. Like the
// sparse exchange, each call carries a per-call sequence number in its tag:
// chaos mode (Options.ChaosDelay) delivers each message on its own delayed
// goroutine, so two consecutive exchanges' messages between the same
// (source, destination) pair can arrive reordered — distinct per-call tags
// keep them matched to the right call.
const tagXchgBase = -5000000

// xchgFenceCalls is the number of full-ring exchanges run after a schedule
// change before the new sparse schedule takes effect. Two are required, not
// one — see the ownership-fence argument on SetExchangeNeighbors.
const xchgFenceCalls = 2

// ExchangePtr sends send[i] to rank i and fills recv[j] with the pointer
// received from rank j. Both slices must have length Size(). A nil pointer
// is a valid payload ("nothing for you") and is delivered like any other;
// recv[rank] is set to send[rank] locally.
//
// Schedule. By default the schedule is the full ring: every rank sends to
// every other rank each call, nil payloads included. When a neighbor
// schedule is installed (SetExchangeNeighbors) the ring shrinks to the
// neighbor set: messages are sent to and received from only those ranks,
// send[i] must be nil for every non-neighbor i (enforced with a panic — a
// non-nil payload for a rank outside the schedule is a routing bug, not a
// message to drop), and recv[j] is nil for every non-neighbor j. The result
// visible to the caller is bitwise identical to the full ring; only the
// message count changes, from P-1 per rank to |neighbors| per rank.
//
// Double-buffering contract: ownership of *send[i] passes to the receiver
// until the caller's NEXT ExchangePtr call on this communicator completes.
// Under the full ring this is safe because completing call k+1 means every
// rank has received this rank's k+1 message, which each rank sent only
// after its own call k returned — i.e. after it finished reading the call-k
// payloads. Under a neighbor schedule the same argument holds restricted to
// the set of ranks that can ever hold this rank's pointers: only neighbors
// receive call-k payloads (non-neighbors get nothing — the panic above is
// what makes that an invariant rather than an assumption), every rank's
// Start k+1 follows its own Finish k, and the schedule is symmetric (i is a
// neighbor of j iff j is a neighbor of i), so completing call k+1 means
// hearing from every rank that might still be reading call k's buffers.
// Ownership fences only need to cover ranks that can ever hold your
// pointers. The remaining hazard is a schedule *change* between k and k+1;
// SetExchangeNeighbors closes it by running full-ring fence calls before a
// new schedule takes effect. So a caller alternating between two
// generations of backing buffers (write gen A, exchange, write gen B,
// exchange, overwrite gen A, ...) never overwrites a buffer a peer might
// still read, even under chaos-mode delivery delays.
//
// "Completes" above means the ExchangePtrFinish half returns: ExchangePtr
// is the composition of ExchangePtrStart (all sends — asynchronous, never
// blocks) and ExchangePtrFinish (all receives). Splitting them lets a
// caller initiate the exchange as soon as its outgoing payloads are ready
// and compute while the messages are in flight; the double-buffering
// contract is unchanged because it is defined in terms of the caller's next
// *completed* exchange.
func ExchangePtr[T any](c *Comm, send, recv []*T) {
	ExchangePtrStart(c, send)
	ExchangePtrFinish(c, send, recv)
}

// SetExchangeNeighbors installs a sparse exchange schedule on this
// communicator: subsequent ExchangePtr calls send to and receive from only
// the given comm ranks. peers must be sorted ascending, duplicate-free, in
// range, and must not contain the caller's own rank; every rank must
// install the same symmetric relation (rank i lists j iff rank j lists i) —
// the schedules are derived independently from replicated state (an owner
// table), so no agreement round runs here and asymmetry would deadlock
// Finish. The slice is copied; the caller keeps ownership.
//
// Fence. If any exchange has already completed on this communicator, the
// new schedule takes effect only after two further full-ring exchanges.
// Two, not one, and unconditionally — even when the peer set is unchanged —
// because the call sites that change schedules (rebalancing) immediately
// run an exchange that does not respect *either* schedule: after a
// decomposition change, rehoming delivers particles from cells this rank
// used to own to their new owners, which may be outside both the old and
// the new neighbor sets. Call k (the rehome) must therefore run the full
// ring, and its pointers may be held by arbitrary ranks until they are
// heard from again — which forces call k+1 to run the full ring too. From
// call k+2 on, only payloads staged under the new schedule are in flight
// and the sparse argument on ExchangePtr applies. On a communicator with no
// completed exchange yet (fresh world, or restore into a fresh world) there
// are no outstanding pointers and the schedule takes effect immediately.
func (c *Comm) SetExchangeNeighbors(peers []int) {
	p := len(c.group)
	for i, r := range peers {
		if r < 0 || r >= p {
			panic(fmt.Sprintf("comm: exchange neighbor %d out of range [0,%d)", r, p))
		}
		if r == c.rank {
			panic("comm: exchange neighbor set must not contain the caller's rank")
		}
		if i > 0 && peers[i-1] >= r {
			panic("comm: exchange neighbor set must be sorted and duplicate-free")
		}
	}
	if c.xchgOpen {
		panic("comm: SetExchangeNeighbors with an exchange open")
	}
	if cap(c.xchgMask) < p {
		c.xchgMask = make([]bool, p)
	}
	mask := c.xchgMask[:p]
	for _, r := range c.xchgPeers {
		mask[r] = false
	}
	c.xchgPeers = append(c.xchgPeers[:0], peers...)
	for _, r := range peers {
		mask[r] = true
	}
	c.xchgMask = mask
	c.xchgNbrs = true
	if c.xchgSeq > 0 {
		c.xchgFence = xchgFenceCalls
	}
}

// ClearExchangeNeighbors reverts to the full-ring schedule (effective
// immediately: the full ring is always safe to widen to).
func (c *Comm) ClearExchangeNeighbors() {
	if c.xchgOpen {
		panic("comm: ClearExchangeNeighbors with an exchange open")
	}
	c.xchgNbrs = false
	c.xchgFence = 0
	for _, r := range c.xchgPeers {
		c.xchgMask[r] = false
	}
	c.xchgPeers = c.xchgPeers[:0]
}

// ExchangeNeighbors returns the installed neighbor schedule (nil when the
// schedule is the full ring). The slice is the communicator's own storage;
// callers must not mutate or retain it across SetExchangeNeighbors.
func (c *Comm) ExchangeNeighbors() []int {
	if !c.xchgNbrs {
		return nil
	}
	return c.xchgPeers
}

// ExchangeMsgStats returns cumulative ExchangePtr message accounting for
// this communicator: messages actually sent, and messages the sparse
// schedule elided relative to the full ring (nil sends never posted).
func (c *Comm) ExchangeMsgStats() (sent, elided int64) {
	return c.xchgSent, c.xchgElided
}

// ExchangePtrStart initiates an exchange: it posts the send to every rank
// in the active schedule (Send is asynchronous, so Start never blocks) and
// marks the exchange open. Exactly one ExchangePtrFinish must follow on
// this communicator before any other exchange starts; the payloads handed
// over — including send itself — must not be mutated until that Finish
// returns.
func ExchangePtrStart[T any](c *Comm, send []*T) {
	p := c.Size()
	if len(send) != p {
		panic("comm: ExchangePtr send length must equal communicator size")
	}
	if c.xchgOpen {
		panic("comm: ExchangePtrStart with a previous exchange still open")
	}
	c.xchgSeq++
	c.xchgTag = tagXchgBase - int(c.xchgSeq%1000000)
	c.xchgOpen = true
	sparse := c.xchgNbrs && c.xchgFence == 0
	if c.xchgFence > 0 {
		c.xchgFence--
	}
	c.xchgSparse = sparse
	if !sparse {
		for i := 1; i < p; i++ {
			c.Send((c.rank+i)%p, c.xchgTag, send[(c.rank+i)%p])
		}
		c.xchgSent += int64(p - 1)
		return
	}
	for dst := 0; dst < p; dst++ {
		if send[dst] != nil && dst != c.rank && !c.xchgMask[dst] {
			panic(fmt.Sprintf("comm: rank %d has an exchange payload for rank %d, outside the neighbor schedule %v",
				c.rank, dst, c.xchgPeers))
		}
	}
	for _, dst := range c.xchgPeers {
		c.Send(dst, c.xchgTag, send[dst])
	}
	c.xchgSent += int64(len(c.xchgPeers))
	c.xchgElided += int64(p - 1 - len(c.xchgPeers))
}

// ExchangePtrFinish completes the exchange opened by ExchangePtrStart:
// recv[j] is filled with the pointer received from rank j (and recv[rank]
// with send[rank], transferred locally). Under a sparse schedule recv[j] is
// nil for every non-neighbor j. send must be the same slice passed to
// Start.
func ExchangePtrFinish[T any](c *Comm, send, recv []*T) {
	p := c.Size()
	if len(send) != p || len(recv) != p {
		panic("comm: ExchangePtr send/recv length must equal communicator size")
	}
	if !c.xchgOpen {
		panic("comm: ExchangePtrFinish without a matching ExchangePtrStart")
	}
	c.xchgOpen = false
	if c.xchgSparse {
		for i := range recv {
			recv[i] = nil
		}
		recv[c.rank] = send[c.rank]
		for _, src := range c.xchgPeers {
			data, _ := c.Recv(src, c.xchgTag)
			recv[src] = cast[*T](data, "ExchangePtr")
		}
		return
	}
	recv[c.rank] = send[c.rank]
	for i := 1; i < p; i++ {
		src := (c.rank - i + p) % p
		data, _ := c.Recv(src, c.xchgTag)
		recv[src] = cast[*T](data, "ExchangePtr")
	}
}
