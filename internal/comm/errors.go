package comm

import "fmt"

// ErrPeerLost reports that the process hosting a rank vanished mid-run:
// its connection hit EOF without the orderly BYE handshake, a write to it
// failed, or a mesh dial to it was refused after the rendezvous admitted
// it. The wire transport converts raw socket errors into this type and
// broadcasts it through the abort channel, so every survivor's World.Run
// returns an error satisfying errors.As(err, &ErrPeerLost{}) instead of
// hanging in a collective. Supervisors (driver.Engine recovery) match on
// it to distinguish a recoverable crash from a programming error.
type ErrPeerLost struct {
	// Rank is the lowest world rank the lost process hosted, or -1 when
	// the transport could not attribute the failure to a specific peer
	// (e.g. the local endpoint was torn down).
	Rank int
}

func (e ErrPeerLost) Error() string {
	if e.Rank < 0 {
		return "comm: peer lost (rank unknown)"
	}
	return fmt.Sprintf("comm: peer hosting rank %d lost", e.Rank)
}
