package comm_test

import (
	"fmt"
	"sort"

	"github.com/parres/picprk/internal/comm"
)

// ExampleWorld shows the SPMD pattern: four ranks exchange point-to-point
// messages and reduce a value, exactly like a small MPI program.
func ExampleWorld() {
	w := comm.NewWorld(4)
	err := w.Run(func(c *comm.Comm) error {
		// Ring shift: every rank sends its rank id to the next rank.
		c.Send((c.Rank()+1)%c.Size(), 0, c.Rank())
		data, _ := c.Recv((c.Rank()-1+c.Size())%c.Size(), 0)
		received := data.(int)

		// Collectives: sum of everything received equals 0+1+2+3.
		total := comm.AllreduceScalar(c, received, comm.Sum[int])
		if c.Rank() == 0 {
			fmt.Println("sum of ring-shifted ranks:", total)
		}
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: sum of ring-shifted ranks: 6
}

// ExampleComm_Split builds row communicators from a 2D layout and reduces
// within each row independently.
func ExampleComm_Split() {
	results := make([]int, 6)
	w := comm.NewWorld(6)
	_ = w.Run(func(c *comm.Comm) error {
		row := c.Rank() / 3 // two rows of three ranks
		sub := c.Split(row, c.Rank())
		sum := comm.AllreduceScalar(sub, c.Rank(), comm.Sum[int])
		results[c.Rank()] = sum
		return nil
	})
	sort.Ints(results)
	fmt.Println(results)
	// Output: [3 3 3 12 12 12]
}
