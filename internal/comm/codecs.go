package comm

import "github.com/parres/picprk/internal/pup"

// splitKey is the (color, key, parent-rank) record Split allgathers to
// agree on subcommunicator membership. Package-scoped (rather than local to
// Split) so it can cross a wire transport.
type splitKey struct{ Color, Key, Rank int }

// Wire kinds for comm's own payloads (range 20–29, see pup.Kind).
const (
	kindSplitKey  pup.Kind = 20
	kindSplitKeys pup.Kind = 21
)

func pupSplitKey(p *pup.PUPer, v *splitKey) {
	p.Int(&v.Color)
	p.Int(&v.Key)
	p.Int(&v.Rank)
}

func init() {
	pup.RegisterCodec[splitKey](kindSplitKey, pupSplitKey)
	pup.RegisterCodec[[]splitKey](kindSplitKeys, func(p *pup.PUPer, v *[]splitKey) {
		pup.Slice(p, v, pupSplitKey)
	})
}
