package comm

import (
	"fmt"
	"sort"
)

// Internal tag space. User tags must be non-negative; collectives use
// negative tags so they can interleave with application point-to-point
// traffic. Consecutive collectives of the same kind are safe because every
// algorithm below has a fixed communication schedule, and message order is
// FIFO per (source, tag) pair — except the sparse exchange, which receives
// from wildcard sources and therefore carries a per-call sequence number in
// its tag.
const (
	tagBarrier     = -1
	tagBcast       = -2
	tagReduce      = -3
	tagAlltoall    = -5
	tagSparseBase  = -1000000
	tagGatherBase  = -3000000
	tagScatterBase = -4000000
)

// Barrier blocks until every rank of the communicator has entered it.
// It uses the dissemination algorithm: ⌈log₂P⌉ rounds of token exchange.
func (c *Comm) Barrier() {
	p := c.Size()
	for dist := 1; dist < p; dist *= 2 {
		to := (c.rank + dist) % p
		from := (c.rank - dist + p) % p
		c.Send(to, tagBarrier, nil)
		c.Recv(from, tagBarrier)
	}
}

// Bcast distributes root's value to every rank along a binomial tree and
// returns it. Non-root callers pass the zero value.
func Bcast[T any](c *Comm, root int, v T) T {
	p := c.Size()
	// Work in a rotated rank space where the root is 0. In round k
	// (mask = 1<<k), every rank below mask that already holds the value
	// sends it to rank+mask.
	vr := (c.rank - root + p) % p
	received := vr == 0
	for mask := 1; mask < p; mask <<= 1 {
		if vr < mask {
			peer := vr + mask
			if peer < p {
				if !received {
					panic("comm: bcast internal error")
				}
				c.Send((peer+root)%p, tagBcast, v)
			}
		} else if vr < mask*2 {
			if !received {
				data, _ := c.Recv((vr-mask+root)%p, tagBcast)
				v = cast[T](data, "Bcast")
				received = true
			}
		}
	}
	return v
}

// Reduce combines each rank's slice elementwise with op and delivers the
// result to root (other ranks get nil). All ranks must pass slices of the
// same length. The reduction order is fixed by the binomial tree, so the
// result is deterministic for a given P (bitwise, though not associative
// across different P — same as MPI).
func Reduce[T any](c *Comm, root int, v []T, op func(a, b T) T) []T {
	p := c.Size()
	vr := (c.rank - root + p) % p
	acc := append([]T(nil), v...) // own copy; received slices are owned already
	for mask := 1; mask < p; mask <<= 1 {
		if vr&mask != 0 {
			c.Send(((vr-mask)+root)%p, tagReduce, acc)
			return nil
		}
		peer := vr + mask
		if peer < p {
			data, _ := c.Recv((peer+root)%p, tagReduce)
			other := cast[[]T](data, "Reduce")
			if len(other) != len(acc) {
				panic(fmt.Sprintf("comm: reduce length mismatch %d vs %d", len(other), len(acc)))
			}
			for i := range acc {
				acc[i] = op(acc[i], other[i])
			}
		}
	}
	return acc
}

// Allreduce combines each rank's slice elementwise with op and returns the
// result on every rank (reduce to rank 0, then broadcast).
func Allreduce[T any](c *Comm, v []T, op func(a, b T) T) []T {
	res := Reduce(c, 0, v, op)
	return Bcast(c, 0, res)
}

// AllreduceScalar is Allreduce for a single value.
func AllreduceScalar[T any](c *Comm, v T, op func(a, b T) T) T {
	return Allreduce(c, []T{v}, op)[0]
}

// Number covers the numeric types used in reductions.
type Number interface {
	~int | ~int32 | ~int64 | ~uint64 | ~float64
}

// Sum is a reduction operator.
func Sum[T Number](a, b T) T { return a + b }

// Max is a reduction operator.
func Max[T Number](a, b T) T {
	if a > b {
		return a
	}
	return b
}

// Min is a reduction operator.
func Min[T Number](a, b T) T {
	if a < b {
		return a
	}
	return b
}

// Gather collects one value from every rank at root, indexed by rank.
// Non-root callers receive nil. Linear algorithm: fine for the gather sizes
// the drivers use (per-rank scalars or small structs). The root receives
// from a wildcard source, so the tag carries a per-call sequence number to
// keep consecutive gathers separate when ranks race ahead.
// Scatter is the inverse of Gather: root distributes vs[i] to rank i and
// every rank returns its own element. Non-root callers pass nil. Like
// Gather it is linear from the root — it moves bulk state (checkpoint
// shards), not latency-critical traffic — and carries a per-call sequence
// number in its tag so back-to-back scatters cannot interleave.
func Scatter[T any](c *Comm, root int, vs []T) T {
	c.scatterSeq++
	tag := tagScatterBase - int(c.scatterSeq%1000000)
	if c.rank == root {
		if len(vs) != c.Size() {
			panic(fmt.Sprintf("comm: Scatter root has %d values for %d ranks", len(vs), c.Size()))
		}
		for i, v := range vs {
			if i != root {
				c.Send(i, tag, v)
			}
		}
		return vs[root]
	}
	data, _ := c.Recv(root, tag)
	return cast[T](data, "Scatter")
}

func Gather[T any](c *Comm, root int, v T) []T {
	c.gatherSeq++
	tag := tagGatherBase - int(c.gatherSeq%1000000)
	if c.rank != root {
		c.Send(root, tag, v)
		return nil
	}
	out := make([]T, c.Size())
	out[root] = v
	for i := 0; i < c.Size()-1; i++ {
		data, src := c.Recv(AnySource, tag)
		out[src] = cast[T](data, "Gather")
	}
	return out
}

// Allgather collects one value from every rank on every rank.
func Allgather[T any](c *Comm, v T) []T {
	return Bcast(c, 0, Gather(c, 0, v))
}

// Alltoall sends send[i] to rank i and returns the values received from
// every rank, indexed by source. len(send) must equal Size().
func Alltoall[T any](c *Comm, send []T) []T {
	p := c.Size()
	if len(send) != p {
		panic(fmt.Sprintf("comm: alltoall send length %d != size %d", len(send), p))
	}
	out := make([]T, p)
	out[c.rank] = send[c.rank]
	for i := 1; i < p; i++ {
		dst := (c.rank + i) % p
		src := (c.rank - i + p) % p
		c.Send(dst, tagAlltoall, send[dst])
		data, _ := c.Recv(src, tagAlltoall)
		out[src] = cast[T](data, "Alltoall")
	}
	return out
}

// SparseExchange delivers buckets[dst] to each rank dst that has a non-empty
// bucket and returns the incoming buckets indexed by source rank (nil for
// sources that sent nothing). The self-bucket is transferred locally. The
// number of incoming messages is agreed on with one integer allreduce, so
// the cost scales with actual traffic, not with P².
func SparseExchange[T any](c *Comm, buckets [][]T) [][]T {
	p := c.Size()
	if len(buckets) != p {
		panic(fmt.Sprintf("comm: sparse exchange bucket count %d != size %d", len(buckets), p))
	}
	c.sparseSeq++
	tag := tagSparseBase - int(c.sparseSeq%1000000)
	ind := make([]int, p)
	for dst, b := range buckets {
		if dst != c.rank && len(b) > 0 {
			ind[dst] = 1
		}
	}
	incoming := Allreduce(c, ind, Sum[int])[c.rank]
	for dst, b := range buckets {
		if dst != c.rank && len(b) > 0 {
			c.Send(dst, tag, b)
		}
	}
	out := make([][]T, p)
	if len(buckets[c.rank]) > 0 {
		out[c.rank] = buckets[c.rank]
	}
	for i := 0; i < incoming; i++ {
		data, src := c.Recv(AnySource, tag)
		out[src] = cast[[]T](data, "SparseExchange")
	}
	return out
}

// Split partitions the communicator: ranks passing the same color form a new
// communicator, ordered by key (ties broken by parent rank). Every rank must
// call Split; a negative color yields a nil communicator (like
// MPI_COMM_NULL with MPI_UNDEFINED).
func (c *Comm) Split(color, key int) *Comm {
	all := Allgather(c, splitKey{color, key, c.rank})
	c.splits++
	if color < 0 {
		return nil
	}
	var members []splitKey
	for _, e := range all {
		if e.Color == color {
			members = append(members, e)
		}
	}
	sort.Slice(members, func(i, j int) bool {
		if members[i].Key != members[j].Key {
			return members[i].Key < members[j].Key
		}
		return members[i].Rank < members[j].Rank
	})
	group := make([]int, len(members))
	newRank := -1
	for i, m := range members {
		group[i] = c.group[m.Rank]
		if m.Rank == c.rank {
			newRank = i
		}
	}
	// All members derive the same context id from shared values.
	ctx := mix(c.ctx, c.splits, uint64(color)+1)
	return &Comm{world: c.world, rank: newRank, group: group, ctx: ctx, chaos: c.chaos}
}

func mix(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	if h == 0 {
		h = 1 // ctx 0 is reserved for the world communicator
	}
	return h
}

func cast[T any](data any, where string) T {
	v, ok := data.(T)
	if !ok {
		panic(fmt.Sprintf("comm: %s: payload type %T does not match expected %T", where, data, v))
	}
	return v
}
