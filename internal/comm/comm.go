// Package comm is a message-passing runtime in the spirit of MPI. Each rank
// runs as a goroutine; ranks exchange two-sided messages matched on
// (communicator, source, tag) with wildcard-source receives, and the package
// layers collectives (barrier, broadcast, reduce, allreduce, gather,
// allgather, sparse all-to-all), communicator splitting, and Cartesian
// topologies on top.
//
// Message movement is delegated to a Transport (see transport.go). The
// default is the in-process substrate — every rank a goroutine in one
// address space, payloads passed by reference through mailboxes — while
// internal/comm/wire provides a framed TCP/unix-socket substrate for worlds
// spanning OS processes. The matching layer here is shared by both.
//
// The paper's three reference implementations are written in MPI; this
// package reproduces the programming model so the drivers in
// internal/driver read like their MPI counterparts.
//
// Error handling follows MPI's abort semantics: protocol misuse (bad rank,
// type mismatch, receive after abort) panics inside the rank goroutine;
// World.Run recovers panics, aborts every other rank (across processes on a
// wire transport), and returns the first failure as an error.
package comm

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// AnySource is the wildcard source rank for Recv.
const AnySource = -1

// inbox is a rank's mailbox: a mutex-guarded pending list with condition
// variable wakeups. Matching preserves MPI's non-overtaking guarantee:
// between one (src, tag, ctx) pair, messages are received in send order.
// (A wire transport preserves the same guarantee because each peer's frames
// arrive over one ordered stream and are delivered by one reader.)
type inbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []Message
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

// World owns the locally-hosted ranks and shared state of one SPMD
// execution. With the in-process transport the world is the whole
// execution; with a wire transport it is this process's slice of it.
type World struct {
	size  int
	tr    Transport
	local []int
	// inboxes is indexed by world rank; nil for ranks hosted elsewhere.
	inboxes []*inbox
	opts    Options

	mu       sync.Mutex
	aborted  bool
	abortErr error

	// chaosInflight tracks delayed chaos-mode deliveries so Run can drain
	// them before returning: without it every chaos Send leaks a detached
	// goroutine that may fire after Run has returned — into a world the
	// caller believes is finished. Chaos lives above the transport, so the
	// same drain covers both substrates.
	chaosInflight sync.WaitGroup
}

// Options configures a World.
type Options struct {
	// RecvTimeout bounds how long a Recv may block; on expiry the rank
	// panics with a diagnostic, which surfaces as an error from Run. Zero
	// means a generous default (60s) to turn deadlocks into diagnosable
	// failures; negative disables the timeout.
	RecvTimeout time.Duration
	// ChaosDelay, when positive, sleeps each message delivery by a random
	// duration in [0, ChaosDelay). Used by tests to shake out ordering
	// assumptions in drivers.
	ChaosDelay time.Duration
	// ChaosSeed seeds the chaos delay generator.
	ChaosSeed int64
}

// NewWorld creates a world with the given number of ranks on the in-process
// transport: all ranks are goroutines of this process and payloads move by
// reference, never serialized.
func NewWorld(size int, opts ...Options) *World {
	if size <= 0 {
		panic(fmt.Sprintf("comm: world size must be positive, got %d", size))
	}
	return NewTransportWorld(newInproc(size), opts...)
}

// NewTransportWorld creates a world over an arbitrary transport. The world
// hosts the transport's LocalRanks; Run executes the rank function once per
// local rank. On a wire transport every participating process builds its
// own World over its end of the same transport.
func NewTransportWorld(tr Transport, opts ...Options) *World {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.RecvTimeout == 0 {
		o.RecvTimeout = 60 * time.Second
	}
	w := &World{size: tr.Size(), tr: tr, local: tr.LocalRanks(), opts: o}
	w.inboxes = make([]*inbox, w.size)
	for _, r := range w.local {
		if r < 0 || r >= w.size {
			panic(fmt.Sprintf("comm: transport local rank %d out of range [0,%d)", r, w.size))
		}
		w.inboxes[r] = newInbox()
	}
	tr.Start(w)
	return w
}

// Size returns the number of ranks in the world (across all processes).
func (w *World) Size() int { return w.size }

// LocalRanks returns the world ranks hosted by this process.
func (w *World) LocalRanks() []int { return w.local }

// Wired reports whether the world's transport serializes payloads.
func (w *World) Wired() bool { return w.tr.Wired() }

// Incoming implements Handler: the transport delivers a matched message to
// a locally-hosted rank's mailbox.
func (w *World) Incoming(dst int, m Message) {
	ib := w.inboxes[dst]
	if ib == nil {
		panic(fmt.Sprintf("comm: transport delivered to non-local rank %d", dst))
	}
	ib.mu.Lock()
	ib.pending = append(ib.pending, m)
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// RemoteAbort implements Handler: another process aborted the world.
func (w *World) RemoteAbort(err error) {
	w.abort(err, false)
}

// Run executes fn once per locally-hosted rank, each in its own goroutine,
// and waits for all of them (plus, on a wire transport, for the world's
// shutdown handshake). The first panic or returned error aborts the world —
// waking any blocked receives, locally and remotely — and is returned.
func (w *World) Run(fn func(c *Comm) error) error {
	// A single watchdog periodically wakes every blocked receiver so it can
	// check its deadline and the abort flag; this keeps the Recv hot path
	// free of timers.
	stopWatchdog := make(chan struct{})
	if w.opts.RecvTimeout > 0 {
		go func() {
			t := time.NewTicker(100 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-stopWatchdog:
					return
				case <-t.C:
					w.wakeAll()
				}
			}
		}()
	}
	defer close(stopWatchdog)

	var wg sync.WaitGroup
	wg.Add(len(w.local))
	for _, r := range w.local {
		c := w.comm(r)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					w.abort(fmt.Errorf("comm: rank %d panicked: %v", c.rank, p), true)
				}
			}()
			if err := fn(c); err != nil {
				w.abort(fmt.Errorf("comm: rank %d: %w", c.rank, err), true)
			}
		}()
	}
	wg.Wait()
	// Drain delayed chaos deliveries: every Send a rank issued before
	// exiting must land before Run returns, so no goroutine outlives the
	// world (and no test sees a delivery after Run).
	w.chaosInflight.Wait()
	// Let the transport flush and tear down (a no-op in-process; a wire
	// transport runs the shutdown handshake with the rest of the world).
	finErr := w.tr.Finish(w.isAborted())
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.abortErr != nil {
		return w.abortErr
	}
	return finErr
}

// comm builds the world communicator view for one rank.
func (w *World) comm(rank int) *Comm {
	group := make([]int, w.size)
	for i := range group {
		group[i] = i
	}
	var chaos *rand.Rand
	if w.opts.ChaosDelay > 0 {
		chaos = rand.New(rand.NewSource(w.opts.ChaosSeed + int64(rank)))
	}
	return &Comm{world: w, rank: rank, group: group, ctx: 0, chaos: chaos}
}

// abort records the first error and wakes all blocked receivers. When the
// abort originated locally (notifyTransport), it is also propagated to the
// rest of the world through the transport.
func (w *World) abort(err error, notifyTransport bool) {
	w.mu.Lock()
	first := !w.aborted
	if first {
		w.aborted = true
		w.abortErr = err
	}
	w.mu.Unlock()
	w.wakeAll()
	if first && notifyTransport {
		w.tr.Abort(err)
	}
}

// wakeAll broadcasts on every local mailbox so blocked receivers re-check
// the abort flag and their deadlines.
func (w *World) wakeAll() {
	for _, ib := range w.inboxes {
		if ib == nil {
			continue
		}
		ib.mu.Lock()
		ib.cond.Broadcast()
		ib.mu.Unlock()
	}
}

func (w *World) isAborted() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.aborted
}

// Comm is one rank's handle on a communicator: the world communicator from
// Run, or a subcommunicator from Split. Methods are safe to call only from
// the owning rank's goroutine (as in MPI).
type Comm struct {
	world      *World
	rank       int   // rank within this communicator
	group      []int // world ranks of the members, indexed by comm rank
	ctx        uint64
	splits     uint64
	sparseSeq  uint64
	gatherSeq  uint64
	scatterSeq uint64
	xchgSeq    uint64
	// xchgOpen is set between ExchangePtrStart and ExchangePtrFinish;
	// xchgTag is the open exchange's tag, so Finish matches the Start it
	// pairs with even if other traffic interleaves.
	xchgOpen bool
	xchgTag  int
	// Exchange neighbor schedule (see exchange.go for the contract).
	// xchgNbrs gates the sparse path; xchgPeers/xchgMask are the active
	// peer set (sorted comm ranks / dense membership); xchgFence counts
	// full-ring exchanges still owed after a schedule change; xchgSparse
	// records whether the currently open exchange ran the sparse schedule
	// so Finish receives from exactly the set Start sent to.
	xchgNbrs   bool
	xchgPeers  []int
	xchgMask   []bool
	xchgFence  int
	xchgSparse bool
	// xchgSent counts messages actually posted by ExchangePtrStart on this
	// communicator; xchgElided counts the nil sends the sparse schedule
	// skipped (full ring would have sent P-1 per call).
	xchgSent   int64
	xchgElided int64
	chaos      *rand.Rand
}

// Rank returns the caller's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.group) }

// WorldRank returns the caller's rank in the world communicator.
func (c *Comm) WorldRank() int { return c.group[c.rank] }

// OnWire reports whether this communicator's messages are serialized onto a
// byte stream. Substrates use it to decide between measured and estimated
// exchange byte accounting, and tests use it to skip in-process-only
// invariants (zero-alloc pins, pointer-identity checks).
func (c *Comm) OnWire() bool { return c.world.tr.Wired() }

// TransportBytes returns the cumulative framed bytes the transport shipped
// on behalf of this rank (0 in-process, where nothing is serialized).
func (c *Comm) TransportBytes() int64 { return c.world.tr.SentBytes(c.group[c.rank]) }

// WallClockNS returns the current wall-clock time in nanoseconds on the
// world's common timeline: rank 0's clock. On a transport that estimates
// clock offsets (the wire mesh) the local clock is offset-corrected; in
// process every rank shares one clock and this is simply time.Now.
func (c *Comm) WallClockNS() int64 {
	if wc, ok := c.world.tr.(WallClocker); ok {
		return wc.WallClockNS()
	}
	return time.Now().UnixNano()
}

// ClockOffsetNS returns the transport's estimate of rank 0's clock minus
// this process's clock, in nanoseconds (0 in-process and on rank 0's node).
func (c *Comm) ClockOffsetNS() int64 {
	if wc, ok := c.world.tr.(WallClocker); ok {
		return wc.ClockOffsetNS()
	}
	return 0
}

// Send delivers data to rank dst of this communicator with the given tag.
// Send is asynchronous and never blocks (buffered, like MPI_Isend with an
// unbounded buffer). Ownership of reference-typed data transfers to the
// receiver: the sender must not mutate it afterwards. On a wire transport
// the payload must have a codec registered with internal/pup.
func (c *Comm) Send(dst, tag int, data any) {
	if dst < 0 || dst >= len(c.group) {
		panic(fmt.Sprintf("comm: send to invalid rank %d (size %d)", dst, len(c.group)))
	}
	if c.chaos != nil {
		d := time.Duration(c.chaos.Int63n(int64(c.world.opts.ChaosDelay)))
		c.world.chaosInflight.Add(1)
		go func() {
			defer c.world.chaosInflight.Done()
			time.Sleep(d)
			c.deliver(dst, tag, data)
		}()
		return
	}
	c.deliver(dst, tag, data)
}

func (c *Comm) deliver(dst, tag int, data any) {
	c.world.tr.Ship(c.group[dst], Message{Ctx: c.ctx, Src: c.group[c.rank], Tag: tag, Data: data})
}

// Recv blocks until a message with a matching source and tag arrives on
// this communicator and returns its payload and actual source rank. Pass
// AnySource to match any sender. Within one (source, tag) pair, messages
// arrive in send order.
func (c *Comm) Recv(src, tag int) (any, int) {
	if src != AnySource && (src < 0 || src >= len(c.group)) {
		panic(fmt.Sprintf("comm: recv from invalid rank %d (size %d)", src, len(c.group)))
	}
	ib := c.world.inboxes[c.group[c.rank]]
	deadline := time.Time{}
	if c.world.opts.RecvTimeout > 0 {
		deadline = time.Now().Add(c.world.opts.RecvTimeout)
	}
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		if c.world.isAborted() {
			panic("comm: world aborted while receiving")
		}
		for i := range ib.pending {
			m := &ib.pending[i]
			if m.Ctx != c.ctx || m.Tag != tag {
				continue
			}
			srcRank := c.rankOfWorld(m.Src)
			if srcRank < 0 {
				continue // message from outside this communicator's group
			}
			if src != AnySource && srcRank != src {
				continue
			}
			data := m.Data
			ib.pending = append(ib.pending[:i], ib.pending[i+1:]...)
			return data, srcRank
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			panic(fmt.Sprintf("comm: rank %d recv(src=%d, tag=%d, ctx=%d) timed out after %v",
				c.rank, src, tag, c.ctx, c.world.opts.RecvTimeout))
		}
		ib.cond.Wait()
	}
}

// rankOfWorld translates a world rank to this communicator's rank, or -1.
func (c *Comm) rankOfWorld(wr int) int {
	// group is small and this is on the receive path; for the world
	// communicator group[i] == i so the common case is O(1).
	if wr < len(c.group) && c.group[wr] == wr {
		return wr
	}
	for i, g := range c.group {
		if g == wr {
			return i
		}
	}
	return -1
}
