package comm

// The Transport interface is the seam between the message-passing runtime's
// matching semantics (communicator contexts, tags, wildcard receives,
// collectives) and the physical substrate that moves payloads between
// ranks. Two implementations exist:
//
//   - the in-process substrate below: every rank is a goroutine in this
//     process and payloads move by reference through the destination
//     rank's mailbox — zero-copy, allocation-free, and the chaos/test
//     vehicle, exactly as before the interface was extracted;
//   - the framed socket substrate in internal/comm/wire: ranks span OS
//     processes (and machines), payloads are serialized through the
//     internal/pup codec registry and framed over TCP or unix sockets.
//
// The matching layer (inboxes, Recv, collectives) lives entirely above the
// interface and is shared by both substrates, which is what makes the
// bitwise-identity guarantee across transports testable: the only thing a
// transport may do is move a Message to its destination rank intact.

// Message is one in-flight point-to-point payload together with the
// envelope the receive side matches on. Src is a world rank; communicator
// rank translation happens at receive time, as before.
type Message struct {
	// Ctx is the communicator context id (0 = world).
	Ctx uint64
	// Src is the world rank of the sender.
	Src int
	// Tag is the application or collective tag.
	Tag int
	// Data is the payload. The in-process substrate passes it by
	// reference (ownership transfers to the receiver); a wire transport
	// serializes it through the pup codec registry, so every type that
	// can cross a wire world must have a registered codec.
	Data any
}

// Handler is the upcall surface a World registers with its Transport:
// frame delivery and remote abort notification. Incoming may be called
// from any goroutine; it must not block indefinitely.
type Handler interface {
	// Incoming delivers a message to the locally-hosted world rank dst.
	Incoming(dst int, m Message)
	// RemoteAbort reports that another process aborted the world.
	RemoteAbort(err error)
}

// Transport moves messages between the world's ranks. A transport is bound
// to exactly one World: Start is called once, before any Ship.
type Transport interface {
	// Size returns the world size.
	Size() int
	// LocalRanks returns the world ranks hosted in this process, in
	// ascending order. The in-process substrate hosts all of them.
	LocalRanks() []int
	// Start registers the world's upcall handler. Messages arriving
	// before Start must be held, not dropped.
	Start(h Handler)
	// Ship delivers m to world rank dst (which may be hosted locally or
	// remotely). It must not block indefinitely: sends are buffered, as
	// MPI_Isend with an unbounded buffer.
	Ship(dst int, m Message)
	// Wired reports whether payloads are serialized onto a byte stream
	// (true for socket transports, false in-process). Telemetry uses it
	// to choose between measured and estimated exchange byte counts.
	Wired() bool
	// SentBytes returns the cumulative framed bytes shipped on behalf of
	// world rank src, 0 for transports that do not serialize.
	SentBytes(src int) int64
	// Abort asks the transport to propagate an abort to every other
	// process of the world (a no-op in-process, where all ranks share
	// the World's abort flag).
	Abort(err error)
	// Finish is called once, after every locally-hosted rank returned
	// and chaos-delayed deliveries drained. A distributed transport
	// flushes outstanding frames, waits for the rest of the world (or
	// tears down immediately when aborted is true), and releases its
	// resources.
	Finish(aborted bool) error
}

// WallClocker is an optional Transport extension: a distributed transport
// that estimates per-process clock offsets (the wire mesh piggybacks
// NTP-style exchanges on its handshake) exposes the world's common wall
// clock — rank 0's — through it. Comm.WallClockNS falls back to the local
// clock when the transport does not implement it, which is exact for the
// in-process substrate where all ranks share one clock.
type WallClocker interface {
	// WallClockNS is the local clock corrected onto rank 0's clock, ns.
	WallClockNS() int64
	// ClockOffsetNS is the estimate of rank 0's clock minus the local
	// clock, ns (zero where they are the same clock).
	ClockOffsetNS() int64
}

// inproc is the in-process transport: a trivial loop-back into the World's
// own mailboxes. Ship is a direct method call, so the steady-state send
// path stays allocation-free.
type inproc struct {
	size  int
	local []int
	h     Handler
}

func newInproc(size int) *inproc {
	t := &inproc{size: size, local: make([]int, size)}
	for i := range t.local {
		t.local[i] = i
	}
	return t
}

func (t *inproc) Size() int                 { return t.size }
func (t *inproc) LocalRanks() []int         { return t.local }
func (t *inproc) Start(h Handler)           { t.h = h }
func (t *inproc) Ship(dst int, m Message)   { t.h.Incoming(dst, m) }
func (t *inproc) Wired() bool               { return false }
func (t *inproc) SentBytes(src int) int64   { return 0 }
func (t *inproc) Abort(err error)           {}
func (t *inproc) Finish(aborted bool) error { return nil }
