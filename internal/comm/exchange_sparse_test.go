package comm

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// ringPeers returns the sorted ±1 ring neighbors of rank on a p-ring — the
// canonical narrow sparse schedule (symmetric by construction).
func ringPeers(rank, p int) []int {
	if p <= 1 {
		return []int{}
	}
	if p == 2 {
		return []int{1 - rank}
	}
	a, b := (rank-1+p)%p, (rank+1)%p
	if p == 3 {
		// ±1 covers both other ranks.
		if a > b {
			a, b = b, a
		}
		return []int{a, b}
	}
	if a > b {
		a, b = b, a
	}
	return []int{a, b}
}

// TestExchangePtrSparseSchedule pins the sparse path end to end: with a ±1
// ring schedule installed before any exchange (effective immediately),
// payloads flow only between neighbors, recv entries for non-neighbors are
// nil, and the message counters record |neighbors| sent and P-1-|neighbors|
// elided per call.
func TestExchangePtrSparseSchedule(t *testing.T) {
	const p, rounds = 8, 5
	w := NewWorld(p)
	err := w.Run(func(c *Comm) error {
		peers := ringPeers(c.Rank(), p)
		c.SetExchangeNeighbors(peers)
		var gens [2][]int
		for g := range gens {
			gens[g] = make([]int, p)
		}
		send := make([]*int, p)
		recv := make([]*int, p)
		for round := 0; round < rounds; round++ {
			buf := gens[round%2]
			for i := range send {
				send[i] = nil
			}
			for _, dst := range peers {
				buf[dst] = round*100 + c.Rank()*10 + dst
				send[dst] = &buf[dst]
			}
			ExchangePtr(c, send, recv)
			for src := 0; src < p; src++ {
				if src == c.Rank() {
					continue
				}
				isPeer := false
				for _, q := range peers {
					if q == src {
						isPeer = true
					}
				}
				if !isPeer {
					if recv[src] != nil {
						return fmt.Errorf("round %d rank %d: payload from non-neighbor %d", round, c.Rank(), src)
					}
					continue
				}
				want := round*100 + src*10 + c.Rank()
				if recv[src] == nil || *recv[src] != want {
					return fmt.Errorf("round %d rank %d: from %d got %v, want %d", round, c.Rank(), src, recv[src], want)
				}
			}
		}
		sent, elided := c.ExchangeMsgStats()
		if want := int64(rounds * len(peers)); sent != want {
			return fmt.Errorf("rank %d: sent %d messages, want %d", c.Rank(), sent, want)
		}
		if want := int64(rounds * (p - 1 - len(peers))); elided != want {
			return fmt.Errorf("rank %d: elided %d messages, want %d", c.Rank(), elided, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExchangePtrScheduleFence pins the fence semantics: installing a
// schedule after exchanges have completed runs exactly two further
// full-ring calls (counters show P-1 sends, 0 elided) before the sparse
// set takes effect, and during the fence non-neighbor payloads still
// deliver — the window the rehome exchange rides.
func TestExchangePtrScheduleFence(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	err := w.Run(func(c *Comm) error {
		send := make([]*int, p)
		recv := make([]*int, p)
		var gens [2][]int
		for g := range gens {
			gens[g] = make([]int, p)
		}
		full := func(round int) error {
			vals := gens[round%2]
			for dst := 0; dst < p; dst++ {
				vals[dst] = round*100 + c.Rank()*10 + dst
				send[dst] = &vals[dst]
			}
			ExchangePtr(c, send, recv)
			for src := 0; src < p; src++ {
				if src == c.Rank() {
					continue
				}
				want := round*100 + src*10 + c.Rank()
				if recv[src] == nil || *recv[src] != want {
					return fmt.Errorf("round %d rank %d: from %d got %v, want %d", round, c.Rank(), src, recv[src], want)
				}
			}
			return nil
		}
		if err := full(0); err != nil { // schedule-free warmup call
			return err
		}
		c.SetExchangeNeighbors(ringPeers(c.Rank(), p))
		// Fence calls 1 and 2: all-to-all payloads must still deliver.
		for round := 1; round <= 2; round++ {
			if err := full(round); err != nil {
				return err
			}
		}
		sent, elided := c.ExchangeMsgStats()
		if sent != int64(3*(p-1)) || elided != 0 {
			return fmt.Errorf("rank %d: during fence sent=%d elided=%d, want %d/0", c.Rank(), sent, elided, 3*(p-1))
		}
		// Call 3: the sparse schedule is active; a non-neighbor payload is
		// now a contract violation, so stage only neighbor payloads.
		peers := ringPeers(c.Rank(), p)
		vals := gens[3%2]
		for i := range send {
			send[i] = nil
		}
		for _, dst := range peers {
			vals[dst] = 300 + c.Rank()*10 + dst
			send[dst] = &vals[dst]
		}
		ExchangePtr(c, send, recv)
		for _, src := range peers {
			want := 300 + src*10 + c.Rank()
			if recv[src] == nil || *recv[src] != want {
				return fmt.Errorf("post-fence rank %d: from %d got %v, want %d", c.Rank(), src, recv[src], want)
			}
		}
		sent, elided = c.ExchangeMsgStats()
		if want := int64(3*(p-1) + len(peers)); sent != want {
			return fmt.Errorf("rank %d: sent=%d, want %d", c.Rank(), sent, want)
		}
		if want := int64(p - 1 - len(peers)); elided != want {
			return fmt.Errorf("rank %d: elided=%d, want %d", c.Rank(), elided, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExchangePtrSparseNonNeighborPanics pins the loud-failure contract: a
// non-nil payload for a rank outside the active schedule panics instead of
// silently dropping or deadlocking.
func TestExchangePtrSparseNonNeighborPanics(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	err := w.Run(func(c *Comm) error {
		c.SetExchangeNeighbors(ringPeers(c.Rank(), p))
		send := make([]*int, p)
		recv := make([]*int, p)
		if c.Rank() == 0 {
			v := 7
			send[2] = &v // rank 2 is not a ±1 neighbor of 0 at p=4
		}
		ExchangePtr(c, send, recv)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "outside the neighbor schedule") {
		t.Fatalf("want neighbor-schedule panic, got %v", err)
	}
}

// TestExchangePtrSparseChaosBufferReuse replays the double-buffered
// generation stress under chaos-mode delivery delays with a sparse
// schedule active, including a mid-run schedule change (fence) — under
// -race this proves the restricted ownership-fence argument: no receiver
// reads a generation buffer while its owner refills it, even though
// non-neighbors never synchronize.
func TestExchangePtrSparseChaosBufferReuse(t *testing.T) {
	const rounds = 30
	const p = 6
	w := NewWorld(p, Options{ChaosDelay: 2 * time.Millisecond, ChaosSeed: 17})
	err := w.Run(func(c *Comm) error {
		peers := ringPeers(c.Rank(), p)
		c.SetExchangeNeighbors(peers)
		var gens [2][]int
		for g := range gens {
			gens[g] = make([]int, p)
		}
		send := make([]*int, p)
		recv := make([]*int, p)
		sparse := true
		for round := 0; round < rounds; round++ {
			if round == 15 {
				// Rebalance mid-run: drop to the full ring, then re-arm the
				// same schedule — the next two calls fence as full rings.
				c.ClearExchangeNeighbors()
				c.SetExchangeNeighbors(peers)
			}
			sparse = round < 15 || round >= 17
			buf := gens[round%2]
			for i := range send {
				send[i] = nil
			}
			for dst := 0; dst < p; dst++ {
				if dst == c.Rank() || (round+dst)%3 == 0 {
					continue
				}
				if sparse {
					isPeer := false
					for _, q := range peers {
						if q == dst {
							isPeer = true
						}
					}
					if !isPeer {
						continue
					}
				}
				buf[dst] = round*1000 + c.Rank()*10 + dst
				send[dst] = &buf[dst]
			}
			ExchangePtr(c, send, recv)
			for src := 0; src < p; src++ {
				if src == c.Rank() {
					continue
				}
				expect := (round+c.Rank())%3 != 0
				if sparse {
					isPeer := false
					for _, q := range peers {
						if q == src {
							isPeer = true
						}
					}
					expect = expect && isPeer
				}
				if !expect {
					if recv[src] != nil {
						return fmt.Errorf("round %d rank %d: unexpected payload from %d", round, c.Rank(), src)
					}
					continue
				}
				want := round*1000 + src*10 + c.Rank()
				if recv[src] == nil || *recv[src] != want {
					return fmt.Errorf("round %d rank %d: from %d got %v, want %d", round, c.Rank(), src, recv[src], want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSetExchangeNeighborsValidation pins the misuse panics: unsorted,
// duplicate, out-of-range, and self entries are all rejected.
func TestSetExchangeNeighborsValidation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		peers []int
	}{
		{"unsorted", []int{2, 1}},
		{"duplicate", []int{1, 1}},
		{"out-of-range", []int{5}},
		{"self", []int{0}},
	} {
		w := NewWorld(3)
		err := w.Run(func(c *Comm) error {
			if c.Rank() == 0 {
				c.SetExchangeNeighbors(tc.peers)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("%s: want panic, got nil", tc.name)
		}
	}
}
