package wire

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"github.com/parres/picprk/internal/comm"

	"github.com/parres/picprk/internal/pup"
	"github.com/parres/picprk/internal/telemetry"
)

// The rendezvous is a small listener that assembles a wire world: each
// joining node connects once, announces how many ranks it hosts (and,
// optionally, which base rank it wants), and blocks until enough nodes have
// arrived to cover the world. The rendezvous assigns contiguous rank spans,
// orders the node table by base rank (so node 0 always hosts world rank 0),
// and broadcasts the table; the nodes then mesh directly and the rendezvous
// goes away. It is bootstrap-only — no application traffic crosses it.

// ValidNetwork reports whether network names a supported socket transport.
func ValidNetwork(network string) bool {
	return network == "tcp" || network == "unix"
}

func checkNetwork(network string) error {
	if !ValidNetwork(network) {
		return fmt.Errorf("wire: unsupported network %q (want tcp or unix)", network)
	}
	return nil
}

var sockSeq int64

// DefaultAddr returns a loopback listen address for the given network: an
// ephemeral 127.0.0.1 port for tcp, a fresh temp-dir socket path for unix.
func DefaultAddr(network string) string {
	if network == "unix" {
		return filepath.Join(os.TempDir(),
			fmt.Sprintf("picprk-%d-%d.sock", os.Getpid(), atomic.AddInt64(&sockSeq, 1)))
	}
	return "127.0.0.1:0"
}

// helloPayload is what a joiner sends the rendezvous.
type helloPayload struct {
	Want  int    // desired base rank, -1 for any
	Count int    // ranks hosted
	Addr  string // the joiner's mesh listener address
}

func (h *helloPayload) pup(p *pup.PUPer) {
	p.Int(&h.Want)
	p.Int(&h.Count)
	p.String(&h.Addr)
}

// welcomePayload is the rendezvous's reply: the assigned node index and the
// full node table, or an error.
type welcomePayload struct {
	Err   string
	Index int
	Nodes []NodeInfo
}

func (w *welcomePayload) pup(p *pup.PUPer) {
	p.String(&w.Err)
	p.Int(&w.Index)
	pup.Slice(p, &w.Nodes, func(p *pup.PUPer, e *NodeInfo) {
		p.Int(&e.Base)
		p.Int(&e.Count)
		p.String(&e.Addr)
	})
}

func packPayload(fn func(*pup.PUPer)) ([]byte, error) {
	sz := pup.NewSizer()
	fn(sz)
	if err := sz.Err(); err != nil {
		return nil, err
	}
	pk := pup.NewPacker(sz.Size())
	fn(pk)
	return pk.Bytes(), pk.Err()
}

func unpackPayload(b []byte, fn func(*pup.PUPer)) error {
	u := pup.NewUnpacker(b)
	fn(u)
	if err := u.Err(); err != nil {
		return err
	}
	if !u.Done() {
		return errors.New("wire: trailing bytes in handshake payload")
	}
	return nil
}

// Rendezvous is a running bootstrap listener. Start one with
// StartRendezvous, hand its Addr to the joining processes, and check Wait
// once the world is up (or failed to come up).
type Rendezvous struct {
	ln    net.Listener
	errCh chan error
}

// StartRendezvous listens on network/addr (pass DefaultAddr(network) for a
// loopback ephemeral address) and admits joiners in the background until
// their hosted rank counts sum to worldSize.
func StartRendezvous(network, addr string, worldSize int) (*Rendezvous, error) {
	if err := checkNetwork(network); err != nil {
		return nil, err
	}
	if worldSize <= 0 {
		return nil, fmt.Errorf("wire: world size must be positive, got %d", worldSize)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("wire: rendezvous listen: %w", err)
	}
	r := &Rendezvous{ln: ln, errCh: make(chan error, 1)}
	go r.serve(worldSize)
	return r, nil
}

// Addr returns the rendezvous listen address to hand to joiners.
func (r *Rendezvous) Addr() string { return r.ln.Addr().String() }

// Close aborts the bootstrap: the listener stops accepting, and joiners
// already connected are sent an error welcome so their Join returns instead
// of hanging. Wait reports the resulting bootstrap error.
func (r *Rendezvous) Close() error { return r.ln.Close() }

// Wait blocks until every joiner has been welcomed (or the bootstrap
// failed) and returns the bootstrap error.
func (r *Rendezvous) Wait() error { return <-r.errCh }

type joiner struct {
	conn  net.Conn
	hello helloPayload
}

func (r *Rendezvous) serve(worldSize int) {
	var joined []joiner
	defer func() {
		_ = r.ln.Close()
		for _, j := range joined {
			_ = j.conn.Close()
		}
	}()
	fail := func(err error) {
		// Best effort: tell everyone who already joined why the world died.
		if body, perr := packPayload((&welcomePayload{Err: err.Error()}).pup); perr == nil {
			f := frame{typ: frameHello, payload: body}
			b := f.encode(nil)
			for _, j := range joined {
				_, _ = j.conn.Write(b)
			}
		}
		r.errCh <- err
	}

	total := 0
	for total < worldSize {
		conn, err := r.ln.Accept()
		if err != nil {
			fail(fmt.Errorf("wire: rendezvous accept: %w", err))
			return
		}
		_ = conn.SetDeadline(time.Now().Add(handshakeTimeout))
		f, err := readFrame(conn)
		if err != nil || f.typ != frameHello {
			_ = conn.Close()
			fail(fmt.Errorf("wire: rendezvous handshake: %v (frame type %d)", err, f.typ))
			return
		}
		var h helloPayload
		if err := unpackPayload(f.payload, h.pup); err != nil {
			_ = conn.Close()
			fail(fmt.Errorf("wire: rendezvous hello: %w", err))
			return
		}
		if h.Count <= 0 {
			_ = conn.Close()
			fail(fmt.Errorf("wire: joiner offered %d ranks", h.Count))
			return
		}
		joined = append(joined, joiner{conn: conn, hello: h})
		total += h.Count
	}
	if total != worldSize {
		fail(fmt.Errorf("wire: joined rank counts sum to %d, want exactly %d", total, worldSize))
		return
	}

	bases, err := assignBases(joined, worldSize)
	if err != nil {
		fail(err)
		return
	}
	// Node indices follow base-rank order, so node 0 hosts world rank 0.
	order := make([]int, len(joined))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return bases[order[a]] < bases[order[b]] })
	nodes := make([]NodeInfo, len(joined))
	index := make([]int, len(joined)) // joiner -> node index
	for ni, ji := range order {
		nodes[ni] = NodeInfo{Base: bases[ji], Count: joined[ji].hello.Count, Addr: joined[ji].hello.Addr}
		index[ji] = ni
	}
	for ji, j := range joined {
		body, perr := packPayload((&welcomePayload{Index: index[ji], Nodes: nodes}).pup)
		if perr != nil {
			fail(perr)
			return
		}
		f := frame{typ: frameHello, payload: body}
		if _, werr := j.conn.Write(f.encode(nil)); werr != nil {
			fail(fmt.Errorf("wire: rendezvous welcome: %w", werr))
			return
		}
	}
	r.errCh <- nil
}

// assignBases gives every joiner a contiguous base: explicit wants first,
// then first-fit in arrival order for the rest.
func assignBases(joined []joiner, worldSize int) ([]int, error) {
	used := make([]bool, worldSize)
	bases := make([]int, len(joined))
	claim := func(base, count int) bool {
		if base < 0 || base+count > worldSize {
			return false
		}
		for r := base; r < base+count; r++ {
			if used[r] {
				return false
			}
		}
		for r := base; r < base+count; r++ {
			used[r] = true
		}
		return true
	}
	for i, j := range joined {
		bases[i] = -1
		if j.hello.Want >= 0 {
			if !claim(j.hello.Want, j.hello.Count) {
				return nil, fmt.Errorf("wire: cannot honor requested base rank %d (%d ranks)", j.hello.Want, j.hello.Count)
			}
			bases[i] = j.hello.Want
		}
	}
	for i, j := range joined {
		if bases[i] >= 0 {
			continue
		}
		placed := false
		for base := 0; base+j.hello.Count <= worldSize && !placed; base++ {
			if claim(base, j.hello.Count) {
				bases[i] = base
				placed = true
			}
		}
		if !placed {
			return nil, fmt.Errorf("wire: no contiguous span of %d ranks left", j.hello.Count)
		}
	}
	return bases, nil
}

// JoinOptions configures one node's entry into a wire world.
type JoinOptions struct {
	// Count is the number of world ranks this node hosts (default 1).
	Count int
	// WantBase requests a specific base rank (-1, the default given a zero
	// value of 0 is meaningful, means "any"). The coordinator claims 0 so
	// rank 0 — and with it result collection — stays in its process.
	WantBase int
	// Bind overrides the node's mesh listener address (default: an
	// ephemeral loopback address). Set it to a reachable host:port when
	// joining across machines.
	Bind string
	// Timeout bounds every bootstrap step (rendezvous dial/handshake, mesh
	// dials, mesh accepts); 0 means the default 60s. Tests use short
	// timeouts to turn would-be hangs into clear errors.
	Timeout time.Duration
}

// Join connects to a rendezvous at addr, receives this node's rank span and
// the node table, meshes with every peer node, and returns the transport.
// It blocks until the whole world has joined and meshed.
func Join(network, addr string, o JoinOptions) (*Node, error) {
	if err := checkNetwork(network); err != nil {
		return nil, err
	}
	if o.Count == 0 {
		o.Count = 1
	}
	if o.Count < 0 {
		return nil, fmt.Errorf("wire: node rank count must be positive, got %d", o.Count)
	}
	timeout := o.Timeout
	if timeout <= 0 {
		timeout = handshakeTimeout
	}
	bind := o.Bind
	if bind == "" {
		bind = DefaultAddr(network)
	}
	ln, err := net.Listen(network, bind)
	if err != nil {
		return nil, fmt.Errorf("wire: mesh listen: %w", err)
	}

	w, err := rendezvousHandshake(network, addr, helloPayload{Want: o.WantBase, Count: o.Count, Addr: ln.Addr().String()}, timeout)
	if err != nil {
		_ = ln.Close()
		return nil, err
	}

	size := 0
	for _, nd := range w.Nodes {
		size += nd.Count
	}
	n := &Node{
		network:    network,
		index:      w.Index,
		size:       size,
		nodes:      w.Nodes,
		owner:      make([]int, size),
		ln:         ln,
		peers:      make([]*peer, len(w.Nodes)),
		sent:       make([]int64, size),
		hsTimeout:  timeout,
		recvFrames: make([]int64, len(w.Nodes)),
		latCounts:  make([]int64, len(w.Nodes)*telemetry.LatencyBuckets),
		latSums:    make([]int64, len(w.Nodes)),
		resyncStop: make(chan struct{}),
		started:    make(chan struct{}),
		bye:        make(chan struct{}),
		abortedCh:  make(chan struct{}),
	}
	for ni, nd := range w.Nodes {
		for r := nd.Base; r < nd.Base+nd.Count; r++ {
			n.owner[r] = ni
		}
	}
	me := w.Nodes[w.Index]
	for r := me.Base; r < me.Base+me.Count; r++ {
		n.local = append(n.local, r)
	}
	if n.index == 0 {
		n.doneFrom = make([]bool, len(w.Nodes))
	}
	if err := n.mesh(); err != nil {
		n.closeAll()
		return nil, err
	}
	return n, nil
}

func rendezvousHandshake(network, addr string, h helloPayload, timeout time.Duration) (*welcomePayload, error) {
	conn, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("wire: dial rendezvous %s: %w", addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	body, err := packPayload(h.pup)
	if err != nil {
		return nil, err
	}
	f := frame{typ: frameHello, payload: body}
	if _, err := conn.Write(f.encode(nil)); err != nil {
		return nil, fmt.Errorf("wire: send hello: %w", err)
	}
	rf, err := readFrame(conn)
	if err != nil || rf.typ != frameHello {
		return nil, fmt.Errorf("wire: read welcome: %v (frame type %d)", err, rf.typ)
	}
	var w welcomePayload
	if err := unpackPayload(rf.payload, w.pup); err != nil {
		return nil, fmt.Errorf("wire: welcome payload: %w", err)
	}
	if w.Err != "" {
		return nil, errors.New(w.Err)
	}
	if w.Index < 0 || w.Index >= len(w.Nodes) || len(w.Nodes) == 0 {
		return nil, fmt.Errorf("wire: welcome assigned invalid node index %d of %d", w.Index, len(w.Nodes))
	}
	return &w, nil
}

// mesh builds the full peer mesh: dial every lower-indexed node plus
// ourselves (the self-dial carries co-hosted rank traffic over a real
// socket), then accept the higher-indexed nodes' dials and our own. The
// dial to node 0 additionally runs the synchronous clock-sync rounds (see
// clock.go) while the fresh connection still has no reader/writer
// goroutines, so every node leaves the mesh with a first offset estimate.
func (n *Node) mesh() error {
	for j := 0; j <= n.index; j++ {
		conn, err := net.DialTimeout(n.network, n.nodes[j].Addr, n.hsTimeout)
		if err != nil {
			// The rendezvous admitted this peer but its listener is gone: the
			// process died between bootstrap and mesh. Surface the typed loss
			// so supervisors treat it like a mid-run crash.
			if j != n.index {
				return fmt.Errorf("wire: node %d dial node %d (%s): %v: %w",
					n.index, j, n.nodes[j].Addr, err, comm.ErrPeerLost{Rank: n.nodes[j].Base})
			}
			return fmt.Errorf("wire: node %d dial node %d (%s): %w", n.index, j, n.nodes[j].Addr, err)
		}
		f := frame{typ: frameHello, src: uint32(n.index)}
		_ = conn.SetWriteDeadline(time.Now().Add(n.hsTimeout))
		if _, err := conn.Write(f.encode(nil)); err != nil {
			_ = conn.Close()
			return fmt.Errorf("wire: node %d mesh hello to node %d: %w", n.index, j, err)
		}
		_ = conn.SetWriteDeadline(time.Time{})
		if j == 0 && n.index != 0 {
			if err := n.syncClockDial(conn); err != nil {
				_ = conn.Close()
				return err
			}
		}
		n.peers[j] = newPeer(conn)
		n.conns = append(n.conns, conn)
		go n.readLoop(conn, j)
	}
	// Accepts: one from every node above us, plus our own self-dial.
	for k := 0; k < len(n.nodes)-n.index; k++ {
		conn, err := n.ln.Accept()
		if err != nil {
			return fmt.Errorf("wire: node %d mesh accept: %w", n.index, err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(n.hsTimeout))
		f, err := readFrame(conn)
		if err != nil || f.typ != frameHello {
			_ = conn.Close()
			return fmt.Errorf("wire: node %d mesh accept handshake: %v (frame type %d)", n.index, err, f.typ)
		}
		_ = conn.SetReadDeadline(time.Time{})
		from := int(f.src)
		if n.index == 0 && from != 0 {
			if err := answerClockSync(conn, n.index, n.hsTimeout); err != nil {
				_ = conn.Close()
				return fmt.Errorf("wire: node 0 clock sync with node %d: %w", from, err)
			}
		}
		switch {
		case from == n.index:
			// Read end of our own self-dial; the write end is peers[index].
		case from > n.index && from < len(n.nodes) && n.peers[from] == nil:
			n.peers[from] = newPeer(conn)
		default:
			_ = conn.Close()
			return fmt.Errorf("wire: node %d: unexpected mesh hello from node %d", n.index, from)
		}
		n.conns = append(n.conns, conn)
		go n.readLoop(conn, from)
	}
	for j, p := range n.peers {
		if p == nil {
			return fmt.Errorf("wire: node %d: mesh incomplete, no connection to node %d", n.index, j)
		}
	}
	return nil
}
