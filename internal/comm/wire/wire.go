package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/pup"
)

const (
	handshakeTimeout  = 60 * time.Second
	finishTimeout     = 60 * time.Second
	abortFlushTimeout = 2 * time.Second
)

// NodeInfo describes one process of a wire world, as assigned by the
// rendezvous. Nodes are indexed in rank order, so node 0 hosts world rank 0.
type NodeInfo struct {
	Base  int    // first world rank hosted by the node
	Count int    // number of contiguous ranks hosted
	Addr  string // the node's mesh listener address
}

// Node is this process's end of a wire world: a comm.Transport that frames
// messages over one socket per peer node. Build one with Join (or
// LoopbackCluster for tests), then hand it to comm.NewTransportWorld.
//
// Shutdown handshake: when a node's local ranks have all returned, its
// Finish flushes outstanding frames and reports DONE to node 0; node 0
// broadcasts BYE once every node (itself included) is done, and only then do
// nodes close their sockets. Every data frame is therefore on the wire —
// and, because receives block until matched, consumed — before any socket
// closes, so the handshake cannot lose application traffic.
type Node struct {
	network string
	index   int
	size    int
	nodes   []NodeInfo
	owner   []int // world rank -> hosting node index
	local   []int

	ln    net.Listener
	peers []*peer // write side per node index; peers[index] is the self-dial
	conns []net.Conn
	sent  []int64 // framed bytes shipped per world rank (atomic; local only)

	hsTimeout time.Duration // handshake/mesh deadline (JoinOptions.Timeout)

	// Wire accounting (see clock.go): frames received and one-way latency
	// histograms per peer node, all atomic so WireReport can snapshot them
	// while the world runs — and after it shuts down.
	recvFrames []int64
	latCounts  []int64 // [peer node][telemetry.LatencyBuckets], flattened
	latSums    []int64

	// NTP-style clock state (see clock.go): clockOff is the atomic estimate
	// of node 0's clock minus ours; clockRTT (under clockMu) is the round
	// trip of the sample behind it, 0 when no sample has landed yet.
	clockMu    sync.Mutex
	clockRTT   int64
	clockOff   int64
	resyncStop chan struct{}
	resyncOnce sync.Once

	handler     comm.Handler
	started     chan struct{}
	startedOnce sync.Once

	mu        sync.Mutex
	closing   bool
	doneFrom  []bool // node 0 only: which nodes reported DONE
	doneCount int

	bye        chan struct{}
	byeOnce    sync.Once
	abortedCh  chan struct{}
	abortOnce  sync.Once // first local Abort broadcast
	markedOnce sync.Once // abortedCh close (local or remote)
}

// release unblocks readLoops waiting for Start; closeAll uses it so a node
// discarded before Start (mesh failure) does not leak reader goroutines.
func (n *Node) release() {
	n.startedOnce.Do(func() { close(n.started) })
}

// Size implements comm.Transport.
func (n *Node) Size() int { return n.size }

// Index returns this node's index in the world's node table.
func (n *Node) Index() int { return n.index }

// Nodes returns the world's node table (copy).
func (n *Node) Nodes() []NodeInfo { return append([]NodeInfo(nil), n.nodes...) }

// LocalRanks implements comm.Transport.
func (n *Node) LocalRanks() []int { return append([]int(nil), n.local...) }

// Wired implements comm.Transport: payloads are serialized.
func (n *Node) Wired() bool { return true }

// SentBytes implements comm.Transport.
func (n *Node) SentBytes(src int) int64 {
	if src < 0 || src >= n.size || n.owner[src] != n.index {
		return 0
	}
	return atomic.LoadInt64(&n.sent[src])
}

// Start implements comm.Transport: readers hold delivery until the world's
// handler is registered. Nodes other than 0 also start the clock-resync
// loop here, once a handler exists to own the world's lifetime.
func (n *Node) Start(h comm.Handler) {
	n.handler = h
	if n.index != 0 && len(n.nodes) > 1 {
		go n.resyncLoop()
	}
	n.release()
}

// bufPool recycles frame and payload encode buffers between Ship calls: a
// data frame's bytes live from encode until the writer batch containing it
// is handed to the kernel, after which the writer returns the buffer here.
// Control and broadcast frames stay unpooled (one buffer may sit on several
// peers' queues, so no single write completion owns it).
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// Ship implements comm.Transport: serialize the payload through the pup
// codec registry and enqueue the frame on the destination node's writer.
// Unlike the in-process substrate, even locally-hosted destinations cross
// the socket (via the self-dial), so a loopback world exercises the exact
// frames a distributed one would.
func (n *Node) Ship(dst int, m comm.Message) {
	pb := bufPool.Get().(*[]byte)
	body, kind, err := pup.EncodePayload((*pb)[:0], m.Data)
	if err != nil {
		bufPool.Put(pb)
		// Abort instead of panicking: Ship may run on a chaos-delay
		// goroutine, where a panic would crash the process rather than
		// surface through World.Run.
		n.fail(fmt.Errorf("wire: rank %d -> %d (tag %d): %w", m.Src, dst, m.Tag, err))
		return
	}
	f := frame{
		typ: frameData, kind: kind,
		dst: uint32(dst), src: uint32(m.Src),
		ctx: m.Ctx, tag: int64(m.Tag),
		sendNS: n.WallClockNS(), payload: body,
	}
	fb := bufPool.Get().(*[]byte)
	b := f.encode((*fb)[:0])
	*fb = b
	// The frame encode copied the payload, so the payload buffer is free
	// again already; the frame buffer comes back once its batch is written.
	*pb = body
	bufPool.Put(pb)
	atomic.AddInt64(&n.sent[m.Src], int64(len(b)))
	n.peers[n.owner[dst]].enqueuePooled(b, fb)
}

// Abort implements comm.Transport: broadcast the failure to every peer so
// their blocked receives wake, and release local Finish waiters. When the
// failure is a peer loss, the lost rank travels in the abort payload so
// nodes not directly watching the dead connection still see the typed
// comm.ErrPeerLost.
func (n *Node) Abort(err error) {
	n.abortOnce.Do(func() {
		lost := -1
		var pl comm.ErrPeerLost
		if errors.As(err, &pl) {
			lost = pl.Rank
		}
		f := frame{typ: frameAbort, src: uint32(n.index), sendNS: n.WallClockNS(), payload: encodeAbort(lost, err.Error())}
		b := f.encode(nil)
		for i, p := range n.peers {
			if i != n.index {
				p.enqueue(b)
			}
		}
	})
	n.markAborted()
}

// fail aborts the world on a transport-level failure (encode/decode error,
// protocol violation): locally through the handler, remotely via Abort.
func (n *Node) fail(err error) {
	n.handler.RemoteAbort(err)
	n.Abort(err)
}

func (n *Node) markAborted() {
	n.markedOnce.Do(func() { close(n.abortedCh) })
}

// Kill abruptly severs every mesh connection with no shutdown handshake —
// no DONE, no BYE, and no abort frame reaches the peers. It is the
// in-process analogue of SIGKILLing the hosting process, used by the chaos
// and recovery tests: peers observe a raw EOF mid-stream and surface
// comm.ErrPeerLost, while the local world aborts so its rank goroutines
// unwind instead of hanging on receives that can never complete.
func (n *Node) Kill() {
	if n.handler != nil {
		n.handler.RemoteAbort(fmt.Errorf("wire: node %d killed", n.index))
	}
	n.markAborted()
	n.closeAll()
}

// remoteAbort is a peer-loss abort reconstructed from the wire: the sender's
// error text, unwrapping to the typed comm.ErrPeerLost it carried.
type remoteAbort struct {
	msg  string
	lost int
}

func (e remoteAbort) Error() string { return e.msg }
func (e remoteAbort) Unwrap() error { return comm.ErrPeerLost{Rank: e.lost} }

// peerLostError converts a broken mesh connection into the typed peer-loss
// error. peerIdx is the node on the far end; its lowest hosted rank names
// the loss. A broken self-dial stream (or an unidentified connection) stays
// a generic failure — it signals local teardown, not a vanished peer.
func (n *Node) peerLostError(peerIdx int, cause error) error {
	if peerIdx < 0 || peerIdx >= len(n.nodes) || peerIdx == n.index {
		return fmt.Errorf("wire: node %d lost a peer connection: %w", n.index, cause)
	}
	return fmt.Errorf("wire: node %d lost node %d (%v): %w",
		n.index, peerIdx, cause, comm.ErrPeerLost{Rank: n.nodes[peerIdx].Base})
}

// Finish implements comm.Transport: run the shutdown handshake (or, when
// aborted, a best-effort flush) and tear the mesh down.
func (n *Node) Finish(aborted bool) error {
	if aborted {
		// Give in-flight abort/data frames a moment to reach the kernel so
		// remote ranks wake promptly, then tear down; remote readers treat
		// the EOF as an abort too, so nothing hangs if the flush times out.
		for _, p := range n.peers {
			_ = p.flush(abortFlushTimeout)
		}
		n.closeAll()
		return nil
	}
	var ferr error
	for _, p := range n.peers {
		if err := p.flush(finishTimeout); err != nil && ferr == nil {
			ferr = err
		}
	}
	if n.index == 0 {
		n.noteDone(0)
	} else {
		f := frame{typ: frameDone, src: uint32(n.index), sendNS: n.WallClockNS()}
		n.peers[0].enqueue(f.encode(nil))
	}
	select {
	case <-n.bye:
		// Echo BYE to every peer before closing. Node 0's broadcast travels
		// on its own sockets only, so without the echo a fast node's close
		// could reach a slow peer before that peer's BYE does — and the slow
		// peer would read the EOF as a lost connection. With the echo, every
		// connection carries a BYE ahead of its EOF (same ordered stream),
		// so whichever frame a reader sees first marks the shutdown. The
		// flush puts the echoes on the wire before the sockets close.
		f := frame{typ: frameBye, src: uint32(n.index), sendNS: n.WallClockNS()}
		b := f.encode(nil)
		for i, p := range n.peers {
			if i != n.index {
				p.enqueue(b)
			}
		}
		for _, p := range n.peers {
			_ = p.flush(abortFlushTimeout)
		}
	case <-n.abortedCh:
	case <-time.After(finishTimeout):
		if ferr == nil {
			ferr = errors.New("wire: timed out waiting for world shutdown")
		}
	}
	n.closeAll()
	return ferr
}

func (n *Node) setClosing() {
	n.mu.Lock()
	n.closing = true
	n.mu.Unlock()
}

// isClosing reports whether socket EOFs are expected rather than failures:
// after the world's BYE, after a local abort began teardown, or once
// closeAll ran.
func (n *Node) isClosing() bool {
	select {
	case <-n.bye:
		return true
	default:
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closing
}

func (n *Node) closeAll() {
	n.setClosing()
	n.stopResync()
	n.release()
	if n.ln != nil {
		_ = n.ln.Close()
	}
	for _, p := range n.peers {
		p.close()
	}
	for _, c := range n.conns {
		_ = c.Close()
	}
}

// noteDone records a node's DONE at node 0 and broadcasts BYE once the
// whole world reported in.
func (n *Node) noteDone(nodeIdx int) {
	if n.index != 0 {
		n.fail(fmt.Errorf("wire: node %d received DONE meant for node 0", n.index))
		return
	}
	n.mu.Lock()
	if nodeIdx < 0 || nodeIdx >= len(n.doneFrom) || n.doneFrom[nodeIdx] {
		n.mu.Unlock()
		n.fail(fmt.Errorf("wire: duplicate or invalid DONE from node %d", nodeIdx))
		return
	}
	n.doneFrom[nodeIdx] = true
	n.doneCount++
	ready := n.doneCount == len(n.nodes)
	n.mu.Unlock()
	if ready {
		f := frame{typ: frameBye, src: uint32(n.index), sendNS: n.WallClockNS()}
		b := f.encode(nil)
		for i, p := range n.peers {
			if i != n.index {
				p.enqueue(b)
			}
		}
		n.noteBye()
	}
}

func (n *Node) noteBye() {
	n.byeOnce.Do(func() { close(n.bye) })
}

// readLoop consumes frames from one socket until it breaks or the world
// shuts down. Per-peer frame order is preserved because each peer pair
// shares one ordered stream with a single reader — the wire equivalent of
// the in-process non-overtaking guarantee. peerIdx is the node index on the
// far end of conn (known at both dial and accept time), so a premature EOF
// — the stream breaking without the orderly BYE — is attributed to that
// peer as a typed comm.ErrPeerLost rather than a generic read error.
func (n *Node) readLoop(conn net.Conn, peerIdx int) {
	<-n.started
	for {
		f, err := readFrame(conn)
		if err != nil {
			if !n.isClosing() {
				n.handler.RemoteAbort(n.peerLostError(peerIdx, err))
				n.markAborted()
			}
			return
		}
		switch f.typ {
		case frameData:
			v, derr := pup.DecodePayload(f.kind, f.payload)
			if derr != nil {
				n.fail(fmt.Errorf("wire: node %d: bad data frame: %w", n.index, derr))
				return
			}
			dst := int(f.dst)
			if dst < 0 || dst >= n.size || n.owner[dst] != n.index {
				n.fail(fmt.Errorf("wire: node %d received a frame for rank %d it does not host", n.index, dst))
				return
			}
			src := int(f.src)
			if src < 0 || src >= n.size {
				n.fail(fmt.Errorf("wire: node %d received a frame from invalid rank %d", n.index, src))
				return
			}
			n.recordData(src, f.sendNS)
			n.handler.Incoming(dst, comm.Message{Ctx: f.ctx, Src: src, Tag: int(f.tag), Data: v})
		case frameAbort:
			n.recordControl(int(f.src))
			var aerr error
			if lost, msg, derr := decodeAbort(f.payload); derr == nil && msg != "" {
				if lost >= 0 {
					aerr = remoteAbort{msg: msg, lost: lost}
				} else {
					aerr = errors.New(msg)
				}
			} else {
				aerr = errors.New("wire: remote abort")
			}
			n.handler.RemoteAbort(aerr)
			n.markAborted()
		case frameDone:
			n.recordControl(int(f.src))
			n.noteDone(int(f.src))
		case frameBye:
			n.recordControl(int(f.src))
			n.noteBye()
		case framePing:
			// Resync probe: answer through the writer toward the pinger so
			// the reply shares the mesh's ordered streams.
			from := int(f.src)
			n.recordControl(from)
			if from < 0 || from >= len(n.peers) || n.peers[from] == nil {
				n.fail(fmt.Errorf("wire: node %d: clock ping from unknown node %d", n.index, from))
				return
			}
			t2 := nowNS()
			pong := frame{typ: framePong, src: uint32(n.index), payload: encodePong(f.sendNS, t2), sendNS: nowNS()}
			n.peers[from].enqueue(pong.encode(nil))
		case framePong:
			t4 := nowNS()
			n.recordControl(int(f.src))
			if t1, t2, ok := decodePong(f.payload); ok {
				n.observeClockSample(t1, t2, f.sendNS, t4)
			}
		default:
			n.fail(fmt.Errorf("wire: node %d: unknown frame type %d", n.index, f.typ))
			return
		}
	}
}

// wbuf is one writer-queue entry: the encoded frame, plus the pool slot to
// return it to once the batch containing it has been written (nil for
// control/broadcast frames, whose buffers are shared or caller-owned).
type wbuf struct {
	b      []byte
	pooled *[]byte
}

// peer is the write side of one mesh connection: an unbounded queue drained
// by a dedicated writer goroutine, so Ship never blocks on TCP backpressure
// (comm.Send promises MPI_Isend-with-unbounded-buffer semantics, and a
// blocking Ship could deadlock two nodes sending large volumes head-on).
// Each writer wakeup swaps the whole queue out and hands it to the kernel
// as one vectored write (net.Buffers → writev), so a burst of frames —
// a rank's entire exchange fan-out — costs one syscall, not one per frame.
type peer struct {
	conn net.Conn

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []wbuf
	writing bool
	closed  bool
	err     error
	frames  int64 // frames ever enqueued
	peak    int64 // queue-depth high-water mark
	writes  int64 // vectored writes issued (frames/writes = coalescing factor)
}

func newPeer(conn net.Conn) *peer {
	p := &peer{conn: conn}
	p.cond = sync.NewCond(&p.mu)
	go p.writeLoop()
	return p
}

func (p *peer) enqueue(b []byte) { p.enqueuePooled(b, nil) }

func (p *peer) enqueuePooled(b []byte, pooled *[]byte) {
	p.mu.Lock()
	dropped := p.closed || p.err != nil
	if !dropped {
		p.queue = append(p.queue, wbuf{b: b, pooled: pooled})
		p.frames++
		if d := int64(len(p.queue)); d > p.peak {
			p.peak = d
		}
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	if dropped && pooled != nil {
		bufPool.Put(pooled)
	}
}

// stats snapshots the writer's frame counter and queue gauges.
func (p *peer) stats() (frames, depth, peak, writes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.frames, int64(len(p.queue)), p.peak, p.writes
}

// recycleLocked returns every pooled buffer in q to the pool and clears the
// entries. Caller holds p.mu (pool puts are safe under it).
func recycleLocked(q []wbuf) {
	for i := range q {
		if pb := q[i].pooled; pb != nil {
			bufPool.Put(pb)
		}
		q[i] = wbuf{}
	}
}

func (p *peer) writeLoop() {
	var batch []wbuf
	var bufs net.Buffers
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		// Swap the whole queue out: everything enqueued since the last
		// wakeup goes to the kernel as one vectored write. The two slices
		// ping-pong, so the steady state allocates nothing.
		batch, p.queue = p.queue, batch[:0]
		p.writing = true
		p.writes++
		p.mu.Unlock()
		// WriteTo reslices its receiver in place as segments drain, so it
		// gets a scratch copy of the refs; batch keeps the originals for
		// recycling afterwards.
		bufs = bufs[:0]
		for i := range batch {
			bufs = append(bufs, batch[i].b)
		}
		_, err := bufs.WriteTo(p.conn)
		for i := range bufs {
			bufs[i] = nil
		}
		p.mu.Lock()
		recycleLocked(batch)
		p.writing = false
		if err != nil && p.err == nil {
			p.err = err
			// The stream is broken; readers will notice. Drop what queued
			// during the failed write, returning its pooled buffers.
			recycleLocked(p.queue)
			p.queue = nil
		}
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// flush blocks until every enqueued frame has been handed to the kernel, the
// connection breaks, or the timeout passes. The writer broadcasts after each
// batch, so the wait needs no polling — one timer broadcast at the deadline
// bounds it.
func (p *peer) flush(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer timer.Stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	for (len(p.queue) > 0 || p.writing) && p.err == nil && !p.closed {
		if !time.Now().Before(deadline) {
			return errors.New("wire: flush timed out")
		}
		p.cond.Wait()
	}
	return p.err
}

func (p *peer) close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	_ = p.conn.Close()
}
