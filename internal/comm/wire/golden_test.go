package wire

import (
	"bytes"
	"testing"
)

// TestFrameGolden pins the framed wire layout byte for byte: the 40-byte
// little-endian header documented in frame.go and DESIGN.md. If this test
// fails, the on-the-wire format changed — bump frameVersion and update the
// docs rather than silently breaking cross-version worlds.
func TestFrameGolden(t *testing.T) {
	f := frame{
		typ:     frameData,
		kind:    11, // pup.KindF64s
		dst:     3,
		src:     0x0102,
		ctx:     0x1122334455667788,
		tag:     -5,
		sendNS:  0x0102030405060708,
		payload: []byte{0xde, 0xad, 0xbe, 0xef},
	}
	got := f.encode(nil)
	want := []byte{
		// length of the rest: 36 header bytes + 4 payload = 40 (LE u32)
		0x28, 0x00, 0x00, 0x00,
		// version
		0x02,
		// frame type: data
		0x01,
		// kind (LE u16)
		0x0b, 0x00,
		// dst world rank (LE u32)
		0x03, 0x00, 0x00, 0x00,
		// src world rank (LE u32)
		0x02, 0x01, 0x00, 0x00,
		// communicator context (LE u64)
		0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,
		// tag -5 (two's complement LE i64)
		0xfb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
		// send timestamp ns (two's complement LE i64)
		0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
		// payload
		0xde, 0xad, 0xbe, 0xef,
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("frame encoding drifted:\n got %#v\nwant %#v", got, want)
	}

	back, err := readFrame(bytes.NewReader(got))
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if back.typ != f.typ || back.kind != f.kind || back.dst != f.dst ||
		back.src != f.src || back.ctx != f.ctx || back.tag != f.tag ||
		back.sendNS != f.sendNS || !bytes.Equal(back.payload, f.payload) {
		t.Fatalf("frame did not round-trip: %+v vs %+v", back, f)
	}
}

// TestFrameHeaderSize pins the header size constant the docs promise.
func TestFrameHeaderSize(t *testing.T) {
	f := frame{typ: frameBye}
	if n := len(f.encode(nil)); n != headerBytes {
		t.Fatalf("empty frame is %d bytes, want %d", n, headerBytes)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	// Implausible length.
	if _, err := readFrame(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})); err == nil {
		t.Fatal("accepted an implausible frame length")
	}
	// Wrong version.
	f := frame{typ: frameData}
	b := f.encode(nil)
	b[4] = 99
	if _, err := readFrame(bytes.NewReader(b)); err == nil {
		t.Fatal("accepted a wrong protocol version")
	}
	// Truncated payload.
	g := frame{typ: frameData, payload: []byte{1, 2, 3, 4}}
	gb := g.encode(nil)
	if _, err := readFrame(bytes.NewReader(gb[:len(gb)-2])); err == nil {
		t.Fatal("accepted a truncated frame")
	}
}
