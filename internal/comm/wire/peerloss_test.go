package wire

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/parres/picprk/internal/comm"
)

// Peer-loss detection: the transport must distinguish an orderly shutdown
// (BYE handshake, then EOF) from a process vanishing mid-run (EOF with no
// BYE), and surface the latter as the typed comm.ErrPeerLost from every
// survivor's World.Run — the signal the driver's recovery supervisor keys
// on.

// TestWireKillSurfacesPeerLost: node 2 severs all its connections with no
// handshake (the in-process analogue of SIGKILL) while the survivors block
// in a receive. Both survivors' runs must fail with comm.ErrPeerLost naming
// rank 2; the killed node's own run must fail too, but with a local abort —
// not a peer loss, since it was the one that died.
func TestWireKillSurfacesPeerLost(t *testing.T) {
	nodes, err := LoopbackCluster("tcp", 3)
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]error, 3)
	var wg sync.WaitGroup
	wg.Add(3)
	for i, n := range nodes {
		w := comm.NewTransportWorld(n, comm.Options{RecvTimeout: 30 * time.Second})
		go func(i int, n *Node, w *comm.World) {
			defer wg.Done()
			errs[i] = w.Run(func(c *comm.Comm) error {
				c.Barrier()
				if c.Rank() == 2 {
					n.Kill()
					return nil
				}
				c.Recv(comm.AnySource, 5) // never satisfied; the loss must wake it
				return nil
			})
		}(i, n, w)
	}
	wg.Wait()

	for _, i := range []int{0, 1} {
		var pl comm.ErrPeerLost
		if !errors.As(errs[i], &pl) {
			t.Fatalf("survivor %d: got %v, want a comm.ErrPeerLost", i, errs[i])
		}
		if pl.Rank != 2 {
			t.Errorf("survivor %d: lost rank %d, want 2", i, pl.Rank)
		}
	}
	if errs[2] == nil {
		t.Fatal("killed node's own Run returned nil")
	}
	var pl comm.ErrPeerLost
	if errors.As(errs[2], &pl) {
		t.Errorf("killed node misreported its own death as a peer loss: %v", errs[2])
	}
}

// TestWireKillUnblocksCollective: survivors stuck inside a collective (an
// allreduce that can never complete without the dead rank) must also be
// woken with the typed loss, not hang until the receive watchdog fires.
func TestWireKillUnblocksCollective(t *testing.T) {
	nodes, err := LoopbackCluster("tcp", 3)
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]error, 3)
	var wg sync.WaitGroup
	wg.Add(3)
	for i, n := range nodes {
		w := comm.NewTransportWorld(n, comm.Options{RecvTimeout: 30 * time.Second})
		go func(i int, n *Node, w *comm.World) {
			defer wg.Done()
			errs[i] = w.Run(func(c *comm.Comm) error {
				c.Barrier()
				if c.Rank() == 2 {
					n.Kill()
					return nil
				}
				comm.AllreduceScalar(c, int64(c.Rank()), comm.Sum[int64])
				return nil
			})
		}(i, n, w)
	}
	wg.Wait()
	for _, i := range []int{0, 1} {
		var pl comm.ErrPeerLost
		if !errors.As(errs[i], &pl) {
			t.Fatalf("survivor %d: got %v, want a comm.ErrPeerLost", i, errs[i])
		}
		if pl.Rank != 2 {
			t.Errorf("survivor %d: lost rank %d, want 2", i, pl.Rank)
		}
	}
}

// TestWireOrderlyShutdownNoPeerLost: ranks finishing at very different
// times produce BYE-then-EOF on every connection; no rank may mistake the
// expected EOFs for a lost peer. (This is the regression test for reading
// a premature EOF as orderly: the two paths share the readLoop exit and
// are told apart only by whether BYE arrived first.)
func TestWireOrderlyShutdownNoPeerLost(t *testing.T) {
	for _, err := range runCluster(t, "unix", 3, comm.Options{}, func(c *comm.Comm) error {
		c.Barrier()
		// Stagger the exits so fast nodes close their sockets long before
		// slow ones stop reading.
		time.Sleep(time.Duration(c.Rank()) * 30 * time.Millisecond)
		return nil
	}) {
		if err != nil {
			t.Fatalf("orderly shutdown surfaced an error: %v", err)
		}
	}
}
