package wire

import (
	"testing"
	"time"

	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/telemetry"
)

// TestObserveClockSample pins the NTP arithmetic: offset comes out as
// ((t2-t1)+(t3-t4))/2, the minimum-RTT sample wins, and corrupt samples
// (negative RTT) are discarded.
func TestObserveClockSample(t *testing.T) {
	n := &Node{}
	// Symmetric 1ms each way, remote clock 5ms ahead: t1=0, t2=6ms, t3=6ms,
	// t4=2ms → rtt 2ms, offset 5ms.
	ms := int64(time.Millisecond)
	n.observeClockSample(0, 6*ms, 6*ms, 2*ms)
	if got := n.ClockOffsetNS(); got != 5*ms {
		t.Fatalf("offset %d, want %d", got, 5*ms)
	}
	// A higher-RTT sample must not displace the estimate even with a wildly
	// different offset.
	n.observeClockSample(0, 106*ms, 106*ms, 12*ms)
	if got := n.ClockOffsetNS(); got != 5*ms {
		t.Fatalf("higher-RTT sample replaced the estimate: offset %d", got)
	}
	// A lower-RTT sample refines it.
	n.observeClockSample(0, 5*ms+ms/2, 5*ms+ms/2, ms)
	if got := n.ClockOffsetNS(); got != 5*ms {
		t.Fatalf("refined offset %d, want %d", got, 5*ms)
	}
	// Negative RTT (clock stepped mid-exchange) is discarded.
	n.observeClockSample(10*ms, 0, 0, 0)
	if got := n.ClockOffsetNS(); got != 5*ms {
		t.Fatalf("negative-RTT sample accepted: offset %d", got)
	}
	if n.WallClockNS() == 0 {
		t.Fatal("wall clock reads zero")
	}
}

// TestClusterClockSyncAndWireReport: after a real loopback bootstrap every
// non-zero node has taken clock samples (offset may legitimately be ~0 on
// one machine, but the RTT record proves the rounds ran), and after traffic
// the wire report carries frame counts and one-way latency observations.
func TestClusterClockSyncAndWireReport(t *testing.T) {
	const p = 3
	nodes, err := LoopbackCluster("tcp", p)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range nodes {
		n.clockMu.Lock()
		rtt := n.clockRTT
		n.clockMu.Unlock()
		if i == 0 {
			if off := n.ClockOffsetNS(); off != 0 {
				t.Errorf("node 0 offset %d, want 0 (it defines the reference clock)", off)
			}
		} else if rtt == 0 {
			t.Errorf("node %d has no clock sample after bootstrap", i)
		}
	}

	errs := make(chan error, p)
	for _, n := range nodes {
		w := comm.NewTransportWorld(n, comm.Options{})
		go func(w *comm.World) { errs <- w.Run(collectiveWorkout) }(w)
	}
	for i := 0; i < p; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	var merged telemetry.WireReport
	for _, n := range nodes {
		merged.Merge(n.WireReport())
	}
	if len(merged.Offsets) != p {
		t.Fatalf("merged offsets cover %d nodes, want %d", len(merged.Offsets), p)
	}
	lat := merged.MergedLatency()
	if lat.Count() == 0 {
		t.Fatal("no one-way latency observations after a collective workout")
	}
	if lat.Quantile(0.5) > lat.Quantile(0.99) {
		t.Fatalf("p50 %d > p99 %d", lat.Quantile(0.5), lat.Quantile(0.99))
	}
	var sent, recv int64
	for _, pw := range merged.Peers {
		sent += pw.FramesSent
		recv += pw.FramesRecv
		if pw.QueuePeak < 0 || pw.QueueDepth < 0 {
			t.Fatalf("negative queue gauge on %d->%d: %+v", pw.Node, pw.Peer, pw)
		}
	}
	if sent == 0 || recv == 0 {
		t.Fatalf("frame counters empty: sent %d recv %d", sent, recv)
	}
}
