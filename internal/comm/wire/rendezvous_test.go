package wire

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// Bootstrap failure paths: every way a world can fail to assemble must
// produce a prompt, descriptive error — never a hang. Joins in these tests
// carry a short JoinOptions.Timeout so a regression shows up as a test
// timeout measured in seconds, not minutes.

// TestJoinRendezvousUnresponsive: the rendezvous address accepts the TCP
// connection (listen backlog) but never answers the hello. The join must
// give up after its timeout.
func TestJoinRendezvousUnresponsive(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	start := time.Now()
	_, err = Join("tcp", ln.Addr().String(), JoinOptions{Timeout: 300 * time.Millisecond})
	if err == nil {
		t.Fatal("join to a mute listener succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("join took %v to fail; the timeout did not bound it", elapsed)
	}
	if !strings.Contains(err.Error(), "welcome") {
		t.Errorf("error %q does not say which handshake step failed", err)
	}
}

// TestJoinRendezvousGone: no listener at the address at all — the dial
// itself must fail immediately with a clear error.
func TestJoinRendezvousGone(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	_, err = Join("tcp", addr, JoinOptions{Timeout: 2 * time.Second})
	if err == nil {
		t.Fatal("join to a closed address succeeded")
	}
	if !strings.Contains(err.Error(), "dial rendezvous") {
		t.Errorf("error %q does not name the dial step", err)
	}
}

// TestRendezvousClosedMidBootstrap: a joiner is connected and waiting for
// the rest of the world when the rendezvous goes away. Both the joiner and
// Wait must return errors instead of hanging.
func TestRendezvousClosedMidBootstrap(t *testing.T) {
	rv, err := StartRendezvous("tcp", "127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}

	joinErr := make(chan error, 1)
	go func() {
		_, err := Join("tcp", rv.Addr(), JoinOptions{Timeout: 5 * time.Second})
		joinErr <- err
	}()
	// Give the joiner a moment to be admitted, then kill the bootstrap while
	// it waits for the missing second joiner.
	time.Sleep(100 * time.Millisecond)
	if err := rv.Close(); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-joinErr:
		if err == nil {
			t.Fatal("join succeeded with a one-joiner world of size 2")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("join hung after the rendezvous closed")
	}
	if err := rv.Wait(); err == nil {
		t.Fatal("Wait reported a successful bootstrap after Close")
	}
}

// TestJoinDuplicateBaseRank: two joiners both claiming base rank 0 is an
// impossible world; both joins and Wait must fail with an error naming the
// conflict.
func TestJoinDuplicateBaseRank(t *testing.T) {
	rv, err := StartRendezvous("tcp", "127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer rv.Close()

	errs := make([]error, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			defer wg.Done()
			_, errs[i] = Join("tcp", rv.Addr(), JoinOptions{WantBase: 0, Timeout: 10 * time.Second})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("joiner %d with the duplicate base rank succeeded", i)
		}
		if !strings.Contains(err.Error(), "base rank 0") {
			t.Errorf("joiner %d error %q does not name the conflicting rank", i, err)
		}
	}
	if err := rv.Wait(); err == nil {
		t.Fatal("Wait reported success for an unsatisfiable world")
	}
}

// TestJoinWorldOverflow: joiner rank counts that overshoot the world size
// are rejected at bootstrap.
func TestJoinWorldOverflow(t *testing.T) {
	rv, err := StartRendezvous("tcp", "127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer rv.Close()

	_, err = Join("tcp", rv.Addr(), JoinOptions{Count: 3, Timeout: 10 * time.Second})
	if err == nil {
		t.Fatal("a 3-rank joiner fit a world of size 2")
	}
}
