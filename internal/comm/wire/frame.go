// Package wire is the framed socket transport for internal/comm: a world
// whose ranks span OS processes (and machines), meshed over TCP or unix
// sockets. Payloads are serialized through the internal/pup codec registry;
// the matching semantics (tags, contexts, wildcard receives, collectives)
// stay in internal/comm and are identical to the in-process substrate, which
// is what the cross-transport bitwise-identity tests pin.
//
// Topology: a world of R ranks is hosted by N nodes (one process each), each
// owning a contiguous span of ranks. A rendezvous listener admits joining
// nodes, assigns rank bases, and broadcasts the node table; the nodes then
// build a full mesh — node i dials every node j < i plus itself (the
// self-dial means co-hosted rank traffic crosses a real socket too, so a
// loopback world exercises exactly the frames a distributed one would).
package wire

import (
	"fmt"
	"io"

	"github.com/parres/picprk/internal/pup"
)

// Every frame starts with a fixed 40-byte little-endian header:
//
//	offset  size  field
//	     0     4  length of the rest of the frame (36 header bytes + payload)
//	     4     1  protocol version (currently 2)
//	     5     1  frame type (data / abort / done / bye / hello / ping / pong)
//	     6     2  payload kind (pup codec id for data frames; 0 on control)
//	     8     4  destination world rank
//	    12     4  source world rank (node index on control frames)
//	    16     8  communicator context id
//	    24     8  tag (two's complement)
//	    32     8  send timestamp, nanoseconds (two's complement)
//	    40     …  payload (pup-encoded body)
//
// The send timestamp is stamped when the frame is built: on data and
// control frames it is the sender's offset-corrected wall clock (node 0's
// epoch), so the receiver can derive a one-way latency estimate that
// includes the sender's writer-queue wait; on ping/pong frames it is the
// sender's raw local clock (t1/t3 of the NTP-style exchange that produces
// those offsets in the first place).
//
// The layout is pinned by TestFrameGolden in golden_test.go; change it only
// with a version bump there and in DESIGN.md.
const (
	headerBytes  = 40
	frameVersion = 2
	maxFrameBody = 1 << 30 // sanity bound on the length field
)

type frameType uint8

const (
	frameData  frameType = 1 // application payload; kind identifies the codec
	frameAbort frameType = 2 // world abort; payload is the error string
	frameDone  frameType = 3 // node finished its local ranks (sent to node 0)
	frameBye   frameType = 4 // node 0's shutdown go-ahead
	frameHello frameType = 5 // rendezvous and mesh handshake
	framePing  frameType = 6 // clock-sync probe; sendNS carries t1 (local clock)
	framePong  frameType = 7 // clock-sync reply; payload echoes t1,t2; sendNS is t3
)

type frame struct {
	typ     frameType
	kind    pup.Kind
	dst     uint32
	src     uint32
	ctx     uint64
	tag     int64
	sendNS  int64
	payload []byte
}

// encode appends the framed bytes to dst and returns the extended slice.
func (f *frame) encode(dst []byte) []byte {
	var hdr [headerBytes]byte
	putU32(hdr[0:], uint32(headerBytes-4+len(f.payload)))
	hdr[4] = frameVersion
	hdr[5] = byte(f.typ)
	putU16(hdr[6:], uint16(f.kind))
	putU32(hdr[8:], f.dst)
	putU32(hdr[12:], f.src)
	putU64(hdr[16:], f.ctx)
	putU64(hdr[24:], uint64(f.tag))
	putU64(hdr[32:], uint64(f.sendNS))
	return append(append(dst, hdr[:]...), f.payload...)
}

// readFrame reads and validates one frame from r.
func readFrame(r io.Reader) (frame, error) {
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return frame{}, err
	}
	n := int(getU32(hdr[0:]))
	if n < headerBytes-4 || n > maxFrameBody {
		return frame{}, fmt.Errorf("wire: implausible frame length %d", n)
	}
	if _, err := io.ReadFull(r, hdr[4:]); err != nil {
		return frame{}, fmt.Errorf("wire: short frame header: %w", err)
	}
	if hdr[4] != frameVersion {
		return frame{}, fmt.Errorf("wire: protocol version %d, want %d", hdr[4], frameVersion)
	}
	f := frame{
		typ:    frameType(hdr[5]),
		kind:   pup.Kind(getU16(hdr[6:])),
		dst:    getU32(hdr[8:]),
		src:    getU32(hdr[12:]),
		ctx:    getU64(hdr[16:]),
		tag:    int64(getU64(hdr[24:])),
		sendNS: int64(getU64(hdr[32:])),
	}
	if pl := n - (headerBytes - 4); pl > 0 {
		f.payload = make([]byte, pl)
		if _, err := io.ReadFull(r, f.payload); err != nil {
			return frame{}, fmt.Errorf("wire: short frame payload: %w", err)
		}
	}
	return f, nil
}

func putU16(b []byte, v uint16) {
	b[0], b[1] = byte(v), byte(v>>8)
}

func getU16(b []byte) uint16 {
	return uint16(b[0]) | uint16(b[1])<<8
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU64(b []byte, v uint64) {
	putU32(b[0:], uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b[0:])) | uint64(getU32(b[4:]))<<32
}

// Abort frames carry a structured payload so typed failures survive the
// trip: the error text plus, when the abort was caused by a vanished peer,
// the lowest world rank that peer hosted (-1 otherwise). The receiving node
// rebuilds a comm.ErrPeerLost from it, which is how every rank of a world
// — not just the ones directly wired to the dead process — observes the
// same typed error.
func encodeAbort(lostRank int, msg string) []byte {
	sz := pup.NewSizer()
	sz.Int(&lostRank)
	sz.String(&msg)
	pk := pup.NewPacker(sz.Size())
	pk.Int(&lostRank)
	pk.String(&msg)
	return pk.Bytes()
}

// decodeAbort reverses encodeAbort.
func decodeAbort(b []byte) (lostRank int, msg string, err error) {
	u := pup.NewUnpacker(b)
	u.Int(&lostRank)
	var s string
	u.String(&s)
	if u.Err() != nil {
		return -1, "", u.Err()
	}
	return lostRank, s, nil
}
