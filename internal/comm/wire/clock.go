package wire

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"github.com/parres/picprk/internal/telemetry"
)

// Clock-offset estimation and per-peer wire accounting.
//
// Every node estimates the offset between its own monotonic-ish wall clock
// (time.Now().UnixNano()) and node 0's, using the classic NTP four-timestamp
// exchange: the origin stamps t1 into a PING, node 0 stamps its receive time
// t2 and transmit time t3 into the PONG, and the origin stamps t4 on
// receipt. Then
//
//	offset = ((t2-t1) + (t3-t4)) / 2      rtt = (t4-t1) - (t3-t2)
//
// and the estimate from the minimum-RTT sample wins (asymmetric queueing
// inflates RTT, so the tightest round trip is the most trustworthy). The
// first samples ride on the mesh handshake — a node dialing node 0 runs
// clockSyncRounds synchronous exchanges on the fresh connection before its
// reader/writer goroutines exist — and a background loop re-pings node 0
// every resyncInterval for the lifetime of the world, so long runs track
// drift. Node 0's offset is identically zero; every other node's offset maps
// its local clock onto node 0's, which is the common timeline the wall-clock
// Chrome trace renders.

const (
	clockSyncRounds = 4
	resyncInterval  = 250 * time.Millisecond
)

func nowNS() int64 { return time.Now().UnixNano() }

// WallClockNS returns the local clock corrected onto node 0's clock.
func (n *Node) WallClockNS() int64 { return nowNS() + atomic.LoadInt64(&n.clockOff) }

// ClockOffsetNS returns the current estimate of node 0's clock minus this
// node's clock, in nanoseconds (zero on node 0).
func (n *Node) ClockOffsetNS() int64 { return atomic.LoadInt64(&n.clockOff) }

// observeClockSample folds one NTP-style sample into the offset estimate,
// keeping the estimate from the minimum-RTT sample seen so far.
func (n *Node) observeClockSample(t1, t2, t3, t4 int64) {
	rtt := (t4 - t1) - (t3 - t2)
	if rtt < 0 {
		return
	}
	off := ((t2 - t1) + (t3 - t4)) / 2
	n.clockMu.Lock()
	if n.clockRTT == 0 || rtt < n.clockRTT {
		n.clockRTT = rtt
		atomic.StoreInt64(&n.clockOff, off)
	}
	n.clockMu.Unlock()
}

func encodePong(t1, t2 int64) []byte {
	b := make([]byte, 16)
	putU64(b[0:], uint64(t1))
	putU64(b[8:], uint64(t2))
	return b
}

func decodePong(b []byte) (t1, t2 int64, ok bool) {
	if len(b) != 16 {
		return 0, 0, false
	}
	return int64(getU64(b[0:])), int64(getU64(b[8:])), true
}

// syncClockDial runs the handshake's synchronous ping/pong rounds on a fresh
// mesh connection to node 0 (called by the dialer before the connection's
// reader/writer goroutines are spawned, so it owns the socket exclusively).
func (n *Node) syncClockDial(conn net.Conn) error {
	_ = conn.SetDeadline(time.Now().Add(n.hsTimeout))
	defer conn.SetDeadline(time.Time{})
	for i := 0; i < clockSyncRounds; i++ {
		f := frame{typ: framePing, src: uint32(n.index), sendNS: nowNS()}
		if _, err := conn.Write(f.encode(nil)); err != nil {
			return fmt.Errorf("wire: node %d clock-sync ping to node 0: %w", n.index, err)
		}
		rf, err := readFrame(conn)
		if err != nil || rf.typ != framePong {
			return fmt.Errorf("wire: node %d clock-sync pong from node 0: %v (frame type %d)", n.index, err, rf.typ)
		}
		t4 := nowNS()
		t1, t2, ok := decodePong(rf.payload)
		if !ok {
			return fmt.Errorf("wire: node %d: malformed clock-sync pong", n.index)
		}
		n.observeClockSample(t1, t2, rf.sendNS, t4)
	}
	return nil
}

// answerClockSync serves the dialer's handshake pings on node 0's accept
// side: exactly clockSyncRounds of them, synchronously, before the
// connection joins the mesh.
func answerClockSync(conn net.Conn, index int, timeout time.Duration) error {
	_ = conn.SetDeadline(time.Now().Add(timeout))
	defer conn.SetDeadline(time.Time{})
	for i := 0; i < clockSyncRounds; i++ {
		f, err := readFrame(conn)
		if err != nil || f.typ != framePing {
			return fmt.Errorf("wire: clock sync expected ping: %v (frame type %d)", err, f.typ)
		}
		t2 := nowNS()
		pong := frame{typ: framePong, src: uint32(index), payload: encodePong(f.sendNS, t2), sendNS: nowNS()}
		if _, err := conn.Write(pong.encode(nil)); err != nil {
			return fmt.Errorf("wire: clock sync pong: %w", err)
		}
	}
	return nil
}

// resyncLoop re-pings node 0 periodically so the offset estimate tracks
// clock drift over long runs. Replies are consumed by readLoop. Runs only on
// nodes other than 0; stops at shutdown, abort, or closeAll.
func (n *Node) resyncLoop() {
	t := time.NewTicker(resyncInterval)
	defer t.Stop()
	for {
		select {
		case <-n.resyncStop:
			return
		case <-n.bye:
			return
		case <-n.abortedCh:
			return
		case <-t.C:
			f := frame{typ: framePing, src: uint32(n.index), sendNS: nowNS()}
			n.peers[0].enqueue(f.encode(nil))
		}
	}
}

func (n *Node) stopResync() {
	n.resyncOnce.Do(func() { close(n.resyncStop) })
}

// recordData accounts one received data frame: per-peer frame counter and
// one-way latency histogram (receiver's corrected clock minus the send
// stamp, clamped at zero — the estimate includes the sender's writer-queue
// wait by design).
func (n *Node) recordData(src int, sendNS int64) {
	peerIdx := n.owner[src]
	atomic.AddInt64(&n.recvFrames[peerIdx], 1)
	lat := nowNS() + atomic.LoadInt64(&n.clockOff) - sendNS
	if lat < 0 {
		lat = 0
	}
	atomic.AddInt64(&n.latCounts[peerIdx*telemetry.LatencyBuckets+telemetry.LatencyBucket(lat)], 1)
	atomic.AddInt64(&n.latSums[peerIdx], lat)
}

// recordControl accounts one received control frame (src is a node index).
func (n *Node) recordControl(src int) {
	if src >= 0 && src < len(n.recvFrames) {
		atomic.AddInt64(&n.recvFrames[src], 1)
	}
}

// WireReport snapshots this node's per-peer frame counters, writer-queue
// gauges, latency histograms, and clock offset. The atomics stay readable
// after the world shuts down, so callers can collect the report post-run.
func (n *Node) WireReport() telemetry.WireReport {
	rep := telemetry.WireReport{Offsets: map[int]int64{n.index: atomic.LoadInt64(&n.clockOff)}}
	for j, p := range n.peers {
		pw := telemetry.PeerWire{Node: n.index, Peer: j}
		if p != nil {
			pw.FramesSent, pw.QueueDepth, pw.QueuePeak, pw.Writes = p.stats()
		}
		pw.FramesRecv = atomic.LoadInt64(&n.recvFrames[j])
		pw.OneWay.SumNS = atomic.LoadInt64(&n.latSums[j])
		for i := 0; i < telemetry.LatencyBuckets; i++ {
			pw.OneWay.Counts[i] = atomic.LoadInt64(&n.latCounts[j*telemetry.LatencyBuckets+i])
		}
		rep.Peers = append(rep.Peers, pw)
	}
	return rep
}
