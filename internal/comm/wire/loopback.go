package wire

import (
	"fmt"
	"sync"
)

// LoopbackCluster assembles a ranks-rank world of single-rank nodes inside
// this process, meshed over real sockets: the loopback interface for "tcp",
// a temp-dir socket per node for "unix". Node i hosts world rank i. Every
// frame crosses an actual socket (including self-dials), so a loopback
// world exercises exactly the serialization, framing, and shutdown
// handshake a distributed world would — it is the substrate for the wire
// test suite and for running the engine tests with a socket transport.
func LoopbackCluster(network string, ranks int) ([]*Node, error) {
	if err := checkNetwork(network); err != nil {
		return nil, err
	}
	if ranks <= 0 {
		return nil, fmt.Errorf("wire: cluster size must be positive, got %d", ranks)
	}
	rv, err := StartRendezvous(network, DefaultAddr(network), ranks)
	if err != nil {
		return nil, err
	}
	nodes := make([]*Node, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	wg.Add(ranks)
	for i := 0; i < ranks; i++ {
		go func(i int) {
			defer wg.Done()
			nodes[i], errs[i] = Join(network, rv.Addr(), JoinOptions{Count: 1, WantBase: i})
		}(i)
	}
	wg.Wait()
	if err := rv.Wait(); err != nil {
		for _, n := range nodes {
			if n != nil {
				n.closeAll()
			}
		}
		return nil, err
	}
	for i, jerr := range errs {
		if jerr != nil {
			for _, n := range nodes {
				if n != nil {
					n.closeAll()
				}
			}
			return nil, fmt.Errorf("wire: loopback node %d: %w", i, jerr)
		}
	}
	return nodes, nil
}
