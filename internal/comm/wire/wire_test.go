package wire

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/parres/picprk/internal/comm"
)

// runCluster builds a loopback wire world of p single-rank nodes, runs fn
// on every rank (one World per node, as separate processes would), and
// returns each node's Run error.
func runCluster(t *testing.T, network string, p int, opts comm.Options, fn func(c *comm.Comm) error) []error {
	t.Helper()
	nodes, err := LoopbackCluster(network, p)
	if err != nil {
		t.Fatalf("LoopbackCluster(%s, %d): %v", network, p, err)
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for i, n := range nodes {
		w := comm.NewTransportWorld(n, opts)
		go func(i int, w *comm.World) {
			defer wg.Done()
			errs[i] = w.Run(fn)
		}(i, w)
	}
	wg.Wait()
	return errs
}

// collectiveWorkout drives every collective through a communicator and
// checks the results — shared by the tcp, unix, and chaos tests.
func collectiveWorkout(c *comm.Comm) error {
	p := c.Size()
	r := c.Rank()
	if !c.OnWire() {
		return errors.New("wire world does not report OnWire")
	}
	c.Barrier()

	sum := comm.AllreduceScalar(c, int64(r+1), comm.Sum[int64])
	if want := int64(p * (p + 1) / 2); sum != want {
		return fmt.Errorf("allreduce: got %d, want %d", sum, want)
	}

	got := comm.Allgather(c, r*10)
	for i, v := range got {
		if v != i*10 {
			return fmt.Errorf("allgather[%d]: got %d, want %d", i, v, i*10)
		}
	}

	s := comm.Bcast(c, 0, map[bool]string{true: "from the root"}[r == 0])
	if s != "from the root" {
		return fmt.Errorf("bcast: got %q", s)
	}

	send := make([]float64, p)
	for i := range send {
		send[i] = float64(r*100 + i)
	}
	back := comm.Alltoall(c, send)
	for i, v := range back {
		if want := float64(i*100 + r); v != want {
			return fmt.Errorf("alltoall[%d]: got %v, want %v", i, v, want)
		}
	}

	// Sparse exchange: everyone ships a bucket to rank (r+1)%p.
	buckets := make([][]int64, p)
	buckets[(r+1)%p] = []int64{int64(r), int64(r) * 2}
	in := comm.SparseExchange(c, buckets)
	from := (r - 1 + p) % p
	if from != r {
		if len(in[from]) != 2 || in[from][0] != int64(from) || in[from][1] != int64(from)*2 {
			return fmt.Errorf("sparse exchange from %d: got %v", from, in[from])
		}
	}

	// Split into even/odd ranks and reduce within the subcommunicator.
	sub := c.Split(r%2, r)
	subSum := comm.AllreduceScalar(sub, int64(r), comm.Sum[int64])
	want := int64(0)
	for i := r % 2; i < p; i += 2 {
		want += int64(i)
	}
	if subSum != want {
		return fmt.Errorf("split allreduce: got %d, want %d", subSum, want)
	}

	// Point-to-point FIFO: a burst to the right neighbor on one tag must
	// arrive in send order.
	const burst = 64
	for i := 0; i < burst; i++ {
		c.Send((r+1)%p, 7, r*burst+i)
	}
	for i := 0; i < burst; i++ {
		v, src := c.Recv(from, 7)
		if v.(int) != from*burst+i || src != from {
			return fmt.Errorf("fifo: got %v from %d at position %d", v, src, i)
		}
	}

	if c.TransportBytes() == 0 {
		return errors.New("wire world shipped 0 transport bytes")
	}
	return nil
}

func TestWireCollectivesTCP(t *testing.T) {
	for _, err := range runCluster(t, "tcp", 4, comm.Options{}, collectiveWorkout) {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestWireCollectivesUnix(t *testing.T) {
	for _, err := range runCluster(t, "unix", 3, comm.Options{}, collectiveWorkout) {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// chaosWorkout is the chaos-safe collective chain: under chaos-mode
// delivery delays, only causally self-synchronizing sequences are ordered
// (an Allreduce's reduce phase acks the previous round's bcast; Gather and
// SparseExchange carry per-call sequence tags), so this mirrors what the
// drivers actually do — no back-to-back bare Bcasts, no raw send bursts.
func chaosWorkout(c *comm.Comm) error {
	p := c.Size()
	r := c.Rank()
	if !c.OnWire() {
		return errors.New("wire world does not report OnWire")
	}

	// Split first (as Cart2D does at startup), then reduce within.
	sub := c.Split(r%2, r)
	subSum := comm.AllreduceScalar(sub, int64(r), comm.Sum[int64])
	wantSub := int64(0)
	for i := r % 2; i < p; i += 2 {
		wantSub += int64(i)
	}
	if subSum != wantSub {
		return fmt.Errorf("split allreduce: got %d, want %d", subSum, wantSub)
	}

	for round := 0; round < 10; round++ {
		v := comm.Allreduce(c, []int{r, round}, comm.Sum[int])
		if v[0] != p*(p-1)/2 || v[1] != p*round {
			return fmt.Errorf("allreduce round %d: %v", round, v)
		}
	}
	for round := 0; round < 5; round++ {
		g := comm.Gather(c, 0, r*100+round)
		if r == 0 {
			for i, v := range g {
				if v != i*100+round {
					return fmt.Errorf("gather round %d [%d]: got %d", round, i, v)
				}
			}
		}
	}
	for round := 0; round < 5; round++ {
		buckets := make([][]int64, p)
		buckets[(r+1)%p] = []int64{int64(r), int64(round)}
		in := comm.SparseExchange(c, buckets)
		from := (r - 1 + p) % p
		if from != r && (len(in[from]) != 2 || in[from][0] != int64(from) || in[from][1] != int64(round)) {
			return fmt.Errorf("sparse round %d from %d: got %v", round, from, in[from])
		}
	}

	if c.TransportBytes() == 0 {
		return errors.New("wire world shipped 0 transport bytes")
	}
	return nil
}

// TestWireChaosCollectives layers chaos-mode delayed deliveries above the
// wire transport; World.Run must drain in-flight chaos sends before the
// shutdown handshake so no frame is lost.
func TestWireChaosCollectives(t *testing.T) {
	opts := comm.Options{ChaosDelay: 300 * time.Microsecond, ChaosSeed: 42}
	for _, err := range runCluster(t, "tcp", 4, opts, chaosWorkout) {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestWireAbortPropagation: a failing rank must wake every other process's
// blocked receives and surface the abort from each World.Run.
func TestWireAbortPropagation(t *testing.T) {
	errs := runCluster(t, "tcp", 3, comm.Options{}, func(c *comm.Comm) error {
		if c.Rank() == 2 {
			return errors.New("rank 2 gives up")
		}
		c.Recv(comm.AnySource, 99) // never satisfied; must be woken by the abort
		return nil
	})
	for i, err := range errs {
		if err == nil {
			t.Fatalf("node %d did not observe the abort", i)
		}
	}
}

// TestWireMultiRankNodes: nodes hosting more than one rank each (the
// picrun -ranks N -spawn M shape) mesh and communicate correctly.
func TestWireMultiRankNodes(t *testing.T) {
	const ranks = 4
	rv, err := StartRendezvous("tcp", DefaultAddr("tcp"), ranks)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, 2)
	joinErrs := make([]error, 2)
	var jwg sync.WaitGroup
	jwg.Add(2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			defer jwg.Done()
			want := -1
			if i == 0 {
				want = 0
			}
			nodes[i], joinErrs[i] = Join("tcp", rv.Addr(), JoinOptions{Count: 2, WantBase: want})
		}(i)
	}
	jwg.Wait()
	if err := rv.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, jerr := range joinErrs {
		if jerr != nil {
			t.Fatalf("join %d: %v", i, jerr)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	for i, n := range nodes {
		if got := len(n.LocalRanks()); got != 2 {
			t.Fatalf("node %d hosts %d ranks, want 2", i, got)
		}
		w := comm.NewTransportWorld(n)
		go func(i int, w *comm.World) {
			defer wg.Done()
			errs[i] = w.Run(collectiveWorkout)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
}

func TestWireRejectsBadConfig(t *testing.T) {
	if _, err := StartRendezvous("udp", "127.0.0.1:0", 2); err == nil {
		t.Fatal("rendezvous accepted network udp")
	}
	if _, err := StartRendezvous("tcp", "127.0.0.1:0", 0); err == nil {
		t.Fatal("rendezvous accepted world size 0")
	}
	if _, err := Join("udp", "127.0.0.1:1", JoinOptions{}); err == nil {
		t.Fatal("join accepted network udp")
	}
	if _, err := LoopbackCluster("tcp", 0); err == nil {
		t.Fatal("loopback cluster accepted size 0")
	}
}
