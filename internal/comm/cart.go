package comm

import "fmt"

// Dims2D factors p into a near-square grid px×py with px >= py, preferring
// the divisor pair closest to √p. This mirrors MPI_Dims_create for two
// dimensions and is what the drivers use to lay out the processor grid.
func Dims2D(p int) (px, py int) {
	if p <= 0 {
		panic(fmt.Sprintf("comm: Dims2D of non-positive %d", p))
	}
	best := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			best = d
		}
	}
	return p / best, best
}

// Cart2D is a two-dimensional Cartesian view of a communicator, with the
// x coordinate varying fastest (rank = py*PX... see RankOf). It also carries
// row and column subcommunicators, which the diffusion load balancer uses
// for its per-column and per-row reductions.
type Cart2D struct {
	Comm   *Comm
	PX, PY int
	// CX, CY are this rank's grid coordinates.
	CX, CY int
	// Row contains the ranks with equal CY, ordered by CX.
	// Col contains the ranks with equal CX, ordered by CY.
	Row, Col *Comm
}

// NewCart2D arranges the communicator's ranks in a px×py grid. px*py must
// equal the communicator size. Rank r maps to coordinates
// (r mod px, r div px).
func NewCart2D(c *Comm, px, py int) *Cart2D {
	if px*py != c.Size() {
		panic(fmt.Sprintf("comm: cart %dx%d != size %d", px, py, c.Size()))
	}
	cx := c.Rank() % px
	cy := c.Rank() / px
	cart := &Cart2D{Comm: c, PX: px, PY: py, CX: cx, CY: cy}
	cart.Row = c.Split(cy, cx)
	cart.Col = c.Split(cx, cy)
	return cart
}

// RankOf returns the communicator rank at grid coordinates (cx, cy),
// wrapping periodically in both directions.
func (g *Cart2D) RankOf(cx, cy int) int {
	cx = ((cx % g.PX) + g.PX) % g.PX
	cy = ((cy % g.PY) + g.PY) % g.PY
	return cy*g.PX + cx
}

// Coords returns the grid coordinates of a communicator rank.
func (g *Cart2D) Coords(rank int) (cx, cy int) {
	return rank % g.PX, rank / g.PX
}
