package comm

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []int{1, 2, 3})
		} else {
			data, src := c.Recv(0, 7)
			got := data.([]int)
			if src != 0 || len(got) != 3 || got[2] != 3 {
				return fmt.Errorf("got %v from %d", got, src)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvOrderPerPair(t *testing.T) {
	w := NewWorld(2)
	const n = 100
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 3, i)
			}
			return nil
		}
		for i := 0; i < n; i++ {
			data, _ := c.Recv(0, 3)
			if data.(int) != i {
				return fmt.Errorf("out of order: got %v want %d", data, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTagSelectivity(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, "first-tag1")
			c.Send(1, 2, "tag2")
			c.Send(1, 1, "second-tag1")
			return nil
		}
		// Receive tag 2 first even though it arrived between tag-1 messages.
		d2, _ := c.Recv(0, 2)
		d1a, _ := c.Recv(0, 1)
		d1b, _ := c.Recv(0, 1)
		if d2 != "tag2" || d1a != "first-tag1" || d1b != "second-tag1" {
			return fmt.Errorf("got %v %v %v", d2, d1a, d1b)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySource(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			c.Send(0, 5, c.Rank())
			return nil
		}
		seen := map[int]bool{}
		for i := 0; i < 3; i++ {
			data, src := c.Recv(AnySource, 5)
			if data.(int) != src {
				return fmt.Errorf("payload %v from src %d", data, src)
			}
			seen[src] = true
		}
		if len(seen) != 3 {
			return fmt.Errorf("expected 3 distinct sources, saw %v", seen)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestErrorAbortsWorld(t *testing.T) {
	w := NewWorld(3, Options{RecvTimeout: 5 * time.Second})
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return errors.New("boom")
		}
		// Other ranks block forever; abort must wake them.
		c.Recv(AnySource, 99)
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestPanicIsCaptured(t *testing.T) {
	w := NewWorld(2, Options{RecvTimeout: 5 * time.Second})
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			panic("deliberate")
		}
		c.Recv(0, 1)
		return nil
	})
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestRecvTimeout(t *testing.T) {
	w := NewWorld(1, Options{RecvTimeout: 200 * time.Millisecond})
	start := time.Now()
	err := w.Run(func(c *Comm) error {
		c.Recv(0, 1)
		return nil
	})
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout took too long")
	}
}

func testSizes() []int { return []int{1, 2, 3, 4, 5, 7, 8, 16} }

func TestBarrier(t *testing.T) {
	for _, p := range testSizes() {
		var phase atomic.Int64
		w := NewWorld(p)
		err := w.Run(func(c *Comm) error {
			for round := 0; round < 5; round++ {
				phase.Add(1)
				c.Barrier()
				// After the barrier, every rank must have contributed to
				// this round.
				if got := phase.Load(); got < int64((round+1)*p) {
					return fmt.Errorf("p=%d round %d: phase %d < %d", p, round, got, (round+1)*p)
				}
				c.Barrier()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestBcast(t *testing.T) {
	for _, p := range testSizes() {
		for root := 0; root < p; root += 3 {
			w := NewWorld(p)
			err := w.Run(func(c *Comm) error {
				var v string
				if c.Rank() == root {
					v = fmt.Sprintf("hello-%d", root)
				}
				got := Bcast(c, root, v)
				if got != fmt.Sprintf("hello-%d", root) {
					return fmt.Errorf("rank %d got %q", c.Rank(), got)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestAllreduceSumAndMax(t *testing.T) {
	for _, p := range testSizes() {
		w := NewWorld(p)
		err := w.Run(func(c *Comm) error {
			sum := Allreduce(c, []int64{int64(c.Rank()), 1}, Sum[int64])
			wantSum := int64(p*(p-1)) / 2
			if sum[0] != wantSum || sum[1] != int64(p) {
				return fmt.Errorf("sum %v, want [%d %d]", sum, wantSum, p)
			}
			mx := AllreduceScalar(c, float64(c.Rank()), Max[float64])
			if mx != float64(p-1) {
				return fmt.Errorf("max %v, want %d", mx, p-1)
			}
			mn := AllreduceScalar(c, c.Rank()+10, Min[int])
			if mn != 10 {
				return fmt.Errorf("min %v, want 10", mn)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestGatherAllgather(t *testing.T) {
	for _, p := range testSizes() {
		w := NewWorld(p)
		err := w.Run(func(c *Comm) error {
			got := Allgather(c, c.Rank()*c.Rank())
			if len(got) != p {
				return fmt.Errorf("allgather length %d", len(got))
			}
			for i, v := range got {
				if v != i*i {
					return fmt.Errorf("allgather[%d]=%d", i, v)
				}
			}
			g := Gather(c, 0, c.Rank()+1)
			if c.Rank() == 0 {
				for i, v := range g {
					if v != i+1 {
						return fmt.Errorf("gather[%d]=%d", i, v)
					}
				}
			} else if g != nil {
				return fmt.Errorf("non-root gather returned %v", g)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestConsecutiveGathersDoNotMix(t *testing.T) {
	// A non-root rank races through two gathers of different types before
	// the root finishes the first; sequence-numbered tags must keep them
	// apart (regression: the drivers gather particles then stats).
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		for round := 0; round < 50; round++ {
			a := Gather(c, 0, fmt.Sprintf("s-%d-%d", round, c.Rank()))
			b := Gather(c, 0, round*100+c.Rank())
			if c.Rank() == 0 {
				for i := 0; i < 4; i++ {
					if a[i] != fmt.Sprintf("s-%d-%d", round, i) {
						return fmt.Errorf("round %d: string gather got %q", round, a[i])
					}
					if b[i] != round*100+i {
						return fmt.Errorf("round %d: int gather got %d", round, b[i])
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	for _, p := range testSizes() {
		w := NewWorld(p)
		err := w.Run(func(c *Comm) error {
			send := make([]int, p)
			for i := range send {
				send[i] = c.Rank()*1000 + i
			}
			got := Alltoall(c, send)
			for src, v := range got {
				if v != src*1000+c.Rank() {
					return fmt.Errorf("from %d got %d", src, v)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestSparseExchange(t *testing.T) {
	for _, p := range testSizes() {
		w := NewWorld(p)
		err := w.Run(func(c *Comm) error {
			// Each rank sends to rank+1 and rank+2 (mod p), skipping self.
			buckets := make([][]int, p)
			for d := 1; d <= 2; d++ {
				dst := (c.Rank() + d) % p
				if dst != c.Rank() {
					buckets[dst] = append(buckets[dst], c.Rank()*10+d)
				}
			}
			got := SparseExchange(c, buckets)
			for d := 1; d <= 2; d++ {
				src := (c.Rank() - d + p) % p
				if src == c.Rank() {
					continue
				}
				found := false
				for _, v := range got[src] {
					if v == src*10+d {
						found = true
					}
				}
				if !found {
					return fmt.Errorf("p=%d rank %d missing value from %d: %v", p, c.Rank(), src, got[src])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSparseExchangeConsecutiveCallsDoNotMix(t *testing.T) {
	// Rank 1 races ahead to the second exchange while rank 0 is slow; the
	// per-call tag sequence must keep the rounds separate.
	w := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		p := c.Size()
		for round := 0; round < 20; round++ {
			buckets := make([][]int, p)
			for dst := 0; dst < p; dst++ {
				if dst != c.Rank() {
					buckets[dst] = []int{round*100 + c.Rank()}
				}
			}
			got := SparseExchange(c, buckets)
			for src := 0; src < p; src++ {
				if src == c.Rank() {
					continue
				}
				if len(got[src]) != 1 || got[src][0] != round*100+src {
					return fmt.Errorf("round %d rank %d: from %d got %v", round, c.Rank(), src, got[src])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplit(t *testing.T) {
	w := NewWorld(8)
	err := w.Run(func(c *Comm) error {
		// Even/odd split, ordered by descending world rank via key.
		sub := c.Split(c.Rank()%2, -c.Rank())
		if sub.Size() != 4 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		// Highest world rank gets sub-rank 0.
		got := Allgather(sub, c.Rank())
		for i := 1; i < len(got); i++ {
			if got[i] > got[i-1] {
				return fmt.Errorf("expected descending ranks, got %v", got)
			}
		}
		// Collectives on the subcommunicator must not leak across colors.
		sum := AllreduceScalar(sub, c.Rank(), Sum[int])
		want := 0 + 2 + 4 + 6
		if c.Rank()%2 == 1 {
			want = 1 + 3 + 5 + 7
		}
		if sum != want {
			return fmt.Errorf("rank %d sub sum %d want %d", c.Rank(), sum, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitNegativeColor(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		color := c.Rank() % 2
		if c.Rank() == 3 {
			color = -1
		}
		sub := c.Split(color, c.Rank())
		if c.Rank() == 3 {
			if sub != nil {
				return errors.New("negative color should yield nil comm")
			}
			return nil
		}
		if sub == nil {
			return errors.New("unexpected nil comm")
		}
		sub.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCart2D(t *testing.T) {
	px, py := Dims2D(12)
	if px*py != 12 || px < py {
		t.Fatalf("Dims2D(12) = %d,%d", px, py)
	}
	w := NewWorld(12)
	err := w.Run(func(c *Comm) error {
		g := NewCart2D(c, px, py)
		if g.RankOf(g.CX, g.CY) != c.Rank() {
			return fmt.Errorf("roundtrip failed for rank %d", c.Rank())
		}
		cx, cy := g.Coords(c.Rank())
		if cx != g.CX || cy != g.CY {
			return fmt.Errorf("coords mismatch")
		}
		// Row communicator must contain PX ranks with my CY.
		if g.Row.Size() != g.PX || g.Col.Size() != g.PY {
			return fmt.Errorf("row/col sizes %d/%d", g.Row.Size(), g.Col.Size())
		}
		// Periodic wrap.
		if g.RankOf(-1, g.CY) != g.RankOf(g.PX-1, g.CY) {
			return fmt.Errorf("periodic wrap broken")
		}
		// Sum of CX along a row is 0+1+..+PX-1.
		s := AllreduceScalar(g.Row, g.CX, Sum[int])
		if s != g.PX*(g.PX-1)/2 {
			return fmt.Errorf("row sum %d", s)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDims2D(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 2: {2, 1}, 4: {2, 2}, 6: {3, 2}, 12: {4, 3},
		24: {6, 4}, 36: {6, 6}, 48: {8, 6}, 7: {7, 1}, 384: {24, 16},
	}
	for p, want := range cases {
		px, py := Dims2D(p)
		if px != want[0] || py != want[1] {
			t.Errorf("Dims2D(%d) = %d,%d want %v", p, px, py, want)
		}
	}
}

func TestChaosDelayStillCorrect(t *testing.T) {
	w := NewWorld(4, Options{ChaosDelay: 2 * time.Millisecond, ChaosSeed: 42})
	err := w.Run(func(c *Comm) error {
		for round := 0; round < 10; round++ {
			v := Allreduce(c, []int{c.Rank(), round}, Sum[int])
			if v[0] != 6 || v[1] != 4*round {
				return fmt.Errorf("round %d: %v", round, v)
			}
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestChaosDeliveriesDrainedBeforeRunReturns pins the in-flight tracking of
// chaos-mode sends: rank 0 fires delayed sends at rank 1 and exits without
// rank 1 receiving them. Every delivery must nonetheless have landed in
// rank 1's inbox by the time Run returns — no delivery goroutine may outlive
// the world.
func TestChaosDeliveriesDrainedBeforeRunReturns(t *testing.T) {
	const n = 50
	w := NewWorld(2, Options{ChaosDelay: 5 * time.Millisecond, ChaosSeed: 7})
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 0, i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ib := w.inboxes[1]
	ib.mu.Lock()
	got := len(ib.pending)
	ib.mu.Unlock()
	if got != n {
		t.Fatalf("after Run: %d of %d chaos sends delivered to rank 1's inbox", got, n)
	}
}

func BenchmarkPingPong(b *testing.B) {
	w := NewWorld(2, Options{RecvTimeout: -1})
	b.ResetTimer()
	_ = w.Run(func(c *Comm) error {
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				c.Send(1, 0, i)
				c.Recv(1, 1)
			} else {
				c.Recv(0, 0)
				c.Send(0, 1, i)
			}
		}
		return nil
	})
}

func BenchmarkAllreduce16(b *testing.B) {
	w := NewWorld(16, Options{RecvTimeout: -1})
	b.ResetTimer()
	_ = w.Run(func(c *Comm) error {
		v := []int64{int64(c.Rank())}
		for i := 0; i < b.N; i++ {
			Allreduce(c, v, Sum[int64])
		}
		return nil
	})
}
