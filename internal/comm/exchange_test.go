package comm

import (
	"fmt"
	"testing"
	"time"
)

func TestExchangePtrBasic(t *testing.T) {
	type payload struct{ Src, Dst int }
	for _, p := range testSizes() {
		w := NewWorld(p)
		err := w.Run(func(c *Comm) error {
			send := make([]*payload, p)
			recv := make([]*payload, p)
			for dst := 0; dst < p; dst++ {
				send[dst] = &payload{Src: c.Rank(), Dst: dst}
			}
			ExchangePtr(c, send, recv)
			for src := 0; src < p; src++ {
				pc := recv[src]
				if pc == nil || pc.Src != src || pc.Dst != c.Rank() {
					return fmt.Errorf("p=%d rank %d from %d: %+v", p, c.Rank(), src, pc)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestExchangePtrNilPayloads(t *testing.T) {
	// A nil pointer is a legal "nothing for you" payload and must arrive as
	// nil, not panic or block (the ring still sends it).
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		p := c.Size()
		send := make([]*int, p)
		recv := make([]*int, p)
		v := c.Rank() * 11
		// Send a value only to rank+1; everyone else gets nil.
		send[(c.Rank()+1)%p] = &v
		ExchangePtr(c, send, recv)
		prev := (c.Rank() - 1 + p) % p
		for src := 0; src < p; src++ {
			if src == c.Rank() {
				continue
			}
			if src == prev {
				if recv[src] == nil || *recv[src] != src*11 {
					return fmt.Errorf("rank %d: bad payload from %d", c.Rank(), src)
				}
			} else if recv[src] != nil {
				return fmt.Errorf("rank %d: unexpected payload from %d", c.Rank(), src)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangePtrConsecutiveCallsDoNotMix(t *testing.T) {
	// Ranks race through many back-to-back exchanges; the per-call tag
	// sequence must keep the rounds separate even when one rank runs ahead.
	w := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		p := c.Size()
		send := make([]*int, p)
		recv := make([]*int, p)
		for round := 0; round < 20; round++ {
			vals := make([]int, p)
			for dst := 0; dst < p; dst++ {
				vals[dst] = round*100 + c.Rank()
				send[dst] = &vals[dst]
			}
			ExchangePtr(c, send, recv)
			for src := 0; src < p; src++ {
				if src == c.Rank() {
					continue
				}
				if recv[src] == nil || *recv[src] != round*100+src {
					return fmt.Errorf("round %d rank %d: from %d got %v", round, c.Rank(), src, recv[src])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExchangePtrChaosBufferReuse is the columnar exchange's ordering and
// ownership stress: chaos-mode delivery delays every message independently
// (so consecutive calls' messages can arrive reordered), while the payload
// storage alternates between two reused generations exactly like the
// drivers' double-buffered shards. Every round must still observe its own
// round's values — under -race this also proves no receiver reads a buffer
// while its owner refills it.
func TestExchangePtrChaosBufferReuse(t *testing.T) {
	const rounds = 30
	w := NewWorld(4, Options{ChaosDelay: 2 * time.Millisecond, ChaosSeed: 99})
	err := w.Run(func(c *Comm) error {
		p := c.Size()
		var gens [2][]int
		for g := range gens {
			gens[g] = make([]int, p)
		}
		send := make([]*int, p)
		recv := make([]*int, p)
		for round := 0; round < rounds; round++ {
			buf := gens[round%2]
			for dst := 0; dst < p; dst++ {
				buf[dst] = round*1000 + c.Rank()*10 + dst
				if dst == c.Rank() || (round+dst)%3 == 0 {
					send[dst] = nil // sparse rounds: some peers get nothing
					continue
				}
				send[dst] = &buf[dst]
			}
			ExchangePtr(c, send, recv)
			for src := 0; src < p; src++ {
				if src == c.Rank() {
					continue
				}
				if (round+c.Rank())%3 == 0 {
					if recv[src] != nil {
						return fmt.Errorf("round %d rank %d: unexpected payload from %d", round, c.Rank(), src)
					}
					continue
				}
				want := round*1000 + src*10 + c.Rank()
				if recv[src] == nil || *recv[src] != want {
					return fmt.Errorf("round %d rank %d: from %d got %v, want %d", round, c.Rank(), src, recv[src], want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
