package ampi

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/pup"
)

// toyVP is a minimal migratable unit: an id plus a payload whose length is
// its load.
type toyVP struct {
	id      int
	payload []float64
	gen     int
}

func (v *toyVP) VPID() int     { return v.id }
func (v *toyVP) Load() float64 { return float64(len(v.payload)) }
func (v *toyVP) PUP(p *pup.PUPer) {
	p.Int(&v.id)
	p.Int(&v.gen)
	p.Float64s(&v.payload)
}

func newToy(id, load int) *toyVP {
	payload := make([]float64, load)
	for i := range payload {
		payload[i] = float64(id*1000 + i)
	}
	return &toyVP{id: id, payload: payload}
}

func TestGreedyLBBalances(t *testing.T) {
	loads := []float64{100, 1, 1, 1, 50, 50, 2, 3}
	owner := []int{0, 0, 0, 0, 0, 0, 0, 0}
	newOwner := GreedyLB{}.Plan(loads, owner, 4)
	if len(newOwner) != 8 {
		t.Fatalf("plan length %d", len(newOwner))
	}
	// The heaviest VP must sit alone-ish: max core load should be 100.
	if m := MaxCoreLoad(loads, newOwner, 4); m != 100 {
		t.Errorf("greedy max core load %v, want 100", m)
	}
}

func TestGreedyLBDeterministicUnderTies(t *testing.T) {
	loads := []float64{5, 5, 5, 5, 5, 5}
	owner := make([]int, 6)
	a := GreedyLB{}.Plan(loads, owner, 3)
	b := GreedyLB{}.Plan(loads, owner, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("greedy plan not deterministic")
		}
	}
}

func TestRefineLBImprovesWithoutFullReshuffle(t *testing.T) {
	// Core 0 hosts everything; refine should shed load but touch few VPs.
	n := 16
	loads := make([]float64, n)
	owner := make([]int, n)
	for i := range loads {
		loads[i] = float64(10 + i)
	}
	newOwner := RefineLB{}.Plan(loads, owner, 4)
	before := MaxCoreLoad(loads, owner, 4)
	after := MaxCoreLoad(loads, newOwner, 4)
	if after >= before {
		t.Fatalf("refine did not improve: %v -> %v", before, after)
	}
	var total float64
	for _, l := range loads {
		total += l
	}
	if after > total/4*1.3 {
		t.Errorf("refine max load %v far from ideal %v", after, total/4)
	}
}

func TestRefineLBKeepsBalancedPlacement(t *testing.T) {
	loads := []float64{10, 10, 10, 10}
	owner := []int{0, 1, 2, 3}
	newOwner := RefineLB{}.Plan(loads, owner, 4)
	if Moves(owner, newOwner) != 0 {
		t.Errorf("refine moved VPs in a perfectly balanced placement: %v", newOwner)
	}
}

func TestRefineLBRespectsMaxMoves(t *testing.T) {
	n := 32
	loads := make([]float64, n)
	owner := make([]int, n)
	for i := range loads {
		loads[i] = 1
	}
	newOwner := RefineLB{MaxMoves: 3}.Plan(loads, owner, 8)
	if m := Moves(owner, newOwner); m > 3 {
		t.Errorf("refine made %d moves, cap was 3", m)
	}
}

func TestRotateAndNull(t *testing.T) {
	owner := []int{0, 1, 2}
	if m := Moves(owner, (NullLB{}).Plan(nil, owner, 3)); m != 0 {
		t.Errorf("null moved %d", m)
	}
	rot := (RotateLB{}).Plan(nil, owner, 3)
	want := []int{1, 2, 0}
	for i := range rot {
		if rot[i] != want[i] {
			t.Errorf("rotate = %v, want %v", rot, want)
		}
	}
}

func TestStrategiesProperty(t *testing.T) {
	// Every strategy must return a valid owner vector and (for greedy and
	// refine) never worsen the maximum core load.
	f := func(rawLoads []uint16, ncoresRaw uint8) bool {
		if len(rawLoads) == 0 {
			return true
		}
		ncores := int(ncoresRaw%7) + 1
		loads := make([]float64, len(rawLoads))
		owner := make([]int, len(rawLoads))
		for i, r := range rawLoads {
			loads[i] = float64(r % 1000)
			owner[i] = i % ncores
		}
		before := MaxCoreLoad(loads, owner, ncores)
		var total, maxItem float64
		for _, l := range loads {
			total += l
			if l > maxItem {
				maxItem = l
			}
		}
		// List-scheduling guarantee: when the last VP lands on the least
		// loaded core, that core held at most the average, so the makespan
		// is bounded by avg + maxItem. (The tighter 4/3·OPT bound needs the
		// NP-hard OPT.)
		bound := total/float64(ncores) + maxItem
		h := &HintedGreedyLB{}
		h.SetTopology(GridNeighbors(len(loads), 1), 2)
		for _, s := range []Strategy{NullLB{}, RotateLB{}, GreedyLB{}, RefineLB{}, WorkStealLB{}, h} {
			got := s.Plan(loads, owner, ncores)
			if len(got) != len(owner) {
				return false
			}
			for _, c := range got {
				if c < 0 || c >= ncores {
					return false
				}
			}
			switch s.(type) {
			case RefineLB, WorkStealLB:
				// Incremental strategies never worsen the maximum.
				if MaxCoreLoad(loads, got, ncores) > before+1e-9 {
					return false
				}
			case GreedyLB:
				if MaxCoreLoad(loads, got, ncores) > bound+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func runtimeWorld(t *testing.T, p, nvp int, fn func(rt *Runtime, c *comm.Comm) error) {
	t.Helper()
	w := comm.NewWorld(p)
	err := w.Run(func(c *comm.Comm) error {
		place := func(vp int) int { return vp % p }
		rt, err := NewRuntime(c, nvp,
			place,
			func(vp int) VP { return newToy(vp, (vp+1)*10) },
			func() VP { return &toyVP{} })
		if err != nil {
			return err
		}
		return fn(rt, c)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeInitialPlacement(t *testing.T) {
	runtimeWorld(t, 4, 16, func(rt *Runtime, c *comm.Comm) error {
		ids := rt.LocalIDs()
		if len(ids) != 4 {
			return fmt.Errorf("core %d hosts %d VPs", c.Rank(), len(ids))
		}
		for _, id := range ids {
			if id%4 != c.Rank() {
				return fmt.Errorf("VP %d on wrong core %d", id, c.Rank())
			}
			if rt.Local(id) == nil || rt.Location(id) != c.Rank() {
				return fmt.Errorf("inconsistent tables for VP %d", id)
			}
		}
		return nil
	})
}

func TestRuntimeMigrationPreservesState(t *testing.T) {
	runtimeWorld(t, 3, 9, func(rt *Runtime, c *comm.Comm) error {
		// Mutate local VPs so migrated state is distinguishable from
		// freshly-built state.
		rt.ForEach(func(vp VP) { vp.(*toyVP).gen = 7 })
		moves, err := rt.LoadBalance(RotateLB{})
		if err != nil {
			return err
		}
		if moves != 9 {
			return fmt.Errorf("rotate moved %d of 9", moves)
		}
		// Every core still hosts 3 VPs, now the previous core's set, with
		// mutated state intact.
		ids := rt.LocalIDs()
		if len(ids) != 3 {
			return fmt.Errorf("core %d hosts %d after rotate", c.Rank(), len(ids))
		}
		prev := (c.Rank() - 1 + 3) % 3
		for _, id := range ids {
			if id%3 != prev {
				return fmt.Errorf("VP %d should not be on core %d", id, c.Rank())
			}
			v := rt.Local(id).(*toyVP)
			if v.gen != 7 {
				return fmt.Errorf("VP %d lost state in migration", id)
			}
			if len(v.payload) != (id+1)*10 || v.payload[0] != float64(id*1000) {
				return fmt.Errorf("VP %d payload corrupted", id)
			}
		}
		if rt.Stats.VPsSent != 3 || rt.Stats.VPsReceived != 3 || rt.Stats.LBInvocations != 1 {
			return fmt.Errorf("stats %+v", rt.Stats)
		}
		return nil
	})
}

func TestRuntimeGreedyConvergesLoad(t *testing.T) {
	// All load initially concentrated modulo placement; greedy must spread
	// it so cores end up within 2x of ideal.
	const P, NVP = 4, 32
	w := comm.NewWorld(P)
	err := w.Run(func(c *comm.Comm) error {
		rt, err := NewRuntime(c, NVP,
			func(vp int) int { return 0 }, // everything starts on core 0
			func(vp int) VP { return newToy(vp, 10+vp) },
			func() VP { return &toyVP{} })
		if err != nil {
			return err
		}
		if _, err := rt.LoadBalance(GreedyLB{}); err != nil {
			return err
		}
		var local float64
		rt.ForEach(func(vp VP) { local += vp.Load() })
		max := comm.AllreduceScalar(c, local, comm.Max[float64])
		var total float64
		for vp := 0; vp < NVP; vp++ {
			total += float64(10 + vp)
		}
		if max > total/P*1.5 {
			return fmt.Errorf("max core load %v after greedy, ideal %v", max, total/P)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeRepeatedLBRounds(t *testing.T) {
	runtimeWorld(t, 4, 16, func(rt *Runtime, c *comm.Comm) error {
		for round := 0; round < 10; round++ {
			if _, err := rt.LoadBalance(RotateLB{}); err != nil {
				return err
			}
			// Location table must stay globally consistent: the sum of
			// local VP counts is NVP and sorted local ids match the table.
			n := comm.AllreduceScalar(c, len(rt.LocalIDs()), comm.Sum[int])
			if n != 16 {
				return fmt.Errorf("round %d: %d VPs total", round, n)
			}
			for _, id := range rt.LocalIDs() {
				if rt.Location(id) != c.Rank() {
					return fmt.Errorf("round %d: table disagrees for VP %d", round, id)
				}
			}
		}
		return nil
	})
}

func TestBlockPlacement(t *testing.T) {
	place, err := BlockPlacement(8, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// VP grid 8x4 on core grid 4x2: blocks of 2x2 VPs per core.
	counts := map[int]int{}
	for vp := 0; vp < 32; vp++ {
		counts[place(vp)]++
	}
	if len(counts) != 8 {
		t.Fatalf("placement uses %d cores", len(counts))
	}
	for c, n := range counts {
		if n != 4 {
			t.Errorf("core %d hosts %d VPs", c, n)
		}
	}
	// Compactness: VPs 0,1 (adjacent in x) share a core; 0 and 2 do not.
	if place(0) != place(1) || place(0) == place(2) {
		t.Errorf("placement not blocked: %d %d %d", place(0), place(1), place(2))
	}
	if _, err := BlockPlacement(7, 4, 4, 2); err == nil {
		t.Error("indivisible grid accepted")
	}
}

func TestMaxCoreLoadAndMoves(t *testing.T) {
	loads := []float64{1, 2, 3}
	owner := []int{0, 0, 1}
	if m := MaxCoreLoad(loads, owner, 2); m != 3 {
		t.Errorf("MaxCoreLoad = %v", m)
	}
	if m := Moves([]int{0, 1, 2}, []int{0, 2, 2}); m != 1 {
		t.Errorf("Moves = %d", m)
	}
}

func TestRefineHalvesGap(t *testing.T) {
	// Two cores, gap 100, one VP of load 50 on the heavy core: refine
	// should move exactly that VP and equalize.
	loads := []float64{50, 25, 25, 50}
	owner := []int{0, 0, 0, 1}
	newOwner := RefineLB{}.Plan(loads, owner, 2)
	after := MaxCoreLoad(loads, newOwner, 2)
	if math.Abs(after-75) > 1e-9 {
		t.Errorf("refine max %v, want 75", after)
	}
	if Moves(owner, newOwner) > 2 {
		t.Errorf("refine used %d moves", Moves(owner, newOwner))
	}
}

func TestLocalIDsSorted(t *testing.T) {
	runtimeWorld(t, 2, 10, func(rt *Runtime, c *comm.Comm) error {
		ids := rt.LocalIDs()
		if !sort.IntsAreSorted(ids) {
			return fmt.Errorf("ids not sorted: %v", ids)
		}
		order := []int{}
		rt.ForEach(func(vp VP) { order = append(order, vp.VPID()) })
		if !sort.IntsAreSorted(order) {
			return fmt.Errorf("ForEach order not sorted: %v", order)
		}
		return nil
	})
}
