package ampi

import "sort"

// TopologyAware is implemented by strategies that want the application's
// VP adjacency and the machine's node granularity before planning. The
// paper's §V-B closes by noting that a runtime balancer cannot preserve
// subdomain compactness "unless it is properly hinted" — this interface is
// that hint.
type TopologyAware interface {
	// SetTopology provides, for every VP, the ids of its spatial neighbor
	// VPs, and the number of cores per node.
	SetTopology(neighbors [][]int, coresPerNode int)
}

// HintedGreedyLB is GreedyLB with a locality hint: among cores whose load
// is within Slack of the least-loaded candidate, it prefers the core on the
// node that already hosts the most spatial neighbors of the VP being
// placed. Balance quality stays greedy-class while subdomain fragmentation
// — and with it the inter-node boundary traffic the paper blames for the
// AMPI strong-scaling gap — is greatly reduced.
type HintedGreedyLB struct {
	// Slack is the relative load headroom within which locality may
	// override pure load order (default 0.05).
	Slack float64

	neighbors    [][]int
	coresPerNode int
}

// Name implements Strategy.
func (h *HintedGreedyLB) Name() string { return "HintedGreedyLB" }

// SetTopology implements TopologyAware.
func (h *HintedGreedyLB) SetTopology(neighbors [][]int, coresPerNode int) {
	h.neighbors = neighbors
	h.coresPerNode = coresPerNode
}

// Plan implements Strategy.
func (h *HintedGreedyLB) Plan(loads []float64, owner []int, ncores int) []int {
	slack := h.Slack
	if slack <= 0 {
		slack = 0.05
	}
	cpn := h.coresPerNode
	if cpn <= 0 {
		cpn = 1
	}
	order := make([]int, len(loads))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if loads[order[a]] != loads[order[b]] {
			return loads[order[a]] > loads[order[b]]
		}
		return order[a] < order[b]
	})

	coreLoad := make([]float64, ncores)
	out := make([]int, len(loads))
	for i := range out {
		out[i] = -1
	}
	var total float64
	for _, l := range loads {
		total += l
	}

	for _, vp := range order {
		// The least-loaded core sets the baseline; any core within the
		// slack band is an acceptable candidate.
		min := coreLoad[0]
		for _, l := range coreLoad[1:] {
			if l < min {
				min = l
			}
		}
		band := min + slack*total/float64(ncores)
		best := -1
		bestAffinity := -1
		for c := 0; c < ncores; c++ {
			if coreLoad[c] > band {
				continue
			}
			aff := h.affinity(vp, c, out, cpn, owner)
			// Prefer higher affinity; break ties by lower load, then core id.
			if best == -1 || aff > bestAffinity ||
				(aff == bestAffinity && coreLoad[c] < coreLoad[best]) ||
				(aff == bestAffinity && coreLoad[c] == coreLoad[best] && c < best) {
				best = c
				bestAffinity = aff
			}
		}
		out[vp] = best
		coreLoad[best] += loads[vp]
	}
	return out
}

// affinity counts how many of the VP's spatial neighbors are (or were) on
// the candidate core's node: already-placed neighbors count double (they
// are certain), previous-owner placements count once (likely to stay).
func (h *HintedGreedyLB) affinity(vp, core int, placed []int, cpn int, owner []int) int {
	if h.neighbors == nil || vp >= len(h.neighbors) {
		return 0
	}
	node := core / cpn
	aff := 0
	for _, nb := range h.neighbors[vp] {
		if p := placed[nb]; p >= 0 {
			if p/cpn == node {
				aff += 2
			}
		} else if owner[nb]/cpn == node {
			aff++
		}
	}
	return aff
}

// GridNeighbors builds the 4-neighbor adjacency of a vx×vy VP grid with
// periodic wrap, the topology hint for the PIC PRK's spatial decomposition.
func GridNeighbors(vx, vy int) [][]int {
	out := make([][]int, vx*vy)
	for j := 0; j < vy; j++ {
		for i := 0; i < vx; i++ {
			vp := j*vx + i
			out[vp] = []int{
				j*vx + (i+1)%vx,
				j*vx + (i-1+vx)%vx,
				((j+1)%vy)*vx + i,
				((j-1+vy)%vy)*vx + i,
			}
		}
	}
	return out
}

// Fragmentation measures the locality damage of an assignment: the fraction
// of VP neighbor pairs that live on different nodes. 0 means perfectly
// compact; a random assignment approaches 1 - 1/nodes.
func Fragmentation(neighbors [][]int, owner []int, coresPerNode, ncores int) float64 {
	if coresPerNode <= 0 {
		coresPerNode = 1
	}
	pairs, split := 0, 0
	for vp, nbs := range neighbors {
		for _, nb := range nbs {
			if nb <= vp {
				continue // count each undirected pair once
			}
			pairs++
			if owner[vp]/coresPerNode != owner[nb]/coresPerNode {
				split++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(split) / float64(pairs)
}
