package ampi

import (
	"testing"
)

func TestGridNeighbors(t *testing.T) {
	nbs := GridNeighbors(4, 3)
	if len(nbs) != 12 {
		t.Fatalf("%d entries", len(nbs))
	}
	// VP 5 = (1,1): neighbors (2,1)=6, (0,1)=4, (1,2)=9, (1,0)=1.
	want := map[int]bool{6: true, 4: true, 9: true, 1: true}
	for _, nb := range nbs[5] {
		if !want[nb] {
			t.Errorf("unexpected neighbor %d of VP 5", nb)
		}
		delete(want, nb)
	}
	if len(want) != 0 {
		t.Errorf("missing neighbors %v", want)
	}
	// Periodic wrap: VP 0 = (0,0) has left neighbor (3,0)=3 and down (0,2)=8.
	hasWrap := false
	for _, nb := range nbs[0] {
		if nb == 3 || nb == 8 {
			hasWrap = true
		}
	}
	if !hasWrap {
		t.Error("periodic wrap missing")
	}
}

func TestFragmentationExtremes(t *testing.T) {
	nbs := GridNeighbors(8, 4)
	// Block placement on a 4-core, 1-node-per-2-cores machine: compact.
	place, err := BlockPlacement(8, 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	owner := make([]int, 32)
	for vp := range owner {
		owner[vp] = place(vp)
	}
	compact := Fragmentation(nbs, owner, 2, 4)
	// Round-robin placement: maximally scattered.
	scattered := make([]int, 32)
	for vp := range scattered {
		scattered[vp] = vp % 4
	}
	frag := Fragmentation(nbs, scattered, 2, 4)
	if compact >= frag {
		t.Errorf("compact %v not below scattered %v", compact, frag)
	}
	if compact < 0 || frag > 1 {
		t.Errorf("fragmentation out of range: %v %v", compact, frag)
	}
	// Everything on one node: zero.
	same := make([]int, 32)
	if f := Fragmentation(nbs, same, 2, 4); f != 0 {
		t.Errorf("single-node fragmentation %v", f)
	}
}

func TestHintedGreedyBalancesLikeGreedy(t *testing.T) {
	loads := make([]float64, 64)
	owner := make([]int, 64)
	for i := range loads {
		loads[i] = float64(1 + i%7)
		owner[i] = i % 8
	}
	h := &HintedGreedyLB{}
	h.SetTopology(GridNeighbors(8, 8), 4)
	got := h.Plan(loads, owner, 8)
	if len(got) != 64 {
		t.Fatalf("plan length %d", len(got))
	}
	greedy := GreedyLB{}.Plan(loads, owner, 8)
	hMax := MaxCoreLoad(loads, got, 8)
	gMax := MaxCoreLoad(loads, greedy, 8)
	// Within the slack band of the greedy optimum.
	if hMax > gMax*1.15 {
		t.Errorf("hinted max load %v too far above greedy %v", hMax, gMax)
	}
}

func TestHintedGreedyReducesFragmentation(t *testing.T) {
	// A skewed load on a 16x8 VP grid over 16 cores (4 nodes of 4): hinted
	// placement must fragment the domain less than plain greedy at similar
	// balance.
	const vx, vy, ncores, cpn = 16, 8, 16, 4
	nbs := GridNeighbors(vx, vy)
	loads := make([]float64, vx*vy)
	owner := make([]int, vx*vy)
	place, err := BlockPlacement(vx, vy, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for vp := range loads {
		loads[vp] = float64(1 + (vp%vx)*(vp%vx)) // skewed in x
		owner[vp] = place(vp)
	}
	h := &HintedGreedyLB{}
	h.SetTopology(nbs, cpn)
	hinted := h.Plan(loads, owner, ncores)
	greedy := GreedyLB{}.Plan(loads, owner, ncores)

	fh := Fragmentation(nbs, hinted, cpn, ncores)
	fg := Fragmentation(nbs, greedy, cpn, ncores)
	if fh >= fg {
		t.Errorf("hinted fragmentation %.3f not below greedy %.3f", fh, fg)
	}
	// And balance stays comparable.
	if MaxCoreLoad(loads, hinted, ncores) > MaxCoreLoad(loads, greedy, ncores)*1.2 {
		t.Errorf("hinted sacrificed too much balance")
	}
}

func TestHintedGreedyDeterministic(t *testing.T) {
	loads := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	owner := make([]int, 8)
	h1 := &HintedGreedyLB{}
	h1.SetTopology(GridNeighbors(4, 2), 2)
	h2 := &HintedGreedyLB{}
	h2.SetTopology(GridNeighbors(4, 2), 2)
	a := h1.Plan(loads, owner, 4)
	b := h2.Plan(loads, owner, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestHintedGreedyWithoutTopology(t *testing.T) {
	// Without SetTopology the strategy must still produce a valid plan.
	h := &HintedGreedyLB{}
	loads := []float64{3, 1, 4, 1, 5}
	got := h.Plan(loads, make([]int, 5), 2)
	for _, c := range got {
		if c < 0 || c >= 2 {
			t.Fatalf("invalid core %d", c)
		}
	}
}
