package ampi

import (
	"testing"
	"testing/quick"
)

func TestWorkStealMovesWorkToHungryCores(t *testing.T) {
	// Core 0 has everything; cores 1-3 are empty and must each steal.
	loads := []float64{40, 30, 20, 10, 5, 5}
	owner := []int{0, 0, 0, 0, 0, 0}
	got := WorkStealLB{}.Plan(loads, owner, 4)
	after := MaxCoreLoad(loads, got, 4)
	if after >= MaxCoreLoad(loads, owner, 4) {
		t.Fatalf("steal did not reduce max load: %v", after)
	}
	if Moves(owner, got) == 0 {
		t.Fatal("no VP stolen")
	}
	// Bounded disruption: at most one steal per hungry core.
	if m := Moves(owner, got); m > 3 {
		t.Errorf("work stealing moved %d VPs for 3 hungry cores", m)
	}
}

func TestWorkStealIdleWhenBalanced(t *testing.T) {
	loads := []float64{10, 10, 10, 10}
	owner := []int{0, 1, 2, 3}
	got := WorkStealLB{}.Plan(loads, owner, 4)
	if Moves(owner, got) != 0 {
		t.Errorf("stole from a balanced system: %v", got)
	}
}

func TestWorkStealNeverWorsensMax(t *testing.T) {
	f := func(raw []uint16, ncoresRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ncores := int(ncoresRaw%7) + 1
		loads := make([]float64, len(raw))
		owner := make([]int, len(raw))
		for i, r := range raw {
			loads[i] = float64(r % 500)
			owner[i] = (i * i) % ncores
		}
		before := MaxCoreLoad(loads, owner, ncores)
		got := WorkStealLB{}.Plan(loads, owner, ncores)
		for _, c := range got {
			if c < 0 || c >= ncores {
				return false
			}
		}
		return MaxCoreLoad(loads, got, ncores) <= before+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkStealConvergesOverRounds(t *testing.T) {
	// Repeated invocations (as a driver would make every F steps) must
	// bring the system near balance.
	n := 64
	loads := make([]float64, n)
	owner := make([]int, n)
	var total float64
	for i := range loads {
		loads[i] = float64(1 + i%9)
		total += loads[i]
	}
	const ncores = 8
	for round := 0; round < 50; round++ {
		owner = WorkStealLB{}.Plan(loads, owner, ncores)
	}
	if mx := MaxCoreLoad(loads, owner, ncores); mx > total/ncores*1.5 {
		t.Errorf("after 50 rounds max load %v vs ideal %v", mx, total/ncores)
	}
}
