package ampi

import (
	"fmt"
	"sort"

	"github.com/parres/picprk/internal/comm"
	"github.com/parres/picprk/internal/pup"
)

// VP is one virtual processor: a migratable unit of work and data. The
// application defines the concrete type; the runtime only needs its
// identity, its measured load, and the ability to PUP its entire state.
// Arrivals may unpack into a recycled shell of a previously departed VP
// rather than a fresh factory product, so a VP's PUP routine must fully
// overwrite its state when unpacking.
type VP interface {
	// VPID returns the VP's global id in [0, NumVPs).
	VPID() int
	// Load returns the measured load of the most recent steps (for the PIC
	// PRK: the particle count, which is exactly proportional to work).
	Load() float64
	pup.PUPable
}

// tagMigrateBase starts the tag range used for VP migration; VP id is added
// so every in-flight VP has a distinct (src, tag) stream.
const tagMigrateBase = 1 << 20

// Runtime hosts the VPs assigned to one core and coordinates collective
// load balancing with the other cores of the communicator. Methods must be
// called SPMD-style: LoadBalance is collective.
type Runtime struct {
	c       *comm.Comm
	nvp     int
	factory func() VP
	// location[vp] is the core currently hosting vp; identical on all
	// cores (updated in lockstep by LoadBalance).
	location []int
	local    map[int]VP
	// ids caches the sorted local VP ids (LocalIDs is on the per-step hot
	// path); rebuilt lazily into the same buffer and invalidated by Migrate.
	ids      []int
	idsValid bool
	// free holds shells of departed VPs; arrivals unpack into one instead
	// of a fresh factory product, so their retained buffer capacities keep
	// steady-state migration off the allocator. Bounded by the number of
	// VPs this core has ever hosted.
	free []VP
	// loads is the reused local input vector for MeasureLoads.
	loads []float64

	// Stats accumulates migration counters for this core.
	Stats Stats
}

// Stats counts migration activity on one core.
type Stats struct {
	// LBInvocations is the number of LoadBalance calls.
	LBInvocations int
	// VPsSent and VPsReceived count migrations from/to this core.
	VPsSent, VPsReceived int
	// BytesSent and BytesReceived count PUP payload volume.
	BytesSent, BytesReceived int64
}

// NewRuntime creates the runtime on one core. nvp is the global VP count;
// place maps each VP to its initial core; makeLocal constructs the initial
// state of a VP this core owns; factory constructs an empty VP shell for
// unpacking a migrated one.
func NewRuntime(c *comm.Comm, nvp int, place func(vp int) int, makeLocal func(vp int) VP, factory func() VP) (*Runtime, error) {
	if nvp <= 0 {
		return nil, fmt.Errorf("ampi: need at least one VP, got %d", nvp)
	}
	rt := &Runtime{
		c:        c,
		nvp:      nvp,
		factory:  factory,
		location: make([]int, nvp),
		local:    make(map[int]VP),
	}
	for vp := 0; vp < nvp; vp++ {
		core := place(vp)
		if core < 0 || core >= c.Size() {
			return nil, fmt.Errorf("ampi: VP %d placed on invalid core %d", vp, core)
		}
		rt.location[vp] = core
		if core == c.Rank() {
			v := makeLocal(vp)
			if v.VPID() != vp {
				return nil, fmt.Errorf("ampi: makeLocal(%d) returned VP with id %d", vp, v.VPID())
			}
			rt.local[vp] = v
		}
	}
	return rt, nil
}

// NumVPs returns the global VP count.
func (rt *Runtime) NumVPs() int { return rt.nvp }

// Location returns the core currently hosting a VP.
func (rt *Runtime) Location(vp int) int { return rt.location[vp] }

// Local returns the locally-hosted VP with the given id, or nil.
func (rt *Runtime) Local(vp int) VP { return rt.local[vp] }

// LocalIDs returns the ids of locally-hosted VPs in ascending order. The
// returned slice is shared and valid until the next Migrate call; callers
// must not modify or retain it across migrations.
func (rt *Runtime) LocalIDs() []int {
	if !rt.idsValid {
		rt.ids = rt.ids[:0]
		for id := range rt.local {
			rt.ids = append(rt.ids, id)
		}
		sort.Ints(rt.ids)
		rt.idsValid = true
	}
	return rt.ids
}

// ForEach invokes fn on every local VP in ascending id order (the
// deterministic stand-in for the Charm++ scheduler's VP execution loop).
func (rt *Runtime) ForEach(fn func(vp VP)) {
	for _, id := range rt.LocalIDs() {
		fn(rt.local[id])
	}
}

// MeasureLoads is the collective load-measurement step: every core reduces
// its local VPs' loads into the global per-VP load vector. It counts as one
// load-balancer invocation (Stats.LBInvocations), since it is the epoch's
// mandatory collective whether or not anything subsequently moves.
func (rt *Runtime) MeasureLoads() []float64 {
	rt.Stats.LBInvocations++
	if rt.loads == nil {
		rt.loads = make([]float64, rt.nvp)
	}
	for i := range rt.loads {
		rt.loads[i] = 0
	}
	for id, vp := range rt.local {
		rt.loads[id] = vp.Load()
	}
	// Allreduce copies its input before sending, so the reused local vector
	// never escapes; the returned global vector is freshly owned.
	return comm.Allreduce(rt.c, rt.loads, comm.Sum[float64])
}

// Locations returns a copy of the VP-to-core owner table.
func (rt *Runtime) Locations() []int {
	return append([]int(nil), rt.location...)
}

// Migrate moves VPs to match the given owner table, PUP-serializing each
// departing VP over the communicator. Every core must call it with the
// identical table (it is a pure function of globally-reduced loads in all
// strategies). It returns the number of VPs that moved globally.
func (rt *Runtime) Migrate(newOwner []int) (int, error) {
	if len(newOwner) != rt.nvp {
		return 0, fmt.Errorf("ampi: new owner table has %d entries for %d VPs", len(newOwner), rt.nvp)
	}
	me := rt.c.Rank()

	// Send departures first (sends never block), then collect arrivals.
	moves := 0
	for vp := 0; vp < rt.nvp; vp++ {
		from, to := rt.location[vp], newOwner[vp]
		if from == to {
			continue
		}
		moves++
		if to < 0 || to >= rt.c.Size() {
			return 0, fmt.Errorf("ampi: owner table moves VP %d to invalid core %d", vp, to)
		}
		if from == me {
			v, ok := rt.local[vp]
			if !ok {
				return 0, fmt.Errorf("ampi: location table says VP %d is here but it is not", vp)
			}
			buf, err := pup.Pack(v)
			if err != nil {
				return 0, fmt.Errorf("ampi: packing VP %d: %w", vp, err)
			}
			rt.c.Send(to, tagMigrateBase+vp, buf)
			delete(rt.local, vp)
			rt.free = append(rt.free, v)
			rt.Stats.VPsSent++
			rt.Stats.BytesSent += int64(len(buf))
		}
	}
	for vp := 0; vp < rt.nvp; vp++ {
		from, to := rt.location[vp], newOwner[vp]
		if from == to || to != me {
			continue
		}
		data, _ := rt.c.Recv(from, tagMigrateBase+vp)
		buf := data.([]byte)
		var v VP
		if n := len(rt.free); n > 0 {
			v = rt.free[n-1]
			rt.free[n-1] = nil
			rt.free = rt.free[:n-1]
		} else {
			v = rt.factory()
		}
		if err := pup.Unpack(v, buf); err != nil {
			return 0, fmt.Errorf("ampi: unpacking VP %d: %w", vp, err)
		}
		if v.VPID() != vp {
			return 0, fmt.Errorf("ampi: migration stream mismatch: expected VP %d, got %d", vp, v.VPID())
		}
		rt.local[vp] = v
		rt.Stats.VPsReceived++
		rt.Stats.BytesReceived += int64(len(buf))
	}
	rt.location = append(rt.location[:0], newOwner...)
	rt.idsValid = false // the local set changed; LocalIDs rebuilds lazily
	return moves, nil
}

// pupStatBytes serializes an int64 counter through its bit pattern,
// writing back only when unpacking (packing must not mutate).
func pupStatBytes(p *pup.PUPer, v *int64) {
	u := uint64(*v)
	p.Uint64(&u)
	if p.Mode() == pup.Unpacking {
		*v = int64(u)
	}
}

// PUPState serializes the runtime's mutable state through one traversal:
// the owner table, the migration counters, and every locally-hosted VP in
// ascending id order. It is the per-core checkpoint shard of the runtime —
// pack it on every core and the union reconstructs the world. Unpacking
// first retires the current local VPs into the shell freelist (the same
// recycling path Migrate uses, so a restore stays off the allocator once
// warm), then rebuilds the local set from the stream. The owner table is
// validated against the communicator and against each restored VP's id.
func (rt *Runtime) PUPState(p *pup.PUPer) {
	nvp := rt.nvp
	p.Int(&nvp)
	if p.Mode() == pup.Unpacking && nvp != rt.nvp {
		p.Fail(fmt.Errorf("ampi: checkpoint has %d VPs, runtime has %d", nvp, rt.nvp))
		return
	}
	pup.Slice(p, &rt.location, func(p *pup.PUPer, core *int) { p.Int(core) })
	p.Int(&rt.Stats.LBInvocations)
	p.Int(&rt.Stats.VPsSent)
	p.Int(&rt.Stats.VPsReceived)
	pupStatBytes(p, &rt.Stats.BytesSent)
	pupStatBytes(p, &rt.Stats.BytesReceived)

	if p.Mode() == pup.Unpacking {
		if len(rt.location) != rt.nvp {
			p.Fail(fmt.Errorf("ampi: checkpoint owner table has %d entries for %d VPs", len(rt.location), rt.nvp))
			return
		}
		for id, v := range rt.local {
			delete(rt.local, id)
			rt.free = append(rt.free, v)
		}
	}
	n := len(rt.local)
	p.Int(&n)
	if p.Mode() == pup.Unpacking {
		me := rt.c.Rank()
		for i := 0; i < n; i++ {
			var v VP
			if k := len(rt.free); k > 0 {
				v = rt.free[k-1]
				rt.free[k-1] = nil
				rt.free = rt.free[:k-1]
			} else {
				v = rt.factory()
			}
			v.PUP(p)
			if p.Err() != nil {
				return
			}
			id := v.VPID()
			if id < 0 || id >= rt.nvp || rt.location[id] != me {
				p.Fail(fmt.Errorf("ampi: checkpoint VP %d does not belong on core %d", id, me))
				return
			}
			rt.local[id] = v
		}
		rt.idsValid = false
	} else {
		for _, id := range rt.LocalIDs() {
			rt.local[id].PUP(p)
			if p.Err() != nil {
				return
			}
		}
	}
}

// LoadBalance is the collective rebalancing step (the analogue of AMPI's
// MPI_Migrate): MeasureLoads, run the strategy, Migrate. The driver engine
// calls the three pieces separately (the Balancer layer sits between
// measurement and migration); this wrapper serves callers that want the
// classic one-shot semantics. It returns the number of VPs that moved
// globally.
func (rt *Runtime) LoadBalance(s Strategy) (int, error) {
	global := rt.MeasureLoads()
	newOwner := s.Plan(global, rt.location, rt.c.Size())
	if len(newOwner) != rt.nvp {
		return 0, fmt.Errorf("ampi: strategy %s returned %d owners for %d VPs", s.Name(), len(newOwner), rt.nvp)
	}
	return rt.Migrate(newOwner)
}

// BlockPlacement returns an initial VP placement that keeps each core's
// subdomains compact: VPs laid out on a vx×vy grid are assigned to cores on
// a px×py grid by spatial blocks, matching the paper's assumption that "the
// initial assignment of VPs to cores is such that the corresponding
// underlying subdomains of cores are compact" (§V-B). vx must be a multiple
// of px and vy of py.
func BlockPlacement(vx, vy, px, py int) (func(vp int) int, error) {
	if vx%px != 0 || vy%py != 0 {
		return nil, fmt.Errorf("ampi: VP grid %dx%d not divisible by core grid %dx%d", vx, vy, px, py)
	}
	bx, by := vx/px, vy/py
	return func(vp int) int {
		gx, gy := vp%vx, vp/vx
		return (gy/by)*px + gx/bx
	}, nil
}
