package ampi_test

import (
	"fmt"

	"github.com/parres/picprk/internal/ampi"
)

// ExampleGreedyLB plans a new VP placement from measured loads: the two
// heavy VPs end up on separate cores.
func ExampleGreedyLB() {
	loads := []float64{90, 80, 10, 10, 5, 5}
	owner := []int{0, 0, 0, 0, 0, 0} // everything piled on core 0
	plan := ampi.GreedyLB{}.Plan(loads, owner, 2)
	fmt.Println("VPs moved:", ampi.Moves(owner, plan))
	fmt.Println("max core load:", ampi.MaxCoreLoad(loads, plan, 2))
	// Output:
	// VPs moved: 4
	// max core load: 100
}

// ExampleFragmentation scores how badly a placement scatters neighboring
// VPs across nodes.
func ExampleFragmentation() {
	nbs := ampi.GridNeighbors(4, 2)
	compact := []int{0, 0, 1, 1, 0, 0, 1, 1}   // two cores = two nodes, block split
	scattered := []int{0, 1, 0, 1, 1, 0, 1, 0} // alternating
	fmt.Printf("compact: %.2f scattered: %.2f\n",
		ampi.Fragmentation(nbs, compact, 1, 2),
		ampi.Fragmentation(nbs, scattered, 1, 2))
	// Output: compact: 0.25 scattered: 1.00
}
