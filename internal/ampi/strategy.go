// Package ampi emulates the Adaptive MPI execution model of paper §IV-C:
// the application is over-decomposed into virtual processors (VPs), several
// of which are hosted by each core (rank); the runtime measures per-VP load
// and periodically migrates VPs between cores — serialized with the PUP
// framework — according to a pluggable load-balancing strategy, as the
// Charm++ scheduler underneath AMPI does.
package ampi

import (
	"container/heap"
	"math"
	"sort"
)

// Strategy computes a new VP-to-core assignment from measured loads.
// Implementations must be deterministic pure functions: every core runs the
// same Plan on the same globally-reduced inputs and must reach the same
// assignment without further coordination.
type Strategy interface {
	// Name identifies the strategy in logs and experiment tables.
	Name() string
	// Plan returns the new owner core of every VP. loads[vp] is the
	// measured load of VP vp; owner[vp] its current core; ncores the number
	// of cores. The returned slice is freshly allocated.
	Plan(loads []float64, owner []int, ncores int) []int
}

// NullLB never migrates anything (the no-load-balancing reference point).
type NullLB struct{}

// Name implements Strategy.
func (NullLB) Name() string { return "NullLB" }

// Plan implements Strategy.
func (NullLB) Plan(loads []float64, owner []int, ncores int) []int {
	return append([]int(nil), owner...)
}

// RotateLB shifts every VP to the next core; useless for balancing but
// maximally stressful for the migration machinery, so tests use it.
type RotateLB struct{}

// Name implements Strategy.
func (RotateLB) Name() string { return "RotateLB" }

// Plan implements Strategy.
func (RotateLB) Plan(loads []float64, owner []int, ncores int) []int {
	out := make([]int, len(owner))
	for vp, c := range owner {
		out[vp] = (c + 1) % ncores
	}
	return out
}

// GreedyLB is Charm++'s classic greedy strategy: ignore current placement,
// sort VPs by decreasing load and assign each to the currently least-loaded
// core. It produces excellent balance but pays no attention to locality or
// migration volume — the behaviour the paper's strong-scaling discussion
// blames for fragmenting subdomains (§V-B).
type GreedyLB struct{}

// Name implements Strategy.
func (GreedyLB) Name() string { return "GreedyLB" }

// Plan implements Strategy.
func (GreedyLB) Plan(loads []float64, owner []int, ncores int) []int {
	order := make([]int, len(loads))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if loads[order[a]] != loads[order[b]] {
			return loads[order[a]] > loads[order[b]]
		}
		return order[a] < order[b]
	})
	h := make(coreHeap, ncores)
	for c := 0; c < ncores; c++ {
		h[c] = coreLoad{core: c}
	}
	heap.Init(&h)
	out := make([]int, len(loads))
	for _, vp := range order {
		least := h[0]
		out[vp] = least.core
		least.load += loads[vp]
		h[0] = least
		heap.Fix(&h, 0)
	}
	return out
}

// RefineLB is the strategy the paper's experiments use: "the AMPI load
// balancer that migrates VPs from the most loaded to the least loaded core"
// (§V). It keeps the current placement and iteratively moves one VP at a
// time from the heaviest core to the lightest, choosing the VP that most
// narrows the gap, until no move improves the maximum load (or MaxMoves is
// reached). Migration volume stays proportional to the imbalance.
type RefineLB struct {
	// MaxMoves caps the number of migrations per invocation; 0 means
	// 4·len(VPs).
	MaxMoves int
}

// Name implements Strategy.
func (RefineLB) Name() string { return "RefineLB" }

// Plan implements Strategy.
func (r RefineLB) Plan(loads []float64, owner []int, ncores int) []int {
	out := append([]int(nil), owner...)
	if ncores < 2 {
		return out
	}
	coreLoads := make([]float64, ncores)
	byCore := make([][]int, ncores)
	for vp, c := range out {
		coreLoads[c] += loads[vp]
		byCore[c] = append(byCore[c], vp)
	}
	maxMoves := r.MaxMoves
	if maxMoves <= 0 {
		maxMoves = 4 * len(loads)
	}
	for move := 0; move < maxMoves; move++ {
		maxC, minC := 0, 0
		for c := 1; c < ncores; c++ {
			if coreLoads[c] > coreLoads[maxC] || (coreLoads[c] == coreLoads[maxC] && c < maxC) {
				maxC = c
			}
			if coreLoads[c] < coreLoads[minC] || (coreLoads[c] == coreLoads[minC] && c < minC) {
				minC = c
			}
		}
		gap := coreLoads[maxC] - coreLoads[minC]
		if gap <= 0 {
			break
		}
		// The best VP to move brings the pair as close as possible without
		// overshooting: load closest to gap/2 from below... moving load l
		// changes the pair's max to max(maxLoad-l, minLoad+l), which
		// improves iff 0 < l < gap. Choose l nearest to gap/2.
		best := -1
		var bestDist float64
		for _, vp := range byCore[maxC] {
			l := loads[vp]
			if l <= 0 || l >= gap {
				continue
			}
			d := math.Abs(l - gap/2)
			if best == -1 || d < bestDist || (d == bestDist && vp < best) {
				best = vp
				bestDist = d
			}
		}
		if best == -1 {
			break // no VP move can improve the heaviest core
		}
		out[best] = minC
		coreLoads[maxC] -= loads[best]
		coreLoads[minC] += loads[best]
		byCore[maxC] = removeInt(byCore[maxC], best)
		byCore[minC] = append(byCore[minC], best)
	}
	return out
}

func removeInt(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

type coreLoad struct {
	core int
	load float64
}

type coreHeap []coreLoad

func (h coreHeap) Len() int { return len(h) }
func (h coreHeap) Less(a, b int) bool {
	if h[a].load != h[b].load {
		return h[a].load < h[b].load
	}
	return h[a].core < h[b].core
}
func (h coreHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *coreHeap) Push(x any)   { *h = append(*h, x.(coreLoad)) }
func (h *coreHeap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// MaxCoreLoad returns the highest per-core total under an assignment; used
// by tests and by the tuning harness to compare strategies.
func MaxCoreLoad(loads []float64, owner []int, ncores int) float64 {
	cl := make([]float64, ncores)
	for vp, c := range owner {
		cl[c] += loads[vp]
	}
	var m float64
	for _, l := range cl {
		if l > m {
			m = l
		}
	}
	return m
}

// Moves counts how many VPs change cores between two assignments.
func Moves(oldOwner, newOwner []int) int {
	n := 0
	for i := range oldOwner {
		if oldOwner[i] != newOwner[i] {
			n++
		}
	}
	return n
}
