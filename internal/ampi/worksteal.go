package ampi

import "sort"

// WorkStealLB approximates the demand-driven balancing of task-based
// runtimes (the paper's future work lists Charm++, HPX, Legion and Grappa
// as targets for a comparative study): instead of a global reassignment,
// only *underloaded* cores act — each requests one VP from the currently
// heaviest core. Migration volume is therefore bounded by the number of
// hungry cores per invocation, trading convergence speed for minimal
// disruption.
type WorkStealLB struct {
	// Threshold is the hunger trigger: a core steals when its load is
	// below (1−Threshold) of the heaviest core's (default 0.25) — in a BSP
	// step, every core finishing that much earlier than the straggler is
	// effectively idle.
	Threshold float64
}

// Name implements Strategy.
func (w WorkStealLB) Name() string { return "WorkStealLB" }

// Plan implements Strategy.
func (w WorkStealLB) Plan(loads []float64, owner []int, ncores int) []int {
	out := append([]int(nil), owner...)
	if ncores < 2 {
		return out
	}
	th := w.Threshold
	if th <= 0 {
		th = 0.25
	}
	coreLoads := make([]float64, ncores)
	byCore := make([][]int, ncores)
	var total float64
	for vp, c := range out {
		coreLoads[c] += loads[vp]
		byCore[c] = append(byCore[c], vp)
		total += loads[vp]
	}
	mean := total / float64(ncores)
	var maxLoad float64
	for _, l := range coreLoads {
		if l > maxLoad {
			maxLoad = l
		}
	}

	// Hungry cores in ascending load order (the hungriest steals first).
	hungry := make([]int, 0, ncores)
	for c := 0; c < ncores; c++ {
		if coreLoads[c] < (1-th)*maxLoad {
			hungry = append(hungry, c)
		}
	}
	sort.SliceStable(hungry, func(a, b int) bool {
		if coreLoads[hungry[a]] != coreLoads[hungry[b]] {
			return coreLoads[hungry[a]] < coreLoads[hungry[b]]
		}
		return hungry[a] < hungry[b]
	})

	for _, thief := range hungry {
		// Victim: the heaviest core right now.
		victim := 0
		for c := 1; c < ncores; c++ {
			if coreLoads[c] > coreLoads[victim] || (coreLoads[c] == coreLoads[victim] && c < victim) {
				victim = c
			}
		}
		if victim == thief || coreLoads[victim] <= mean {
			continue
		}
		// Steal the largest VP that keeps the victim at or above the
		// thief's post-steal load (no role reversal).
		best := -1
		for _, vp := range byCore[victim] {
			l := loads[vp]
			if l <= 0 {
				continue
			}
			if coreLoads[victim]-l < coreLoads[thief]+l {
				continue
			}
			if best == -1 || l > loads[best] || (l == loads[best] && vp < best) {
				best = vp
			}
		}
		if best == -1 {
			continue
		}
		out[best] = thief
		coreLoads[victim] -= loads[best]
		coreLoads[thief] += loads[best]
		byCore[victim] = removeInt(byCore[victim], best)
		byCore[thief] = append(byCore[thief], best)
	}
	return out
}
