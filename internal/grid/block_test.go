package grid

import (
	"strings"
	"testing"
)

func TestMeshAccessors(t *testing.T) {
	m := MustMesh(12, 1.5)
	if m.Size() != 12 {
		t.Errorf("Size = %v", m.Size())
	}
	if m.Cells() != 144 {
		t.Errorf("Cells = %v", m.Cells())
	}
	if m.Charge(3, 5) != m.PointCharge(3, 5) {
		t.Error("Charge alias disagrees with PointCharge")
	}
}

func TestMustMeshPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMesh accepted odd L")
		}
	}()
	MustMesh(7, 1)
}

func TestBlockAccessors(t *testing.T) {
	m := MustMesh(8, 1)
	b, err := NewBlock(m, 2, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Mesh() != m {
		t.Error("Mesh accessor wrong")
	}
	if b.Bytes() != 8*(3+2)*(4+2) {
		t.Errorf("Bytes = %d", b.Bytes())
	}
}

func TestExtractRowsRoundtrip(t *testing.T) {
	m := MustMesh(12, 1)
	b, err := NewBlock(m, 2, 4, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := b.ExtractRows(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*5 {
		t.Fatalf("extracted %d values", len(rows))
	}
	for k := 0; k < 3; k++ {
		for gi := 0; gi < 5; gi++ {
			if rows[k*5+gi] != m.PointCharge(2+gi, 4+1+k) {
				t.Fatalf("row data wrong at (%d,%d)", gi, k)
			}
		}
	}
	// A neighbor block that owns the same rows validates them.
	nb, err := NewBlock(m, 2, 5, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := nb.ValidateRows(rows, 5); err != nil {
		t.Fatal(err)
	}
	// Corruption is rejected.
	rows[7] = 99
	if err := nb.ValidateRows(rows, 5); err == nil {
		t.Error("corrupted rows accepted")
	}
	if err := nb.ValidateRows(nil, 5); err != nil {
		t.Errorf("empty rows rejected: %v", err)
	}
}

func TestExtractRowsValidation(t *testing.T) {
	m := MustMesh(8, 1)
	b, _ := NewBlock(m, 0, 0, 4, 4)
	if _, err := b.ExtractRows(-1, 1); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := b.ExtractRows(3, 2); err == nil {
		t.Error("overrun accepted")
	}
	if _, err := b.ExtractRows(0, 0); err == nil {
		t.Error("zero height accepted")
	}
}

func TestValidateRowsOutsideBlock(t *testing.T) {
	m := MustMesh(8, 1)
	b, _ := NewBlock(m, 0, 0, 4, 2)
	rows := make([]float64, 4)
	if err := b.ValidateRows(rows, 5); err == nil {
		t.Error("row outside block accepted")
	}
	// Ragged length.
	if err := b.ValidateRows(make([]float64, 5), 0); err == nil {
		t.Error("ragged row data accepted")
	}
}

func TestValidateColumnsDirect(t *testing.T) {
	m := MustMesh(10, 1)
	src, _ := NewBlock(m, 2, 0, 4, 10)
	cols, err := src.ExtractColumns(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	dst, _ := NewBlock(m, 4, 0, 4, 10)
	if err := dst.ValidateColumns(cols, 4); err != nil {
		t.Fatal(err)
	}
	cols[3] = -42
	if err := dst.ValidateColumns(cols, 4); err == nil {
		t.Error("corrupted columns accepted")
	}
	if err := dst.ValidateColumns(make([]float64, 10), 0); err == nil {
		t.Error("columns outside block accepted")
	}
	if err := dst.ValidateColumns(make([]float64, 7), 4); err == nil {
		t.Error("ragged column data accepted")
	}
	if err := dst.ValidateColumns(nil, 4); err != nil {
		t.Errorf("empty columns rejected: %v", err)
	}
}

func TestOwnedDataRoundtrip(t *testing.T) {
	m := MustMesh(8, 2)
	b, _ := NewBlock(m, 6, 6, 3, 3) // wraps the periodic seam
	data := b.OwnedData()
	if len(data) != 9 {
		t.Fatalf("owned data %d values", len(data))
	}
	nb, err := NewBlockFromData(m, 6, 6, 3, 3, data)
	if err != nil {
		t.Fatal(err)
	}
	for j := 6; j < 9; j++ {
		for i := 6; i < 9; i++ {
			if nb.Charge(i, j) != b.Charge(i, j) {
				t.Fatalf("rebuilt block differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewBlockFromDataRejectsCorruption(t *testing.T) {
	m := MustMesh(8, 1)
	b, _ := NewBlock(m, 0, 0, 3, 3)
	data := b.OwnedData()
	data[4] = 7
	if _, err := NewBlockFromData(m, 0, 0, 3, 3, data); err == nil {
		t.Error("corrupted block data accepted")
	}
	if _, err := NewBlockFromData(m, 0, 0, 3, 3, data[:5]); err == nil {
		t.Error("short block data accepted")
	}
}

func TestCellOfNegativeAndEdge(t *testing.T) {
	m := MustMesh(4, 1)
	cx, cy := m.CellOf(-0.5, 4.0)
	if cx != 3 || cy != 0 {
		t.Errorf("CellOf(-0.5, 4.0) = (%d,%d), want (3,0)", cx, cy)
	}
}

func TestResizeErrors(t *testing.T) {
	m := MustMesh(8, 1)
	b, _ := NewBlock(m, 0, 0, 4, 4)
	if err := b.Resize(0, 0, 0, 4, nil, 0); err == nil {
		t.Error("zero-width resize accepted")
	}
	if err := b.Resize(0, 0, 4, 4, make([]float64, 7), 0); err == nil ||
		!strings.Contains(err.Error(), "divisible") {
		t.Error("ragged incoming data accepted")
	}
	if err := b.Resize(0, 0, 4, 4, make([]float64, 4), 6); err == nil {
		t.Error("incoming column outside new block accepted")
	}
}
