package grid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewMeshValidation(t *testing.T) {
	cases := []struct {
		L  int
		q  float64
		ok bool
	}{
		{8, 1, true}, {2, 0.5, true}, {0, 1, false}, {-4, 1, false},
		{7, 1, false}, {8, 0, false}, {8, -1, false}, {8, math.NaN(), false},
		{8, math.Inf(1), false},
	}
	for _, c := range cases {
		_, err := NewMesh(c.L, c.q)
		if (err == nil) != c.ok {
			t.Errorf("NewMesh(%d, %v): err=%v, want ok=%v", c.L, c.q, err, c.ok)
		}
	}
}

func TestPointChargeAlternatesByColumn(t *testing.T) {
	m := MustMesh(6, 2.5)
	for i := 0; i < 6; i++ {
		want := 2.5
		if i%2 == 1 {
			want = -2.5
		}
		for j := 0; j < 6; j++ {
			if got := m.PointCharge(i, j); got != want {
				t.Errorf("charge(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestPointChargePeriodicConsistency(t *testing.T) {
	m := MustMesh(8, 1)
	for i := -16; i < 16; i++ {
		if m.PointCharge(i, 0) != m.PointCharge(i+8, 3) {
			t.Errorf("charge not periodic at i=%d", i)
		}
	}
	// Even L guarantees the parity pattern survives the wrap.
	if m.PointCharge(-1, 0) != m.PointCharge(7, 0) {
		t.Error("wrap parity broken")
	}
}

func TestWrapCoord(t *testing.T) {
	m := MustMesh(4, 1)
	cases := map[float64]float64{
		0: 0, 3.5: 3.5, 4: 0, 4.5: 0.5, -0.5: 3.5, -4: 0, 8.25: 0.25, -8.5: 3.5,
	}
	for in, want := range cases {
		if got := m.WrapCoord(in); math.Abs(got-want) > 1e-12 {
			t.Errorf("WrapCoord(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestWrapCoordProperty(t *testing.T) {
	m := MustMesh(10, 1)
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return true
		}
		w := m.WrapCoord(x)
		return w >= 0 && w < 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapIndexProperty(t *testing.T) {
	f := func(i int16, n uint8) bool {
		if n == 0 {
			return true
		}
		w := WrapIndex(int(i), int(n))
		return w >= 0 && w < int(n) && (w-int(i))%int(n) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellOf(t *testing.T) {
	m := MustMesh(4, 1)
	cases := []struct {
		x, y   float64
		cx, cy int
	}{
		{0.5, 0.5, 0, 0}, {3.999, 0, 3, 0}, {0, 3.5, 0, 3}, {2, 2, 2, 2},
	}
	for _, c := range cases {
		cx, cy := m.CellOf(c.x, c.y)
		if cx != c.cx || cy != c.cy {
			t.Errorf("CellOf(%v,%v) = (%d,%d), want (%d,%d)", c.x, c.y, cx, cy, c.cx, c.cy)
		}
	}
}

func TestColumnSign(t *testing.T) {
	m := MustMesh(6, 1)
	for i := -6; i < 12; i++ {
		want := 1
		if WrapIndex(i, 6)%2 == 1 {
			want = -1
		}
		if got := m.ColumnSign(i); got != want {
			t.Errorf("ColumnSign(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestBlockMatchesMesh(t *testing.T) {
	m := MustMesh(10, 1.5)
	b, err := NewBlock(m, 3, 5, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for j := 4; j <= 8; j++ { // ghost ring included
		for i := 2; i <= 7; i++ {
			if got, want := b.Charge(i, j), m.PointCharge(i, j); got != want {
				t.Errorf("block charge(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestBlockAtPeriodicSeam(t *testing.T) {
	m := MustMesh(8, 1)
	// Block owning the last two columns: its right ghost is column 8 == 0.
	b, err := NewBlock(m, 6, 0, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.Charge(8, 3), m.PointCharge(0, 3); got != want {
		t.Errorf("seam ghost charge = %v, want %v", got, want)
	}
	if got, want := b.Charge(5, 0), m.PointCharge(5, 0); got != want {
		t.Errorf("left ghost charge = %v, want %v", got, want)
	}
	// A block starting at 0 asked for ghost column -1 == 7.
	b2, err := NewBlock(m, 0, 0, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b2.Charge(-1, 2), m.PointCharge(7, 2); got != want {
		t.Errorf("wrapped left ghost = %v, want %v", got, want)
	}
}

func TestBlockOwnsCell(t *testing.T) {
	m := MustMesh(8, 1)
	b, _ := NewBlock(m, 6, 2, 3, 4) // wraps: owns columns 6,7,0
	cases := []struct {
		cx, cy int
		own    bool
	}{
		{6, 2, true}, {7, 5, true}, {0, 3, true}, {1, 3, false},
		{6, 6, false}, {5, 2, false}, {0, 1, false},
	}
	for _, c := range cases {
		if got := b.OwnsCell(c.cx, c.cy); got != c.own {
			t.Errorf("OwnsCell(%d,%d) = %v, want %v", c.cx, c.cy, got, c.own)
		}
	}
}

func TestBlockChargeOutsidePanics(t *testing.T) {
	m := MustMesh(8, 1)
	b, _ := NewBlock(m, 2, 2, 2, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-ghost access")
		}
	}()
	b.Charge(6, 2)
}

func TestExtractAndResize(t *testing.T) {
	m := MustMesh(12, 1)
	b, err := NewBlock(m, 2, 0, 6, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Ship the two rightmost owned columns (6, 7) to a neighbor.
	cols, err := b.ExtractColumns(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2*12 {
		t.Fatalf("extracted %d values", len(cols))
	}
	// The neighbor previously owned [8,12) and grows to [6,12).
	nb, err := NewBlock(m, 8, 0, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := nb.Resize(6, 0, 6, 12, cols, 6); err != nil {
		t.Fatal(err)
	}
	if nb.X0 != 6 || nb.NX != 6 {
		t.Fatalf("resize gave X0=%d NX=%d", nb.X0, nb.NX)
	}
	if got, want := nb.Charge(6, 4), m.PointCharge(6, 4); got != want {
		t.Errorf("post-resize charge = %v, want %v", got, want)
	}
}

func TestResizeRejectsCorruptedData(t *testing.T) {
	m := MustMesh(12, 1)
	b, _ := NewBlock(m, 2, 0, 6, 12)
	cols, _ := b.ExtractColumns(4, 2)
	cols[5] = 42 // corrupt one charge in transit
	nb, _ := NewBlock(m, 8, 0, 4, 12)
	if err := nb.Resize(6, 0, 6, 12, cols, 6); err == nil {
		t.Error("expected corrupted migration data to be rejected")
	}
}

func TestExtractColumnsValidation(t *testing.T) {
	m := MustMesh(8, 1)
	b, _ := NewBlock(m, 0, 0, 4, 8)
	if _, err := b.ExtractColumns(-1, 1); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := b.ExtractColumns(3, 2); err == nil {
		t.Error("overrun accepted")
	}
	if _, err := b.ExtractColumns(0, 0); err == nil {
		t.Error("zero width accepted")
	}
}

func TestNewBlockValidation(t *testing.T) {
	m := MustMesh(8, 1)
	if _, err := NewBlock(m, 0, 0, 0, 4); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewBlock(m, 0, 0, 9, 4); err == nil {
		t.Error("oversized block accepted")
	}
}
