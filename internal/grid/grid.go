// Package grid provides the simulation mesh of the PIC PRK: a periodic
// L×L arrangement of square cells with fixed charges at the mesh points.
//
// Mesh points sit at integer coordinates (i, j) with 0 <= i, j < L; the
// charge at a mesh point depends only on the parity of its column index:
// +q on even columns, -q on odd columns (paper §III-C). Because the domain
// is periodic, L must be even so that column parities remain consistent
// across the wrap-around boundary.
//
// Although charges are formulaic, parallel drivers materialize them into
// per-rank Blocks (with a one-point ghost ring) so that domain migration
// moves real data and force evaluation exercises ownership, exactly as the
// paper's reference implementations do.
package grid

import (
	"fmt"
	"math"
)

// DefaultCharge is the default magnitude q of the fixed mesh charges.
const DefaultCharge = 1.0

// Mesh describes the global simulation domain: L×L square cells of size
// h×h with periodic boundaries. The PRK specification fixes h = 1, which
// keeps particle coordinates on an exactly-representable half-integer
// lattice; Mesh retains h as a field for clarity but the constructor
// enforces h = 1.
type Mesh struct {
	// L is the number of cells along each coordinate direction. It must
	// be even and positive.
	L int
	// Q is the magnitude of the fixed charges at mesh points.
	Q float64
}

// NewMesh validates the domain parameters and returns a Mesh.
// L must be positive and even (paper §III-C: "L must be an even multiple
// of h to ensure smooth periodic boundary transitions").
func NewMesh(L int, q float64) (Mesh, error) {
	if L <= 0 {
		return Mesh{}, fmt.Errorf("grid: L must be positive, got %d", L)
	}
	if L%2 != 0 {
		return Mesh{}, fmt.Errorf("grid: L must be even, got %d", L)
	}
	if q <= 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		return Mesh{}, fmt.Errorf("grid: charge magnitude must be positive and finite, got %v", q)
	}
	return Mesh{L: L, Q: q}, nil
}

// MustMesh is NewMesh that panics on error; intended for tests and examples
// with known-good constants.
func MustMesh(L int, q float64) Mesh {
	m, err := NewMesh(L, q)
	if err != nil {
		panic(err)
	}
	return m
}

// Size returns the physical extent of the domain (L·h with h = 1).
func (m Mesh) Size() float64 { return float64(m.L) }

// Cells returns the total number of cells, L².
func (m Mesh) Cells() int64 { return int64(m.L) * int64(m.L) }

// PointCharge returns the fixed charge at mesh point (i, j). Indices may be
// any integers; they are wrapped periodically. The charge depends only on
// the parity of the wrapped column index i: +Q for even, -Q for odd.
func (m Mesh) PointCharge(i, j int) float64 {
	i = WrapIndex(i, m.L)
	if i%2 == 0 {
		return m.Q
	}
	return -m.Q
}

// Charge is an alias for PointCharge so that Mesh satisfies the kernel's
// ChargeSource interface directly (the formulaic global field), just as a
// materialized Block does (the per-rank field with ghosts).
func (m Mesh) Charge(i, j int) float64 { return m.PointCharge(i, j) }

// ColumnSign returns +1 for even cell-column index and -1 for odd, after
// periodic wrapping. A particle in an even column sits between a +Q column
// of points on its left and a -Q column on its right.
func (m Mesh) ColumnSign(i int) int {
	if WrapIndex(i, m.L)%2 == 0 {
		return 1
	}
	return -1
}

// CellOf returns the cell indices containing position (x, y), assuming the
// position already lies in [0, L). Positions exactly on the upper domain
// edge are treated as wrapped to 0 by WrapCoord before calling this.
func (m Mesh) CellOf(x, y float64) (cx, cy int) {
	cx = int(math.Floor(x))
	cy = int(math.Floor(y))
	// Guard against x == L due to floating rounding right at the edge.
	if cx >= m.L {
		cx -= m.L
	}
	if cy >= m.L {
		cy -= m.L
	}
	if cx < 0 {
		cx += m.L
	}
	if cy < 0 {
		cy += m.L
	}
	return cx, cy
}

// WrapCoord maps a coordinate onto the periodic domain [0, L).
func (m Mesh) WrapCoord(x float64) float64 {
	L := float64(m.L)
	x = math.Mod(x, L)
	if x < 0 {
		x += L
	}
	if x >= L { // math.Mod can return exactly L after += for tiny negatives
		x -= L
	}
	return x
}

// WrapIndex maps an integer index onto [0, n). It accepts any integer,
// including large negative values.
func WrapIndex(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// Block is a materialized rectangular sub-block of the global charge field,
// augmented with a one-point ghost ring on every side. Drivers own one Block
// per rank (or per virtual processor); force evaluation reads only from the
// local Block, so a decomposition bug surfaces as a verification failure
// rather than silently reading a formula.
type Block struct {
	mesh Mesh
	// X0, Y0 are the global indices of the first owned mesh point column/row.
	X0, Y0 int
	// NX, NY are the numbers of owned mesh point columns/rows. The block
	// covers owned cells [X0, X0+NX) × [Y0, Y0+NY); force evaluation for a
	// particle in owned cell (cx, cy) needs points up to (cx+1, cy+1), which
	// the ghost ring provides.
	NX, NY int
	// charges holds (NX+2)·(NY+2) values in row-major order including the
	// ghost ring: entry (gi, gj) with gi in [-1, NX] and gj in [-1, NY]
	// lives at index (gj+1)*(NX+2) + (gi+1).
	charges []float64
}

// NewBlock materializes the charge field for owned cell columns
// [x0, x0+nx) and rows [y0, y0+ny), including the ghost ring. nx and ny
// must be positive and no larger than L.
func NewBlock(m Mesh, x0, y0, nx, ny int) (*Block, error) {
	b := &Block{}
	if err := b.Reinit(m, x0, y0, nx, ny); err != nil {
		return nil, err
	}
	return b, nil
}

// Reinit re-materializes the block in place for a new rectangle, reusing the
// charge storage when its capacity suffices. Migration arrivals restore
// recycled VP shells through it instead of allocating a fresh block.
func (b *Block) Reinit(m Mesh, x0, y0, nx, ny int) error {
	if nx <= 0 || ny <= 0 {
		return fmt.Errorf("grid: block dimensions must be positive, got %dx%d", nx, ny)
	}
	if nx > m.L || ny > m.L {
		return fmt.Errorf("grid: block %dx%d exceeds domain %d", nx, ny, m.L)
	}
	need := (nx + 2) * (ny + 2)
	if cap(b.charges) < need {
		b.charges = make([]float64, need)
	}
	b.charges = b.charges[:need]
	b.mesh, b.X0, b.Y0, b.NX, b.NY = m, WrapIndex(x0, m.L), WrapIndex(y0, m.L), nx, ny
	for gj := -1; gj <= ny; gj++ {
		for gi := -1; gi <= nx; gi++ {
			b.charges[b.idx(gi, gj)] = m.PointCharge(x0+gi, y0+gj)
		}
	}
	return nil
}

func (b *Block) idx(gi, gj int) int { return (gj+1)*(b.NX+2) + (gi + 1) }

// Mesh returns the global mesh this block was cut from.
func (b *Block) Mesh() Mesh { return b.mesh }

// Charge returns the charge at global mesh point (i, j), which must lie
// within the block's owned region or its one-point ghost ring. Indices are
// interpreted relative to the periodic domain: the caller passes global
// indices that may exceed L by one at the periodic seam.
func (b *Block) Charge(i, j int) float64 {
	gi := i - b.X0
	gj := j - b.Y0
	// Re-interpret across the periodic seam: a block starting near L-1 may
	// be asked for point 0, which is its ghost point NX (or similar).
	if gi < -1 {
		gi += b.mesh.L
	}
	if gi > b.NX {
		gi -= b.mesh.L
	}
	if gj < -1 {
		gj += b.mesh.L
	}
	if gj > b.NY {
		gj -= b.mesh.L
	}
	if gi < -1 || gi > b.NX || gj < -1 || gj > b.NY {
		panic(fmt.Sprintf("grid: point (%d,%d) outside block [%d,%d)x[%d,%d) ghost region",
			i, j, b.X0, b.X0+b.NX, b.Y0, b.Y0+b.NY))
	}
	return b.charges[b.idx(gi, gj)]
}

// CornerCharges returns the charges at the four mesh-point corners of the
// owned cell (cx, cy), in the kernel's fixed order: (cx,cy), (cx+1,cy),
// (cx,cy+1), (cx+1,cy+1). It is the devirtualized fast path of the move
// kernel: for an owned cell the four corners are two adjacent pairs in the
// row-major charge array (the ghost ring guarantees the +1 neighbors are
// materialized), so the lookup is four indexed loads with no per-corner
// seam arithmetic. A cell outside the owned region falls back to the
// generic Charge path, which diagnoses genuinely out-of-range requests.
func (b *Block) CornerCharges(cx, cy int) (q00, q10, q01, q11 float64) {
	gi := cx - b.X0
	if gi < 0 {
		gi += b.mesh.L
	}
	gj := cy - b.Y0
	if gj < 0 {
		gj += b.mesh.L
	}
	if gi >= b.NX || gj >= b.NY || gi < 0 || gj < 0 {
		return b.Charge(cx, cy), b.Charge(cx+1, cy), b.Charge(cx, cy+1), b.Charge(cx+1, cy+1)
	}
	w := b.NX + 2
	row := (gj+1)*w + gi + 1
	return b.charges[row], b.charges[row+1], b.charges[row+w], b.charges[row+w+1]
}

// OwnsCell reports whether global cell (cx, cy) is owned by this block.
// The periodic seam is handled: ownership is tested on wrapped indices.
func (b *Block) OwnsCell(cx, cy int) bool {
	cx = WrapIndex(cx, b.mesh.L)
	cy = WrapIndex(cy, b.mesh.L)
	dx := cx - b.X0
	if dx < 0 {
		dx += b.mesh.L
	}
	dy := cy - b.Y0
	if dy < 0 {
		dy += b.mesh.L
	}
	return dx < b.NX && dy < b.NY
}

// Bytes returns the approximate in-memory size of the block's charge data,
// used by migration cost accounting.
func (b *Block) Bytes() int { return 8 * len(b.charges) }

// ExtractColumns returns the charge values of owned mesh-point columns
// [c0, c0+w) relative to the block (0 <= c0, c0+w <= NX), as a dense
// row-major slice of w·NY values. Used when diffusion LB ships boundary
// columns to a neighbor.
func (b *Block) ExtractColumns(c0, w int) ([]float64, error) {
	if c0 < 0 || w <= 0 || c0+w > b.NX {
		return nil, fmt.Errorf("grid: column range [%d,%d) outside block width %d", c0, c0+w, b.NX)
	}
	out := make([]float64, 0, w*b.NY)
	for gj := 0; gj < b.NY; gj++ {
		for gi := c0; gi < c0+w; gi++ {
			out = append(out, b.charges[b.idx(gi, gj)])
		}
	}
	return out, nil
}

// ExtractRows returns the charge values of owned mesh-point rows
// [r0, r0+h) relative to the block (0 <= r0, r0+h <= NY), as a dense
// row-major slice of NX·h values. Used when the two-phase diffusion LB
// ships boundary rows to a y-neighbor.
func (b *Block) ExtractRows(r0, h int) ([]float64, error) {
	if r0 < 0 || h <= 0 || r0+h > b.NY {
		return nil, fmt.Errorf("grid: row range [%d,%d) outside block height %d", r0, r0+h, b.NY)
	}
	out := make([]float64, 0, h*b.NX)
	for gj := r0; gj < r0+h; gj++ {
		for gi := 0; gi < b.NX; gi++ {
			out = append(out, b.charges[b.idx(gi, gj)])
		}
	}
	return out, nil
}

// ValidateRows checks that row data received from another rank matches this
// block's field for owned mesh-point rows starting at global index rowY0.
// rows is row-major (h rows × NX columns) as produced by ExtractRows.
func (b *Block) ValidateRows(rows []float64, rowY0 int) error {
	if len(rows) == 0 {
		return nil
	}
	h := len(rows) / b.NX
	if h*b.NX != len(rows) {
		return fmt.Errorf("grid: row data length %d not divisible by nx=%d", len(rows), b.NX)
	}
	for k := 0; k < h; k++ {
		gj := rowY0 - b.Y0 + k
		if gj < -1 {
			gj += b.mesh.L
		}
		if gj > b.NY {
			gj -= b.mesh.L
		}
		if gj < 0 || gj >= b.NY {
			return fmt.Errorf("grid: incoming row %d outside block [%d,%d)", rowY0+k, b.Y0, b.Y0+b.NY)
		}
		for gi := 0; gi < b.NX; gi++ {
			want := b.charges[b.idx(gi, gj)]
			got := rows[k*b.NX+gi]
			if want != got {
				return fmt.Errorf("grid: migrated charge mismatch at point (%d,%d): got %v want %v",
					b.X0+gi, rowY0+k, got, want)
			}
		}
	}
	return nil
}

// ValidateColumns checks that column data received from another rank
// matches this block's field for owned mesh-point columns starting at
// global index colX0. cols is row-major (w columns × NY rows) as produced
// by ExtractColumns. A mismatch indicates a migration protocol bug.
func (b *Block) ValidateColumns(cols []float64, colX0 int) error {
	if len(cols) == 0 {
		return nil
	}
	w := len(cols) / b.NY
	if w*b.NY != len(cols) {
		return fmt.Errorf("grid: column data length %d not divisible by ny=%d", len(cols), b.NY)
	}
	for gj := 0; gj < b.NY; gj++ {
		for k := 0; k < w; k++ {
			gi := colX0 - b.X0 + k
			if gi < -1 {
				gi += b.mesh.L
			}
			if gi > b.NX {
				gi -= b.mesh.L
			}
			if gi < 0 || gi >= b.NX {
				return fmt.Errorf("grid: incoming column %d outside block [%d,%d)", colX0+k, b.X0, b.X0+b.NX)
			}
			want := b.charges[b.idx(gi, gj)]
			got := cols[gj*w+k]
			if want != got {
				return fmt.Errorf("grid: migrated charge mismatch at point (%d,%d): got %v want %v",
					colX0+k, b.Y0+gj, got, want)
			}
		}
	}
	return nil
}

// OwnedData returns a copy of the owned (non-ghost) charge values in
// row-major order, NX×NY. Virtual-processor migration packs this so that
// moving a VP ships its grid data, as the paper's PUP routines do.
func (b *Block) OwnedData() []float64 {
	return b.AppendOwnedData(make([]float64, 0, b.NX*b.NY))
}

// AppendOwnedData is the allocation-free form of OwnedData: the owned values
// append to dst, which migration packing reuses across epochs.
func (b *Block) AppendOwnedData(dst []float64) []float64 {
	for gj := 0; gj < b.NY; gj++ {
		for gi := 0; gi < b.NX; gi++ {
			dst = append(dst, b.charges[b.idx(gi, gj)])
		}
	}
	return dst
}

// NewBlockFromData rebuilds a block whose owned values were shipped from
// another rank, validating them against the formulaic field (corruption in
// transit is detected, not silently repaired). The ghost ring is recomputed
// locally, as a real code would refresh halos after migration.
func NewBlockFromData(m Mesh, x0, y0, nx, ny int, data []float64) (*Block, error) {
	b := &Block{}
	if err := b.ReinitFromData(m, x0, y0, nx, ny, data); err != nil {
		return nil, err
	}
	return b, nil
}

// ReinitFromData is NewBlockFromData into an existing block, reusing its
// storage where capacity allows.
func (b *Block) ReinitFromData(m Mesh, x0, y0, nx, ny int, data []float64) error {
	if len(data) != nx*ny {
		return fmt.Errorf("grid: block data length %d != %dx%d", len(data), nx, ny)
	}
	if err := b.Reinit(m, x0, y0, nx, ny); err != nil {
		return err
	}
	for gj := 0; gj < ny; gj++ {
		for gi := 0; gi < nx; gi++ {
			want := b.charges[b.idx(gi, gj)]
			got := data[gj*nx+gi]
			if got != want {
				return fmt.Errorf("grid: migrated block data mismatch at point (%d,%d): got %v want %v",
					x0+gi, y0+gj, got, want)
			}
		}
	}
	return nil
}

// Resize rebuilds the block for a new owned region. Drivers call this after
// a load-balancing step changed the decomposition. The incoming column data
// (from ExtractColumns on the sending side) is validated against the
// formulaic field: a mismatch indicates a migration protocol bug and is
// returned as an error rather than silently repaired.
func (b *Block) Resize(x0, y0, nx, ny int, incoming []float64, incomingX0 int) error {
	nb, err := NewBlock(b.mesh, x0, y0, nx, ny)
	if err != nil {
		return err
	}
	if incoming != nil {
		w := len(incoming) / ny
		if w*ny != len(incoming) {
			return fmt.Errorf("grid: incoming column data length %d not divisible by ny=%d", len(incoming), ny)
		}
		for gj := 0; gj < ny; gj++ {
			for k := 0; k < w; k++ {
				gi := incomingX0 - x0 + k
				if gi < 0 || gi >= nx {
					return fmt.Errorf("grid: incoming column %d outside new block", incomingX0+k)
				}
				want := nb.charges[nb.idx(gi, gj)]
				got := incoming[gj*w+k]
				if want != got {
					return fmt.Errorf("grid: migrated charge mismatch at point (%d,%d): got %v want %v",
						incomingX0+k, y0+gj, got, want)
				}
			}
		}
	}
	*b = *nb
	return nil
}
