package sweep

import (
	"fmt"

	"github.com/parres/picprk/internal/ampi"
	"github.com/parres/picprk/internal/dist"
	"github.com/parres/picprk/internal/grid"
	"github.com/parres/picprk/internal/model"
)

// Scale selects how thoroughly the experiments run.
type Scale int

// Full reproduces the paper's exact problem sizes; Quick shrinks grids and
// step counts proportionally for smoke tests and CI (shapes persist, exact
// values shift).
const (
	Full Scale = iota
	Quick
)

// paperWorkload builds a workload factory for the paper's standard skewed
// initialization (§III-E1 with r = 0.999, k = 0).
func paperWorkload(L, n int) model.WorkloadFactory {
	m := grid.MustMesh(L, 1)
	return func() *model.Workload {
		w, err := model.NewWorkload(dist.Config{Mesh: m, N: n, Dist: dist.Geometric{R: 0.999}, Seed: 1}, nil)
		if err != nil {
			panic(err) // static known-good configuration
		}
		return w
	}
}

func scaled(s Scale, full, quick int) int {
	if s == Quick {
		return quick
	}
	return full
}

// Fig5 reproduces Figure 5: sensitivity of the AMPI implementation to the
// load-balancing interval F (at fixed d=4) and to the over-decomposition
// degree d (at fixed F=1000). Grid 5,998², 6.4M particles, 6,000 steps,
// 192 cores.
func Fig5(mach model.Machine, s Scale) *Figure {
	L := scaled(s, 5998, 1498)
	n := 6400000 // model cost is independent of n; keep the paper's count
	steps := scaled(s, 6000, 1500)
	p := scaled(s, 192, 48)
	wf := paperWorkload(L, n)

	fs := []int{20, 40, 80, 160, 320, 640, 1280}
	ds := []int{1, 2, 4, 8, 16, 32, 64}
	fig := &Figure{
		ID:     "fig5",
		Title:  "AMPI tuning: LB interval F (d=4) and over-decomposition d (F=1000)",
		Config: fmt.Sprintf("%dx%d cells, %d particles, %d steps, %d cores, geometric r=0.999 k=0", L, L, n, steps, p),
		XLabel: "increase",
		XTicks: []string{"1x", "2x", "4x", "8x", "16x", "32x", "64x"},
	}
	fSeries := Series{Name: "varying interval F (F=20·x)", Unit: "s"}
	for _, f := range fs {
		o := model.SimulateAMPI(mach, wf(), p, steps, model.AMPIModelParams{Overdecompose: 4, Every: f})
		fSeries.Values = append(fSeries.Values, o.Seconds)
	}
	dSeries := Series{Name: "varying over-decomposition d (d=x)", Unit: "s"}
	for _, d := range ds {
		o := model.SimulateAMPI(mach, wf(), p, steps, model.AMPIModelParams{Overdecompose: d, Every: 1000})
		dSeries.Values = append(dSeries.Values, o.Seconds)
	}
	fig.Series = []Series{fSeries, dSeries}

	bestF, worstF := minMax(fSeries.Values)
	bestD, worstD := minMax(dSeries.Values)
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("F-sweep best/worst improvement: %.1fx (paper §V-A: 4.2x, 180s @F=20 vs 43s @F=160)", worstF/bestF),
		fmt.Sprintf("d-sweep best/worst improvement: %.1fx (paper §V-A: 2.2x, 104s @d=1 vs 47s @d=16)", worstD/bestD),
	)
	return fig
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// strongScalingPoint runs the three implementations, tuned per the paper's
// methodology, at one core count.
func strongScalingPoint(mach model.Machine, wf model.WorkloadFactory, p, steps int, s Scale) (base, diff, am model.Outcome) {
	base = model.SimulateBaseline(mach, wf(), p, steps)
	dgrid := model.DiffusionGrid(1)
	agrid := model.AMPIGrid()
	if s == Quick {
		dgrid = dgrid[:6] // the small-Every entries, which dominate anyway
		// A diverse sub-grid: over-decomposition degrees and LB intervals
		// spanning the full ranges.
		agrid = nil
		for _, d := range []int{4, 8, 16} {
			for _, f := range []int{160, 640, 2000} {
				agrid = append(agrid, model.AMPIModelParams{Overdecompose: d, Every: f})
			}
		}
	}
	_, diff = model.TuneDiffusion(mach, wf, p, steps, dgrid)
	_, am = model.TuneAMPI(mach, wf, p, steps, agrid)
	return base, diff, am
}

// Fig6Left reproduces Figure 6 (left): strong scaling on a single node,
// 1–24 cores. Grid 2,998², 600k particles, 6,000 steps.
func Fig6Left(mach model.Machine, s Scale) *Figure {
	L := scaled(s, 2998, 1498)
	n := 600000 // model cost is independent of n; keep the paper's count
	steps := scaled(s, 6000, 1500)
	wf := paperWorkload(L, n)
	ps := []int{1, 4, 8, 12, 16, 20, 24}

	fig := &Figure{
		ID:     "fig6-left",
		Title:  "Strong scaling, single node",
		Config: fmt.Sprintf("%dx%d cells, %d particles, %d steps, geometric r=0.999 k=0, params tuned per point", L, L, n, steps),
		XLabel: "cores",
	}
	var bs, dsr, as Series
	bs = Series{Name: "mpi-2d", Unit: "s"}
	dsr = Series{Name: "mpi-2d-LB", Unit: "s"}
	as = Series{Name: "ampi", Unit: "s"}
	var lastBase, lastDiff, lastAMPI model.Outcome
	for _, p := range ps {
		fig.XTicks = append(fig.XTicks, fmt.Sprint(p))
		base, diff, am := strongScalingPoint(mach, wf, p, steps, s)
		bs.Values = append(bs.Values, base.Seconds)
		dsr.Values = append(dsr.Values, diff.Seconds)
		as.Values = append(as.Values, am.Seconds)
		lastBase, lastDiff, lastAMPI = base, diff, am
	}
	fig.Series = []Series{bs, dsr, as}
	last := len(ps) - 1
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("at %d cores: ampi %.1fx and mpi-2d-LB %.1fx faster than mpi-2d (paper §V-B: 1.3x and 1.6x)",
			ps[last], bs.Values[last]/as.Values[last], bs.Values[last]/dsr.Values[last]),
		fmt.Sprintf("max particles/core at end: mpi-2d %.0f, mpi-2d-LB %.0f, ampi %.0f, ideal %.0f (paper §V-B: 62,645 / 30,585 / - / 25,000)",
			lastBase.MaxFinalLoad, lastDiff.MaxFinalLoad, lastAMPI.MaxFinalLoad, lastBase.IdealLoad),
	)
	return fig
}

// Fig6Right reproduces Figure 6 (right): strong scaling across nodes,
// 24–384 cores, same problem as Fig6Left.
func Fig6Right(mach model.Machine, s Scale) *Figure {
	L := scaled(s, 2998, 1498)
	n := 600000 // model cost is independent of n; keep the paper's count
	steps := scaled(s, 6000, 1500)
	wf := paperWorkload(L, n)
	ps := []int{24, 48, 96, 192, 384}

	fig := &Figure{
		ID:     "fig6-right",
		Title:  "Strong scaling, multiple nodes",
		Config: fmt.Sprintf("%dx%d cells, %d particles, %d steps, geometric r=0.999 k=0, params tuned per point", L, L, n, steps),
		XLabel: "cores",
	}
	serial := model.SimulateSerial(mach, wf(), steps)
	bs := Series{Name: "mpi-2d", Unit: "s"}
	dsr := Series{Name: "mpi-2d-LB", Unit: "s"}
	as := Series{Name: "ampi", Unit: "s"}
	for _, p := range ps {
		fig.XTicks = append(fig.XTicks, fmt.Sprint(p))
		base, diff, am := strongScalingPoint(mach, wf, p, steps, s)
		bs.Values = append(bs.Values, base.Seconds)
		dsr.Values = append(dsr.Values, diff.Seconds)
		as.Values = append(as.Values, am.Seconds)
	}
	fig.Series = []Series{bs, dsr, as}
	last := len(ps) - 1
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("max speedup over serial (%.0fs): mpi-2d-LB %.0fx, ampi %.0fx (paper §V-B: 179x and 92x)",
			serial.Seconds, serial.Seconds/dsr.Values[last], serial.Seconds/as.Values[last]),
		fmt.Sprintf("at %d cores mpi-2d-LB outperforms ampi by %.1fx (paper §V-B: factor of 2)",
			ps[last], as.Values[last]/dsr.Values[last]),
	)
	return fig
}

// Fig7 reproduces Figure 7: weak scaling. Grid 11,998² fixed; 400k
// particles at 48 cores, scaled proportionally with cores; 6,000 steps.
func Fig7(mach model.Machine, s Scale) *Figure {
	L := scaled(s, 11998, 2998)
	nBase := 400000 // model cost is independent of n; keep the paper's count
	steps := scaled(s, 6000, 1500)
	pBase := 48
	ps := []int{48, 192, 768, 3072}
	if s == Quick {
		ps = []int{48, 192, 768}
	}

	fig := &Figure{
		ID:     "fig7",
		Title:  "Weak scaling (grid fixed, particles proportional to cores)",
		Config: fmt.Sprintf("%dx%d cells, %d particles @%d cores (scaled with P), %d steps, geometric r=0.999 k=0", L, L, nBase, pBase, steps),
		XLabel: "cores",
	}
	bs := Series{Name: "mpi-2d", Unit: "s"}
	dsr := Series{Name: "mpi-2d-LB", Unit: "s"}
	as := Series{Name: "ampi", Unit: "s"}
	for _, p := range ps {
		fig.XTicks = append(fig.XTicks, fmt.Sprint(p))
		wf := paperWorkload(L, nBase*p/pBase)
		base, diff, am := strongScalingPoint(mach, wf, p, steps, s)
		bs.Values = append(bs.Values, base.Seconds)
		dsr.Values = append(dsr.Values, diff.Seconds)
		as.Values = append(as.Values, am.Seconds)
	}
	fig.Series = []Series{bs, dsr, as}
	last := len(ps) - 1
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("at %s cores: ampi %.1fx and mpi-2d-LB %.1fx faster than mpi-2d (paper §V-C: 2.4x and 1.8x at 3,072)",
			fig.XTicks[last], bs.Values[last]/as.Values[last], bs.Values[last]/dsr.Values[last]),
	)
	return fig
}

// FigWorkSteal is the comparative-strategy study the paper's §VI proposes
// as future work, run on the model: the VP substrate driven by GreedyLB
// (Charm++'s classic full reassignment), RefineLB (the paper's choice) and
// WorkStealLB (demand-driven stealing) across LB intervals F. The same
// ampi.Strategy code runs in the real WorkSteal driver via
// balance.WorkStealBalancer, so this figure rates the policies the drivers
// actually execute.
func FigWorkSteal(mach model.Machine, s Scale) *Figure {
	L := scaled(s, 5998, 1498)
	n := 6400000 // model cost is independent of n; keep the paper's count
	steps := scaled(s, 6000, 1500)
	p := scaled(s, 192, 48)
	wf := paperWorkload(L, n)
	fs := []int{20, 80, 320, 1280}

	fig := &Figure{
		ID:     "fig-ws",
		Title:  "Balancing strategy comparison: global reassignment vs refinement vs work stealing (d=4)",
		Config: fmt.Sprintf("%dx%d cells, %d particles, %d steps, %d cores, geometric r=0.999 k=0", L, L, n, steps, p),
		XLabel: "LB interval F",
	}
	strategies := []struct {
		name string
		s    ampi.Strategy
	}{
		{"GreedyLB", ampi.GreedyLB{}},
		{"RefineLB", ampi.RefineLB{}},
		{"WorkStealLB", ampi.WorkStealLB{}},
	}
	var bytesMoved [3]float64
	for i, st := range strategies {
		ser := Series{Name: st.name, Unit: "s"}
		for _, f := range fs {
			o := model.SimulateAMPI(mach, wf(), p, steps, model.AMPIModelParams{Overdecompose: 4, Every: f, Strategy: st.s})
			ser.Values = append(ser.Values, o.Seconds)
			bytesMoved[i] += o.BytesMigrated
		}
		fig.Series = append(fig.Series, ser)
		if i == 0 {
			fig.XTicks = make([]string, len(fs))
			for j, f := range fs {
				fig.XTicks[j] = fmt.Sprint(f)
			}
		}
	}
	greedyBest, _ := minMax(fig.Series[0].Values)
	stealBest, _ := minMax(fig.Series[2].Values)
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("best WorkStealLB vs best GreedyLB: %.2fx (stealing bounds migration volume per epoch)", greedyBest/stealBest),
		fmt.Sprintf("migration volume summed over the F-sweep: GreedyLB %.1f GB, RefineLB %.1f GB, WorkStealLB %.1f GB",
			bytesMoved[0]/1e9, bytesMoved[1]/1e9, bytesMoved[2]/1e9),
	)
	return fig
}

// All returns every registered figure reproduction.
func All(mach model.Machine, s Scale) []*Figure {
	return []*Figure{
		Fig5(mach, s),
		Fig6Left(mach, s),
		Fig6Right(mach, s),
		Fig7(mach, s),
		FigWorkSteal(mach, s),
	}
}
