package sweep

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Plot renders the figure's series as an ASCII chart with a logarithmic
// y axis (the paper's figures are log-log), one glyph per series. It is a
// quick visual check that the reproduced curves have the paper's shape —
// who is on top, where lines cross — without leaving the terminal.
func (f *Figure) Plot(w io.Writer, height int) {
	if height <= 0 {
		height = 16
	}
	glyphs := []byte{'b', 'd', 'a', '4', '5', '6'}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, v := range s.Values {
			if v <= 0 {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) || lo == hi {
		fmt.Fprintln(w, "plot: nothing to draw")
		return
	}
	logLo, logHi := math.Log(lo), math.Log(hi)
	// A column per x tick, padded for readability.
	colW := 4
	for _, t := range f.XTicks {
		if len(t)+2 > colW {
			colW = len(t) + 2
		}
	}
	width := colW * len(f.XTicks)
	rows := make([][]byte, height)
	for r := range rows {
		rows[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for xi, v := range s.Values {
			if v <= 0 {
				continue
			}
			r := int(math.Round((logHi - math.Log(v)) / (logHi - logLo) * float64(height-1)))
			c := xi*colW + colW/2
			if rows[r][c] == ' ' {
				rows[r][c] = g
			} else {
				rows[r][c] = '*' // overlapping series
			}
		}
	}
	fmt.Fprintf(w, "%s (log y: %.3g .. %.3g seconds; '*' = overlap)\n", f.ID, lo, hi)
	for r, row := range rows {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%7.3g ", hi)
		} else if r == height-1 {
			label = fmt.Sprintf("%7.3g ", lo)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", width))
	var ticks strings.Builder
	for _, t := range f.XTicks {
		ticks.WriteString(fmt.Sprintf("%-*s", colW, " "+t))
	}
	fmt.Fprintf(w, "        %s  (%s)\n", ticks.String(), f.XLabel)
	for si, s := range f.Series {
		fmt.Fprintf(w, "        %c = %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	fmt.Fprintln(w)
}
