package sweep

import (
	"strings"
	"testing"

	"github.com/parres/picprk/internal/model"
)

func TestRenderProducesAlignedTable(t *testing.T) {
	f := &Figure{
		ID: "test", Title: "t", Config: "c", XLabel: "x",
		XTicks: []string{"1", "24"},
		Series: []Series{
			{Name: "a", Unit: "s", Values: []float64{1.5, 2.5}},
			{Name: "b", Values: []float64{10000}},
		},
		Notes: []string{"hello"},
	}
	var sb strings.Builder
	f.Render(&sb)
	out := sb.String()
	for _, want := range []string{"=== test", "a (s)", "1.50", "2.50", "10000", "-", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 6 {
		t.Errorf("render produced %d lines", len(lines))
	}
}

func TestPlot(t *testing.T) {
	f := &Figure{
		ID: "plot-test", XLabel: "cores", XTicks: []string{"1", "2", "4"},
		Series: []Series{
			{Name: "fast", Values: []float64{100, 50, 25}},
			{Name: "slow", Values: []float64{100, 80, 70}},
		},
	}
	var sb strings.Builder
	f.Plot(&sb, 10)
	out := sb.String()
	if !strings.Contains(out, "b = fast") || !strings.Contains(out, "d = slow") {
		t.Errorf("legend missing:\n%s", out)
	}
	// Both series start at the same point: overlap marker on the top row.
	if !strings.Contains(out, "*") {
		t.Errorf("overlap marker missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 14 {
		t.Errorf("plot too short: %d lines", len(lines))
	}
	// Degenerate figures must not panic.
	empty := &Figure{ID: "e", XTicks: []string{"1"}, Series: []Series{{Name: "z", Values: []float64{0}}}}
	var sb2 strings.Builder
	empty.Plot(&sb2, 5)
	if !strings.Contains(sb2.String(), "nothing to draw") {
		t.Error("degenerate plot not handled")
	}
}

func TestFig5QuickShapes(t *testing.T) {
	fig := Fig5(model.Edison(), Quick)
	if len(fig.Series) != 2 || len(fig.Series[0].Values) != 7 || len(fig.Series[1].Values) != 7 {
		t.Fatalf("fig5 structure wrong: %+v", fig)
	}
	f := fig.Series[0].Values
	// The F-sweep must show the paper's shape: very frequent LB is much
	// slower than the best setting.
	best := f[0]
	for _, v := range f {
		if v < best {
			best = v
		}
	}
	if f[0] < 1.5*best {
		t.Errorf("F=20 (%v) should be >=1.5x the best F (%v)", f[0], best)
	}
	// The d-sweep must show over-decomposition helping then hurting:
	// d=1 is worse than the best d.
	d := fig.Series[1].Values
	bestD := d[0]
	for _, v := range d {
		if v < bestD {
			bestD = v
		}
	}
	if d[0] <= bestD {
		t.Errorf("d=1 (%v) should be worse than the best d (%v)", d[0], bestD)
	}
	if len(fig.Notes) != 2 {
		t.Errorf("fig5 notes: %v", fig.Notes)
	}
}

func TestFig6LeftQuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning sweep")
	}
	fig := Fig6Left(model.Edison(), Quick)
	if len(fig.Series) != 3 {
		t.Fatalf("want 3 series")
	}
	base := fig.Series[0].Values
	diff := fig.Series[1].Values
	am := fig.Series[2].Values
	last := len(base) - 1
	// At the highest core count both balanced implementations beat the
	// baseline (paper §V-B).
	if diff[last] >= base[last] || am[last] >= base[last] {
		t.Errorf("at max cores: base %v diff %v ampi %v — balanced versions should win",
			base[last], diff[last], am[last])
	}
	// Times decrease with cores for every implementation (strong scaling).
	for i := 1; i < len(base); i++ {
		if base[i] >= base[i-1] {
			t.Errorf("baseline not scaling: %v", base)
			break
		}
	}
}

func TestFig7QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning sweep")
	}
	fig := Fig7(model.Edison(), Quick)
	base := fig.Series[0].Values
	diff := fig.Series[1].Values
	am := fig.Series[2].Values
	last := len(base) - 1
	if diff[last] >= base[last] || am[last] >= base[last] {
		t.Errorf("weak scaling at max cores: base %v diff %v ampi %v — balanced versions should win",
			base[last], diff[last], am[last])
	}
}

func TestAllReturnsEveryFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every sweep")
	}
	figs := All(model.Edison(), Quick)
	ids := map[string]bool{}
	for _, f := range figs {
		ids[f.ID] = true
	}
	for _, want := range []string{"fig5", "fig6-left", "fig6-right", "fig7", "fig-ws"} {
		if !ids[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestFigWorkStealQuickShapes(t *testing.T) {
	fig := FigWorkSteal(model.Edison(), Quick)
	if len(fig.Series) != 3 {
		t.Fatalf("want 3 strategy series, got %d", len(fig.Series))
	}
	greedy := fig.Series[0].Values
	ws := fig.Series[2].Values
	if len(greedy) != 4 || len(ws) != 4 {
		t.Fatalf("want 4 F points per series: %+v", fig.Series)
	}
	for _, s := range fig.Series {
		for i, v := range s.Values {
			if v <= 0 {
				t.Errorf("%s F-point %d is %v", s.Name, i, v)
			}
		}
	}
	// At the most frequent interval, bounded-volume stealing must beat the
	// full greedy reshuffle — the point of the strategy.
	if ws[0] >= greedy[0] {
		t.Errorf("at F=%s WorkStealLB (%v) should beat GreedyLB (%v)", fig.XTicks[0], ws[0], greedy[0])
	}
	if len(fig.Notes) != 2 {
		t.Errorf("fig-ws notes: %v", fig.Notes)
	}
}
