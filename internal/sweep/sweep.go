// Package sweep is the experiment harness: one registered experiment per
// table/figure in the paper's evaluation (§V), each regenerating the same
// rows/series the paper reports, using the performance model at the paper's
// scales and the paper's own methodology ("for each implementation we tuned
// the relevant parameters and picked the best performing execution").
package sweep

import (
	"fmt"
	"io"
	"strings"
)

// Series is one line of a figure: a named sequence of y-values aligned with
// the figure's x-labels.
type Series struct {
	Name   string
	Values []float64
	// Unit annotates the values ("s", "x", "particles").
	Unit string
}

// Figure is one reproduced experiment.
type Figure struct {
	ID     string // e.g. "fig5", "fig6-left"
	Title  string
	Config string // workload and parameter description
	XLabel string
	XTicks []string
	Series []Series
	// Notes carries companion scalar results quoted in the paper's text
	// (e.g. §V-B's max-particles-per-core comparison).
	Notes []string
}

// Render writes the figure as an aligned text table.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n", f.ID, f.Title)
	fmt.Fprintf(w, "workload: %s\n", f.Config)
	cols := make([]int, len(f.Series)+1)
	cols[0] = len(f.XLabel)
	for _, t := range f.XTicks {
		if len(t) > cols[0] {
			cols[0] = len(t)
		}
	}
	header := make([]string, len(f.Series)+1)
	header[0] = f.XLabel
	for i, s := range f.Series {
		name := s.Name
		if s.Unit != "" {
			name += " (" + s.Unit + ")"
		}
		header[i+1] = name
		cols[i+1] = len(name)
		for _, v := range s.Values {
			if l := len(formatVal(v)); l > cols[i+1] {
				cols[i+1] = l
			}
		}
	}
	writeRow(w, header, cols)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", cols[i])
	}
	writeRow(w, sep, cols)
	for r, tick := range f.XTicks {
		row := make([]string, len(f.Series)+1)
		row[0] = tick
		for i, s := range f.Series {
			if r < len(s.Values) {
				row[i+1] = formatVal(s.Values[r])
			} else {
				row[i+1] = "-"
			}
		}
		writeRow(w, row, cols)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func formatVal(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 10000:
		return fmt.Sprintf("%.0f", v)
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func writeRow(w io.Writer, cells []string, cols []int) {
	for i, c := range cells {
		if i == 0 {
			fmt.Fprintf(w, "%-*s", cols[i], c)
		} else {
			fmt.Fprintf(w, "  %*s", cols[i], c)
		}
	}
	fmt.Fprintln(w)
}
