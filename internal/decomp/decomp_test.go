package decomp

import (
	"testing"
	"testing/quick"
)

func TestUniformBounds(t *testing.T) {
	b, err := NewUniformBounds(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(10); err != nil {
		t.Fatal(err)
	}
	if b.N() != 3 || b.L() != 10 {
		t.Fatalf("N=%d L=%d", b.N(), b.L())
	}
	total := 0
	for i := 0; i < 3; i++ {
		w := b.Width(i)
		if w < 3 || w > 4 {
			t.Errorf("block %d width %d", i, w)
		}
		total += w
	}
	if total != 10 {
		t.Errorf("widths sum to %d", total)
	}
}

func TestUniformBoundsErrors(t *testing.T) {
	if _, err := NewUniformBounds(4, 0); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := NewUniformBounds(3, 4); err == nil {
		t.Error("more blocks than cells accepted")
	}
}

func TestOwnerExhaustive(t *testing.T) {
	b := MustUniformBounds(100, 7)
	for cell := 0; cell < 100; cell++ {
		o := b.Owner(cell)
		if cell < b.Lo(o) || cell >= b.Hi(o) {
			t.Fatalf("cell %d assigned to block %d [%d,%d)", cell, o, b.Lo(o), b.Hi(o))
		}
	}
}

func TestOwnerProperty(t *testing.T) {
	f := func(Lr, nr uint8, cellr uint16) bool {
		L := int(Lr%200) + 1
		n := int(nr)%L + 1
		b := MustUniformBounds(L, n)
		cell := int(cellr) % L
		o := b.Owner(cell)
		return o >= 0 && o < n && cell >= b.Lo(o) && cell < b.Hi(o)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOwnerPanicsOutOfRange(t *testing.T) {
	b := MustUniformBounds(10, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b.Owner(10)
}

func TestBoundsValidate(t *testing.T) {
	bad := []Bounds{
		{Cuts: []int{0}},
		{Cuts: []int{1, 10}},
		{Cuts: []int{0, 9}},
		{Cuts: []int{0, 5, 5, 10}},
		{Cuts: []int{0, 6, 5, 10}},
	}
	for i, b := range bad {
		if err := b.Validate(10); err == nil {
			t.Errorf("bad bounds %d accepted", i)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	b := MustUniformBounds(10, 2)
	c := b.Clone()
	c.Cuts[1] = 7
	if b.Cuts[1] == 7 {
		t.Error("clone shares backing array")
	}
	if !b.Equal(b.Clone()) || b.Equal(c) {
		t.Error("Equal misbehaves")
	}
}

func TestGrid2D(t *testing.T) {
	g, err := NewUniform2D(12, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(12); err != nil {
		t.Fatal(err)
	}
	// Rank layout matches comm.Cart2D: rank = py*PX + px.
	if g.Rank(2, 1) != 6 {
		t.Errorf("Rank(2,1) = %d", g.Rank(2, 1))
	}
	px, py := g.Coords(6)
	if px != 2 || py != 1 {
		t.Errorf("Coords(6) = (%d,%d)", px, py)
	}
	// Every cell owned by exactly the rank whose rect contains it.
	for cy := 0; cy < 12; cy++ {
		for cx := 0; cx < 12; cx++ {
			r := g.OwnerOfCell(cx, cy)
			x0, y0, nx, ny := g.RankRect(r)
			if cx < x0 || cx >= x0+nx || cy < y0 || cy >= y0+ny {
				t.Fatalf("cell (%d,%d) owner %d rect (%d,%d,%d,%d)", cx, cy, r, x0, y0, nx, ny)
			}
		}
	}
	// Rects tile the domain.
	area := 0
	for r := 0; r < 12; r++ {
		_, _, nx, ny := g.RankRect(r)
		area += nx * ny
	}
	if area != 144 {
		t.Errorf("rects cover %d cells", area)
	}
}

func TestGrid2DCloneEqual(t *testing.T) {
	g, _ := NewUniform2D(12, 4, 3)
	c := g.Clone()
	if !g.Equal(c) {
		t.Error("clone not equal")
	}
	c.X.Cuts[1] = 2
	if g.Equal(c) {
		t.Error("mutated clone still equal")
	}
	if g.X.Cuts[1] == 2 {
		t.Error("clone shares cuts")
	}
}

func TestGrid2DValidateMismatch(t *testing.T) {
	g, _ := NewUniform2D(12, 4, 3)
	g.PX = 5
	if err := g.Validate(12); err == nil {
		t.Error("inconsistent grid accepted")
	}
}
