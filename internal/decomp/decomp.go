// Package decomp describes how the simulation domain is partitioned among
// ranks (or virtual processors): 1D boundary arrays, 2D Cartesian-product
// decompositions, and owner lookup. The diffusion load balancer works by
// editing the boundary arrays; the Cartesian product structure is preserved,
// exactly as in the paper's two-phase scheme (§IV-B), so subdomains stay
// rectangular and neighbor communication stays regular.
package decomp

import (
	"fmt"
	"sort"
)

// Bounds is a 1D partition of [0, L) cells into n consecutive blocks:
// block i owns cells [Cuts[i], Cuts[i+1]). len(Cuts) == n+1, Cuts[0] == 0,
// Cuts[n] == L, strictly increasing (every block owns at least one cell).
type Bounds struct {
	Cuts []int
}

// NewUniformBounds splits L cells into n blocks whose sizes differ by at
// most one, the canonical static block distribution.
func NewUniformBounds(L, n int) (Bounds, error) {
	if n <= 0 || L < n {
		return Bounds{}, fmt.Errorf("decomp: cannot split %d cells into %d blocks", L, n)
	}
	cuts := make([]int, n+1)
	for i := 0; i <= n; i++ {
		cuts[i] = i * L / n
	}
	return Bounds{Cuts: cuts}, nil
}

// MustUniformBounds is NewUniformBounds that panics on error.
func MustUniformBounds(L, n int) Bounds {
	b, err := NewUniformBounds(L, n)
	if err != nil {
		panic(err)
	}
	return b
}

// N returns the number of blocks.
func (b Bounds) N() int { return len(b.Cuts) - 1 }

// L returns the total number of cells covered.
func (b Bounds) L() int { return b.Cuts[len(b.Cuts)-1] }

// Lo returns the first cell of block i.
func (b Bounds) Lo(i int) int { return b.Cuts[i] }

// Hi returns one past the last cell of block i.
func (b Bounds) Hi(i int) int { return b.Cuts[i+1] }

// Width returns the number of cells in block i.
func (b Bounds) Width(i int) int { return b.Cuts[i+1] - b.Cuts[i] }

// Owner returns the block owning the given cell index (0 <= cell < L).
func (b Bounds) Owner(cell int) int {
	if cell < 0 || cell >= b.L() {
		panic(fmt.Sprintf("decomp: cell %d outside [0,%d)", cell, b.L()))
	}
	// sort.Search finds the first cut strictly greater than cell; the block
	// index is one less.
	return sort.Search(len(b.Cuts), func(i int) bool { return b.Cuts[i] > cell }) - 1
}

// Validate checks the structural invariants.
func (b Bounds) Validate(L int) error {
	if len(b.Cuts) < 2 {
		return fmt.Errorf("decomp: bounds need at least 2 cuts, have %d", len(b.Cuts))
	}
	if b.Cuts[0] != 0 {
		return fmt.Errorf("decomp: first cut must be 0, got %d", b.Cuts[0])
	}
	if b.Cuts[len(b.Cuts)-1] != L {
		return fmt.Errorf("decomp: last cut must be %d, got %d", L, b.Cuts[len(b.Cuts)-1])
	}
	for i := 1; i < len(b.Cuts); i++ {
		if b.Cuts[i] <= b.Cuts[i-1] {
			return fmt.Errorf("decomp: cuts not strictly increasing at %d: %d -> %d", i, b.Cuts[i-1], b.Cuts[i])
		}
	}
	return nil
}

// Clone returns a deep copy.
func (b Bounds) Clone() Bounds {
	return Bounds{Cuts: append([]int(nil), b.Cuts...)}
}

// Equal reports whether two bounds describe the same partition.
func (b Bounds) Equal(o Bounds) bool {
	if len(b.Cuts) != len(o.Cuts) {
		return false
	}
	for i := range b.Cuts {
		if b.Cuts[i] != o.Cuts[i] {
			return false
		}
	}
	return true
}

// Grid2D is a Cartesian-product decomposition of an L×L cell domain over a
// PX×PY rank grid: rank (px, py) owns cells
// [X.Cuts[px], X.Cuts[px+1]) × [Y.Cuts[py], Y.Cuts[py+1]).
// Rank numbering matches comm.Cart2D: rank = py*PX + px.
type Grid2D struct {
	PX, PY int
	X, Y   Bounds
}

// NewUniform2D builds the static near-uniform decomposition used by the
// baseline driver.
func NewUniform2D(L, px, py int) (*Grid2D, error) {
	xb, err := NewUniformBounds(L, px)
	if err != nil {
		return nil, fmt.Errorf("decomp: x: %w", err)
	}
	yb, err := NewUniformBounds(L, py)
	if err != nil {
		return nil, fmt.Errorf("decomp: y: %w", err)
	}
	return &Grid2D{PX: px, PY: py, X: xb, Y: yb}, nil
}

// Validate checks both boundary arrays.
func (g *Grid2D) Validate(L int) error {
	if g.X.N() != g.PX || g.Y.N() != g.PY {
		return fmt.Errorf("decomp: grid %dx%d has %dx%d cuts", g.PX, g.PY, g.X.N(), g.Y.N())
	}
	if err := g.X.Validate(L); err != nil {
		return err
	}
	return g.Y.Validate(L)
}

// Rank returns the rank index for grid coordinates (px, py).
func (g *Grid2D) Rank(px, py int) int { return py*g.PX + px }

// Coords returns the grid coordinates of a rank.
func (g *Grid2D) Coords(rank int) (px, py int) { return rank % g.PX, rank / g.PX }

// OwnerOfCell returns the rank owning cell (cx, cy).
func (g *Grid2D) OwnerOfCell(cx, cy int) int {
	return g.Rank(g.X.Owner(cx), g.Y.Owner(cy))
}

// RankRect returns the cell rectangle owned by a rank: origin (x0, y0) and
// extents (nx, ny).
func (g *Grid2D) RankRect(rank int) (x0, y0, nx, ny int) {
	px, py := g.Coords(rank)
	return g.X.Lo(px), g.Y.Lo(py), g.X.Width(px), g.Y.Width(py)
}

// Clone returns a deep copy.
func (g *Grid2D) Clone() *Grid2D {
	return &Grid2D{PX: g.PX, PY: g.PY, X: g.X.Clone(), Y: g.Y.Clone()}
}

// Equal reports whether two decompositions are identical.
func (g *Grid2D) Equal(o *Grid2D) bool {
	return g.PX == o.PX && g.PY == o.PY && g.X.Equal(o.X) && g.Y.Equal(o.Y)
}
