package trace

import (
	"strings"
	"testing"
	"time"
)

func TestTimeAccumulates(t *testing.T) {
	var r Recorder
	r.Time(Compute, func() { time.Sleep(2 * time.Millisecond) })
	r.Time(Compute, func() { time.Sleep(2 * time.Millisecond) })
	if r.Get(Compute) < 4*time.Millisecond {
		t.Errorf("compute time %v", r.Get(Compute))
	}
	if r.Get(Exchange) != 0 {
		t.Errorf("exchange should be zero, got %v", r.Get(Exchange))
	}
}

func TestAddAndTotal(t *testing.T) {
	var r Recorder
	r.Add(Compute, time.Second)
	r.Add(Exchange, 2*time.Second)
	r.Add(Balance, 3*time.Second)
	if r.Total() != 6*time.Second {
		t.Errorf("total %v", r.Total())
	}
}

func TestObserveParticles(t *testing.T) {
	var r Recorder
	r.ObserveParticles(10)
	r.ObserveParticles(5)
	r.ObserveParticles(20)
	r.ObserveParticles(15)
	if r.MaxParticles != 20 {
		t.Errorf("high water %d", r.MaxParticles)
	}
}

func TestPhaseString(t *testing.T) {
	if Compute.String() != "compute" || Exchange.String() != "exchange" || Balance.String() != "balance" {
		t.Error("phase names wrong")
	}
	if !strings.Contains(Phase(9).String(), "9") {
		t.Error("unknown phase should include its number")
	}
	if numPhases.String() != "numPhases" {
		t.Errorf("sentinel renders as %q, want numPhases", numPhases.String())
	}
}

// TestPhases pins the iterator contract: every accountable phase exactly
// once, in index order, each with a proper name (no fallthrough formatting).
func TestPhases(t *testing.T) {
	ps := Phases()
	if len(ps) != NumPhases {
		t.Fatalf("Phases() has %d entries, want %d", len(ps), NumPhases)
	}
	for i, p := range ps {
		if int(p) != i {
			t.Errorf("Phases()[%d] = %v, want index order", i, p)
		}
		if strings.Contains(p.String(), "phase(") {
			t.Errorf("phase %d has no name: %q", i, p.String())
		}
	}
}

func TestStartStepSnapshot(t *testing.T) {
	var r Recorder
	r.Add(Compute, 5*time.Second) // pre-step history
	r.StartStep()
	r.Add(Compute, time.Second)
	r.Add(Migrate, 2*time.Second)
	s := r.Snapshot()
	if s[Compute] != time.Second || s[Migrate] != 2*time.Second || s[Exchange] != 0 {
		t.Errorf("snapshot %v", s)
	}
	// A new step resets the baseline; cumulative totals are unaffected.
	r.StartStep()
	if s := r.Snapshot(); s != (PhaseDurations{}) {
		t.Errorf("fresh step snapshot %v, want zero", s)
	}
	if r.Get(Compute) != 6*time.Second {
		t.Errorf("cumulative compute %v", r.Get(Compute))
	}
}

// TestSnapshotWithoutStartStep documents the zero-baseline behavior.
func TestSnapshotWithoutStartStep(t *testing.T) {
	var r Recorder
	r.Add(Exchange, time.Second)
	if s := r.Snapshot(); s[Exchange] != time.Second {
		t.Errorf("snapshot without StartStep %v", s)
	}
}

func TestRecorderString(t *testing.T) {
	var r Recorder
	r.Add(Compute, time.Second)
	r.Migrations = 3
	s := r.String()
	if !strings.Contains(s, "compute=1s") || !strings.Contains(s, "migrations=3") {
		t.Errorf("string %q", s)
	}
}
