package trace

import (
	"strings"
	"testing"
	"time"
)

func TestTimeAccumulates(t *testing.T) {
	var r Recorder
	r.Time(Compute, func() { time.Sleep(2 * time.Millisecond) })
	r.Time(Compute, func() { time.Sleep(2 * time.Millisecond) })
	if r.Get(Compute) < 4*time.Millisecond {
		t.Errorf("compute time %v", r.Get(Compute))
	}
	if r.Get(Exchange) != 0 {
		t.Errorf("exchange should be zero, got %v", r.Get(Exchange))
	}
}

func TestAddAndTotal(t *testing.T) {
	var r Recorder
	r.Add(Compute, time.Second)
	r.Add(Exchange, 2*time.Second)
	r.Add(Balance, 3*time.Second)
	if r.Total() != 6*time.Second {
		t.Errorf("total %v", r.Total())
	}
}

func TestObserveParticles(t *testing.T) {
	var r Recorder
	r.ObserveParticles(10)
	r.ObserveParticles(5)
	r.ObserveParticles(20)
	r.ObserveParticles(15)
	if r.MaxParticles != 20 {
		t.Errorf("high water %d", r.MaxParticles)
	}
}

func TestPhaseString(t *testing.T) {
	if Compute.String() != "compute" || Exchange.String() != "exchange" || Balance.String() != "balance" {
		t.Error("phase names wrong")
	}
	if !strings.Contains(Phase(9).String(), "9") {
		t.Error("unknown phase should include its number")
	}
}

func TestRecorderString(t *testing.T) {
	var r Recorder
	r.Add(Compute, time.Second)
	r.Migrations = 3
	s := r.String()
	if !strings.Contains(s, "compute=1s") || !strings.Contains(s, "migrations=3") {
		t.Errorf("string %q", s)
	}
}
