// Package trace records lightweight per-phase timings during a run: how
// much time each rank spends computing particle moves, exchanging
// particles, and load balancing. Drivers aggregate these into the run
// statistics the experiment harness reports.
package trace

import (
	"fmt"
	"time"
)

// Phase labels one accounting bucket.
type Phase int

// The phases drivers account for.
const (
	Compute Phase = iota
	Exchange
	// Balance is the decision side of load balancing: load reductions and
	// plan computation.
	Balance
	// Migrate is the data side of load balancing: executing a plan by
	// moving mesh columns/rows or PUP-serialized VPs between ranks.
	Migrate
	numPhases
)

// NumPhases is the number of accountable phases, for sizing per-phase
// arrays outside this package.
const NumPhases = int(numPhases)

// allPhases enumerates every phase in index order, derived from the iota
// range so no list is hand-maintained anywhere.
var allPhases = func() (ps [NumPhases]Phase) {
	for i := range ps {
		ps[i] = Phase(i)
	}
	return
}()

// Phases returns every accountable phase in index order. Exporters and
// aggregators iterate this instead of hand-maintaining the phase list.
// The returned slice is shared; callers must not modify it.
func Phases() []Phase { return allPhases[:] }

// String names the phase.
func (p Phase) String() string {
	switch p {
	case Compute:
		return "compute"
	case Exchange:
		return "exchange"
	case Balance:
		return "balance"
	case Migrate:
		return "migrate"
	case numPhases:
		// The array-sizing sentinel is not an accountable phase; name it
		// distinctly so a stray use is recognizable in output.
		return "numPhases"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// PhaseDurations holds one duration per phase, indexed by Phase.
type PhaseDurations [NumPhases]time.Duration

// Recorder accumulates per-phase durations and counters for one rank.
// It is not safe for concurrent use; each rank owns one.
type Recorder struct {
	durations [numPhases]time.Duration
	// stepBase holds the cumulative durations at the last StartStep call;
	// Snapshot reports the delta against it.
	stepBase [numPhases]time.Duration
	// overlap accumulates exchange time hidden behind compute: wall time
	// spent computing while an exchange was in flight (the tile pipeline's
	// interior wave). It is not a phase — the same wall time is already
	// charged to Compute — but a parallel account of how much of the
	// exchange the pipeline hid. stepBaseOverlap mirrors stepBase.
	overlap         time.Duration
	stepBaseOverlap time.Duration
	// MaxParticles tracks the high-water mark of local particle count, the
	// §V-B metric.
	MaxParticles int
	// Migrations counts LB-induced data movements (cut shifts or VP moves)
	// observed locally.
	Migrations int
}

// Time runs fn and charges its wall time to the phase.
func (r *Recorder) Time(p Phase, fn func()) {
	start := time.Now()
	fn()
	r.durations[p] += time.Since(start)
}

// Add charges a duration to a phase directly.
func (r *Recorder) Add(p Phase, d time.Duration) { r.durations[p] += d }

// Get returns the accumulated duration of a phase.
func (r *Recorder) Get(p Phase) time.Duration { return r.durations[p] }

// Total returns the sum over all phases.
func (r *Recorder) Total() time.Duration {
	var t time.Duration
	for _, d := range r.durations {
		t += d
	}
	return t
}

// AddOverlap credits compute wall time that ran while an exchange was in
// flight (see the overlap field).
func (r *Recorder) AddOverlap(d time.Duration) { r.overlap += d }

// Overlap returns the accumulated hidden-exchange time.
func (r *Recorder) Overlap() time.Duration { return r.overlap }

// StartStep marks the beginning of a step for Snapshot accounting. It is
// allocation-free, so per-step telemetry can call it unconditionally.
func (r *Recorder) StartStep() {
	r.stepBase = r.durations
	r.stepBaseOverlap = r.overlap
}

// Snapshot returns the per-phase durations accumulated since the last
// StartStep call (or since the recorder's creation, if StartStep was never
// called). It is allocation-free.
func (r *Recorder) Snapshot() PhaseDurations {
	var d PhaseDurations
	for i := range d {
		d[i] = r.durations[i] - r.stepBase[i]
	}
	return d
}

// SnapshotOverlap returns the hidden-exchange time accumulated since the
// last StartStep call. Allocation-free, like Snapshot.
func (r *Recorder) SnapshotOverlap() time.Duration {
	return r.overlap - r.stepBaseOverlap
}

// ObserveParticles updates the particle high-water mark.
func (r *Recorder) ObserveParticles(n int) {
	if n > r.MaxParticles {
		r.MaxParticles = n
	}
}

// String summarizes the recorder.
func (r *Recorder) String() string {
	return fmt.Sprintf("compute=%v exchange=%v balance=%v migrate=%v maxParticles=%d migrations=%d",
		r.durations[Compute], r.durations[Exchange], r.durations[Balance], r.durations[Migrate],
		r.MaxParticles, r.Migrations)
}
